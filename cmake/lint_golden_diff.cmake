# Runs `acc-lint --json <config>` and byte-compares the output against a
# committed golden document. Invoked from ctest:
#   cmake -DACC_LINT=... -DCONFIG=... -DGOLDEN=... -DOUT=...
#         -P lint_golden_diff.cmake
foreach(var ACC_LINT CONFIG GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "lint_golden_diff.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${ACC_LINT} --json ${CONFIG}
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE rc)
# Exit 0 (clean) and 2 (findings) are both valid producer outcomes; the
# golden pins which one we expect for this config.
if(NOT rc EQUAL 0 AND NOT rc EQUAL 2)
  message(FATAL_ERROR "acc-lint --json failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  execute_process(COMMAND ${CMAKE_COMMAND} -E cat ${OUT})
  message(FATAL_ERROR
    "acc-lint --json output for ${CONFIG} diverged from golden ${GOLDEN}; "
    "if the change is intentional, regenerate the golden with "
    "'acc-lint --json <config> > ${GOLDEN}'")
endif()
