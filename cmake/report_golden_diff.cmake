# Runs `pal_stereo_decoder --report <out>` and byte-compares the RunReport
# against a committed golden document. The report is integer-only by design
# (see docs/observability.md), so byte-exactness is the determinism contract
# rendered as a test. Invoked from ctest:
#   cmake -DDECODER=... -DGOLDEN=... -DOUT=... -DWORKDIR=...
#         -P report_golden_diff.cmake
foreach(var DECODER GOLDEN OUT WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "report_golden_diff.cmake: missing -D${var}=")
  endif()
endforeach()

# The decoder writes its decoded WAV to the cwd; keep that inside the build
# tree rather than wherever ctest happens to run.
file(MAKE_DIRECTORY ${WORKDIR})
execute_process(
  COMMAND ${DECODER} --report ${OUT}
  WORKING_DIRECTORY ${WORKDIR}
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pal_stereo_decoder --report failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  execute_process(COMMAND ${CMAKE_COMMAND} -E cat ${OUT})
  message(FATAL_ERROR
    "pal_stereo_decoder RunReport diverged from golden ${GOLDEN}; "
    "if the change is intentional, regenerate the golden with "
    "'pal_stereo_decoder --report ${GOLDEN}'")
endif()
