// E7 — Paper Table I: hardware costs and savings of sharing.
//
// Regenerates every row of Table I from the per-component cost model and
// checks the published totals and percentages.
#include <iostream>

#include "common/table.hpp"
#include "hwcost/model.hpp"

int main() {
  using namespace acc;
  using namespace acc::hwcost;

  std::cout << "=== Table I: hardware costs and savings (Virtex-6) ===\n\n";

  Table t({"component", "slices", "LUTs"});
  for (Component c : {Component::kGatewayPair, Component::kFirDownsampler,
                      Component::kCordic}) {
    const FpgaCost cost = published_cost(c);
    t.add_row({component_name(c), fmt_int(cost.slices), fmt_int(cost.luts)});
  }
  const SharingComparison cmp = paper_case_study();
  t.add_row({"non-shared: 4*(F+D) + 4*(C)", fmt_int(cmp.non_shared.slices),
             fmt_int(cmp.non_shared.luts)});
  t.add_row({"shared: gateways + (F+D) + (C)", fmt_int(cmp.shared.slices),
             fmt_int(cmp.shared.luts)});
  t.add_row({"savings",
             fmt_int(cmp.savings.slices) + " (" +
                 fmt_double(cmp.slice_saving_pct, 1) + " %)",
             fmt_int(cmp.savings.luts) + " (" +
                 fmt_double(cmp.lut_saving_pct, 1) + " %)"});
  std::cout << t.render();

  const bool exact = cmp.non_shared == FpgaCost{32904, 50876} &&
                     cmp.shared == FpgaCost{12014, 17164} &&
                     cmp.savings == FpgaCost{20890, 33712};
  std::cout << "\npaper: 32,904 -> 12,014 slices (63.5 %), 50,876 -> 17,164 "
               "LUTs (66.3 %)\nreproduction: "
            << (exact ? "EXACT" : "MISMATCH") << "\n";

  // Extension: how do savings scale with the number of dedicated copies the
  // application would otherwise need?
  std::cout << "\nsavings vs copies needed (ablation):\n";
  Table s({"copies", "non-shared slices", "shared slices", "saving"});
  for (std::int64_t n = 1; n <= 8; ++n) {
    const SharingComparison c = compare_sharing(
        {{Component::kFirDownsampler, n}, {Component::kCordic, n}});
    s.add_row({std::to_string(n), fmt_int(c.non_shared.slices),
               fmt_int(c.shared.slices),
               fmt_double(c.slice_saving_pct, 1) + " %"});
  }
  std::cout << s.render();
  std::cout << "(sharing breaks even at n = 2 copies for this chain)\n";
  return exact ? 0 : 1;
}
