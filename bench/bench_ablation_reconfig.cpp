// E11 (ablation) — how the context-switch cost R_s shapes the system.
//
// The paper closes §VI with "we are working on techniques to improve the
// speed at which state can be saved and restored". This ablation quantifies
// what such an improvement buys: for the PAL case study, sweep R_s from
// hardware-assisted (0/100 cycles) through the published 4100 up to the
// ~429k cycles implied by the paper's software-switching duty figure, and
// report the Algorithm-1 block sizes, the round length (= worst-case
// latency contribution) and the block buffer footprint.
//
// Sweep points are independent, so they fan out over a thread pool
// (--jobs N, default 2). Each point writes its row into a preallocated
// slot and the table is rendered serially afterwards, so the output is
// bit-identical for any --jobs — the same determinism contract as
// bench_fault_campaign.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"

int main(int argc, char** argv) {
  using namespace acc;
  using namespace acc::sharing;

  int jobs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
      return 1;
    }
  }

  std::cout << "=== Ablation: reconfiguration cost R_s vs blocks, round and buffers ===\n\n";

  const std::vector<Time> sweep = {0L,      100L,    1000L,  4100L,
                                   20000L, 100000L, 428640L};
  std::vector<std::vector<std::string>> rows(sweep.size());
  auto run_point = [&](std::size_t i) {
    const Time r = sweep[i];
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1, 1};
    sys.chain.entry_cycles_per_sample = 15;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"s0", Rational(28224, 1000000), r},
                   {"s1", Rational(28224, 1000000), r},
                   {"s2", Rational(3528, 1000000), r},
                   {"s3", Rational(3528, 1000000), r}};
    const BlockSizeResult b = solve_block_sizes_fixpoint(sys);
    if (!b.feasible) {
      rows[i] = {fmt_int(r), "-", "-", "-", "-", "infeasible"};
      return;
    }
    // Every stream needs at least one block of input and one of output
    // buffering (admission checks whole blocks): 2 * sum(eta) samples.
    const std::int64_t mem = 2 * b.total_eta;
    rows[i] = {fmt_int(r),     fmt_int(b.eta[0]),
               fmt_int(b.eta[2]), fmt_int(b.gamma),
               fmt_double(static_cast<double>(b.gamma) / 100000.0, 2),
               fmt_int(mem)};
  };

  if (jobs > 1) {
    ThreadPool pool(static_cast<std::size_t>(jobs));
    for (std::size_t i = 0; i < sweep.size(); ++i)
      pool.submit([&run_point, i](std::size_t) { run_point(i); });
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < sweep.size(); ++i) run_point(i);
  }

  Table t({"R_s (cycles)", "eta_start", "eta_end", "round gamma (cycles)",
           "round (ms @100MHz)", "min block memory (samples)"});
  for (const auto& row : rows) t.add_row(row);
  std::cout << t.render();

  std::cout
      << "\nreading: blocks and the round scale ~linearly with R_s once the\n"
         "switching cost dominates (utilization fixed at 0.953): hardware-\n"
         "assisted switching (R_s ~ 100) would shrink blocks ~40x and cut\n"
         "worst-case latency and block memory by the same factor — the\n"
         "quantified payoff of the paper's stated future work.\n";
  return 0;
}
