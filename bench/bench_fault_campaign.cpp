// E13 — fault-injection campaign on the PAL stereo decoder.
//
// Runs the deterministic fault campaign (app/fault_campaign.hpp) at the
// default intensity ladder and writes the machine-readable
// BENCH_faults.json (validated against common/bench_schema.hpp before it is
// written). The document carries no wall-clock fields: the same --seed
// produces a bit-identical file for any --jobs.
//
// Flags: --jobs N (default 2), --seed S, --json PATH, --samples N
// (front-end samples per point; larger = longer campaign). Observability
// (docs/observability.md): --metrics prints the metrics snapshot of a
// fault-free reference run of the campaign configuration; --chrome-trace
// PATH and --report PATH write that reference run's Perfetto trace and
// schema-pinned RunReport.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "app/fault_campaign.hpp"
#include "app/pal_report.hpp"
#include "common/bench_schema.hpp"
#include "common/table.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"

int main(int argc, char** argv) {
  using namespace acc;

  app::FaultCampaignConfig cfg;
  cfg.jobs = 2;
  std::string json_path = "BENCH_faults.json";
  bool want_metrics = false;
  std::string chrome_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      cfg.pal.input_samples = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      want_metrics = true;
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--jobs N] [--seed S] [--json PATH] [--samples N]"
                   " [--metrics] [--chrome-trace PATH] [--report PATH]\n";
      return 2;
    }
  }

  std::cout << "E13: fault campaign on the PAL decoder (seed 0x" << std::hex
            << cfg.seed << std::dec << ", jobs " << cfg.jobs << ")\n\n";
  const app::FaultCampaignResult res = app::run_fault_campaign(cfg);

  Table t({"level", "intensity", "faults", "drops", "blocks", "violations",
           "covered", "genuine", "recoveries", "underruns"});
  for (const app::FaultPointResult& p : res.points) {
    t.add_row({p.level.label, fmt_double(p.level.intensity),
               std::to_string(p.faults_injected),
               std::to_string(p.notifications_dropped),
               std::to_string(p.blocks_checked), std::to_string(p.violations),
               std::to_string(p.covered_by_slack),
               std::to_string(p.genuine_breaches),
               std::to_string(p.notify_recoveries),
               std::to_string(p.sink_underruns)});
  }
  std::cout << t.render() << "\n";

  const json::Value doc = app::faults_bench_doc(cfg, res);
  const std::vector<std::string> problems = validate_bench_faults(doc);
  if (!problems.empty()) {
    std::cerr << "BENCH_faults.json violates its schema:\n";
    for (const std::string& p : problems) std::cerr << "  " << p << "\n";
    return 1;
  }
  std::ofstream out(json_path);
  out << doc.pretty() << "\n";
  out.flush();
  if (out)
    std::cout << "wrote " << json_path << "\n";
  else
    std::cout << "WARNING: could not write " << json_path << "\n";

  // Observability artifacts come from a fault-free reference run of the
  // campaign's PAL configuration (the baseline every faulted point is
  // judged against).
  if (want_metrics || !chrome_path.empty() || !report_path.empty()) {
    obs::MetricsRegistry metrics;
    sim::TraceLog trace;
    app::PalSimConfig ref = cfg.pal;
    ref.metrics = &metrics;
    ref.trace = &trace;
    const app::PalSimResult r = app::run_pal_decoder(ref);
    if (want_metrics)
      std::cout << "\n== fault-free reference metrics ==\n"
                << metrics.snapshot_text();
    if (!chrome_path.empty()) {
      std::ofstream ct(chrome_path);
      ct << obs::chrome_trace_json(trace);
      std::cout << "chrome trace written to " << chrome_path << "\n";
    }
    if (!report_path.empty()) {
      std::ofstream rp(report_path);
      rp << app::pal_run_report_json(ref, r, metrics, &trace);
      std::cout << "run report written to " << report_path << "\n";
    }
  }

  // The campaign's headline claim, also asserted by ctest: delays inside
  // the declared envelope never breach the bounds; dropped notifications
  // (recovered only by timeout) do.
  for (const app::FaultPointResult& p : res.points) {
    if (!p.level.drop_notifications && p.genuine_breaches != 0) {
      std::cerr << "UNEXPECTED: genuine breach at within-envelope level "
                << p.level.label << "\n";
      return 1;
    }
  }
  return 0;
}
