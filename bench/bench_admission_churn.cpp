// E14 — online admission, departure and live mode changes under churn.
//
// Replays the seeded 200-event session trace (ctrl/workload.hpp) against the
// live control plane (src/ctrl/) under all three cycle-exact steppers and
// writes the machine-readable BENCH_admission.json (validated against
// common/bench_schema.hpp before it is written). The document carries no
// wall-clock fields: the same --seed produces a bit-identical file for any
// --jobs.
//
// The configuration is linted at startup (lint::startup_gate): the chain and
// every join template pass the static rules — including the control-plane
// rules C02 (mu satisfiable at eta_max) and G03 (declared accelerator kinds)
// — before the first simulated cycle. --no-lint bypasses the gate.
//
// Flags: --jobs N (default 2), --seed S, --events N, --json PATH.
// Observability (docs/observability.md): --metrics prints the wake-list
// run's metrics snapshot; --chrome-trace PATH writes its Perfetto trace
// (one "modechange" duration event per executed transition).
//
// Exit status: 2 on bad usage or lint rejection; 1 if the steppers diverge,
// an admitted stream misses a deadline, the analysis cache hit rate is not
// above 50%, or the document breaks its schema; 0 otherwise.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "app/admission_churn.hpp"
#include "app/pal_report.hpp"
#include "common/bench_schema.hpp"
#include "common/table.hpp"
#include "lint/linter.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace acc;

  app::ChurnConfig cfg = app::small_churn_config();
  cfg.jobs = 2;
  std::string json_path = "BENCH_admission.json";
  bool want_metrics = false;
  std::string chrome_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.workload.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      cfg.workload.events = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      want_metrics = true;
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-lint") == 0) {
      // consumed by lint::startup_gate below
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--jobs N] [--seed S] [--events N] [--json PATH]"
                   " [--metrics] [--chrome-trace PATH] [--no-lint]\n";
      return 2;
    }
  }

  if (!lint::startup_gate(argc, argv, app::churn_lint_input(cfg), std::cerr))
    return 2;

  obs::MetricsRegistry metrics;
  sim::TraceLog trace;
  if (want_metrics) cfg.metrics = &metrics;
  if (!chrome_path.empty()) cfg.trace = &trace;

  std::cout << "E14: admission churn on the shared chain (seed 0x" << std::hex
            << cfg.workload.seed << std::dec << ", " << cfg.workload.events
            << " events, jobs " << cfg.jobs << ")\n\n";
  const app::ChurnResult res = app::run_churn_campaign(cfg);

  Table t({"stepper", "cycles", "modechanges", "accepts", "rejects",
           "cache-hits", "misses", "samples", "digest"});
  for (const app::ChurnRunResult& r : res.runs) {
    t.add_row({app::stepper_name(r.stepper), std::to_string(r.cycles_run),
               std::to_string(r.mode_changes), std::to_string(r.accepts),
               std::to_string(r.rejects),
               std::to_string(r.cache_hits) + "/" +
                   std::to_string(r.cache_lookups),
               std::to_string(r.deadline_misses),
               std::to_string(r.samples_delivered),
               std::to_string(r.digest)});
  }
  std::cout << t.render() << "\n";

  const json::Value doc = app::admission_bench_doc(cfg, res);
  const std::vector<std::string> problems = validate_bench_admission(doc);
  if (!problems.empty()) {
    std::cerr << "BENCH_admission.json violates its schema:\n";
    for (const std::string& p : problems) std::cerr << "  " << p << "\n";
    return 1;
  }
  std::ofstream out(json_path);
  out << doc.pretty() << "\n";
  out.flush();
  if (out)
    std::cout << "wrote " << json_path << "\n";
  else
    std::cout << "WARNING: could not write " << json_path << "\n";

  if (want_metrics)
    std::cout << "\n== wake-list run metrics ==\n" << metrics.snapshot_text();
  if (!chrome_path.empty()) {
    std::ofstream ct(chrome_path);
    ct << obs::chrome_trace_json(trace);
    std::cout << "chrome trace written to " << chrome_path << "\n";
  }

  // The campaign's headline claims, also asserted by ctest.
  if (!res.equivalent) {
    std::cerr << "UNEXPECTED: stepper runs diverged\n";
    return 1;
  }
  const app::ChurnRunResult& ref = res.runs.back();
  if (ref.deadline_misses != 0) {
    std::cerr << "UNEXPECTED: " << ref.deadline_misses
              << " deadline misses on admitted streams\n";
    return 1;
  }
  if (ref.cache_lookups == 0 || 2 * ref.cache_hits <= ref.cache_lookups) {
    std::cerr << "UNEXPECTED: analysis cache hit rate " << ref.cache_hits
              << "/" << ref.cache_lookups << " not above 50%\n";
    return 1;
  }
  return 0;
}
