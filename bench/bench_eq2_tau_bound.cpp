// E2 — Equations 2-4: tau_s <= tau_hat_s and block spacing <= gamma_hat
// across a randomized sweep of chain shapes, block sizes and reconfiguration
// costs; reports how tight the bound is.
#include <algorithm>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataflow/executor.hpp"
#include "sharing/analysis.hpp"
#include "sharing/csdf_model.hpp"

int main() {
  using namespace acc;
  using namespace acc::sharing;

  std::cout << "=== Eq. 2-4: worst-case bounds vs exact behaviour ===\n\n";

  SplitMix64 rng(0xE42);
  int checked = 0;
  int violations = 0;
  double worst_slack_pct = 100.0;
  double total_slack_pct = 0.0;

  for (int trial = 0; trial < 400; ++trial) {
    SharedSystemSpec sys;
    const int accels = static_cast<int>(rng.uniform(1, 3));
    sys.chain.accel_cycles_per_sample.clear();
    for (int a = 0; a < accels; ++a)
      sys.chain.accel_cycles_per_sample.push_back(rng.uniform(1, 6));
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 20);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 4);
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 5000)}};
    const std::int64_t eta = rng.uniform(1, 256);

    // Exact via the CSDF model's self-timed execution.
    CsdfModelOptions o;
    o.eta = eta;
    o.alpha0 = eta;
    o.alpha3 = eta;
    o.producer_period = 0;
    o.consumer_period = 0;
    CsdfStreamModel m = build_csdf_stream_model(sys, 0, o);
    df::SelfTimedExecutor exec(m.graph);
    const auto done = exec.run_until_firings(m.exit, eta);
    if (!done) continue;
    const Time bound = tau_hat(sys, 0, eta);
    ++checked;
    if (*done > bound) ++violations;
    const double slack =
        100.0 * static_cast<double>(bound - *done) / static_cast<double>(bound);
    worst_slack_pct = std::min(worst_slack_pct, slack);
    total_slack_pct += slack;
  }

  Table t({"metric", "value"});
  t.add_row({"configurations checked", std::to_string(checked)});
  t.add_row({"bound violations", std::to_string(violations)});
  t.add_row({"tightest slack (%)", fmt_double(worst_slack_pct, 2)});
  t.add_row({"mean slack (%)",
             fmt_double(total_slack_pct / std::max(checked, 1), 2)});
  std::cout << t.render();

  // gamma_hat for multi-stream round-robin (Eq. 3-4): sum of tau_hats, and
  // RR spacing below it in the analytic schedule sense.
  std::cout << "\nEq. 4 example (paper parameters, four streams):\n";
  SharedSystemSpec pal;
  pal.chain.accel_cycles_per_sample = {1, 1};
  pal.chain.entry_cycles_per_sample = 15;
  pal.chain.exit_cycles_per_sample = 1;
  pal.streams = {{"s0", Rational(28224, 1000000), 4100},
                 {"s1", Rational(28224, 1000000), 4100},
                 {"s2", Rational(3528, 1000000), 4100},
                 {"s3", Rational(3528, 1000000), 4100}};
  const std::vector<std::int64_t> etas{9872, 9872, 1234, 1234};
  Table g({"stream", "eta", "tau_hat", "s_hat (wait for others)"});
  for (std::size_t s = 0; s < 4; ++s) {
    g.add_row({pal.streams[s].name, std::to_string(etas[s]),
               fmt_int(tau_hat(pal, s, etas[s])),
               fmt_int(s_hat(pal, s, etas))});
  }
  std::cout << g.render();
  std::cout << "gamma_hat (round) = " << fmt_int(gamma_hat(pal, etas))
            << " cycles\n";
  return violations == 0 ? 0 : 1;
}
