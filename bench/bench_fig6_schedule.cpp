// E1 — Paper Fig. 6: the execution schedule of one block of eta samples
// through gateway + accelerator(s), parameterized in eta.
//
// Regenerates the schedule three ways and cross-checks them:
//   1. the closed-form stage recurrence (analysis.hpp),
//   2. self-timed execution of the Fig. 5 CSDF model,
//   3. the Eq. 2 upper bound tau_hat.
#include <iostream>

#include "common/table.hpp"
#include "dataflow/executor.hpp"
#include "sharing/analysis.hpp"
#include "sharing/csdf_model.hpp"
#include "sharing/maxplus_schedule.hpp"

int main() {
  using namespace acc;
  using namespace acc::sharing;

  std::cout << "=== Fig. 6: execution schedule of one block (eta parameterized) ===\n\n";

  // The paper's chain parameters, one accelerator for the figure's layout.
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 1000), 4100}};

  // A small eta so the Gantt chart is printable.
  const std::int64_t eta = 6;
  const BlockSchedule sch = block_schedule(sys, 0, eta);

  Table t({"sample", "G0 [start,end)", "A0 [start,end)", "G1 [start,end)"});
  for (std::int64_t j = 0; j < eta; ++j) {
    std::vector<std::string> row{std::to_string(j)};
    for (std::size_t m = 0; m < 3; ++m) {
      const ScheduleEntry& e = sch.entries[j * 3 + m];
      row.push_back("[" + std::to_string(e.start) + "," +
                    std::to_string(e.end) + ")");
    }
    t.add_row(row);
  }
  std::cout << t.render();
  std::cout << "\nGantt view (one row per pipeline stage, '#'/'=' alternate "
               "per sample):\n"
            << render_gantt(sch) << "\n";
  std::cout << "block completion tau_s        = " << sch.completion
            << " cycles (R_s + eta*epsilon + rho_A + delta)\n";

  // Cross-check against the executed CSDF model (Fig. 5).
  CsdfModelOptions o;
  o.eta = eta;
  o.alpha0 = eta;
  o.alpha3 = eta;
  o.producer_period = 0;
  o.consumer_period = 0;
  CsdfStreamModel m = build_csdf_stream_model(sys, 0, o);
  df::SelfTimedExecutor exec(m.graph);
  const auto done = exec.run_until_firings(m.exit, eta);
  std::cout << "CSDF model (Fig. 5) executed  = " << (done ? *done : -1)
            << " cycles\n";
  const MaxPlusChain mp = build_maxplus_chain(sys, 0);
  std::cout << "max-plus model                = " << mp.completion(eta)
            << " cycles (eigenvalue = " << mp.eigenvalue()->str()
            << " cycles/sample = Eq. 2's c0)\n";
  std::cout << "Eq. 2 bound tau_hat           = " << tau_hat(sys, 0, eta)
            << " cycles\n";

  // Sweep eta to show the parameterization (the essence of the figure).
  std::cout << "\n";
  Table sweep({"eta", "tau_s exact", "tau_hat (Eq. 2)", "bound holds"});
  bool all_ok = true;
  for (std::int64_t e : {1, 2, 4, 8, 16, 64, 256, 1024, 10136}) {
    const Time exact = block_schedule(sys, 0, e).completion;
    const Time bound = tau_hat(sys, 0, e);
    all_ok &= exact <= bound;
    sweep.add_row({std::to_string(e), fmt_int(exact), fmt_int(bound),
                   exact <= bound ? "yes" : "NO"});
  }
  std::cout << sweep.render();
  std::cout << (all_ok ? "\nall schedules within the Eq. 2 bound\n"
                       : "\nBOUND VIOLATED\n");
  return all_ok ? 0 : 1;
}
