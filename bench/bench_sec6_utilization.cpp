// E5 — §VI utilization and the real-time verdict, measured on the cycle
// simulator.
//
// Paper: "The entry-gateway ... is processing data streams 5% of the time,
// which means that 95% of the time is spent to save and restore state ...
// our current implementation is already sufficiently fast ... as we meet
// our real-time throughput constraint of 44.1 kS/s"; and "sharing ...
// improved accelerator utilization by a factor of four".
//
// We measure: the gateway's cycle budget split (data / reconfig / wait),
// the accelerators' duty cycles, and the drop/underrun verdict. Note the
// published 5%/95% split is arithmetically inconsistent with the published
// epsilon = 15 cycles/sample and R_s = 4100 (see EXPERIMENTS.md); we report
// the split measured with the published parameters AND the software-
// switching cost R_sw that WOULD yield the paper's 5% figure.
#include <iostream>

#include "app/pal_system.hpp"
#include "common/table.hpp"

int main() {
  using namespace acc;

  std::cout << "=== §VI: gateway duty cycle, accelerator utilization, real-time verdict ===\n\n";

  app::PalSimConfig cfg;
  cfg.input_samples = 1 << 15;
  const app::PalSimResult r = app::run_pal_decoder(cfg);

  const double total = static_cast<double>(r.cycles_run);
  Table t({"quantity", "value", "share"});
  t.add_row({"cycles simulated", fmt_int(r.cycles_run), ""});
  t.add_row({"gateway data (DMA) cycles", fmt_int(r.gateway.data_cycles),
             fmt_double(100.0 * r.gateway.data_cycles / total, 1) + " %"});
  t.add_row({"gateway reconfig cycles", fmt_int(r.gateway.reconfig_cycles),
             fmt_double(100.0 * r.gateway.reconfig_cycles / total, 1) + " %"});
  t.add_row({"gateway wait cycles", fmt_int(r.gateway.wait_cycles),
             fmt_double(100.0 * r.gateway.wait_cycles / total, 1) + " %"});
  t.add_row({"CORDIC busy", fmt_int(r.cordic_busy),
             fmt_double(100.0 * r.cordic_busy / total, 1) + " %"});
  t.add_row({"FIR busy", fmt_int(r.fir_busy),
             fmt_double(100.0 * r.fir_busy / total, 1) + " %"});
  t.add_row({"front-end drops", std::to_string(r.source_drops), ""});
  t.add_row({"DAC underruns", std::to_string(r.sink_underruns), ""});
  // Scaled-clock conversion: input_period cycles == one front-end sample
  // == 1/sample_rate seconds.
  t.add_row({"max end-to-end audio latency", fmt_int(r.max_audio_latency),
             fmt_double(static_cast<double>(r.max_audio_latency) * 1000.0 /
                            (cfg.sample_rate *
                             static_cast<double>(cfg.input_period)), 1) +
                 " ms eq."});
  std::cout << t.render();

  // Utilization-improvement factor: one CORDIC/FIR instance serves what
  // would otherwise be four dedicated instances, each busy 1/4 as much.
  const double shared_duty = static_cast<double>(r.cordic_busy) / total;
  std::cout << "\naccelerator utilization: shared CORDIC duty = "
            << fmt_double(100.0 * shared_duty, 1)
            << " %; four dedicated copies would each idle at "
            << fmt_double(100.0 * shared_duty / 4.0, 1)
            << " % -> sharing improves utilization by a factor of 4 "
               "(paper: 'a factor of four')\n";

  const bool ok = r.source_drops == 0 && r.sink_underruns == 0;
  std::cout << "real-time constraint (continuous audio): "
            << (ok ? "MET" : "VIOLATED") << " (paper: met)\n";

  // The split implied by the published 5%-data figure: per round the DMA
  // moves eps*sum(eta) cycles of data; for that to be 5% of the round, the
  // four context switches must cost 19x as much.
  const double data_per_round =
      15.0 * 2.0 * static_cast<double>(r.eta_stage1 + r.eta_stage2);
  const double r_sw = 19.0 * data_per_round / 4.0;
  std::cout << "\nnote: with the published epsilon=15 and R_s=4100 the data "
               "share of a round is "
            << fmt_double(100.0 * data_per_round /
                              (data_per_round + 4.0 * 4100.0), 1)
            << " %.\nThe paper's '5% data / 95% save-restore' figure implies "
               "a software context-switch cost of ~"
            << fmt_int(static_cast<std::int64_t>(r_sw))
            << " cycles per switch\n(consistent with its remark that 'streams "
               "are switched by reading and restoring state from software').\n";
  return ok ? 0 : 1;
}
