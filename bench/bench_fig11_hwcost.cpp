// E6 — Paper Fig. 11: hardware costs of the components on a Virtex-6.
//
// Prints the published per-component costs (the bar chart's data) next to
// our structural estimates, which validate that the numbers are reproduced
// by a first-principles area model rather than merely transcribed.
#include <iostream>

#include "common/table.hpp"
#include "hwcost/model.hpp"

int main() {
  using namespace acc;
  using namespace acc::hwcost;

  std::cout << "=== Fig. 11: hardware costs of various components (Virtex-6) ===\n\n";

  Table t({"component", "slices", "LUTs", "est. LUTs (structural)",
           "est. error"});
  struct Row {
    Component c;
    StructuralEstimate est;
  };
  const Row rows[] = {
      {Component::kFirDownsampler, estimate_fir(33, 16)},
      {Component::kMicroBlaze, estimate_microblaze()},
      {Component::kCordic, estimate_cordic(16, 32)},
      {Component::kEntryGateway,
       {estimate_microblaze().luts + estimate_dma().luts + 110,
        estimate_microblaze().ffs + estimate_dma().ffs}},
      {Component::kExitGateway,
       {estimate_dma().luts + estimate_ring_ni().luts + 300,
        estimate_dma().ffs + estimate_ring_ni().ffs}},
  };
  for (const Row& r : rows) {
    const FpgaCost pub = published_cost(r.c);
    const double err = 100.0 *
                       (static_cast<double>(r.est.luts) -
                        static_cast<double>(pub.luts)) /
                       static_cast<double>(pub.luts);
    t.add_row({component_name(r.c), fmt_int(pub.slices), fmt_int(pub.luts),
               fmt_int(r.est.luts),
               (err >= 0 ? "+" : "") + fmt_double(err, 1) + " %"});
  }
  std::cout << t.render();
  std::cout << "\n(published slices/LUTs are the paper's Table I values; the "
               "entry/exit split is a documented reconstruction summing to "
               "the published pair total 3788/4445)\n";

  // The paper's interconnect choice (§II): a point-to-point switch
  // "results in higher hardware costs compared to the ring-based
  // interconnect" — quantified with the structural estimators.
  std::cout << "\ninterconnect scaling (structural estimates, 64-bit links):\n";
  Table ic({"tiles", "dual ring (LUTs)", "TDM crossbar (LUTs)",
            "crossbar / ring"});
  for (const InterconnectComparison& c :
       compare_interconnects({4, 8, 16, 32, 64})) {
    ic.add_row({std::to_string(c.nodes), fmt_int(c.ring.luts),
                fmt_int(c.crossbar.luts),
                fmt_double(c.crossbar_over_ring, 2) + "x"});
  }
  std::cout << ic.render();
  return 0;
}
