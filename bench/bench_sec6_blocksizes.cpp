// E4 — §VI block-size computation (Algorithm 1) on the PAL case study.
//
// Paper: "for 44.1 kHz audio output, the streams at the start of the chain
// need to multiplex blocks of 10136 samples while the streams at the end of
// the chain will be multiplexed at 1267 samples (note the 8:1 ratio in the
// block sizes due to down-sampling)".
//
// The paper does not publish the clock frequency that yields exactly 10136,
// so we sweep plausible clocks around 100 MHz; the SHAPE is what must
// reproduce: feasibility, the exact 8:1 ratio of the real relaxation, and
// blocks of the same order of magnitude.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"

namespace {

acc::sharing::SharedSystemSpec pal_spec(double clock_hz) {
  using namespace acc;
  using namespace acc::sharing;
  // Front-end rate = 64 * 44.1 kHz = 2.8224 MS/s; chain-end streams run at
  // 1/8 of that (after the first 8:1 down-sampler).
  const double fe = 64 * 44100.0;
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  auto mu = [&](double rate_hz) {
    // samples/cycle as an exact rational with 1e6 resolution.
    return Rational(static_cast<std::int64_t>(rate_hz * 1e3),
                    static_cast<std::int64_t>(clock_hz * 1e3));
  };
  sys.streams = {{"ch1.start", mu(fe), 4100},
                 {"ch2.start", mu(fe), 4100},
                 {"ch1.end", mu(fe / 8), 4100},
                 {"ch2.end", mu(fe / 8), 4100}};
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acc;
  using namespace acc::sharing;

  // --jobs N: DSE worker threads for the buffer-sizing section below.
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = std::atoi(argv[++i]);
  }

  std::cout << "=== §VI / Algorithm 1: minimum block sizes for the PAL decoder ===\n\n";
  std::cout << "paper reports: eta_start = 10136, eta_end = 1267 "
               "(exactly 8:1), 44.1 kS/s audio met\n\n";

  Table t({"clock (MHz)", "util", "eta_start (ILP)", "eta_end (ILP)", "ratio",
           "gamma (cycles)", "audio met?"});
  for (const double mhz : {90.0, 95.0, 100.0, 105.0, 110.0, 125.0}) {
    const SharedSystemSpec sys = pal_spec(mhz * 1e6);
    if (utilization(sys) >= Rational(1)) {
      t.add_row({fmt_double(mhz, 0), fmt_double(utilization(sys).to_double(), 3),
                 "-", "-", "-", "-", "infeasible"});
      continue;
    }
    const BlockSizeResult ilp = solve_block_sizes_ilp(sys);
    const BlockSizeResult fix = solve_block_sizes_fixpoint(sys);
    const bool agree = ilp.eta == fix.eta;
    t.add_row({fmt_double(mhz, 0),
               fmt_double(utilization(sys).to_double(), 3),
               fmt_int(ilp.eta[0]), fmt_int(ilp.eta[2]),
               fmt_double(static_cast<double>(ilp.eta[0]) /
                              static_cast<double>(ilp.eta[2]), 3),
               fmt_int(ilp.gamma),
               std::string(throughput_met(sys, ilp.eta) ? "yes" : "NO") +
                   (agree ? "" : " (solver mismatch!)")});
  }
  std::cout << t.render();

  // The real relaxation shows the exact 8:1 structure the paper notes.
  const SharedSystemSpec sys = pal_spec(100e6);
  const std::vector<Rational> relax = block_size_real_relaxation(sys);
  std::cout << "\nreal relaxation at 100 MHz: eta_start = "
            << fmt_double(relax[0].to_double(), 1) << ", eta_end = "
            << fmt_double(relax[2].to_double(), 1) << ", exact ratio = "
            << (relax[0] / relax[2]).str() << " (paper: 8:1 exactly)\n";
  std::cout << "\npaper vs ours: same order of magnitude (1e4 / 1e3), same "
               "8:1 structure; the absolute value depends on the\n"
               "unpublished clock frequency (see EXPERIMENTS.md)\n";

  // Gateway buffer sizing downstream of Algorithm 1, on a 1:1000-scaled
  // PAL shape (the full-size blocks make exact self-timed analysis
  // pointless to run in a table bench). Exercises the DSE engine's
  // two-buffer staircase; counters show the memo/pruning savings.
  std::cout << "\nminimum gateway buffers (alpha0, alpha3) per stream on a "
               "scaled PAL shape (DSE engine, "
            << (jobs == 0 ? "hw" : std::to_string(jobs))
            << " worker thread(s)):\n";
  {
    SharedSystemSpec small;
    small.chain.accel_cycles_per_sample = {1, 1};
    small.chain.entry_cycles_per_sample = 2;
    small.chain.exit_cycles_per_sample = 1;
    small.streams = {{"ch1.start", Rational(1, 8), 20},
                     {"ch1.end", Rational(1, 64), 20}};
    const BlockSizeResult blocks = solve_block_sizes_fixpoint(small);
    df::DseStats stats;
    Table bt({"stream", "eta", "alpha0", "alpha3"});
    for (std::size_t s = 0; s < small.num_streams(); ++s) {
      const Time period = s == 0 ? 8 : 64;
      const StreamBufferResult r = min_buffers_for_stream(
          small, s, blocks.eta, period, /*consumer_chunk=*/1, jobs, &stats);
      bt.add_row({small.streams[s].name, fmt_int(blocks.eta[s]),
                  r.feasible ? fmt_int(r.alpha0) : "-",
                  r.feasible ? fmt_int(r.alpha3) : "-"});
    }
    std::cout << bt.render();
    std::cout << "DSE engine: " << stats.simulations << " simulations, cache "
              << "hit rate " << fmt_double(stats.cache_hit_rate(), 2)
              << ", " << stats.pruned()
              << " candidates answered by monotone pruning\n";
  }
  return 0;
}
