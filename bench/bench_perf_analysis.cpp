// E9 — performance of the analyses and the simulator (google-benchmark).
//
// Not a paper artifact: establishes that the design-time analyses are
// interactive-speed and reports the simulator's cycles/second.
//
// Observability (docs/observability.md): --metrics prints the metrics
// snapshot of an instrumented reference run of the sim workload (separate
// from the timed runs, so BENCH_sim.json timings stay unperturbed);
// --chrome-trace PATH and --report PATH write that run's Perfetto trace and
// schema-pinned RunReport.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "app/pal_report.hpp"
#include "app/sim_bench.hpp"
#include "common/bench_schema.hpp"
#include "common/json.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/hsdf.hpp"
#include "sharing/bench_doc.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/csdf_model.hpp"
#include "sharing/nonmonotone.hpp"
#include "sim/gateway.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace {

using namespace acc;

sharing::SharedSystemSpec pal_like() {
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s0", Rational(28224, 1000000), 4100},
                 {"s1", Rational(28224, 1000000), 4100},
                 {"s2", Rational(3528, 1000000), 4100},
                 {"s3", Rational(3528, 1000000), 4100}};
  return sys;
}

void BM_RepetitionVector(benchmark::State& state) {
  df::Graph g;
  std::vector<df::ActorId> actors;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i)
    actors.push_back(g.add_sdf_actor("a" + std::to_string(i), 1));
  for (int i = 0; i + 1 < n; ++i)
    g.add_sdf_edge(actors[i], actors[i + 1], (i % 3) + 1, ((i + 1) % 3) + 1, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(df::compute_repetition_vector(g));
}
BENCHMARK(BM_RepetitionVector)->Arg(8)->Arg(64)->Arg(256);

void BM_SelfTimedThroughput(benchmark::State& state) {
  df::Graph g;
  const df::ActorId a = g.add_sdf_actor("A", 2);
  const df::ActorId b = g.add_sdf_actor("B", 3);
  g.add_channel(a, b, {2}, {3}, state.range(0));
  for (auto _ : state) {
    df::SelfTimedExecutor exec(g);
    benchmark::DoNotOptimize(exec.analyze_throughput(a));
  }
}
BENCHMARK(BM_SelfTimedThroughput)->Arg(6)->Arg(64)->Arg(512);

void BM_McrHsdfExpansion(benchmark::State& state) {
  df::Graph g;
  const df::ActorId a = g.add_sdf_actor("A", 2);
  const df::ActorId b = g.add_sdf_actor("B", 3);
  g.add_sdf_edge(a, b, static_cast<std::int64_t>(state.range(0)), 3, 0);
  g.add_sdf_edge(b, a, 3, static_cast<std::int64_t>(state.range(0)), 24);
  for (auto _ : state)
    benchmark::DoNotOptimize(df::sdf_throughput_via_mcm(g, a));
}
BENCHMARK(BM_McrHsdfExpansion)->Arg(2)->Arg(8)->Arg(16);

void BM_BlockSizeIlp(benchmark::State& state) {
  const sharing::SharedSystemSpec sys = pal_like();
  for (auto _ : state)
    benchmark::DoNotOptimize(sharing::solve_block_sizes_ilp(sys));
}
BENCHMARK(BM_BlockSizeIlp);

void BM_BlockSizeFixpoint(benchmark::State& state) {
  const sharing::SharedSystemSpec sys = pal_like();
  for (auto _ : state)
    benchmark::DoNotOptimize(sharing::solve_block_sizes_fixpoint(sys));
}
BENCHMARK(BM_BlockSizeFixpoint);

void BM_BufferSizing(benchmark::State& state) {
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 8), 10}};
  const sharing::BlockSizeResult blocks =
      sharing::solve_block_sizes_fixpoint(sys);
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharing::min_buffers_for_stream(
        sys, 0, blocks.eta, 8, /*consumer_chunk=*/1, jobs));
  }
}
BENCHMARK(BM_BufferSizing)->Arg(1)->Arg(4);

void BM_CsdfModelExecution(benchmark::State& state) {
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 1000), 4100}};
  sharing::CsdfModelOptions o;
  o.eta = state.range(0);
  o.alpha0 = o.eta;
  o.alpha3 = o.eta;
  o.producer_period = 0;
  o.consumer_period = 0;
  sharing::CsdfStreamModel m = sharing::build_csdf_stream_model(sys, 0, o);
  for (auto _ : state) {
    df::SelfTimedExecutor exec(m.graph);
    benchmark::DoNotOptimize(exec.run_until_firings(m.exit, o.eta));
  }
  state.SetItemsProcessed(state.iterations() * o.eta);
}
BENCHMARK(BM_CsdfModelExecution)->Arg(64)->Arg(1024);

/// Simulator speed: cycles/second on a ring + gateway + accelerator system.
/// Arg = sim::StepperKind (0 dense, 1 global-horizon, 2 wake-list) — the
/// trio shows the quiescent-skip and selective-ticking wins in isolation.
void BM_SimulatorCyclesPerSecond(benchmark::State& state) {
  const auto kind = static_cast<sim::StepperKind>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::System sys(4);
    sim::CFifo& in = sys.add_fifo("in", 256);
    sim::CFifo& out = sys.add_fifo("out", 4096, 0, 0);
    auto& accel = sys.add<sim::AcceleratorTile>("a", sys.ring(), 1, 1, 2);
    class Nop final : public accel::StreamKernel {
     public:
      void push(CQ16 in, std::vector<CQ16>& o) override { o.push_back(in); }
      [[nodiscard]] std::vector<std::int32_t> save_state() const override {
        return {};
      }
      void restore_state(std::span<const std::int32_t>) override {}
      void reset() override {}
      [[nodiscard]] std::size_t state_words() const override { return 0; }
      [[nodiscard]] std::string name() const override { return "nop"; }
      [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
        return std::make_unique<Nop>();
      }
    };
    accel.register_context(0, std::make_unique<Nop>());
    accel.set_upstream(0, 1);
    accel.set_downstream(3, 2, 2);
    auto& exit = sys.add<sim::ExitGateway>("x", sys.ring(), 3, 1, 2);
    exit.set_upstream(1, 1);
    auto& entry = sys.add<sim::EntryGateway>("e", sys.ring(), 0, 2, 1, 1, 2);
    entry.set_chain({&accel});
    entry.set_exit(&exit);
    exit.set_entry(&entry);
    entry.add_stream({0, "s", 32, 32, &in, &out, 50});
    std::vector<sim::Flit> payload(4096, 7);
    sys.add<sim::SourceTile>("src", in, payload, 4);
    state.ResumeTiming();
    sys.run_with(kind, 50000);
    benchmark::DoNotOptimize(sys.now());
  }
  state.SetItemsProcessed(state.iterations() * 50000);  // cycles/sec
}
BENCHMARK(BM_SimulatorCyclesPerSecond)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("stepper");

/// Kernel data plane (ISSUE 8): per-sample push() vs the SoA
/// process_block() path on the PAL decoder's three kernels. Arg = block
/// size; items/sec = input samples/sec, so the block/scalar ratio is the
/// batching win of restructuring the maths for autovectorization (the two
/// paths are bit-identical — kernel_block_test.cpp pins that).
void bench_kernel(benchmark::State& state, accel::StreamKernel& k,
                  bool block_path) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<CQ16> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic full-scale-ish stimulus; any waveform works, the
    // kernels are data-independent in control flow.
    const double t = static_cast<double>(i);
    in[i] = CQ16{Q16::from_double(0.4 * std::sin(0.011 * t)),
                 Q16::from_double(0.4 * std::cos(0.017 * t))};
  }
  std::vector<CQ16> out(n);
  std::vector<std::uint8_t> counts(n);
  std::vector<CQ16> scratch;
  scratch.reserve(n);
  for (auto _ : state) {
    if (block_path) {
      benchmark::DoNotOptimize(k.process_block(in, out, counts.data()));
    } else {
      scratch.clear();
      for (const CQ16 s : in) k.push(s, scratch);
      benchmark::DoNotOptimize(scratch.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_KernelFirScalar(benchmark::State& state) {
  accel::DecimatingFir k(
      accel::quantize_taps(accel::design_lowpass(33, 0.06)), 8);
  bench_kernel(state, k, /*block_path=*/false);
}
void BM_KernelFirBlock(benchmark::State& state) {
  accel::DecimatingFir k(
      accel::quantize_taps(accel::design_lowpass(33, 0.06)), 8);
  bench_kernel(state, k, /*block_path=*/true);
}
void BM_KernelMixerScalar(benchmark::State& state) {
  accel::NcoMixer k(accel::NcoMixer::freq_from_normalized(0.21));
  bench_kernel(state, k, /*block_path=*/false);
}
void BM_KernelMixerBlock(benchmark::State& state) {
  accel::NcoMixer k(accel::NcoMixer::freq_from_normalized(0.21));
  bench_kernel(state, k, /*block_path=*/true);
}
void BM_KernelFmDemodScalar(benchmark::State& state) {
  accel::FmDiscriminator k;
  bench_kernel(state, k, /*block_path=*/false);
}
void BM_KernelFmDemodBlock(benchmark::State& state) {
  accel::FmDiscriminator k;
  bench_kernel(state, k, /*block_path=*/true);
}
BENCHMARK(BM_KernelFirScalar)->Arg(16)->Arg(256)->ArgName("block");
BENCHMARK(BM_KernelFirBlock)->Arg(16)->Arg(256)->ArgName("block");
BENCHMARK(BM_KernelMixerScalar)->Arg(16)->Arg(256)->ArgName("block");
BENCHMARK(BM_KernelMixerBlock)->Arg(16)->Arg(256)->ArgName("block");
BENCHMARK(BM_KernelFmDemodScalar)->Arg(16)->Arg(256)->ArgName("block");
BENCHMARK(BM_KernelFmDemodBlock)->Arg(16)->Arg(256)->ArgName("block");

/// Machine-readable perf trajectory of the DSE engine: BENCH_dse.json with
/// wall time, simulation count, cache hit rate and pruning wins for jobs=1
/// and jobs=N (--jobs, default 4). The workload and document builder live
/// in sharing/bench_doc.hpp so the schema tests cover the shipping code.
void emit_dse_json(int jobs, const std::string& path) {
  const sharing::DseWorkload workload;  // historical bench scale
  json::Array runs;
  runs.push_back(json::Value(sharing::dse_run(workload, 1)));
  if (jobs != 1) runs.push_back(json::Value(sharing::dse_run(workload, jobs)));
  const json::Value doc = sharing::dse_bench_doc(std::move(runs));

  const std::vector<std::string> problems = validate_bench_dse(doc);
  if (!problems.empty()) {
    std::cout << "WARNING: BENCH_dse.json violates its schema:\n";
    for (const std::string& p : problems) std::cout << "  " << p << "\n";
  }

  std::ofstream out(path);
  out << doc.pretty() << "\n";
  out.flush();
  if (out)
    std::cout << "wrote " << path << "\n";
  else
    std::cout << "WARNING: could not write " << path << "\n";
  for (const json::Value& r : doc.at("runs").as_array()) {
    std::cout << "  dse workload, jobs=" << r.at("jobs").as_int() << ": "
              << r.at("wall_ms").as_double() << " ms, "
              << r.at("simulations").as_int() << " simulations, cache hit rate "
              << r.at("cache_hit_rate").as_double() << ", pruned "
              << (r.at("pruned_infeasible").as_int() +
                  r.at("pruned_feasible").as_int())
              << "\n";
  }
}

/// Machine-readable perf trajectory of the SIMULATOR: BENCH_sim.json with
/// cycles/second of all three steppers — dense, global-horizon ("event")
/// and wake-list — on the full PAL decoder, plus the outcome digest
/// proving they agreed. Returns false on a schema violation, a stepper
/// divergence, a checksum mismatch or an event-driven run that failed to
/// tick fewer cycles than dense — the `sim_perf` ctest entry (label
/// "perf") fails on those, never on the speedup itself, so CI stays free
/// of machine-load flake while still pinning correctness.
bool emit_sim_json(bool fast, const std::string& path) {
  app::PalSimConfig pal = app::sim_bench_pal_config(fast);
  // One synthesis serves all three stepper runs (the waveform is a pure
  // function of the scenario); sim_bench_run keeps it off the wall clock.
  const std::vector<sim::Flit> input = app::synthesize_pal_input(pal);
  pal.prebuilt_input = &input;
  const app::SimBenchRun dense =
      app::sim_bench_run(pal, sim::StepperKind::kDense);
  const app::SimBenchRun event =
      app::sim_bench_run(pal, sim::StepperKind::kGlobalHorizon);
  const app::SimBenchRun wake =
      app::sim_bench_run(pal, sim::StepperKind::kWakeList);
  const json::Value doc = app::sim_bench_doc(pal, dense, event, wake);

  std::vector<std::string> problems = validate_bench_sim(doc);
  // Semantic gates beyond the schema: the event-driven steppers must
  // actually skip (strictly fewer ticked cycles than dense) and the audio
  // must be bit-identical — both machine-load independent, so safe to
  // fail CI on.
  for (const app::SimBenchRun* r : {&event, &wake}) {
    if (r->dense_ticks >= dense.dense_ticks) {
      problems.push_back(r->mode + " stepper ticked " +
                         std::to_string(r->dense_ticks) +
                         " cycles, expected fewer than dense's " +
                         std::to_string(dense.dense_ticks));
    }
    if (r->audio_checksum != dense.audio_checksum) {
      problems.push_back("audio checksum mismatch: dense " +
                         std::to_string(dense.audio_checksum) + " vs " +
                         r->mode + " " + std::to_string(r->audio_checksum));
    }
  }
  if (!problems.empty()) {
    std::cout << "ERROR: BENCH_sim.json violates its schema:\n";
    for (const std::string& p : problems) std::cout << "  " << p << "\n";
  }

  std::ofstream out(path);
  out << doc.pretty() << "\n";
  out.flush();
  if (out)
    std::cout << "wrote " << path << "\n";
  else
    std::cout << "WARNING: could not write " << path << "\n";
  for (const json::Value& r : doc.at("runs").as_array()) {
    std::cout << "  pal decoder, " << r.at("mode").as_string() << ": "
              << r.at("wall_ms").as_double() << " ms, ";
    if (r.at("cycles_per_sec").is_null())
      std::cout << "n/a cycles/s (";
    else
      std::cout << r.at("cycles_per_sec").as_double() << " cycles/s (";
    std::cout << r.at("dense_ticks").as_int() << " dense ticks, "
              << r.at("skipped_cycles").as_int() << " cycles skipped in "
              << r.at("skips").as_int() << " jumps, "
              << r.at("component_ticks").as_int() << " component ticks, "
              << r.at("horizon_queries").as_int() << " horizon queries, "
              << r.at("wakes").as_int() << " wakes, "
              << r.at("batch_runs").as_int() << " batch runs moving "
              << r.at("batch_tokens").as_int() << " tokens)\n";
  }
  std::cout << "  wake_list/dense speedup: ";
  if (doc.at("speedup").is_null())
    std::cout << "n/a";
  else
    std::cout << doc.at("speedup").as_double();
  std::cout << ", outcome "
            << (doc.at("equivalent").as_bool() ? "identical" : "DIVERGED")
            << "\n";
  return problems.empty();
}

/// Instrumented reference run of the sim workload under the shipping
/// (wake-list) stepper, kept SEPARATE from the timed emit_sim_json runs so
/// attaching the registry never perturbs the BENCH_sim.json wall clocks.
void emit_observability(bool fast, bool want_metrics,
                        const std::string& chrome_path,
                        const std::string& report_path) {
  obs::MetricsRegistry metrics;
  sim::TraceLog trace;
  app::PalSimConfig ref = app::sim_bench_pal_config(fast);
  ref.stepper = sim::StepperKind::kWakeList;
  ref.metrics = &metrics;
  ref.trace = &trace;
  const app::PalSimResult r = app::run_pal_decoder(ref);
  if (want_metrics)
    std::cout << "\n== sim reference metrics ==\n" << metrics.snapshot_text();
  if (!chrome_path.empty()) {
    std::ofstream ct(chrome_path);
    ct << obs::chrome_trace_json(trace);
    std::cout << "chrome trace written to " << chrome_path << "\n";
  }
  if (!report_path.empty()) {
    std::ofstream rp(report_path);
    rp << app::pal_run_report_json(ref, r, metrics, &trace);
    std::cout << "run report written to " << report_path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark parses the rest.
  int jobs = 4;
  std::string json_path = "BENCH_dse.json";
  std::string sim_json_path = "BENCH_sim.json";
  bool sim_fast = false;
  bool sim_only = false;
  bool want_metrics = false;
  std::string chrome_path;
  std::string report_path;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dse-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sim-json") == 0 && i + 1 < argc) {
      sim_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sim-fast") == 0) {
      sim_fast = true;
    } else if (std::strcmp(argv[i], "--sim-only") == 0) {
      sim_only = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      want_metrics = true;
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const bool observe =
      want_metrics || !chrome_path.empty() || !report_path.empty();
  if (sim_only) {
    const bool ok = emit_sim_json(sim_fast, sim_json_path);
    if (observe)
      emit_observability(sim_fast, want_metrics, chrome_path, report_path);
    return ok ? 0 : 1;
  }

  emit_dse_json(jobs, json_path);
  if (!emit_sim_json(sim_fast, sim_json_path)) return 1;
  if (observe)
    emit_observability(sim_fast, want_metrics, chrome_path, report_path);

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
