// E12 (ablation) — §V-F: minimal block sizes vs buffer-optimal block sizes.
//
// Because buffer capacities are non-monotone in the block size (Fig. 8),
// the paper proposes a branch-and-bound search over block sizes to find the
// assignment minimizing total buffer capacity. This bench runs
// `optimal_blocks_for_buffers` against the Algorithm-1 minimum on systems
// where the two differ, quantifying the buffer savings of searching beyond
// the minimal blocks.
//
// Scenarios are independent B&B searches, so they fan out over a thread
// pool (--jobs N, default 2). Each scenario renders into its own string
// buffer and the buffers are printed in submission order, so the output is
// bit-identical for any --jobs — the same determinism contract as
// bench_fault_campaign.
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/nonmonotone.hpp"

namespace {

using namespace acc;
using namespace acc::sharing;

std::string report(const char* title, const SharedSystemSpec& sys,
                   const std::vector<df::Time>& periods, std::int64_t slack,
                   const std::vector<std::int64_t>& chunks = {}) {
  std::ostringstream out;
  out << title << "\n";
  const std::vector<std::int64_t> ch =
      chunks.empty() ? std::vector<std::int64_t>(sys.num_streams(), 1)
                     : chunks;
  const BlockSizeResult minimum = solve_block_sizes_fixpoint(sys);
  if (!minimum.feasible) {
    out << "  infeasible\n\n";
    return out.str();
  }
  std::int64_t min_total = 0;
  bool min_ok = true;
  std::vector<StreamBufferResult> at_min(sys.num_streams());
  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    at_min[s] = min_buffers_for_stream(sys, s, minimum.eta, periods[s], ch[s]);
    min_ok &= at_min[s].feasible;
    min_total += at_min[s].total();
  }
  const OptimalBlockResult best =
      optimal_blocks_for_buffers(sys, periods, slack, ch);

  Table t({"strategy", "blocks", "total buffer (samples)"});
  auto blocks_str = [&](const std::vector<std::int64_t>& etas) {
    std::string s;
    for (std::size_t i = 0; i < etas.size(); ++i)
      s += (i ? "," : "") + std::to_string(etas[i]);
    return s;
  };
  t.add_row({"Algorithm-1 minimum", blocks_str(minimum.eta),
             min_ok ? std::to_string(min_total) : "infeasible"});
  if (best.feasible) {
    t.add_row({"buffer-optimal (B&B, slack " + std::to_string(slack) + ")",
               blocks_str(best.eta), std::to_string(best.total_buffer)});
  }
  out << t.render();
  if (best.feasible && min_ok) {
    out << "  buffer saving over minimal blocks: "
        << (min_total - best.total_buffer) << " samples ("
        << fmt_double(100.0 * (min_total - best.total_buffer) /
                          std::max<std::int64_t>(min_total, 1), 1)
        << " %)\n";
  }
  out << "\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
      return 1;
    }
  }

  std::cout << "=== Ablation: minimal vs buffer-optimal block sizes (§V-F) ===\n\n";

  // Scenario closures write into their own slot; rendering order is fixed.
  std::vector<std::string> sections(5);
  std::vector<std::function<void()>> scenarios;

  scenarios.push_back([&sections] {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1};
    sys.chain.entry_cycles_per_sample = 2;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"s", Rational(1, 4), 6}};
    sections[0] = report("single stream, tight rate (mu=1/4, R=6):", sys, {4}, 8);
  });
  scenarios.push_back([&sections] {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1};
    sys.chain.entry_cycles_per_sample = 3;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"a", Rational(1, 10), 20}, {"b", Rational(1, 14), 20}};
    sections[1] = report("two streams (mu=1/10, 1/14; R=20):", sys, {10, 14}, 5);
  });
  scenarios.push_back([&sections] {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1, 1};
    sys.chain.entry_cycles_per_sample = 2;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"fast", Rational(1, 8), 12}, {"slow", Rational(1, 24), 12}};
    sections[2] = report("two-accelerator chain (mu=1/8, 1/24; R=12):", sys, {8, 24}, 6);
  });
  scenarios.push_back([&sections] {
    // The Fig. 8 situation: the stream feeds a 4:1 down-sampler, so its
    // output is claimed in chunks of 4. A minimal block misaligned with the
    // chunk strands remainders in the buffer; the B&B finds a (possibly
    // larger) aligned block with a smaller total buffer.
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1};
    sys.chain.entry_cycles_per_sample = 2;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"s", Rational(1, 3), 6}};
    sections[3] = report("chunked consumer (4:1 down-sampler downstream; mu=1/3, R=6):",
                         sys, {3}, 8, {4});
  });
  scenarios.push_back([&sections] {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1};
    sys.chain.entry_cycles_per_sample = 1;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"s", Rational(1, 2), 10}};
    sections[4] = report("chunked consumer (8:1 down-sampler downstream; mu=1/2, R=10):",
                         sys, {2}, 12, {8});
  });

  // The clearest manifestation: the OUTPUT buffer of a stream feeding an
  // 8:1 down-sampler. When the Algorithm-1 feasibility boundary lands on a
  // chunk-misaligned eta, a larger aligned block needs a strictly smaller
  // buffer.
  const std::vector<Time> sweep = {11, 13, 15};
  std::vector<std::vector<std::string>> sweep_rows(sweep.size());
  auto run_sweep_point = [&](std::size_t i) {
    const Time r = sweep[i];
    const auto pts = chunked_consumer_buffer_sweep(r, 1, 2, 8, r, r + 10);
    std::int64_t eta_min = -1;
    std::int64_t cap_min = -1;
    std::int64_t best_eta = -1;
    std::int64_t best_cap = -1;
    for (const auto& p : pts) {
      if (p.min_capacity < 0) continue;
      if (eta_min < 0) {
        eta_min = p.eta;
        cap_min = p.min_capacity;
      }
      if (best_cap < 0 || p.min_capacity < best_cap) {
        best_cap = p.min_capacity;
        best_eta = p.eta;
      }
    }
    sweep_rows[i] = {std::to_string(r), std::to_string(eta_min),
                     std::to_string(cap_min), std::to_string(best_eta),
                     std::to_string(best_cap),
                     std::to_string(cap_min - best_cap) + " samples"};
  };

  if (jobs > 1) {
    ThreadPool pool(static_cast<std::size_t>(jobs));
    for (auto& s : scenarios) pool.submit([&s](std::size_t) { s(); });
    for (std::size_t i = 0; i < sweep.size(); ++i)
      pool.submit([&run_sweep_point, i](std::size_t) { run_sweep_point(i); });
    pool.wait_idle();
  } else {
    for (auto& s : scenarios) s();
    for (std::size_t i = 0; i < sweep.size(); ++i) run_sweep_point(i);
  }

  for (const std::string& s : sections) std::cout << s;

  std::cout << "output-buffer-optimal block vs Algorithm-1 minimum (stream "
               "feeding an 8:1 chunk consumer, sample period 2):\n";
  Table t({"R_s", "eta_min (Alg. 1)", "buffer at eta_min", "best eta",
           "buffer at best", "saving"});
  for (const auto& row : sweep_rows) t.add_row(row);
  std::cout << t.render();

  std::cout
      << "\nconclusions:\n"
         "  1. for plain sample-rate consumers the Algorithm-1 minimum was\n"
         "     also buffer-optimal in every system we swept (the input\n"
         "     buffer's ~eta growth dominates any output-side saving);\n"
         "  2. when the downstream claims CHUNKS (down-sampler / next\n"
         "     gateway block), a misaligned minimal block strands\n"
         "     remainders and a LARGER block needs a strictly smaller\n"
         "     buffer (up to 12 samples above) — the paper's Fig. 8\n"
         "     non-monotonicity, and the reason its ILP is paired with a\n"
         "     branch-and-bound buffer search.\n";
  return 0;
}
