// E10 (extension) — shared gateway architecture vs the dedicated baseline.
//
// The paper argues sharing saves 75 % of the accelerator instances and
// 63 % of the logic while still meeting real time. This bench runs BOTH
// systems on the same synthesized broadcast and compares: real-time
// verdict, audio quality, accelerator duty cycles, and (from the cost
// model) the hardware bill — making the sharing trade-off measurable
// end to end: the dedicated system has lower latency and idle accelerators;
// the shared system pays reconfiguration and round-robin wait but buys back
// most of the silicon.
#include <iostream>

#include "app/pal_system.hpp"
#include "common/table.hpp"
#include "hwcost/model.hpp"
#include "radio/metrics.hpp"

namespace {

double snr_of(const std::vector<double>& ch, double rate, double tone) {
  if (ch.size() < 300) return -1.0;
  std::vector<double> v = ch;
  acc::radio::remove_dc(v);
  return acc::radio::tone_snr_db(v, rate, tone, 128);
}

}  // namespace

int main() {
  using namespace acc;

  std::cout << "=== Shared gateway architecture vs dedicated accelerators ===\n\n";

  app::PalSimConfig cfg;
  cfg.input_samples = 1 << 15;
  const app::PalSimResult sh = app::run_pal_decoder(cfg);
  const app::PalSimResult de = app::run_pal_decoder_dedicated(cfg);

  const hwcost::SharingComparison hw = hwcost::paper_case_study();

  Table t({"metric", "shared (1 CORDIC + 1 FIR)", "dedicated (4 + 4)"});
  t.add_row({"accelerator instances", "2", "8"});
  t.add_row({"front-end drops", std::to_string(sh.source_drops),
             std::to_string(de.source_drops)});
  t.add_row({"DAC underruns", std::to_string(sh.sink_underruns),
             std::to_string(de.sink_underruns)});
  t.add_row({"L tone SNR (dB)",
             fmt_double(snr_of(sh.left, sh.audio_rate, cfg.tone_left_hz), 1),
             fmt_double(snr_of(de.left, de.audio_rate, cfg.tone_left_hz), 1)});
  t.add_row({"R tone SNR (dB)",
             fmt_double(snr_of(sh.right, sh.audio_rate, cfg.tone_right_hz), 1),
             fmt_double(snr_of(de.right, de.audio_rate, cfg.tone_right_hz), 1)});
  t.add_row({"block sizes (stage1/stage2)",
             std::to_string(sh.eta_stage1) + " / " +
                 std::to_string(sh.eta_stage2),
             std::to_string(de.eta_stage1) + " / " +
                 std::to_string(de.eta_stage2)});
  t.add_row({"reconfig cycles", fmt_int(sh.gateway.reconfig_cycles),
             fmt_int(de.gateway.reconfig_cycles)});
  const double shd = 100.0 * static_cast<double>(sh.cordic_busy) /
                     static_cast<double>(sh.cycles_run);
  const double ded = 100.0 * static_cast<double>(de.cordic_busy) /
                     (4.0 * static_cast<double>(de.cycles_run));
  t.add_row({"CORDIC-class duty per instance",
             fmt_double(shd, 2) + " %", fmt_double(ded, 2) + " %"});
  t.add_row({"hardware (slices)", fmt_int(hw.shared.slices),
             fmt_int(hw.non_shared.slices)});
  t.add_row({"hardware (LUTs)", fmt_int(hw.shared.luts),
             fmt_int(hw.non_shared.luts)});
  std::cout << t.render();

  const bool both_rt = sh.source_drops == 0 && sh.sink_underruns == 0 &&
                       de.source_drops == 0 && de.sink_underruns == 0;
  std::cout << "\nboth systems meet real time: " << (both_rt ? "yes" : "NO")
            << "\nsharing removes " << 6 << " of 8 accelerator instances (75 %) "
            << "and saves " << fmt_double(hw.slice_saving_pct, 1)
            << " % slices / " << fmt_double(hw.lut_saving_pct, 1)
            << " % LUTs (paper: 75 % instances, 63.5 % / 66.3 %)\n"
            << "utilization per shared instance is ~4x the dedicated one — "
               "the paper's 'improved utilization by a factor of four'\n";
  return both_rt ? 0 : 1;
}
