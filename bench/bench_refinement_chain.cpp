// E8 — Paper Fig. 2 / §III: the refinement chain
//      hardware  ⊑  CSDF model (Fig. 5)  ⊑  single-actor SDF model (Fig. 7)
// under the-earlier-the-better theory: every output token of the more
// refined system is produced no later than the matching token of its
// abstraction, so guarantees proven on the SDF model hold all the way down.
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/refinement.hpp"
#include "sharing/analysis.hpp"
#include "sharing/csdf_model.hpp"
#include "sharing/sdf_model.hpp"

namespace {

using namespace acc;
using namespace acc::sharing;

std::vector<df::Time> production_times(df::Graph& g, df::ActorId ref,
                                       df::EdgeId edge, std::int64_t tokens) {
  df::SelfTimedExecutor exec(g);
  std::vector<df::Time> times;
  df::ExecObservers obs;
  obs.on_produce = [&](df::EdgeId e, std::int64_t count, df::Time t) {
    if (e == edge)
      for (std::int64_t i = 0; i < count; ++i) times.push_back(t);
  };
  exec.set_observers(obs);
  (void)exec.run_until_firings(ref, tokens);
  return times;
}

}  // namespace

int main() {
  std::cout << "=== Refinement chain: CSDF (Fig. 5) refines SDF (Fig. 7) ===\n\n";

  SplitMix64 rng(0x9E31);
  int checked = 0;
  int violations = 0;
  df::Time max_gap = 0;  // how much earlier the CSDF model can be

  for (int trial = 0; trial < 60; ++trial) {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {rng.uniform(1, 4)};
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 10);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 3);
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 60)}};
    const std::int64_t eta = rng.uniform(1, 16);
    const df::Time period = rng.uniform(1, 6);
    const std::int64_t tokens = 8 * eta;

    CsdfModelOptions co;
    co.eta = eta;
    co.alpha0 = 2 * eta;
    co.alpha3 = 2 * eta;
    co.producer_period = period;
    co.consumer_period = period;
    CsdfStreamModel cm = build_csdf_stream_model(sys, 0, co);

    SdfModelOptions so;
    so.eta = eta;
    so.alpha0 = 2 * eta;
    so.alpha3 = 2 * eta;
    so.producer_period = period;
    so.consumer_period = period;
    so.shared_duration = tau_hat(sys, 0, eta);
    SdfStreamModel sm = build_sdf_stream_model(so);

    const auto refined =
        production_times(cm.graph, cm.consumer, cm.output_data, tokens);
    const auto abstraction = production_times(sm.graph, sm.consumer,
                                              sm.output_buffer.data, tokens);
    const df::RefinementReport rep =
        df::check_earlier_the_better(refined, abstraction);
    ++checked;
    if (!rep.holds) {
      ++violations;
      std::cout << "VIOLATION: " << df::describe(rep) << "\n";
    } else {
      for (std::size_t j = 0; j < rep.compared; ++j)
        max_gap = std::max(max_gap, abstraction[j] - refined[j]);
    }
  }

  Table t({"metric", "value"});
  t.add_row({"random configurations", std::to_string(checked)});
  t.add_row({"refinement violations", std::to_string(violations)});
  t.add_row({"max earliness of CSDF vs SDF (cycles)", fmt_int(max_gap)});
  std::cout << t.render();
  std::cout << (violations == 0
                    ? "\nthe-earlier-the-better holds: SDF guarantees carry "
                      "over to the CSDF model (and, per the executor-level "
                      "cross-checks in tests/, to the cycle simulator)\n"
                    : "\nREFINEMENT BROKEN\n");
  return violations == 0 ? 0 : 1;
}
