// E3 — Paper Fig. 8: minimum buffer capacities are NON-MONOTONE in the
// block size.
//
// The scanned figure's exact actor parameters are not recoverable (see
// DESIGN.md), so this bench reproduces the *claim* on two model families:
//   (a) baseline: plain producer/consumer — monotone under standard
//       consume-at-start/produce-at-end token semantics (reported so the
//       contrast is explicit);
//   (b) the paper-shaped case: a shared actor (duration R + c0*eta, Eq. 2)
//       delivering eta-sample blocks into an 8:1 down-sampling consumer —
//       exactly the chain-end streams of the PAL case study. Block
//       remainders misaligned with the consumer's chunk make SMALLER blocks
//       need LARGER buffers, the paper's headline observation
//       (its Fig. 8(b): alpha(2)=6 > alpha(5)=5).
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "dataflow/graph.hpp"
#include "sharing/nonmonotone.hpp"

int main(int argc, char** argv) {
  using namespace acc;
  using namespace acc::sharing;

  // --jobs N: DSE worker threads for the sweeps (results are identical for
  // any value; see docs/analysis.md).
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = std::atoi(argv[++i]);
  }
  df::DseStats stats;

  std::cout << "=== Fig. 8: non-monotone minimum buffer capacity vs block size ===\n";
  std::cout << "(DSE engine: " << (jobs == 0 ? "hw" : std::to_string(jobs))
            << " worker thread(s))\n\n";

  std::cout << "(a) baseline two-actor sweep (producer dur 1 -> consumer "
               "dur 5 consuming eta): MONOTONE\n";
  Table base({"eta", "max throughput", "min capacity"});
  std::vector<std::int64_t> base_caps;
  for (const BufferSweepPoint& p : two_actor_buffer_sweep(1, 5, 1, 8, jobs, &stats)) {
    base.add_row({std::to_string(p.eta), p.max_throughput.str(),
                  std::to_string(p.min_capacity)});
    base_caps.push_back(p.min_capacity);
  }
  std::cout << base.render();
  std::cout << "non-monotone: " << (is_non_monotone(base_caps) ? "YES" : "no")
            << "\n\n";

  std::cout << "(b) shared actor (R=6 + 1*eta) -> 4:1 down-sampling consumer "
               "at sample period 3:\n";
  Table nm({"eta", "min capacity", "note"});
  std::vector<std::int64_t> caps;
  const auto pts = chunked_consumer_buffer_sweep(6, 1, 3, 4, 3, 16, jobs, &stats);
  for (const BufferSweepPoint& p : pts) {
    std::string note;
    if (p.min_capacity < 0) {
      note = "infeasible";
    } else if (!caps.empty() && p.min_capacity < caps.back()) {
      note = "<-- SMALLER than eta-1";
    }
    nm.add_row({std::to_string(p.eta),
                p.min_capacity < 0 ? "-" : std::to_string(p.min_capacity),
                note});
    if (p.min_capacity >= 0) caps.push_back(p.min_capacity);
  }
  std::cout << nm.render();
  const bool nonmono = is_non_monotone(caps);
  std::cout << "non-monotone: " << (nonmono ? "YES" : "no") << "\n";

  std::cout << "\n(c) the PAL chain-end shape (R=10 + eta, 8:1 chunk, period 2):\n";
  Table nm8({"eta", "min capacity"});
  std::vector<std::int64_t> caps8;
  for (const BufferSweepPoint& p :
       chunked_consumer_buffer_sweep(10, 1, 2, 8, 10, 24, jobs, &stats)) {
    nm8.add_row({std::to_string(p.eta),
                 p.min_capacity < 0 ? "-" : std::to_string(p.min_capacity)});
    if (p.min_capacity >= 0) caps8.push_back(p.min_capacity);
  }
  std::cout << nm8.render();
  std::cout << "non-monotone: " << (is_non_monotone(caps8) ? "YES" : "no")
            << "\n";

  // Context for the figure: the underlying capacity/throughput trade-off of
  // one channel is a clean monotone staircase — the non-monotonicity above
  // only appears when comparing MINIMA across different block sizes.
  std::cout << "\n(d) capacity/throughput Pareto staircase of a single "
               "channel (A(2) -> B(3), rates 2:3):\n";
  {
    df::Graph g;
    const df::ActorId a = g.add_sdf_actor("A", 2);
    const df::ActorId b = g.add_sdf_actor("B", 3);
    df::Channel ch = g.add_channel(a, b, {2}, {3}, 3);
    Table ps({"capacity", "throughput (B firings/cycle)"});
    for (const df::ParetoPoint& p : df::pareto_buffer_sweep(g, ch, b))
      ps.add_row({std::to_string(p.capacity), p.throughput.str()});
    std::cout << ps.render();
  }

  std::cout << "\n(e) the real gateway system: minimum alpha0+alpha3 vs "
               "forced eta (two-buffer staircase search):\n";
  {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {1};
    sys.chain.entry_cycles_per_sample = 2;
    sys.chain.exit_cycles_per_sample = 1;
    sys.streams = {{"s", Rational(1, 8), 10}};
    Table gw({"eta", "alpha0", "alpha3", "total"});
    for (const GatewayBufferPoint& p :
         gateway_buffer_sweep(sys, 0, 8, 2, 6, jobs, &stats)) {
      gw.add_row({std::to_string(p.eta),
                  p.feasible ? std::to_string(p.alpha0) : "-",
                  p.feasible ? std::to_string(p.alpha3) : "-",
                  p.feasible ? std::to_string(p.total()) : "infeasible"});
    }
    std::cout << gw.render();
  }

  std::cout << "\npaper Fig. 8(b) reference table: eta in {1..5} -> alpha in "
               "{5,6,7,8,5} (their model; see EXPERIMENTS.md)\n";
  std::cout << "conclusion matches the paper: minimizing block sizes does "
               "NOT generally minimize buffer capacities\n";

  std::cout << "\nDSE engine counters over all sweeps: "
            << stats.simulations << " simulations, "
            << stats.cache_hits << " cache hits ("
            << static_cast<int>(stats.cache_hit_rate() * 100.0)
            << "%), " << stats.pruned()
            << " candidates answered by monotone pruning\n";
  const bool engine_worked =
      stats.simulations > 0 && stats.cache_hits > 0 && stats.pruned() > 0;
  if (!engine_worked)
    std::cout << "ERROR: expected cache hits and pruning wins > 0\n";
  return nonmono && is_non_monotone(caps8) && !is_non_monotone(base_caps) &&
                 engine_worked
             ? 0
             : 1;
}
