#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "accel/kernel.hpp"
#include "sim/cfifo.hpp"
#include "sim/gateway.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace acc::sim {
namespace {

class Passthrough final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override { out.push_back(in); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {0};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "pass"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Passthrough>();
  }
};

/// Two streams multiplexed over one passthrough accelerator, with optional
/// fault injection on every hook point.
struct FaultySystem {
  System sys{4};
  CFifo* in0;
  CFifo* in1;
  CFifo* out0;
  CFifo* out1;
  AcceleratorTile* accel;
  EntryGateway* entry;
  ExitGateway* exit;
  SourceTile* src0;
  SourceTile* src1;

  FaultySystem(std::int64_t eta, Cycle reconfig, std::size_t samples,
               FaultInjector* fault, TraceLog* trace = nullptr,
               Cycle accel_cycles = 1) {
    in0 = &sys.add_fifo("in0", 4 * eta);
    in1 = &sys.add_fifo("in1", 4 * eta);
    out0 = &sys.add_fifo("out0", 4 * eta);
    out1 = &sys.add_fifo("out1", 4 * eta);

    accel = &sys.add<AcceleratorTile>("acc", sys.ring(), 1, accel_cycles, 2);
    accel->register_context(0, std::make_unique<Passthrough>());
    accel->register_context(1, std::make_unique<Passthrough>());
    accel->set_upstream(0, 1);
    accel->set_downstream(3, 2, 2);

    exit = &sys.add<ExitGateway>("exit", sys.ring(), 3, 1, 2);
    exit->set_upstream(1, 1);
    entry = &sys.add<EntryGateway>("entry", sys.ring(), 0, 2, 1, 1, 2);
    entry->set_chain({accel});
    entry->set_exit(exit);
    exit->set_entry(entry);
    entry->add_stream({0, "s0", eta, eta, in0, out0, reconfig});
    entry->add_stream({1, "s1", eta, eta, in1, out1, reconfig});

    if (fault != nullptr) {
      entry->set_fault(fault);
      exit->set_fault(fault);
      sys.ring().set_fault(fault);
      in0->set_fault(fault);
      in1->set_fault(fault);
    }
    if (trace != nullptr) {
      entry->set_trace(trace);
      exit->set_trace(trace);
    }

    std::vector<Flit> payload0(samples);
    std::vector<Flit> payload1(samples);
    std::iota(payload0.begin(), payload0.end(), Flit{1000});
    std::iota(payload1.begin(), payload1.end(), Flit{500000});
    src0 = &sys.add<SourceTile>("src0", *in0, payload0, 16);
    src1 = &sys.add<SourceTile>("src1", *in1, payload1, 16);
  }

  std::vector<Flit> drain_out(CFifo& f) {
    std::vector<Flit> v;
    while (f.can_pop(sys.now())) v.push_back(f.pop(sys.now()));
    return v;
  }

  void expect_all_delivered(std::size_t samples) {
    const std::vector<Flit> got0 = drain_out(*out0);
    const std::vector<Flit> got1 = drain_out(*out1);
    ASSERT_EQ(got0.size(), samples);
    ASSERT_EQ(got1.size(), samples);
    for (std::size_t i = 0; i < samples; ++i) {
      EXPECT_EQ(got0[i], 1000 + i);
      EXPECT_EQ(got1[i], 500000 + i);
    }
  }
};

FaultSpec delay_spec(double p, Cycle max_delay, Cycle min_spacing = 0) {
  FaultSpec s;
  s.probability = p;
  s.max_delay = max_delay;
  s.min_spacing = min_spacing;
  return s;
}

TEST(FaultInjector, SameSeedSameSequenceDifferentSeedDiverges) {
  FaultInjector a(42);
  FaultInjector b(42);
  FaultInjector c(43);
  const FaultSpec spec = delay_spec(0.5, 10);
  a.configure(FaultSite::kRingLink, spec);
  b.configure(FaultSite::kRingLink, spec);
  c.configure(FaultSite::kRingLink, spec);
  bool diverged = false;
  for (Cycle t = 0; t < 2000; ++t) {
    const Cycle da = a.delay(FaultSite::kRingLink, t);
    EXPECT_EQ(da, b.delay(FaultSite::kRingLink, t));
    diverged |= da != c.delay(FaultSite::kRingLink, t);
  }
  EXPECT_TRUE(diverged);
  EXPECT_GT(a.total_injected(), 0);
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

TEST(FaultInjector, SitesHaveIndependentStreams) {
  FaultInjector inj(7);
  inj.configure(FaultSite::kRingLink, delay_spec(0.5, 10));
  inj.configure(FaultSite::kConfigBus, delay_spec(0.5, 10));
  bool differ = false;
  for (Cycle t = 0; t < 500; ++t) {
    differ |= inj.delay(FaultSite::kRingLink, t) !=
              inj.delay(FaultSite::kConfigBus, t);
  }
  EXPECT_TRUE(differ);
}

TEST(FaultInjector, HonorsMinSpacing) {
  FaultInjector inj(1);
  inj.configure(FaultSite::kRingLink, delay_spec(1.0, 4, /*spacing=*/100));
  Cycle last_hit = -1;
  for (Cycle t = 0; t < 5000; ++t) {
    if (inj.delay(FaultSite::kRingLink, t) > 0) {
      if (last_hit >= 0) {
        EXPECT_GE(t - last_hit, 100);
      }
      last_hit = t;
    }
  }
  EXPECT_GE(inj.total_injected(), 2);
}

TEST(FaultInjector, HonorsWindow) {
  FaultInjector inj(1);
  FaultSpec s = delay_spec(1.0, 4);
  s.window_from = 100;
  s.window_until = 200;
  inj.configure(FaultSite::kConfigBus, s);
  for (Cycle t = 0; t < 400; ++t) {
    const Cycle d = inj.delay(FaultSite::kConfigBus, t);
    if (t < 100 || t >= 200) {
      EXPECT_EQ(d, 0) << "at " << t;
    }
  }
  EXPECT_GT(inj.total_injected(), 0);
  EXPECT_LE(inj.stats(FaultSite::kConfigBus).consults, 100);
}

TEST(FaultInjector, StatsAreConsistent) {
  FaultInjector inj(99);
  inj.configure(FaultSite::kExitNotify, delay_spec(0.3, 8));
  Cycle sum = 0;
  for (Cycle t = 0; t < 1000; ++t) sum += inj.delay(FaultSite::kExitNotify, t);
  const FaultSiteStats& st = inj.stats(FaultSite::kExitNotify);
  // Injected delays open quiet windows, so not every cycle is a consult.
  EXPECT_GT(st.consults, 0);
  EXPECT_LE(st.consults, 1000);
  EXPECT_GT(st.injected, 0);
  EXPECT_LT(st.injected, st.consults);
  EXPECT_EQ(st.delay_cycles, sum);
  EXPECT_LE(st.max_delay_seen, 8);
  EXPECT_GE(st.max_delay_seen, 1);
  EXPECT_EQ(inj.total_delay_cycles(), sum);
}

TEST(FaultInjector, WorstCaseBlockDelayScalesWithSpecs) {
  FaultInjector none(5);
  EXPECT_EQ(none.worst_case_block_delay(10000, 64), 0);

  FaultInjector inj(5);
  inj.configure(FaultSite::kConfigBus, delay_spec(0.1, 64));
  const Cycle bus_only = inj.worst_case_block_delay(10000, 64);
  EXPECT_GE(bus_only, 64);
  inj.configure(FaultSite::kCreditWithhold, delay_spec(0.1, 4));
  const Cycle with_credit = inj.worst_case_block_delay(10000, 64);
  EXPECT_GE(with_credit, bus_only + 2 * 64 * 4);
  inj.configure(FaultSite::kRingLink, delay_spec(0.1, 6, 200));
  EXPECT_GT(inj.worst_case_block_delay(10000, 64), with_credit);
}

TEST(FaultRing, StallsDelayButDeliverEverything) {
  FaultInjector inj(11);
  inj.configure(FaultSite::kRingLink, delay_spec(1.0, 3, /*spacing=*/50));
  FaultySystem faulty(16, 20, 64, &inj);
  FaultySystem clean(16, 20, 64, nullptr);
  faulty.sys.run(64 * 16 + 20000);
  clean.sys.run(64 * 16 + 20000);

  EXPECT_GT(faulty.sys.ring().data().stall_cycles(), 0);
  faulty.expect_all_delivered(64);
  // Faults must slow the system down, never speed it up (conservatism).
  ASSERT_EQ(faulty.entry->block_completions(0).size(),
            clean.entry->block_completions(0).size());
  for (std::size_t k = 0; k < clean.entry->block_completions(0).size(); ++k) {
    EXPECT_GE(faulty.entry->block_completions(0)[k],
              clean.entry->block_completions(0)[k]);
  }
}

TEST(FaultCfifo, WithheldCreditsPreserveOrderAndData) {
  FaultInjector inj(13);
  inj.configure(FaultSite::kCreditWithhold, delay_spec(1.0, 6));
  CFifo f("f", 8, /*rlag=*/2, /*wlag=*/2);
  f.set_fault(&inj);

  // Visibility of a push is delayed beyond the nominal lag but data
  // survives in order.
  f.push(0, 111);
  EXPECT_FALSE(f.can_pop(2));  // nominal lag alone would have shown it
  Cycle seen_at = -1;
  for (Cycle t = 2; t <= 9; ++t) {
    if (f.can_pop(t)) {
      seen_at = t;
      break;
    }
  }
  ASSERT_GE(seen_at, 3);
  EXPECT_LE(seen_at, 2 + 6);
  f.push(seen_at, 222);
  EXPECT_EQ(f.pop(seen_at), 111);
  for (Cycle t = seen_at; t < seen_at + 10; ++t) {
    if (f.can_pop(t)) {
      EXPECT_EQ(f.pop(t), 222);
      break;
    }
  }
  EXPECT_EQ(f.total_popped(), 2);
}

TEST(FaultCfifo, VisibilityStaysMonotone) {
  // A withheld credit must also hold back everything pushed after it —
  // the reader sees a single write counter, not per-sample flags.
  FaultInjector inj(17);
  FaultSpec s = delay_spec(1.0, 50);
  s.min_spacing = 1000;  // only the first push gets the big delay
  inj.configure(FaultSite::kCreditWithhold, s);
  CFifo f("f", 8, 1, 1);
  f.set_fault(&inj);
  f.push(0, 1);   // delayed visibility
  f.push(1, 2);   // nominal lag, but must NOT become visible before flit 1
  Cycle first_visible = -1;
  for (Cycle t = 0; t < 100 && first_visible < 0; ++t)
    if (f.fill_visible(t) > 0) first_visible = t;
  ASSERT_GE(first_visible, 2);
  // When the first flit becomes visible the second follows, never leads.
  EXPECT_EQ(f.fill_visible(first_visible), 2);
}

TEST(FaultGateway, ConfigBusContentionIsTracedAndHarmless) {
  FaultInjector inj(19);
  inj.configure(FaultSite::kConfigBus, delay_spec(1.0, 32));
  TraceLog trace;
  FaultySystem ms(16, 20, 64, &inj, &trace);
  ms.sys.run(64 * 16 + 30000);
  ms.expect_all_delivered(64);
  EXPECT_FALSE(trace.of("fault.config_bus").empty());
  for (const TraceEvent& e : trace.of("fault.config_bus")) {
    EXPECT_GE(e.value, 1);
    EXPECT_LE(e.value, 32);
  }
}

TEST(FaultGateway, DroppedNotificationsRecoverViaRetryWithoutDeadlock) {
  FaultInjector inj(23);
  FaultSpec s;
  s.drop_probability = 1.0;  // every notification is lost
  inj.configure(FaultSite::kExitNotify, s);
  TraceLog trace;
  FaultySystem ms(16, 20, 64, &inj, &trace);
  ms.entry->set_retry_policy(GatewayRetryPolicy{/*timeout=*/300,
                                                /*max_retries=*/4,
                                                /*backoff=*/0});
  ms.sys.run(64 * 16 + 120000);

  ms.expect_all_delivered(64);
  const GatewayStats& st = ms.entry->stats();
  EXPECT_EQ(st.blocks, 8);
  EXPECT_GT(st.notify_timeouts, 0);
  EXPECT_GT(st.notify_recoveries, 0);
  EXPECT_EQ(ms.exit->notifications_dropped(), inj.total_dropped());
  EXPECT_GT(inj.total_dropped(), 0);
  EXPECT_FALSE(trace.of("fault.notify_drop").empty());
  EXPECT_FALSE(trace.of("notify.reclaimed").empty());
}

TEST(FaultGateway, DelayedNotificationsNeedNoRetry) {
  FaultInjector inj(29);
  inj.configure(FaultSite::kExitNotify, delay_spec(1.0, 20));
  FaultySystem ms(16, 20, 64, &inj);
  ms.entry->set_retry_policy(GatewayRetryPolicy{/*timeout=*/5000,
                                                /*max_retries=*/4,
                                                /*backoff=*/0});
  ms.sys.run(64 * 16 + 30000);
  ms.expect_all_delivered(64);
  EXPECT_EQ(ms.entry->stats().notify_timeouts, 0);
}

TEST(FaultGateway, CreditStallEpisodesAreDetected) {
  // A slow accelerator (100 cycles/sample vs epsilon = 2) starves the
  // entry gateway of ring credits for long stretches mid-block: the stall
  // detector must flag the episodes, and every sample must still arrive.
  FaultySystem ms(16, 20, /*samples=*/32, nullptr, nullptr,
                  /*accel_cycles=*/100);
  TraceLog trace;
  ms.entry->set_trace(&trace);
  ms.entry->set_credit_stall_threshold(64);
  ms.sys.run(32 * 16 + 2 * 32 * 100 + 30000);
  ms.expect_all_delivered(32);
  EXPECT_GT(ms.entry->stats().credit_stalls, 0);
  EXPECT_GT(ms.entry->stats().credit_stall_cycles, 0);
  EXPECT_FALSE(trace.of("stall.credit").empty());
}

}  // namespace
}  // namespace acc::sim
