#include "sim/cfifo_protocol.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/cfifo.hpp"

namespace acc::sim {
namespace {

TEST(CFifoProtocol, BasicHandshake) {
  CFifoProtocol f("t", 4, /*latency=*/3);
  EXPECT_EQ(f.producer_space(0), 4);
  EXPECT_EQ(f.consumer_fill(0), 0);
  f.write(0, 11);
  // The consumer sees nothing until the write-counter update lands.
  EXPECT_EQ(f.consumer_fill(2), 0);
  EXPECT_EQ(f.consumer_fill(3), 1);
  EXPECT_EQ(f.read(3), 11u);
  // The producer regains the slot only after the read counter arrives.
  EXPECT_EQ(f.producer_space(3), 3);
  EXPECT_EQ(f.producer_space(6), 4);
}

TEST(CFifoProtocol, ZeroLatencyIsPlainFifo) {
  CFifoProtocol f("t", 2, 0);
  f.write(0, 1);
  f.write(0, 2);
  EXPECT_FALSE(f.can_write(0));
  EXPECT_EQ(f.read(0), 1u);
  EXPECT_TRUE(f.can_write(0));
  EXPECT_EQ(f.read(0), 2u);
}

TEST(CFifoProtocol, UnsafeOperationsThrow) {
  CFifoProtocol f("t", 1, 5);
  EXPECT_THROW((void)f.read(0), precondition_error);
  f.write(0, 9);
  EXPECT_THROW(f.write(0, 10), precondition_error);
  // Data exists but the counter is still in flight: read must refuse.
  EXPECT_THROW((void)f.read(4), precondition_error);
  EXPECT_EQ(f.read(5), 9u);
}

TEST(CFifoProtocol, ViewsAreConservativeNeverUnsafe) {
  // Both sides' beliefs never exceed ground truth in the unsafe direction.
  SplitMix64 rng(0xCF1F);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t cap = rng.uniform(1, 8);
    const Cycle lat = rng.uniform(0, 9);
    CFifoProtocol f("t", cap, lat);
    std::deque<Flit> model;  // golden FIFO
    Flit seq = 0;
    for (Cycle now = 0; now < 400; ++now) {
      EXPECT_LE(f.consumer_fill(now), f.true_fill());
      EXPECT_LE(f.producer_space(now), cap - f.true_fill());
      if (rng.chance(0.5) && f.can_write(now)) {
        f.write(now, seq);
        model.push_back(seq);
        ++seq;
      }
      if (rng.chance(0.5) && f.can_read(now)) {
        ASSERT_FALSE(model.empty());
        EXPECT_EQ(f.read(now), model.front());
        model.pop_front();
      }
    }
  }
}

// Protocol-vs-behavioural-model equivalence: with matching latencies the
// two C-FIFO models admit the same schedule of operations and deliver the
// same data (the behavioural CFifo is a faithful abstraction).
TEST(CFifoProtocol, AgreesWithBehaviouralModel) {
  SplitMix64 rng(0xE0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t cap = rng.uniform(1, 6);
    const Cycle lat = rng.uniform(0, 6);
    CFifoProtocol proto("p", cap, lat);
    CFifo behav("b", cap, lat, lat);
    Flit seq = 100;
    for (Cycle now = 0; now < 300; ++now) {
      EXPECT_EQ(proto.can_write(now), behav.can_push(now)) << "t=" << now;
      EXPECT_EQ(proto.can_read(now), behav.can_pop(now)) << "t=" << now;
      if (rng.chance(0.45) && proto.can_write(now)) {
        proto.write(now, seq);
        behav.push(now, seq);
        ++seq;
      }
      if (rng.chance(0.45) && proto.can_read(now)) {
        EXPECT_EQ(proto.read(now), behav.pop(now)) << "t=" << now;
      }
    }
  }
}

TEST(CFifoProtocol, SustainsFullThroughputWhenCapacityCoversLatency) {
  // Classic C-FIFO sizing rule: capacity >= round-trip latency lets the
  // producer stream at one write per cycle indefinitely.
  const Cycle lat = 4;
  CFifoProtocol f("t", 2 * lat + 1, lat);
  std::int64_t writes = 0;
  std::int64_t reads = 0;
  for (Cycle now = 0; now < 200; ++now) {
    if (f.can_write(now)) {
      f.write(now, 0);
      ++writes;
    }
    if (f.can_read(now)) {
      (void)f.read(now);
      ++reads;
    }
  }
  EXPECT_GE(writes, 195);  // ~1 per cycle after startup
  EXPECT_GE(reads, 190);
}

}  // namespace
}  // namespace acc::sim
