// Wake-path edge cases for the wake-list stepper (System::run).
//
// The equivalence suite (event_horizon_test.cpp) checks whole-workload
// digests; these tests pin the individual scheduling rules at the exact
// boundaries where a missed or double-counted wake would diverge from
// dense semantics:
//
//   1. a wake arriving at the very cycle a cached horizon expires must
//      tick the component exactly once (due-and-woken is not twice-due);
//   2. a data-ring delivery and a credit-ring delivery landing on the
//      same node in the same cycle must both be observed on the next tick;
//   3. the FaultInjector's seeded RNG stream must be consulted at the same
//      cycles even when those consults fall inside a range the wake-list
//      stepper skipped — fault stats and delivery timing stay bit-identical
//      to dense.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/cfifo.hpp"
#include "sim/fault.hpp"
#include "sim/system.hpp"

namespace acc::sim {
namespace {

// --- 1. wake on the exact cycle a cached horizon expires -------------------

/// Sleeps until `fire_at`, then pushes one flit and parks forever.
class OneShotEmitter final : public Component {
 public:
  OneShotEmitter(CFifo& out, Cycle fire_at, Flit value)
      : out_(out), fire_at_(fire_at), value_(value) {}

  void tick(Cycle now) override {
    if (!fired_ && now >= fire_at_) {
      out_.push(now, value_);
      fired_ = true;
    }
  }
  [[nodiscard]] Cycle next_event(Cycle now) const override {
    if (fired_) return kNeverCycle;
    return std::max(fire_at_, now + 1);
  }

 private:
  CFifo& out_;
  Cycle fire_at_;
  Flit value_;
  bool fired_ = false;
};

/// Pops everything visible each tick. Self-schedules one poll at `poll_at`
/// (so its cached horizon expires there) and otherwise relies on the
/// C-FIFO push watcher for wakes.
class PollingListener final : public Component {
 public:
  PollingListener(CFifo& in, Cycle poll_at) : in_(in), poll_at_(poll_at) {
    in_.add_push_watcher(this);
  }

  void tick(Cycle now) override {
    tick_log_.push_back(now);
    while (in_.can_pop(now)) pops_.emplace_back(now, in_.pop(now));
  }
  [[nodiscard]] Cycle next_event(Cycle now) const override {
    Cycle h = in_.when_fill_visible(1, now);
    if (poll_at_ > now) h = std::min(h, poll_at_);
    return h == kNeverCycle ? kNeverCycle : std::max(h, now + 1);
  }

  [[nodiscard]] const std::vector<std::pair<Cycle, Flit>>& pops() const {
    return pops_;
  }
  [[nodiscard]] std::int64_t ticks_at(Cycle c) const {
    return std::count(tick_log_.begin(), tick_log_.end(), c);
  }

 private:
  CFifo& in_;
  Cycle poll_at_;
  std::vector<std::pair<Cycle, Flit>> pops_;
  std::vector<Cycle> tick_log_;
};

/// Build the two-component scenario (listener polls at exactly the cycle
/// the emitter fires), run it with `kind`, and return what the listener
/// popped. `listener_first` selects the registration order, covering both
/// wake directions: toward an already-processed slot (lands at now + 1)
/// and toward a not-yet-scanned slot (picked up in the same cycle).
struct ExpiryResult {
  std::vector<std::pair<Cycle, Flit>> pops;
  std::int64_t ticks_at_fire = 0;
  StepperStats stats;
};

ExpiryResult run_expiry_scenario(StepperKind kind, bool listener_first) {
  constexpr Cycle kFireAt = 40;
  constexpr Flit kValue = 0xC0FFEE;
  System sys{2};
  // Zero visibility lag: the push becomes visible the cycle it happens, so
  // scheduling the woken listener even one cycle late would change when it
  // pops — the tightest possible probe of the wake timing rule.
  CFifo& fifo = sys.add_fifo("f", 8, 0, 0);
  PollingListener* listener = nullptr;
  if (listener_first) {
    listener = &sys.add<PollingListener>(fifo, kFireAt);
    sys.add<OneShotEmitter>(fifo, kFireAt, kValue);
  } else {
    sys.add<OneShotEmitter>(fifo, kFireAt, kValue);
    listener = &sys.add<PollingListener>(fifo, kFireAt);
  }
  sys.run_with(kind, 64);
  return {listener->pops(), listener->ticks_at(kFireAt), sys.stepper_stats()};
}

TEST(WakeListEdge, WakeOnExactHorizonExpiryTicksOnce) {
  for (const bool listener_first : {true, false}) {
    SCOPED_TRACE(listener_first ? "listener before emitter"
                                : "emitter before listener");
    const ExpiryResult dense =
        run_expiry_scenario(StepperKind::kDense, listener_first);
    const ExpiryResult wake =
        run_expiry_scenario(StepperKind::kWakeList, listener_first);

    ASSERT_EQ(dense.pops.size(), 1u);
    EXPECT_EQ(wake.pops, dense.pops);
    // Due-and-woken on the same cycle must not double-tick.
    EXPECT_EQ(dense.ticks_at_fire, 1);
    EXPECT_EQ(wake.ticks_at_fire, 1);
    // The run must actually have exercised the wake-list machinery.
    EXPECT_GT(wake.stats.skipped_cycles, 0);
    EXPECT_GT(wake.stats.wakes, 0);
    EXPECT_LT(wake.stats.component_ticks, dense.stats.component_ticks);
  }
}

// --- 2. simultaneous data delivery + credit return, same node, same cycle --

/// At `fire_at`, injects one data flit and one credit toward `dst` (equal
/// hop counts on the counter-rotating rings, so both eject the same cycle).
class DualInjector final : public Component {
 public:
  DualInjector(DualRing& ring, std::int32_t src, std::int32_t dst,
               Cycle fire_at)
      : ring_(ring), src_(src), dst_(dst), fire_at_(fire_at) {}

  void tick(Cycle now) override {
    if (fired_ || now < fire_at_) return;
    RingMsg data;
    data.dst = dst_;
    data.tag = 7;
    data.payload = 0xDA7A;
    RingMsg credit;
    credit.dst = dst_;
    credit.tag = 9;
    ASSERT_OK(ring_.data().try_inject(src_, data));
    ASSERT_OK(ring_.credit().try_inject(src_, credit));
    fired_ = true;
  }
  [[nodiscard]] Cycle next_event(Cycle now) const override {
    return fired_ ? kNeverCycle : std::max(fire_at_, now + 1);
  }

 private:
  static void ASSERT_OK(bool injected) { ACC_CHECK(injected); }

  DualRing& ring_;
  std::int32_t src_;
  std::int32_t dst_;
  Cycle fire_at_;
  bool fired_ = false;
};

/// Drains both rings at its node every tick, logging what arrived when.
class NodeObserver final : public Component {
 public:
  NodeObserver(DualRing& ring, std::int32_t node) : ring_(ring), node_(node) {}

  void tick(Cycle now) override {
    ring_.data().drain_into(node_, rx_);
    for (const RingMsg& m : rx_) data_log_.emplace_back(now, m.payload);
    const std::int64_t credits = ring_.credit().drain_count(node_);
    if (credits > 0) credit_log_.emplace_back(now, credits);
  }
  [[nodiscard]] Cycle next_event(Cycle) const override { return kNeverCycle; }
  [[nodiscard]] std::int32_t ring_node() const override { return node_; }

  [[nodiscard]] const std::vector<std::pair<Cycle, Flit>>& data_log() const {
    return data_log_;
  }
  [[nodiscard]] const std::vector<std::pair<Cycle, std::int64_t>>& credit_log()
      const {
    return credit_log_;
  }

 private:
  DualRing& ring_;
  std::int32_t node_;
  std::vector<RingMsg> rx_;
  std::vector<std::pair<Cycle, Flit>> data_log_;
  std::vector<std::pair<Cycle, std::int64_t>> credit_log_;
};

struct DeliveryResult {
  std::vector<std::pair<Cycle, Flit>> data_log;
  std::vector<std::pair<Cycle, std::int64_t>> credit_log;
  StepperStats stats;
};

DeliveryResult run_delivery_scenario(StepperKind kind) {
  // 4-node rings, src 0 -> dst 2: two hops clockwise on the data ring, two
  // hops counter-clockwise on the credit ring — both deliveries eject at
  // node 2 in the same cycle.
  System sys{4};
  sys.add<DualInjector>(sys.ring(), 0, 2, /*fire_at=*/50);
  NodeObserver& obs = sys.add<NodeObserver>(sys.ring(), 2);
  sys.run_with(kind, 200);
  return {obs.data_log(), obs.credit_log(), sys.stepper_stats()};
}

TEST(WakeListEdge, SimultaneousDataAndCreditDeliverySameNode) {
  const DeliveryResult dense = run_delivery_scenario(StepperKind::kDense);
  const DeliveryResult wake = run_delivery_scenario(StepperKind::kWakeList);

  ASSERT_EQ(dense.data_log.size(), 1u);
  ASSERT_EQ(dense.credit_log.size(), 1u);
  // Both rings delivered to node 2 in the same cycle, and the observer saw
  // both on one tick.
  EXPECT_EQ(dense.data_log[0].first, dense.credit_log[0].first);
  EXPECT_EQ(wake.data_log, dense.data_log);
  EXPECT_EQ(wake.credit_log, dense.credit_log);
  // A purely reactive observer (next_event = never) must still see the
  // deliveries — only the ring_delivery wake can get it there.
  EXPECT_GT(wake.stats.wakes, 0);
  EXPECT_GT(wake.stats.skipped_cycles, 0);
}

// --- 3. fault RNG consults inside a skipped range --------------------------

/// Sends one flit toward `dst` every `period` cycles (self-scheduled).
class PeriodicPinger final : public Component {
 public:
  PeriodicPinger(DualRing& ring, std::int32_t src, std::int32_t dst,
                 Cycle period, std::int64_t count)
      : ring_(ring), src_(src), dst_(dst), period_(period), left_(count) {}

  void tick(Cycle now) override {
    if (left_ <= 0 || now < next_fire_) return;
    RingMsg m;
    m.dst = dst_;
    m.tag = 1;
    m.payload = static_cast<Flit>(left_);
    if (!ring_.data().try_inject(src_, m)) return;  // retry next tick
    --left_;
    next_fire_ = now + period_;
  }
  [[nodiscard]] Cycle next_event(Cycle now) const override {
    if (left_ <= 0) return kNeverCycle;
    return std::max(next_fire_, now + 1);
  }

 private:
  DualRing& ring_;
  std::int32_t src_;
  std::int32_t dst_;
  Cycle period_;
  std::int64_t left_;
  Cycle next_fire_ = 0;
};

struct FaultResult {
  FaultSiteStats ring_stats;
  std::vector<std::pair<Cycle, Flit>> deliveries;
  Cycle data_stall_cycles = 0;
  StepperStats stats;
};

FaultResult run_fault_scenario(StepperKind kind, std::uint64_t seed) {
  System sys{4};
  FaultInjector inj(seed);
  FaultSpec spec;
  spec.probability = 0.5;
  spec.max_delay = 3;
  spec.min_spacing = 11;
  spec.window_from = 20;
  spec.window_until = 1500;
  inj.configure(FaultSite::kRingLink, spec);
  sys.ring().set_fault(&inj);

  sys.add<PeriodicPinger>(sys.ring(), 0, 2, /*period=*/60, /*count=*/8);
  NodeObserver& obs = sys.add<NodeObserver>(sys.ring(), 2);
  sys.run_with(kind, 2000);

  FaultResult r;
  r.ring_stats = inj.stats(FaultSite::kRingLink);
  r.deliveries = obs.data_log();
  r.data_stall_cycles = sys.ring().data().stall_cycles();
  r.stats = sys.stepper_stats();
  return r;
}

TEST(WakeListEdge, FaultRngConsultedInsideSkippedRange) {
  for (const std::uint64_t seed : {11ULL, 97ULL, 5150ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FaultResult dense = run_fault_scenario(StepperKind::kDense, seed);
    const FaultResult wake = run_fault_scenario(StepperKind::kWakeList, seed);

    // The traffic is sparse (8 pings, period 60), so the rings sit idle
    // between bursts — but the fault window stays open, and dense ticking
    // consults the seeded RNG at every eligible cycle in those gaps. The
    // wake-list run skips the gaps and must land on exactly the same
    // consult cycles, or the deterministic fault pattern desyncs.
    EXPECT_EQ(wake.ring_stats.consults, dense.ring_stats.consults);
    EXPECT_EQ(wake.ring_stats.injected, dense.ring_stats.injected);
    EXPECT_EQ(wake.ring_stats.delay_cycles, dense.ring_stats.delay_cycles);
    EXPECT_EQ(wake.ring_stats.max_delay_seen, dense.ring_stats.max_delay_seen);
    EXPECT_EQ(wake.data_stall_cycles, dense.data_stall_cycles);
    EXPECT_EQ(wake.deliveries, dense.deliveries);

    // Prove the scenario exercises what it claims: consults happened, some
    // triggered, and the wake-list run really skipped cycles.
    EXPECT_GT(dense.ring_stats.consults, 0);
    EXPECT_GT(dense.ring_stats.injected, 0);
    EXPECT_GT(wake.stats.skipped_cycles, 0);
    EXPECT_LT(wake.stats.dense_ticks, dense.stats.dense_ticks);
  }
}

}  // namespace
}  // namespace acc::sim
