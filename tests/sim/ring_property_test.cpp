// Randomized property tests of the dual-ring interconnect: message
// conservation, per-source FIFO ordering, and guaranteed delivery under
// arbitrary traffic patterns.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/ring.hpp"

namespace acc::sim {
namespace {

struct SentRecord {
  std::int32_t src;
  std::uint64_t seq;
};

TEST(RingProperty, RandomTrafficConservedAndOrdered) {
  SplitMix64 rng(0x417);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int32_t n = static_cast<std::int32_t>(rng.uniform(2, 8));
    Ring ring(n, trial % 2 == 0);
    // payload encodes (src, per-src sequence number) for ordering checks.
    std::vector<std::uint64_t> next_seq(n, 0);
    std::map<std::pair<std::int32_t, std::int32_t>, std::vector<std::uint64_t>>
        sent;  // (src,dst) -> seqs
    std::map<std::pair<std::int32_t, std::int32_t>, std::vector<std::uint64_t>>
        got;
    std::int64_t total_sent = 0;
    std::int64_t total_got = 0;

    for (int t = 0; t < 600; ++t) {
      // Random injections from random nodes.
      for (std::int32_t node = 0; node < n; ++node) {
        if (!rng.chance(0.4)) continue;
        const auto dst = static_cast<std::int32_t>(rng.uniform(0, n - 1));
        RingMsg m;
        m.dst = dst;
        m.payload = (static_cast<std::uint64_t>(node) << 48) | next_seq[node];
        if (ring.try_inject(node, m)) {
          sent[{node, dst}].push_back(next_seq[node]);
          ++next_seq[node];
          ++total_sent;
        }
      }
      ring.tick();
      for (std::int32_t node = 0; node < n; ++node) {
        for (const RingMsg& m : ring.drain(node)) {
          const auto src = static_cast<std::int32_t>(m.payload >> 48);
          got[{src, node}].push_back(m.payload & 0xFFFFFFFFFFFFULL);
          ++total_got;
        }
      }
    }
    // Drain the in-flight tail.
    for (int t = 0; t < 4 * n + 40; ++t) {
      ring.tick();
      for (std::int32_t node = 0; node < n; ++node) {
        for (const RingMsg& m : ring.drain(node)) {
          const auto src = static_cast<std::int32_t>(m.payload >> 48);
          got[{src, node}].push_back(m.payload & 0xFFFFFFFFFFFFULL);
          ++total_got;
        }
      }
    }

    // Conservation: everything accepted was delivered, nothing invented.
    EXPECT_EQ(total_sent, total_got) << "n=" << n << " trial=" << trial;
    // Per (src,dst) FIFO order.
    for (const auto& [key, seqs] : sent) {
      const auto it = got.find(key);
      ASSERT_NE(it, got.end()) << "lost all traffic " << key.first << "->"
                               << key.second;
      EXPECT_EQ(it->second, seqs)
          << "reordered " << key.first << "->" << key.second;
    }
  }
}

TEST(RingProperty, SelfAddressedMessagesDeliver) {
  Ring ring(4, true);
  RingMsg m;
  m.dst = 2;
  m.payload = 5;
  ASSERT_TRUE(ring.try_inject(2, m));
  int ticks = 0;
  std::vector<RingMsg> got;
  while (got.empty() && ticks < 10) {
    ring.tick();
    got = ring.drain(2);
    ++ticks;
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(ticks, 5);  // one tick to enter the slot + a full revolution
}

TEST(RingProperty, SaturatedRingStillDrains) {
  // Every node floods one destination; the ring must not livelock.
  Ring ring(4, true);
  std::int64_t sent = 0;
  std::int64_t got = 0;
  for (int t = 0; t < 2000; ++t) {
    for (std::int32_t node = 0; node < 4; ++node) {
      RingMsg m;
      m.dst = (node + 2) % 4;
      if (ring.try_inject(node, m)) ++sent;
    }
    ring.tick();
    for (std::int32_t node = 0; node < 4; ++node)
      got += static_cast<std::int64_t>(ring.drain(node).size());
  }
  EXPECT_GT(got, 1000);
  EXPECT_LE(got, sent);
  // Throughput: a 4-slot ring delivers up to ~1 message/node/2 cycles here.
  EXPECT_GT(got, sent / 2);
}

}  // namespace
}  // namespace acc::sim
