#include "sim/config_bus.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "sim/system.hpp"

namespace acc::sim {
namespace {

TEST(ConfigBus, CostFromExplicitWordCounts) {
  ConfigBusSpec bus;
  bus.setup_cycles = 100;
  bus.cycles_per_word = 2;
  const std::size_t words[] = {10, 5};
  // 100 + 2*(2*10) + 2*(2*5) = 100 + 40 + 20.
  EXPECT_EQ(context_switch_cost(bus, words), 160);
}

TEST(ConfigBus, CostFromLiveTiles) {
  System sys(4);
  auto& cordic = sys.add<AcceleratorTile>("c", sys.ring(), 1, 1, 2);
  cordic.register_context(
      0, std::make_unique<accel::NcoMixer>(
             accel::NcoMixer::freq_from_normalized(0.1)));
  auto& fir = sys.add<AcceleratorTile>("f", sys.ring(), 2, 1, 2);
  fir.register_context(
      0, std::make_unique<accel::DecimatingFir>(
             accel::quantize_taps(accel::design_lowpass(33, 0.06)), 8));
  ConfigBusSpec bus;
  bus.setup_cycles = 50;
  bus.cycles_per_word = 1;
  AcceleratorTile* chain[] = {&cordic, &fir};
  // Mixer state: 1 word. FIR state: 2 + 2*33 = 68 words.
  EXPECT_EQ(cordic.context_words(), 1u);
  EXPECT_EQ(fir.context_words(), 68u);
  EXPECT_EQ(context_switch_cost(bus, chain), 50 + 2 * 1 + 2 * 68);
}

TEST(ConfigBus, HardwareDmaVsSoftwareScale) {
  // The paper's published flat cost (4100) sits between a 1-word/cycle DMA
  // and a slow software loop for the case-study state footprint (the FIR's
  // 68 words + mixer's 1 word per context).
  const std::size_t words[] = {1, 68};
  ConfigBusSpec dma{/*setup=*/20, /*per word=*/1};
  ConfigBusSpec software{/*setup=*/2000, /*per word=*/30};
  EXPECT_LT(context_switch_cost(dma, words), 4100);
  EXPECT_GT(context_switch_cost(software, words), 4100);
}

TEST(ConfigBus, NullTileRejected) {
  ConfigBusSpec bus;
  AcceleratorTile* chain[] = {nullptr};
  EXPECT_THROW((void)context_switch_cost(bus, chain), precondition_error);
}

}  // namespace
}  // namespace acc::sim
