// ISSUE 8: run-length token transport (CFifo::push_run / pop_run) and the
// batching grants that authorize it. Two layers:
//
//  * Unit tests drive push_run / pop_run against a fake WakeHub with a
//    controllable grant, pinning the abort rules (grant collapse, zero-lag
//    refusal, space/visibility exhaustion) and the per-token accounting
//    parity with scalar push/pop.
//
//  * System tests run a workload that genuinely opens grant windows (a
//    fast source with a slow, phase-shifted sink — unlike the PAL decoder,
//    whose co-phased sources never leave a quiet window) under all three
//    steppers and require bit-identical outcomes, metrics and per-token
//    FIFO traffic, with batching demonstrably ACTIVE under the wake-list
//    run and absent elsewhere.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/cfifo.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace acc::sim {
namespace {

// Minimal hub granting a fixed quiet window; counts wakes it sees.
class FixedGrantHub final : public WakeHub {
 public:
  explicit FixedGrantHub(Cycle grant) : grant_(grant) {}
  void wake(Component&) override { ++wakes_; }
  void ring_activity(Ring&) override {}
  void ring_delivery(Ring&, std::int32_t) override {}
  void fault_site_changed(FaultSite) override {}
  [[nodiscard]] std::int64_t quiet_until(std::size_t) const override {
    return grant_;
  }
  void set_grant(Cycle grant) { grant_ = grant; }
  [[nodiscard]] int wakes() const { return wakes_; }

 private:
  Cycle grant_;
  int wakes_ = 0;
};

class NopComponent final : public Component {
 public:
  void tick(Cycle) override {}
};

TEST(PushRun, MovesEveryTokenCoveredByTheGrant) {
  CFifo f("f", 16, /*read_visibility_lag=*/1, /*write_visibility_lag=*/1);
  FixedGrantHub hub(/*grant=*/100);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  const std::vector<Flit> flits{10, 11, 12, 13};
  EXPECT_EQ(f.push_run(/*base=*/0, /*stride=*/5, flits, &c), 4u);
  EXPECT_EQ(f.total_pushed(), 4);

  // Visibility staircase identical to four scalar pushes at 0,5,10,15.
  CFifo ref("ref", 16, 1, 1);
  for (Cycle i = 0; i < 4; ++i) ref.push(i * 5, flits[static_cast<size_t>(i)]);
  for (Cycle t = 0; t <= 20; ++t)
    EXPECT_EQ(f.fill_visible(t), ref.fill_visible(t)) << "cycle " << t;
}

TEST(PushRun, StopsAtFirstTokenOutsideTheGrant) {
  CFifo f("f", 16, 1, 1);
  FixedGrantHub hub(/*grant=*/11);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  const std::vector<Flit> flits{1, 2, 3, 4};
  // Virtual cycles 0, 5, 10 are < 11; 15 is not.
  EXPECT_EQ(f.push_run(0, 5, flits, &c), 3u);
}

TEST(PushRun, FirstTokenNeedsNoGrant) {
  // The caller vouches for token 0 (it is the real mid-tick operation); a
  // collapsed grant only stops the run from the second token on. This is
  // exactly how the scalar degeneration under dense stepping works.
  CFifo f("f", 16, 1, 1);
  FixedGrantHub hub(/*grant=*/0);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  const std::vector<Flit> flits{1, 2};
  EXPECT_EQ(f.push_run(0, 5, flits, &c), 1u);
  EXPECT_EQ(f.push_run(5, 5, std::vector<Flit>{2}, &c), 1u);
}

TEST(PushRun, ZeroReadLagRefusesToBatch) {
  // With rlag 0 a reader could observe a push in its own cycle, so the
  // outcome would depend on within-cycle component order: never batch.
  CFifo f("f", 16, /*read_visibility_lag=*/0, /*write_visibility_lag=*/1);
  FixedGrantHub hub(1000);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  const std::vector<Flit> flits{1, 2, 3};
  EXPECT_EQ(f.push_run(0, 5, flits, &c), 1u);
}

TEST(PushRun, StopsWhenNoSpaceIsVisible) {
  CFifo f("f", /*capacity=*/2, 1, 1);
  FixedGrantHub hub(1000);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  const std::vector<Flit> flits{1, 2, 3, 4};
  EXPECT_EQ(f.push_run(0, 5, flits, &c), 2u);
  EXPECT_EQ(f.total_pushed(), 2);
}

TEST(PushRun, RecordsStepperStatsOnlyForRealRuns) {
  CFifo f("f", 16, 1, 1);
  StepperStats stats;
  f.set_stepper_stats(&stats);
  FixedGrantHub hub(1000);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  EXPECT_EQ(f.push_run(0, 5, std::vector<Flit>{1, 2, 3}, &c), 3u);
  EXPECT_EQ(stats.batch_runs, 1);
  EXPECT_EQ(stats.batch_tokens, 3);
  // A degenerate single-token run is not a batch.
  hub.set_grant(0);
  EXPECT_EQ(f.push_run(15, 5, std::vector<Flit>{4, 5}, &c), 1u);
  EXPECT_EQ(stats.batch_runs, 1);
  EXPECT_EQ(stats.batch_tokens, 3);
}

TEST(PopRun, DrainsVisibleTokensAndStampsVirtualCycles) {
  CFifo f("f", 16, 1, 1);
  FixedGrantHub hub(1000);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  for (Cycle i = 0; i < 4; ++i) f.push(i, static_cast<Flit>(20 + i));
  // All four visible from cycle 4 on (rlag 1).
  std::vector<Flit> out;
  std::vector<Cycle> stamps;
  EXPECT_EQ(f.pop_run(/*base=*/10, /*stride=*/3,
                      std::numeric_limits<std::size_t>::max(), &out, &stamps,
                      &c),
            4u);
  EXPECT_EQ(out, (std::vector<Flit>{20, 21, 22, 23}));
  EXPECT_EQ(stamps, (std::vector<Cycle>{10, 13, 16, 19}));
  EXPECT_EQ(f.total_popped(), 4);

  // Freed-space staircase identical to scalar pops at the same cycles.
  CFifo ref("ref", 16, 1, 1);
  for (Cycle i = 0; i < 4; ++i) ref.push(i, static_cast<Flit>(20 + i));
  for (Cycle t = 10; t <= 19; t += 3) (void)ref.pop(t);
  for (Cycle t = 10; t <= 25; ++t)
    EXPECT_EQ(f.space_visible(t), ref.space_visible(t)) << "cycle " << t;
}

TEST(PopRun, StopsAtFirstInvisibleToken) {
  CFifo f("f", 16, /*read_visibility_lag=*/6, 1);
  FixedGrantHub hub(1000);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  f.push(0, 1);   // visible at 6
  f.push(10, 2);  // visible at 16
  std::vector<Flit> out;
  EXPECT_EQ(f.pop_run(6, 2, 8, &out, nullptr, &c), 1u);  // 8 < 16: stop
  EXPECT_EQ(out, (std::vector<Flit>{1}));
}

TEST(PopRun, ZeroWriteLagRefusesToBatch) {
  CFifo f("f", 16, 1, /*write_visibility_lag=*/0);
  FixedGrantHub hub(1000);
  NopComponent c;
  c.set_wake_hub(&hub, 0);
  for (Cycle i = 0; i < 3; ++i) f.push(i, static_cast<Flit>(i));
  EXPECT_EQ(f.pop_run(10, 2, 8, nullptr, nullptr, &c), 1u);
}

// --- stepper equivalence on a workload that actually batches -------------

struct StaggeredOutcome {
  std::vector<Flit> received;
  std::vector<Cycle> timestamps;
  std::int64_t emitted = 0;
  std::int64_t dropped = 0;
  std::int64_t underruns = 0;
  std::string metrics;
  StepperStats stats;
};

// Sink first (slot 0), source second (slot 1): a wake raised by the
// source's own pushes then re-derives the sink's true horizon instead of
// conservatively collapsing the grant (see System::wake), which is what
// lets the fast source stream its whole backlog in granted runs while the
// slow sink sleeps between DAC deadlines.
StaggeredOutcome run_staggered(StepperKind kind) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 64, /*read_visibility_lag=*/1,
                          /*write_visibility_lag=*/1);
  obs::MetricsRegistry metrics;
  f.set_metrics(&metrics);
  auto& sink = sys.add<SinkTile>("sink", f, /*period=*/50, /*prefill=*/1);
  std::vector<Flit> data;
  for (Flit i = 0; i < 40; ++i) data.push_back(100 + i);
  auto& src = sys.add<SourceTile>("src", f, data, /*period=*/4);
  sink.set_metrics(&metrics);
  src.set_metrics(&metrics);
  sys.run_with(kind, 2100);

  StaggeredOutcome o;
  o.received = sink.received();
  o.timestamps = sink.timestamps();
  o.emitted = src.emitted();
  o.dropped = src.dropped();
  o.underruns = sink.underruns();
  o.metrics = metrics.snapshot_text();
  o.stats = sys.stepper_stats();
  return o;
}

TEST(BatchTransport, WakeListRunActuallyBatches) {
  const StaggeredOutcome wake = run_staggered(StepperKind::kWakeList);
  // The property below is only meaningful if grants really open: the
  // source must have moved multiple tokens per granted run.
  EXPECT_GT(wake.stats.batch_runs, 0);
  EXPECT_GT(wake.stats.batch_tokens, 2 * wake.stats.batch_runs);
}

TEST(BatchTransport, OutcomeBitIdenticalAcrossSteppers) {
  const StaggeredOutcome dense = run_staggered(StepperKind::kDense);
  const StaggeredOutcome event = run_staggered(StepperKind::kGlobalHorizon);
  const StaggeredOutcome wake = run_staggered(StepperKind::kWakeList);

  for (const StaggeredOutcome* o : {&event, &wake}) {
    EXPECT_EQ(o->received, dense.received);
    EXPECT_EQ(o->timestamps, dense.timestamps);
    EXPECT_EQ(o->emitted, dense.emitted);
    EXPECT_EQ(o->dropped, dense.dropped);
    EXPECT_EQ(o->underruns, dense.underruns);
    // Metrics snapshots (per-token FIFO traffic, occupancy histogram,
    // source/sink counters) must be byte-identical: batching replays the
    // exact per-token accounting of scalar transfers.
    EXPECT_EQ(o->metrics, dense.metrics);
  }
  EXPECT_EQ(dense.dropped, 0);
  EXPECT_EQ(dense.received.size(), 40u);

  // Batching only exists under the wake-list stepper.
  EXPECT_EQ(dense.stats.batch_runs, 0);
  EXPECT_EQ(dense.stats.batch_tokens, 0);
  EXPECT_EQ(event.stats.batch_runs, 0);
  EXPECT_GT(wake.stats.batch_runs, 0);
}

TEST(BatchTransport, RunUntilWithholdsGrants) {
  // run_until's predicate must observe every dense-visible intermediate
  // state, so it never issues grants — same outcome, zero batch runs.
  System sys(2);
  CFifo& f = sys.add_fifo("f", 64, 1, 1);
  auto& sink = sys.add<SinkTile>("sink", f, 50, 1);
  std::vector<Flit> data;
  for (Flit i = 0; i < 40; ++i) data.push_back(100 + i);
  auto& src = sys.add<SourceTile>("src", f, data, 4);
  const bool done = sys.run_until(
      [&](Cycle) { return sink.received().size() == 40; }, 3000);
  EXPECT_TRUE(done);
  EXPECT_EQ(sys.stepper_stats().batch_runs, 0);
  EXPECT_EQ(src.dropped(), 0);

  const StaggeredOutcome dense = run_staggered(StepperKind::kDense);
  ASSERT_GE(dense.timestamps.size(), sink.timestamps().size());
  for (std::size_t i = 0; i < sink.timestamps().size(); ++i)
    EXPECT_EQ(sink.timestamps()[i], dense.timestamps[i]) << i;
}

TEST(BatchTransport, ProcessorTileBatchesHintedTasks) {
  // A lone hinted task with an open calendar: the tile runs future
  // invocations at their virtual cycles under one grant. Invocation counts
  // and replenishment behaviour must match dense exactly.
  auto run = [](StepperKind kind, StepperStats* stats_out) {
    System sys(2);
    CFifo& f = sys.add_fifo("f", 8, 1, 1);
    auto& pt = sys.add<ProcessorTile>("pt", /*replenish=*/100);
    Task t;
    t.name = "work";
    t.invoke = [](Cycle) -> Cycle { return 10; };
    t.budget = 50;
    t.next_ready = [](Cycle now) -> Cycle { return now; };
    t.wake_on_push = {&f};
    pt.add_task(std::move(t));
    sys.run_with(kind, 1000);
    *stats_out = sys.stepper_stats();
    return pt.invocations(0);
  };
  StepperStats dense_stats;
  StepperStats wake_stats;
  const std::int64_t dense_runs = run(StepperKind::kDense, &dense_stats);
  const std::int64_t wake_runs = run(StepperKind::kWakeList, &wake_stats);
  EXPECT_EQ(wake_runs, dense_runs);
  EXPECT_GT(dense_runs, 0);
  EXPECT_EQ(dense_stats.batch_runs, 0);
  EXPECT_GT(wake_stats.batch_runs, 0);
}

}  // namespace
}  // namespace acc::sim
