#include "sim/gateway.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/rng.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace acc::sim {
namespace {

/// Identity kernel with a one-word dummy state, for plumbing tests.
class Passthrough final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override {
    ++count_;
    out.push_back(in);
  }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {count_};
  }
  void restore_state(std::span<const std::int32_t> s) override {
    ACC_EXPECTS(s.size() == 1);
    count_ = s[0];
  }
  void reset() override { count_ = 0; }
  [[nodiscard]] std::size_t state_words() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "pass"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Passthrough>();
  }

 private:
  std::int32_t count_ = 0;
};

/// Two streams multiplexed over one passthrough accelerator.
struct MiniSystem {
  System sys{4};
  CFifo* in0;
  CFifo* in1;
  CFifo* out0;
  CFifo* out1;
  AcceleratorTile* accel;
  EntryGateway* entry;
  ExitGateway* exit;
  SourceTile* src0;
  SourceTile* src1;

  // Default source period 16 keeps utilization at c0*sum(mu) = 2*2/16 = 1/4
  // so the two streams are schedulable and sources never drop.
  MiniSystem(std::int64_t eta, Cycle reconfig, std::size_t samples,
             Cycle src_period = 16, Cycle epsilon = 2) {
    in0 = &sys.add_fifo("in0", 4 * eta);
    in1 = &sys.add_fifo("in1", 4 * eta);
    out0 = &sys.add_fifo("out0", 4 * eta);
    out1 = &sys.add_fifo("out1", 4 * eta);

    accel = &sys.add<AcceleratorTile>("acc", sys.ring(), 1, 1, 2);
    accel->register_context(0, std::make_unique<Passthrough>());
    accel->register_context(1, std::make_unique<Passthrough>());
    accel->set_upstream(0, 1);
    accel->set_downstream(3, 2, 2);

    exit = &sys.add<ExitGateway>("exit", sys.ring(), 3, 1, 2);
    exit->set_upstream(1, 1);
    entry = &sys.add<EntryGateway>("entry", sys.ring(), 0, epsilon, 1, 1, 2);
    entry->set_chain({accel});
    entry->set_exit(exit);
    exit->set_entry(entry);
    entry->add_stream({0, "s0", eta, eta, in0, out0, reconfig});
    entry->add_stream({1, "s1", eta, eta, in1, out1, reconfig});

    std::vector<Flit> payload0(samples);
    std::vector<Flit> payload1(samples);
    std::iota(payload0.begin(), payload0.end(), Flit{1000});
    std::iota(payload1.begin(), payload1.end(), Flit{500000});
    src0 = &sys.add<SourceTile>("src0", *in0, payload0, src_period);
    src1 = &sys.add<SourceTile>("src1", *in1, payload1, src_period);
  }

  std::vector<Flit> drain_out(CFifo& f) {
    std::vector<Flit> v;
    while (f.can_pop(sys.now())) v.push_back(f.pop(sys.now()));
    return v;
  }
};

TEST(Gateway, DataIntegrityAcrossMultiplexing) {
  MiniSystem ms(/*eta=*/16, /*reconfig=*/20, /*samples=*/64);
  ms.sys.run(64 * 16 + 4000);
  const std::vector<Flit> got0 = ms.drain_out(*ms.out0);
  const std::vector<Flit> got1 = ms.drain_out(*ms.out1);
  ASSERT_EQ(got0.size(), 64u);
  ASSERT_EQ(got1.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(got0[i], 1000 + i);
    EXPECT_EQ(got1[i], 500000 + i);
  }
  EXPECT_EQ(ms.src0->dropped(), 0);
  EXPECT_EQ(ms.src1->dropped(), 0);
}

TEST(Gateway, RoundRobinAlternatesStreams) {
  MiniSystem ms(16, 20, 64);
  ms.sys.run(64 * 16 + 4000);
  const auto& c0 = ms.entry->block_completions(0);
  const auto& c1 = ms.entry->block_completions(1);
  ASSERT_EQ(c0.size(), 4u);
  ASSERT_EQ(c1.size(), 4u);
  // Strict alternation: each stream's k-th block lands between the other's
  // k-th and (k+1)-th.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_LT(c0[k], c1[k]);
    if (k + 1 < 4) EXPECT_LT(c1[k], c0[k + 1]);
  }
}

TEST(Gateway, BlockSpacingBoundedByGammaHat) {
  // Worst-case round: 2 streams, gamma_hat = sum of tau_hat. Steady-state
  // completions of one stream must not be farther apart than gamma_hat
  // plus the notification lag.
  const std::int64_t eta = 8;
  const Cycle reconfig = 20;
  const Cycle epsilon = 2;
  MiniSystem ms(eta, reconfig, 256, /*src_period=*/16, epsilon);
  ms.sys.run(256 * 16 + 8000);
  // tau_hat = R + (eta + tail) * c0 with c0 = max(eps, 1, 1) = 2, tail = 2.
  const Cycle tau = reconfig + (eta + 2) * epsilon;
  const Cycle gamma = 2 * tau;
  const auto& c0 = ms.entry->block_completions(0);
  ASSERT_GE(c0.size(), 4u);
  for (std::size_t k = 3; k + 1 < c0.size(); ++k) {
    EXPECT_LE(c0[k + 1] - c0[k], gamma + 8) << "k=" << k;
  }
}

TEST(Gateway, ReconfigSkippedWhenSameStreamRepeats) {
  // With only one stream registered, the context stays loaded: exactly one
  // reconfiguration happens regardless of block count.
  System sys(4);
  CFifo& in = sys.add_fifo("in", 64);
  CFifo& out = sys.add_fifo("out", 64);
  auto& accel = sys.add<AcceleratorTile>("acc", sys.ring(), 1, 1, 2);
  accel.register_context(0, std::make_unique<Passthrough>());
  accel.set_upstream(0, 1);
  accel.set_downstream(3, 2, 2);
  auto& exit = sys.add<ExitGateway>("exit", sys.ring(), 3, 1, 2);
  exit.set_upstream(1, 1);
  auto& entry = sys.add<EntryGateway>("entry", sys.ring(), 0, 2, 1, 1, 2);
  entry.set_chain({&accel});
  entry.set_exit(&exit);
  exit.set_entry(&entry);
  entry.add_stream({0, "s0", 8, 8, &in, &out, /*reconfig=*/100});
  std::vector<Flit> payload(64);
  std::iota(payload.begin(), payload.end(), Flit{7});
  sys.add<SourceTile>("src", in, payload, 2);
  auto& sink = sys.add<SinkTile>("sink", out, 1, 1);
  sys.run(3000);
  EXPECT_EQ(sink.received().size(), 64u);
  // 8 blocks, but reconfig charged once: ~100 cycles + 1 accounting cycle.
  EXPECT_LE(entry.stats().reconfig_cycles, 105);
  EXPECT_EQ(entry.stats().blocks, 8);
}

TEST(Gateway, AdmissionWaitsForOutputSpace) {
  // No sink drains out0: after the output fifo fills, stream 0 must stop
  // being admitted while stream 1 keeps flowing.
  MiniSystem ms(16, 20, 256, /*src_period=*/8);
  auto& sink1 = ms.sys.add<SinkTile>("sink1", *ms.out1, 1, 1);
  ms.sys.run(256 * 8 + 8000);
  // out0 capacity 64 = 4 blocks: stream 0 completed exactly 4 blocks.
  EXPECT_EQ(ms.entry->block_completions(0).size(), 4u);
  // Stream 1 ran to completion.
  EXPECT_EQ(sink1.received().size(), 256u);
  EXPECT_EQ(ms.entry->block_completions(1).size(), 16u);
}

TEST(Gateway, ContextSwitchingPreservesPerStreamKernelState) {
  // Passthrough counts samples per stream; after the run each context's
  // counter must equal its own stream's sample count — proof that contexts
  // never leak across streams.
  MiniSystem ms(16, 20, 64);
  ms.sys.run(64 * 16 + 4000);
  ms.accel->swap_context(0, ms.sys.now());
  // Save state via another swap round-trip: direct check through processed
  // counts is simpler: 128 samples total through one accelerator.
  EXPECT_EQ(ms.accel->samples_processed(), 128);
}

TEST(Gateway, StatsAccumulate) {
  MiniSystem ms(16, 20, 64);
  ms.sys.run(64 * 16 + 4000);
  const GatewayStats& st = ms.entry->stats();
  EXPECT_EQ(st.blocks, 8);  // 4 blocks per stream
  EXPECT_EQ(st.samples_forwarded, 128);
  EXPECT_GT(st.data_cycles, 0);
  EXPECT_GT(st.reconfig_cycles, 0);
}

TEST(Gateway, RejectsUndersizedFifos) {
  System sys(4);
  CFifo& small = sys.add_fifo("small", 4);
  CFifo& out = sys.add_fifo("out", 64);
  auto& entry = sys.add<EntryGateway>("entry", sys.ring(), 0, 2, 1, 1, 2);
  StreamRoute r{0, "s", /*eta=*/8, 8, &small, &out, 10};
  EXPECT_THROW(entry.add_stream(r), precondition_error);
}

}  // namespace
}  // namespace acc::sim
