#include "sim/ring.hpp"

#include <gtest/gtest.h>

namespace acc::sim {
namespace {

TEST(Ring, DeliversToDestination) {
  Ring ring(4, true);
  RingMsg m;
  m.dst = 2;
  m.payload = 42;
  ASSERT_TRUE(ring.try_inject(0, m));
  // Injection happens on the first tick; transit 0->1->2 takes two more.
  std::vector<RingMsg> got;
  for (int t = 0; t < 4 && got.empty(); ++t) {
    ring.tick();
    got = ring.drain(2);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, 42u);
  EXPECT_EQ(ring.delivered(), 1);
}

TEST(Ring, LatencyEqualsHopDistance) {
  Ring ring(6, true);
  RingMsg m;
  m.dst = 4;
  ASSERT_TRUE(ring.try_inject(1, m));
  int ticks = 0;
  while (ring.drain(4).empty()) {
    ring.tick();
    ++ticks;
    ASSERT_LE(ticks, 12);
  }
  // 1 tick to enter the slot at node 1, then 3 hops 1->2->3->4.
  EXPECT_EQ(ticks, 4);
}

TEST(Ring, CounterClockwiseTravelsTheOtherWay) {
  Ring cw(8, true);
  Ring ccw(8, false);
  RingMsg m;
  m.dst = 7;
  ASSERT_TRUE(cw.try_inject(0, m));
  ASSERT_TRUE(ccw.try_inject(0, m));
  int cw_ticks = 0;
  while (cw.drain(7).empty()) {
    cw.tick();
    ++cw_ticks;
  }
  int ccw_ticks = 0;
  while (ccw.drain(7).empty()) {
    ccw.tick();
    ++ccw_ticks;
  }
  EXPECT_EQ(cw_ticks, 8);   // 0 -> 1 -> ... -> 7
  EXPECT_EQ(ccw_ticks, 2);  // 0 -> 7 directly
}

TEST(Ring, InjectionQueueBounded) {
  Ring ring(2, true);
  RingMsg m;
  m.dst = 1;
  int accepted = 0;
  while (ring.try_inject(0, m)) ++accepted;
  EXPECT_EQ(accepted, 8);  // posted-write acceptance is finite
  ring.tick();
  EXPECT_TRUE(ring.try_inject(0, m));  // drained one slot
}

TEST(Ring, ManyMessagesAllArriveInOrder) {
  Ring ring(4, true);
  std::vector<std::uint64_t> sent;
  std::vector<std::uint64_t> got;
  std::uint64_t next = 1;
  for (int t = 0; t < 200; ++t) {
    RingMsg m;
    m.dst = 3;
    m.payload = next;
    if (ring.try_inject(1, m)) {
      sent.push_back(next);
      ++next;
    }
    ring.tick();
    for (const RingMsg& r : ring.drain(3)) got.push_back(r.payload);
  }
  for (int t = 0; t < 16; ++t) {
    ring.tick();
    for (const RingMsg& r : ring.drain(3)) got.push_back(r.payload);
  }
  EXPECT_EQ(got, sent);  // single source: FIFO order preserved
  EXPECT_GT(got.size(), 100u);
}

TEST(Ring, InvalidNodesRejected) {
  Ring ring(4, true);
  RingMsg bad;
  bad.dst = 9;
  EXPECT_THROW((void)ring.try_inject(0, bad), precondition_error);
  RingMsg ok;
  ok.dst = 1;
  EXPECT_THROW((void)ring.try_inject(-1, ok), precondition_error);
  EXPECT_THROW((void)ring.drain(11), precondition_error);
}

TEST(DualRing, DataAndCreditIndependent) {
  DualRing dr(4);
  RingMsg d;
  d.dst = 2;
  d.payload = 7;
  RingMsg c;
  c.dst = 0;
  ASSERT_TRUE(dr.data().try_inject(0, d));
  ASSERT_TRUE(dr.credit().try_inject(2, c));
  for (int i = 0; i < 4; ++i) dr.tick();
  EXPECT_EQ(dr.data().drain(2).size(), 1u);
  EXPECT_EQ(dr.credit().drain(0).size(), 1u);
}

// --- PR6 hot-path backfill: rotation without modulo ---------------------
//
// slot_at replaces `(node + offset) % n` with a conditional subtract; the
// wrap at node 0 and the offset wrap after each full revolution are the
// edges the subtract must get right.

/// Ticks from injection until the message surfaces at `dst`.
int delivery_ticks(Ring& ring, std::int32_t src, std::int32_t dst) {
  RingMsg m;
  m.dst = dst;
  m.payload = 77;
  EXPECT_TRUE(ring.try_inject(src, m));
  for (int t = 1; t <= 4 * ring.nodes(); ++t) {
    ring.tick();
    if (!ring.drain(dst).empty()) return t;
  }
  ADD_FAILURE() << "message " << src << "->" << dst << " never delivered";
  return -1;
}

TEST(Ring, WrapAndNonWrapPathsOfEqualDistanceMatch) {
  // 0->3 stays inside the index range; 4->1 crosses the node-0 wrap. Both
  // are 3 hops clockwise and must take identical time.
  Ring inner(6, true);
  Ring wrapped(6, true);
  EXPECT_EQ(delivery_ticks(inner, 0, 3), delivery_ticks(wrapped, 4, 1));
}

TEST(Ring, CounterclockwiseWrapDelivers) {
  // The credit ring rotates the other way: 0->5 is ONE hop counterclockwise
  // on a 6-node ring, same as 5->4.
  Ring a(6, false);
  Ring b(6, false);
  EXPECT_EQ(delivery_ticks(a, 0, 5), delivery_ticks(b, 5, 4));
}

TEST(Ring, OffsetWrapsCleanlyOverManyRevolutions) {
  // Hundreds of revolutions move the rotation offset through every
  // wraparound; delivery from every node must still land at the right
  // destination with unchanged latency.
  Ring ring(7, true);
  RingMsg spin;
  spin.dst = 1;
  ASSERT_TRUE(ring.try_inject(0, spin));
  for (int warm = 0; warm < 1000; ++warm) ring.tick();
  (void)ring.drain(1);

  const int fresh_latency = [] {
    Ring probe(7, true);
    return delivery_ticks(probe, 2, 6);
  }();
  for (std::int32_t src = 0; src < 7; ++src) {
    const auto dst = static_cast<std::int32_t>((src + 4) % 7);
    EXPECT_EQ(delivery_ticks(ring, src, dst), fresh_latency)
        << "src " << src << " after 1000 warm ticks";
  }
}

TEST(Ring, FullRevolutionToSelfAdjacentPredecessor) {
  // dst one node BEHIND the rotation direction costs a near-full
  // revolution — the longest path and the one that exercises every wrap.
  Ring ring(5, true);
  const int long_way = delivery_ticks(ring, 2, 1);
  const int short_way = [] {
    Ring probe(5, true);
    return delivery_ticks(probe, 2, 3);
  }();
  EXPECT_EQ(long_way - short_way, 3);  // 4 hops vs 1 hop
}

TEST(Ring, MetricsCountInjectDeliverAndHops) {
  obs::MetricsRegistry reg;
  Ring ring(4, true);
  ring.set_metrics(&reg, "ring.t");
  RingMsg m;
  m.dst = 2;
  ASSERT_TRUE(ring.try_inject(0, m));
  for (int t = 0; t < 4; ++t) ring.tick();
  ASSERT_EQ(ring.drain(2).size(), 1u);
  const obs::MetricCell* injected = reg.find("ring.t.injected");
  const obs::MetricCell* delivered = reg.find("ring.t.delivered");
  const obs::MetricCell* hops = reg.find("ring.t.hops");
  ASSERT_NE(injected, nullptr);
  ASSERT_NE(delivered, nullptr);
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(injected->value, 1);
  EXPECT_EQ(delivered->value, 1);
  EXPECT_EQ(hops->value, 2);  // 0->1->2: one count per occupied-slot hop
}

TEST(Flit, PackUnpackRoundTrip) {
  const CQ16 s{Q16::from_double(1.2345), Q16::from_double(-0.777)};
  EXPECT_EQ(unpack_sample(pack_sample(s)), s);
  const CQ16 neg{Q16::from_raw(-1), Q16::from_raw(INT32_MIN)};
  EXPECT_EQ(unpack_sample(pack_sample(neg)), neg);
}

}  // namespace
}  // namespace acc::sim
