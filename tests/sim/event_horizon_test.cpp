// Cycle-exact equivalence of the three steppers (ISSUE 3 + ISSUE 6 tentpole
// proof): System::run (wake-list, selective ticking of woken components) and
// System::run_global_horizon (all-or-nothing quiescent skip) must both be
// indistinguishable from System::run_dense (the legacy every-cycle loop) in
// EVERY externally visible respect — trace contents, final state, stats,
// delivered data, and the deterministic fault pattern — on randomized
// gateway chains with fixed seeds, fault-free and under fault injection,
// and on the full PAL decoder demonstrator.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <random>
#include <string>
#include <vector>

#include "app/pal_system.hpp"
#include "sim/fault.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

#include "../support/random_chain.hpp"

namespace acc::sim {
namespace {

// Generators shared with the metrics-determinism suite: both suites must
// stress the SAME population of random system shapes.
using testsupport::Params;
using testsupport::Scenario;
using testsupport::random_params;

/// Everything externally visible about one finished run.
struct Digest {
  Cycle now = 0;
  std::string trace_csv;
  std::int64_t emitted = 0;
  std::int64_t drops = 0;
  std::vector<Flit> received;
  std::vector<Cycle> stamps;
  std::int64_t underruns = 0;
  GatewayStats gw;
  std::int64_t exit_delivered = 0;
  std::int64_t ring_data_delivered = 0;
  std::int64_t ring_credit_delivered = 0;
  Cycle ring_data_stalls = 0;
  Cycle ring_credit_stalls = 0;
  std::int64_t in_pushed = 0;
  std::int64_t mid_popped = 0;
  std::int64_t proc_invocations = -1;
  Cycle proc_busy = -1;
  std::array<FaultSiteStats, kNumFaultSites> fsite{};
  StepperStats stepper;
};

Digest run_scenario(const Params& p, StepperKind kind) {
  Scenario s(p);
  s.sys.run_with(kind, p.run_cycles);

  Digest d;
  d.now = s.sys.now();
  d.trace_csv = s.trace.to_csv();
  d.emitted = s.src->emitted();
  d.drops = s.src->dropped();
  d.received = s.sink->received();
  d.stamps = s.sink->timestamps();
  d.underruns = s.sink->underruns();
  d.gw = s.chain.entry->stats();
  d.exit_delivered = s.chain.exit->samples_delivered();
  d.ring_data_delivered = s.sys.ring().data().delivered();
  d.ring_credit_delivered = s.sys.ring().credit().delivered();
  d.ring_data_stalls = s.sys.ring().data().stall_cycles();
  d.ring_credit_stalls = s.sys.ring().credit().stall_cycles();
  d.in_pushed = s.in->total_pushed();
  d.mid_popped = s.mid->total_popped();
  if (s.proc != nullptr) {
    d.proc_invocations = s.proc->invocations(0);
    d.proc_busy = s.proc->busy_cycles();
  }
  for (int i = 0; i < kNumFaultSites; ++i)
    d.fsite[static_cast<std::size_t>(i)] =
        s.fault.stats(static_cast<FaultSite>(i));
  d.stepper = s.sys.stepper_stats();
  return d;
}

void expect_equivalent(const Digest& dense, const Digest& event) {
  EXPECT_EQ(dense.now, event.now);
  EXPECT_EQ(dense.trace_csv, event.trace_csv);
  EXPECT_EQ(dense.emitted, event.emitted);
  EXPECT_EQ(dense.drops, event.drops);
  EXPECT_EQ(dense.received, event.received);
  EXPECT_EQ(dense.stamps, event.stamps);
  EXPECT_EQ(dense.underruns, event.underruns);
  EXPECT_EQ(dense.gw.blocks, event.gw.blocks);
  EXPECT_EQ(dense.gw.samples_forwarded, event.gw.samples_forwarded);
  EXPECT_EQ(dense.gw.data_cycles, event.gw.data_cycles);
  EXPECT_EQ(dense.gw.reconfig_cycles, event.gw.reconfig_cycles);
  EXPECT_EQ(dense.gw.wait_cycles, event.gw.wait_cycles);
  EXPECT_EQ(dense.gw.notify_timeouts, event.gw.notify_timeouts);
  EXPECT_EQ(dense.gw.notify_retries, event.gw.notify_retries);
  EXPECT_EQ(dense.gw.notify_recoveries, event.gw.notify_recoveries);
  EXPECT_EQ(dense.gw.credit_stalls, event.gw.credit_stalls);
  EXPECT_EQ(dense.gw.credit_stall_cycles, event.gw.credit_stall_cycles);
  EXPECT_EQ(dense.exit_delivered, event.exit_delivered);
  EXPECT_EQ(dense.ring_data_delivered, event.ring_data_delivered);
  EXPECT_EQ(dense.ring_credit_delivered, event.ring_credit_delivered);
  EXPECT_EQ(dense.ring_data_stalls, event.ring_data_stalls);
  EXPECT_EQ(dense.ring_credit_stalls, event.ring_credit_stalls);
  EXPECT_EQ(dense.in_pushed, event.in_pushed);
  EXPECT_EQ(dense.mid_popped, event.mid_popped);
  EXPECT_EQ(dense.proc_invocations, event.proc_invocations);
  EXPECT_EQ(dense.proc_busy, event.proc_busy);
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    SCOPED_TRACE("fault site " + std::to_string(i));
    EXPECT_EQ(dense.fsite[i].consults, event.fsite[i].consults);
    EXPECT_EQ(dense.fsite[i].injected, event.fsite[i].injected);
    EXPECT_EQ(dense.fsite[i].dropped, event.fsite[i].dropped);
    EXPECT_EQ(dense.fsite[i].delay_cycles, event.fsite[i].delay_cycles);
    EXPECT_EQ(dense.fsite[i].max_delay_seen, event.fsite[i].max_delay_seen);
  }
  // Conservation: every simulated cycle was either ticked or skipped.
  EXPECT_EQ(event.stepper.dense_ticks + event.stepper.skipped_cycles,
            event.now);
  EXPECT_EQ(dense.stepper.dense_ticks, dense.now);
  EXPECT_EQ(dense.stepper.skips, 0);
  EXPECT_EQ(dense.stepper.wakes, 0);
  EXPECT_EQ(dense.stepper.horizon_queries, 0);
}

TEST(EventHorizon, RandomChainsFaultFree) {
  std::mt19937_64 rng(0xACC0);  // fixed seed: the suite is reproducible
  std::int64_t skipped_global = 0;
  std::int64_t skipped_wake = 0;
  std::int64_t wake_notifications = 0;
  std::int64_t dense_component_ticks = 0;
  std::int64_t wake_component_ticks = 0;
  for (int iter = 0; iter < 10; ++iter) {
    const Params p = random_params(rng, /*with_fault=*/false);
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const Digest dense = run_scenario(p, StepperKind::kDense);
    const Digest global = run_scenario(p, StepperKind::kGlobalHorizon);
    const Digest wake = run_scenario(p, StepperKind::kWakeList);
    expect_equivalent(dense, global);
    expect_equivalent(dense, wake);
    skipped_global += global.stepper.skipped_cycles;
    skipped_wake += wake.stepper.skipped_cycles;
    wake_notifications += wake.stepper.wakes;
    dense_component_ticks += dense.stepper.component_ticks;
    wake_component_ticks += wake.stepper.component_ticks;
  }
  // The machinery must actually engage — a stepper that never skips (or a
  // wake list that never fires, or that ticks everything anyway) would pass
  // every equivalence check vacuously.
  EXPECT_GT(skipped_global, 0);
  EXPECT_GT(skipped_wake, 0);
  EXPECT_GT(wake_notifications, 0);
  EXPECT_LT(wake_component_ticks, dense_component_ticks);
}

TEST(EventHorizon, RandomChainsWithFaults) {
  std::mt19937_64 rng(0xACC1);
  std::int64_t skipped_global = 0;
  std::int64_t skipped_wake = 0;
  for (int iter = 0; iter < 8; ++iter) {
    const Params p = random_params(rng, /*with_fault=*/true);
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const Digest dense = run_scenario(p, StepperKind::kDense);
    const Digest global = run_scenario(p, StepperKind::kGlobalHorizon);
    const Digest wake = run_scenario(p, StepperKind::kWakeList);
    expect_equivalent(dense, global);
    expect_equivalent(dense, wake);
    skipped_global += global.stepper.skipped_cycles;
    skipped_wake += wake.stepper.skipped_cycles;
  }
  EXPECT_GT(skipped_global, 0);
  EXPECT_GT(skipped_wake, 0);
}

TEST(EventHorizon, SkipsDominateQuiescentTail) {
  // Payload drains within a few thousand cycles; the remaining tail is pure
  // quiescence both event steppers should jump over nearly for free.
  Params p;
  p.run_cycles = 30000;
  const Digest global = run_scenario(p, StepperKind::kGlobalHorizon);
  EXPECT_GT(global.stepper.skips, 0);
  EXPECT_GT(global.stepper.skipped_cycles, p.run_cycles / 2);
  const Digest wake = run_scenario(p, StepperKind::kWakeList);
  EXPECT_GT(wake.stepper.skips, 0);
  EXPECT_GT(wake.stepper.skipped_cycles, p.run_cycles / 2);
}

TEST(EventHorizon, RunUntilMatchesDenseStepping) {
  // run_until with a STATE-based predicate must fire at the same cycle the
  // dense reference finds by single-stepping.
  Params p;
  const std::int64_t want =
      p.eta * p.payload_blocks / 2;  // mid-run, not at the quiescent tail
  Scenario dense(p);
  Cycle dense_fired = -1;
  for (Cycle c = 0; c < p.run_cycles; ++c) {
    if (dense.sink->received().size() >= static_cast<std::size_t>(want)) {
      dense_fired = dense.sys.now();
      break;
    }
    dense.sys.run_dense(1);
  }
  ASSERT_GE(dense_fired, 0);

  Scenario event(p);
  SinkTile* snk = event.sink;
  const bool fired = event.sys.run_until(
      [snk, want](Cycle) {
        return snk->received().size() >= static_cast<std::size_t>(want);
      },
      p.run_cycles);
  ASSERT_TRUE(fired);
  EXPECT_EQ(event.sys.now(), dense_fired);
  EXPECT_EQ(event.sink->received(), dense.sink->received());
}

TEST(EventHorizon, RunUntilEvaluatesPredicateOncePerStep) {
  // Regression: run_until used to evaluate the predicate twice per loop
  // step. The contract is one evaluation per visited cycle — observable
  // with a counting predicate: the cycles it sees must strictly increase
  // (no cycle presented twice) even across quiescent jumps.
  Params p;
  Scenario s(p);
  std::vector<Cycle> seen;
  const bool fired = s.sys.run_until(
      [&seen](Cycle now) {
        seen.push_back(now);
        return false;
      },
      2000);
  EXPECT_FALSE(fired);
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    ASSERT_LT(seen[i - 1], seen[i])
        << "predicate evaluated twice at cycle " << seen[i];
  }
  // The final evaluation happens at the budget end.
  EXPECT_EQ(seen.back(), 2000);
  // And one evaluation per visited cycle at most: never more evaluations
  // than cycles + 1 (the +1 is the entry check at cycle 0).
  EXPECT_LE(seen.size(), static_cast<std::size_t>(2001));
}

// --- Full PAL decoder demonstrator -------------------------------------

app::PalSimConfig small_pal() {
  app::PalSimConfig cfg;
  cfg.input_samples = 1 << 11;  // short but covers many blocks per stream
  return cfg;
}

void expect_same_pal(const app::PalSimResult& dense,
                     const app::PalSimResult& event) {
  EXPECT_EQ(dense.left, event.left);
  EXPECT_EQ(dense.right, event.right);
  EXPECT_EQ(dense.source_drops, event.source_drops);
  EXPECT_EQ(dense.sink_underruns, event.sink_underruns);
  EXPECT_EQ(dense.cycles_run, event.cycles_run);
  EXPECT_EQ(dense.max_audio_latency, event.max_audio_latency);
  EXPECT_EQ(dense.cordic_samples, event.cordic_samples);
  EXPECT_EQ(dense.fir_samples, event.fir_samples);
  EXPECT_EQ(dense.cordic_busy, event.cordic_busy);
  EXPECT_EQ(dense.fir_busy, event.fir_busy);
  EXPECT_EQ(dense.blocks_per_stream, event.blocks_per_stream);
  EXPECT_EQ(dense.gateway.blocks, event.gateway.blocks);
  EXPECT_EQ(dense.gateway.samples_forwarded, event.gateway.samples_forwarded);
  EXPECT_EQ(dense.gateway.data_cycles, event.gateway.data_cycles);
  EXPECT_EQ(dense.gateway.reconfig_cycles, event.gateway.reconfig_cycles);
  EXPECT_EQ(dense.gateway.wait_cycles, event.gateway.wait_cycles);
  EXPECT_EQ(dense.gateway.credit_stall_cycles,
            event.gateway.credit_stall_cycles);
}

TEST(EventHorizon, PalDecoderEquivalence) {
  app::PalSimConfig cfg = small_pal();
  cfg.stepper = StepperKind::kDense;
  const app::PalSimResult dense = app::run_pal_decoder(cfg);
  cfg.stepper = StepperKind::kGlobalHorizon;
  const app::PalSimResult global = app::run_pal_decoder(cfg);
  cfg.stepper = StepperKind::kWakeList;
  const app::PalSimResult wake = app::run_pal_decoder(cfg);
  expect_same_pal(dense, global);
  expect_same_pal(dense, wake);
  EXPECT_EQ(dense.stepper.skips, 0);
  EXPECT_GT(global.stepper.skipped_cycles, 0);
  EXPECT_GT(wake.stepper.skipped_cycles, 0);
  EXPECT_GT(wake.stepper.wakes, 0);
  // Selective ticking: the wake list must tick strictly fewer components
  // than the all-or-nothing skipper on the same workload.
  EXPECT_LT(wake.stepper.component_ticks, global.stepper.component_ticks);
}

TEST(EventHorizon, PalDecoderEquivalenceUnderFaults) {
  const auto run = [](StepperKind kind) {
    FaultInjector inj(0xFA117);
    FaultSpec ring;
    ring.probability = 0.01;
    ring.max_delay = 4;
    ring.min_spacing = 200;
    inj.configure(FaultSite::kRingLink, ring);
    FaultSpec bus;
    bus.probability = 0.4;
    bus.max_delay = 50;
    inj.configure(FaultSite::kConfigBus, bus);
    FaultSpec notify;
    notify.probability = 0.3;
    notify.max_delay = 20;
    notify.drop_probability = 0.1;
    inj.configure(FaultSite::kExitNotify, notify);
    TraceLog trace(1 << 18);
    app::PalSimConfig cfg = small_pal();
    cfg.stepper = kind;
    cfg.fault = &inj;
    cfg.trace = &trace;
    cfg.notify_timeout = 2000;  // recovery: drops must not deadlock
    app::PalSimResult res = app::run_pal_decoder(cfg);
    return std::make_pair(std::move(res), trace.to_csv());
  };
  const auto [dense, dense_csv] = run(StepperKind::kDense);
  const auto [global, global_csv] = run(StepperKind::kGlobalHorizon);
  const auto [wake, wake_csv] = run(StepperKind::kWakeList);
  expect_same_pal(dense, global);
  expect_same_pal(dense, wake);
  EXPECT_EQ(dense_csv, global_csv);
  EXPECT_EQ(dense_csv, wake_csv);
  EXPECT_EQ(dense.gateway.notify_timeouts, global.gateway.notify_timeouts);
  EXPECT_EQ(dense.gateway.notify_timeouts, wake.gateway.notify_timeouts);
  EXPECT_EQ(dense.gateway.notify_recoveries, global.gateway.notify_recoveries);
  EXPECT_EQ(dense.gateway.notify_recoveries, wake.gateway.notify_recoveries);
}

TEST(EventHorizon, PalDedicatedDecoderEquivalence) {
  app::PalSimConfig cfg = small_pal();
  cfg.stepper = StepperKind::kDense;
  const app::PalSimResult dense = app::run_pal_decoder_dedicated(cfg);
  cfg.stepper = StepperKind::kGlobalHorizon;
  const app::PalSimResult global = app::run_pal_decoder_dedicated(cfg);
  cfg.stepper = StepperKind::kWakeList;
  const app::PalSimResult wake = app::run_pal_decoder_dedicated(cfg);
  expect_same_pal(dense, global);
  expect_same_pal(dense, wake);
}

}  // namespace
}  // namespace acc::sim
