#include "sim/chain_builder.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "sim/proc_tile.hpp"

namespace acc::sim {
namespace {

/// Identity kernel (no state).
class Pass final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override { out.push_back(in); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "pass"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Pass>();
  }
};

std::vector<std::unique_ptr<accel::StreamKernel>> passes(std::size_t n) {
  std::vector<std::unique_ptr<accel::StreamKernel>> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(std::make_unique<Pass>());
  return v;
}

TEST(ChainBuilder, SingleChainEndToEnd) {
  System sys(5);
  ChainConfig cfg;
  cfg.base_node = 0;
  cfg.accel_cycles = {1, 1, 1};  // three accelerators in the chain
  cfg.epsilon = 2;
  GatewayChain chain = build_gateway_chain(sys, cfg);
  ASSERT_EQ(chain.accels.size(), 3u);
  EXPECT_EQ(chain.nodes_used(), 5);

  CFifo& in = sys.add_fifo("in", 64);
  CFifo& out = sys.add_fifo("out", 256, 0, 0);
  chain.add_stream({0, "s", 16, 16, &in, &out, /*reconfig=*/10}, passes(3));

  std::vector<Flit> payload(64);
  std::iota(payload.begin(), payload.end(), Flit{100});
  sys.add<SourceTile>("src", in, payload, 8);
  sys.run(64 * 8 + 4000);

  ASSERT_EQ(out.true_fill(), 64);
  for (Flit i = 0; i < 64; ++i) EXPECT_EQ(out.pop(sys.now()), 100 + i);
  EXPECT_EQ(chain.entry->stats().blocks, 4);
}

TEST(ChainBuilder, TwoChainsShareOneRing) {
  System sys(8);
  ChainConfig c1;
  c1.name = "c1";
  c1.base_node = 0;
  c1.accel_cycles = {1};
  c1.epsilon = 2;
  ChainConfig c2;
  c2.name = "c2";
  c2.base_node = 3;  // after c1's 3 nodes
  c2.accel_cycles = {1, 1};
  c2.epsilon = 2;
  GatewayChain g1 = build_gateway_chain(sys, c1);
  GatewayChain g2 = build_gateway_chain(sys, c2);

  CFifo& in1 = sys.add_fifo("in1", 64);
  CFifo& out1 = sys.add_fifo("out1", 256, 0, 0);
  CFifo& in2 = sys.add_fifo("in2", 64);
  CFifo& out2 = sys.add_fifo("out2", 256, 0, 0);
  g1.add_stream({0, "s1", 8, 8, &in1, &out1, 10}, passes(1));
  g2.add_stream({0, "s2", 8, 8, &in2, &out2, 10}, passes(2));

  std::vector<Flit> p1(32);
  std::vector<Flit> p2(32);
  std::iota(p1.begin(), p1.end(), Flit{1000});
  std::iota(p2.begin(), p2.end(), Flit{2000});
  sys.add<SourceTile>("src1", in1, p1, 8);
  sys.add<SourceTile>("src2", in2, p2, 8);
  sys.run(32 * 8 + 4000);

  EXPECT_EQ(out1.true_fill(), 32);
  EXPECT_EQ(out2.true_fill(), 32);
  for (Flit i = 0; i < 32; ++i) EXPECT_EQ(out1.pop(sys.now()), 1000 + i);
  for (Flit i = 0; i < 32; ++i) EXPECT_EQ(out2.pop(sys.now()), 2000 + i);
}

TEST(ChainBuilder, RejectsOversizedChain) {
  System sys(3);
  ChainConfig cfg;
  cfg.accel_cycles = {1, 1};  // needs 4 nodes, ring has 3
  EXPECT_THROW((void)build_gateway_chain(sys, cfg), precondition_error);
}

TEST(ChainBuilder, KernelArityEnforced) {
  System sys(4);
  ChainConfig cfg;
  cfg.accel_cycles = {1, 1};
  GatewayChain chain = build_gateway_chain(sys, cfg);
  CFifo& in = sys.add_fifo("in", 16);
  CFifo& out = sys.add_fifo("out", 16);
  EXPECT_THROW(
      chain.add_stream({0, "s", 4, 4, &in, &out, 5}, passes(1)),
      precondition_error);
}

}  // namespace
}  // namespace acc::sim
