#include "sim/cfifo.hpp"

#include <gtest/gtest.h>

namespace acc::sim {
namespace {

TEST(CFifo, PushVisibleToReaderAfterLag) {
  CFifo f("t", 8, /*rlag=*/4, /*wlag=*/4);
  f.push(0, 11);
  EXPECT_EQ(f.fill_visible(0), 0);
  EXPECT_EQ(f.fill_visible(3), 0);
  EXPECT_EQ(f.fill_visible(4), 1);
  EXPECT_EQ(f.pop(4), 11u);
}

TEST(CFifo, SpaceVisibleToWriterAfterLag) {
  CFifo f("t", 2, 0, /*wlag=*/5);
  f.push(0, 1);
  f.push(0, 2);
  EXPECT_FALSE(f.can_push(0));
  (void)f.pop(1);
  // The freed slot becomes writer-visible at cycle 6.
  EXPECT_FALSE(f.can_push(5));
  EXPECT_TRUE(f.can_push(6));
}

TEST(CFifo, ZeroLagBehavesLikePlainFifo) {
  CFifo f("t", 3, 0, 0);
  f.push(0, 1);
  f.push(0, 2);
  EXPECT_EQ(f.fill_visible(0), 2);
  EXPECT_EQ(f.pop(0), 1u);
  EXPECT_EQ(f.pop(0), 2u);
  EXPECT_TRUE(f.can_push(0));
}

TEST(CFifo, PopWithoutDataThrows) {
  CFifo f("t", 2, 3, 0);
  f.push(0, 9);
  EXPECT_THROW((void)f.pop(1), precondition_error);  // not visible yet
  EXPECT_EQ(f.pop(3), 9u);
  EXPECT_THROW((void)f.pop(10), precondition_error);  // empty
}

TEST(CFifo, PushWithoutSpaceThrows) {
  CFifo f("t", 1, 0, 0);
  f.push(0, 1);
  EXPECT_THROW(f.push(0, 2), precondition_error);
}

TEST(CFifo, CountersAndPeak) {
  CFifo f("t", 4, 0, 0);
  for (int i = 0; i < 4; ++i) f.push(i, static_cast<Flit>(i));
  EXPECT_EQ(f.peak_fill(), 4);
  (void)f.pop(5);
  (void)f.pop(5);
  f.push(6, 9);
  EXPECT_EQ(f.total_pushed(), 5);
  EXPECT_EQ(f.total_popped(), 2);
  EXPECT_EQ(f.true_fill(), 3);
  EXPECT_EQ(f.peak_fill(), 4);
}

TEST(CFifo, OrderPreserved) {
  CFifo f("t", 8, 2, 1);
  for (Flit i = 0; i < 8; ++i) f.push(static_cast<Cycle>(i), 100 + i);
  for (Flit i = 0; i < 8; ++i) EXPECT_EQ(f.pop(100), 100 + i);
}

TEST(CFifo, WriterViewIsConservativeNeverUnsafe) {
  // Whatever the lags, the writer's space estimate never exceeds the true
  // free space.
  CFifo f("t", 4, 3, 7);
  Cycle now = 0;
  for (int step = 0; step < 200; ++step) {
    now += 1;
    if (f.can_push(now)) f.push(now, static_cast<Flit>(step));
    if (step % 3 == 0 && f.can_pop(now)) (void)f.pop(now);
    EXPECT_LE(f.space_visible(now), f.capacity() - f.true_fill());
    EXPECT_LE(f.fill_visible(now), f.true_fill());
  }
}

TEST(CFifo, InvalidConstruction) {
  EXPECT_THROW(CFifo("t", 0), precondition_error);
  EXPECT_THROW(CFifo("t", 1, -1, 0), precondition_error);
}

// --- PR6 hot-path backfill: the O(1) guards at exact deadlines ----------

TEST(CFifo, CanPopFlipsExactlyAtVisibilityDeadline) {
  // can_pop is the head-deadline comparison (<=, not <): the sample is
  // poppable AT its visibility cycle, one cycle earlier it is not.
  CFifo f("t", 8, /*rlag=*/3, /*wlag=*/0);
  f.push(10, 5);
  EXPECT_EQ(f.when_fill_visible(1, 10), 13);
  EXPECT_FALSE(f.can_pop(12));
  EXPECT_TRUE(f.can_pop(13));
  EXPECT_EQ(f.pop(13), 5u);
}

TEST(CFifo, CanPopAtSameCycleWithZeroLag) {
  CFifo f("t", 4, 0, 0);
  EXPECT_FALSE(f.can_pop(0));
  f.push(0, 7);
  EXPECT_TRUE(f.can_pop(0));
}

TEST(CFifo, CanPushFlipsExactlyAtCreditDeadline) {
  // The freed slot becomes writer-visible exactly wlag cycles after the
  // pop, boundary inclusive.
  CFifo f("t", 1, /*rlag=*/0, /*wlag=*/4);
  f.push(0, 1);
  EXPECT_FALSE(f.can_push(1));
  (void)f.pop(2);
  EXPECT_EQ(f.when_space_visible(1, 2), 6);
  EXPECT_FALSE(f.can_push(5));
  EXPECT_TRUE(f.can_push(6));
}

TEST(CFifo, WhenPredictionsAgreeWithGuardsAtEveryCycle) {
  // The event-horizon stepper trusts when_* to be EXACT: stepping the clock
  // cycle by cycle, the guard must flip precisely at the predicted cycle.
  CFifo f("t", 2, /*rlag=*/5, /*wlag=*/3);
  f.push(0, 1);
  f.push(1, 2);
  const Cycle fill_at = f.when_fill_visible(2, 1);
  for (Cycle now = 1; now < fill_at + 2; ++now)
    EXPECT_EQ(f.fill_visible(now) >= 2, now >= fill_at) << "cycle " << now;
  (void)f.pop(fill_at);
  const Cycle space_at = f.when_space_visible(1, fill_at);
  for (Cycle now = fill_at; now < space_at + 2; ++now)
    EXPECT_EQ(f.can_push(now), now >= space_at) << "cycle " << now;
}

TEST(CFifo, MetricsFollowPushAndPop) {
  obs::MetricsRegistry reg;
  CFifo f("q", 4, 0, 0);
  f.set_metrics(&reg);
  f.push(0, 1);
  f.push(1, 2);
  (void)f.pop(2);
  const obs::MetricCell* pushed = reg.find("cfifo.q.pushed");
  const obs::MetricCell* popped = reg.find("cfifo.q.popped");
  const obs::MetricCell* occ = reg.find("cfifo.q.occupancy");
  ASSERT_NE(pushed, nullptr);
  ASSERT_NE(popped, nullptr);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(pushed->value, 2);
  EXPECT_EQ(popped->value, 1);
  EXPECT_EQ(occ->value, 1);  // gauge: occupancy after the pop
  EXPECT_EQ(occ->max, 2);    // peak occupancy seen
}

}  // namespace
}  // namespace acc::sim
