#include "sim/proc_tile.hpp"

#include <gtest/gtest.h>

#include "sim/system.hpp"

namespace acc::sim {
namespace {

TEST(ProcessorTile, RunsTasksAndChargesCost) {
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", /*replenish=*/100);
  int runs = 0;
  pt.add_task(Task{"t", [&](Cycle) -> Cycle {
                     ++runs;
                     return 10;
                   },
                   /*budget=*/100});
  sys.run(100);
  // Each invocation costs 10 cycles: ~10 invocations in 100 cycles.
  EXPECT_GE(runs, 9);
  EXPECT_LE(runs, 11);
  EXPECT_EQ(pt.invocations(0), runs);
}

TEST(ProcessorTile, BudgetLimitsTaskShare) {
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", /*replenish=*/100);
  int greedy = 0;
  pt.add_task(Task{"greedy", [&](Cycle) -> Cycle {
                     ++greedy;
                     return 10;
                   },
                   /*budget=*/30});
  sys.run(1000);
  // 30 cycles of budget per 100-cycle period -> at most 3 runs per period.
  EXPECT_LE(greedy, 3 * 10 + 1);
  EXPECT_GE(greedy, 3 * 10 - 3);
}

TEST(ProcessorTile, RoundRobinSharesBetweenTasks) {
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", 100);
  int a = 0;
  int b = 0;
  pt.add_task(Task{"a", [&](Cycle) -> Cycle {
                     ++a;
                     return 5;
                   },
                   50});
  pt.add_task(Task{"b", [&](Cycle) -> Cycle {
                     ++b;
                     return 5;
                   },
                   50});
  sys.run(1000);
  EXPECT_NEAR(a, b, 2);
  EXPECT_GT(a, 50);
}

TEST(ProcessorTile, BlockedTaskYieldsToOthers) {
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", 100);
  int blocked_polls = 0;
  int worker = 0;
  pt.add_task(Task{"blocked", [&](Cycle) -> Cycle {
                     ++blocked_polls;
                     return 0;  // never has work
                   },
                   50});
  pt.add_task(Task{"worker", [&](Cycle) -> Cycle {
                     ++worker;
                     return 4;
                   },
                   50});
  sys.run(400);
  EXPECT_GT(worker, 40);  // got the cycles the blocked task couldn't use
}

TEST(PriorityBudget, HighPriorityDominatesWhileItHoldsBudget) {
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", /*replenish=*/100,
                                    SchedulerPolicy::kPriorityBudget);
  int low = 0;
  int high = 0;
  pt.add_task(Task{"low", [&](Cycle) -> Cycle {
                     ++low;
                     return 10;
                   },
                   /*budget=*/100, /*priority=*/1});
  pt.add_task(Task{"high", [&](Cycle) -> Cycle {
                     ++high;
                     return 10;
                   },
                   /*budget=*/40, /*priority=*/9});
  sys.run(1000);
  // Per 100-cycle period: high runs its full 40-cycle budget (4 runs),
  // low fills the remaining 60 (6 runs).
  EXPECT_NEAR(high, 40, 3);
  EXPECT_NEAR(low, 60, 3);
}

TEST(PriorityBudget, BudgetExhaustionYieldsToLowerPriority) {
  // Even the highest priority cannot starve others beyond its budget —
  // the temporal-isolation property the dataflow analysis needs.
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", 100,
                                    SchedulerPolicy::kPriorityBudget);
  int greedy = 0;
  int meek = 0;
  pt.add_task(Task{"greedy", [&](Cycle) -> Cycle {
                     ++greedy;
                     return 5;
                   },
                   /*budget=*/20, /*priority=*/100});
  pt.add_task(Task{"meek", [&](Cycle) -> Cycle {
                     ++meek;
                     return 5;
                   },
                   /*budget=*/80, /*priority=*/0});
  sys.run(1000);
  EXPECT_NEAR(greedy, 4 * 10, 2);   // 20/5 runs per period
  EXPECT_NEAR(meek, 16 * 10, 3);    // 80/5 runs per period
}

TEST(PriorityBudget, EqualPriorityFallsBackToRegistrationOrder) {
  System sys(2);
  auto& pt = sys.add<ProcessorTile>("pt", 100,
                                    SchedulerPolicy::kPriorityBudget);
  int first = 0;
  int second = 0;
  pt.add_task(Task{"first", [&](Cycle) -> Cycle {
                     ++first;
                     return 10;
                   },
                   /*budget=*/50, /*priority=*/5});
  pt.add_task(Task{"second", [&](Cycle) -> Cycle {
                     ++second;
                     return 10;
                   },
                   /*budget=*/50, /*priority=*/5});
  sys.run(500);
  // Both get their 50-cycle budgets per period.
  EXPECT_NEAR(first, 25, 2);
  EXPECT_NEAR(second, 25, 2);
}

TEST(SourceTile, EmitsAtFixedRateAndCountsDrops) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 4, 0, 0);
  std::vector<Flit> data(10, 7);
  auto& src = sys.add<SourceTile>("src", f, data, /*period=*/3);
  sys.run(100);
  // Nobody drains: 4 accepted, 6 dropped.
  EXPECT_EQ(src.emitted(), 4);
  EXPECT_EQ(src.dropped(), 6);
  EXPECT_TRUE(src.exhausted());
}

TEST(SourceTile, NoDropsWhenDrained) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 4, 0, 0);
  std::vector<Flit> data(20, 9);
  auto& src = sys.add<SourceTile>("src", f, data, 3);
  auto& sink = sys.add<SinkTile>("sink", f, 3, 1);
  // Run just past the stream's natural end: a DAC counts demands beyond the
  // end of the broadcast as underruns, so the horizon matters.
  sys.run(58);
  EXPECT_EQ(src.dropped(), 0);
  EXPECT_EQ(sink.received().size(), 20u);
  EXPECT_EQ(sink.underruns(), 0);
}

TEST(SinkTile, WaitsForPrefillThenConsumesPeriodically) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 16, 0, 0);
  auto& sink = sys.add<SinkTile>("sink", f, /*period=*/5, /*prefill=*/3);
  sys.run(10);
  EXPECT_FALSE(sink.started());
  f.push(sys.now(), 1);
  f.push(sys.now(), 2);
  sys.run(10);
  EXPECT_FALSE(sink.started());  // below prefill
  f.push(sys.now(), 3);
  sys.run(20);
  EXPECT_TRUE(sink.started());
  ASSERT_GE(sink.timestamps().size(), 2u);
  EXPECT_EQ(sink.timestamps()[1] - sink.timestamps()[0], 5);
}

TEST(SinkTile, CountsUnderruns) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 16, 0, 0);
  auto& sink = sys.add<SinkTile>("sink", f, 2, 1);
  f.push(0, 1);
  sys.run(21);
  // Started at t=0 with one sample; 10 more demands with nothing there.
  EXPECT_EQ(sink.received().size(), 1u);
  EXPECT_GE(sink.underruns(), 9);
}

}  // namespace
}  // namespace acc::sim
