#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <string>

#include "accel/kernel.hpp"
#include "common/json.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/gateway.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace acc::sim {
namespace {

TEST(TraceLog, RecordsAndFilters) {
  TraceLog log;
  log.record(1, "gw", "admit", 0);
  log.record(2, "acc", "ctx.switch", 0);
  log.record(5, "gw", "block.done", 0);
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.from("gw").size(), 2u);
  EXPECT_EQ(log.of("ctx.switch").size(), 1u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLog, CsvFormat) {
  TraceLog log;
  log.record(7, "gw", "admit", 3);
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("cycle,source,event,value\n"), std::string::npos);
  EXPECT_NE(csv.find("7,gw,admit,3\n"), std::string::npos);
}

TEST(TraceLog, BoundedCapacityDropsAndCounts) {
  TraceLog log(2);
  log.record(1, "a", "x");
  log.record(2, "a", "x");
  log.record(3, "a", "x");
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_TRUE(log.truncated());
}

TEST(TraceLog, CsvMarksTruncation) {
  TraceLog log(2);
  log.record(1, "a", "x", 0);
  log.record(4, "a", "x", 0);
  log.record(9, "a", "x", 0);
  log.record(9, "a", "x", 0);
  ASSERT_TRUE(log.truncated());
  const std::string csv = log.to_csv();
  // Marker row: last retained cycle, synthetic source/event, dropped count.
  EXPECT_NE(csv.find("4,trace,truncated,2\n"), std::string::npos);
  // The marker is the final line so the CSV stays cycle-sorted.
  const auto pos = csv.rfind("4,trace,truncated,2\n");
  EXPECT_EQ(pos + std::string("4,trace,truncated,2\n").size(), csv.size());
}

TEST(TraceLog, CsvOmitsMarkerWhenComplete) {
  TraceLog log(8);
  log.record(1, "a", "x", 0);
  EXPECT_FALSE(log.truncated());
  EXPECT_EQ(log.to_csv().find("truncated"), std::string::npos);
}

// The gateway/accelerator event protocol on a real run: for every block,
// admit -> (reconfig.start -> ctx.switch -> reconfig.done)? ->
// block.delivered -> block.done, in cycle order.
class TracedPassthrough final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override { out.push_back(in); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "pass"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<TracedPassthrough>();
  }
};

TEST(TraceIntegration, GatewayProtocolOrdering) {
  TraceLog log;
  System sys(4);
  CFifo& in0 = sys.add_fifo("in0", 64);
  CFifo& in1 = sys.add_fifo("in1", 64);
  CFifo& out0 = sys.add_fifo("out0", 256, 0, 0);
  CFifo& out1 = sys.add_fifo("out1", 256, 0, 0);
  auto& accel = sys.add<AcceleratorTile>("acc", sys.ring(), 1, 1, 2);
  accel.register_context(0, std::make_unique<TracedPassthrough>());
  accel.register_context(1, std::make_unique<TracedPassthrough>());
  accel.set_upstream(0, 1);
  accel.set_downstream(3, 2, 2);
  accel.set_trace(&log);
  auto& exit = sys.add<ExitGateway>("exit", sys.ring(), 3, 1, 2);
  exit.set_upstream(1, 1);
  exit.set_trace(&log);
  auto& entry = sys.add<EntryGateway>("entry", sys.ring(), 0, 2, 1, 1, 2);
  entry.set_chain({&accel});
  entry.set_exit(&exit);
  exit.set_entry(&entry);
  entry.set_trace(&log);
  entry.add_stream({0, "s0", 16, 16, &in0, &out0, 20});
  entry.add_stream({1, "s1", 16, 16, &in1, &out1, 20});
  std::vector<Flit> payload(64);
  std::iota(payload.begin(), payload.end(), Flit{1});
  sys.add<SourceTile>("src0", in0, payload, 16);
  sys.add<SourceTile>("src1", in1, payload, 16);
  sys.run(64 * 16 + 4000);

  // 4 blocks per stream; streams alternate, so every admit reconfigures.
  EXPECT_EQ(log.of("admit").size(), 8u);
  EXPECT_EQ(log.of("reconfig.start").size(), 8u);
  EXPECT_EQ(log.of("reconfig.done").size(), 8u);
  EXPECT_EQ(log.of("ctx.switch").size(), 8u);
  EXPECT_EQ(log.of("block.delivered").size(), 8u);
  EXPECT_EQ(log.of("block.done").size(), 8u);

  // Cycle-ordered, and each reconfig.done lands R=20 cycles after its start.
  const auto starts = log.of("reconfig.start");
  const auto dones = log.of("reconfig.done");
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(dones[i].cycle - starts[i].cycle, 20);
    EXPECT_EQ(dones[i].value, starts[i].value);  // same stream
  }
  // Global ordering is monotone in cycles.
  for (std::size_t i = 1; i < log.events().size(); ++i)
    EXPECT_LE(log.events()[i - 1].cycle, log.events()[i].cycle);
}

// --- Chrome trace-event exporter ---------------------------------------

TraceLog sample_log() {
  TraceLog log;
  log.record(10, "entry", "admit", 0);
  log.record(12, "entry", "reconfig.start", 0);
  log.record(12, "acc", "ctx.switch", 0);
  log.record(32, "entry", "reconfig.done", 0);
  log.record(80, "exit", "block.delivered", 0);
  log.record(82, "entry", "block.done", 0);
  log.record(90, "entry", "fault.config_bus", 7);
  return log;
}

TEST(ChromeTrace, SerializedFormIsWellFormedJson) {
  const TraceLog log = sample_log();
  const std::string text = obs::chrome_trace_json(log);
  const std::optional<json::Value> parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->find("traceEvents"), nullptr);
  EXPECT_FALSE(parsed->at("traceEvents").as_array().empty());
}

TEST(ChromeTrace, EveryComponentGetsANamedTrack) {
  const json::Value doc = obs::chrome_trace_doc(sample_log());
  std::map<std::int64_t, std::string> track_names;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name") {
      track_names[e.at("tid").as_int()] = e.at("args").at("name").as_string();
    }
  }
  // tid 0 is the counters track; entry/acc/exit each get their own.
  EXPECT_EQ(track_names.at(0), "counters");
  std::map<std::string, int> seen;
  for (const auto& [tid, name] : track_names) ++seen[name];
  EXPECT_EQ(seen.at("entry"), 1);
  EXPECT_EQ(seen.at("acc"), 1);
  EXPECT_EQ(seen.at("exit"), 1);
}

TEST(ChromeTrace, InstantsAreMonotonePerTrack) {
  const json::Value doc = obs::chrome_trace_doc(sample_log());
  std::map<std::int64_t, std::int64_t> last_ts;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "i") continue;
    const std::int64_t tid = e.at("tid").as_int();
    const std::int64_t ts = e.at("ts").as_int();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_LE(it->second, ts);
    last_ts[tid] = ts;
  }
  EXPECT_FALSE(last_ts.empty());
}

TEST(ChromeTrace, ReconfigWindowBecomesDurationEvent) {
  const json::Value doc = obs::chrome_trace_doc(sample_log());
  bool found = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    found = true;
    EXPECT_EQ(e.at("name").as_string(), "reconfig");
    EXPECT_EQ(e.at("ts").as_int(), 12);
    EXPECT_EQ(e.at("dur").as_int(), 20);
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, CountersTrackBlocksAndFaults) {
  const json::Value doc = obs::chrome_trace_doc(sample_log());
  std::int64_t blocks = 0;
  std::int64_t faults = 0;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "C") continue;
    if (e.at("name").as_string() == "blocks.done")
      blocks = e.at("args").at("value").as_int();
    if (e.at("name").as_string() == "faults")
      faults = e.at("args").at("value").as_int();
  }
  EXPECT_EQ(blocks, 1);
  EXPECT_EQ(faults, 1);
}

TEST(ChromeTrace, TruncatedLogEmitsGlobalTruncationInstant) {
  // PR6 backfill + satellite fix: the CSV export has carried a truncation
  // marker row since the TraceLog cap landed; the Chrome export must mark a
  // clipped trace the same way or a Perfetto user would read a partial
  // trace as complete.
  TraceLog log(2);
  log.record(1, "a", "x", 0);
  log.record(4, "a", "x", 0);
  log.record(9, "a", "x", 0);
  ASSERT_TRUE(log.truncated());
  const json::Value doc = obs::chrome_trace_doc(log);
  bool found = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("name").as_string() != "trace.truncated") continue;
    found = true;
    EXPECT_EQ(e.at("ph").as_string(), "i");
    EXPECT_EQ(e.at("s").as_string(), "g");  // global: spans every track
    // Stamped at the last RETAINED cycle (the clip point), dropped count in
    // args — mirroring the CSV marker row exactly.
    EXPECT_EQ(e.at("ts").as_int(), 4);
    EXPECT_EQ(e.at("args").at("dropped").as_int(), 1);
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, CompleteLogHasNoTruncationEvent) {
  const json::Value doc = obs::chrome_trace_doc(sample_log());
  for (const json::Value& e : doc.at("traceEvents").as_array())
    EXPECT_NE(e.at("name").as_string(), "trace.truncated");
}

}  // namespace
}  // namespace acc::sim
