#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "accel/kernel.hpp"

#include "sim/gateway.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace acc::sim {
namespace {

TEST(Jitter, EmissionTimesStayOnJitteredGrid) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 1024, 0, 0);
  std::vector<Flit> data(64, 1);
  auto& src = sys.add<SourceTile>("src", f, data, /*period=*/10);
  src.set_jitter(/*max_jitter=*/4, /*seed=*/42);
  // Record arrival times by polling the fifo every cycle.
  std::vector<Cycle> arrivals;
  for (Cycle t = 0; t < 700; ++t) {
    sys.run(1);
    while (f.can_pop(sys.now())) {
      arrivals.push_back(sys.now());
      (void)f.pop(sys.now());
    }
  }
  ASSERT_EQ(arrivals.size(), 64u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Cycle nominal = static_cast<Cycle>(i) * 10;
    EXPECT_GE(arrivals[i], nominal) << i;
    // +1 slack: arrival observed one cycle after the emitting tick.
    EXPECT_LE(arrivals[i], nominal + 4 + 1) << i;
  }
}

TEST(Jitter, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    System sys(2);
    CFifo& f = sys.add_fifo("f", 1024, 0, 0);
    std::vector<Flit> data(32, 1);
    auto& src = sys.add<SourceTile>("src", f, data, 8);
    src.set_jitter(5, seed);
    std::vector<Cycle> arrivals;
    for (Cycle t = 0; t < 400; ++t) {
      sys.run(1);
      while (f.can_pop(sys.now())) {
        arrivals.push_back(sys.now());
        (void)f.pop(sys.now());
      }
    }
    return arrivals;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Jitter, ZeroJitterMatchesStrictPeriodicity) {
  System sys(2);
  CFifo& f = sys.add_fifo("f", 1024, 0, 0);
  std::vector<Flit> data(16, 1);
  auto& src = sys.add<SourceTile>("src", f, data, 5);
  src.set_jitter(0);
  sys.run(100);
  EXPECT_EQ(src.emitted(), 16);
  EXPECT_EQ(src.nominal_emit_time(3), 15);
}

TEST(Jitter, GatewaySystemAbsorbsBoundedJitter) {
  // A jittery front end must not break the real-time verdict as long as
  // the input buffer holds the slack: admission is purely data-driven.
  System sys(4);
  CFifo& in = sys.add_fifo("in", 128);
  CFifo& out = sys.add_fifo("out", 1024, 0, 0);
  // Minimal single-stream chain via raw components (passthrough kernel).
  class Pass final : public accel::StreamKernel {
   public:
    void push(CQ16 s, std::vector<CQ16>& o) override { o.push_back(s); }
    [[nodiscard]] std::vector<std::int32_t> save_state() const override {
      return {};
    }
    void restore_state(std::span<const std::int32_t>) override {}
    void reset() override {}
    [[nodiscard]] std::size_t state_words() const override { return 0; }
    [[nodiscard]] std::string name() const override { return "p"; }
    [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
      return std::make_unique<Pass>();
    }
  };
  auto& acc_tile = sys.add<AcceleratorTile>("a", sys.ring(), 1, 1, 2);
  acc_tile.register_context(0, std::make_unique<Pass>());
  acc_tile.set_upstream(0, 1);
  acc_tile.set_downstream(3, 2, 2);
  auto& exit = sys.add<ExitGateway>("x", sys.ring(), 3, 1, 2);
  exit.set_upstream(1, 1);
  auto& entry = sys.add<EntryGateway>("e", sys.ring(), 0, 2, 1, 1, 2);
  entry.set_chain({&acc_tile});
  entry.set_exit(&exit);
  exit.set_entry(&entry);
  entry.add_stream({0, "s", 16, 16, &in, &out, 20});

  std::vector<Flit> payload(256);
  std::iota(payload.begin(), payload.end(), Flit{1});
  auto& src = sys.add<SourceTile>("src", in, payload, /*period=*/12);
  src.set_jitter(/*max_jitter=*/11, /*seed=*/3);  // a full period of jitter
  sys.run(256 * 12 + 4000);

  EXPECT_EQ(src.dropped(), 0);
  ASSERT_EQ(out.true_fill(), 256);
  for (Flit i = 0; i < 256; ++i) EXPECT_EQ(out.pop(sys.now()), 1 + i);
}

}  // namespace
}  // namespace acc::sim
