// Property test (ISSUE 2, satellite 1): randomly generated gateway chains
// must produce traces that conform to their own analytical model.
//
//  - With zero faults, every block meets tau_hat (Eq. 2) and the round
//    spacing bound, for any sampled chain shape / stream mix.
//  - With injected faults whose delays stay inside the declared envelope
//    (FaultInjector::worst_case_block_delay), every violation of the
//    zero-fault model is classified covered-by-slack — never genuine.
//
// Seeds are fixed so failures reproduce bit-identically on every platform.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "accel/kernel.hpp"
#include "common/rng.hpp"
#include "sharing/analysis.hpp"
#include "sharing/conformance.hpp"
#include "sim/chain_builder.hpp"
#include "sim/fault.hpp"
#include "sim/proc_tile.hpp"

namespace acc::sharing {
namespace {

class Pass final : public accel::StreamKernel {
 public:
  void push(CQ16 s, std::vector<CQ16>& o) override { o.push_back(s); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "p"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Pass>();
  }
};

struct RandomChain {
  std::vector<sim::Cycle> accel_cycles;
  sim::Cycle epsilon = 2;
  std::size_t num_streams = 1;
  std::int64_t eta = 16;
  sim::Cycle period = 16;
  sim::Cycle reconfig = 20;
  std::size_t blocks_per_stream = 5;
};

RandomChain sample_chain(SplitMix64& rng) {
  RandomChain c;
  const std::int64_t num_accels = rng.uniform(1, 2);
  for (std::int64_t a = 0; a < num_accels; ++a)
    c.accel_cycles.push_back(rng.uniform(1, 3));
  // Eq. 2 assumes the double-buffered NIs hide ring transport, which holds
  // when the bottleneck stage is no faster than the simulated credit loop
  // (~3 cycles/sample) — analogous to the documented ni_capacity >= 2
  // requirement. Keep the entry stage at or above that rate.
  c.epsilon = rng.uniform(3, 6);
  c.num_streams = static_cast<std::size_t>(rng.uniform(1, 3));
  c.eta = 8 * rng.uniform(1, 3);
  c.period = rng.uniform(4, 24);
  c.reconfig = rng.uniform(5, 50);
  // Only schedulable systems (Eq. 5): raise the sample period until a
  // round fits, plus margin so bounded fault delays never overflow the
  // input FIFOs into source drops.
  sim::Cycle c0 = c.epsilon;
  for (sim::Cycle cyc : c.accel_cycles) c0 = std::max(c0, cyc);
  const sim::Cycle tau =
      c.reconfig +
      (c.eta + static_cast<sim::Cycle>(c.accel_cycles.size()) + 1) * c0;
  const sim::Cycle gamma = static_cast<sim::Cycle>(c.num_streams) * tau;
  c.period = std::max(c.period, (gamma + c.eta - 1) / c.eta + 2);
  return c;
}

SharedSystemSpec spec_of(const RandomChain& c) {
  SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = c.accel_cycles;
  spec.chain.entry_cycles_per_sample = c.epsilon;
  spec.chain.exit_cycles_per_sample = 1;
  for (std::size_t s = 0; s < c.num_streams; ++s)
    spec.streams.push_back(
        {"s" + std::to_string(s), Rational(1, c.period), c.reconfig});
  return spec;
}

/// Builds the sampled chain, runs it to completion, and returns the trace.
struct RunResult {
  sim::TraceLog trace;
  std::vector<std::size_t> delivered;
};

RunResult run_chain(const RandomChain& c, sim::FaultInjector* fault,
                    bool fault_on_inputs) {
  RunResult res;
  sim::System sys(static_cast<std::int32_t>(c.accel_cycles.size()) + 2);
  sim::ChainConfig cfg;
  cfg.accel_cycles = c.accel_cycles;
  cfg.epsilon = c.epsilon;
  cfg.trace = &res.trace;
  cfg.fault = fault;
  if (fault != nullptr) {
    // No drops injected, but a timeout keeps the run bounded regardless.
    cfg.retry.notify_timeout = 50000;
  }
  sim::GatewayChain chain = sim::build_gateway_chain(sys, cfg);

  std::vector<sim::CFifo*> ins;
  std::vector<sim::CFifo*> outs;
  const std::size_t samples = c.blocks_per_stream * c.eta;
  for (std::size_t s = 0; s < c.num_streams; ++s) {
    const std::string tag = std::to_string(s);
    sim::CFifo& in = sys.add_fifo("in" + tag, 4 * c.eta);
    sim::CFifo& out =
        sys.add_fifo("out" + tag, static_cast<std::int64_t>(samples) + 8, 0, 0);
    if (fault != nullptr && fault_on_inputs) in.set_fault(fault);
    ins.push_back(&in);
    outs.push_back(&out);
    std::vector<std::unique_ptr<accel::StreamKernel>> kernels;
    for (std::size_t a = 0; a < c.accel_cycles.size(); ++a)
      kernels.push_back(std::make_unique<Pass>());
    chain.add_stream({static_cast<sim::StreamId>(s), "s" + tag, c.eta, c.eta,
                      &in, &out, c.reconfig},
                     std::move(kernels));
    std::vector<sim::Flit> payload(samples);
    std::iota(payload.begin(), payload.end(), sim::Flit{1});
    sys.add<sim::SourceTile>("src" + tag, in, payload, c.period);
  }

  sim::Cycle horizon = static_cast<sim::Cycle>(samples) * c.period + 60000;
  sys.run(horizon);
  for (sim::CFifo* out : outs) {
    std::size_t n = 0;
    while (out->can_pop(horizon)) {
      out->pop(horizon);
      ++n;
    }
    res.delivered.push_back(n);
  }
  return res;
}

TEST(ConformanceProperty, RandomChainsConformWithoutFaults) {
  SplitMix64 rng(0xC0FFEE01ULL);
  for (int iter = 0; iter < 10; ++iter) {
    const RandomChain c = sample_chain(rng);
    const SharedSystemSpec spec = spec_of(c);
    RunResult run = run_chain(c, nullptr, false);

    const std::size_t samples = c.blocks_per_stream * c.eta;
    for (std::size_t s = 0; s < c.num_streams; ++s)
      EXPECT_EQ(run.delivered[s], samples) << "iter " << iter;

    const std::vector<std::int64_t> etas(c.num_streams, c.eta);
    const ConformanceReport rep = check_conformance(spec, etas, run.trace);
    EXPECT_TRUE(rep.conforms) << "iter " << iter << ": "
                              << (rep.violations.empty()
                                      ? ""
                                      : rep.violations[0].detail);
    EXPECT_GE(rep.blocks_checked,
              static_cast<std::int64_t>(c.num_streams *
                                        (c.blocks_per_stream - 1)));
  }
}

TEST(ConformanceProperty, FaultsWithinEnvelopeAreNeverGenuine) {
  SplitMix64 rng(0xC0FFEE02ULL);
  for (int iter = 0; iter < 8; ++iter) {
    const RandomChain c = sample_chain(rng);
    const SharedSystemSpec spec = spec_of(c);

    sim::FaultInjector inj(0xBAD0 + static_cast<std::uint64_t>(iter));
    sim::FaultSpec ring;
    ring.probability = 0.05;
    ring.max_delay = 2;
    ring.min_spacing = 50;
    inj.configure(sim::FaultSite::kRingLink, ring);
    sim::FaultSpec bus;
    bus.probability = 0.5;
    bus.max_delay = 8;
    inj.configure(sim::FaultSite::kConfigBus, bus);
    sim::FaultSpec notify;
    notify.probability = 0.5;
    notify.max_delay = 8;
    inj.configure(sim::FaultSite::kExitNotify, notify);
    sim::FaultSpec credit;
    credit.probability = 0.01;
    credit.max_delay = 2;
    credit.min_spacing = 200;
    inj.configure(sim::FaultSite::kCreditWithhold, credit);

    RunResult run = run_chain(c, &inj, /*fault_on_inputs=*/true);

    const std::size_t samples = c.blocks_per_stream * c.eta;
    for (std::size_t s = 0; s < c.num_streams; ++s)
      EXPECT_EQ(run.delivered[s], samples) << "iter " << iter;

    const std::vector<std::int64_t> etas(c.num_streams, c.eta);
    ConformanceOptions opts;
    Time tau_max = 0;
    for (std::size_t s = 0; s < c.num_streams; ++s)
      tau_max = std::max(tau_max, tau_hat(spec, s, c.eta));
    opts.fault_slack =
        inj.worst_case_block_delay(tau_max + opts.slack, c.eta);
    const ConformanceReport rep =
        check_conformance(spec, etas, run.trace, opts);
    EXPECT_EQ(rep.genuine_breaches, 0)
        << "iter " << iter << ": "
        << (rep.violations.empty() ? "" : rep.violations.back().detail);
  }
}

}  // namespace
}  // namespace acc::sharing
