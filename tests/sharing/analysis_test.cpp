#include "sharing/analysis.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"

namespace acc::sharing {
namespace {

SharedSystemSpec paper_like_system() {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};  // CORDIC + LPF/DS
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {
      {"ch1.stage1", Rational(28224, 1000000), 4100},
      {"ch2.stage1", Rational(28224, 1000000), 4100},
      {"ch1.stage2", Rational(3528, 1000000), 4100},
      {"ch2.stage2", Rational(3528, 1000000), 4100},
  };
  return sys;
}

TEST(Analysis, BottleneckIsMaxOfStageCosts) {
  ChainSpec chain;
  chain.accel_cycles_per_sample = {3, 7};
  chain.entry_cycles_per_sample = 5;
  chain.exit_cycles_per_sample = 2;
  EXPECT_EQ(bottleneck_cycles_per_sample(chain), 7);
  chain.entry_cycles_per_sample = 15;
  EXPECT_EQ(bottleneck_cycles_per_sample(chain), 15);
}

TEST(Analysis, PipelineTailCountsAccelsPlusExit) {
  ChainSpec chain;
  chain.accel_cycles_per_sample = {1};
  EXPECT_EQ(pipeline_tail(chain), 2);  // paper's (eta + 2) for one accel
  chain.accel_cycles_per_sample = {1, 1, 1};
  EXPECT_EQ(pipeline_tail(chain), 4);
}

TEST(Analysis, TauHatMatchesEquation2) {
  SharedSystemSpec sys = paper_like_system();
  // c0 = max(15, 1, 1) = 15; tail = 3 (two accels + exit).
  EXPECT_EQ(tau_hat(sys, 0, 100), 4100 + (100 + 3) * 15);
  EXPECT_EQ(tau_hat(sys, 2, 1), 4100 + 4 * 15);
}

TEST(Analysis, GammaIsSumOfTaus) {
  SharedSystemSpec sys = paper_like_system();
  const std::vector<std::int64_t> etas{10, 20, 30, 40};
  Time sum = 0;
  for (std::size_t s = 0; s < 4; ++s) sum += tau_hat(sys, s, etas[s]);
  EXPECT_EQ(gamma_hat(sys, etas), sum);
  EXPECT_EQ(s_hat(sys, 1, etas), sum - tau_hat(sys, 1, 20));
}

TEST(Analysis, ThroughputMetExactRationalBoundary) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 1;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 10), 4}};
  // gamma(eta) = 4 + (eta + 2): eta=1 -> 7 > 10*mu... check boundary:
  // eta/gamma >= 1/10  <=>  10*eta >= eta + 6  <=>  eta >= 2/3: eta=1 works.
  EXPECT_TRUE(throughput_met(sys, {1}));
  // Tighten mu to 1/7: eta=1, gamma=7 -> 1/7 >= 1/7 exactly (boundary).
  sys.streams[0].mu = Rational(1, 7);
  EXPECT_TRUE(throughput_met(sys, {1}));
  sys.streams[0].mu = Rational(1, 7) + Rational(1, 1000000);
  EXPECT_FALSE(throughput_met(sys, {1}));
}

TEST(Analysis, UtilizationSumsStreams) {
  SharedSystemSpec sys = paper_like_system();
  // c0 = 15, sum(mu) = 2*(28224 + 3528)/1e6 = 63504/1e6.
  EXPECT_EQ(utilization(sys), Rational(63504, 1000000) * Rational(15));
  EXPECT_LT(utilization(sys), Rational(1));
}

TEST(Analysis, BlockScheduleSingleSample) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {2};
  sys.chain.entry_cycles_per_sample = 3;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 100), 10}};
  const BlockSchedule sch = block_schedule(sys, 0, 1);
  // G0: [10,13], A0: [13,15], G1: [15,16].
  ASSERT_EQ(sch.entries.size(), 3u);
  EXPECT_EQ(sch.entries[0].start, 10);
  EXPECT_EQ(sch.entries[0].end, 13);
  EXPECT_EQ(sch.entries[1].start, 13);
  EXPECT_EQ(sch.entries[1].end, 15);
  EXPECT_EQ(sch.entries[2].start, 15);
  EXPECT_EQ(sch.completion, 16);
}

TEST(Analysis, BlockSchedulePipelinesAtBottleneckRate) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 100), 4100}};
  const std::int64_t eta = 64;
  const BlockSchedule sch = block_schedule(sys, 0, eta);
  // Entry gateway dominates: samples leave G0 every 15 cycles; the last
  // sample completes 1 (accel) + 1 (exit) cycles after G0's last emission.
  EXPECT_EQ(sch.completion, 4100 + eta * 15 + 1 + 1);
  EXPECT_LE(sch.completion, tau_hat(sys, 0, eta));
}

TEST(Analysis, GanttRendersAllStages) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {2, 3};
  sys.chain.entry_cycles_per_sample = 4;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 100), 10}};
  const BlockSchedule sch = block_schedule(sys, 0, 5);
  const std::string g = render_gantt(sch, 64);
  EXPECT_NE(g.find("G0"), std::string::npos);
  EXPECT_NE(g.find("A0"), std::string::npos);
  EXPECT_NE(g.find("A1"), std::string::npos);
  EXPECT_NE(g.find("G1"), std::string::npos);
  EXPECT_NE(g.find("#"), std::string::npos);
  EXPECT_NE(g.find("="), std::string::npos);  // alternating samples visible
  EXPECT_NE(g.find("t=10 .. "), std::string::npos);  // starts after R_s
  EXPECT_THROW((void)render_gantt(sch, 4), precondition_error);
}

TEST(Analysis, EmptyishPreconditions) {
  SharedSystemSpec sys = paper_like_system();
  EXPECT_THROW((void)tau_hat(sys, 9, 1), precondition_error);
  EXPECT_THROW((void)tau_hat(sys, 0, 0), precondition_error);
  EXPECT_THROW((void)gamma_hat(sys, {1, 2}), precondition_error);
}

// Property: the exact schedule completion never exceeds the Eq. 2 bound,
// over a broad random sweep of chain shapes and block sizes.
TEST(AnalysisProperty, ScheduleRespectsTauHatBound) {
  SplitMix64 rng(0xE92);
  for (int trial = 0; trial < 300; ++trial) {
    SharedSystemSpec sys;
    const int accels = static_cast<int>(rng.uniform(1, 3));
    sys.chain.accel_cycles_per_sample.clear();
    for (int a = 0; a < accels; ++a)
      sys.chain.accel_cycles_per_sample.push_back(rng.uniform(1, 6));
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 20);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 4);
    sys.chain.ni_capacity = rng.uniform(2, 3);  // Eq. 2 needs >= 2 (see below)
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 5000)}};
    const std::int64_t eta = rng.uniform(1, 200);
    const BlockSchedule sch = block_schedule(sys, 0, eta);
    EXPECT_LE(sch.completion, tau_hat(sys, 0, eta))
        << "eta=" << eta << " entry=" << sys.chain.entry_cycles_per_sample;
    // And the bound is not absurdly loose: within one c0 per pipeline stage
    // plus the reconfiguration (sanity of the abstraction).
    EXPECT_GE(sch.completion, sys.streams[0].reconfig + eta);
  }
}

// Negative result the bound's precondition rests on: with single-slot NI
// FIFOs (ni_capacity = 1), head-of-line blocking couples adjacent stages and
// the exact completion EXCEEDS the Eq. 2 bound — which is why tau_hat
// requires the paper's double-buffered NIs.
TEST(AnalysisProperty, SingleSlotNiBreaksEq2Bound) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {6, 6};
  sys.chain.entry_cycles_per_sample = 10;
  sys.chain.exit_cycles_per_sample = 4;
  sys.chain.ni_capacity = 1;
  sys.streams = {{"s", Rational(1, 1000), 0}};
  const std::int64_t eta = 64;
  const BlockSchedule sch = block_schedule(sys, 0, eta);
  // Bound formula with the paper's parameters would be (eta + 3) * 10.
  const Time would_be_bound = (eta + 3) * 10;
  EXPECT_GT(sch.completion, would_be_bound);
  // And the API refuses to hand out the invalid bound.
  EXPECT_THROW((void)tau_hat(sys, 0, eta), precondition_error);
}

// Eq. 2-4 use checked 64-bit arithmetic: parameters describing rounds
// longer than 2^63 cycles must throw instead of silently wrapping into a
// bogus (possibly negative) "bound".
TEST(Analysis, GammaHatNearInt64MaxThrowsInsteadOfWrapping) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {std::numeric_limits<Time>::max() / 4};
  sys.chain.entry_cycles_per_sample = 1;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"huge", Rational(1, 1000), 0},
                 {"huge2", Rational(1, 1000), 0}};
  // (eta + tail) * c0 alone exceeds INT64_MAX for eta >= 4.
  EXPECT_THROW((void)tau_hat(sys, 0, 1000), std::overflow_error);
  EXPECT_THROW((void)gamma_hat(sys, {1000, 1000}), std::overflow_error);
  EXPECT_THROW((void)s_hat(sys, 1, {1000, 1000}), std::overflow_error);

  // Reconfiguration cost near the limit overflows the ADD, not the mul.
  SharedSystemSpec sys2;
  sys2.chain.accel_cycles_per_sample = {1};
  sys2.chain.entry_cycles_per_sample = 1;
  sys2.chain.exit_cycles_per_sample = 1;
  sys2.streams = {{"r", Rational(1, 1000),
                   std::numeric_limits<Time>::max() - 10}};
  EXPECT_THROW((void)tau_hat(sys2, 0, 100), std::overflow_error);

  // Two reconfig costs that each fit but whose SUM wraps (Eq. 4's
  // accumulation) must also throw.
  SharedSystemSpec sys3 = sys2;
  sys3.streams = {{"a", Rational(1, 1000),
                   std::numeric_limits<Time>::max() / 2},
                  {"b", Rational(1, 1000),
                   std::numeric_limits<Time>::max() / 2}};
  EXPECT_NO_THROW((void)tau_hat(sys3, 0, 1));
  EXPECT_THROW((void)gamma_hat(sys3, {1, 1}), std::overflow_error);

  // Sanity: a normal system is unaffected.
  EXPECT_GT(gamma_hat(paper_like_system(), {160, 160, 24, 24}), 0);
}

// Property: schedule entries are consistent — per stage, sample j starts
// after sample j-1 finishes; per sample, stages are causally ordered.
TEST(AnalysisProperty, ScheduleEntriesCausallyOrdered) {
  SplitMix64 rng(0x5c4);
  for (int trial = 0; trial < 50; ++trial) {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {rng.uniform(1, 5)};
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 10);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 5);
    sys.streams = {{"s", Rational(1, 100), rng.uniform(0, 100)}};
    const std::int64_t eta = rng.uniform(1, 40);
    const BlockSchedule sch = block_schedule(sys, 0, eta);
    // entries are emitted grouped by sample then stage.
    const std::size_t stages = 3;
    ASSERT_EQ(sch.entries.size(), stages * static_cast<std::size_t>(eta));
    for (std::int64_t j = 0; j < eta; ++j) {
      for (std::size_t m = 0; m < stages; ++m) {
        const ScheduleEntry& e = sch.entries[j * stages + m];
        EXPECT_EQ(e.index, j);
        if (m > 0) {
          const ScheduleEntry& up = sch.entries[j * stages + m - 1];
          EXPECT_GE(e.start, up.end);
        }
        if (j > 0) {
          const ScheduleEntry& prev = sch.entries[(j - 1) * stages + m];
          EXPECT_GE(e.start, prev.end);
        }
      }
    }
  }
}

}  // namespace
}  // namespace acc::sharing
