#include "sharing/csdf_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/repetition.hpp"
#include "sharing/analysis.hpp"

namespace acc::sharing {
namespace {

SharedSystemSpec small_system(Time entry = 3, Time accel = 2, Time exit = 1,
                              Time reconfig = 10) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {accel};
  sys.chain.entry_cycles_per_sample = entry;
  sys.chain.exit_cycles_per_sample = exit;
  sys.streams = {{"s", Rational(1, 100), reconfig}};
  return sys;
}

CsdfModelOptions ready_input_options(std::int64_t eta) {
  // Producer/consumer with zero cost and exactly one block of buffering:
  // models the paper's Fig. 6 scenario (block ready, pipeline idle).
  CsdfModelOptions o;
  o.eta = eta;
  o.alpha0 = eta;
  o.alpha3 = eta;
  o.producer_period = 0;
  o.consumer_period = 0;
  o.contention = 0;
  return o;
}

TEST(CsdfModel, StructureMatchesFigure5) {
  SharedSystemSpec sys = small_system();
  const CsdfStreamModel m = build_csdf_stream_model(sys, 0, ready_input_options(4));
  // vP, vG0, vA, vG1, vC.
  EXPECT_EQ(m.graph.num_actors(), 5u);
  EXPECT_EQ(m.graph.actor(m.entry).phases(), 4u);
  EXPECT_EQ(m.graph.actor(m.exit).phases(), 4u);
  EXPECT_EQ(m.graph.actor(m.accelerators[0]).phases(), 1u);
  // Entry-gateway phase 0 folds contention + reconfig + epsilon (Eq. 1).
  EXPECT_EQ(m.graph.actor(m.entry).phase_durations[0], 10 + 3);
  EXPECT_EQ(m.graph.actor(m.entry).phase_durations[1], 3);
  // Idle edge carries exactly one initial token.
  EXPECT_EQ(m.graph.edge(m.idle_edge).initial_tokens, 1);
  // Output-space edge starts full (buffer empty).
  EXPECT_EQ(m.graph.edge(m.output_space).initial_tokens, 4);
}

TEST(CsdfModel, ModelIsConsistent) {
  SharedSystemSpec sys = small_system();
  const CsdfStreamModel m = build_csdf_stream_model(sys, 0, ready_input_options(5));
  const df::RepetitionVector rv = df::compute_repetition_vector(m.graph);
  ASSERT_TRUE(rv.consistent);
  // One iteration: producer and consumer fire eta times, gateways one full
  // cycle (eta phases), each accelerator eta times.
  EXPECT_EQ(rv.firings[m.producer], 5);
  EXPECT_EQ(rv.firings[m.consumer], 5);
  EXPECT_EQ(rv.cycles[m.entry], 1);
  EXPECT_EQ(rv.firings[m.entry], 5);
  EXPECT_EQ(rv.firings[m.accelerators[0]], 5);
}

TEST(CsdfModel, RejectsSubBlockBuffers) {
  SharedSystemSpec sys = small_system();
  CsdfModelOptions o = ready_input_options(4);
  o.alpha0 = 3;
  EXPECT_THROW((void)build_csdf_stream_model(sys, 0, o), precondition_error);
  o = ready_input_options(4);
  o.alpha3 = 3;
  EXPECT_THROW((void)build_csdf_stream_model(sys, 0, o), precondition_error);
}

// Key cross-validation: the CSDF model executed self-timed must produce the
// block exactly when the analytic Fig. 6 schedule says (same semantics, two
// independent implementations).
TEST(CsdfModel, ExecutionMatchesAnalyticSchedule) {
  for (const std::int64_t eta : {1, 2, 3, 5, 8, 17}) {
    SharedSystemSpec sys = small_system();
    const CsdfStreamModel m =
        build_csdf_stream_model(sys, 0, ready_input_options(eta));
    df::SelfTimedExecutor exec(m.graph);
    const auto done = exec.run_until_firings(m.exit, eta);
    ASSERT_TRUE(done.has_value()) << "eta=" << eta;
    const BlockSchedule sch = block_schedule(sys, 0, eta);
    EXPECT_EQ(*done, sch.completion) << "eta=" << eta;
  }
}

// Property: over random chains, CSDF execution equals the analytic schedule
// and respects the Eq. 2 bound.
TEST(CsdfModelProperty, ExecutionEqualsScheduleAndRespectsBound) {
  SplitMix64 rng(0xCAB);
  for (int trial = 0; trial < 60; ++trial) {
    SharedSystemSpec sys;
    const int accels = static_cast<int>(rng.uniform(1, 3));
    sys.chain.accel_cycles_per_sample.clear();
    for (int a = 0; a < accels; ++a)
      sys.chain.accel_cycles_per_sample.push_back(rng.uniform(1, 5));
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 10);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 4);
    sys.chain.ni_capacity = 2;
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 50)}};
    const std::int64_t eta = rng.uniform(1, 30);

    const CsdfStreamModel m =
        build_csdf_stream_model(sys, 0, ready_input_options(eta));
    df::SelfTimedExecutor exec(m.graph);
    const auto done = exec.run_until_firings(m.exit, eta);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(*done, block_schedule(sys, 0, eta).completion);
    EXPECT_LE(*done, tau_hat(sys, 0, eta));
  }
}

TEST(CsdfModel, SteadyStateThroughputMeetsConstraintWhenBlocksSolved) {
  // A stream with mu = 1/40 on a slow chain; choose eta via Eq. 5 by hand:
  // gamma(eta) = 10 + (eta + 2) * 3; eta/gamma >= 1/40 -> 37*eta >= 16
  // -> eta = 1. Check the executed CSDF model really sustains 1/40.
  SharedSystemSpec sys = small_system(/*entry=*/3, /*accel=*/2, /*exit=*/1,
                                      /*reconfig=*/10);
  sys.streams[0].mu = Rational(1, 40);
  const std::int64_t eta = 1;
  CsdfModelOptions o;
  o.eta = eta;
  // Give the stream generous buffering and a producer at the sample rate.
  o.alpha0 = 4;
  o.alpha3 = 4;
  o.producer_period = 40;
  o.consumer_period = 40;
  o.contention = 0;
  const CsdfStreamModel m = build_csdf_stream_model(sys, 0, o);
  df::SelfTimedExecutor exec(m.graph);
  const df::ThroughputResult r = exec.analyze_throughput(m.consumer);
  ASSERT_FALSE(r.deadlocked);
  EXPECT_GE(r.throughput, Rational(1, 40));
}

TEST(CsdfModel, ContentionDelaysFirstPhaseOnly) {
  SharedSystemSpec sys = small_system();
  CsdfModelOptions o = ready_input_options(3);
  o.contention = 1000;
  const CsdfStreamModel m = build_csdf_stream_model(sys, 0, o);
  EXPECT_EQ(m.graph.actor(m.entry).phase_durations[0], 1000 + 10 + 3);
  EXPECT_EQ(m.graph.actor(m.entry).phase_durations[1], 3);
  df::SelfTimedExecutor exec(m.graph);
  const auto done = exec.run_until_firings(m.exit, 3);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 1000 + block_schedule(sys, 0, 3).completion);
}

}  // namespace
}  // namespace acc::sharing
