#include "sharing/parametric.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace acc::sharing {
namespace {

SharedSystemSpec paper_chain() {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 1000), 4100}};
  return sys;
}

TEST(Parametric, DerivesEquation2Structure) {
  const SharedSystemSpec sys = paper_chain();
  const ParametricCompletion p = parametric_block_completion(sys, 0);
  // The derived slope IS the bottleneck per-sample cost c0 of Eq. 2.
  EXPECT_EQ(p.slope(), bottleneck_cycles_per_sample(sys.chain));
  // And the derived intercept stays below Eq. 2's conservative constant
  // R + (tail)*c0.
  EXPECT_LE(p.intercept(),
            sys.streams[0].reconfig +
                pipeline_tail(sys.chain) *
                    bottleneck_cycles_per_sample(sys.chain));
  EXPECT_GE(p.intercept(), sys.streams[0].reconfig);
}

TEST(Parametric, EvalExactForSmallAndLargeEta) {
  const SharedSystemSpec sys = paper_chain();
  const ParametricCompletion p = parametric_block_completion(sys, 0);
  for (const std::int64_t eta : {1, 2, 3, 5, 17, 100, 10136, 1000000}) {
    if (eta <= 20000) {
      EXPECT_EQ(p.eval(eta), block_schedule(sys, 0, eta).completion)
          << "eta=" << eta;
    } else {
      // Too large to enumerate a schedule — affine law applies.
      EXPECT_EQ(p.eval(eta), p.slope() * eta + p.intercept());
    }
  }
}

TEST(Parametric, RejectsBadEta) {
  const ParametricCompletion p = parametric_block_completion(paper_chain(), 0);
  EXPECT_THROW((void)p.eval(0), precondition_error);
}

// Property: on random chains the derived slope equals c0 and eval matches
// the schedule everywhere sampled.
TEST(ParametricProperty, SlopeIsAlwaysBottleneckCost) {
  SplitMix64 rng(0xAF1E);
  for (int trial = 0; trial < 60; ++trial) {
    SharedSystemSpec sys;
    const int accels = static_cast<int>(rng.uniform(1, 3));
    sys.chain.accel_cycles_per_sample.clear();
    for (int a = 0; a < accels; ++a)
      sys.chain.accel_cycles_per_sample.push_back(rng.uniform(1, 7));
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 16);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 4);
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 300)}};
    const ParametricCompletion p = parametric_block_completion(sys, 0);
    EXPECT_EQ(p.slope(), bottleneck_cycles_per_sample(sys.chain))
        << "trial " << trial;
    for (int probe = 0; probe < 8; ++probe) {
      const std::int64_t eta = rng.uniform(1, 300);
      EXPECT_EQ(p.eval(eta), block_schedule(sys, 0, eta).completion)
          << "trial " << trial << " eta=" << eta;
    }
    // Eq. 2 remains an upper bound on the derived exact law.
    for (const std::int64_t eta : {1L, 10L, 1000L})
      EXPECT_LE(p.eval(eta), tau_hat(sys, 0, eta));
  }
}

}  // namespace
}  // namespace acc::sharing
