// ISSUE 2 satellite 4: golden-schema tests for the machine-readable bench
// documents. The benches write BENCH_dse.json / BENCH_faults.json; these
// tests pin the exact shape by validating docs produced by the very code
// the benches call, plus negative cases for each failure class the
// validator reports (missing key, wrong type, wrong bench id).
#include "common/bench_schema.hpp"

#include <gtest/gtest.h>

#include "app/admission_churn.hpp"
#include "app/fault_campaign.hpp"
#include "app/sim_bench.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sharing/bench_doc.hpp"

namespace acc {
namespace {

json::Value small_dse_doc() {
  json::Array runs;
  runs.push_back(
      json::Value(sharing::dse_run(sharing::DseWorkload::small(), 1)));
  return sharing::dse_bench_doc(std::move(runs));
}

json::Value small_faults_doc() {
  app::FaultCampaignConfig cfg;
  cfg.levels = {{"baseline", 0.0, false}};
  const app::FaultCampaignResult res = app::run_fault_campaign(cfg);
  return app::faults_bench_doc(cfg, res);
}

TEST(BenchSchema, DseDocFromBenchCodeValidates) {
  const std::vector<std::string> problems = validate_bench_dse(small_dse_doc());
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(BenchSchema, FaultsDocFromBenchCodeValidates) {
  const std::vector<std::string> problems =
      validate_bench_faults(small_faults_doc());
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(BenchSchema, DetectsMissingKey) {
  json::Value doc = small_dse_doc();
  doc.as_object().erase("hardware_threads");
  const std::vector<std::string> problems = validate_bench_dse(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("hardware_threads"), std::string::npos);
}

TEST(BenchSchema, DetectsWrongType) {
  json::Value doc = small_dse_doc();
  doc.as_object()["runs"].as_array()[0].as_object()["simulations"] = "many";
  EXPECT_FALSE(validate_bench_dse(doc).empty());
}

TEST(BenchSchema, DetectsWrongBenchId) {
  json::Value faults = small_faults_doc();
  // A faults doc is not a DSE doc and vice versa.
  EXPECT_FALSE(validate_bench_dse(faults).empty());
  json::Value dse = small_dse_doc();
  EXPECT_FALSE(validate_bench_faults(dse).empty());
}

TEST(BenchSchema, DetectsMissingPointKeyInFaultsDoc) {
  json::Value doc = small_faults_doc();
  doc.as_object()["points"].as_array()[0].as_object().erase(
      "genuine_breaches");
  const std::vector<std::string> problems = validate_bench_faults(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("genuine_breaches"), std::string::npos);
}

TEST(BenchSchema, DetectsEmptyRuns) {
  json::Value doc = sharing::dse_bench_doc(json::Array{});
  EXPECT_FALSE(validate_bench_dse(doc).empty());
}

// --- BENCH_sim.json (ISSUE 3: simulator perf trajectory) ----------------

json::Value small_sim_doc() {
  app::PalSimConfig pal = app::sim_bench_pal_config(/*fast=*/true);
  pal.input_samples = 1 << 10;  // test-size, even smaller than --sim-fast
  const app::SimBenchRun dense =
      app::sim_bench_run(pal, sim::StepperKind::kDense);
  const app::SimBenchRun event =
      app::sim_bench_run(pal, sim::StepperKind::kGlobalHorizon);
  const app::SimBenchRun wake =
      app::sim_bench_run(pal, sim::StepperKind::kWakeList);
  return app::sim_bench_doc(pal, dense, event, wake);
}

TEST(BenchSchema, SimDocFromBenchCodeValidates) {
  const std::vector<std::string> problems = validate_bench_sim(small_sim_doc());
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(BenchSchema, SimDocDetectsMissingRunKey) {
  json::Value doc = small_sim_doc();
  doc.as_object()["runs"].as_array()[1].as_object().erase("skipped_cycles");
  const std::vector<std::string> problems = validate_bench_sim(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("skipped_cycles"), std::string::npos);
}

TEST(BenchSchema, SimDocDetectsMissingWakeCounters) {
  // The wake-list instrumentation (ISSUE 6 satellite) and the batched data
  // plane counters (ISSUE 8) are part of the golden schema: dropping any of
  // them is a breach.
  for (const char* key : {"component_ticks", "horizon_queries", "wakes",
                          "batch_runs", "batch_tokens"}) {
    json::Value doc = small_sim_doc();
    doc.as_object()["runs"].as_array()[1].as_object().erase(key);
    const std::vector<std::string> problems = validate_bench_sim(doc);
    ASSERT_FALSE(problems.empty()) << key;
    EXPECT_NE(problems.front().find(key), std::string::npos);
  }
}

TEST(BenchSchema, SimDocDetectsWrongWakeCounterType) {
  json::Value doc = small_sim_doc();
  doc.as_object()["runs"].as_array()[1].as_object()["wakes"] = "lots";
  EXPECT_FALSE(validate_bench_sim(doc).empty());
}

TEST(BenchSchema, SimDocDetectsWrongMode) {
  json::Value doc = small_sim_doc();
  doc.as_object()["runs"].as_array()[0].as_object()["mode"] = "sparse";
  EXPECT_FALSE(validate_bench_sim(doc).empty());
}

TEST(BenchSchema, SimDocDetectsDivergence) {
  // A doc recording a dense/event divergence is malformed by definition:
  // the steppers are contractually cycle-exact.
  json::Value doc = small_sim_doc();
  doc.as_object()["equivalent"] = false;
  const std::vector<std::string> problems = validate_bench_sim(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("equivalent"), std::string::npos);
}

TEST(BenchSchema, SimDocAcceptsNullRates) {
  // A --sim-fast run can complete below the wall clock's resolution; the
  // rate fields are then null rather than 0 or inf (ISSUE 8 satellite).
  json::Value doc = small_sim_doc();
  doc.as_object()["runs"].as_array()[2].as_object()["cycles_per_sec"] =
      nullptr;
  doc.as_object()["speedup"] = nullptr;
  const std::vector<std::string> problems = validate_bench_sim(doc);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(BenchSchema, SimDocRejectsNullOutsideRateFields) {
  // null is only legal where a clock can legitimately round to zero; the
  // raw measurements themselves must stay numbers.
  json::Value doc = small_sim_doc();
  doc.as_object()["runs"].as_array()[0].as_object()["wall_ms"] = nullptr;
  EXPECT_FALSE(validate_bench_sim(doc).empty());
  json::Value doc2 = small_sim_doc();
  doc2.as_object()["runs"].as_array()[1].as_object()["batch_runs"] = nullptr;
  EXPECT_FALSE(validate_bench_sim(doc2).empty());
}

TEST(BenchSchema, SimDocDetectsWrongRunCount) {
  json::Value doc = small_sim_doc();
  doc.as_object()["runs"].as_array().pop_back();
  EXPECT_FALSE(validate_bench_sim(doc).empty());
}

TEST(BenchSchema, SimDocDetectsWrongBenchId) {
  json::Value doc = small_sim_doc();
  EXPECT_FALSE(validate_bench_dse(doc).empty());
  EXPECT_FALSE(validate_bench_sim(small_dse_doc()).empty());
}

// --- BENCH_admission.json (ISSUE 10: dynamic control plane) -------------

json::Value small_admission_doc() {
  app::ChurnConfig cfg = app::small_churn_config();
  cfg.workload.events = 24;  // test-size trace, still joins AND leaves
  return app::admission_bench_doc(cfg, app::run_churn_campaign(cfg));
}

TEST(BenchSchema, AdmissionDocFromBenchCodeValidates) {
  const std::vector<std::string> problems =
      validate_bench_admission(small_admission_doc());
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(BenchSchema, AdmissionDocDetectsMissingTopLevelKey) {
  for (const char* key : {"seed", "events", "chain", "templates", "decisions",
                          "steppers", "summary", "equivalent"}) {
    json::Value doc = small_admission_doc();
    doc.as_object().erase(key);
    const std::vector<std::string> problems = validate_bench_admission(doc);
    ASSERT_FALSE(problems.empty()) << key;
    EXPECT_NE(problems.front().find(key), std::string::npos) << key;
  }
}

TEST(BenchSchema, AdmissionDocDetectsMissingDecisionKey) {
  for (const char* key : {"kind", "accepted", "cache_hit", "reason", "eta",
                          "analysis_work", "reconfig_cycles"}) {
    json::Value doc = small_admission_doc();
    doc.as_object()["decisions"].as_array()[0].as_object().erase(key);
    ASSERT_FALSE(validate_bench_admission(doc).empty()) << key;
  }
}

TEST(BenchSchema, AdmissionDocDetectsWrongStepperRows) {
  // Exactly three rows, in dense / global-horizon / wake-list order, with
  // the digest and audio checksum serialized as strings (uint64-safe).
  json::Value doc = small_admission_doc();
  doc.as_object()["steppers"].as_array().pop_back();
  EXPECT_FALSE(validate_bench_admission(doc).empty());

  json::Value doc2 = small_admission_doc();
  doc2.as_object()["steppers"].as_array()[0].as_object()["stepper"] =
      "wake-list";
  EXPECT_FALSE(validate_bench_admission(doc2).empty());

  json::Value doc3 = small_admission_doc();
  doc3.as_object()["steppers"].as_array()[1].as_object()["digest"] = 7;
  EXPECT_FALSE(validate_bench_admission(doc3).empty());
}

TEST(BenchSchema, AdmissionDocDetectsDivergence) {
  // A doc recording a stepper divergence is malformed by definition, same
  // contract as BENCH_sim.json.
  json::Value doc = small_admission_doc();
  doc.as_object()["equivalent"] = false;
  const std::vector<std::string> problems = validate_bench_admission(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("equivalent"), std::string::npos);
}

TEST(BenchSchema, AdmissionDocDetectsInconsistentSummary) {
  // accepted + rejected must equal joins: every join is decided once.
  json::Value doc = small_admission_doc();
  json::Object& summary = doc.as_object()["summary"].as_object();
  summary["accepted"] = summary["accepted"].as_int() + 1;
  const std::vector<std::string> problems = validate_bench_admission(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("joins"), std::string::npos);
}

TEST(BenchSchema, AdmissionDocDetectsWrongBenchId) {
  EXPECT_FALSE(validate_bench_admission(small_sim_doc()).empty());
  EXPECT_FALSE(validate_bench_sim(small_admission_doc()).empty());
}

// --- RunReport (ISSUE 7: observability) ---------------------------------

json::Value small_run_report() {
  obs::MetricsRegistry metrics;
  metrics.counter("x.total").add(3);
  obs::RunReportInput in;
  in.workload = "unit";
  in.params["input_samples"] = 1024;
  in.verdict["source_drops"] = 0;
  in.cycles_run = 5000;
  in.stepper = "wake-list";
  obs::RunReportStream s;
  s.id = 0;
  s.name = "s0";
  s.eta = 16;
  s.blocks = 4;
  s.service_observed = 120;
  s.service_bound = 200;
  s.spacing_observed = -1;  // exercises the placeholder margin arm
  s.spacing_bound = 300;
  in.streams.push_back(s);
  return obs::run_report_doc(in, metrics, /*trace=*/nullptr);
}

TEST(BenchSchema, RunReportFromBuilderValidates) {
  const std::vector<std::string> problems =
      validate_run_report(small_run_report());
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(BenchSchema, RunReportDetectsMissingTopLevelKey) {
  for (const char* key : {"version", "workload", "streams", "admissions",
                          "metrics", "trace", "verdict", "cycles_run"}) {
    json::Value doc = small_run_report();
    doc.as_object().erase(key);
    const std::vector<std::string> problems = validate_run_report(doc);
    ASSERT_FALSE(problems.empty()) << key;
    EXPECT_NE(problems.front().find(key), std::string::npos) << key;
  }
}

TEST(BenchSchema, RunReportDetectsWrongReportId) {
  json::Value doc = small_run_report();
  doc.as_object()["report"] = "sprint";
  EXPECT_FALSE(validate_run_report(doc).empty());
  // And a bench doc is not a run report at all.
  EXPECT_FALSE(validate_run_report(small_sim_doc()).empty());
}

TEST(BenchSchema, RunReportDetectsUnknownStepper) {
  json::Value doc = small_run_report();
  doc.as_object()["stepper"] = "warp-drive";
  const std::vector<std::string> problems = validate_run_report(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("stepper"), std::string::npos);
}

TEST(BenchSchema, RunReportDetectsEmptyStreams) {
  json::Value doc = small_run_report();
  doc.as_object()["streams"].as_array().clear();
  EXPECT_FALSE(validate_run_report(doc).empty());
}

TEST(BenchSchema, RunReportDetectsMissingStreamKey) {
  for (const char* key : {"id", "stream", "eta", "blocks", "service",
                          "spacing"}) {
    json::Value doc = small_run_report();
    doc.as_object()["streams"].as_array()[0].as_object().erase(key);
    ASSERT_FALSE(validate_run_report(doc).empty()) << key;
  }
}

TEST(BenchSchema, RunReportDetectsBrokenMarginArithmetic) {
  // margin must equal bound - observed (or the full bound when nothing was
  // observed). A drifting producer is a schema breach, not a style issue.
  json::Value doc = small_run_report();
  doc.as_object()["streams"].as_array()[0].as_object()["service"]
      .as_object()["margin"] = 79;  // correct value is 200 - 120 = 80
  const std::vector<std::string> problems = validate_run_report(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("margin"), std::string::npos);

  json::Value doc2 = small_run_report();
  // Placeholder arm: observed = -1 must carry margin == bound.
  doc2.as_object()["streams"].as_array()[0].as_object()["spacing"]
      .as_object()["margin"] = 0;
  EXPECT_FALSE(validate_run_report(doc2).empty());
}

TEST(BenchSchema, RunReportDetectsWrongTraceShape) {
  json::Value doc = small_run_report();
  doc.as_object()["trace"].as_object()["truncated"] = 1;  // bool, not int
  EXPECT_FALSE(validate_run_report(doc).empty());
}

}  // namespace
}  // namespace acc
