#include "sharing/maxplus_schedule.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sharing/analysis.hpp"
#include "sharing/parametric.hpp"

namespace acc::sharing {
namespace {

SharedSystemSpec paper_chain() {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 1000), 4100}};
  return sys;
}

TEST(MaxPlusSchedule, CompletionMatchesClosedFormSchedule) {
  const SharedSystemSpec sys = paper_chain();
  const MaxPlusChain mc = build_maxplus_chain(sys, 0);
  for (const std::int64_t eta : {1, 2, 3, 7, 32, 200}) {
    EXPECT_EQ(mc.completion(eta), block_schedule(sys, 0, eta).completion)
        << "eta=" << eta;
  }
}

TEST(MaxPlusSchedule, EigenvalueIsBottleneckCost) {
  const SharedSystemSpec sys = paper_chain();
  const MaxPlusChain mc = build_maxplus_chain(sys, 0);
  const auto ev = mc.eigenvalue();
  ASSERT_TRUE(ev.has_value());
  // Eq. 2's per-sample slope c0, now as a spectral property of the step
  // matrix.
  EXPECT_EQ(*ev, Rational(bottleneck_cycles_per_sample(sys.chain)));
}

TEST(MaxPlusSchedule, CyclicityProvesTheAffineLaw) {
  const SharedSystemSpec sys = paper_chain();
  const MaxPlusChain mc = build_maxplus_chain(sys, 0);
  const auto cy = mc.cyclicity();
  ASSERT_TRUE(cy.has_value());
  // The empirical law from parametric_block_completion must agree with the
  // algebraic one: growth per period == slope.
  const ParametricCompletion law = parametric_block_completion(sys, 0);
  EXPECT_EQ(Rational(cy->growth, cy->period), Rational(law.slope()));
  // And beyond the transient, completion grows by exactly `growth` every
  // `period` samples.
  const std::int64_t base = cy->transient + 4;
  EXPECT_EQ(mc.completion(base + cy->period),
            mc.completion(base) + cy->growth);
}

// Property: on random chains the max-plus model, the closed-form schedule
// and the empirical parameterization agree exactly.
TEST(MaxPlusScheduleProperty, ThreeModelsAgree) {
  SplitMix64 rng(0x3CA1E);
  for (int trial = 0; trial < 40; ++trial) {
    SharedSystemSpec sys;
    const int accels = static_cast<int>(rng.uniform(1, 3));
    sys.chain.accel_cycles_per_sample.clear();
    for (int a = 0; a < accels; ++a)
      sys.chain.accel_cycles_per_sample.push_back(rng.uniform(1, 6));
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 12);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 4);
    sys.chain.ni_capacity = rng.uniform(2, 4);
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 200)}};

    const MaxPlusChain mc = build_maxplus_chain(sys, 0);
    for (int probe = 0; probe < 6; ++probe) {
      const std::int64_t eta = rng.uniform(1, 120);
      EXPECT_EQ(mc.completion(eta), block_schedule(sys, 0, eta).completion)
          << "trial " << trial << " eta=" << eta;
    }
    const auto ev = mc.eigenvalue();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, Rational(bottleneck_cycles_per_sample(sys.chain)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace acc::sharing
