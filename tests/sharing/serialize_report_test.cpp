#include <gtest/gtest.h>

#include "sharing/report.hpp"
#include "sharing/serialize.hpp"

namespace acc::sharing {
namespace {

SharedSystemSpec small_system() {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 2};
  sys.chain.entry_cycles_per_sample = 3;
  sys.chain.exit_cycles_per_sample = 1;
  sys.chain.ni_capacity = 2;
  sys.streams = {{"a", Rational(1, 20), 50}, {"b", Rational(1, 32), 40}};
  return sys;
}

TEST(SpecSerialize, RoundTrip) {
  const SharedSystemSpec sys = small_system();
  const SharedSystemSpec copy = spec_from_string(spec_to_string(sys));
  EXPECT_EQ(copy.chain.accel_cycles_per_sample,
            sys.chain.accel_cycles_per_sample);
  EXPECT_EQ(copy.chain.entry_cycles_per_sample,
            sys.chain.entry_cycles_per_sample);
  EXPECT_EQ(copy.chain.exit_cycles_per_sample,
            sys.chain.exit_cycles_per_sample);
  EXPECT_EQ(copy.chain.ni_capacity, sys.chain.ni_capacity);
  ASSERT_EQ(copy.streams.size(), sys.streams.size());
  for (std::size_t s = 0; s < sys.streams.size(); ++s) {
    EXPECT_EQ(copy.streams[s].name, sys.streams[s].name);
    EXPECT_EQ(copy.streams[s].mu, sys.streams[s].mu);
    EXPECT_EQ(copy.streams[s].reconfig, sys.streams[s].reconfig);
  }
}

TEST(SpecSerialize, DefaultsAndValidation) {
  // ni_capacity is optional.
  const SharedSystemSpec sys = spec_from_string(R"({
    "chain": {"accelerators": [1], "entry": 2, "exit": 1},
    "streams": [{"name": "s", "mu_num": 1, "mu_den": 10, "reconfig": 5}]
  })");
  EXPECT_EQ(sys.chain.ni_capacity, 2);
  // Malformed specs rejected.
  EXPECT_THROW((void)spec_from_string("{}"), precondition_error);
  EXPECT_THROW((void)spec_from_string(R"({
    "chain": {"accelerators": [], "entry": 2, "exit": 1},
    "streams": [{"name": "s", "mu_num": 1, "mu_den": 10, "reconfig": 5}]
  })"),
               precondition_error);
  EXPECT_THROW((void)spec_from_string(R"({
    "chain": {"accelerators": [1], "entry": 2, "exit": 1},
    "streams": []
  })"),
               precondition_error);
}

TEST(Report, AnalyzesSchedulableSystem) {
  const SystemReport rep = analyze_system(small_system());
  ASSERT_TRUE(rep.schedulable);
  EXPECT_TRUE(rep.solvers_agree);
  EXPECT_LT(rep.utilization, Rational(1));
  ASSERT_EQ(rep.streams.size(), 2u);
  for (const StreamReport& s : rep.streams) {
    EXPECT_GE(s.guaranteed_rate, s.mu);
    EXPECT_GT(s.eta, 0);
    ASSERT_TRUE(s.buffers.has_value());
    EXPECT_TRUE(s.buffers->feasible);
    EXPECT_GE(s.buffers->alpha0, s.eta);
  }
  // The derived law slope is the bottleneck cost.
  EXPECT_EQ(rep.law_slope, 3);
}

TEST(Report, FlagsUnschedulableSystem) {
  SharedSystemSpec sys = small_system();
  sys.streams[0].mu = Rational(1, 3);  // utilization 3*(1/3 + 1/32) > 1
  const SystemReport rep = analyze_system(sys);
  EXPECT_FALSE(rep.schedulable);
  const std::string md = rep.to_markdown(sys);
  EXPECT_NE(md.find("NOT SCHEDULABLE"), std::string::npos);
}

TEST(Report, MarkdownContainsKeyNumbers) {
  const SharedSystemSpec sys = small_system();
  const SystemReport rep = analyze_system(sys);
  const std::string md = rep.to_markdown(sys);
  EXPECT_NE(md.find("# Shared-accelerator design report"), std::string::npos);
  EXPECT_NE(md.find("gamma_hat"), std::string::npos);
  EXPECT_NE(md.find("tau(eta) = 3*eta"), std::string::npos);
  for (const StreamReport& s : rep.streams)
    EXPECT_NE(md.find(s.name), std::string::npos);
}

TEST(Report, BufferSizingCanBeSkipped) {
  ReportOptions opt;
  opt.size_buffers = false;
  const SystemReport rep = analyze_system(small_system(), opt);
  ASSERT_TRUE(rep.schedulable);
  for (const StreamReport& s : rep.streams)
    EXPECT_FALSE(s.buffers.has_value());
}

}  // namespace
}  // namespace acc::sharing
