// Parameterized sweeps (TEST_P) over the architecture's parameter space:
// every combination must satisfy the model-equality and bound invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "dataflow/executor.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/csdf_model.hpp"

namespace acc::sharing {
namespace {

// ---- sweep 1: (epsilon, rho_A, reconfig, eta) grid -------------------

using ChainParams = std::tuple<Time, Time, Time, std::int64_t>;

class ChainSweep : public ::testing::TestWithParam<ChainParams> {};

TEST_P(ChainSweep, CsdfExecutionEqualsAnalyticScheduleAndRespectsBound) {
  const auto [epsilon, rho, reconfig, eta] = GetParam();
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {rho};
  sys.chain.entry_cycles_per_sample = epsilon;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 1000), reconfig}};

  const BlockSchedule sch = block_schedule(sys, 0, eta);
  EXPECT_LE(sch.completion, tau_hat(sys, 0, eta));

  CsdfModelOptions o;
  o.eta = eta;
  o.alpha0 = eta;
  o.alpha3 = eta;
  o.producer_period = 0;
  o.consumer_period = 0;
  CsdfStreamModel m = build_csdf_stream_model(sys, 0, o);
  df::SelfTimedExecutor exec(m.graph);
  const auto done = exec.run_until_firings(m.exit, eta);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, sch.completion);
}

INSTANTIATE_TEST_SUITE_P(
    GridEpsRhoRetaEta, ChainSweep,
    ::testing::Combine(::testing::Values<Time>(1, 2, 15),      // epsilon
                       ::testing::Values<Time>(1, 3, 20),      // rho_A
                       ::testing::Values<Time>(0, 100, 4100),  // R_s
                       ::testing::Values<std::int64_t>(1, 7, 64)),  // eta
    [](const ::testing::TestParamInfo<ChainParams>& info) {
      return "eps" + std::to_string(std::get<0>(info.param)) + "_rho" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param)) + "_eta" +
             std::to_string(std::get<3>(info.param));
    });

// ---- sweep 2: stream-count x rate-spread grid for Algorithm 1 --------

using SolverParams = std::tuple<int, std::int64_t>;

class SolverSweep : public ::testing::TestWithParam<SolverParams> {};

TEST_P(SolverSweep, IlpAndFixpointAgreeAndAreMinimal) {
  const auto [num_streams, base_period] = GetParam();
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 5;
  sys.chain.exit_cycles_per_sample = 1;
  for (int s = 0; s < num_streams; ++s) {
    // Geometric rate spread: stream s twice as slow as s-1.
    sys.streams.push_back({"s" + std::to_string(s),
                           Rational(1, base_period << s), 500});
  }
  if (utilization(sys) >= Rational(1)) {
    EXPECT_FALSE(solve_block_sizes_fixpoint(sys).feasible);
    EXPECT_FALSE(solve_block_sizes_ilp(sys).feasible);
    return;
  }
  const BlockSizeResult fix = solve_block_sizes_fixpoint(sys);
  const BlockSizeResult ilp = solve_block_sizes_ilp(sys);
  ASSERT_TRUE(fix.feasible);
  ASSERT_TRUE(ilp.feasible);
  EXPECT_EQ(fix.eta, ilp.eta);
  EXPECT_TRUE(throughput_met(sys, fix.eta));
  for (std::size_t s = 0; s < fix.eta.size(); ++s) {
    if (fix.eta[s] <= 1) continue;
    std::vector<std::int64_t> dec = fix.eta;
    dec[s] -= 1;
    EXPECT_FALSE(throughput_met(sys, dec)) << "stream " << s;
  }
  // The real relaxation lower-bounds every component.
  const std::vector<Rational> relax = block_size_real_relaxation(sys);
  for (std::size_t s = 0; s < fix.eta.size(); ++s)
    EXPECT_GE(Rational(fix.eta[s]), relax[s]);
}

INSTANTIATE_TEST_SUITE_P(
    GridStreamsPeriod, SolverSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                       ::testing::Values<std::int64_t>(12, 40, 160)),
    [](const ::testing::TestParamInfo<SolverParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---- sweep 3: buffer feasibility across periods and chunks -----------

using BufferParams = std::tuple<Time, std::int64_t>;

class BufferSweepP : public ::testing::TestWithParam<BufferParams> {};

TEST_P(BufferSweepP, MinimumBuffersAreExactAndHoldABlock) {
  const auto [period, chunk] = GetParam();
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, period), 10}};
  const BlockSizeResult fix = solve_block_sizes_fixpoint(sys);
  ASSERT_TRUE(fix.feasible);
  const StreamBufferResult buf =
      min_buffers_for_stream(sys, 0, fix.eta, period, chunk);
  ASSERT_TRUE(buf.feasible) << "eta=" << fix.eta[0];
  EXPECT_GE(buf.alpha0, fix.eta[0]);
  EXPECT_GE(buf.alpha3, std::max(fix.eta[0], chunk));
}

INSTANTIATE_TEST_SUITE_P(
    GridPeriodChunk, BufferSweepP,
    ::testing::Combine(::testing::Values<Time>(6, 8, 12),
                       ::testing::Values<std::int64_t>(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<BufferParams>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace acc::sharing
