#include "sharing/conformance.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "accel/kernel.hpp"
#include "sharing/analysis.hpp"
#include "sim/chain_builder.hpp"
#include "sim/proc_tile.hpp"

namespace acc::sharing {
namespace {

class Pass final : public accel::StreamKernel {
 public:
  void push(CQ16 s, std::vector<CQ16>& o) override { o.push_back(s); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "p"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Pass>();
  }
};

std::vector<std::unique_ptr<accel::StreamKernel>> one_pass() {
  std::vector<std::unique_ptr<accel::StreamKernel>> v;
  v.push_back(std::make_unique<Pass>());
  return v;
}

/// A live two-stream system whose trace must conform to its own model.
TEST(Conformance, LiveSystemTraceConforms) {
  SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = 2;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"s0", Rational(1, 16), 20}, {"s1", Rational(1, 16), 20}};
  const std::vector<std::int64_t> etas{16, 16};

  sim::System sys(4);
  sim::ChainConfig cfg;
  cfg.accel_cycles = {1};
  cfg.epsilon = 2;
  sim::GatewayChain chain = sim::build_gateway_chain(sys, cfg);
  sim::TraceLog trace;
  chain.entry->set_trace(&trace);

  sim::CFifo& in0 = sys.add_fifo("in0", 64);
  sim::CFifo& in1 = sys.add_fifo("in1", 64);
  sim::CFifo& out0 = sys.add_fifo("out0", 1024, 0, 0);
  sim::CFifo& out1 = sys.add_fifo("out1", 1024, 0, 0);
  chain.add_stream({0, "s0", 16, 16, &in0, &out0, 20}, one_pass());
  chain.add_stream({1, "s1", 16, 16, &in1, &out1, 20}, one_pass());
  std::vector<sim::Flit> payload(128);
  std::iota(payload.begin(), payload.end(), sim::Flit{1});
  sys.add<sim::SourceTile>("src0", in0, payload, 16);
  sys.add<sim::SourceTile>("src1", in1, payload, 16);
  sys.run(128 * 16 + 4000);

  const ConformanceReport rep = check_conformance(spec, etas, trace);
  EXPECT_TRUE(rep.conforms);
  EXPECT_GE(rep.blocks_checked, 14);
  EXPECT_TRUE(rep.violations.empty());
}

TEST(Conformance, DetectsServiceTimeViolation) {
  SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = 2;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"s0", Rational(1, 16), 20}};
  // Hand-crafted trace: the block takes far longer than tau_hat.
  sim::TraceLog trace;
  trace.record(0, "gw", "admit", 0);
  trace.record(100000, "gw", "block.done", 0);
  const ConformanceReport rep = check_conformance(spec, {16}, trace);
  EXPECT_FALSE(rep.conforms);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "tau_hat");
}

TEST(Conformance, DetectsOrphanCompletion) {
  SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = 2;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"s0", Rational(1, 16), 20}};
  sim::TraceLog trace;
  trace.record(50, "gw", "block.done", 0);  // no admit
  const ConformanceReport rep = check_conformance(spec, {16}, trace);
  EXPECT_FALSE(rep.conforms);
}

TEST(Conformance, DetectsRoundRobinViolation) {
  SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = 2;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"s0", Rational(1, 32), 20}, {"s1", Rational(1, 32), 20}};
  sim::TraceLog trace;
  // Stream 1 served twice between services of stream 0.
  trace.record(0, "gw", "admit", 0);
  trace.record(60, "gw", "block.done", 0);
  trace.record(61, "gw", "admit", 1);
  trace.record(120, "gw", "block.done", 1);
  trace.record(121, "gw", "admit", 1);
  trace.record(180, "gw", "block.done", 1);
  trace.record(181, "gw", "admit", 0);
  const ConformanceReport rep = check_conformance(spec, {8, 8}, trace);
  EXPECT_FALSE(rep.conforms);
  bool found = false;
  for (const auto& v : rep.violations) found |= v.rule == "round_robin";
  EXPECT_TRUE(found);
}

// --- Covered-by-slack vs genuine-breach classification ------------------

SharedSystemSpec one_stream_spec() {
  SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = 2;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"s0", Rational(1, 16), 20}};
  return spec;
}

TEST(ConformanceClassification, ExcessWithinFaultSlackIsCovered) {
  const SharedSystemSpec spec = one_stream_spec();
  const Time bound = tau_hat(spec, 0, 16);
  ConformanceOptions opts;
  opts.slack = 16;
  opts.fault_slack = 100;
  sim::TraceLog trace;
  trace.record(0, "gw", "admit", 0);
  trace.record(bound + opts.slack + 40, "gw", "block.done", 0);  // excess 40
  const ConformanceReport rep = check_conformance(spec, {16}, trace, opts);
  // Still a violation of the zero-fault model...
  EXPECT_FALSE(rep.conforms);
  ASSERT_EQ(rep.violations.size(), 1u);
  // ...but the declared fault envelope explains it.
  EXPECT_TRUE(rep.violations[0].covered_by_slack);
  EXPECT_EQ(rep.violations[0].excess, 40);
  EXPECT_EQ(rep.covered_by_slack, 1);
  EXPECT_EQ(rep.genuine_breaches, 0);
  EXPECT_EQ(rep.max_excess, 40);
}

TEST(ConformanceClassification, ExcessBeyondFaultSlackIsGenuine) {
  const SharedSystemSpec spec = one_stream_spec();
  const Time bound = tau_hat(spec, 0, 16);
  ConformanceOptions opts;
  opts.slack = 16;
  opts.fault_slack = 100;
  sim::TraceLog trace;
  trace.record(0, "gw", "admit", 0);
  trace.record(bound + opts.slack + 101, "gw", "block.done", 0);
  const ConformanceReport rep = check_conformance(spec, {16}, trace, opts);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_FALSE(rep.violations[0].covered_by_slack);
  EXPECT_EQ(rep.covered_by_slack, 0);
  EXPECT_EQ(rep.genuine_breaches, 1);
}

TEST(ConformanceClassification, OrphanCompletionIsAlwaysGenuine) {
  const SharedSystemSpec spec = one_stream_spec();
  ConformanceOptions opts;
  opts.fault_slack = 1 << 20;  // no envelope excuses a phantom block
  sim::TraceLog trace;
  trace.record(50, "gw", "block.done", 0);
  const ConformanceReport rep = check_conformance(spec, {16}, trace, opts);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_FALSE(rep.violations[0].covered_by_slack);
  EXPECT_EQ(rep.genuine_breaches, 1);
}

TEST(ConformanceClassification, LegacyOverloadMeansZeroFaultSlack) {
  const SharedSystemSpec spec = one_stream_spec();
  const Time bound = tau_hat(spec, 0, 16);
  sim::TraceLog trace;
  trace.record(0, "gw", "admit", 0);
  trace.record(bound + 16 + 40, "gw", "block.done", 0);
  // Legacy call site: every violation counts as genuine.
  const ConformanceReport rep = check_conformance(spec, {16}, trace, 16);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_FALSE(rep.violations[0].covered_by_slack);
  EXPECT_EQ(rep.genuine_breaches, 1);
  EXPECT_EQ(rep.covered_by_slack, 0);
}

}  // namespace
}  // namespace acc::sharing
