#include "sharing/nonmonotone.hpp"

#include <gtest/gtest.h>

namespace acc::sharing {
namespace {

std::vector<std::int64_t> caps_of(const std::vector<BufferSweepPoint>& pts) {
  std::vector<std::int64_t> caps;
  for (const BufferSweepPoint& p : pts)
    if (p.min_capacity >= 0) caps.push_back(p.min_capacity);
  return caps;
}

TEST(NonMonotone, DetectorBasics) {
  EXPECT_FALSE(is_non_monotone({}));
  EXPECT_FALSE(is_non_monotone({3}));
  EXPECT_FALSE(is_non_monotone({1, 2, 3}));
  EXPECT_FALSE(is_non_monotone({3, 2, 1}));
  EXPECT_FALSE(is_non_monotone({2, 2, 2}));
  EXPECT_TRUE(is_non_monotone({2, 4, 3}));
  EXPECT_TRUE(is_non_monotone({5, 6, 7, 8, 5}));  // the paper's Fig. 8(b)
}

TEST(NonMonotone, TwoActorSweepIsMonotoneUnderStandardSemantics) {
  // Under consume-at-start / produce-at-end token semantics, the simple
  // producer/consumer min-capacity IS monotone — documented as the baseline
  // against which the chunked-consumer case stands out.
  const auto pts = two_actor_buffer_sweep(1, 5, 1, 8);
  ASSERT_EQ(pts.size(), 8u);
  const auto caps = caps_of(pts);
  EXPECT_FALSE(is_non_monotone(caps));
  for (std::size_t i = 1; i < caps.size(); ++i) EXPECT_GE(caps[i], caps[i - 1]);
}

TEST(NonMonotone, ChunkedConsumerSweepIsNonMonotone) {
  // The paper's headline observation (its Fig. 8): minimum buffer capacity
  // is not monotone in the block size. Our reproduction uses the
  // down-sampling consumer of the PAL chain (chunk = 4): block remainders
  // misaligned with the chunk make a *smaller* block need a *larger* buffer.
  const auto pts = chunked_consumer_buffer_sweep(
      /*reconfig=*/6, /*per_sample=*/1, /*sample_period=*/3, /*chunk=*/4,
      /*eta_lo=*/3, /*eta_hi=*/16);
  const auto caps = caps_of(pts);
  ASSERT_GE(caps.size(), 10u);
  EXPECT_TRUE(is_non_monotone(caps));
}

TEST(NonMonotone, ChunkedSweepSmallerBlockLargerBuffer) {
  // Concrete instance mirroring the paper's "eta=2 needs more than eta=5":
  // here eta=3 needs a larger buffer than eta=4.
  const auto pts = chunked_consumer_buffer_sweep(6, 1, 3, 4, 3, 4);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[0].min_capacity, pts[1].min_capacity)
      << "eta=3 cap=" << pts[0].min_capacity
      << " eta=4 cap=" << pts[1].min_capacity;
}

TEST(NonMonotone, ChunkAlignedBlocksBeatTheirMisalignedNeighbours) {
  // Blocks that are multiples of the chunk avoid lingering remainders: they
  // need less buffering than both adjacent (misaligned) block sizes.
  const auto pts = chunked_consumer_buffer_sweep(10, 1, 2, 8, 10, 25);
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    if (pts[i].min_capacity < 0 || pts[i - 1].min_capacity < 0) continue;
    if (pts[i].eta % 8 != 0) continue;
    EXPECT_LT(pts[i].min_capacity, pts[i - 1].min_capacity)
        << "eta=" << pts[i].eta;
    EXPECT_LT(pts[i].min_capacity, pts[i + 1].min_capacity)
        << "eta=" << pts[i].eta;
  }
}

TEST(NonMonotone, InfeasibleEtasFlagged) {
  // Very small blocks cannot sustain the rate (reconfiguration dominates).
  const auto pts = chunked_consumer_buffer_sweep(10, 1, 2, 8, 8, 12);
  EXPECT_EQ(pts.front().min_capacity, -1);
}

TEST(NonMonotone, GatewaySweepFeasibilityBoundary) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 8), 10}};
  const auto pts = gateway_buffer_sweep(sys, 0, 8, 2, 6);
  ASSERT_EQ(pts.size(), 5u);
  // eta=2: gamma = 10+(2+2)*2 = 18 > 16 = 2*8: infeasible; eta=3 feasible.
  EXPECT_FALSE(pts[0].feasible);
  EXPECT_TRUE(pts[1].feasible);
  for (const auto& p : pts)
    if (p.feasible) EXPECT_GE(p.alpha0, p.eta);
}

}  // namespace
}  // namespace acc::sharing
