#include "sharing/blocksize.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sharing/analysis.hpp"

namespace acc::sharing {
namespace {

SharedSystemSpec pal_like_system() {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {
      {"ch1.stage1", Rational(28224, 1000000), 4100},
      {"ch2.stage1", Rational(28224, 1000000), 4100},
      {"ch1.stage2", Rational(3528, 1000000), 4100},
      {"ch2.stage2", Rational(3528, 1000000), 4100},
  };
  return sys;
}

TEST(BlockSize, FixpointSolvesPalLikeSystem) {
  const BlockSizeResult r = solve_block_sizes_fixpoint(pal_like_system());
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.eta.size(), 4u);
  // Symmetric streams get identical blocks.
  EXPECT_EQ(r.eta[0], r.eta[1]);
  EXPECT_EQ(r.eta[2], r.eta[3]);
  // Stage-1 streams run 8x faster, so their blocks are ~8x larger (exact
  // 8:1 in the real relaxation; integer ceiling may perturb by <= 1 ulp).
  EXPECT_NEAR(static_cast<double>(r.eta[0]) / static_cast<double>(r.eta[2]),
              8.0, 0.01);
  EXPECT_TRUE(throughput_met(pal_like_system(), r.eta));
}

TEST(BlockSize, IlpAgreesWithFixpoint) {
  const SharedSystemSpec sys = pal_like_system();
  const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
  const BlockSizeResult ilp = solve_block_sizes_ilp(sys);
  ASSERT_TRUE(fp.feasible);
  ASSERT_TRUE(ilp.feasible);
  EXPECT_EQ(fp.eta, ilp.eta);
  EXPECT_EQ(fp.total_eta, ilp.total_eta);
  EXPECT_EQ(fp.gamma, ilp.gamma);
}

TEST(BlockSize, InfeasibleWhenUtilizationAtLeastOne) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 10;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"a", Rational(1, 15), 100}, {"b", Rational(1, 15), 100}};
  // utilization = 10 * 2/15 = 4/3 >= 1.
  EXPECT_GE(utilization(sys), Rational(1));
  EXPECT_FALSE(solve_block_sizes_fixpoint(sys).feasible);
  EXPECT_FALSE(solve_block_sizes_ilp(sys).feasible);
}

TEST(BlockSize, RelaxationLowerBoundsIntegerSolution) {
  const SharedSystemSpec sys = pal_like_system();
  const std::vector<Rational> relax = block_size_real_relaxation(sys);
  const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
  ASSERT_EQ(relax.size(), fp.eta.size());
  for (std::size_t s = 0; s < relax.size(); ++s) {
    EXPECT_GE(Rational(fp.eta[s]), relax[s]);
    // Integer solution stays close to the relaxation (within the ceiling
    // feedback amplification).
    EXPECT_LE(fp.eta[s] - relax[s].ceil(), fp.eta[s] / 10 + 16);
  }
}

TEST(BlockSize, RelaxationSatisfiesBalanceEquation) {
  const SharedSystemSpec sys = pal_like_system();
  const std::vector<Rational> relax = block_size_real_relaxation(sys);
  // X = gamma at the real fixed point; eta_s = mu_s * X must satisfy
  // X = sum R + c0*(sum eta + T*|S|) exactly.
  const Rational c0(bottleneck_cycles_per_sample(sys.chain));
  const Rational tail(pipeline_tail(sys.chain));
  Rational sum_eta(0);
  for (const Rational& e : relax) sum_eta += e;
  Rational x = Rational(4 * 4100) + c0 * (sum_eta + tail * Rational(4));
  EXPECT_EQ(relax[0], sys.streams[0].mu * x);
  EXPECT_EQ(relax[2], sys.streams[2].mu * x);
}

TEST(BlockSize, SolutionIsMinimalPerComponent) {
  // Decrementing any stream's block must break feasibility (least fixed
  // point = component-wise minimum).
  const SharedSystemSpec sys = pal_like_system();
  const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
  for (std::size_t s = 0; s < fp.eta.size(); ++s) {
    if (fp.eta[s] <= 1) continue;
    std::vector<std::int64_t> etas = fp.eta;
    etas[s] -= 1;
    EXPECT_FALSE(throughput_met(sys, etas)) << "stream " << s;
  }
}

TEST(BlockSize, SingleStreamClosedForm) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 4), 6}};
  // gamma(eta) = 6 + (eta+2)*2 = 10 + 2*eta; eta >= (10+2*eta)/4
  // -> 2*eta >= 10 -> eta = 5, gamma = 20.
  const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
  ASSERT_TRUE(fp.feasible);
  EXPECT_EQ(fp.eta, (std::vector<std::int64_t>{5}));
  EXPECT_EQ(fp.gamma, 20);
}

// Property: on random feasible systems the two solvers agree and produce
// the minimal feasible point.
TEST(BlockSizeProperty, SolversAgreeOnRandomSystems) {
  SplitMix64 rng(0xB10C);
  int solved = 0;
  for (int trial = 0; trial < 120; ++trial) {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {rng.uniform(1, 4)};
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 8);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 3);
    const int n = static_cast<int>(rng.uniform(1, 4));
    for (int s = 0; s < n; ++s) {
      sys.streams.push_back({"s" + std::to_string(s),
                             Rational(1, rng.uniform(20, 400)),
                             rng.uniform(0, 500)});
    }
    const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
    const BlockSizeResult ilp = solve_block_sizes_ilp(sys);
    ASSERT_EQ(fp.feasible, ilp.feasible);
    if (!fp.feasible) {
      EXPECT_GE(utilization(sys), Rational(1));
      continue;
    }
    ++solved;
    EXPECT_EQ(fp.eta, ilp.eta) << "trial " << trial;
    EXPECT_TRUE(throughput_met(sys, fp.eta));
    // Component-wise minimality.
    for (std::size_t s = 0; s < fp.eta.size(); ++s) {
      if (fp.eta[s] <= 1) continue;
      std::vector<std::int64_t> etas = fp.eta;
      etas[s] -= 1;
      EXPECT_FALSE(throughput_met(sys, etas));
    }
  }
  EXPECT_GT(solved, 40);
}

TEST(BufferForStream, SmallSystemExactness) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 4), 6}};
  const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
  ASSERT_TRUE(fp.feasible);
  const StreamBufferResult buf =
      min_buffers_for_stream(sys, 0, fp.eta, /*sample_period=*/4);
  ASSERT_TRUE(buf.feasible);
  // Buffers must at least hold one block.
  EXPECT_GE(buf.alpha0, fp.eta[0]);
  EXPECT_GE(buf.alpha3, fp.eta[0]);
}

TEST(BufferForStream, InfeasiblePeriodReported) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 4), 6}};
  // eta=1 gives gamma=12 > 4 cycles/sample: period 4 unreachable.
  const StreamBufferResult buf = min_buffers_for_stream(sys, 0, {1}, 4);
  EXPECT_FALSE(buf.feasible);
}

TEST(OptimalBlocks, NeverWorseThanMinimalBlocks) {
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 4), 6}};
  const BlockSizeResult fp = solve_block_sizes_fixpoint(sys);
  ASSERT_TRUE(fp.feasible);
  const StreamBufferResult at_min =
      min_buffers_for_stream(sys, 0, fp.eta, 4);
  ASSERT_TRUE(at_min.feasible);
  const OptimalBlockResult best = optimal_blocks_for_buffers(sys, {4}, 6);
  ASSERT_TRUE(best.feasible);
  EXPECT_LE(best.total_buffer, at_min.total());
  EXPECT_GE(best.eta[0], fp.eta[0]);  // never below the Algorithm-1 minimum
}

}  // namespace
}  // namespace acc::sharing
