#include "sharing/sdf_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/refinement.hpp"
#include "sharing/analysis.hpp"
#include "sharing/csdf_model.hpp"

namespace acc::sharing {
namespace {

TEST(SdfModel, StructureMatchesFigure7) {
  SdfModelOptions o;
  o.eta = 4;
  o.alpha0 = 8;
  o.alpha3 = 8;
  o.producer_period = 2;
  o.consumer_period = 2;
  o.shared_duration = 100;
  const SdfStreamModel m = build_sdf_stream_model(o);
  EXPECT_EQ(m.graph.num_actors(), 3u);
  EXPECT_EQ(m.graph.actor(m.shared).phase_durations[0], 100);
  EXPECT_EQ(m.graph.channel_capacity(m.input_buffer), 8);
  EXPECT_EQ(m.graph.channel_capacity(m.output_buffer), 8);
  // vS consumes and produces whole blocks.
  EXPECT_EQ(m.graph.edge(m.input_buffer.data).cons[0], 4);
  EXPECT_EQ(m.graph.edge(m.output_buffer.data).prod[0], 4);
}

TEST(SdfModel, ThroughputIsEtaOverGamma) {
  SdfModelOptions o;
  o.eta = 5;
  o.alpha0 = 10;
  o.alpha3 = 10;
  o.producer_period = 1;
  o.consumer_period = 1;
  o.shared_duration = 50;
  const SdfStreamModel m = build_sdf_stream_model(o);
  df::SelfTimedExecutor exec(m.graph);
  const df::ThroughputResult r = exec.analyze_throughput(m.consumer);
  ASSERT_FALSE(r.deadlocked);
  // Double-buffered (alpha = 2*eta), so vS runs back-to-back: eta samples
  // per shared_duration.
  EXPECT_EQ(r.throughput, Rational(5, 50));
}

TEST(SdfModel, RejectsSubBlockBuffers) {
  SdfModelOptions o;
  o.eta = 4;
  o.alpha0 = 3;
  o.alpha3 = 4;
  EXPECT_THROW((void)build_sdf_stream_model(o), precondition_error);
}

// The paper's refinement chain (its Fig. 2): the CSDF model is a refinement
// of the single-actor SDF abstraction — under equal stimuli, every output
// token of the CSDF model is produced no later than the matching token of
// the SDF abstraction.
TEST(SdfModel, CsdfRefinesSdfAbstraction) {
  SplitMix64 rng(0xF16);
  for (int trial = 0; trial < 40; ++trial) {
    SharedSystemSpec sys;
    sys.chain.accel_cycles_per_sample = {rng.uniform(1, 4)};
    sys.chain.entry_cycles_per_sample = rng.uniform(1, 8);
    sys.chain.exit_cycles_per_sample = rng.uniform(1, 3);
    sys.streams = {{"s", Rational(1, 1000), rng.uniform(0, 40)}};
    const std::int64_t eta = rng.uniform(1, 12);
    const Time period = rng.uniform(1, 6);
    const std::int64_t blocks = 6;

    CsdfModelOptions co;
    co.eta = eta;
    co.alpha0 = 2 * eta;
    co.alpha3 = 2 * eta;
    co.producer_period = period;
    co.consumer_period = period;
    CsdfStreamModel cm = build_csdf_stream_model(sys, 0, co);

    SdfModelOptions so;
    so.eta = eta;
    so.alpha0 = 2 * eta;
    so.alpha3 = 2 * eta;
    so.producer_period = period;
    so.consumer_period = period;
    // Single stream: gamma_hat = tau_hat.
    so.shared_duration = tau_hat(sys, 0, eta);
    SdfStreamModel sm = build_sdf_stream_model(so);

    // Collect output-token production times from both models.
    auto collect = [](df::Graph& g, df::ActorId until_actor, df::EdgeId edge,
                      std::int64_t tokens) {
      df::SelfTimedExecutor exec(g);
      std::vector<df::Time> times;
      df::ExecObservers obs;
      obs.on_produce = [&](df::EdgeId e, std::int64_t count, df::Time t) {
        if (e == edge)
          for (std::int64_t i = 0; i < count; ++i) times.push_back(t);
      };
      exec.set_observers(obs);
      (void)exec.run_until_firings(until_actor, tokens);
      return times;
    };

    const std::vector<df::Time> refined =
        collect(cm.graph, cm.consumer, cm.output_data, blocks * eta);
    const std::vector<df::Time> abstraction =
        collect(sm.graph, sm.consumer, sm.output_buffer.data, blocks * eta);
    ASSERT_GE(refined.size(), static_cast<std::size_t>(blocks * eta));
    ASSERT_GE(abstraction.size(), static_cast<std::size_t>(blocks * eta));

    const df::RefinementReport rep =
        df::check_earlier_the_better(refined, abstraction);
    EXPECT_TRUE(rep.holds) << df::describe(rep) << " (eta=" << eta
                           << ", period=" << period << ")";
  }
}

}  // namespace
}  // namespace acc::sharing
