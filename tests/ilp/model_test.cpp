#include "ilp/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace acc::ilp {
namespace {

TEST(Lp, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> x=4, y=0, obj 12.
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Rel::kLe, 4);
  m.add_constraint(LinExpr().add(x, 1).add(y, 3), Rel::kLe, 6);
  m.set_objective(LinExpr().add(x, 3).add(y, 2), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.values[x], 4.0, 1e-6);
  EXPECT_NEAR(s.values[y], 0.0, 1e-6);
}

TEST(Lp, MinimizationWithGeConstraints) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 1 -> x=9? obj: prefer x
  // (cheaper): x=9, y=1, obj 21.
  Model m;
  const VarId x = m.add_var("x", 2.0);
  const VarId y = m.add_var("y", 1.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Rel::kGe, 10);
  m.set_objective(LinExpr().add(x, 2).add(y, 3), Sense::kMinimize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 21.0, 1e-6);
  EXPECT_NEAR(s.values[x], 9.0, 1e-6);
  EXPECT_NEAR(s.values[y], 1.0, 1e-6);
}

TEST(Lp, EqualityConstraint) {
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Rel::kEq, 5);
  m.set_objective(LinExpr().add(x, 1), Sense::kMinimize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 0.0, 1e-6);
  EXPECT_NEAR(s.values[y], 5.0, 1e-6);
}

TEST(Lp, InfeasibleDetected) {
  Model m;
  const VarId x = m.add_var("x", 0.0, 3.0);
  m.add_constraint(LinExpr().add(x, 1), Rel::kGe, 5);
  EXPECT_EQ(m.solve().status, SolveStatus::kInfeasible);
}

TEST(Lp, UnboundedDetected) {
  Model m;
  const VarId x = m.add_var("x");
  m.set_objective(LinExpr().add(x, 1), Sense::kMaximize);
  EXPECT_EQ(m.solve().status, SolveStatus::kUnbounded);
}

TEST(Lp, VariableUpperBoundsHonored) {
  Model m;
  const VarId x = m.add_var("x", 0.0, 2.5);
  m.set_objective(LinExpr().add(x, 1), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 2.5, 1e-6);
}

TEST(Lp, NonZeroLowerBoundsShiftCorrectly) {
  Model m;
  const VarId x = m.add_var("x", 10.0);
  const VarId y = m.add_var("y", -5.0, 5.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Rel::kLe, 20);
  m.set_objective(LinExpr().add(x, 1).add(y, 1), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
}

TEST(Lp, ObjectiveConstantIncluded) {
  Model m;
  const VarId x = m.add_var("x", 0.0, 1.0);
  m.set_objective(LinExpr(7.0).add(x, 1), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
}

TEST(Ilp, KnapsackStyleIntegrality) {
  // max 5a + 4b s.t. 6a + 5b <= 10, a,b integer in [0, 3].
  // LP relaxation is fractional; optimum integer solution: a=0,b=2 -> 8 or
  // a=1,b=0 -> 5; best is 8.
  Model m;
  const VarId a = m.add_var("a", 0, 3, /*integer=*/true);
  const VarId b = m.add_var("b", 0, 3, /*integer=*/true);
  m.add_constraint(LinExpr().add(a, 6).add(b, 5), Rel::kLe, 10);
  m.set_objective(LinExpr().add(a, 5).add(b, 4), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
  EXPECT_EQ(s.value_int(a), 0);
  EXPECT_EQ(s.value_int(b), 2);
}

TEST(Ilp, RoundingUpIsNotAssumed) {
  // min x s.t. 3x >= 7, x integer  -> x = 3 (not ceil of LP in general, but
  // here B&B must return exactly 3).
  Model m;
  const VarId x = m.add_var("x", 0, kInf, true);
  m.add_constraint(LinExpr().add(x, 3), Rel::kGe, 7);
  m.set_objective(LinExpr().add(x, 1), Sense::kMinimize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(s.value_int(x), 3);
}

TEST(Ilp, MixedIntegerAndContinuous) {
  // min 10i + c s.t. i + c >= 2.5, c <= 0.7, i integer >= 0.
  // c at its max 0.7 => i >= 1.8 => i = 2; obj = 20 + c with c >= 0.5;
  // minimize => c = 0.5, obj 20.5.
  Model m;
  const VarId i = m.add_var("i", 0, kInf, true);
  const VarId c = m.add_var("c", 0, 0.7);
  m.add_constraint(LinExpr().add(i, 1).add(c, 1), Rel::kGe, 2.5);
  m.set_objective(LinExpr().add(i, 10).add(c, 1), Sense::kMinimize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(s.value_int(i), 2);
  EXPECT_NEAR(s.objective, 20.5, 1e-5);
}

TEST(Ilp, InfeasibleIntegerBox) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const VarId x = m.add_var("x", 0.4, 0.6, true);
  m.set_objective(LinExpr().add(x, 1), Sense::kMinimize);
  EXPECT_EQ(m.solve().status, SolveStatus::kInfeasible);
}

TEST(Ilp, DegenerateConstraintsDoNotCycle) {
  // Classic degenerate LP; Bland's rule must terminate.
  Model m;
  const VarId x1 = m.add_var("x1");
  const VarId x2 = m.add_var("x2");
  const VarId x3 = m.add_var("x3");
  m.add_constraint(LinExpr().add(x1, 0.5).add(x2, -5.5).add(x3, -2.5), Rel::kLe, 0);
  m.add_constraint(LinExpr().add(x1, 0.5).add(x2, -1.5).add(x3, -0.5), Rel::kLe, 0);
  m.add_constraint(LinExpr().add(x1, 1), Rel::kLe, 1);
  m.set_objective(LinExpr().add(x1, 10).add(x2, -57).add(x3, -9), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  // Optimum: x1=1 forces 1.5*x2 + 0.5*x3 >= 0.5; cheapest cover is x3=1,
  // giving 10 - 9 = 1.
  EXPECT_NEAR(s.objective, 1.0, 1e-5);
}

TEST(Ilp, RedundantEqualitiesHandled) {
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Rel::kEq, 4);
  m.add_constraint(LinExpr().add(x, 2).add(y, 2), Rel::kEq, 8);  // redundant
  m.set_objective(LinExpr().add(x, 1), Sense::kMaximize);
  const Solution s = m.solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 4.0, 1e-6);
}

// Property: B&B solution beats (or ties) rounding heuristics on random
// covering problems, and always satisfies every constraint.
TEST(IlpProperty, RandomCoveringProblemsSatisfyConstraints) {
  acc::SplitMix64 rng(0x11b);
  for (int trial = 0; trial < 50; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.uniform(2, 4));
    std::vector<VarId> xs;
    for (int j = 0; j < n; ++j)
      xs.push_back(m.add_var("x" + std::to_string(j), 0, 50, true));
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    const int k = static_cast<int>(rng.uniform(1, 3));
    for (int i = 0; i < k; ++i) {
      LinExpr e;
      rows.emplace_back();
      for (int j = 0; j < n; ++j) {
        const double coef = static_cast<double>(rng.uniform(1, 5));
        rows.back().push_back(coef);
        e.add(xs[j], coef);
      }
      rhs.push_back(static_cast<double>(rng.uniform(5, 40)));
      m.add_constraint(e, Rel::kGe, rhs.back());
    }
    LinExpr obj;
    std::vector<double> costs;
    for (int j = 0; j < n; ++j) {
      costs.push_back(static_cast<double>(rng.uniform(1, 9)));
      obj.add(xs[j], costs.back());
    }
    m.set_objective(obj, Sense::kMinimize);
    const Solution s = m.solve();
    ASSERT_TRUE(s.optimal());
    for (int i = 0; i < k; ++i) {
      double lhs = 0;
      for (int j = 0; j < n; ++j) lhs += rows[i][j] * s.values[xs[j]];
      EXPECT_GE(lhs, rhs[i] - 1e-6);
    }
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(s.values[xs[j]], std::round(s.values[xs[j]]), 1e-6);
      EXPECT_GE(s.values[xs[j]], -1e-9);
    }
  }
}

}  // namespace
}  // namespace acc::ilp
