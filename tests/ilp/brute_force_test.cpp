// Property test: the branch-and-bound MILP solver agrees with exhaustive
// enumeration on random small integer programs.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "common/rng.hpp"
#include "ilp/model.hpp"

namespace acc::ilp {
namespace {

struct RandomIp {
  int num_vars;
  std::int64_t box;  // vars in [0, box]
  std::vector<std::vector<double>> rows;
  std::vector<Rel> rels;
  std::vector<double> rhs;
  std::vector<double> cost;
  Sense sense;
};

RandomIp make_random_ip(acc::SplitMix64& rng) {
  RandomIp ip;
  ip.num_vars = static_cast<int>(rng.uniform(1, 3));
  ip.box = rng.uniform(2, 6);
  const int rows = static_cast<int>(rng.uniform(1, 3));
  for (int r = 0; r < rows; ++r) {
    std::vector<double> row;
    for (int j = 0; j < ip.num_vars; ++j)
      row.push_back(static_cast<double>(rng.uniform(-4, 6)));
    ip.rows.push_back(std::move(row));
    ip.rels.push_back(rng.chance(0.5) ? Rel::kLe : Rel::kGe);
    ip.rhs.push_back(static_cast<double>(rng.uniform(-5, 20)));
  }
  for (int j = 0; j < ip.num_vars; ++j)
    ip.cost.push_back(static_cast<double>(rng.uniform(-5, 9)));
  ip.sense = rng.chance(0.5) ? Sense::kMinimize : Sense::kMaximize;
  return ip;
}

std::optional<double> brute_force(const RandomIp& ip) {
  std::optional<double> best;
  std::vector<std::int64_t> x(ip.num_vars, 0);
  const auto per = ip.box + 1;
  std::int64_t combos = 1;
  for (int j = 0; j < ip.num_vars; ++j) combos *= per;
  for (std::int64_t c = 0; c < combos; ++c) {
    std::int64_t v = c;
    for (int j = 0; j < ip.num_vars; ++j) {
      x[j] = v % per;
      v /= per;
    }
    bool ok = true;
    for (std::size_t r = 0; r < ip.rows.size() && ok; ++r) {
      double lhs = 0;
      for (int j = 0; j < ip.num_vars; ++j)
        lhs += ip.rows[r][j] * static_cast<double>(x[j]);
      ok = ip.rels[r] == Rel::kLe ? lhs <= ip.rhs[r] + 1e-9
                                  : lhs >= ip.rhs[r] - 1e-9;
    }
    if (!ok) continue;
    double obj = 0;
    for (int j = 0; j < ip.num_vars; ++j)
      obj += ip.cost[j] * static_cast<double>(x[j]);
    if (!best || (ip.sense == Sense::kMinimize ? obj < *best : obj > *best))
      best = obj;
  }
  return best;
}

TEST(IlpBruteForce, RandomIntegerProgramsMatchExhaustiveSearch) {
  acc::SplitMix64 rng(0xB4F);
  int solved = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const RandomIp ip = make_random_ip(rng);
    Model m;
    std::vector<VarId> xs;
    for (int j = 0; j < ip.num_vars; ++j)
      xs.push_back(m.add_var("x" + std::to_string(j), 0,
                             static_cast<double>(ip.box), /*integer=*/true));
    for (std::size_t r = 0; r < ip.rows.size(); ++r) {
      LinExpr e;
      for (int j = 0; j < ip.num_vars; ++j) e.add(xs[j], ip.rows[r][j]);
      m.add_constraint(e, ip.rels[r], ip.rhs[r]);
    }
    LinExpr obj;
    for (int j = 0; j < ip.num_vars; ++j) obj.add(xs[j], ip.cost[j]);
    m.set_objective(obj, ip.sense);

    const Solution sol = m.solve();
    const std::optional<double> truth = brute_force(ip);
    if (!truth.has_value()) {
      EXPECT_EQ(sol.status, SolveStatus::kInfeasible) << "trial " << trial;
      ++infeasible;
      continue;
    }
    ASSERT_TRUE(sol.optimal()) << "trial " << trial;
    EXPECT_NEAR(sol.objective, *truth, 1e-6) << "trial " << trial;
    // The returned point itself must be feasible and integral.
    for (int j = 0; j < ip.num_vars; ++j) {
      EXPECT_NEAR(sol.values[xs[j]], std::round(sol.values[xs[j]]), 1e-6);
      EXPECT_GE(sol.values[xs[j]], -1e-9);
      EXPECT_LE(sol.values[xs[j]], static_cast<double>(ip.box) + 1e-9);
    }
    ++solved;
  }
  EXPECT_GT(solved, 150);
  EXPECT_GT(infeasible, 5);
}

}  // namespace
}  // namespace acc::ilp
