#include "hwcost/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace acc::hwcost {
namespace {

TEST(Published, TableOneComponentRows) {
  // Verbatim Table I values.
  EXPECT_EQ(published_cost(Component::kGatewayPair), (FpgaCost{3788, 4445}));
  EXPECT_EQ(published_cost(Component::kFirDownsampler),
            (FpgaCost{6512, 10837}));
  EXPECT_EQ(published_cost(Component::kCordic), (FpgaCost{1714, 1882}));
}

TEST(Published, GatewaySplitSumsToPair) {
  const FpgaCost entry = published_cost(Component::kEntryGateway);
  const FpgaCost exit = published_cost(Component::kExitGateway);
  const FpgaCost pair = published_cost(Component::kGatewayPair);
  EXPECT_EQ(entry + exit, pair);
  // The entry-gateway is "mostly a MicroBlaze" (paper §VI-B).
  const FpgaCost mb = published_cost(Component::kMicroBlaze);
  EXPECT_GT(mb.slices, entry.slices * 7 / 10);
  EXPECT_LT(mb.slices, entry.slices);
}

TEST(TableOne, NonSharedTotals) {
  const SharingComparison c = paper_case_study();
  // Paper Table I: 4*(F+D) + 4*C.
  EXPECT_EQ(c.non_shared.slices, 32904);
  EXPECT_EQ(c.non_shared.luts, 50876);
}

TEST(TableOne, SharedTotals) {
  const SharingComparison c = paper_case_study();
  // Paper Table I: Gateways + (F+D) + (C).
  EXPECT_EQ(c.shared.slices, 12014);
  EXPECT_EQ(c.shared.luts, 17164);
}

TEST(TableOne, SavingsMatchPaper) {
  const SharingComparison c = paper_case_study();
  EXPECT_EQ(c.savings.slices, 20890);
  EXPECT_EQ(c.savings.luts, 33712);
  EXPECT_NEAR(c.slice_saving_pct, 63.5, 0.05);
  EXPECT_NEAR(c.lut_saving_pct, 66.3, 0.05);
}

TEST(Compare, SingleCopyDemandMakesSharingALoss) {
  // Sharing one instance used once just adds gateway overhead.
  const SharingComparison c =
      compare_sharing({{Component::kCordic, 1}});
  EXPECT_LT(c.savings.slices, 0);
  EXPECT_LT(c.slice_saving_pct, 0.0);
}

TEST(Compare, BreakEvenCopyCount) {
  // CORDIC-only sharing pays off once the gateway pair costs less than the
  // saved copies: pair 3788 slices vs CORDIC 1714 -> breakeven at n = 4
  // (savings (n-1)*1714 - 3788 > 0 <=> n > 3.2).
  EXPECT_LT(compare_sharing({{Component::kCordic, 3}}).savings.slices, 0);
  EXPECT_GT(compare_sharing({{Component::kCordic, 4}}).savings.slices, 0);
}

TEST(Compare, RejectsEmptyAndNonPositive) {
  EXPECT_THROW((void)compare_sharing({}), acc::precondition_error);
  EXPECT_THROW((void)compare_sharing({{Component::kCordic, 0}}),
               precondition_error);
}

TEST(Structural, CordicEstimateNearPublished) {
  // 16-iteration, 32-bit datapath (the configuration of our accelerator
  // model) should land near the published CORDIC area.
  const StructuralEstimate e = estimate_cordic(16, 32);
  const FpgaCost pub = published_cost(Component::kCordic);
  EXPECT_NEAR(static_cast<double>(e.luts), static_cast<double>(pub.luts),
              0.3 * static_cast<double>(pub.luts));
}

TEST(Structural, FirEstimateNearPublished) {
  const StructuralEstimate e = estimate_fir(33, 16);
  const FpgaCost pub = published_cost(Component::kFirDownsampler);
  EXPECT_NEAR(static_cast<double>(e.luts), static_cast<double>(pub.luts),
              0.3 * static_cast<double>(pub.luts));
}

TEST(Structural, MicroBlazeEstimateNearPublished) {
  const StructuralEstimate e = estimate_microblaze();
  const FpgaCost pub = published_cost(Component::kMicroBlaze);
  EXPECT_NEAR(static_cast<double>(e.luts), static_cast<double>(pub.luts),
              0.3 * static_cast<double>(pub.luts));
}

TEST(Structural, EstimatesScaleWithParameters) {
  EXPECT_GT(estimate_cordic(24, 32).luts, estimate_cordic(16, 32).luts);
  EXPECT_GT(estimate_cordic(16, 48).luts, estimate_cordic(16, 32).luts);
  EXPECT_GT(estimate_fir(65, 16).luts, estimate_fir(33, 16).luts);
  EXPECT_THROW((void)estimate_cordic(0, 32), acc::precondition_error);
  EXPECT_THROW((void)estimate_fir(33, 4), acc::precondition_error);
}

TEST(Structural, PackingModelMapsToSlices) {
  StructuralEstimate e;
  e.luts = 290;
  e.ffs = 100;
  const FpgaCost c = e.to_cost(PackingModel{2.9, 5.0});
  EXPECT_EQ(c.slices, 100);  // LUT-bound
  EXPECT_EQ(c.luts, 290);
  e.ffs = 1000;
  EXPECT_EQ(e.to_cost(PackingModel{2.9, 5.0}).slices, 200);  // FF-bound
}

TEST(Interconnect, RingScalesLinearly) {
  const auto r8 = estimate_dual_ring(8);
  const auto r16 = estimate_dual_ring(16);
  EXPECT_EQ(r16.luts, 2 * r8.luts);  // strictly linear in nodes
}

TEST(Interconnect, CrossbarScalesSuperlinearly) {
  const auto x8 = estimate_tdm_crossbar(8);
  const auto x16 = estimate_tdm_crossbar(16);
  EXPECT_GT(x16.luts, 2 * x8.luts);  // quadratic crosspoint growth
}

TEST(Interconnect, RingCheaperAtScale) {
  // The paper's argument for the ring (refs [11]/[13]): a switch "results
  // in higher hardware costs compared to the ring-based interconnect".
  const auto cmp = compare_interconnects({4, 8, 16, 32});
  ASSERT_EQ(cmp.size(), 4u);
  // The advantage grows with system size...
  for (std::size_t i = 1; i < cmp.size(); ++i)
    EXPECT_GT(cmp[i].crossbar_over_ring, cmp[i - 1].crossbar_over_ring);
  // ...and the crossbar is decisively more expensive for large MPSoCs.
  EXPECT_GT(cmp.back().crossbar_over_ring, 1.5);
}

TEST(Interconnect, RejectsBadParameters) {
  EXPECT_THROW((void)estimate_dual_ring(1), acc::precondition_error);
  EXPECT_THROW((void)estimate_tdm_crossbar(2, 4), acc::precondition_error);
}

TEST(Arithmetic, CostAlgebra) {
  const FpgaCost a{10, 20};
  const FpgaCost b{1, 2};
  EXPECT_EQ(a + b, (FpgaCost{11, 22}));
  EXPECT_EQ(3 * b, (FpgaCost{3, 6}));
}

}  // namespace
}  // namespace acc::hwcost
