// Control-plane properties (ISSUE 10):
//  - the three cycle-exact steppers stay bit-identical through a full
//    seeded join/leave churn trace (digests, audio checksums, decisions);
//  - the BENCH_admission.json document is byte-identical across --jobs;
//  - a rejected admission is a no-op on the running system: consulting the
//    controller for a doomed candidate mid-stream leaves the admitted
//    streams' cycle-exact state (and hence their audio) untouched.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/admission_churn.hpp"
#include "ctrl/admission.hpp"
#include "ctrl/mode_change.hpp"
#include "sim/chain_builder.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

#include "../support/random_chain.hpp"

namespace acc {
namespace {

app::ChurnConfig test_config(std::int32_t events) {
  app::ChurnConfig cfg = app::small_churn_config();
  cfg.workload.events = events;
  return cfg;
}

TEST(ChurnProperty, SteppersStayBitIdenticalThroughChurn) {
  const app::ChurnResult res = app::run_churn_campaign(test_config(80));
  ASSERT_EQ(res.runs.size(), 3u);
  EXPECT_TRUE(res.equivalent);
  const app::ChurnRunResult& ref = res.runs.back();
  EXPECT_EQ(ref.stepper, sim::StepperKind::kWakeList);
  for (const app::ChurnRunResult& r : res.runs) {
    EXPECT_EQ(r.cycles_run, ref.cycles_run);
    EXPECT_EQ(r.digest, ref.digest);
    EXPECT_EQ(r.audio_checksum, ref.audio_checksum);
    EXPECT_EQ(r.deadline_misses, 0);
    ASSERT_EQ(r.decisions.size(), ref.decisions.size());
  }
  EXPECT_GT(ref.mode_changes, 0);
  EXPECT_GT(ref.samples_delivered, 0);
}

TEST(ChurnProperty, BenchDocIsByteIdenticalAcrossJobs) {
  app::ChurnConfig one = test_config(60);
  one.jobs = 1;
  app::ChurnConfig three = test_config(60);
  three.jobs = 3;
  const app::ChurnResult ra = app::run_churn_campaign(one);
  const app::ChurnResult rb = app::run_churn_campaign(three);
  EXPECT_EQ(app::admission_bench_doc(one, ra).pretty(),
            app::admission_bench_doc(three, rb).pretty());
}

/// One admitted stream fed end to end; `probe_rejection` additionally asks
/// the controller mid-stream about a candidate that saturates the
/// bottleneck (always rejected). Returns the final cycle-exact digest.
std::uint64_t run_with_probe(bool probe_rejection) {
  sim::System sys(3);
  sim::ChainConfig ccfg;
  ccfg.name = "noop";
  ccfg.base_node = 0;
  ccfg.accel_cycles = {1};
  ccfg.epsilon = 2;
  ccfg.delta = 1;
  ccfg.ni_capacity = 2;
  ccfg.exit_notify_lag = 4;
  sim::GatewayChain chain = sim::build_gateway_chain(sys, ccfg);

  ctrl::AdmissionConfig acfg;
  acfg.chain.accel_cycles_per_sample = {1};
  acfg.chain.entry_cycles_per_sample = 2;
  acfg.chain.exit_cycles_per_sample = 1;
  acfg.chain.ni_capacity = 2;
  ctrl::AdmissionController ctl(acfg);

  ctrl::ModeChangeConfig mcfg;
  mcfg.sys = &sys;
  mcfg.entry = chain.entry;
  mcfg.accels = chain.accels;
  ctrl::ModeChangeProtocol protocol(mcfg);

  const ctrl::StreamRequest req{"a", Rational(1, 16), 20};
  const ctrl::AdmissionDecision d = ctl.admit({}, req);
  EXPECT_TRUE(d.accepted);

  sim::CFifo& in = sys.add_fifo("a.in", d.eta * 4);
  sim::CFifo& out = sys.add_fifo("a.out", 32);
  sim::StreamRoute route;
  route.id = 0;
  route.name = "a";
  route.eta = d.eta;
  route.out_per_block = d.eta;
  route.input = &in;
  route.output = &out;
  route.reconfig = 20;
  protocol.join(route, sim::testsupport::passes(1));

  std::vector<sim::Flit> samples;
  for (std::uint64_t j = 0; j < 16; ++j) samples.push_back(j * 2654435761u);
  auto& src = sys.add<sim::SourceTile>("a.src", in, samples,
                                       /*period=*/16, sys.now() + 16);

  sys.run_with(sim::StepperKind::kWakeList, 1000);
  if (probe_rejection) {
    std::vector<ctrl::StreamRequest> active{req};
    active[0].eta = d.eta;
    const ctrl::AdmissionDecision doomed =
        ctl.admit(active, {"hog", Rational(1, 1), 20});
    EXPECT_FALSE(doomed.accepted);
    EXPECT_EQ(doomed.reason, "utilization");
  }
  sys.run_with(sim::StepperKind::kWakeList, 4000);

  EXPECT_TRUE(src.exhausted());
  EXPECT_EQ(src.dropped(), 0);
  EXPECT_EQ(out.fill_visible(sys.now()), 16);
  return sys.state_digest();
}

TEST(ChurnProperty, RejectedAdmissionIsANoOpOnAdmittedStreams) {
  EXPECT_EQ(run_with_probe(false), run_with_probe(true));
}

}  // namespace
}  // namespace acc
