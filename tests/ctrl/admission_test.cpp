// AdmissionController unit tests: the incremental Eq. 5 fixed point, every
// rejection reason, the eta_align quantization, and the canonical-signature
// memo cache (hits are bit-identical to the decisions they replay, and
// permutations of the same session mix share one entry).
#include "ctrl/admission.hpp"

#include <gtest/gtest.h>

#include "sharing/analysis.hpp"

namespace acc::ctrl {
namespace {

/// c0 = 1 chain: one unit-cost accelerator, unit entry/exit stages. With
/// k = 1 accelerators tau_hat = R + (eta + 2) * c0, so every expectation
/// below is small-integer arithmetic.
AdmissionConfig unit_chain() {
  AdmissionConfig cfg;
  cfg.chain.accel_cycles_per_sample = {1};
  cfg.chain.entry_cycles_per_sample = 1;
  cfg.chain.exit_cycles_per_sample = 1;
  cfg.chain.ni_capacity = 2;
  return cfg;
}

TEST(Admission, SoloCandidateSolvesTheLeastFixedPoint) {
  AdmissionController ctl(unit_chain());
  // mu = 1/4, R = 10: eta >= (10 + eta + 2) / 4  =>  eta = 4, gamma = 16.
  const AdmissionDecision d = ctl.admit({}, {"a", Rational(1, 4), 10});
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.reason, "feasible");
  EXPECT_EQ(d.eta, 4);
  EXPECT_EQ(d.gamma, 16);
  EXPECT_FALSE(d.cache_hit);
  EXPECT_GT(d.analysis_work, 0);
}

TEST(Admission, UtilizationRejectsBeforeAnyFixpointWork) {
  AdmissionController ctl(unit_chain());
  // mu = 1 with c0 = 1 saturates the bottleneck: Eq. 5 has no solution.
  const AdmissionDecision d = ctl.admit({}, {"hog", Rational(1, 1), 10});
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.reason, "utilization");
}

TEST(Admission, EtaMaxRejectsAnUnbuildableBlock) {
  AdmissionConfig cfg = unit_chain();
  cfg.eta_max = 8;
  AdmissionController ctl(cfg);
  // Feasible in the real relaxation (utilization 1/4), but R = 1000 forces
  // eta = 251 — no hardware C-FIFO of depth 8 can deploy it.
  const AdmissionDecision d = ctl.admit({}, {"deep", Rational(1, 4), 1000});
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.reason, "eta_max");
}

TEST(Admission, HeadroomProtectsDeployedContracts) {
  AdmissionController ctl(unit_chain());
  // "a" runs at its published fixed point (eta 4, gamma 16) with ZERO
  // slack: any candidate that stretches the round breaks its Eq. 5.
  const std::vector<StreamRequest> active{{"a", Rational(1, 4), 10, 1, 4}};
  const AdmissionDecision d =
      ctl.admit(active, {"b", Rational(1, 100), 50});
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.reason, "headroom");
}

TEST(Admission, EtaAlignQuantizesToLcmWithDecimation) {
  AdmissionConfig cfg = unit_chain();
  cfg.eta_align = 8;
  AdmissionController ctl(cfg);
  StreamRequest c{"decim", Rational(1, 4), 10};
  c.decimation = 3;
  const AdmissionDecision d = ctl.admit({}, c);
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.eta % 24, 0) << "eta " << d.eta
                           << " not lcm(decimation, eta_align)-aligned";
  EXPECT_EQ(d.eta, 24);  // the least aligned block already satisfies Eq. 5
}

TEST(Admission, CacheReplaysTheSameDecision) {
  AdmissionController ctl(unit_chain());
  const StreamRequest cand{"a", Rational(1, 4), 10};
  const AdmissionDecision miss = ctl.admit({}, cand);
  const AdmissionDecision hit = ctl.admit({}, cand);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.analysis_work, 0);  // replay costs no Eq. 4 evaluations
  EXPECT_EQ(hit.accepted, miss.accepted);
  EXPECT_EQ(hit.eta, miss.eta);
  EXPECT_EQ(hit.gamma, miss.gamma);
  EXPECT_EQ(ctl.cache_lookups(), 2);
  EXPECT_EQ(ctl.cache_hits(), 1);
  EXPECT_EQ(ctl.accepts(), 2);
}

TEST(Admission, SignatureIsOrderInvariant) {
  AdmissionController ctl(unit_chain());
  // Two deployed streams, loose enough that a third fits.
  const StreamRequest a{"a", Rational(1, 64), 10, 1, 8};
  const StreamRequest b{"b", Rational(1, 32), 20, 1, 8};
  const StreamRequest cand{"c", Rational(1, 64), 10};
  const AdmissionDecision ab = ctl.admit({a, b}, cand);
  const AdmissionDecision ba = ctl.admit({b, a}, cand);
  EXPECT_FALSE(ab.cache_hit);
  EXPECT_TRUE(ba.cache_hit) << "permuted active set missed the cache";
  EXPECT_EQ(ba.accepted, ab.accepted);
  EXPECT_EQ(ba.eta, ab.eta);
}

}  // namespace
}  // namespace acc::ctrl
