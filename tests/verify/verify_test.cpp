// acc-verify model-checker tests: the clean fixture explores clean, every
// seeded mutation fixture (tests/verify/fixtures/V0x_bad.json) raises
// exactly its rule with a deterministically replayable counterexample, the
// exploration is byte-identical across --jobs values, suppression keeps
// V-rule findings visible in the JSON document, and the wake-soundness
// audit (V05) holds over the shared randomized-chain corpus.
#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "lint/diagnostics.hpp"
#include "verify/model.hpp"
#include "verify/wake_audit.hpp"

#include "../support/random_chain.hpp"

#ifndef ACC_VERIFY_FIXTURE_DIR
#error "build must define ACC_VERIFY_FIXTURE_DIR"
#endif

namespace acc::verify {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ACC_VERIFY_FIXTURE_DIR) + "/" + name;
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

VerifyResult verify_fixture(const std::string& name,
                            const VerifyOptions& opts = {},
                            const lint::LintOptions& lint_opts = {}) {
  return verify_config_text(read_fixture(name), name, opts, lint_opts);
}

constexpr const char* kVRules[] = {"V01", "V02", "V03", "V04", "V05", "V06"};

TEST(VerifyClean, CleanFixtureExploresCleanToItsBudget) {
  const VerifyResult r = verify_fixture("clean.json");
  EXPECT_TRUE(r.explored);
  EXPECT_TRUE(r.report.clean()) << r.report.to_text();
  for (const char* rule : kVRules) EXPECT_FALSE(r.report.has(rule)) << rule;
  EXPECT_GT(r.states_explored, 0);
  EXPECT_EQ(r.depth_reached, 3);  // the fixture declares depth 3
  EXPECT_TRUE(r.counterexample.empty());
  // The report must satisfy the acc-lint-v1 schema even with zero findings.
  const std::vector<std::string> problems =
      lint::validate_lint_json(r.report.to_json());
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

// Each mutation fixture raises its mapped rule and ONLY its mapped rule —
// the 1:1 mapping is what makes the failing fixtures a rule catalog rather
// than a pile of broken configs.
TEST(VerifyMutations, EachFixtureRaisesExactlyItsRule) {
  for (const char* rule : kVRules) {
    SCOPED_TRACE(rule);
    const VerifyResult r =
        verify_fixture(std::string(rule) + "_bad.json");
    EXPECT_TRUE(r.explored);
    EXPECT_TRUE(r.report.has(rule)) << r.report.to_text();
    EXPECT_FALSE(r.report.clean());
    for (const char* other : kVRules) {
      if (other == rule) continue;
      EXPECT_FALSE(r.report.has(other))
          << rule << " fixture also raised " << other << "\n"
          << r.report.to_text();
    }
    const std::vector<std::string> problems =
        lint::validate_lint_json(r.report.to_json());
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
  }
}

// The first violation in (depth, frontier-order, action-order) is pinned:
// these exact counterexamples are also quoted in docs/static_analysis.md.
TEST(VerifyMutations, CounterexamplesAreTheExpectedActionSequences) {
  const Action feed0{Action::Kind::kFeed, 0};
  const Action step{Action::Kind::kStep, -1};
  const Action run{Action::Kind::kRun, -1};

  const VerifyResult v1 = verify_fixture("V01_bad.json");
  EXPECT_EQ(v1.counterexample, (std::vector<Action>{feed0, run}));

  // phantom_credit breaks credit conservation in the INITIAL state.
  const VerifyResult v2 = verify_fixture("V02_bad.json");
  EXPECT_TRUE(v2.counterexample.empty());
  EXPECT_FALSE(v2.report.clean());

  const VerifyResult v3 = verify_fixture("V03_bad.json");
  EXPECT_EQ(v3.counterexample, (std::vector<Action>{feed0, step}));

  const VerifyResult v4 = verify_fixture("V04_bad.json");
  EXPECT_EQ(v4.counterexample, (std::vector<Action>{feed0, run}));

  // V05 comes from the wake audit, not the exploration: no counterexample.
  const VerifyResult v5 = verify_fixture("V05_bad.json");
  EXPECT_TRUE(v5.counterexample.empty());
  EXPECT_TRUE(v5.report.has("V05")) << v5.report.to_text();

  // midround_reconfig fires on the first in-flight block: feed, then step.
  const VerifyResult v6 = verify_fixture("V06_bad.json");
  EXPECT_EQ(v6.counterexample, (std::vector<Action>{feed0, step}));
}

// Exploration must be byte-identical for any worker count: same report
// JSON, same counterexample, same budget accounting.
TEST(VerifyDeterminism, JobsDoNotChangeTheResult) {
  for (const char* fixture : {"clean.json", "V01_bad.json", "V04_bad.json"}) {
    SCOPED_TRACE(fixture);
    VerifyOptions one;
    one.jobs = 1;
    VerifyOptions four;
    four.jobs = 4;
    const VerifyResult a = verify_fixture(fixture, one);
    const VerifyResult b = verify_fixture(fixture, four);
    EXPECT_EQ(a.report.to_json().dump(), b.report.to_json().dump());
    EXPECT_EQ(a.counterexample, b.counterexample);
    EXPECT_EQ(a.states_explored, b.states_explored);
    EXPECT_EQ(a.depth_reached, b.depth_reached);
    EXPECT_EQ(a.truncated, b.truncated);
  }
}

TEST(VerifyRender, CounterexampleReplaysAgainstAFreshModel) {
  const std::string text = read_fixture("V01_bad.json");
  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const VerifyResult r = verify_config_json(*doc, "V01_bad.json");
  const std::string rendered =
      render_counterexample(*doc, "V01_bad.json", r);
  EXPECT_NE(rendered.find("1. feed s0"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("2. run"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("violates V01"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("trace tail:"), std::string::npos) << rendered;
}

TEST(VerifyRender, CleanReportRendersNothing) {
  const std::string text = read_fixture("clean.json");
  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const VerifyResult r = verify_config_json(*doc, "clean.json");
  EXPECT_TRUE(render_counterexample(*doc, "clean.json", r).empty());
}

TEST(VerifyRender, WakeAuditFindingsHaveNoReplay) {
  const std::string text = read_fixture("V05_bad.json");
  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const VerifyResult r = verify_config_json(*doc, "V05_bad.json");
  ASSERT_TRUE(r.report.has("V05"));
  // The exploration found nothing; replaying an empty action sequence
  // reproduces nothing, so no misleading "INITIAL state" banner appears.
  EXPECT_TRUE(render_counterexample(*doc, "V05_bad.json", r).empty());
}

// Suppressing a fired V rule (by ID or catalog name) un-gates the run but
// keeps the finding in the machine-readable document, marked suppressed —
// same contract as lint-rule suppression.
TEST(VerifySuppression, SuppressedVRuleStaysVisibleInJson) {
  for (const char* key : {"V01", "verify-deadlock"}) {
    SCOPED_TRACE(key);
    lint::LintOptions lint_opts;
    lint_opts.suppress = {key};
    const VerifyResult r = verify_fixture("V01_bad.json", {}, lint_opts);
    EXPECT_TRUE(r.report.clean()) << r.report.to_text();
    EXPECT_TRUE(r.report.has("V01"));
    const json::Value doc = r.report.to_json();
    const json::Value* diags = doc.find("diagnostics");
    ASSERT_NE(diags, nullptr);
    bool found = false;
    for (const json::Value& d : diags->as_array()) {
      if (d.find("rule")->as_string() != "V01") continue;
      found = true;
      const json::Value* sup = d.find("suppressed");
      ASSERT_NE(sup, nullptr);
      EXPECT_TRUE(sup->is_bool() && sup->as_bool());
    }
    EXPECT_TRUE(found);
  }
}

// V05 over the shared randomized-chain corpus: the production components'
// next_event horizons must be honest under every shape the differential
// stepper suites already stress — fault-free and fault-injected alike.
TEST(WakeAuditCorpus, RandomChainsAuditCleanly) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const bool with_fault = trial % 2 == 1;
    const sim::testsupport::Params p =
        sim::testsupport::random_params(rng, with_fault);
    SCOPED_TRACE("trial " + std::to_string(trial) +
                 (with_fault ? " (faulted)" : " (fault-free)"));
    sim::testsupport::Scenario s(p);
    WakeAudit audit(s.sys);
    (void)audit.run_until([] { return false; }, 6000);
    EXPECT_TRUE(audit.violations().empty())
        << audit.violations().size() << " missed-wake hazards, first at slot "
        << audit.violations().front().slot << " cycle "
        << audit.violations().front().at;
  }
}

// ...and the audit is not vacuous: planting the canonical lying component
// into one of those same scenarios is caught within a handful of cycles.
TEST(WakeAuditCorpus, AuditCatchesAPlantedLyingHorizon) {
  sim::testsupport::Params p;
  sim::testsupport::Scenario s(p);
  s.sys.add<LyingClock>();
  const std::size_t liar = s.sys.num_components() - 1;
  WakeAudit audit(s.sys);
  (void)audit.run_until([] { return false; }, 50);
  ASSERT_FALSE(audit.violations().empty());
  EXPECT_EQ(audit.violations().front().slot, liar);
}

}  // namespace
}  // namespace acc::verify
