// Unit tests for the metrics registry primitives: handle semantics (null =
// no-op), bucket layout helpers, and the two snapshot renderings the
// differential suite and the RunReport build on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace acc::obs {
namespace {

TEST(Metrics, NullHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  // Must not crash and must not observe anything.
  c.add();
  c.add(41);
  g.set(7);
  h.observe(123);
}

TEST(Metrics, MakeHelpersTolerateNullRegistry) {
  EXPECT_FALSE(make_counter(nullptr, "a").enabled());
  EXPECT_FALSE(make_gauge(nullptr, "b").enabled());
  EXPECT_FALSE(make_histogram(nullptr, "c", {1, 2}).enabled());

  MetricsRegistry reg;
  EXPECT_TRUE(make_counter(&reg, "a").enabled());
  EXPECT_TRUE(make_gauge(&reg, "b").enabled());
  EXPECT_TRUE(make_histogram(&reg, "c", {1, 2}).enabled());
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter c = reg.counter("x.total");
  c.add();
  c.add(9);
  const MetricCell* cell = reg.find("x.total");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->kind, MetricKind::kCounter);
  EXPECT_EQ(cell->value, 10);
}

TEST(Metrics, GaugeTracksLastAndMax) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("x.level");
  g.set(5);
  g.set(12);
  g.set(3);
  const MetricCell* cell = reg.find("x.level");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->value, 3);
  EXPECT_EQ(cell->max, 12);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("x.wait", {10, 20, 40});
  h.observe(1);    // <= 10
  h.observe(10);   // <= 10 (bounds are inclusive upper limits)
  h.observe(11);   // <= 20
  h.observe(100);  // overflow
  const MetricCell* cell = reg.find("x.wait");
  ASSERT_NE(cell, nullptr);
  ASSERT_EQ(cell->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(cell->counts[0], 2);
  EXPECT_EQ(cell->counts[1], 1);
  EXPECT_EQ(cell->counts[2], 0);
  EXPECT_EQ(cell->counts[3], 1);
  EXPECT_EQ(cell->count, 4);
  EXPECT_EQ(cell->sum, 122);
  EXPECT_EQ(cell->max, 100);
}

TEST(Metrics, OccupancyBoundsAreQuartiles) {
  EXPECT_EQ(occupancy_bounds(16), (std::vector<std::int64_t>{4, 8, 12, 16}));
  // Tiny capacities deduplicate instead of emitting equal bounds.
  const std::vector<std::int64_t> tiny = occupancy_bounds(2);
  for (std::size_t i = 1; i < tiny.size(); ++i)
    EXPECT_LT(tiny[i - 1], tiny[i]);
  EXPECT_EQ(tiny.back(), 2);
}

TEST(Metrics, Pow2BoundsLadder) {
  EXPECT_EQ(pow2_bounds(16, 4),
            (std::vector<std::int64_t>{16, 32, 64, 128}));
}

TEST(Metrics, SnapshotTextIsSortedAndStable) {
  MetricsRegistry reg;
  // Register out of order; the snapshot must sort by ID so two registries
  // built in different wiring orders still compare equal.
  reg.counter("z.last").add(1);
  reg.gauge("a.first").set(2);
  const std::string snap = reg.snapshot_text();
  EXPECT_LT(snap.find("a.first"), snap.find("z.last"));
  EXPECT_EQ(snap, reg.snapshot_text());  // rendering is pure
}

TEST(Metrics, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(4);
  reg.histogram("h", {10}).observe(5);
  const json::Value v = reg.snapshot_json();
  const json::Value* c = v.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->at("kind").as_string(), "counter");
  EXPECT_EQ(c->at("value").as_int(), 3);
  const json::Value* g = v.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->at("kind").as_string(), "gauge");
  EXPECT_EQ(g->at("max").as_int(), 4);
  const json::Value* h = v.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->at("kind").as_string(), "histogram");
  EXPECT_EQ(h->at("count").as_int(), 1);
  ASSERT_EQ(h->at("buckets").as_array().size(), 2u);  // bound + overflow
}

}  // namespace
}  // namespace acc::obs
