// Differential metrics-determinism suite (ISSUE 7 tentpole proof): a
// metrics snapshot is part of the simulation's observable outcome, so it
// must be bit-identical across the three steppers (kDense / kGlobalHorizon
// / kWakeList) on the same workload, and independent of how many worker
// threads evaluate a campaign (--jobs). The suites draw their random system
// shapes from tests/support/random_chain.hpp — the SAME population the
// stepper-equivalence suite proves cycle-exact — fault-free and with all
// four fault sites armed.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

#include "app/fault_campaign.hpp"
#include "app/pal_system.hpp"
#include "obs/metrics.hpp"
#include "sim/system.hpp"

#include "../support/random_chain.hpp"

namespace acc::sim {
namespace {

using testsupport::Params;
using testsupport::Scenario;
using testsupport::random_params;

std::string run_snapshot(const Params& p, StepperKind kind) {
  obs::MetricsRegistry reg;
  Scenario s(p, &reg);
  s.sys.run_with(kind, p.run_cycles);
  return reg.snapshot_text();
}

TEST(MetricsEquivalence, RandomChainsFaultFree) {
  std::mt19937_64 rng(0x0B5);  // fixed seed: the suite is reproducible
  for (int iter = 0; iter < 8; ++iter) {
    const Params p = random_params(rng, /*with_fault=*/false);
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const std::string dense = run_snapshot(p, StepperKind::kDense);
    const std::string global = run_snapshot(p, StepperKind::kGlobalHorizon);
    const std::string wake = run_snapshot(p, StepperKind::kWakeList);
    EXPECT_EQ(dense, global);
    EXPECT_EQ(dense, wake);
    // Not vacuous: the chain must actually move data through the
    // instrumented interaction points.
    EXPECT_NE(dense.find("gateway.c.entry.admissions"), std::string::npos);
    EXPECT_NE(dense.find("ring.data.delivered"), std::string::npos);
    EXPECT_NE(dense.find("cfifo.in.pushed"), std::string::npos);
  }
}

TEST(MetricsEquivalence, RandomChainsWithFaults) {
  std::mt19937_64 rng(0x0B6);
  for (int iter = 0; iter < 6; ++iter) {
    const Params p = random_params(rng, /*with_fault=*/true);
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const std::string dense = run_snapshot(p, StepperKind::kDense);
    const std::string global = run_snapshot(p, StepperKind::kGlobalHorizon);
    const std::string wake = run_snapshot(p, StepperKind::kWakeList);
    EXPECT_EQ(dense, global);
    EXPECT_EQ(dense, wake);
    // All four fault sites are armed, so their counters must be registered
    // (activation itself is probabilistic per shape, but the site rows are
    // present and bit-compared above).
    EXPECT_NE(dense.find("fault.ring_link.consults"), std::string::npos);
    EXPECT_NE(dense.find("fault.config_bus.consults"), std::string::npos);
    EXPECT_NE(dense.find("fault.exit_notify.consults"), std::string::npos);
    EXPECT_NE(dense.find("fault.credit_withhold.consults"),
              std::string::npos);
  }
}

TEST(MetricsEquivalence, AttachingRegistryDoesNotPerturbTheRun) {
  // Metrics are observational only: wiring the registry must not change a
  // single event. The full trace is the strictest witness we have.
  std::mt19937_64 rng(0x0B7);
  for (int iter = 0; iter < 4; ++iter) {
    const Params p = random_params(rng, /*with_fault=*/iter % 2 == 1);
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Scenario bare(p);
    bare.sys.run_with(StepperKind::kWakeList, p.run_cycles);
    obs::MetricsRegistry reg;
    Scenario observed(p, &reg);
    observed.sys.run_with(StepperKind::kWakeList, p.run_cycles);
    EXPECT_EQ(bare.trace.to_csv(), observed.trace.to_csv());
    EXPECT_EQ(bare.sys.now(), observed.sys.now());
    EXPECT_EQ(bare.sink->received(), observed.sink->received());
  }
}

TEST(MetricsEquivalence, PalDecoderSnapshotAcrossSteppers) {
  const auto snapshot = [](StepperKind kind) {
    obs::MetricsRegistry reg;
    app::PalSimConfig cfg;
    cfg.input_samples = 1 << 11;
    cfg.stepper = kind;
    cfg.metrics = &reg;
    (void)app::run_pal_decoder(cfg);
    return reg.snapshot_text();
  };
  const std::string dense = snapshot(StepperKind::kDense);
  const std::string global = snapshot(StepperKind::kGlobalHorizon);
  const std::string wake = snapshot(StepperKind::kWakeList);
  EXPECT_EQ(dense, global);
  EXPECT_EQ(dense, wake);
  EXPECT_NE(dense.find("tile.cordic.samples"), std::string::npos);
  EXPECT_NE(dense.find("sink.dac.left.received"), std::string::npos);
}

TEST(MetricsEquivalence, CampaignSnapshotsIndependentOfJobs) {
  // Each campaign point owns a private registry, so the per-point snapshot
  // must be byte-identical whether the points run sequentially or on a
  // thread pool.
  app::FaultCampaignConfig cfg;
  cfg.pal.input_samples = 1 << 11;
  cfg.jobs = 1;
  const app::FaultCampaignResult seq = app::run_fault_campaign(cfg);
  cfg.jobs = 3;
  const app::FaultCampaignResult par = app::run_fault_campaign(cfg);
  ASSERT_EQ(seq.points.size(), par.points.size());
  for (std::size_t i = 0; i < seq.points.size(); ++i) {
    SCOPED_TRACE("point " + seq.points[i].level.label);
    EXPECT_FALSE(seq.points[i].metrics_snapshot.empty());
    EXPECT_EQ(seq.points[i].metrics_snapshot, par.points[i].metrics_snapshot);
  }
}

}  // namespace
}  // namespace acc::sim
