// RunReport content tests: the PAL decoder's report must validate against
// the pinned schema, and — the conformance theorem rendered as data — every
// observed per-stream maximum of a fault-free run must sit within its
// analytic bound (margin >= 0). Also covers sharing::observe_streams, the
// trace walker that extracts the observed maxima.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "app/pal_report.hpp"
#include "app/pal_system.hpp"
#include "common/bench_schema.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sharing/report.hpp"
#include "sim/trace.hpp"

namespace acc {
namespace {

struct PalRun {
  app::PalSimConfig cfg;
  app::PalSimResult res;
  obs::MetricsRegistry metrics;
  sim::TraceLog trace;
};

void run_small_pal(PalRun& r, sim::StepperKind kind,
                   std::size_t input_samples = 1 << 11) {
  r.cfg.input_samples = input_samples;
  r.cfg.stepper = kind;
  r.cfg.metrics = &r.metrics;
  r.cfg.trace = &r.trace;
  r.res = app::run_pal_decoder(r.cfg);
}

TEST(RunReport, PalReportValidatesAgainstSchema) {
  PalRun r;
  run_small_pal(r, sim::StepperKind::kWakeList);
  const json::Value doc = app::pal_run_report(r.cfg, r.res, r.metrics,
                                              &r.trace);
  const std::vector<std::string> problems = validate_run_report(doc);
  EXPECT_TRUE(problems.empty());
  for (const std::string& p : problems) ADD_FAILURE() << p;
}

TEST(RunReport, FaultFreeMarginsAreNonNegative) {
  PalRun r;
  // Long enough that every stream completes several eta~2672-sample stage-1
  // blocks (a 2^11-sample run finishes zero).
  run_small_pal(r, sim::StepperKind::kWakeList, 1 << 13);
  const json::Value doc = app::pal_run_report(r.cfg, r.res, r.metrics,
                                              &r.trace);
  const json::Array& streams = doc.at("streams").as_array();
  ASSERT_EQ(streams.size(), 4u);  // four PAL streams
  for (const json::Value& row : streams) {
    SCOPED_TRACE("stream " + row.at("stream").as_string());
    // The run is long enough that every stream completes blocks — the
    // margin rows must join real observations, not trivial -1 placeholders.
    EXPECT_GT(row.at("blocks").as_int(), 0);
    EXPECT_GE(row.at("service").at("observed").as_int(), 0);
    EXPECT_GE(row.at("service").at("margin").as_int(), 0);
    EXPECT_GE(row.at("spacing").at("margin").as_int(), 0);
  }
}

TEST(RunReport, ByteIdenticalAcrossSteppers) {
  // The report is derived entirely from simulation state, so the rendered
  // bytes are part of the stepper-equivalence contract.
  PalRun dense;
  run_small_pal(dense, sim::StepperKind::kDense);
  PalRun wake;
  run_small_pal(wake, sim::StepperKind::kWakeList);
  const std::string a =
      app::pal_run_report_json(dense.cfg, dense.res, dense.metrics,
                               &dense.trace);
  std::string b = app::pal_run_report_json(wake.cfg, wake.res, wake.metrics,
                                           &wake.trace);
  // The stepper field itself legitimately differs; normalize it away.
  const std::string from = "\"stepper\": \"wake-list\"";
  const std::string to = "\"stepper\": \"dense\"";
  const std::size_t at = b.find(from);
  ASSERT_NE(at, std::string::npos);
  b.replace(at, from.size(), to);
  EXPECT_EQ(a, b);
}

TEST(RunReport, NullTraceYieldsPlaceholderRows) {
  PalRun r;
  run_small_pal(r, sim::StepperKind::kWakeList);
  const json::Value doc = app::pal_run_report(r.cfg, r.res, r.metrics,
                                              /*trace=*/nullptr);
  EXPECT_TRUE(validate_run_report(doc).empty());
  EXPECT_EQ(doc.at("trace").at("events").as_int(), 0);
  for (const json::Value& row : doc.at("streams").as_array()) {
    // No trace = nothing observed; margin degrades to the full bound.
    EXPECT_EQ(row.at("service").at("observed").as_int(), -1);
    EXPECT_EQ(row.at("service").at("margin").as_int(),
              row.at("service").at("bound").as_int());
  }
}

TEST(RunReport, ObserveStreamsMatchesHandBuiltTrace) {
  // A hand-built trace with known service times and gaps: stream 0 has two
  // blocks (admit 100 -> done 150, admit 200 -> done 270) so max service is
  // 70 and the done-to-done spacing is 120.
  app::PalSimConfig cfg;
  cfg.input_samples = 1 << 11;
  const sharing::SharedSystemSpec spec = app::make_system_spec(cfg);
  sim::TraceLog trace;
  trace.record(100, "entry", "admit", 0);
  trace.record(150, "entry", "block.done", 0);
  trace.record(200, "entry", "admit", 0);
  trace.record(270, "entry", "block.done", 0);
  const std::vector<std::int64_t> etas = {16, 16, 16, 16};
  const std::vector<sharing::ObservedStream> obs =
      sharing::observe_streams(spec, etas, trace);
  ASSERT_EQ(obs.size(), 4u);
  EXPECT_EQ(obs[0].blocks, 2);
  EXPECT_EQ(obs[0].max_service, 70);
  EXPECT_EQ(obs[0].max_spacing, 120);
  // Streams with no events stay at the -1 sentinels.
  EXPECT_EQ(obs[1].blocks, 0);
  EXPECT_EQ(obs[1].max_service, -1);
  EXPECT_EQ(obs[1].max_spacing, -1);
  // Bounds come from the analysis and are positive for a sane spec.
  for (const sharing::ObservedStream& s : obs) {
    EXPECT_GT(s.service_bound, 0);
    EXPECT_GT(s.spacing_bound, 0);
  }
}

}  // namespace
}  // namespace acc
