#include "radio/signal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "radio/metrics.hpp"

namespace acc::radio {
namespace {

TEST(RenderTones, SingleToneAmplitudeAndFrequency) {
  const Tone t{100.0, 0.8, 0.0};
  const std::vector<double> s = render_tones({&t, 1}, 8000.0, 4000);
  EXPECT_NEAR(goertzel_power(s, 8000.0, 100.0), 0.5 * 0.8 * 0.8, 1e-3);
  double peak = 0.0;
  for (double v : s) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 0.8, 1e-3);
}

TEST(RenderTones, SumsMultipleTones) {
  const std::vector<Tone> ts{{100.0, 0.5}, {300.0, 0.25}};
  const std::vector<double> s = render_tones(ts, 8000.0, 8000);
  EXPECT_NEAR(goertzel_power(s, 8000.0, 100.0), 0.5 * 0.25, 1e-3);
  EXPECT_NEAR(goertzel_power(s, 8000.0, 300.0), 0.5 * 0.0625, 1e-3);
}

TEST(FmModulate, ConstantEnvelope) {
  const Tone t{50.0, 1.0};
  const std::vector<double> audio = render_tones({&t, 1}, 8000.0, 2000);
  const std::vector<cplx> fm = fm_modulate(audio, 1000.0, 400.0, 8000.0, 0.7);
  for (const cplx& s : fm) EXPECT_NEAR(std::abs(s), 0.7, 1e-9);
}

TEST(FmModulate, UnmodulatedCarrierSitsAtCarrierFrequency) {
  const std::vector<double> silence(4096, 0.0);
  const std::vector<cplx> fm = fm_modulate(silence, 1000.0, 400.0, 8000.0);
  // Per-sample phase advance must be 2*pi*1000/8000.
  for (std::size_t i = 1; i < 100; ++i) {
    const double dphi = std::arg(fm[i] * std::conj(fm[i - 1]));
    EXPECT_NEAR(dphi, 2.0 * M_PI * 1000.0 / 8000.0, 1e-9);
  }
}

TEST(PalStereo, CompositeContainsBothCarriers) {
  PalStereoConfig cfg;
  cfg.sample_rate = 512000.0;
  cfg.carrier1_hz = 120000.0;
  cfg.carrier2_hz = 180000.0;
  cfg.deviation_hz = 2000.0;
  const Tone l{400.0, 0.9};
  const Tone r{700.0, 0.9};
  const StereoSource src =
      render_stereo_tones({&l, 1}, {&r, 1}, cfg.sample_rate, 16384);
  const std::vector<cplx> bb = synthesize_pal_stereo(cfg, src);
  ASSERT_EQ(bb.size(), 16384u);
  // Spectral energy concentrates near both carriers: probe via Goertzel on
  // the real part (each carrier contributes half its power there).
  std::vector<double> re(bb.size());
  for (std::size_t i = 0; i < bb.size(); ++i) re[i] = bb[i].real();
  const double p1 = goertzel_power(re, cfg.sample_rate, cfg.carrier1_hz);
  const double p2 = goertzel_power(re, cfg.sample_rate, cfg.carrier2_hz);
  const double off = goertzel_power(re, cfg.sample_rate, 60000.0);
  EXPECT_GT(p1, 100 * off);
  EXPECT_GT(p2, 100 * off);
}

TEST(PalStereo, MismatchedChannelLengthsRejected) {
  PalStereoConfig cfg;
  StereoSource src;
  src.left.resize(10);
  src.right.resize(9);
  EXPECT_THROW((void)synthesize_pal_stereo(cfg, src), acc::precondition_error);
}

}  // namespace
}  // namespace acc::radio
