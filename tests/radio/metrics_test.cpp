#include "radio/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace acc::radio {
namespace {

std::vector<double> sine(double f, double fs, std::size_t n, double amp = 1.0) {
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = amp * std::sin(2.0 * M_PI * f * static_cast<double>(i) / fs);
  return s;
}

TEST(Goertzel, UnitSineReportsHalfPower) {
  const auto s = sine(440.0, 44100.0, 44100);
  EXPECT_NEAR(goertzel_power(s, 44100.0, 440.0), 0.5, 1e-4);
}

TEST(Goertzel, OffFrequencyNearZero) {
  const auto s = sine(440.0, 44100.0, 44100);
  EXPECT_LT(goertzel_power(s, 44100.0, 1234.0), 1e-4);
}

TEST(Goertzel, EmptySignalIsZero) {
  EXPECT_EQ(goertzel_power({}, 44100.0, 440.0), 0.0);
}

TEST(MeanPower, MatchesAnalyticSine) {
  const auto s = sine(100.0, 8000.0, 8000, 0.6);
  EXPECT_NEAR(mean_power(s), 0.5 * 0.36, 1e-4);
}

TEST(ToneSnr, CleanToneVeryHigh) {
  const auto s = sine(440.0, 44100.0, 44100);
  EXPECT_GT(tone_snr_db(s, 44100.0, 440.0), 40.0);
}

TEST(ToneSnr, KnownNoiseLevel) {
  SplitMix64 rng(3);
  auto s = sine(440.0, 44100.0, 44100);
  // Add white noise with power ~1/100 of the tone's 0.5.
  const double sigma = std::sqrt(0.005);
  for (double& v : s)
    v += sigma * (rng.uniform01() + rng.uniform01() + rng.uniform01() +
                  rng.uniform01() - 2.0) *
         1.7320508;  // ~N(0,1) via CLT, scaled
  const double snr = tone_snr_db(s, 44100.0, 440.0);
  EXPECT_NEAR(snr, 20.0, 2.0);
}

TEST(ToneSnr, SkipDropsTransient) {
  auto s = sine(440.0, 44100.0, 44100);
  // Corrupt the first 1000 samples badly.
  for (std::size_t i = 0; i < 1000; ++i) s[i] = 5.0;
  EXPECT_LT(tone_snr_db(s, 44100.0, 440.0), 10.0);
  EXPECT_GT(tone_snr_db(s, 44100.0, 440.0, 1000), 40.0);
}

TEST(RemoveDc, CentersSignal) {
  std::vector<double> s{1.0, 2.0, 3.0};
  remove_dc(s);
  EXPECT_NEAR(s[0], -1.0, 1e-12);
  EXPECT_NEAR(s[1], 0.0, 1e-12);
  EXPECT_NEAR(s[2], 1.0, 1e-12);
}

}  // namespace
}  // namespace acc::radio
