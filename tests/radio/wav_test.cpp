#include "radio/wav.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace acc::radio {
namespace {

TEST(Wav, HeaderFieldsCorrect) {
  const std::vector<double> l(100, 0.0);
  const std::vector<double> r(100, 0.0);
  const auto bytes = encode_wav_stereo(l, r, 44100);
  EXPECT_EQ(bytes.size(), 44u + 100 * 4);
  const WavInfo info = parse_wav_header(bytes);
  ASSERT_TRUE(info.valid);
  EXPECT_EQ(info.channels, 2);
  EXPECT_EQ(info.sample_rate, 44100u);
  EXPECT_EQ(info.bits_per_sample, 16);
  EXPECT_EQ(info.num_frames, 100u);
}

TEST(Wav, SamplesQuantizedAndInterleaved) {
  const std::vector<double> l{1.0, -1.0};
  const std::vector<double> r{0.0, 0.5};
  const auto bytes = encode_wav_stereo(l, r, 8000);
  auto sample = [&](std::size_t idx) {
    const std::size_t off = 44 + 2 * idx;
    return static_cast<std::int16_t>(bytes[off] |
                                     (static_cast<std::uint16_t>(bytes[off + 1])
                                      << 8));
  };
  EXPECT_EQ(sample(0), 32767);   // L0
  EXPECT_EQ(sample(1), 0);       // R0
  EXPECT_EQ(sample(2), -32767);  // L1
  EXPECT_NEAR(sample(3), 16384, 1);  // R1
}

TEST(Wav, ClipsOutOfRange) {
  const std::vector<double> l{3.0};
  const std::vector<double> r{-7.5};
  const auto bytes = encode_wav_stereo(l, r, 8000);
  const auto s0 = static_cast<std::int16_t>(
      bytes[44] | (static_cast<std::uint16_t>(bytes[45]) << 8));
  const auto s1 = static_cast<std::int16_t>(
      bytes[46] | (static_cast<std::uint16_t>(bytes[47]) << 8));
  EXPECT_EQ(s0, 32767);
  EXPECT_EQ(s1, -32767);
}

TEST(Wav, MismatchedChannelsRejected) {
  const std::vector<double> l(3, 0.0);
  const std::vector<double> r(4, 0.0);
  EXPECT_THROW((void)encode_wav_stereo(l, r, 8000), precondition_error);
}

TEST(Wav, ParseRejectsGarbage) {
  std::vector<std::uint8_t> junk(44, 0x5A);
  EXPECT_FALSE(parse_wav_header(junk).valid);
  EXPECT_FALSE(parse_wav_header({junk.data(), 10}).valid);
}

TEST(Wav, FileRoundTrip) {
  const std::string path = "/tmp/acc_wav_test.wav";
  std::vector<double> l(50);
  std::vector<double> r(50);
  for (int i = 0; i < 50; ++i) {
    l[i] = std::sin(0.3 * i) * 0.5;
    r[i] = std::cos(0.3 * i) * 0.5;
  }
  ASSERT_TRUE(write_wav_stereo(path, l, r, 22050));
  std::ifstream f(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  const WavInfo info = parse_wav_header(bytes);
  ASSERT_TRUE(info.valid);
  EXPECT_EQ(info.num_frames, 50u);
  EXPECT_EQ(info.sample_rate, 22050u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acc::radio
