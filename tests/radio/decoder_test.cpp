#include "radio/decoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "radio/metrics.hpp"

namespace acc::radio {
namespace {

/// Scaled-down broadcast (laptop-friendly) that keeps the paper's 64:1
/// input-to-audio rate ratio and two 8:1 down-sampling stages.
struct Scenario {
  PalStereoConfig pal;
  DecoderConfig dec;
  double tone_left = 400.0;
  double tone_right = 700.0;

  Scenario() {
    pal.sample_rate = 512000.0;
    pal.carrier1_hz = 120000.0;
    pal.carrier2_hz = 180000.0;
    pal.deviation_hz = 15000.0;
    dec.sample_rate = pal.sample_rate;
    dec.carrier1_hz = pal.carrier1_hz;
    dec.carrier2_hz = pal.carrier2_hz;
    dec.deviation_hz = pal.deviation_hz;
  }
};

StereoDecodeResult run_decode(const Scenario& sc, std::size_t n) {
  const Tone l{sc.tone_left, 0.8};
  const Tone r{sc.tone_right, 0.8};
  const StereoSource src =
      render_stereo_tones({&l, 1}, {&r, 1}, sc.pal.sample_rate, n);
  const std::vector<cplx> bb = synthesize_pal_stereo(sc.pal, src);
  return decode_stereo(bb, sc.dec);
}

TEST(ReferenceDecoder, RecoversBothTones) {
  Scenario sc;
  const StereoDecodeResult res = run_decode(sc, 1 << 16);
  ASSERT_GT(res.left.size(), 500u);
  EXPECT_NEAR(res.audio_rate, 8000.0, 1e-9);
  std::vector<double> left = res.left;
  std::vector<double> right = res.right;
  remove_dc(left);
  remove_dc(right);
  const std::size_t skip = 128;  // two FIR warmups at audio rate
  EXPECT_GT(tone_snr_db(left, res.audio_rate, sc.tone_left, skip), 20.0);
  EXPECT_GT(tone_snr_db(right, res.audio_rate, sc.tone_right, skip), 20.0);
}

TEST(ReferenceDecoder, StereoSeparation) {
  Scenario sc;
  const StereoDecodeResult res = run_decode(sc, 1 << 16);
  std::vector<double> left = res.left;
  std::vector<double> right = res.right;
  remove_dc(left);
  remove_dc(right);
  const std::size_t skip = 128;
  // The right tone must be much weaker in the left channel and vice versa.
  const auto body = [&](const std::vector<double>& ch) {
    return std::span<const double>(ch).subspan(skip);
  };
  const double l_own = goertzel_power(body(left), res.audio_rate, sc.tone_left);
  const double l_leak =
      goertzel_power(body(left), res.audio_rate, sc.tone_right);
  const double r_own =
      goertzel_power(body(right), res.audio_rate, sc.tone_right);
  const double r_leak =
      goertzel_power(body(right), res.audio_rate, sc.tone_left);
  EXPECT_GT(l_own, 30.0 * l_leak);
  EXPECT_GT(r_own, 30.0 * r_leak);
}

TEST(ReferenceDecoder, AmplitudeApproximatelyPreserved) {
  Scenario sc;
  const StereoDecodeResult res = run_decode(sc, 1 << 16);
  std::vector<double> right = res.right;
  remove_dc(right);
  const double p = goertzel_power(
      std::span<const double>(right).subspan(128), res.audio_rate,
      sc.tone_right);
  // Input amplitude 0.8 -> power 0.32; allow filter droop.
  EXPECT_NEAR(p, 0.32, 0.12);
}

TEST(MixToBaseband, ShiftsCarrierToDc) {
  // A pure carrier mixed by its own frequency becomes DC.
  const std::vector<double> silence(4096, 0.0);
  const std::vector<cplx> carrier = fm_modulate(silence, 5000.0, 0.0, 64000.0);
  const std::vector<cplx> mixed = mix_to_baseband(carrier, 5000.0, 64000.0);
  for (std::size_t i = 1; i < mixed.size(); ++i) {
    EXPECT_NEAR(std::abs(mixed[i] - mixed[i - 1]), 0.0, 1e-9);
  }
}

TEST(FirDecimateReference, CountsAndDelays) {
  std::vector<cplx> in(64, cplx{1.0, 0.0});
  const std::vector<double> taps{0.25, 0.25, 0.25, 0.25};
  const std::vector<cplx> out = fir_decimate(in, taps, 8);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_NEAR(out.back().real(), 1.0, 1e-12);
}

TEST(FmDiscriminateReference, RecoversInstantaneousFrequency) {
  const std::vector<double> silence(256, 0.0);
  const std::vector<cplx> carrier = fm_modulate(silence, 1000.0, 0.0, 16000.0);
  const std::vector<double> f = fm_discriminate(carrier);
  for (std::size_t i = 2; i < f.size(); ++i)
    EXPECT_NEAR(f[i], 2.0 * 1000.0 / 16000.0, 1e-9);
}

}  // namespace
}  // namespace acc::radio
