#include "dataflow/mcr.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace acc::df {
namespace {

TEST(Mcr, SingleCycle) {
  // A -> B (w=2, t=0), B -> A (w=3, t=1): ratio (2+3)/1 = 5.
  std::vector<RatioEdge> edges{{0, 1, 2, 0}, {1, 0, 3, 1}};
  const McrResult r = max_cycle_ratio(2, edges);
  ASSERT_FALSE(r.zero_token_cycle);
  ASSERT_FALSE(r.acyclic);
  EXPECT_EQ(r.ratio, Rational(5));
  EXPECT_EQ(r.critical_cycle.size(), 2u);
}

TEST(Mcr, PicksMaximumOfTwoCycles) {
  // Self-loops: node 0 ratio 7/2, node 1 ratio 4/1.
  std::vector<RatioEdge> edges{{0, 0, 7, 2}, {1, 1, 4, 1}};
  const McrResult r = max_cycle_ratio(2, edges);
  EXPECT_EQ(r.ratio, Rational(4));
}

TEST(Mcr, FractionalRatioIsExact) {
  std::vector<RatioEdge> edges{{0, 1, 3, 1}, {1, 2, 4, 2}, {2, 0, 6, 4}};
  const McrResult r = max_cycle_ratio(3, edges);
  EXPECT_EQ(r.ratio, Rational(13, 7));
}

TEST(Mcr, ZeroTokenCycleFlagged) {
  std::vector<RatioEdge> edges{{0, 1, 1, 0}, {1, 0, 1, 0}};
  const McrResult r = max_cycle_ratio(2, edges);
  EXPECT_TRUE(r.zero_token_cycle);
  EXPECT_EQ(r.critical_cycle.size(), 2u);
}

TEST(Mcr, AcyclicGraphFlagged) {
  std::vector<RatioEdge> edges{{0, 1, 5, 1}, {1, 2, 5, 0}};
  const McrResult r = max_cycle_ratio(3, edges);
  EXPECT_TRUE(r.acyclic);
}

TEST(Mcr, SharedNodeCycles) {
  // Two cycles through node 0: 0->1->0 ratio 10/2=5, 0->2->0 ratio 9/1=9.
  std::vector<RatioEdge> edges{
      {0, 1, 5, 1}, {1, 0, 5, 1}, {0, 2, 4, 0}, {2, 0, 5, 1}};
  const McrResult r = max_cycle_ratio(3, edges);
  EXPECT_EQ(r.ratio, Rational(9));
}

TEST(Mcr, InvalidNodeThrows) {
  std::vector<RatioEdge> edges{{0, 5, 1, 1}};
  EXPECT_THROW((void)max_cycle_ratio(2, edges), acc::precondition_error);
}

// Property: the reported ratio is an upper bound for every simple cycle we
// can find by brute force in small random graphs, and is achieved by the
// reported critical cycle.
TEST(McrProperty, RandomGraphsBruteForceAgreement) {
  SplitMix64 rng(0xC0FFEE);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int32_t n = static_cast<std::int32_t>(rng.uniform(2, 5));
    std::vector<RatioEdge> edges;
    const int m = static_cast<int>(rng.uniform(n, 3 * n));
    for (int i = 0; i < m; ++i) {
      edges.push_back(RatioEdge{static_cast<std::int32_t>(rng.uniform(0, n - 1)),
                                static_cast<std::int32_t>(rng.uniform(0, n - 1)),
                                rng.uniform(0, 9), rng.uniform(1, 4)});
    }
    const McrResult r = max_cycle_ratio(n, edges);
    ASSERT_FALSE(r.zero_token_cycle);  // all tokens >= 1 by construction
    if (r.acyclic) continue;

    // Critical cycle achieves the ratio.
    std::int64_t w = 0;
    std::int64_t t = 0;
    for (std::int32_t eid : r.critical_cycle) {
      w += edges[eid].weight;
      t += edges[eid].tokens;
    }
    EXPECT_EQ(Rational(w, t), r.ratio);

    // Brute force: enumerate cycles up to length n via DFS.
    Rational best(0);
    bool found = false;
    std::vector<std::int32_t> path;
    std::function<void(std::int32_t, std::int32_t, std::int64_t, std::int64_t)>
        dfs = [&](std::int32_t start, std::int32_t node, std::int64_t cw,
                  std::int64_t ct) {
          if (path.size() > static_cast<std::size_t>(n)) return;
          for (std::size_t i = 0; i < edges.size(); ++i) {
            if (edges[i].src != node) continue;
            if (edges[i].dst == start) {
              const Rational ratio(cw + edges[i].weight, ct + edges[i].tokens);
              if (!found || ratio > best) best = ratio;
              found = true;
            } else if (edges[i].dst > start) {  // canonical start = min node
              path.push_back(edges[i].dst);
              dfs(start, edges[i].dst, cw + edges[i].weight,
                  ct + edges[i].tokens);
              path.pop_back();
            }
          }
        };
    for (std::int32_t s = 0; s < n; ++s) dfs(s, s, 0, 0);
    ASSERT_TRUE(found);
    EXPECT_EQ(best, r.ratio);
  }
}

}  // namespace
}  // namespace acc::df
