#include "dataflow/repetition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {
namespace {

TEST(Repetition, SimpleMultiRateChain) {
  // A --2:3--> B: r = [3, 2].
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 2, 3, 0);
  const RepetitionVector rv = compute_repetition_vector(g);
  ASSERT_TRUE(rv.consistent);
  EXPECT_EQ(rv.firings[a], 3);
  EXPECT_EQ(rv.firings[b], 2);
}

TEST(Repetition, HomogeneousGraphIsAllOnes) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const ActorId c = g.add_sdf_actor("C", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, c, 1, 1, 0);
  g.add_sdf_edge(c, a, 1, 1, 2);
  const RepetitionVector rv = compute_repetition_vector(g);
  ASSERT_TRUE(rv.consistent);
  EXPECT_EQ(rv.firings, (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(Repetition, InconsistentCycleDetected) {
  // A --1:1--> B --1:1--> A but with a 2:1 edge closing the loop: no
  // positive solution exists.
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 2, 1, 0);
  const RepetitionVector rv = compute_repetition_vector(g);
  EXPECT_FALSE(rv.consistent);
}

TEST(Repetition, CsdfUsesPhaseSums) {
  // CSDF actor A with phases producing <1,0>; B consumes 1 per firing.
  // One cycle of A (2 firings) produces 1 token => r_cycles = [1, 1] scaled:
  // A: 1 cycle = 2 firings, B: 1 firing.
  Graph g;
  const ActorId a = g.add_actor("A", {1, 1});
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_edge(a, b, {1, 0}, {1}, 0);
  const RepetitionVector rv = compute_repetition_vector(g);
  ASSERT_TRUE(rv.consistent);
  EXPECT_EQ(rv.cycles[a], 1);
  EXPECT_EQ(rv.firings[a], 2);
  EXPECT_EQ(rv.firings[b], 1);
}

TEST(Repetition, TwoIndependentComponentsScaledSeparately) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const ActorId c = g.add_sdf_actor("C", 1);
  const ActorId d = g.add_sdf_actor("D", 1);
  g.add_sdf_edge(a, b, 4, 2, 0);  // r(a)=1, r(b)=2
  g.add_sdf_edge(c, d, 5, 1, 0);  // r(c)=1, r(d)=5
  const RepetitionVector rv = compute_repetition_vector(g);
  ASSERT_TRUE(rv.consistent);
  EXPECT_EQ(rv.firings[a], 1);
  EXPECT_EQ(rv.firings[b], 2);
  EXPECT_EQ(rv.firings[c], 1);
  EXPECT_EQ(rv.firings[d], 5);
}

TEST(Repetition, EmptyGraphConsistent) {
  Graph g;
  EXPECT_TRUE(compute_repetition_vector(g).consistent);
}

TEST(Repetition, CycleProductionSums) {
  Graph g;
  const ActorId a = g.add_actor("A", {1, 1, 1});
  const ActorId b = g.add_sdf_actor("B", 1);
  const EdgeId e = g.add_edge(a, b, {2, 0, 1}, {3}, 0);
  EXPECT_EQ(cycle_production(g.edge(e)), 3);
  EXPECT_EQ(cycle_consumption(g.edge(e)), 3);
}

// Property: on random consistent chains the balance equations hold.
TEST(RepetitionProperty, BalanceEquationsHoldOnRandomChains) {
  SplitMix64 rng(0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    Graph g;
    const int n = static_cast<int>(rng.uniform(2, 6));
    std::vector<ActorId> actors;
    for (int i = 0; i < n; ++i)
      actors.push_back(g.add_sdf_actor("a" + std::to_string(i), 1));
    for (int i = 0; i + 1 < n; ++i) {
      g.add_sdf_edge(actors[i], actors[i + 1], rng.uniform(1, 6),
                     rng.uniform(1, 6), rng.uniform(0, 3));
    }
    const RepetitionVector rv = compute_repetition_vector(g);
    ASSERT_TRUE(rv.consistent);
    for (const Edge& e : g.edges()) {
      EXPECT_EQ(rv.cycles[e.src] * cycle_production(e),
                rv.cycles[e.dst] * cycle_consumption(e));
    }
    // Minimality: gcd of all cycle counts is 1 per (single) component.
    std::int64_t gcd_all = 0;
    for (std::int64_t c : rv.cycles) gcd_all = gcd64(gcd_all, c);
    EXPECT_EQ(gcd_all, 1);
  }
}

}  // namespace
}  // namespace acc::df
