#include "dataflow/latency.hpp"

#include <gtest/gtest.h>

namespace acc::df {
namespace {

// src(2) -> mid(3) -> sink, bounded by a generous return channel.
struct Pipeline {
  Graph g;
  ActorId src;
  ActorId mid;
  EdgeId out;
};

Pipeline make_pipeline() {
  Pipeline p;
  p.src = p.g.add_sdf_actor("src", 2);
  p.mid = p.g.add_sdf_actor("mid", 3);
  p.g.add_sdf_edge(p.src, p.mid, 1, 1, 0);
  p.out = p.g.add_sdf_edge(p.mid, p.src, 1, 1, 4);  // feedback bounds it
  return p;
}

TEST(Latency, FiringStartTimes) {
  Pipeline p = make_pipeline();
  const std::vector<Time> starts = firing_start_times(p.g, p.src, 3);
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0);
  // src is serialized with duration 2 and 4 feedback tokens: back-to-back.
  EXPECT_EQ(starts[1], 2);
  EXPECT_EQ(starts[2], 4);
}

TEST(Latency, TokenProductionTimes) {
  Pipeline p = make_pipeline();
  const std::vector<Time> times = token_production_times(p.g, p.out, 3);
  ASSERT_EQ(times.size(), 3u);
  // mid fires [2,5], [5,8], [8,11] (serialized, inputs at 2,4,6).
  EXPECT_EQ(times[0], 5);
  EXPECT_EQ(times[1], 8);
  EXPECT_EQ(times[2], 11);
}

TEST(Latency, EndToEndSummary) {
  Pipeline p = make_pipeline();
  const LatencySummary s = end_to_end_latency(p.g, p.src, p.out, 3);
  EXPECT_EQ(s.pairs, 3u);
  // stimuli 0,2,4 -> responses 5,8,11: latencies 5,6,7.
  EXPECT_EQ(s.min, 5);
  EXPECT_EQ(s.max, 7);
  EXPECT_DOUBLE_EQ(s.mean, 6.0);
}

TEST(Latency, SummaryRejectsCausalityViolation) {
  EXPECT_THROW((void)summarize_latency({5}, {3}), precondition_error);
}

TEST(Latency, EmptyInputs) {
  const LatencySummary s = summarize_latency({}, {1, 2});
  EXPECT_EQ(s.pairs, 0u);
}

TEST(Latency, BulkProductionRepeatsTimestamp) {
  Graph g;
  const ActorId a = g.add_sdf_actor("a", 4);
  const ActorId b = g.add_sdf_actor("b", 1);
  const EdgeId e = g.add_sdf_edge(a, b, 3, 1, 0);
  const std::vector<Time> times = token_production_times(g, e, 5);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_EQ(times[0], 4);
  EXPECT_EQ(times[1], 4);
  EXPECT_EQ(times[2], 4);
  EXPECT_EQ(times[3], 8);
  EXPECT_EQ(times[4], 8);
}

TEST(Latency, DeadlockedGraphReturnsPartialData) {
  Graph g;
  const ActorId a = g.add_sdf_actor("a", 1);
  const ActorId b = g.add_sdf_actor("b", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  const EdgeId back = g.add_sdf_edge(b, a, 1, 1, 2);  // only 2 rounds... no:
  // tokens recirculate, so this is live; instead deadlock with 0 tokens.
  (void)back;
  Graph dead;
  const ActorId x = dead.add_sdf_actor("x", 1);
  const ActorId y = dead.add_sdf_actor("y", 1);
  const EdgeId xy = dead.add_sdf_edge(x, y, 1, 1, 0);
  dead.add_sdf_edge(y, x, 1, 1, 0);
  EXPECT_TRUE(token_production_times(dead, xy, 3).empty());
}

}  // namespace
}  // namespace acc::df
