// Parameterized executor sweeps: producer/consumer rate grids where the
// exact steady-state throughput has a closed form to check against.
#include <gtest/gtest.h>

#include <tuple>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/hsdf.hpp"

namespace acc::df {
namespace {

// (producer duration, consumer duration, prod rate, cons rate)
using PcParams = std::tuple<Time, Time, std::int64_t, std::int64_t>;

class ProducerConsumerSweep : public ::testing::TestWithParam<PcParams> {};

TEST_P(ProducerConsumerSweep, SaturatedThroughputMatchesBottleneckFormula) {
  const auto [da, db, p, c] = GetParam();
  Graph g;
  const ActorId a = g.add_sdf_actor("A", da);
  const ActorId b = g.add_sdf_actor("B", db);
  // Generous buffer: double the per-iteration traffic, so only the actors
  // themselves constrain the rate.
  const RepetitionVector rv = [&] {
    Graph probe;
    const ActorId pa = probe.add_sdf_actor("A", da);
    const ActorId pb = probe.add_sdf_actor("B", db);
    probe.add_sdf_edge(pa, pb, p, c, 0);
    return compute_repetition_vector(probe);
  }();
  const std::int64_t traffic = rv.firings[0] * p;
  g.add_channel(a, b, {p}, {c}, 2 * traffic + p + c);

  SelfTimedExecutor exec(g);
  const ThroughputResult r = exec.analyze_throughput(b);
  ASSERT_FALSE(r.deadlocked);
  // Closed form: per graph iteration, A fires r[A] times (busy r[A]*da) and
  // B fires r[B] times (busy r[B]*db); with ample buffering the pipeline
  // runs at the slower of the two: iteration period = max(r[A]*da,
  // r[B]*db), so B's rate is r[B] / that.
  const Rational expect(rv.firings[1],
                        std::max(rv.firings[0] * da, rv.firings[1] * db));
  EXPECT_EQ(r.throughput, expect)
      << "da=" << da << " db=" << db << " p=" << p << " c=" << c;
  // MCM on the HSDF expansion agrees.
  EXPECT_EQ(sdf_throughput_via_mcm(g, b).firings_per_time, r.throughput);
}

INSTANTIATE_TEST_SUITE_P(
    RateGrid, ProducerConsumerSweep,
    ::testing::Combine(::testing::Values<Time>(1, 2, 5),        // da
                       ::testing::Values<Time>(1, 3, 4),        // db
                       ::testing::Values<std::int64_t>(1, 2, 3),  // prod
                       ::testing::Values<std::int64_t>(1, 2, 5)),  // cons
    [](const ::testing::TestParamInfo<PcParams>& info) {
      return "da" + std::to_string(std::get<0>(info.param)) + "_db" +
             std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param)) + "_c" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace acc::df
