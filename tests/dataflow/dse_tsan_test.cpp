// Thread-sanitizer harness for the DSE engine: runs the parallel searches
// with several worker counts and checks the results agree with the serial
// path. Compiled as its own TSan-instrumented binary (no gtest — the
// sanitizer must see every thread this process creates), registered in
// tier-1 ctest when the toolchain supports -fsanitize=thread.
#include <cstdio>
#include <vector>

#include "dataflow/buffer_sizing.hpp"
#include "dataflow/dse.hpp"
#include "dataflow/graph.hpp"

namespace {

int failures = 0;

#define REQUIRE(cond)                                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      ++failures;                                                       \
    }                                                                   \
  } while (0)

using namespace acc;
using namespace acc::df;

/// Shared-actor + chunked down-sampling consumer, the Fig. 8 shape that
/// exercises the two-channel staircase search.
struct Model {
  Graph g;
  ActorId producer;
  ActorId shared;
  ActorId consumer;
  Channel in;
  Channel out;
};

Model make_model(std::int64_t eta, std::int64_t chunk) {
  Model m;
  m.producer = m.g.add_sdf_actor("prod", 3);
  m.shared = m.g.add_sdf_actor("shared", 11 + 2 * eta);
  m.consumer = m.g.add_sdf_actor("cons", 4 * chunk);
  m.in = m.g.add_channel(m.producer, m.shared, {1}, {eta}, 4 * eta);
  m.out = m.g.add_channel(m.shared, m.consumer, {eta}, {chunk},
                          4 * eta + 4 * chunk);
  return m;
}

void check_minimize(std::int64_t eta, std::int64_t chunk) {
  Model ref_model = make_model(eta, chunk);
  BufferSizingOptions opt;
  opt.max_capacity = 8 * eta + 8 * chunk + 32;
  const Rational target =
      max_throughput_with_unbounded_channels(
          ref_model.g, {ref_model.in, ref_model.out}, ref_model.consumer, opt);

  opt.jobs = 1;
  const MultiBufferResult serial = minimize_total_capacity(
      ref_model.g, {ref_model.in, ref_model.out}, ref_model.consumer, target,
      opt);
  for (int jobs : {2, 4}) {
    Model m = make_model(eta, chunk);
    BufferSizingOptions jopt = opt;
    jopt.jobs = jobs;
    DseStats stats;
    jopt.stats = &stats;
    const MultiBufferResult par = minimize_total_capacity(
        m.g, {m.in, m.out}, m.consumer, target, jopt);
    REQUIRE(par.total == serial.total);
    REQUIRE(par.capacities == serial.capacities);
    REQUIRE(stats.simulations > 0);
  }
}

void check_pareto(std::int64_t eta) {
  Model ref_model = make_model(eta, 2);
  BufferSizingOptions o1;
  const std::vector<ParetoPoint> serial =
      pareto_buffer_sweep(ref_model.g, ref_model.out, ref_model.consumer, o1);
  BufferSizingOptions o4;
  o4.jobs = 4;
  const std::vector<ParetoPoint> par =
      pareto_buffer_sweep(ref_model.g, ref_model.out, ref_model.consumer, o4);
  REQUIRE(serial.size() == par.size());
  for (std::size_t i = 0; i < serial.size() && i < par.size(); ++i) {
    REQUIRE(serial[i].capacity == par[i].capacity);
    REQUIRE(serial[i].throughput == par[i].throughput);
  }
}

}  // namespace

int main() {
  for (std::int64_t eta : {1, 3, 5}) check_minimize(eta, /*chunk=*/2);
  check_minimize(/*eta=*/4, /*chunk=*/3);
  check_pareto(/*eta=*/3);
  if (failures == 0) std::puts("dse_tsan_test: all checks passed");
  return failures == 0 ? 0 : 1;
}
