#include "dataflow/graph.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace acc::df {
namespace {

TEST(Graph, AddActorsAndEdges) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_actor("B", {1, 3});
  EXPECT_EQ(g.num_actors(), 2u);
  EXPECT_EQ(g.actor(a).phases(), 1u);
  EXPECT_EQ(g.actor(b).phases(), 2u);

  const EdgeId e = g.add_edge(a, b, {2}, {1, 1}, 3, "ab");
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).initial_tokens, 3);
  EXPECT_EQ(g.edge(e).name, "ab");
  EXPECT_EQ(g.in_edges(b).size(), 1u);
  EXPECT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_TRUE(g.in_edges(a).empty());
}

TEST(Graph, SdfEdgeBroadcastsRatesOverPhases) {
  Graph g;
  const ActorId a = g.add_actor("A", {1, 2, 3});
  const ActorId b = g.add_sdf_actor("B", 1);
  const EdgeId e = g.add_sdf_edge(a, b, 2, 5, 0);
  EXPECT_EQ(g.edge(e).prod, (std::vector<std::int64_t>{2, 2, 2}));
  EXPECT_EQ(g.edge(e).cons, (std::vector<std::int64_t>{5}));
}

TEST(Graph, EdgeArityMismatchThrows) {
  Graph g;
  const ActorId a = g.add_actor("A", {1, 1});
  const ActorId b = g.add_sdf_actor("B", 1);
  EXPECT_THROW(g.add_edge(a, b, {1}, {1}, 0), precondition_error);
  EXPECT_THROW(g.add_edge(a, b, {1, 1}, {1, 1}, 0), precondition_error);
}

TEST(Graph, NegativeTokensThrow) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  EXPECT_THROW(g.add_edge(a, b, {1}, {1}, -1), precondition_error);
}

TEST(Graph, EmptyPhaseListThrows) {
  Graph g;
  EXPECT_THROW(g.add_actor("A", {}), precondition_error);
}

TEST(Graph, NegativeDurationThrows) {
  Graph g;
  EXPECT_THROW(g.add_actor("A", {1, -1}), precondition_error);
}

TEST(Graph, ChannelModelsBoundedBuffer) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const Channel ch = g.add_channel(a, b, {1}, {1}, /*capacity=*/4,
                                   /*initial_tokens=*/1, "buf");
  EXPECT_EQ(g.edge(ch.data).initial_tokens, 1);
  EXPECT_EQ(g.edge(ch.space).initial_tokens, 3);
  EXPECT_EQ(g.channel_capacity(ch), 4);
  // Space edge runs in the reverse direction with swapped quanta.
  EXPECT_EQ(g.edge(ch.space).src, b);
  EXPECT_EQ(g.edge(ch.space).dst, a);
}

TEST(Graph, SetChannelCapacity) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const Channel ch = g.add_channel(a, b, {2}, {3}, 6, 0);
  g.set_channel_capacity(ch, 9);
  EXPECT_EQ(g.channel_capacity(ch), 9);
  EXPECT_EQ(g.edge(ch.space).initial_tokens, 9);
}

TEST(Graph, ChannelCapacityBelowFillThrows) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  EXPECT_THROW(g.add_channel(a, b, {1}, {1}, 1, 2), precondition_error);
  const Channel ch = g.add_channel(a, b, {1}, {1}, 4, 2);
  EXPECT_THROW(g.set_channel_capacity(ch, 1), precondition_error);
}

TEST(Graph, FindActorByName) {
  Graph g;
  g.add_sdf_actor("source", 1);
  const ActorId b = g.add_sdf_actor("sink", 1);
  EXPECT_EQ(g.find_actor("sink"), b);
  EXPECT_EQ(g.find_actor("absent"), kInvalidActor);
}

TEST(Graph, ValidateRejectsAllZeroQuanta) {
  Graph g;
  const ActorId a = g.add_actor("A", {1, 1});
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_edge(a, b, {0, 0}, {1}, 0);
  EXPECT_THROW(g.validate(), invariant_error);
}

TEST(Graph, ValidateAcceptsWellFormed) {
  Graph g;
  const ActorId a = g.add_actor("A", {1, 0});
  const ActorId b = g.add_sdf_actor("B", 2);
  g.add_edge(a, b, {1, 0}, {1}, 0);
  g.add_edge(b, a, {1}, {0, 1}, 1);
  EXPECT_NO_THROW(g.validate());
}

}  // namespace
}  // namespace acc::df
