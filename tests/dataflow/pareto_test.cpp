#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {
namespace {

TEST(Pareto, StaircaseOfUnitRatePipeline) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const Channel ch = g.add_channel(a, b, {1}, {1}, 1);
  const std::vector<ParetoPoint> pts = pareto_buffer_sweep(g, ch, a);
  // cap 1 -> 1/2, cap 2 -> 1 (saturated).
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].capacity, 1);
  EXPECT_EQ(pts[0].throughput, Rational(1, 2));
  EXPECT_EQ(pts[1].capacity, 2);
  EXPECT_EQ(pts[1].throughput, Rational(1));
  // Original capacity restored.
  EXPECT_EQ(g.channel_capacity(ch), 1);
}

TEST(Pareto, StaircaseStrictlyIncreasing) {
  SplitMix64 rng(0x9A3);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g;
    const ActorId a = g.add_sdf_actor("A", rng.uniform(1, 4));
    const ActorId b = g.add_sdf_actor("B", rng.uniform(1, 4));
    const std::int64_t p = rng.uniform(1, 3);
    const std::int64_t c = rng.uniform(1, 3);
    const Channel ch = g.add_channel(a, b, {p}, {c}, std::max(p, c));
    const std::vector<ParetoPoint> pts = pareto_buffer_sweep(g, ch, b);
    ASSERT_FALSE(pts.empty());
    for (std::size_t i = 1; i < pts.size(); ++i) {
      EXPECT_GT(pts[i].capacity, pts[i - 1].capacity);
      EXPECT_GT(pts[i].throughput, pts[i - 1].throughput);
    }
    // Final point reaches the saturated maximum.
    BufferSizingOptions opt;
    const Rational best =
        max_throughput_with_unbounded_channels(g, {ch}, b, opt);
    EXPECT_EQ(pts.back().throughput, best);
    // And each breakpoint is the true single-channel minimum for its rate.
    for (const ParetoPoint& pt : pts) {
      EXPECT_EQ(min_channel_capacity_for_throughput(g, ch, b, pt.throughput),
                pt.capacity);
    }
  }
}

}  // namespace
}  // namespace acc::df
