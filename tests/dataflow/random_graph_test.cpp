// Cross-validation fuzzing: on random multi-actor SDF graphs, the
// self-timed executor and the HSDF/max-cycle-ratio analysis must agree on
// throughput, and buffer monotonicity must hold across the whole graph.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/hsdf.hpp"

namespace acc::df {
namespace {

struct RandomPipeline {
  Graph g;
  std::vector<ActorId> actors;
  std::vector<Channel> channels;
};

/// Random linear pipeline with bounded channels (always consistent; live
/// when capacities fit the rates).
RandomPipeline make_pipeline(SplitMix64& rng, int stages) {
  RandomPipeline p;
  for (int i = 0; i < stages; ++i)
    p.actors.push_back(
        p.g.add_sdf_actor("a" + std::to_string(i), rng.uniform(1, 5)));
  for (int i = 0; i + 1 < stages; ++i) {
    const std::int64_t prod = rng.uniform(1, 3);
    const std::int64_t cons = rng.uniform(1, 3);
    const std::int64_t cap = prod + cons + rng.uniform(0, 4);
    p.channels.push_back(
        p.g.add_channel(p.actors[i], p.actors[i + 1], {prod}, {cons}, cap));
  }
  return p;
}

TEST(RandomGraph, ExecutorAgreesWithHsdfMcmOnPipelines) {
  SplitMix64 rng(0xFA57);
  int live = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomPipeline p = make_pipeline(rng, static_cast<int>(rng.uniform(2, 5)));
    const ActorId last = p.actors.back();
    const SdfThroughput mcm = sdf_throughput_via_mcm(p.g, last);
    SelfTimedExecutor exec(p.g);
    const ThroughputResult st = exec.analyze_throughput(last);
    ASSERT_EQ(mcm.deadlocked, st.deadlocked) << "trial " << trial;
    if (st.deadlocked) continue;
    EXPECT_EQ(mcm.firings_per_time, st.throughput) << "trial " << trial;
    ++live;
  }
  EXPECT_GT(live, 40);
}

TEST(RandomGraph, ThroughputMonotoneWhenAnyChannelGrows) {
  SplitMix64 rng(0x90A7);
  for (int trial = 0; trial < 30; ++trial) {
    RandomPipeline p = make_pipeline(rng, 3);
    const ActorId last = p.actors.back();
    const Rational base = measure_throughput(p.g, last);
    for (const Channel& ch : p.channels) {
      const std::int64_t cap = p.g.channel_capacity(ch);
      p.g.set_channel_capacity(ch, cap + rng.uniform(1, 4));
      EXPECT_GE(measure_throughput(p.g, last), base) << "trial " << trial;
      p.g.set_channel_capacity(ch, cap);
    }
  }
}

TEST(RandomGraph, IterationReturnsTokensToInitialState) {
  // After r[a] firings of every actor, token counts equal initial counts —
  // the defining property of a consistent graph iteration.
  SplitMix64 rng(0x17E2);
  for (int trial = 0; trial < 50; ++trial) {
    RandomPipeline p = make_pipeline(rng, static_cast<int>(rng.uniform(2, 5)));
    const RepetitionVector rv = compute_repetition_vector(p.g);
    ASSERT_TRUE(rv.consistent);
    SelfTimedExecutor exec(p.g);
    // Run exactly one iteration by stepping the LAST actor to its count and
    // confirming the others also completed a multiple (self-timed runs may
    // overlap iterations, so check conservation instead of equality).
    if (!exec.run_until_firings(p.actors.back(), rv.firings[p.actors.back()])
             .has_value())
      continue;  // structurally deadlocked instance
    for (std::size_t e = 0; e < p.g.num_edges(); ++e) {
      const Edge& edge = p.g.edge(static_cast<EdgeId>(e));
      const std::int64_t produced =
          exec.completed_firings(edge.src) * edge.prod[0];
      // In-flight firings consumed tokens but have not produced yet; infer
      // consumption from starts = completions + in-flight.
      const std::int64_t tokens = exec.tokens(static_cast<EdgeId>(e));
      EXPECT_LE(tokens, edge.initial_tokens + produced);
      EXPECT_GE(tokens, 0);
    }
  }
}

}  // namespace
}  // namespace acc::df
