#include "dataflow/refinement.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace acc::df {
namespace {

TEST(Refinement, HoldsWhenRefinedIsEarlier) {
  const std::vector<Time> refined{1, 3, 5};
  const std::vector<Time> abstraction{2, 3, 9};
  const RefinementReport r = check_earlier_the_better(refined, abstraction);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.compared, 3u);
}

TEST(Refinement, ViolationReported) {
  const std::vector<Time> refined{1, 4};
  const std::vector<Time> abstraction{2, 3};
  const RefinementReport r = check_earlier_the_better(refined, abstraction);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.violating_index, 1u);
  EXPECT_EQ(r.refined_time, 4);
  EXPECT_EQ(r.abstract_time, 3);
}

TEST(Refinement, ComparesCommonPrefixOnly) {
  const std::vector<Time> refined{1, 2, 3, 4};
  const std::vector<Time> abstraction{5, 6};
  const RefinementReport r = check_earlier_the_better(refined, abstraction);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.compared, 2u);
}

TEST(Refinement, EmptySequencesHold) {
  const RefinementReport r = check_earlier_the_better({}, {});
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.compared, 0u);
}

TEST(Refinement, DescribeMentionsViolation) {
  const std::vector<Time> refined{9};
  const std::vector<Time> abstraction{1};
  const std::string s = describe(check_earlier_the_better(refined, abstraction));
  EXPECT_NE(s.find("VIOLATED"), std::string::npos);
  const std::string ok = describe(check_earlier_the_better(abstraction, refined));
  EXPECT_NE(ok.find("holds"), std::string::npos);
}

}  // namespace
}  // namespace acc::df
