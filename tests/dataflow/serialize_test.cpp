#include "dataflow/serialize.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "sharing/csdf_model.hpp"

namespace acc::df {
namespace {

TEST(Serialize, RoundTripPreservesStructure) {
  Graph g;
  const ActorId a = g.add_sdf_actor("src", 2);
  const ActorId b = g.add_actor("worker", {1, 4});
  g.add_edge(a, b, {2}, {1, 1}, 3, "ab");
  g.add_channel(b, a, {1, 0}, {1}, 5, 1, "back");

  const Graph h = graph_from_string(graph_to_string(g));
  ASSERT_EQ(h.num_actors(), g.num_actors());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_actors(); ++i) {
    const Actor& x = g.actor(static_cast<ActorId>(i));
    const Actor& y = h.actor(static_cast<ActorId>(i));
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.phase_durations, y.phase_durations);
    EXPECT_EQ(x.auto_concurrent, y.auto_concurrent);
  }
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const Edge& x = g.edge(static_cast<EdgeId>(i));
    const Edge& y = h.edge(static_cast<EdgeId>(i));
    EXPECT_EQ(x.src, y.src);
    EXPECT_EQ(x.dst, y.dst);
    EXPECT_EQ(x.prod, y.prod);
    EXPECT_EQ(x.cons, y.cons);
    EXPECT_EQ(x.initial_tokens, y.initial_tokens);
    EXPECT_EQ(x.name, y.name);
  }
}

TEST(Serialize, RoundTripPreservesTemporalBehaviour) {
  // Stronger than structural equality: the deserialized graph must execute
  // identically. Use the paper's Fig. 5 model as the payload.
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {2};
  sys.chain.entry_cycles_per_sample = 3;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 100), 17}};
  sharing::CsdfModelOptions o;
  o.eta = 5;
  o.alpha0 = 5;
  o.alpha3 = 5;
  o.producer_period = 0;
  o.consumer_period = 0;
  sharing::CsdfStreamModel m = sharing::build_csdf_stream_model(sys, 0, o);

  const Graph copy = graph_from_string(graph_to_string(m.graph));
  SelfTimedExecutor e1(m.graph);
  SelfTimedExecutor e2(copy);
  const auto t1 = e1.run_until_firings(m.exit, 5);
  const auto t2 = e2.run_until_firings(m.exit, 5);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(*t1, *t2);
}

TEST(Serialize, MalformedDocumentsRejected) {
  EXPECT_THROW((void)graph_from_string("{}"), precondition_error);
  EXPECT_THROW((void)graph_from_string("not json"), precondition_error);
  // Edge referencing a missing actor.
  EXPECT_THROW(
      (void)graph_from_string(
          R"({"actors":[{"name":"a","durations":[1]}],
              "edges":[{"src":0,"dst":5,"prod":[1],"cons":[1],"tokens":0}]})"),
      precondition_error);
  // Arity mismatch caught by graph construction.
  EXPECT_THROW(
      (void)graph_from_string(
          R"({"actors":[{"name":"a","durations":[1,1]},
                        {"name":"b","durations":[1]}],
              "edges":[{"src":0,"dst":1,"prod":[1],"cons":[1],"tokens":0}]})"),
      precondition_error);
}

TEST(Serialize, RandomGraphsRoundTrip) {
  SplitMix64 rng(0x5E1A);
  for (int trial = 0; trial < 40; ++trial) {
    Graph g;
    const int n = static_cast<int>(rng.uniform(2, 6));
    for (int i = 0; i < n; ++i) {
      std::vector<Time> durations;
      const int phases = static_cast<int>(rng.uniform(1, 3));
      for (int p = 0; p < phases; ++p) durations.push_back(rng.uniform(0, 9));
      g.add_actor("a" + std::to_string(i), durations, rng.chance(0.2));
    }
    for (int e = 0; e < n - 1; ++e) {
      const auto src = static_cast<ActorId>(e);
      const auto dst = static_cast<ActorId>(e + 1);
      std::vector<std::int64_t> prod(g.actor(src).phases(), 0);
      std::vector<std::int64_t> cons(g.actor(dst).phases(), 0);
      prod[0] = rng.uniform(1, 4);
      cons[0] = rng.uniform(1, 4);
      g.add_edge(src, dst, prod, cons, rng.uniform(0, 5));
    }
    EXPECT_EQ(graph_to_json(graph_from_json(graph_to_json(g))),
              graph_to_json(g));
  }
}

}  // namespace
}  // namespace acc::df
