#include "dataflow/transform.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/refinement.hpp"
#include "dataflow/repetition.hpp"
#include "sharing/csdf_model.hpp"

namespace acc::df {
namespace {

TEST(Transform, MergePhasesCollapsesDurationsAndQuanta) {
  Graph g;
  const ActorId a = g.add_actor("A", {2, 3, 1});
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_edge(a, b, {1, 0, 2}, {1}, 0);
  g.add_edge(b, a, {1}, {0, 2, 1}, 3);

  const Graph h = merge_phases(g, a);
  EXPECT_EQ(h.actor(a).phases(), 1u);
  EXPECT_EQ(h.actor(a).phase_durations[0], 6);
  EXPECT_EQ(h.edge(0).prod, (std::vector<std::int64_t>{3}));
  EXPECT_EQ(h.edge(1).cons, (std::vector<std::int64_t>{3}));
  // Untouched parts preserved.
  EXPECT_EQ(h.actor(b).phase_durations[0], 1);
  EXPECT_EQ(h.edge(1).initial_tokens, 3);
}

TEST(Transform, AbstractionPreservesConsistency) {
  Graph g;
  const ActorId a = g.add_actor("A", {1, 1});
  const ActorId b = g.add_actor("B", {2, 2, 2});
  g.add_edge(a, b, {1, 2}, {1, 1, 1}, 0);
  g.add_edge(b, a, {1, 1, 1}, {1, 2}, 6);
  const RepetitionVector rv0 = compute_repetition_vector(g);
  const Graph h = to_sdf_abstraction(g);
  const RepetitionVector rv1 = compute_repetition_vector(h);
  ASSERT_TRUE(rv0.consistent);
  ASSERT_TRUE(rv1.consistent);
  // Cycle counts coincide (one abstract firing = one original cycle).
  EXPECT_EQ(rv0.cycles, rv1.cycles);
}

TEST(Transform, SdfActorsPassThroughUnchanged) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 4);
  const ActorId b = g.add_sdf_actor("B", 2);
  g.add_sdf_edge(a, b, 2, 3, 1);
  const Graph h = to_sdf_abstraction(g);
  EXPECT_EQ(h.actor(a).phase_durations[0], 4);
  EXPECT_EQ(h.edge(0).prod[0], 2);
  EXPECT_EQ(h.edge(0).initial_tokens, 1);
}

// The theorem the paper's Fig. 7 step rests on, checked empirically: the
// abstraction never produces a token EARLIER than the original (so original
// refines abstraction), across random CSDF producer graphs.
TEST(TransformProperty, AbstractionIsConservative) {
  SplitMix64 rng(0x7AB5);
  int compared = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int phases = static_cast<int>(rng.uniform(2, 4));
    std::vector<Time> dur;
    std::vector<std::int64_t> prod;
    for (int p = 0; p < phases; ++p) {
      dur.push_back(rng.uniform(0, 4));
      prod.push_back(rng.uniform(0, 2));
    }
    if (std::accumulate(prod.begin(), prod.end(), std::int64_t{0}) == 0)
      prod[0] = 1;
    // Producer A (CSDF) -> consumer B, with a back edge (consume one token
    // per full A-cycle, in the first phase) bounding the loop so both
    // graphs stay live and comparable.
    Graph g2;
    const ActorId a2 = g2.add_actor("A", dur);
    const ActorId b2 = g2.add_sdf_actor("B", rng.uniform(1, 4));
    const EdgeId d2 = g2.add_edge(a2, b2, prod, {1}, 0, "data");
    std::vector<std::int64_t> back(static_cast<std::size_t>(phases), 0);
    back[0] = 1;
    g2.add_edge(b2, a2, {1}, back, 2, "back");

    const Graph abs = to_sdf_abstraction(g2);
    const std::int64_t tokens = 12;

    auto production_times = [&](const Graph& gg, EdgeId e) {
      SelfTimedExecutor exec(gg);
      std::vector<Time> times;
      ExecObservers obs;
      obs.on_produce = [&](EdgeId eid, std::int64_t n, Time t) {
        if (eid == e)
          for (std::int64_t i = 0; i < n; ++i) times.push_back(t);
      };
      exec.set_observers(obs);
      (void)exec.run_until_firings(b2, tokens);
      return times;
    };
    const std::vector<Time> refined = production_times(g2, d2);
    const std::vector<Time> abstraction = production_times(abs, d2);
    if (refined.empty() || abstraction.empty()) continue;
    const RefinementReport rep =
        check_earlier_the_better(refined, abstraction);
    EXPECT_TRUE(rep.holds) << describe(rep) << " trial=" << trial;
    ++compared;
  }
  EXPECT_GT(compared, 30);
}

// The paper's own use case, and the reason its Fig. 7 collapses the WHOLE
// dashed box into one actor rather than collapsing actors one by one: a
// per-actor collapse makes the entry-gateway claim a full block of NI
// buffer slots atomically, which DEADLOCKS against the 2-deep hardware NI
// FIFOs. With NI buffers widened to hold a block the per-actor abstraction
// is live and conservative.
TEST(TransformProperty, GatewayModelAbstractionNeedsBlockSizedBuffers) {
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 3;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, 100), 20}};
  for (const std::int64_t eta : {2, 5, 9}) {
    sharing::CsdfModelOptions o;
    o.eta = eta;
    o.alpha0 = 2 * eta;
    o.alpha3 = 2 * eta;
    o.producer_period = 2;
    o.consumer_period = 2;

    // (a) With the hardware's 2-deep NI FIFOs, the naive collapse deadlocks
    //     for blocks bigger than the FIFO.
    sharing::CsdfStreamModel hw = sharing::build_csdf_stream_model(sys, 0, o);
    const Graph naive_abs = to_sdf_abstraction(hw.graph);
    SelfTimedExecutor naive(naive_abs);
    if (eta > sys.chain.ni_capacity) {
      EXPECT_FALSE(naive.run_until_firings(hw.consumer, eta).has_value())
          << "eta=" << eta;
    }

    // (b) With block-sized NI buffers the abstraction is live AND
    //     conservative w.r.t. the detailed model.
    sharing::SharedSystemSpec wide = sys;
    wide.chain.ni_capacity = 2 * eta;
    sharing::CsdfStreamModel m = sharing::build_csdf_stream_model(wide, 0, o);
    const Graph abs = to_sdf_abstraction(m.graph);
    SelfTimedExecutor fine(m.graph);
    SelfTimedExecutor coarse(abs);
    const auto tf = fine.run_until_firings(m.consumer, 4 * eta);
    const auto tc = coarse.run_until_firings(m.consumer, 4 * eta);
    ASSERT_TRUE(tf.has_value());
    ASSERT_TRUE(tc.has_value());
    EXPECT_LE(*tf, *tc) << "eta=" << eta;
  }
}

}  // namespace
}  // namespace acc::df
