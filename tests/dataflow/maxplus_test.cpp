#include "dataflow/maxplus.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace acc::df {
namespace {

TEST(MaxPlusScalar, SemiringOperations) {
  const MaxPlus a(3);
  const MaxPlus b(5);
  EXPECT_EQ((a | b).value(), 5);
  EXPECT_EQ((a * b).value(), 8);
  EXPECT_TRUE((MaxPlus::neg_inf() * a).is_neg_inf());
  EXPECT_EQ((MaxPlus::neg_inf() | a).value(), 3);
  EXPECT_THROW((void)MaxPlus::neg_inf().value(), precondition_error);
}

TEST(MaxPlusMatrix, IdentityIsNeutral) {
  MaxPlusMatrix m(3);
  m.set(0, 1, MaxPlus(4));
  m.set(1, 2, MaxPlus(7));
  m.set(2, 0, MaxPlus(1));
  const MaxPlusMatrix id = MaxPlusMatrix::identity(3);
  EXPECT_EQ(m * id, m);
  EXPECT_EQ(id * m, m);
}

TEST(MaxPlusMatrix, ProductIsLongestPathComposition) {
  // M[r][c] = weight of c -> r; (M*M)[r][c] = best 2-step path.
  MaxPlusMatrix m(2);
  m.set(0, 0, MaxPlus(1));
  m.set(0, 1, MaxPlus(10));
  m.set(1, 0, MaxPlus(2));
  const MaxPlusMatrix m2 = m * m;
  // 0<-0 in two steps: max(1+1, 10+2) = 12.
  EXPECT_EQ(m2.at(0, 0).value(), 12);
  // 1<-1: only 1<-0<-1 = 2+10.
  EXPECT_EQ(m2.at(1, 1).value(), 12);
}

TEST(MaxPlusMatrix, ApplyMatchesManualRecurrence) {
  MaxPlusMatrix m(2);
  m.set(0, 0, MaxPlus(2));
  m.set(1, 0, MaxPlus(3));
  m.set(1, 1, MaxPlus(1));
  std::vector<MaxPlus> x{MaxPlus(0), MaxPlus(5)};
  const std::vector<MaxPlus> y = m.apply(x);
  EXPECT_EQ(y[0].value(), 2);                    // 0+2
  EXPECT_EQ(y[1].value(), 6);                    // max(0+3, 5+1)
}

TEST(MaxPlusEigen, SingleLoop) {
  MaxPlusMatrix m(1);
  m.set(0, 0, MaxPlus(7));
  const auto ev = maxplus_eigenvalue(m);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, Rational(7));
}

TEST(MaxPlusEigen, TwoCyclePicksMaximumMean) {
  // Cycle 0->0 mean 3; cycle 0->1->0 mean (2+5)/2.
  MaxPlusMatrix m(2);
  m.set(0, 0, MaxPlus(3));
  m.set(1, 0, MaxPlus(2));
  m.set(0, 1, MaxPlus(5));
  const auto ev = maxplus_eigenvalue(m);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, Rational(7, 2));
}

TEST(MaxPlusEigen, NilpotentHasNone) {
  MaxPlusMatrix m(2);
  m.set(1, 0, MaxPlus(9));  // strictly triangular: no cycle
  EXPECT_FALSE(maxplus_eigenvalue(m).has_value());
}

TEST(MaxPlusCyclicity, IrreducibleMatrixBecomesPeriodic) {
  MaxPlusMatrix m(2);
  m.set(0, 0, MaxPlus(3));
  m.set(1, 0, MaxPlus(2));
  m.set(0, 1, MaxPlus(5));
  m.set(1, 1, MaxPlus(1));
  const auto cy = maxplus_cyclicity(m);
  ASSERT_TRUE(cy.has_value());
  // growth/period equals the eigenvalue.
  const auto ev = maxplus_eigenvalue(m);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(Rational(cy->growth, cy->period), *ev);
  // The cyclicity relation itself: M^(k0+c) == lambda_c (x) M^k0.
  MaxPlusMatrix p = m;
  for (std::int64_t k = 1; k < cy->transient; ++k) p = p * m;
  MaxPlusMatrix q = p;
  for (std::int64_t k = 0; k < cy->period; ++k) q = q * m;
  EXPECT_EQ(q, p.scaled(cy->growth));
}

// Property: eigenvalue of random irreducible non-negative matrices equals
// growth/period from cyclicity.
TEST(MaxPlusProperty, CyclicityGrowthMatchesEigenvalue) {
  SplitMix64 rng(0x3A9);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 4));
    MaxPlusMatrix m(n);
    // Ring backbone keeps it irreducible; sprinkle extra edges.
    for (std::size_t i = 0; i < n; ++i)
      m.set((i + 1) % n, i, MaxPlus(rng.uniform(0, 9)));
    for (std::size_t i = 0; i < n; ++i)
      if (rng.chance(0.5))
        m.set(static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(n) - 1)),
              i, MaxPlus(rng.uniform(0, 9)));
    const auto ev = maxplus_eigenvalue(m);
    const auto cy = maxplus_cyclicity(m, 2048);
    ASSERT_TRUE(ev.has_value());
    ASSERT_TRUE(cy.has_value()) << "trial " << trial;
    EXPECT_EQ(Rational(cy->growth, cy->period), *ev) << "trial " << trial;
  }
}

}  // namespace
}  // namespace acc::df
