#include "dataflow/dot.hpp"

#include <gtest/gtest.h>

namespace acc::df {
namespace {

TEST(Dot, ContainsActorsAndDurations) {
  Graph g;
  g.add_sdf_actor("src", 3);
  g.add_actor("worker", {1, 4});
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("src\\n[3]"), std::string::npos);
  EXPECT_NE(dot.find("worker\\n[1,4]"), std::string::npos);
}

TEST(Dot, EdgeLabelsShowRatesAndTokens) {
  Graph g;
  const ActorId a = g.add_sdf_actor("a", 1);
  const ActorId b = g.add_sdf_actor("b", 1);
  g.add_sdf_edge(a, b, 2, 3, 1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("2:3"), std::string::npos);
  EXPECT_NE(dot.find("(*)"), std::string::npos);
}

TEST(Dot, LargeTokenCountsPrintedNumerically) {
  Graph g;
  const ActorId a = g.add_sdf_actor("a", 1);
  const ActorId b = g.add_sdf_actor("b", 1);
  g.add_sdf_edge(a, b, 1, 1, 12);
  EXPECT_NE(to_dot(g).find("(12*)"), std::string::npos);
}

TEST(Dot, PerPhaseQuantaListed) {
  Graph g;
  const ActorId a = g.add_actor("a", {1, 1, 1});
  const ActorId b = g.add_sdf_actor("b", 1);
  g.add_edge(a, b, {2, 0, 1}, {1}, 0);
  EXPECT_NE(to_dot(g).find("<2,0,1>:1"), std::string::npos);
}

TEST(Dot, SpaceEdgesDashed) {
  Graph g;
  const ActorId a = g.add_sdf_actor("a", 1);
  const ActorId b = g.add_sdf_actor("b", 1);
  g.add_channel(a, b, {1}, {1}, 4, 0, "buf");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  DotOptions plain;
  plain.colour_back_edges = false;
  EXPECT_EQ(to_dot(g, plain).find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace acc::df
