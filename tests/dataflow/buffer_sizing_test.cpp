#include "dataflow/buffer_sizing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {
namespace {

struct ProducerConsumer {
  Graph g;
  ActorId a;
  ActorId b;
  Channel ch;
};

ProducerConsumer make_pc(Time da, Time db, std::int64_t p, std::int64_t c,
                         std::int64_t cap) {
  ProducerConsumer pc;
  pc.a = pc.g.add_sdf_actor("A", da);
  pc.b = pc.g.add_sdf_actor("B", db);
  pc.ch = pc.g.add_channel(pc.a, pc.b, {p}, {c}, cap);
  return pc;
}

TEST(BufferSizing, LowerBoundCoversRatesAndFill) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const Channel ch = g.add_channel(a, b, {3}, {5}, 8, 2);
  EXPECT_EQ(channel_capacity_lower_bound(g, ch), 5);
}

TEST(BufferSizing, MeasureThroughputMatchesExecutor) {
  ProducerConsumer pc = make_pc(1, 1, 1, 1, 2);
  EXPECT_EQ(measure_throughput(pc.g, pc.a), Rational(1));
}

TEST(BufferSizing, DoubleBufferingForUnitRates) {
  // Classic result: rate-1 pipeline of equal-speed actors needs capacity 2
  // to reach full throughput.
  ProducerConsumer pc = make_pc(1, 1, 1, 1, 1);
  const std::int64_t cap = min_channel_capacity_for_throughput(
      pc.g, pc.ch, pc.a, Rational(1));
  EXPECT_EQ(cap, 2);
  // The search must not leave the graph reconfigured.
  EXPECT_EQ(pc.g.channel_capacity(pc.ch), 1);
}

TEST(BufferSizing, SlowerConsumerNeedsOnlySingleSlotForItsRate) {
  // B takes 2 time units: max rate of A is 1/2; a single slot suffices for
  // 1/3 but capacity 2 is needed for 1/2.
  ProducerConsumer pc = make_pc(1, 2, 1, 1, 1);
  EXPECT_EQ(min_channel_capacity_for_throughput(pc.g, pc.ch, pc.a,
                                                Rational(1, 3)),
            1);
  EXPECT_EQ(min_channel_capacity_for_throughput(pc.g, pc.ch, pc.a,
                                                Rational(1, 2)),
            2);
}

TEST(BufferSizing, UnreachableTargetThrows) {
  ProducerConsumer pc = make_pc(2, 1, 1, 1, 1);
  BufferSizingOptions opt;
  opt.max_capacity = 64;
  // A alone caps the rate at 1/2; demanding 1 must fail at any capacity.
  EXPECT_THROW(min_channel_capacity_for_throughput(pc.g, pc.ch, pc.a,
                                                   Rational(1), opt),
               invariant_error);
}

TEST(BufferSizing, MaxThroughputWithUnboundedChannels) {
  ProducerConsumer pc = make_pc(3, 1, 1, 1, 1);
  const Rational best = max_throughput_with_unbounded_channels(
      pc.g, {pc.ch}, pc.a);
  EXPECT_EQ(best, Rational(1, 3));
  EXPECT_EQ(pc.g.channel_capacity(pc.ch), 1);  // restored
}

TEST(BufferSizing, MultiRateMinimumCapacity) {
  // A produces 2 per firing (dur 1), B consumes 3 (dur 1). For maximum
  // throughput the channel needs room for a consumer batch plus production
  // granularity; the search must find the exact minimum.
  ProducerConsumer pc = make_pc(1, 1, 2, 3, 3);
  const Rational best = max_throughput_with_unbounded_channels(
      pc.g, {pc.ch}, pc.b);
  const std::int64_t cap = min_channel_capacity_for_throughput(
      pc.g, pc.ch, pc.b, best);
  // Verify exactness: cap works, cap-1 does not.
  pc.g.set_channel_capacity(pc.ch, cap);
  EXPECT_GE(measure_throughput(pc.g, pc.b), best);
  pc.g.set_channel_capacity(pc.ch, cap - 1);
  EXPECT_LT(measure_throughput(pc.g, pc.b), best);
}

TEST(BufferSizing, MinimizeTotalCapacityTwoStagePipeline) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const ActorId c = g.add_sdf_actor("C", 1);
  const Channel ab = g.add_channel(a, b, {1}, {1}, 1);
  const Channel bc = g.add_channel(b, c, {1}, {1}, 1);
  const MultiBufferResult res =
      minimize_total_capacity(g, {ab, bc}, a, Rational(1));
  EXPECT_EQ(res.total, 4);  // 2 + 2: double buffering on both hops
  EXPECT_EQ(res.capacities, (std::vector<std::int64_t>{2, 2}));
  // Graph restored.
  EXPECT_EQ(g.channel_capacity(ab), 1);
  EXPECT_EQ(g.channel_capacity(bc), 1);
}

TEST(BufferSizing, MinimizeTotalRespectsTradeoffs) {
  // Slower middle actor: hops need different capacities; the staircase
  // search must find the cheapest split, and the result must be feasible
  // while every strictly smaller total is infeasible.
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_sdf_actor("B", 4);
  const ActorId c = g.add_sdf_actor("C", 1);
  const Channel ab = g.add_channel(a, b, {2}, {1}, 2);
  const Channel bc = g.add_channel(b, c, {1}, {2}, 2);
  const Rational target(1, 4);  // B's natural rate
  const MultiBufferResult res =
      minimize_total_capacity(g, {ab, bc}, b, target);
  // Feasibility of the reported assignment.
  g.set_channel_capacity(ab, res.capacities[0]);
  g.set_channel_capacity(bc, res.capacities[1]);
  EXPECT_GE(measure_throughput(g, b), target);
  // Optimality: brute-force all assignments with smaller total.
  for (std::int64_t x = 2; x <= res.total; ++x) {
    for (std::int64_t y = 2; y <= res.total; ++y) {
      if (x + y >= res.total) continue;
      g.set_channel_capacity(ab, x);
      g.set_channel_capacity(bc, y);
      EXPECT_LT(measure_throughput(g, b), target)
          << "smaller assignment (" << x << "," << y << ") is feasible";
    }
  }
}

// Property: throughput is monotone non-decreasing in channel capacity.
TEST(BufferSizingProperty, ThroughputMonotoneInCapacity) {
  SplitMix64 rng(0x5EED);
  for (int trial = 0; trial < 40; ++trial) {
    ProducerConsumer pc =
        make_pc(rng.uniform(1, 4), rng.uniform(1, 4), rng.uniform(1, 3),
                rng.uniform(1, 3), 1);
    const std::int64_t lb = channel_capacity_lower_bound(pc.g, pc.ch);
    Rational prev(0);
    for (std::int64_t cap = lb; cap <= lb + 8; ++cap) {
      pc.g.set_channel_capacity(pc.ch, cap);
      const Rational t = measure_throughput(pc.g, pc.a);
      EXPECT_GE(t, prev) << "cap=" << cap;
      prev = t;
    }
  }
}

}  // namespace
}  // namespace acc::df
