// Tests for the design-space exploration engine (dataflow/dse.hpp) and the
// thread pool beneath it: memo-cache hit accounting, monotone-pruning
// correctness against the brute-force staircase, and thread-count
// determinism on the PAL decoder stream graphs.
#include "dataflow/dse.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "dataflow/graph.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/sdf_model.hpp"

namespace acc::df {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTaskOnValidWorkerIds) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  std::atomic<bool> bad_worker{false};
  for (int i = 0; i < 100; ++i)
    pool.submit([&, i](std::size_t w) {
      if (w >= pool.size()) bad_worker = true;
      sum += i;
    });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
  EXPECT_FALSE(bad_worker.load());
}

TEST(ThreadPool, InlineModeExecutesAtSubmit) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int calls = 0;
  pool.submit([&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // ran inline, before wait_idle
  pool.wait_idle();
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool(threads);
    pool.submit([](std::size_t) { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> ok{0};
    pool.submit([&](std::size_t) { ++ok; });
    pool.wait_idle();
    EXPECT_EQ(ok.load(), 1);
  }
}

// ---------------------------------------------------------------- fixtures

struct ProducerConsumer {
  Graph g;
  ActorId a;
  ActorId b;
  Channel ch;
};

ProducerConsumer make_pc(Time da, Time db, std::int64_t p, std::int64_t c,
                         std::int64_t cap) {
  ProducerConsumer pc;
  pc.a = pc.g.add_sdf_actor("A", da);
  pc.b = pc.g.add_sdf_actor("B", db);
  pc.ch = pc.g.add_channel(pc.a, pc.b, {p}, {c}, cap);
  return pc;
}

/// Reference implementation: the pre-engine serial staircase DFS, probing
/// the graph directly with measure_throughput. Ground truth for pruning
/// correctness.
MultiBufferResult brute_force_minimize(Graph& g,
                                       const std::vector<Channel>& channels,
                                       ActorId reference,
                                       const Rational& target,
                                       const BufferSizingOptions& opt) {
  const std::size_t k = channels.size();
  std::vector<std::int64_t> saved;
  for (const Channel& ch : channels) saved.push_back(g.channel_capacity(ch));

  std::vector<std::int64_t> lower(k), upper(k);
  for (const Channel& ch : channels)
    g.set_channel_capacity(ch, opt.max_capacity);
  for (std::size_t i = 0; i < k; ++i) {
    // Single-channel exact minimum by linear scan (small graphs only).
    for (std::int64_t c = channel_capacity_lower_bound(g, channels[i]);; ++c) {
      ACC_CHECK(c <= opt.max_capacity);
      g.set_channel_capacity(channels[i], c);
      if (measure_throughput(g, reference, opt) >= target) {
        lower[i] = c;
        break;
      }
    }
    g.set_channel_capacity(channels[i], opt.max_capacity);
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j)
      g.set_channel_capacity(channels[j], j == i ? opt.max_capacity : lower[j]);
    for (std::int64_t c = channel_capacity_lower_bound(g, channels[i]);; ++c) {
      ACC_CHECK(c <= opt.max_capacity);
      g.set_channel_capacity(channels[i], c);
      if (measure_throughput(g, reference, opt) >= target) {
        upper[i] = c;
        break;
      }
    }
  }

  const std::int64_t base_total =
      std::accumulate(lower.begin(), lower.end(), std::int64_t{0});
  const std::int64_t max_total =
      std::accumulate(upper.begin(), upper.end(), std::int64_t{0});
  std::vector<std::int64_t> caps(k);
  MultiBufferResult best;
  std::function<bool(std::size_t, std::int64_t)> dfs =
      [&](std::size_t idx, std::int64_t slack) -> bool {
    if (idx + 1 == k) {
      if (lower[idx] + slack > upper[idx]) return false;
      caps[idx] = lower[idx] + slack;
      for (std::size_t j = 0; j < k; ++j)
        g.set_channel_capacity(channels[j], caps[j]);
      return measure_throughput(g, reference, opt) >= target;
    }
    for (std::int64_t extra = 0; extra <= slack; ++extra) {
      if (lower[idx] + extra > upper[idx]) break;
      caps[idx] = lower[idx] + extra;
      if (dfs(idx + 1, slack - extra)) return true;
    }
    return false;
  };
  for (std::int64_t total = base_total; total <= max_total; ++total) {
    if (dfs(0, total - base_total)) {
      best.capacities = caps;
      best.total = total;
      break;
    }
  }
  for (std::size_t i = 0; i < k; ++i)
    g.set_channel_capacity(channels[i], saved[i]);
  ACC_CHECK(!best.capacities.empty());
  return best;
}

// ---------------------------------------------------------------- memo cache

TEST(DseEngine, MemoCacheCountsHitsAndMisses) {
  ProducerConsumer pc = make_pc(1, 1, 1, 1, 2);
  DseEngine engine(pc.g, {pc.ch}, pc.a);
  const Rational t1 = engine.throughput({2});
  const Rational t2 = engine.throughput({2});
  EXPECT_EQ(t1, t2);
  const DseStats s = engine.stats();
  EXPECT_EQ(s.simulations, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_GT(s.cache_hit_rate(), 0.0);
}

TEST(DseEngine, MemoCacheSharedAcrossSearchPhases) {
  // The saturation doubling probes and the min-capacity binary search hit
  // overlapping capacity vectors — the shared memo must convert the overlap
  // into hits.
  ProducerConsumer pc = make_pc(1, 1, 2, 3, 3);
  DseEngine engine(pc.g, {pc.ch}, pc.b);
  const Rational best = engine.max_throughput_unbounded();
  (void)engine.min_capacity_for(0, engine.snapshot_capacities(), best);
  EXPECT_GT(engine.stats().cache_hits, 0);
}

TEST(DseEngine, FingerprintSeparatesStructures) {
  ProducerConsumer pc1 = make_pc(1, 2, 1, 1, 2);
  ProducerConsumer pc2 = make_pc(1, 2, 1, 1, 2);
  ProducerConsumer pc3 = make_pc(1, 3, 1, 1, 2);
  DseEngine e1(pc1.g, {pc1.ch}, pc1.a);
  DseEngine e2(pc2.g, {pc2.ch}, pc2.a);
  DseEngine e3(pc3.g, {pc3.ch}, pc3.a);
  EXPECT_EQ(e1.graph_fingerprint(), e2.graph_fingerprint());
  EXPECT_NE(e1.graph_fingerprint(), e3.graph_fingerprint());
  // Capacity changes must NOT change the fingerprint (they are the memo key,
  // not part of it).
  pc1.g.set_channel_capacity(pc1.ch, 7);
  DseEngine e4(pc1.g, {pc1.ch}, pc1.a);
  EXPECT_EQ(e1.graph_fingerprint(), e4.graph_fingerprint());
}

// ---------------------------------------------------------------- pruning

TEST(DseEngine, MonotonePruningOnComparableChain) {
  // One channel: capacity vectors form a chain, so every query after the
  // first two is decidable from the frontier alone.
  ProducerConsumer pc = make_pc(1, 1, 1, 1, 1);
  DseEngine engine(pc.g, {pc.ch}, pc.a);
  const Rational target(1);
  EXPECT_FALSE(engine.feasible({1}, target));  // simulated
  EXPECT_TRUE(engine.feasible({2}, target));   // simulated
  EXPECT_TRUE(engine.feasible({5}, target));   // >= feasible 2: pruned
  const DseStats s = engine.stats();
  EXPECT_EQ(s.simulations, 2);
  EXPECT_EQ(s.pruned_feasible, 1);
  EXPECT_EQ(s.pruned_infeasible, 0);
}

TEST(DseEngine, PruningNeverChangesAnswers) {
  // Pruned feasibility answers must equal fresh simulation on a second
  // engine with a cold cache.
  SplitMix64 rng(0xDE5E);
  for (int trial = 0; trial < 10; ++trial) {
    ProducerConsumer pc =
        make_pc(rng.uniform(1, 3), rng.uniform(1, 3), rng.uniform(1, 2),
                rng.uniform(1, 2), 1);
    DseEngine warm(pc.g, {pc.ch}, pc.a);
    const Rational target(1, rng.uniform(1, 3));
    // Warm the frontier from both sides, then query the whole range.
    (void)warm.feasible({1}, target);
    (void)warm.feasible({6}, target);
    for (std::int64_t c = 1; c <= 6; ++c) {
      DseEngine cold(pc.g, {pc.ch}, pc.a);
      EXPECT_EQ(warm.feasible({c}, target), cold.feasible({c}, target))
          << "cap=" << c;
    }
  }
}

TEST(DseEngine, MinimizeMatchesBruteForceOnSmallGraphs) {
  SplitMix64 rng(0xACC);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g;
    const ActorId a = g.add_sdf_actor("A", rng.uniform(1, 3));
    const ActorId b = g.add_sdf_actor("B", rng.uniform(1, 4));
    const ActorId c = g.add_sdf_actor("C", rng.uniform(1, 3));
    const Channel ab = g.add_channel(a, b, {rng.uniform(1, 2)}, {1}, 2);
    const Channel bc = g.add_channel(b, c, {1}, {rng.uniform(1, 2)}, 2);
    BufferSizingOptions opt;
    opt.max_capacity = 64;
    const Rational target = max_throughput_with_unbounded_channels(
        g, {ab, bc}, b, opt);
    const MultiBufferResult ref =
        brute_force_minimize(g, {ab, bc}, b, target, opt);
    for (const int jobs : {1, 3}) {
      BufferSizingOptions jopt = opt;
      jopt.jobs = jobs;
      const MultiBufferResult res =
          minimize_total_capacity(g, {ab, bc}, b, target, jopt);
      EXPECT_EQ(res.total, ref.total) << "trial=" << trial << " jobs=" << jobs;
      EXPECT_EQ(res.capacities, ref.capacities)
          << "trial=" << trial << " jobs=" << jobs;
    }
  }
}

// ------------------------------------------------------------- determinism

/// The Fig. 7 SDF abstraction of a PAL-decoder-shaped stream (shared actor
/// with reconfiguration, chunked down-sampling consumer) — the graphs the
/// Sec. 6 explorations run on, scaled to test size.
sharing::SharedSystemSpec pal_like_small() {
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"start", Rational(1, 8), 20}, {"end", Rational(1, 64), 20}};
  return sys;
}

TEST(DseDeterminism, MinimizeTotalIdenticalAcrossThreadCountsOnPalGraphs) {
  const sharing::SharedSystemSpec sys = pal_like_small();
  const sharing::BlockSizeResult blocks =
      sharing::solve_block_sizes_fixpoint(sys);
  ASSERT_TRUE(blocks.feasible);
  for (const std::size_t stream : {std::size_t{0}, std::size_t{1}}) {
    const Time period = stream == 0 ? 8 : 64;
    df::DseStats stats1, stats4;
    const sharing::StreamBufferResult r1 = sharing::min_buffers_for_stream(
        sys, stream, blocks.eta, period, /*consumer_chunk=*/stream == 0 ? 8 : 1,
        /*jobs=*/1, &stats1);
    const sharing::StreamBufferResult r4 = sharing::min_buffers_for_stream(
        sys, stream, blocks.eta, period, /*consumer_chunk=*/stream == 0 ? 8 : 1,
        /*jobs=*/4, &stats4);
    ASSERT_EQ(r1.feasible, r4.feasible);
    EXPECT_EQ(r1.alpha0, r4.alpha0) << "stream=" << stream;
    EXPECT_EQ(r1.alpha3, r4.alpha3) << "stream=" << stream;
    EXPECT_EQ(r1.total(), r4.total());
    EXPECT_GT(stats1.simulations, 0);
    EXPECT_GT(stats4.simulations, 0);
  }
}

TEST(DseDeterminism, MinimizeTotalIdenticalAcrossThreadCountsOnSdfModel) {
  // Drive minimize_total_capacity directly on the two-buffer SDF stream
  // model with a chunked consumer (the non-monotone Fig. 8 shape).
  sharing::SdfModelOptions opt;
  opt.eta = 6;
  opt.shared_duration = 17;
  opt.producer_period = 3;
  opt.consumer_period = 12;
  opt.consumer_chunk = 4;
  opt.alpha0 = 40;
  opt.alpha3 = 40;
  sharing::SdfStreamModel model = sharing::build_sdf_stream_model(opt);
  const Rational target(1, 12);
  BufferSizingOptions bopt;
  bopt.max_capacity = 40;

  bopt.jobs = 1;
  const MultiBufferResult r1 = minimize_total_capacity(
      model.graph, {model.input_buffer, model.output_buffer}, model.consumer,
      target, bopt);
  for (const int jobs : {2, 4, 8}) {
    bopt.jobs = jobs;
    const MultiBufferResult rn = minimize_total_capacity(
        model.graph, {model.input_buffer, model.output_buffer}, model.consumer,
        target, bopt);
    EXPECT_EQ(rn.total, r1.total) << "jobs=" << jobs;
    EXPECT_EQ(rn.capacities, r1.capacities) << "jobs=" << jobs;
  }
}

TEST(DseDeterminism, ParetoSweepIdenticalAcrossThreadCounts) {
  ProducerConsumer pc = make_pc(2, 3, 2, 3, 3);
  BufferSizingOptions o1;
  const std::vector<ParetoPoint> p1 = pareto_buffer_sweep(pc.g, pc.ch, pc.b, o1);
  BufferSizingOptions o4;
  o4.jobs = 4;
  const std::vector<ParetoPoint> p4 = pareto_buffer_sweep(pc.g, pc.ch, pc.b, o4);
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].capacity, p4[i].capacity);
    EXPECT_EQ(p1[i].throughput, p4[i].throughput);
  }
}

// ------------------------------------------------------------ executor path

TEST(DseEngine, AssumeValidatedExecutorMatchesValidatingOne) {
  ProducerConsumer pc = make_pc(2, 3, 2, 3, 6);
  SelfTimedExecutor checked(pc.g);
  SelfTimedExecutor unchecked(pc.g, assume_validated);
  const ThroughputResult a = checked.analyze_throughput(pc.b);
  const ThroughputResult b = unchecked.analyze_throughput(pc.b);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.firings_in_period, b.firings_in_period);
}

}  // namespace
}  // namespace acc::df
