#include "dataflow/hsdf.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {
namespace {

TEST(Hsdf, ExpansionNodeCountEqualsRepetitionSum) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 2);
  g.add_sdf_edge(a, b, 2, 3, 0);
  const HsdfGraph h = expand_to_hsdf(g);
  EXPECT_EQ(h.num_nodes(), 3 + 2);  // r = [3, 2]
  // Copies carry their origin's duration.
  for (std::int32_t k = 0; k < h.num_nodes(); ++k)
    EXPECT_EQ(h.duration[k], g.actor(h.origin[k]).phase_durations[0]);
}

TEST(Hsdf, HomogeneousGraphExpandsToItself) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_sdf_actor("B", 3);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 1);
  const HsdfGraph h = expand_to_hsdf(g);
  EXPECT_EQ(h.num_nodes(), 2);
  // Edges: a->b (0 tokens), b->a (1 token), plus two self-edges.
  EXPECT_EQ(h.edges.size(), 4u);
}

TEST(Hsdf, RejectsCsdfActors) {
  Graph g;
  g.add_actor("A", {1, 1});
  EXPECT_THROW(expand_to_hsdf(g), precondition_error);
}

TEST(Hsdf, ThroughputMatchesExecutorOnCycle) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_sdf_actor("B", 3);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 1);
  const SdfThroughput mcm = sdf_throughput_via_mcm(g, a);
  ASSERT_FALSE(mcm.deadlocked);
  EXPECT_EQ(mcm.firings_per_time, Rational(1, 5));
}

TEST(Hsdf, DeadlockDetectedViaZeroTokenCycle) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 0);
  EXPECT_TRUE(sdf_throughput_via_mcm(g, a).deadlocked);
}

TEST(Hsdf, MultiRateThroughputMatchesExecutor) {
  // A --2:3--> B with a bounded return channel; both analyses must agree.
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 3);
  const ActorId b = g.add_sdf_actor("B", 4);
  g.add_sdf_edge(a, b, 2, 3, 0);
  g.add_sdf_edge(b, a, 3, 2, 6);
  const SdfThroughput mcm = sdf_throughput_via_mcm(g, a);
  SelfTimedExecutor exec(g);
  const ThroughputResult st = exec.analyze_throughput(a);
  ASSERT_FALSE(mcm.deadlocked);
  ASSERT_FALSE(st.deadlocked);
  EXPECT_EQ(mcm.firings_per_time, st.throughput);
}

// Property: for random bounded producer-consumer graphs, MCM analysis on the
// HSDF expansion and self-timed execution agree exactly.
TEST(HsdfProperty, AgreesWithSelfTimedExecutionOnRandomGraphs) {
  SplitMix64 rng(0xD00D);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Graph g;
    const ActorId a = g.add_sdf_actor("A", rng.uniform(1, 5));
    const ActorId b = g.add_sdf_actor("B", rng.uniform(1, 5));
    const std::int64_t p = rng.uniform(1, 4);
    const std::int64_t c = rng.uniform(1, 4);
    // Capacity generous enough to avoid structural deadlock.
    const std::int64_t cap = p + c + rng.uniform(0, 6);
    g.add_channel(a, b, {p}, {c}, cap);
    const SdfThroughput mcm = sdf_throughput_via_mcm(g, b);
    SelfTimedExecutor exec(g);
    const ThroughputResult st = exec.analyze_throughput(b);
    ASSERT_EQ(mcm.deadlocked, st.deadlocked) << "p=" << p << " c=" << c
                                             << " cap=" << cap;
    if (!st.deadlocked) {
      EXPECT_EQ(mcm.firings_per_time, st.throughput)
          << "p=" << p << " c=" << c << " cap=" << cap;
      ++checked;
    }
  }
  EXPECT_GT(checked, 30);  // most random instances must be live
}

}  // namespace
}  // namespace acc::df
