#include "dataflow/executor.hpp"

#include <gtest/gtest.h>

#include "dataflow/graph.hpp"

namespace acc::df {
namespace {

// A(2) -> B(3) with the return edge holding one token: the classic two-actor
// cycle with period 5.
Graph two_actor_cycle() {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_sdf_actor("B", 3);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 1);
  return g;
}

TEST(Executor, TwoActorCycleSchedule) {
  Graph g = two_actor_cycle();
  SelfTimedExecutor exec(g);
  const auto t = exec.run_until_firings(g.find_actor("B"), 2);
  ASSERT_TRUE(t.has_value());
  // A: [0,2], B: [2,5], A: [5,7], B: [7,10].
  EXPECT_EQ(*t, 10);
}

TEST(Executor, TwoActorCycleThroughput) {
  Graph g = two_actor_cycle();
  SelfTimedExecutor exec(g);
  const ThroughputResult r = exec.analyze_throughput(g.find_actor("A"));
  ASSERT_FALSE(r.deadlocked);
  EXPECT_EQ(r.throughput, Rational(1, 5));
}

TEST(Executor, CompletionTimesAreMonotone) {
  Graph g = two_actor_cycle();
  SelfTimedExecutor exec(g);
  const std::vector<Time> times = exec.completion_times(g.find_actor("A"), 4);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], 2);
  EXPECT_EQ(times[1], 7);
  EXPECT_EQ(times[2], 12);
  EXPECT_EQ(times[3], 17);
}

TEST(Executor, DeadlockDetected) {
  // Cycle with no initial tokens can never fire.
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 0);
  SelfTimedExecutor exec(g);
  EXPECT_FALSE(exec.run_until_firings(a, 1).has_value());
  SelfTimedExecutor exec2(g);
  EXPECT_TRUE(exec2.analyze_throughput(a).deadlocked);
}

TEST(Executor, SerializedSourceFiresBackToBack) {
  Graph g;
  const ActorId src = g.add_sdf_actor("src", 4);
  const ActorId sink = g.add_sdf_actor("sink", 1);
  g.add_sdf_edge(src, sink, 1, 1, 0);
  SelfTimedExecutor exec(g);
  const auto t = exec.run_until_firings(src, 3);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 12);  // firings at [0,4],[4,8],[8,12]
}

TEST(Executor, MultiRateTokenAccounting) {
  // A produces 2 per firing, B consumes 3: after one iteration (3 A firings,
  // 2 B firings) tokens return to initial.
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  const EdgeId e = g.add_sdf_edge(a, b, 2, 3, 0);
  SelfTimedExecutor exec(g);
  ASSERT_TRUE(exec.run_until_firings(b, 2).has_value());
  // Token conservation: produced - consumed = in queue. (Self-timed A runs
  // ahead of B, so the edge need not drain to zero.)
  EXPECT_EQ(exec.tokens(e),
            exec.completed_firings(a) * 2 - exec.completed_firings(b) * 3);
  EXPECT_GE(exec.completed_firings(b), 2);
}

TEST(Executor, CsdfPhasesRespectPerPhaseQuantaAndDurations) {
  // A alternates phases: phase 0 (dur 1) produces 1, phase 1 (dur 4)
  // produces 0. B needs 1 token per firing.
  Graph g;
  const ActorId a = g.add_actor("A", {1, 4});
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_edge(a, b, {1, 0}, {1}, 0);
  SelfTimedExecutor exec(g);
  std::vector<Time> times = exec.completion_times(b, 3);
  ASSERT_EQ(times.size(), 3u);
  // A: ph0 [0,1] -> token; B: [1,2]. A: ph1 [1,5]. A: ph0 [5,6] -> B [6,7].
  EXPECT_EQ(times[0], 2);
  EXPECT_EQ(times[1], 7);
  EXPECT_EQ(times[2], 12);
}

TEST(Executor, BoundedChannelCreatesBackPressure) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 2);
  Channel ch = g.add_channel(a, b, {1}, {1}, /*capacity=*/1);
  SelfTimedExecutor exec(g);
  const ThroughputResult r = exec.analyze_throughput(a);
  // With a single-slot buffer the pair strictly alternates: period 3.
  EXPECT_EQ(r.throughput, Rational(1, 3));
  // A double buffer lets B's duration dominate: period 2.
  g.set_channel_capacity(ch, 2);
  SelfTimedExecutor exec2(g);
  EXPECT_EQ(exec2.analyze_throughput(a).throughput, Rational(1, 2));
}

TEST(Executor, MaxTokensSeenTracksOccupancy) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 10);
  const EdgeId e = g.add_sdf_edge(a, b, 1, 1, 0);
  SelfTimedExecutor exec(g);
  ASSERT_TRUE(exec.run_until_firings(b, 1).has_value());
  // While B's first firing runs (10 time units), A produced ~9 more tokens.
  EXPECT_GE(exec.max_tokens_seen(e), 8);
}

TEST(Executor, ZeroDurationActorsComplete) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 0);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 1);
  SelfTimedExecutor exec(g);
  const auto t = exec.run_until_firings(b, 3);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 3);  // only B's duration matters
}

TEST(Executor, ZeroDurationCycleIsRejectedNotHung) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 0);
  const ActorId b = g.add_sdf_actor("B", 0);
  g.add_sdf_edge(a, b, 1, 1, 1);
  g.add_sdf_edge(b, a, 1, 1, 1);
  SelfTimedExecutor exec(g);
  EXPECT_THROW(exec.run_until_firings(a, 1000000000), invariant_error);
}

TEST(Executor, DiagnoseDeadlockNamesStarvedActors) {
  Graph g;
  const ActorId a = g.add_sdf_actor("prodA", 1);
  const ActorId b = g.add_sdf_actor("consB", 1);
  g.add_sdf_edge(a, b, 1, 1, 0, "ab");
  g.add_sdf_edge(b, a, 1, 1, 0, "ba");  // zero-token cycle: dead on arrival
  const DeadlockReport rep = diagnose_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  EXPECT_EQ(rep.at, 0);
  ASSERT_EQ(rep.starved.size(), 2u);
  const std::string s = describe(rep, g);
  EXPECT_NE(s.find("prodA"), std::string::npos);
  EXPECT_NE(s.find("consB"), std::string::npos);
  EXPECT_NE(s.find("0/1 tokens"), std::string::npos);
}

TEST(Executor, DiagnoseDeadlockAfterPartialProgress) {
  // B consumes 3 per firing but only 2 tokens ever circulate.
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 1, 3, 0, "ab");
  g.add_sdf_edge(b, a, 3, 1, 2, "ba");
  const DeadlockReport rep = diagnose_deadlock(g);
  ASSERT_TRUE(rep.deadlocked);
  EXPECT_GT(rep.at, 0);  // A fired twice before starving
  bool saw_b = false;
  for (const auto& s : rep.starved) {
    if (s.actor == b) {
      saw_b = true;
      EXPECT_EQ(s.tokens_present, 2);
      EXPECT_EQ(s.tokens_needed, 3);
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(Executor, DiagnoseLiveGraphReportsLive) {
  Graph g = two_actor_cycle();
  const DeadlockReport rep = diagnose_deadlock(g, /*horizon=*/1000);
  EXPECT_FALSE(rep.deadlocked);
  EXPECT_NE(describe(rep, g).find("live"), std::string::npos);
}

TEST(Executor, ResetRestoresInitialState) {
  Graph g = two_actor_cycle();
  SelfTimedExecutor exec(g);
  ASSERT_TRUE(exec.run_until_firings(0, 3).has_value());
  exec.reset();
  EXPECT_EQ(exec.now(), 0);
  EXPECT_EQ(exec.completed_firings(0), 0);
  const auto t = exec.run_until_firings(0, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2);
}

TEST(Executor, ObserverSeesFiringsAndProductions) {
  Graph g = two_actor_cycle();
  SelfTimedExecutor exec(g);
  int firings = 0;
  int produces = 0;
  ExecObservers obs;
  obs.on_firing = [&](ActorId, std::int32_t, Time, Time) { ++firings; };
  obs.on_produce = [&](EdgeId, std::int64_t, Time) { ++produces; };
  exec.set_observers(obs);
  ASSERT_TRUE(exec.run_until_firings(1, 2).has_value());
  // When B's 2nd completion lands, its back-token immediately lets A start a
  // 3rd firing within the same step: 5 starts, 4 completed productions.
  EXPECT_EQ(firings, 5);
  EXPECT_EQ(produces, 4);
}

TEST(Executor, RunForHorizonStopsOnTime) {
  Graph g = two_actor_cycle();
  SelfTimedExecutor exec(g);
  exec.run_for(9);
  // Events at t<=9: A@2, B@5, A@7. The B completion at t=10 must not run.
  EXPECT_EQ(exec.completed_firings(0), 2);
  EXPECT_EQ(exec.completed_firings(1), 1);
}

}  // namespace
}  // namespace acc::df
