#include "dataflow/schedule.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {
namespace {

HsdfGraph two_actor_cycle_hsdf() {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 2);
  const ActorId b = g.add_sdf_actor("B", 3);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 1);
  return expand_to_hsdf(g);
}

TEST(Schedule, FeasibleAtMcrInfeasibleBelow) {
  const HsdfGraph h = two_actor_cycle_hsdf();
  // MCR = (2+3)/1 = 5.
  EXPECT_FALSE(periodic_schedule(h, 4).feasible);
  const PeriodicSchedule s5 = periodic_schedule(h, 5);
  ASSERT_TRUE(s5.feasible);
  EXPECT_TRUE(schedule_admissible(h, s5));
}

TEST(Schedule, MinimumIntegerPeriodMatchesMcr) {
  const HsdfGraph h = two_actor_cycle_hsdf();
  const auto t = minimum_integer_period(h);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 5);
}

TEST(Schedule, StartOffsetsRespectPipelineOrder) {
  const HsdfGraph h = two_actor_cycle_hsdf();
  const PeriodicSchedule s = periodic_schedule(h, 5);
  ASSERT_TRUE(s.feasible);
  // B can only start after A's output: s(B) >= s(A) + 2.
  // (Nodes: the expansion keeps actor order for r = [1,1].)
  EXPECT_GE(s.start[1], s.start[0] + 2);
}

TEST(Schedule, DeadlockedGraphHasNoPeriod) {
  Graph g;
  const ActorId a = g.add_sdf_actor("A", 1);
  const ActorId b = g.add_sdf_actor("B", 1);
  g.add_sdf_edge(a, b, 1, 1, 0);
  g.add_sdf_edge(b, a, 1, 1, 0);
  const HsdfGraph h = expand_to_hsdf(g);
  EXPECT_FALSE(minimum_integer_period(h).has_value());
}

TEST(Schedule, GenerousPeriodAlwaysFeasible) {
  const HsdfGraph h = two_actor_cycle_hsdf();
  const PeriodicSchedule s = periodic_schedule(h, 1000);
  ASSERT_TRUE(s.feasible);
  EXPECT_TRUE(schedule_admissible(h, s));
}

// Property: across random bounded pipelines, (a) the minimum integer period
// equals ceil(1 / executor throughput-per-iteration), (b) the schedule at
// that period validates, and (c) one cycle less is infeasible.
TEST(ScheduleProperty, MinimumPeriodAgreesWithExecutor) {
  SplitMix64 rng(0x5CED);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Graph g;
    const ActorId a = g.add_sdf_actor("A", rng.uniform(1, 5));
    const ActorId b = g.add_sdf_actor("B", rng.uniform(1, 5));
    const std::int64_t prod = rng.uniform(1, 3);
    const std::int64_t cons = rng.uniform(1, 3);
    g.add_channel(a, b, {prod}, {cons}, prod + cons + rng.uniform(0, 4));
    const HsdfGraph h = expand_to_hsdf(g);
    const auto t = minimum_integer_period(h);
    SelfTimedExecutor exec(g);
    const ThroughputResult st = exec.analyze_throughput(a);
    if (st.deadlocked) {
      EXPECT_FALSE(t.has_value());
      continue;
    }
    ASSERT_TRUE(t.has_value());
    // Iterations per time = throughput(a) / r[a]; period per iteration is
    // its reciprocal.
    const RepetitionVector rv = compute_repetition_vector(g);
    const Rational iter_period =
        (st.throughput / Rational(rv.firings[a])).reciprocal();
    EXPECT_EQ(*t, iter_period.ceil()) << "trial " << trial;
    const PeriodicSchedule ok = periodic_schedule(h, *t);
    EXPECT_TRUE(schedule_admissible(h, ok));
    if (*t > 1 && Rational(*t - 1) < iter_period)
      EXPECT_FALSE(periodic_schedule(h, *t - 1).feasible);
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

}  // namespace
}  // namespace acc::df
