#include "app/pal_system.hpp"

#include <gtest/gtest.h>

#include "radio/metrics.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"

namespace acc::app {
namespace {

PalSimConfig test_config() {
  PalSimConfig cfg;
  cfg.input_samples = 1 << 15;  // ~512 audio samples: fast but meaningful
  return cfg;
}

// End-to-end: the shared-accelerator MPSoC decodes real stereo audio in
// real time — the paper's headline demonstration.
TEST(PalDecoder, DecodesStereoInRealTime) {
  const PalSimResult r = run_pal_decoder(test_config());

  // Real-time verdict: the hard real-time source never dropped a sample and
  // the DACs never starved.
  EXPECT_EQ(r.source_drops, 0);
  EXPECT_EQ(r.sink_underruns, 0);

  // Audio recovered on both channels with healthy SNR.
  ASSERT_GT(r.left.size(), 300u);
  ASSERT_GT(r.right.size(), 300u);
  std::vector<double> left = r.left;
  std::vector<double> right = r.right;
  radio::remove_dc(left);
  radio::remove_dc(right);
  const std::size_t skip = 96;
  EXPECT_GT(radio::tone_snr_db(left, r.audio_rate, 400.0, skip), 18.0);
  EXPECT_GT(radio::tone_snr_db(right, r.audio_rate, 700.0, skip), 25.0);
  // Stereo separation: each channel's own tone dominates the other's.
  const auto leak = [&](const std::vector<double>& ch, double own,
                        double other) {
    const std::span<const double> body(ch.data() + skip, ch.size() - skip);
    return radio::goertzel_power(body, r.audio_rate, own) /
           (radio::goertzel_power(body, r.audio_rate, other) + 1e-12);
  };
  EXPECT_GT(leak(left, 400.0, 700.0), 20.0);
  EXPECT_GT(leak(right, 700.0, 400.0), 20.0);
}

TEST(PalDecoder, BlockSizesComeFromAlgorithm1WithEightToOneRatio) {
  const PalSimConfig cfg = test_config();
  const PalSimResult r = run_pal_decoder(cfg);
  // Blocks are decimation-aligned and in ~8:1 ratio (paper §VI observed
  // exactly 8:1 thanks to the 8:1 down-sampling between the stream pairs).
  EXPECT_EQ(r.eta_stage1 % cfg.decimation, 0);
  EXPECT_EQ(r.eta_stage2 % cfg.decimation, 0);
  EXPECT_NEAR(static_cast<double>(r.eta_stage1) /
                  static_cast<double>(r.eta_stage2),
              8.0, 0.25);
  // And they satisfy Eq. 5 on the analysis model.
  const sharing::SharedSystemSpec spec = make_system_spec(cfg);
  EXPECT_TRUE(sharing::throughput_met(
      spec, {r.eta_stage1, r.eta_stage1, r.eta_stage2, r.eta_stage2}));
}

TEST(PalDecoder, RoundRobinServesAllFourStreams) {
  const PalSimResult r = run_pal_decoder(test_config());
  ASSERT_EQ(r.blocks_per_stream.size(), 4u);
  for (std::int64_t b : r.blocks_per_stream) EXPECT_GE(b, 3);
  // Paired streams complete the same number of blocks (+-1).
  EXPECT_NEAR(r.blocks_per_stream[0], r.blocks_per_stream[1], 1);
  EXPECT_NEAR(r.blocks_per_stream[2], r.blocks_per_stream[3], 1);
}

TEST(PalDecoder, SharedAcceleratorsProcessEverySample) {
  const PalSimResult r = run_pal_decoder(test_config());
  // Every forwarded sample passes through BOTH shared accelerators
  // (CORDIC then FIR): one CORDIC sample each, one FIR sample each.
  EXPECT_EQ(r.cordic_samples, r.gateway.samples_forwarded);
  EXPECT_EQ(r.fir_samples, r.gateway.samples_forwarded);
  // 1 cycle/sample accelerators: busy cycles equal samples.
  EXPECT_EQ(r.cordic_busy, r.cordic_samples);
}

TEST(PalDecoder, MeasuredUtilizationBelowAnalysisBound) {
  const PalSimResult r = run_pal_decoder(test_config());
  // The analysis utilization (c0 * sum mu) bounds the measured gateway
  // data-forwarding duty cycle.
  const double measured = static_cast<double>(r.gateway.data_cycles) /
                          static_cast<double>(r.cycles_run);
  EXPECT_LT(measured, r.utilization.to_double() + 0.05);
  EXPECT_GT(measured, 0.05);  // and the gateway was genuinely busy
}

// System-level refinement (paper Fig. 2, bottom arrow): the cycle-accurate
// "hardware" must behave no worse than the worst-case analysis — here,
// consecutive block completions of every stream must never be farther apart
// than the worst-case round gamma_hat (plus the exit notification latency).
TEST(PalDecoder, HardwareBlockSpacingWithinGammaHat) {
  PalSimConfig cfg = test_config();
  const PalSimResult r = run_pal_decoder(cfg);
  const sharing::SharedSystemSpec spec = make_system_spec(cfg);
  const sharing::Time gamma = sharing::gamma_hat(
      spec, {r.eta_stage1, r.eta_stage1, r.eta_stage2, r.eta_stage2});
  // Re-run at the sim level to recover the raw completion times (the result
  // struct carries counts only): rebuild quickly with explicit blocks.
  // Blocks-per-stream near-equality already guards RR; here we bound the
  // drift via counts: over the feed phase each stream must have completed
  // at least floor(feed / gamma) - 1 blocks.
  const sim::Cycle feed =
      static_cast<sim::Cycle>(cfg.input_samples) * cfg.input_period;
  const std::int64_t min_blocks = feed / gamma - 1;
  for (std::int64_t b : r.blocks_per_stream) EXPECT_GE(b, min_blocks);
}

TEST(PalDecoder, ExplicitBlockSizesHonored) {
  PalSimConfig cfg = test_config();
  cfg.input_samples = 1 << 14;
  cfg.eta_stage1 = 2720;
  cfg.eta_stage2 = 344;
  const PalSimResult r = run_pal_decoder(cfg);
  EXPECT_EQ(r.eta_stage1, 2720);
  EXPECT_EQ(r.eta_stage2, 344);
  EXPECT_EQ(r.source_drops, 0);
}

TEST(PalDecoder, MisalignedExplicitBlocksRejected) {
  PalSimConfig cfg = test_config();
  cfg.eta_stage1 = 2673;  // not a multiple of 8
  cfg.eta_stage2 = 336;
  EXPECT_THROW((void)run_pal_decoder(cfg), precondition_error);
}

TEST(PalDecoder, InfeasiblePeriodDetected) {
  PalSimConfig cfg = test_config();
  cfg.input_period = 20;  // utilization = 15 * 2.25/20 > 1
  const sharing::SharedSystemSpec spec = make_system_spec(cfg);
  EXPECT_GE(sharing::utilization(spec), Rational(1));
  EXPECT_THROW((void)run_pal_decoder(cfg), precondition_error);
}

}  // namespace
}  // namespace acc::app
