// ISSUE 2 satellite 2: the fault campaign is deterministic — the same seed
// yields a bit-identical BENCH_faults.json document and bit-identical
// per-point gateway traces, across repeated runs and across --jobs values.
// The test is sanitizer-friendly: under TSan it additionally exercises the
// thread pool path for races (campaign points share no mutable state).
#include <gtest/gtest.h>

#include "app/fault_campaign.hpp"

namespace acc::app {
namespace {

TEST(FaultDeterminism, SameSeedSameDocAcrossRunsAndJobs) {
  FaultCampaignConfig cfg;  // default small campaign, seed 0x5EED
  cfg.jobs = 1;
  const FaultCampaignResult serial = run_fault_campaign(cfg);
  const std::string serial_doc = faults_bench_doc(cfg, serial).dump();

  cfg.jobs = 2;
  const FaultCampaignResult threaded = run_fault_campaign(cfg);
  const std::string threaded_doc = faults_bench_doc(cfg, threaded).dump();

  EXPECT_EQ(serial_doc, threaded_doc);
  ASSERT_EQ(serial.points.size(), threaded.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].trace_csv, threaded.points[i].trace_csv)
        << "point " << i << " (" << serial.points[i].level.label << ")";
  }

  // Same seed again: bit-identical, not merely equivalent.
  cfg.jobs = 1;
  const FaultCampaignResult again = run_fault_campaign(cfg);
  EXPECT_EQ(faults_bench_doc(cfg, again).dump(), serial_doc);
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  FaultCampaignConfig a;
  a.levels = {{"moderate", 1.0, false}};
  FaultCampaignConfig b = a;
  b.seed = a.seed + 1;
  const FaultCampaignResult ra = run_fault_campaign(a);
  const FaultCampaignResult rb = run_fault_campaign(b);
  ASSERT_EQ(ra.points.size(), 1u);
  ASSERT_EQ(rb.points.size(), 1u);
  EXPECT_NE(ra.points[0].trace_csv, rb.points[0].trace_csv);
}

}  // namespace
}  // namespace acc::app
