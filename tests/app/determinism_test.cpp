// The whole MPSoC simulation is deterministic: identical configurations
// must produce bit-identical audio, statistics and event counts. (Regression
// guard for accidental unordered-container or uninitialized-state
// dependence anywhere in the component stack.)
#include <gtest/gtest.h>

#include "app/pal_system.hpp"

namespace acc::app {
namespace {

TEST(Determinism, TwoRunsAreBitIdentical) {
  PalSimConfig cfg;
  cfg.input_samples = 1 << 13;
  const PalSimResult a = run_pal_decoder(cfg);
  const PalSimResult b = run_pal_decoder(cfg);

  EXPECT_EQ(a.left, b.left);
  EXPECT_EQ(a.right, b.right);
  EXPECT_EQ(a.eta_stage1, b.eta_stage1);
  EXPECT_EQ(a.eta_stage2, b.eta_stage2);
  EXPECT_EQ(a.source_drops, b.source_drops);
  EXPECT_EQ(a.sink_underruns, b.sink_underruns);
  EXPECT_EQ(a.gateway.blocks, b.gateway.blocks);
  EXPECT_EQ(a.gateway.samples_forwarded, b.gateway.samples_forwarded);
  EXPECT_EQ(a.gateway.data_cycles, b.gateway.data_cycles);
  EXPECT_EQ(a.gateway.reconfig_cycles, b.gateway.reconfig_cycles);
  EXPECT_EQ(a.cordic_samples, b.cordic_samples);
  EXPECT_EQ(a.fir_busy, b.fir_busy);
  EXPECT_EQ(a.blocks_per_stream, b.blocks_per_stream);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
}

TEST(Determinism, DedicatedBaselineAlsoDeterministic) {
  PalSimConfig cfg;
  cfg.input_samples = 1 << 12;
  const PalSimResult a = run_pal_decoder_dedicated(cfg);
  const PalSimResult b = run_pal_decoder_dedicated(cfg);
  EXPECT_EQ(a.left, b.left);
  EXPECT_EQ(a.right, b.right);
  EXPECT_EQ(a.blocks_per_stream, b.blocks_per_stream);
}

TEST(Determinism, SharedAndDedicatedAgreeFunctionally) {
  // Same broadcast, same kernels, different architectures: the decoded
  // audio differs only in timing alignment, so the recovered tone power
  // must agree closely (not bit-exactly: block boundaries shift the
  // decimation grid alignment at stream start).
  PalSimConfig cfg;
  cfg.input_samples = 1 << 15;
  const PalSimResult sh = run_pal_decoder(cfg);
  const PalSimResult de = run_pal_decoder_dedicated(cfg);
  ASSERT_GT(sh.right.size(), 280u);
  ASSERT_GT(de.right.size(), 280u);
  auto power = [](const std::vector<double>& v) {
    double p = 0;
    for (std::size_t i = 128; i < v.size(); ++i) p += v[i] * v[i];
    return p / static_cast<double>(v.size() - 128);
  };
  EXPECT_NEAR(power(sh.right), power(de.right), 0.35 * power(de.right));
}

}  // namespace
}  // namespace acc::app
