// ISSUE 2 acceptance criteria, pinned under ctest with a fixed seed:
//  - a campaign whose injected delays stay inside the declared envelope
//    reports zero genuine breaches (all violations covered by slack), and
//  - a campaign operating beyond the envelope (dropped notifications, whose
//    recovery cost is the retry timeout) detects at least one genuine breach.
#include "app/fault_campaign.hpp"

#include <gtest/gtest.h>

#include "common/bench_schema.hpp"

namespace acc::app {
namespace {

FaultCampaignConfig test_config() {
  FaultCampaignConfig cfg;  // defaults: small PAL config, seed 0x5EED
  return cfg;
}

TEST(FaultCampaign, BaselineIsFaultFreeAndConforming) {
  FaultCampaignConfig cfg = test_config();
  cfg.levels = {{"baseline", 0.0, false}};
  const FaultCampaignResult res = run_fault_campaign(cfg);
  ASSERT_EQ(res.points.size(), 1u);
  const FaultPointResult& p = res.points[0];
  EXPECT_EQ(p.faults_injected, 0);
  EXPECT_EQ(p.violations, 0);
  EXPECT_EQ(p.genuine_breaches, 0);
  EXPECT_GT(p.blocks_checked, 0);
  EXPECT_EQ(p.sink_underruns, 0);
}

TEST(FaultCampaign, DelaysWithinEnvelopeAreCoveredBySlack) {
  FaultCampaignConfig cfg = test_config();
  cfg.levels = {{"light", 0.25, false},
                {"moderate", 1.0, false},
                {"heavy", 2.0, false}};
  const FaultCampaignResult res = run_fault_campaign(cfg);
  ASSERT_EQ(res.points.size(), 3u);
  std::int64_t total_faults = 0;
  std::int64_t total_violations = 0;
  for (const FaultPointResult& p : res.points) {
    total_faults += p.faults_injected;
    total_violations += p.violations;
    EXPECT_EQ(p.genuine_breaches, 0) << p.level.label;
    EXPECT_EQ(p.covered_by_slack, p.violations) << p.level.label;
    EXPECT_GT(p.fault_slack, 0) << p.level.label;
  }
  // The campaign must actually stress the system, not vacuously pass.
  EXPECT_GT(total_faults, 0);
  EXPECT_GT(total_violations, 0);
}

TEST(FaultCampaign, DroppedNotificationsBreachTheEnvelope) {
  FaultCampaignConfig cfg = test_config();
  cfg.levels = {{"lossy", 1.0, true}};
  const FaultCampaignResult res = run_fault_campaign(cfg);
  ASSERT_EQ(res.points.size(), 1u);
  const FaultPointResult& p = res.points[0];
  EXPECT_GT(p.notifications_dropped, 0);
  // Retry recovery costs ~notify_timeout cycles — outside the envelope.
  EXPECT_GE(p.genuine_breaches, 1);
  // The gateway recovered rather than deadlocking: blocks kept completing.
  EXPECT_GT(p.notify_recoveries, 0);
  EXPECT_GT(p.blocks_checked, 0);
}

TEST(FaultCampaign, BenchDocMatchesSchema) {
  FaultCampaignConfig cfg = test_config();
  const FaultCampaignResult res = run_fault_campaign(cfg);
  const json::Value doc = faults_bench_doc(cfg, res);
  const std::vector<std::string> problems = validate_bench_faults(doc);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

}  // namespace
}  // namespace acc::app
