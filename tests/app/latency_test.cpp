// End-to-end latency: the measured audio latency of the simulated system
// must sit under the analytic per-stage worst-case latency bounds plus the
// deliberate DAC prefill buffering — and source jitter within the buffer
// slack must not break real time.
#include <gtest/gtest.h>

#include "app/pal_system.hpp"
#include "sharing/analysis.hpp"

namespace acc::app {
namespace {

TEST(Latency, BoundFormula) {
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = 2;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"a", Rational(1, 8), 10}, {"b", Rational(1, 8), 10}};
  const std::vector<std::int64_t> etas{4, 4};
  // gamma = 2 * (10 + (4+2)*2) = 44; bound = 3*8 + 44.
  EXPECT_EQ(sharing::worst_case_sample_latency(sys, 0, etas, 8), 24 + 44);
}

TEST(Latency, MeasuredAudioLatencyWithinAnalyticBudget) {
  PalSimConfig cfg;
  cfg.input_samples = 1 << 15;
  const PalSimResult r = run_pal_decoder(cfg);
  ASSERT_GT(r.max_audio_latency, 0);

  const sharing::SharedSystemSpec spec = make_system_spec(cfg);
  const std::vector<std::int64_t> etas{r.eta_stage1, r.eta_stage1,
                                       r.eta_stage2, r.eta_stage2};
  // Path budget: stage-1 stream latency (input at the front-end period) +
  // stage-2 stream latency (input at 8x that period) + the DAC's deliberate
  // prefill (a burst + 2 samples at the audio period) + software slack.
  const sim::Cycle stage1 = sharing::worst_case_sample_latency(
      spec, 0, etas, cfg.input_period);
  const sim::Cycle stage2 = sharing::worst_case_sample_latency(
      spec, 2, etas, cfg.input_period * cfg.decimation);
  const sim::Cycle audio_period =
      cfg.input_period * cfg.decimation * cfg.decimation;
  const sim::Cycle prefill =
      (r.eta_stage2 / cfg.decimation + 2) * audio_period;
  const sim::Cycle budget = stage1 + stage2 + prefill + 4096;
  EXPECT_LE(r.max_audio_latency, budget)
      << "stage1=" << stage1 << " stage2=" << stage2
      << " prefill=" << prefill;
  // And the latency is not trivially small: it must at least cover one
  // block fill of stage 1.
  EXPECT_GE(r.max_audio_latency, r.eta_stage1 * cfg.input_period / 2);
}

TEST(Latency, LatencyShrinksWithCheaperReconfiguration) {
  PalSimConfig fast;
  fast.input_samples = 1 << 14;
  fast.reconfig = 200;  // hardware-assisted context switching
  PalSimConfig slow = fast;
  slow.reconfig = 4100;
  const PalSimResult rf = run_pal_decoder(fast);
  const PalSimResult rs = run_pal_decoder(slow);
  EXPECT_EQ(rf.source_drops, 0);
  EXPECT_EQ(rf.sink_underruns, 0);
  // Cheaper switches -> smaller blocks -> lower end-to-end latency.
  EXPECT_LT(rf.eta_stage1, rs.eta_stage1);
  EXPECT_LT(rf.max_audio_latency, rs.max_audio_latency);
}

}  // namespace
}  // namespace acc::app
