#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace acc {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2     |"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), precondition_error);
}

TEST(FmtInt, ThousandsSeparators) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1000), "1,000");
  EXPECT_EQ(fmt_int(32904), "32,904");
  EXPECT_EQ(fmt_int(-1234567), "-1,234,567");
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(63.49999, 1), "63.5");
  EXPECT_EQ(fmt_double(2.0, 2), "2.00");
}

}  // namespace
}  // namespace acc
