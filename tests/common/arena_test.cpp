// ISSUE 8: the per-System bump arena and the arena-backed RingBuffer that
// hold C-FIFO and ring token storage. The simulator relies on exactly the
// properties pinned here: FIFO order across growth and wraparound, bump
// alignment, oversized dedicated chunks, and heap/arena parity.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

namespace acc {
namespace {

TEST(Arena, BumpsWithinOneChunkAndRespectsAlignment) {
  Arena a(/*chunk_bytes=*/256);
  void* p1 = a.allocate(3, 1);
  void* p2 = a.allocate(8, 8);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 8, 0u);
  EXPECT_EQ(a.chunk_count(), 1u);
  EXPECT_EQ(a.bytes_reserved(), 256u);
  EXPECT_EQ(a.bytes_allocated(), 11u);
}

TEST(Arena, GrowsByChunksAndNeverReusesFreedSpace) {
  Arena a(64);
  for (int i = 0; i < 10; ++i) (void)a.allocate(40, 8);
  // 40 aligned bytes per 64-byte chunk: every allocation needs a new chunk
  // after the first fills past the next alignment boundary.
  EXPECT_GE(a.chunk_count(), 5u);
  EXPECT_EQ(a.bytes_allocated(), 400u);
  EXPECT_GE(a.bytes_reserved(), a.bytes_allocated());
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena a(64);
  void* big = a.allocate(1000, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(a.chunk_count(), 1u);
  EXPECT_EQ(a.bytes_reserved(), 1000u);
  // The arena keeps working after an oversized chunk.
  void* next = a.allocate(8, 8);
  ASSERT_NE(next, nullptr);
}

TEST(RingBuffer, FifoOrderAcrossGrowthMatchesDeque) {
  // Differential check against std::deque through a push/pop pattern that
  // forces several growths with a wrapped live window.
  RingBuffer<std::int64_t> rb;
  std::deque<std::int64_t> ref;
  std::int64_t next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i <= round % 7; ++i) {
      rb.push_back(next);
      ref.push_back(next);
      ++next;
    }
    for (int i = 0; i < round % 5 && !ref.empty(); ++i) {
      ASSERT_EQ(rb.front(), ref.front());
      rb.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(rb.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(rb[i], ref[i]);
    if (!ref.empty()) ASSERT_EQ(rb.back(), ref.back());
  }
}

TEST(RingBuffer, WrapsWithoutGrowthWhenDrained) {
  RingBuffer<int> rb;
  for (int i = 0; i < 8; ++i) rb.push_back(i);  // first growth: cap 8
  const std::size_t cap = rb.capacity();
  for (int round = 0; round < 100; ++round) {
    rb.pop_front();
    rb.push_back(100 + round);
  }
  EXPECT_EQ(rb.capacity(), cap);  // steady state recycles the same block
  EXPECT_EQ(rb.size(), 8u);
}

TEST(RingBuffer, ArenaBackedGrowthAbandonsOldBlocksToArena) {
  Arena a;
  const std::size_t before = a.bytes_allocated();
  RingBuffer<std::int64_t> rb;
  rb.set_arena(&a);
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_GT(a.bytes_allocated(), before);  // storage came from the arena
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, MoveTransfersStorage) {
  RingBuffer<int> rb;
  for (int i = 0; i < 5; ++i) rb.push_back(i);
  RingBuffer<int> moved(std::move(rb));
  ASSERT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved.front(), 0);
  EXPECT_EQ(moved.back(), 4);
  RingBuffer<int> assigned;
  assigned.push_back(99);
  assigned = std::move(moved);
  ASSERT_EQ(assigned.size(), 5u);
  EXPECT_EQ(assigned[2], 2);
}

TEST(RingBuffer, ClearResetsWithoutReleasingCapacity) {
  RingBuffer<int> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(i);
  const std::size_t cap = rb.capacity();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);
  rb.push_back(7);
  EXPECT_EQ(rb.front(), 7);
}

}  // namespace
}  // namespace acc
