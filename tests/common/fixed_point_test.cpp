#include "common/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace acc {
namespace {

TEST(Fixed, RoundTripSmallValues) {
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 1.4142, -3.1415}) {
    EXPECT_NEAR(Q16::from_double(v).to_double(), v, 1.0 / (1 << 15));
  }
}

TEST(Fixed, OneConstant) {
  EXPECT_EQ(Q16::from_double(1.0).raw(), Q16::one);
}

TEST(Fixed, AdditionMatchesDouble) {
  const Q16 a = Q16::from_double(1.5);
  const Q16 b = Q16::from_double(-0.75);
  EXPECT_NEAR((a + b).to_double(), 0.75, 1e-4);
  EXPECT_NEAR((a - b).to_double(), 2.25, 1e-4);
}

TEST(Fixed, MultiplicationMatchesDouble) {
  const Q16 a = Q16::from_double(1.25);
  const Q16 b = Q16::from_double(-2.5);
  EXPECT_NEAR((a * b).to_double(), -3.125, 1e-3);
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
  const auto big = Fixed<16>::from_raw(INT32_MAX);
  const auto sum = big + big;
  EXPECT_EQ(sum.raw(), INT32_MAX);  // saturated high
  const auto small = Fixed<16>::from_raw(INT32_MIN);
  EXPECT_EQ((small + small).raw(), INT32_MIN);  // saturated low
}

TEST(Fixed, ArithmeticShiftRight) {
  const Q16 v = Q16::from_double(2.0);
  EXPECT_NEAR(v.asr(1).to_double(), 1.0, 1e-4);
  const Q16 n = Q16::from_double(-2.0);
  EXPECT_NEAR(n.asr(1).to_double(), -1.0, 1e-4);
}

TEST(ComplexFixed, ComplexMultiply) {
  // (1 + 2i) * (3 - 1i) = 5 + 5i
  const CQ16 a{Q16::from_double(1.0), Q16::from_double(2.0)};
  const CQ16 b{Q16::from_double(3.0), Q16::from_double(-1.0)};
  const CQ16 p = a * b;
  EXPECT_NEAR(p.re.to_double(), 5.0, 1e-3);
  EXPECT_NEAR(p.im.to_double(), 5.0, 1e-3);
}

// Property: fixed-point multiply tracks double multiply within quantization.
TEST(FixedProperty, MultiplyError) {
  SplitMix64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform_real(-100.0, 100.0);
    const double y = rng.uniform_real(-100.0, 100.0);
    const double got = (Q16::from_double(x) * Q16::from_double(y)).to_double();
    const double want = x * y;
    if (std::abs(want) < 30000.0) {  // inside representable range
      // Error bound: quantizing each operand contributes |y|*q and |x|*q.
      const double tol = (std::abs(x) + std::abs(y) + 1.0) / (1 << 16) * 2.0;
      EXPECT_NEAR(got, want, tol) << x << " * " << y;
    }
  }
}

}  // namespace
}  // namespace acc
