#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace acc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, KnownSplitMix64Vectors) {
  // Reference outputs of splitmix64 with seed 0 (Vigna's reference code).
  SplitMix64 r(0);
  EXPECT_EQ(r.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(r.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(r.next(), 0x06c45d188009454fULL);
}

TEST(Rng, UniformBoundsInclusive) {
  SplitMix64 r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  SplitMix64 r(9);
  for (int i = 0; i < 2000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  SplitMix64 r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Log, LevelsFilterOutput) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kInfo);
  ACC_DEBUG("hidden " << 1);
  ACC_INFO("visible " << 2);
  ACC_WARN("also " << 3);
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible 2"), std::string::npos);
  EXPECT_NE(out.find("also 3"), std::string::npos);
  EXPECT_NE(out.find("[INFO ]"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kOff);
  ACC_WARN("nope");
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  EXPECT_TRUE(sink.str().empty());
}

}  // namespace
}  // namespace acc
