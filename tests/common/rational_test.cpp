#include "common/rational.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace acc {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  Rational s(-6, -4);
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 2);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), precondition_error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(7), Rational(7));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), precondition_error);
  EXPECT_THROW((void)Rational(0).reciprocal(), precondition_error);
}

TEST(Rational, OverflowDetected) {
  const Rational big(INT64_MAX / 2, 1);
  EXPECT_THROW(big * big, std::overflow_error);
}

TEST(Rational, StreamFormat) {
  EXPECT_EQ(Rational(3, 6).str(), "1/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
  EXPECT_EQ(Rational(-1, 3).str(), "-1/3");
}

TEST(Rational, GcdLcm) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
}

// Property: field axioms hold for random small rationals.
TEST(RationalProperty, RandomizedFieldAxioms) {
  SplitMix64 rng(0xACC5EED);
  for (int i = 0; i < 2000; ++i) {
    const Rational a(rng.uniform(-50, 50), rng.uniform(1, 30));
    const Rational b(rng.uniform(-50, 50), rng.uniform(1, 30));
    const Rational c(rng.uniform(-50, 50), rng.uniform(1, 30));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) { EXPECT_EQ(a / b * b, a); }
  }
}

// Property: floor/ceil bracket the true value.
TEST(RationalProperty, FloorCeilBracket) {
  SplitMix64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const Rational r(rng.uniform(-1000, 1000), rng.uniform(1, 97));
    EXPECT_LE(Rational(r.floor()), r);
    EXPECT_GE(Rational(r.ceil()), r);
    EXPECT_LE(r.ceil() - r.floor(), 1);
  }
}

}  // namespace
}  // namespace acc
