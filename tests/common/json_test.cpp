#include "common/json.hpp"

#include <gtest/gtest.h>

namespace acc::json {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(parse_or_throw("null"), Value(nullptr));
  EXPECT_EQ(parse_or_throw("true").as_bool(), true);
  EXPECT_EQ(parse_or_throw("false").as_bool(), false);
  EXPECT_EQ(parse_or_throw("42").as_int(), 42);
  EXPECT_EQ(parse_or_throw("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse_or_throw("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_or_throw("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_or_throw("\"hi\"").as_string(), "hi");
}

TEST(Json, ArraysAndObjects) {
  const Value v = parse_or_throw(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[1].as_int(), 2);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), acc::precondition_error);
}

TEST(Json, StringEscapes) {
  const Value v = parse_or_throw(R"("line\nquote\"back\\slash\ttab")");
  EXPECT_EQ(v.as_string(), "line\nquote\"back\\slash\ttab");
  // Escapes survive a dump/parse cycle.
  EXPECT_EQ(parse_or_throw(v.dump()), v);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(parse_or_throw(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_or_throw(R"("é")").as_string(), "\xC3\xA9");    // é
  EXPECT_EQ(parse_or_throw(R"("€")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, DumpIsCanonicalAndReparsable) {
  Object o;
  o["z"] = 1;
  o["a"] = Array{Value("x"), Value(false), Value(nullptr)};
  const Value v{o};
  const std::string s = v.dump();
  // std::map ordering: keys sorted.
  EXPECT_EQ(s, R"({"a":["x",false,null],"z":1})");
  EXPECT_EQ(parse_or_throw(s), v);
}

TEST(Json, PrettyPrintIndents) {
  Object o;
  o["k"] = Array{Value(1)};
  const std::string s = Value(o).pretty(2);
  EXPECT_NE(s.find("{\n  \"k\": [\n    1\n  ]\n}"), std::string::npos);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "nul", "01x", "\"unterminated",
        "[1] trailing", "{\"a\":1,}", "-", "\"bad\\escape\""}) {
    EXPECT_FALSE(parse(bad).has_value()) << bad;
    EXPECT_THROW((void)parse_or_throw(bad), acc::precondition_error) << bad;
  }
}

TEST(Json, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(parse_or_throw("3").is_int());
  EXPECT_TRUE(parse_or_throw("3.0").is_double());
  EXPECT_EQ(parse_or_throw("3.0").as_int(), 3);  // integral double converts
  EXPECT_THROW((void)parse_or_throw("3.5").as_int(), acc::precondition_error);
  EXPECT_DOUBLE_EQ(parse_or_throw("3").as_double(), 3.0);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = parse_or_throw("[1]");
  EXPECT_THROW((void)v.as_object(), acc::precondition_error);
  EXPECT_THROW((void)v.as_string(), acc::precondition_error);
}

TEST(Json, DeepNesting) {
  std::string s;
  for (int i = 0; i < 60; ++i) s += "[";
  s += "7";
  for (int i = 0; i < 60; ++i) s += "]";
  const Value v = parse_or_throw(s);
  const Value* p = &v;
  for (int i = 0; i < 60; ++i) p = &p->as_array()[0];
  EXPECT_EQ(p->as_int(), 7);
}

}  // namespace
}  // namespace acc::json
