// Shared randomized-chain generators for the differential stepper suites.
//
// The event-horizon equivalence tests (tests/sim/event_horizon_test.cpp)
// and the metrics-determinism tests (tests/obs/metrics_equivalence_test.cpp)
// must stress the SAME population of system shapes: a property proven on
// one set of random chains and checked on a different set would leave a gap
// between "the steppers agree" and "the metrics agree". Both suites seed
// their own std::mt19937_64 and draw Params from here; Scenario
// construction is a pure function of (Params, registry pointer), so two
// instances are bit-identical until stepped.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "accel/kernel.hpp"
#include "obs/metrics.hpp"
#include "sim/chain_builder.hpp"
#include "sim/fault.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace acc::sim::testsupport {

/// Identity kernel (no state).
class Pass final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override { out.push_back(in); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "pass"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Pass>();
  }
};

inline std::vector<std::unique_ptr<accel::StreamKernel>> passes(
    std::size_t n) {
  std::vector<std::unique_ptr<accel::StreamKernel>> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(std::make_unique<Pass>());
  return v;
}

/// One randomized system shape. Every stepper gets an independently built
/// but bit-identical instance.
struct Params {
  int accels = 1;
  Cycle accel_cost = 1;
  Cycle epsilon = 2;
  std::int64_t eta = 8;
  Cycle reconfig = 20;
  Cycle source_period = 4;
  Cycle sink_period = 6;
  int payload_blocks = 3;
  bool with_proc = false;    // software copy task between chain and sink
  Cycle proc_cost = 3;
  bool hint_wake_lists = false;  // declare the copy task's wake FIFOs
  bool with_fault = false;
  bool with_drops = false;   // notification drops (requires retry recovery)
  std::uint64_t fault_seed = 1;
  Cycle run_cycles = 30000;
};

inline Params random_params(std::mt19937_64& rng, bool with_fault) {
  const auto pick = [&rng](int lo, int hi) {
    return lo +
           static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  Params p;
  p.accels = pick(1, 3);
  p.accel_cost = pick(1, 3);
  p.epsilon = pick(1, 4);
  p.eta = 2 * pick(2, 5);
  p.reconfig = pick(5, 120);
  p.source_period = pick(2, 24);
  p.sink_period = pick(2, 24);
  p.payload_blocks = pick(2, 4);
  p.with_proc = pick(0, 1) == 1;
  p.proc_cost = pick(1, 4);
  // Half the processor variants declare wake lists (selective ticking),
  // half do not (exercises the wake-unsafe re-query fallback).
  p.hint_wake_lists = pick(0, 1) == 1;
  p.with_fault = with_fault;
  p.with_drops = with_fault && pick(0, 1) == 1;
  p.fault_seed = rng();
  return p;
}

/// Source -> entry gateway -> accel chain -> exit gateway [-> copy task]
/// -> sink, with tracing everywhere, (optionally) all four fault sites
/// wired, and (optionally) every interaction point registered in a metrics
/// registry. Construction is a pure function of (Params, registry), so two
/// instances are bit-identical until stepped.
struct Scenario {
  explicit Scenario(const Params& p, obs::MetricsRegistry* metrics = nullptr)
      : sys(p.accels + 2), trace(1 << 18), fault(p.fault_seed) {
    if (p.with_fault) {
      FaultSpec ring;
      ring.probability = 0.02;
      ring.max_delay = 5;
      ring.min_spacing = 40;
      fault.configure(FaultSite::kRingLink, ring);
      FaultSpec bus;
      bus.probability = 0.5;
      bus.max_delay = 30;
      fault.configure(FaultSite::kConfigBus, bus);
      FaultSpec notify;
      notify.probability = 0.3;
      notify.max_delay = 12;
      if (p.with_drops) notify.drop_probability = 0.2;
      fault.configure(FaultSite::kExitNotify, notify);
      FaultSpec credit;
      credit.probability = 0.05;
      credit.max_delay = 6;
      credit.min_spacing = 16;
      fault.configure(FaultSite::kCreditWithhold, credit);
    }

    ChainConfig cfg;
    cfg.name = "c";
    cfg.accel_cycles.assign(static_cast<std::size_t>(p.accels), p.accel_cost);
    cfg.epsilon = p.epsilon;
    cfg.exit_notify_lag = 2;
    cfg.trace = &trace;
    cfg.fault = p.with_fault ? &fault : nullptr;
    cfg.metrics = metrics;
    if (p.with_drops) cfg.retry = {/*notify_timeout=*/64, /*max_retries=*/8,
                                   /*backoff=*/0};
    chain = build_gateway_chain(sys, cfg);

    in = &sys.add_fifo("in", p.eta * 4);
    mid = &sys.add_fifo("mid", p.eta * 4);
    if (p.with_fault) {
      in->set_fault(&fault);
      mid->set_fault(&fault);
    }
    if (metrics != nullptr) {
      in->set_metrics(metrics);
      mid->set_metrics(metrics);
    }
    chain.add_stream({0, "s", p.eta, p.eta, in, mid, p.reconfig},
                     passes(static_cast<std::size_t>(p.accels)));

    std::vector<Flit> payload(static_cast<std::size_t>(p.eta) *
                              static_cast<std::size_t>(p.payload_blocks));
    std::iota(payload.begin(), payload.end(), Flit{100});
    src = &sys.add<SourceTile>("src", *in, payload, p.source_period);

    CFifo* sink_in = mid;
    if (p.with_proc) {
      fin = &sys.add_fifo("fin", p.eta * 4);
      if (metrics != nullptr) fin->set_metrics(metrics);
      auto& cpu = sys.add<ProcessorTile>("cpu", /*replenish_period=*/64);
      Task copy;
      copy.name = "copy";
      copy.budget = 32;
      CFifo* m = mid;
      CFifo* f = fin;
      const Cycle cost = p.proc_cost;
      copy.invoke = [m, f, cost](Cycle now) -> Cycle {
        if (m->fill_visible(now) < 1 || f->space_visible(now) < 1) return 0;
        f->push(now, m->pop(now));
        return cost;
      };
      copy.next_ready = [m, f](Cycle now) {
        return std::max(m->when_fill_visible(1, now),
                        f->when_space_visible(1, now));
      };
      if (p.hint_wake_lists) {
        copy.wake_on_push = {m};
        copy.wake_on_pop = {f};
      }
      cpu.add_task(std::move(copy));
      proc = &cpu;
      sink_in = fin;
    }
    sink = &sys.add<SinkTile>("snk", *sink_in, p.sink_period, /*prefill=*/2);
    if (metrics != nullptr) {
      src->set_metrics(metrics);
      sink->set_metrics(metrics);
      if (proc != nullptr) proc->set_metrics(metrics);
    }
  }

  System sys;
  TraceLog trace;
  FaultInjector fault;
  GatewayChain chain;
  CFifo* in = nullptr;
  CFifo* mid = nullptr;
  CFifo* fin = nullptr;
  SourceTile* src = nullptr;
  SinkTile* sink = nullptr;
  ProcessorTile* proc = nullptr;
};

}  // namespace acc::sim::testsupport
