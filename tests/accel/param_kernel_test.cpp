// Parameterized kernel sweeps: CORDIC accuracy vs iteration count, and
// save/restore transparency at every block-split point (a context switch
// can interrupt a stream anywhere, including mid-decimation-phase).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "accel/cordic.hpp"
#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/rng.hpp"

namespace acc::accel {
namespace {

// ---- CORDIC accuracy improves with iterations (error ~ 2^-n) ----------

class CordicIterations : public ::testing::TestWithParam<int> {};

TEST_P(CordicIterations, RotationErrorBoundedByIterationCount) {
  const int iters = GetParam();
  // Error sources: angle resolution ~2^-(iters-1) plus Q16 quantization.
  const double tol = std::ldexp(2.0, -iters) + 6.0 / (1 << 16);
  SplitMix64 rng(77 + static_cast<std::uint64_t>(iters));
  double worst = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform_real(-M_PI, M_PI);
    const RotateResult r = cordic_rotate(Q16::from_double(1.0), Q16{},
                                         Q16::from_double(a), iters);
    worst = std::max(worst, std::abs(r.x.to_double() - std::cos(a)));
    worst = std::max(worst, std::abs(r.y.to_double() - std::sin(a)));
  }
  EXPECT_LT(worst, tol) << "iterations=" << iters;
}

TEST_P(CordicIterations, VectoringErrorBoundedByIterationCount) {
  const int iters = GetParam();
  const double tol = std::ldexp(2.0, -iters) + 6.0 / (1 << 16);
  SplitMix64 rng(99 + static_cast<std::uint64_t>(iters));
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform_real(-M_PI, M_PI);
    const VectorResult v = cordic_vector(Q16::from_double(std::cos(a)),
                                         Q16::from_double(std::sin(a)), iters);
    double err = v.angle.to_double() - a;
    if (err > M_PI) err -= 2 * M_PI;
    if (err < -M_PI) err += 2 * M_PI;
    EXPECT_LT(std::abs(err), tol) << "a=" << a << " iters=" << iters;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CordicIterations,
                         ::testing::Values(8, 10, 12, 14, 16, 20),
                         ::testing::PrintToStringParamName());

// ---- save/restore transparency at every split point -------------------

class SplitPoint : public ::testing::TestWithParam<int> {};

TEST_P(SplitPoint, FirContextSwitchAtAnyOffsetIsTransparent) {
  const int split = GetParam();
  const std::vector<Q16> taps = quantize_taps(design_lowpass(17, 0.1));
  DecimatingFir reference(taps, 8);
  DecimatingFir victim(taps, 8);
  DecimatingFir intruder(taps, 8);  // runs "another stream" mid-switch

  SplitMix64 rng(0x51);
  std::vector<CQ16> ref_out;
  std::vector<CQ16> out;
  for (int i = 0; i < 50; ++i) {
    const CQ16 s{Q16::from_double(rng.uniform_real(-1, 1)),
                 Q16::from_double(rng.uniform_real(-1, 1))};
    reference.push(s, ref_out);
    if (i == split) {
      // Context switch: save, let another stream trample the datapath,
      // restore.
      const std::vector<std::int32_t> ctx = victim.save_state();
      std::vector<CQ16> junk;
      for (int k = 0; k < 23; ++k)
        victim.push(CQ16{Q16::from_double(0.9), Q16{}}, junk);
      victim.restore_state(ctx);
    }
    victim.push(s, out);
  }
  (void)intruder;
  ASSERT_EQ(out.size(), ref_out.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], ref_out[i]);
}

TEST_P(SplitPoint, MixerContextSwitchAtAnyOffsetIsTransparent) {
  const int split = GetParam();
  NcoMixer reference(NcoMixer::freq_from_normalized(0.117));
  NcoMixer victim(NcoMixer::freq_from_normalized(0.117));
  SplitMix64 rng(0x52);
  std::vector<CQ16> ref_out;
  std::vector<CQ16> out;
  for (int i = 0; i < 40; ++i) {
    const CQ16 s{Q16::from_double(rng.uniform_real(-1, 1)),
                 Q16::from_double(rng.uniform_real(-1, 1))};
    reference.push(s, ref_out);
    if (i == split) {
      const std::vector<std::int32_t> ctx = victim.save_state();
      std::vector<CQ16> junk;
      for (int k = 0; k < 7; ++k) victim.push(s, junk);
      victim.restore_state(ctx);
    }
    victim.push(s, out);
  }
  ASSERT_EQ(out.size(), ref_out.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], ref_out[i]);
}

INSTANTIATE_TEST_SUITE_P(Offsets, SplitPoint,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 31),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace acc::accel
