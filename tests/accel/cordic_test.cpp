#include "accel/cordic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace acc::accel {
namespace {

constexpr double kTol = 3e-3;  // 16 iterations + Q16 quantization

TEST(Cordic, RotateZeroAngleIsIdentity) {
  const RotateResult r =
      cordic_rotate(Q16::from_double(0.7), Q16::from_double(-0.3),
                    Q16::from_double(0.0));
  EXPECT_NEAR(r.x.to_double(), 0.7, kTol);
  EXPECT_NEAR(r.y.to_double(), -0.3, kTol);
}

TEST(Cordic, RotateUnitVectorGivesSinCos) {
  for (double a : {0.1, 0.5, 1.0, 1.5, 2.0, 3.0, -0.7, -2.5, M_PI, -3.0}) {
    const Q16 angle = q16_wrap_angle(a);
    const RotateResult r =
        cordic_rotate(Q16::from_double(1.0), Q16::from_double(0.0), angle);
    EXPECT_NEAR(r.x.to_double(), std::cos(a), kTol) << "angle " << a;
    EXPECT_NEAR(r.y.to_double(), std::sin(a), kTol) << "angle " << a;
  }
}

TEST(Cordic, VectorRecoverAngleAndMagnitude) {
  for (double a : {0.0, 0.4, 1.2, 2.8, -0.4, -1.6, -3.0}) {
    const double m = 0.8;
    const VectorResult v = cordic_vector(Q16::from_double(m * std::cos(a)),
                                         Q16::from_double(m * std::sin(a)));
    EXPECT_NEAR(v.angle.to_double(), a, kTol) << "angle " << a;
    EXPECT_NEAR(v.magnitude.to_double(), m, kTol) << "angle " << a;
  }
}

TEST(Cordic, WrapAngleIntoPrincipalRange) {
  EXPECT_NEAR(q16_wrap_angle(3 * M_PI).to_double(), M_PI, 1e-4);
  EXPECT_NEAR(q16_wrap_angle(-3 * M_PI).to_double(), M_PI, 1e-4);
  EXPECT_NEAR(q16_wrap_angle(2 * M_PI + 0.5).to_double(), 0.5, 1e-4);
  EXPECT_NEAR(q16_wrap_angle(-0.5).to_double(), -0.5, 1e-4);
}

TEST(Cordic, IterationCountTradesAccuracy) {
  const double a = 1.1;
  const RotateResult coarse =
      cordic_rotate(Q16::from_double(1.0), Q16{}, Q16::from_double(a), 6);
  const RotateResult fine =
      cordic_rotate(Q16::from_double(1.0), Q16{}, Q16::from_double(a), 20);
  EXPECT_LT(std::abs(fine.x.to_double() - std::cos(a)),
            std::abs(coarse.x.to_double() - std::cos(a)) + 1e-4);
}

TEST(Cordic, RejectsBadIterationCounts) {
  EXPECT_THROW((void)cordic_rotate(Q16{}, Q16{}, Q16{}, 0), precondition_error);
  EXPECT_THROW((void)cordic_vector(Q16{}, Q16{}, 99), precondition_error);
}

// Property: rotation matches the double-precision rotation over random
// inputs covering all quadrants.
TEST(CordicProperty, RotateMatchesReference) {
  SplitMix64 rng(0xC02D1C);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform_real(-1.2, 1.2);
    const double y = rng.uniform_real(-1.2, 1.2);
    const double a = rng.uniform_real(-M_PI, M_PI);
    const RotateResult r = cordic_rotate(Q16::from_double(x),
                                         Q16::from_double(y),
                                         Q16::from_double(a));
    const double ex = x * std::cos(a) - y * std::sin(a);
    const double ey = x * std::sin(a) + y * std::cos(a);
    EXPECT_NEAR(r.x.to_double(), ex, 6e-3) << x << "," << y << "," << a;
    EXPECT_NEAR(r.y.to_double(), ey, 6e-3) << x << "," << y << "," << a;
  }
}

// Property: vectoring matches atan2/hypot; angle error small even near the
// +-pi seam.
TEST(CordicProperty, VectorMatchesReference) {
  SplitMix64 rng(0xA7A2);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform_real(-1.2, 1.2);
    const double y = rng.uniform_real(-1.2, 1.2);
    if (std::hypot(x, y) < 0.05) continue;  // tiny vectors: angle ill-defined
    const VectorResult v =
        cordic_vector(Q16::from_double(x), Q16::from_double(y));
    EXPECT_NEAR(v.magnitude.to_double(), std::hypot(x, y), 8e-3);
    double err = v.angle.to_double() - std::atan2(y, x);
    if (err > M_PI) err -= 2 * M_PI;
    if (err < -M_PI) err += 2 * M_PI;
    EXPECT_LT(std::abs(err), 6e-3) << x << "," << y;
  }
}

}  // namespace
}  // namespace acc::accel
