// Golden bit-exactness fixtures for the SoA block paths (ISSUE 8): every
// kernel's process_block must match push() per sample bit-for-bit — outputs,
// per-input output counts AND the post-block mutable state — across block
// sizes 1..64 and fixed-point edge values. This is the contract that lets
// AcceleratorTile precompute whole queued blocks without perturbing the
// cycle-exact simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/cordic.hpp"
#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/rng.hpp"

namespace acc::accel {
namespace {

constexpr std::int32_t kI32Max = std::numeric_limits<std::int32_t>::max();
constexpr std::int32_t kI32Min = std::numeric_limits<std::int32_t>::min();

std::vector<CQ16> random_block(SplitMix64& rng, std::size_t n) {
  std::vector<CQ16> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(CQ16{Q16::from_double(rng.uniform_real(-0.9, 0.9)),
                       Q16::from_double(rng.uniform_real(-0.9, 0.9))});
  return out;
}

/// Fixed-point edge values: saturation rails, +-1, zero, smallest steps.
std::vector<CQ16> edge_block() {
  const std::int32_t raws[] = {0,      1,        -1,       Q16::one,
                               -Q16::one, kI32Max, kI32Min, kI32Max - 1,
                               kI32Min + 1, 1 << 20, -(1 << 20), 12345};
  std::vector<CQ16> out;
  for (std::int32_t a : raws)
    for (std::int32_t b : {a, -a, std::int32_t{0}})
      out.push_back(CQ16{Q16::from_raw(a), Q16::from_raw(b)});
  return out;
}

/// Drive `in` through a fresh clone of `proto` sample-by-sample and through
/// another fresh clone via process_block; everything observable must match.
void check_block_matches_scalar(const StreamKernel& proto,
                                std::span<const CQ16> in) {
  const auto scalar = proto.clone_fresh();
  const auto blocked = proto.clone_fresh();

  std::vector<CQ16> want;
  std::vector<std::uint8_t> want_counts;
  for (const CQ16& s : in) {
    const std::size_t before = want.size();
    scalar->push(s, want);
    want_counts.push_back(static_cast<std::uint8_t>(want.size() - before));
  }

  std::vector<CQ16> got(in.size());
  std::vector<std::uint8_t> got_counts(in.size(), 0xAB);
  const std::size_t n = blocked->process_block(in, got, got_counts.data());

  ASSERT_EQ(n, want.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].re.raw(), want[i].re.raw()) << "output " << i;
    EXPECT_EQ(got[i].im.raw(), want[i].im.raw()) << "output " << i;
  }
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(got_counts[i], want_counts[i]) << "count " << i;
  // Post-block mutable state: the next context switch must transfer the
  // identical blob regardless of which path ran the block.
  EXPECT_EQ(blocked->save_state(), scalar->save_state());
}

/// Sweep block sizes 1..64 with a fresh kernel pair per size, then the
/// edge-value block, then a long mid-state run (block split at an odd
/// boundary so the linearized-history path starts from non-trivial state).
void sweep_kernel(const StreamKernel& proto) {
  SplitMix64 rng(0xB10C);
  for (std::size_t len = 1; len <= 64; ++len) {
    SCOPED_TRACE("block size " + std::to_string(len));
    check_block_matches_scalar(proto, random_block(rng, len));
  }
  {
    SCOPED_TRACE("fixed-point edge values");
    check_block_matches_scalar(proto, edge_block());
  }
  {
    SCOPED_TRACE("split mid-state");
    const std::vector<CQ16> in = random_block(rng, 301);
    const auto scalar = proto.clone_fresh();
    const auto blocked = proto.clone_fresh();
    std::vector<CQ16> want;
    for (const CQ16& s : in) scalar->push(s, want);
    std::vector<CQ16> got(in.size());
    std::size_t n = 0;
    std::size_t pos = 0;
    for (const std::size_t chunk : {std::size_t{37}, std::size_t{64},
                                    std::size_t{1}, std::size_t{199}}) {
      n += blocked->process_block(
          std::span<const CQ16>(in).subspan(pos, chunk),
          std::span<CQ16>(got).subspan(n));
      pos += chunk;
    }
    ASSERT_EQ(pos, in.size());
    ASSERT_EQ(n, want.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], want[i]);
    EXPECT_EQ(blocked->save_state(), scalar->save_state());
  }
}

TEST(KernelBlock, FirMatchesScalar) {
  sweep_kernel(DecimatingFir(quantize_taps(design_lowpass(33, 0.06)), 8));
}

TEST(KernelBlock, FirNoDecimationMatchesScalar) {
  sweep_kernel(DecimatingFir(quantize_taps(design_lowpass(17, 0.2)), 1));
}

TEST(KernelBlock, FirWideDecimationMatchesScalar) {
  // Decimation wider than most block sizes: many blocks emit nothing.
  sweep_kernel(DecimatingFir(quantize_taps(design_lowpass(9, 0.1)), 100));
}

TEST(KernelBlock, MixerMatchesScalar) {
  sweep_kernel(NcoMixer(NcoMixer::freq_from_normalized(0.21)));
}

TEST(KernelBlock, MixerNegativeFreqMatchesScalar) {
  sweep_kernel(NcoMixer(NcoMixer::freq_from_normalized(-0.497)));
}

TEST(KernelBlock, AmDetectorMatchesScalar) { sweep_kernel(AmDetector(6)); }

TEST(KernelBlock, FmDiscriminatorMatchesScalar) {
  sweep_kernel(FmDiscriminator());
}

TEST(KernelBlock, DefaultImplementationCountsOutputs) {
  // The base-class fallback must fill `counts` and return the total even
  // for kernels with no override (exercised through a decimating FIR by
  // calling the base explicitly).
  DecimatingFir fir(quantize_taps(design_lowpass(5, 0.2)), 2);
  SplitMix64 rng(0x5EED);
  const std::vector<CQ16> in = random_block(rng, 10);
  std::vector<CQ16> got(in.size());
  std::vector<std::uint8_t> counts(in.size(), 0xFF);
  const std::size_t n =
      fir.StreamKernel::process_block(in, got, counts.data());
  EXPECT_EQ(n, 5u);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(counts[i], i % 2 == 1 ? 1 : 0);
}

/// The block CORDIC primitives themselves, pinned against the scalar calls
/// over edge angles and magnitudes (the kernels above only reach angles the
/// NCO generates).
TEST(KernelBlock, CordicRotateBlockMatchesScalar) {
  std::vector<Q16> xs;
  std::vector<Q16> ys;
  std::vector<Q16> as;
  SplitMix64 rng(0xC0DC);
  for (int i = 0; i < 500; ++i) {
    xs.push_back(Q16::from_double(rng.uniform_real(-1.9, 1.9)));
    ys.push_back(Q16::from_double(rng.uniform_real(-1.9, 1.9)));
    as.push_back(q16_wrap_angle(rng.uniform_real(-3.14159, 3.14159)));
  }
  // Edge rows: rails and exact +-pi/2 fold boundaries.
  for (std::int32_t raw : {kI32Max, kI32Min, std::int32_t{0}}) {
    xs.push_back(Q16::from_raw(raw));
    ys.push_back(Q16::from_raw(raw));
    as.push_back(q16_half_pi());
    xs.push_back(Q16::from_raw(raw));
    ys.push_back(Q16::from_raw(raw));
    as.push_back(Q16::from_raw(-q16_half_pi().raw() - 1));
  }
  std::vector<Q16> ox(xs.size());
  std::vector<Q16> oy(xs.size());
  cordic_rotate_block(xs, ys, as, ox.data(), oy.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const RotateResult want = cordic_rotate(xs[i], ys[i], as[i]);
    EXPECT_EQ(ox[i].raw(), want.x.raw()) << i;
    EXPECT_EQ(oy[i].raw(), want.y.raw()) << i;
  }
}

TEST(KernelBlock, CordicVectorBlockMatchesScalar) {
  std::vector<Q16> xs;
  std::vector<Q16> ys;
  SplitMix64 rng(0xC0DD);
  for (int i = 0; i < 500; ++i) {
    xs.push_back(Q16::from_double(rng.uniform_real(-1.9, 1.9)));
    ys.push_back(Q16::from_double(rng.uniform_real(-1.9, 1.9)));
  }
  for (std::int32_t a : {kI32Max, kI32Min, std::int32_t{0}, std::int32_t{1},
                         std::int32_t{-1}})
    for (std::int32_t b : {kI32Max, kI32Min, std::int32_t{0}}) {
      xs.push_back(Q16::from_raw(a));
      ys.push_back(Q16::from_raw(b));
    }
  std::vector<Q16> mag(xs.size());
  std::vector<Q16> ang(xs.size());
  cordic_vector_block(xs, ys, mag.data(), ang.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const VectorResult want = cordic_vector(xs[i], ys[i]);
    EXPECT_EQ(mag[i].raw(), want.magnitude.raw()) << i;
    EXPECT_EQ(ang[i].raw(), want.angle.raw()) << i;
  }
}

}  // namespace
}  // namespace acc::accel
