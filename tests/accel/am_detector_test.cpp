#include <gtest/gtest.h>

#include <cmath>

#include "accel/mixer.hpp"
#include "common/rng.hpp"

namespace acc::accel {
namespace {

TEST(AmDetector, RecoversEnvelopeOfAmSignal) {
  // AM at baseband: x[n] = (1 + m*a[n]) * e^{j*phi} with slow a[n].
  // Slow DC tracker (cutoff ~2^-10) so the 0.003 cycles/sample modulation
  // passes through while the carrier's DC is removed.
  AmDetector det(/*dc_shift=*/10);
  std::vector<CQ16> out;
  const double m = 0.4;
  const double fa = 0.003;  // modulation
  const int n = 16384;
  for (int i = 0; i < n; ++i) {
    const double a = std::sin(2.0 * M_PI * fa * i);
    const double env = 0.6 * (1.0 + m * a);
    const double phi = 0.9;  // arbitrary constant phase
    det.push(CQ16{Q16::from_double(env * std::cos(phi)),
                  Q16::from_double(env * std::sin(phi))},
             out);
  }
  // After the DC tracker settles, output ~ 0.6*m*a[n] (high-passed).
  double peak = 0.0;
  double mean = 0.0;
  int count = 0;
  for (int i = 3 * n / 4; i < n; ++i) {
    peak = std::max(peak, std::abs(out[i].re.to_double()));
    mean += out[i].re.to_double();
    ++count;
  }
  mean /= count;
  EXPECT_NEAR(peak, 0.6 * m, 0.05);
  EXPECT_NEAR(mean, 0.0, 0.02);  // DC removed
}

TEST(AmDetector, ConstantCarrierDecaysToZero) {
  AmDetector det(4);
  std::vector<CQ16> out;
  for (int i = 0; i < 400; ++i)
    det.push(CQ16{Q16::from_double(0.8), Q16{}}, out);
  EXPECT_NEAR(out.back().re.to_double(), 0.0, 0.01);
}

TEST(AmDetector, PhaseInvariant) {
  // Envelope detection must not depend on carrier phase.
  AmDetector d1(5);
  AmDetector d2(5);
  std::vector<CQ16> o1;
  std::vector<CQ16> o2;
  for (int i = 0; i < 500; ++i) {
    const double env = 0.5 + 0.2 * std::sin(0.01 * i);
    const double p1 = 0.3;
    const double p2 = 0.3 + 2.0 * M_PI * 0.07 * i;  // spinning phase
    d1.push(CQ16{Q16::from_double(env * std::cos(p1)),
                 Q16::from_double(env * std::sin(p1))},
            o1);
    d2.push(CQ16{Q16::from_double(env * std::cos(p2)),
                 Q16::from_double(env * std::sin(p2))},
            o2);
  }
  for (std::size_t i = 100; i < o1.size(); ++i)
    EXPECT_NEAR(o1[i].re.to_double(), o2[i].re.to_double(), 8e-3);
}

TEST(AmDetector, SaveRestoreTransparent) {
  AmDetector ref(6);
  AmDetector victim(6);
  SplitMix64 rng(0xA0);
  std::vector<CQ16> a;
  std::vector<CQ16> b;
  for (int i = 0; i < 200; ++i) {
    const CQ16 s{Q16::from_double(rng.uniform_real(0.2, 0.9)),
                 Q16::from_double(rng.uniform_real(-0.3, 0.3))};
    ref.push(s, a);
    if (i == 71) {
      const auto ctx = victim.save_state();
      std::vector<CQ16> junk;
      for (int k = 0; k < 17; ++k)
        victim.push(CQ16{Q16::from_double(0.1), Q16{}}, junk);
      victim.restore_state(ctx);
    }
    victim.push(s, b);
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(AmDetector, ParameterValidation) {
  EXPECT_THROW(AmDetector(0), precondition_error);
  EXPECT_THROW(AmDetector(30), precondition_error);
  AmDetector det(6);
  std::int32_t junk[2] = {0, 0};
  EXPECT_THROW(det.restore_state(junk), precondition_error);
}

}  // namespace
}  // namespace acc::accel
