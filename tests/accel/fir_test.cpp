#include "accel/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace acc::accel {
namespace {

TEST(FirDesign, UnitDcGainAndSymmetry) {
  const std::vector<double> h = design_lowpass(33, 0.1);
  ASSERT_EQ(h.size(), 33u);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(h[i], h[32 - i], 1e-12);
}

TEST(FirDesign, RejectsBadParameters) {
  EXPECT_THROW((void)design_lowpass(32, 0.1), precondition_error);  // even
  EXPECT_THROW((void)design_lowpass(33, 0.0), precondition_error);
  EXPECT_THROW((void)design_lowpass(33, 0.5), precondition_error);
  EXPECT_THROW((void)design_lowpass(1, 0.1), precondition_error);
}

double response_at(const std::vector<double>& h, double norm_freq) {
  // |H(e^{j2pi f})| via direct evaluation.
  double re = 0.0;
  double im = 0.0;
  for (std::size_t n = 0; n < h.size(); ++n) {
    const double w = 2.0 * M_PI * norm_freq * static_cast<double>(n);
    re += h[n] * std::cos(w);
    im -= h[n] * std::sin(w);
  }
  return std::hypot(re, im);
}

TEST(FirDesign, PassbandFlatStopbandDeep) {
  const std::vector<double> h = design_lowpass(33, 0.1);
  EXPECT_NEAR(response_at(h, 0.0), 1.0, 1e-9);
  EXPECT_GT(response_at(h, 0.05), 0.9);       // passband
  EXPECT_LT(response_at(h, 0.2), 0.02);       // stopband > 34 dB down
  EXPECT_LT(response_at(h, 0.35), 0.02);
}

TEST(DecimatingFir, EmitsOnePerDecimationFactor) {
  DecimatingFir fir(quantize_taps(design_lowpass(5, 0.2)), 4);
  std::vector<CQ16> out;
  for (int i = 0; i < 16; ++i)
    fir.push(CQ16{Q16::from_double(1.0), Q16{}}, out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(DecimatingFir, DcPassesAtUnityGain) {
  DecimatingFir fir(quantize_taps(design_lowpass(33, 0.1)), 1);
  std::vector<CQ16> out;
  for (int i = 0; i < 100; ++i)
    fir.push(CQ16{Q16::from_double(0.5), Q16::from_double(-0.25)}, out);
  // After the 33-sample warmup the output equals the DC input.
  EXPECT_NEAR(out.back().re.to_double(), 0.5, 2e-3);
  EXPECT_NEAR(out.back().im.to_double(), -0.25, 2e-3);
}

TEST(DecimatingFir, StopbandToneAttenuated) {
  DecimatingFir fir(quantize_taps(design_lowpass(33, 0.05)), 1);
  std::vector<CQ16> out;
  const double f = 0.25;  // deep stopband
  for (int i = 0; i < 300; ++i) {
    const double v = std::sin(2.0 * M_PI * f * i);
    fir.push(CQ16{Q16::from_double(v), Q16{}}, out);
  }
  double peak = 0.0;
  for (std::size_t i = 50; i < out.size(); ++i)
    peak = std::max(peak, std::abs(out[i].re.to_double()));
  EXPECT_LT(peak, 0.02);
}

TEST(DecimatingFir, SaveRestoreRoundTrip) {
  DecimatingFir fir(quantize_taps(design_lowpass(9, 0.2)), 3);
  std::vector<CQ16> sink;
  SplitMix64 rng(1);
  for (int i = 0; i < 17; ++i)
    fir.push(CQ16{Q16::from_double(rng.uniform_real(-1, 1)), Q16{}}, sink);

  const std::vector<std::int32_t> state = fir.save_state();
  EXPECT_EQ(state.size(), fir.state_words());

  // Scribble over the kernel, then restore: outputs must continue as if
  // nothing happened.
  DecimatingFir twin(quantize_taps(design_lowpass(9, 0.2)), 3);
  twin.restore_state(state);
  std::vector<CQ16> a;
  std::vector<CQ16> b;
  for (int i = 0; i < 23; ++i) {
    const CQ16 s{Q16::from_double(rng.uniform_real(-1, 1)), Q16{}};
    fir.push(s, a);
    twin.push(s, b);
  }
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DecimatingFir, RestoreRejectsWrongSize) {
  DecimatingFir fir(quantize_taps(design_lowpass(9, 0.2)), 3);
  std::vector<std::int32_t> junk(3, 0);
  EXPECT_THROW(fir.restore_state(junk), precondition_error);
}

TEST(DecimatingFir, RestoreRejectsCorruptIndices) {
  DecimatingFir fir(quantize_taps(design_lowpass(9, 0.2)), 3);
  std::vector<std::int32_t> state = fir.save_state();
  state[0] = 1000;  // head out of range
  EXPECT_THROW(fir.restore_state(state), precondition_error);
}

TEST(DecimatingFir, CloneFreshHasPowerOnState) {
  DecimatingFir fir(quantize_taps(design_lowpass(9, 0.2)), 3, "lpf");
  std::vector<CQ16> sink;
  fir.push(CQ16{Q16::from_double(1.0), Q16{}}, sink);
  const auto fresh = fir.clone_fresh();
  EXPECT_EQ(fresh->name(), "lpf");
  // A fresh clone starts with an empty delay line: same as a reset kernel.
  fir.reset();
  std::vector<CQ16> a;
  std::vector<CQ16> b;
  for (int i = 0; i < 9; ++i) {
    const CQ16 s{Q16::from_double(0.3), Q16{}};
    fir.push(s, a);
    fresh->push(s, b);
  }
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace acc::accel
