#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/rng.hpp"

namespace acc::accel {
namespace {

std::vector<CQ16> random_block(SplitMix64& rng, std::size_t n) {
  std::vector<CQ16> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(CQ16{Q16::from_double(rng.uniform_real(-0.9, 0.9)),
                       Q16::from_double(rng.uniform_real(-0.9, 0.9))});
  return out;
}

/// THE sharing-correctness property: multiplexing two streams through ONE
/// kernel with save/restore context switches must be bit-identical to
/// running each stream through its own dedicated kernel. This is what makes
/// the paper's gateway approach functionally transparent.
void check_multiplexing_transparent(StreamKernel& shared, SplitMix64& rng,
                                    int blocks, std::size_t block_len) {
  const auto dedicated0 = shared.clone_fresh();
  const auto dedicated1 = shared.clone_fresh();
  shared.reset();
  std::vector<std::int32_t> ctx0 = shared.save_state();  // power-on contexts
  std::vector<std::int32_t> ctx1 = ctx0;

  std::vector<CQ16> muxed0;
  std::vector<CQ16> muxed1;
  std::vector<CQ16> ref0;
  std::vector<CQ16> ref1;
  for (int b = 0; b < blocks; ++b) {
    for (int stream = 0; stream < 2; ++stream) {
      const std::vector<CQ16> block = random_block(rng, block_len);
      // Context switch: restore this stream's state, run, save it back.
      shared.restore_state(stream == 0 ? ctx0 : ctx1);
      std::vector<CQ16>& muxed = stream == 0 ? muxed0 : muxed1;
      for (const CQ16& s : block) shared.push(s, muxed);
      (stream == 0 ? ctx0 : ctx1) = shared.save_state();
      // Reference: dedicated kernel per stream, no switching.
      StreamKernel& ded = stream == 0 ? *dedicated0 : *dedicated1;
      std::vector<CQ16>& ref = stream == 0 ? ref0 : ref1;
      for (const CQ16& s : block) ded.push(s, ref);
    }
  }
  ASSERT_EQ(muxed0.size(), ref0.size());
  ASSERT_EQ(muxed1.size(), ref1.size());
  for (std::size_t i = 0; i < ref0.size(); ++i) EXPECT_EQ(muxed0[i], ref0[i]);
  for (std::size_t i = 0; i < ref1.size(); ++i) EXPECT_EQ(muxed1[i], ref1[i]);
}

TEST(Multiplexing, TransparentForFir) {
  SplitMix64 rng(0xF1D0);
  DecimatingFir fir(quantize_taps(design_lowpass(33, 0.06)), 8);
  check_multiplexing_transparent(fir, rng, 6, 37);  // odd len: phase carries
}

TEST(Multiplexing, TransparentForMixer) {
  SplitMix64 rng(0x310);
  NcoMixer mixer(NcoMixer::freq_from_normalized(0.123));
  check_multiplexing_transparent(mixer, rng, 5, 29);
}

TEST(Multiplexing, TransparentForFmDiscriminator) {
  SplitMix64 rng(0xFD);
  FmDiscriminator fm;
  check_multiplexing_transparent(fm, rng, 5, 31);
}

TEST(NcoMixerBehaviour, ShiftsToneToDc) {
  // Mix a complex exponential at +f by a -f NCO: the output should be
  // (nearly) constant.
  const double f = 0.05;
  NcoMixer mixer(NcoMixer::freq_from_normalized(-f));
  std::vector<CQ16> out;
  for (int n = 1; n <= 400; ++n) {
    const double w = 2.0 * M_PI * f * n;
    mixer.push(CQ16{Q16::from_double(0.7 * std::cos(w)),
                    Q16::from_double(0.7 * std::sin(w))},
               out);
  }
  // After mixing, all samples sit near the same phasor.
  double min_re = 1e9;
  double max_re = -1e9;
  for (std::size_t i = 50; i < out.size(); ++i) {
    min_re = std::min(min_re, out[i].re.to_double());
    max_re = std::max(max_re, out[i].re.to_double());
  }
  EXPECT_LT(max_re - min_re, 0.03);
}

TEST(NcoMixerBehaviour, PhaseAccumulatorWrapsLikeHardware) {
  // A step near half a turn wraps through INT32 overflow without fault.
  NcoMixer mixer(NcoMixer::freq_from_normalized(0.49));
  std::vector<CQ16> out;
  for (int i = 0; i < 100; ++i)
    mixer.push(CQ16{Q16::from_double(0.5), Q16{}}, out);
  EXPECT_EQ(out.size(), 100u);
  for (const CQ16& s : out) {
    EXPECT_LE(std::abs(s.re.to_double()), 0.55);
    EXPECT_LE(std::abs(s.im.to_double()), 0.55);
  }
}

TEST(NcoMixerBehaviour, FrequencyConversionBounds) {
  EXPECT_THROW((void)NcoMixer::freq_from_normalized(0.6), precondition_error);
  EXPECT_THROW((void)NcoMixer::freq_from_normalized(-0.5), precondition_error);
  EXPECT_NO_THROW((void)NcoMixer::freq_from_normalized(0.25));
}

TEST(FmDiscriminatorBehaviour, ConstantFrequencyGivesConstantOutput) {
  // A complex exponential at normalized frequency f has per-sample phase
  // increment 2*pi*f -> discriminator output f/0.5 = 2f (since +-pi -> +-1).
  const double f = 0.1;
  FmDiscriminator fm;
  std::vector<CQ16> out;
  for (int n = 0; n < 200; ++n) {
    const double w = 2.0 * M_PI * f * n;
    fm.push(CQ16{Q16::from_double(0.8 * std::cos(w)),
                 Q16::from_double(0.8 * std::sin(w))},
            out);
  }
  for (std::size_t i = 5; i < out.size(); ++i)
    EXPECT_NEAR(out[i].re.to_double(), 2.0 * f, 5e-3);
}

TEST(FmDiscriminatorBehaviour, StateIsPreviousSample) {
  FmDiscriminator fm;
  std::vector<CQ16> sink;
  fm.push(CQ16{Q16::from_double(0.5), Q16::from_double(0.25)}, sink);
  const auto state = fm.save_state();
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state[0], Q16::from_double(0.5).raw());
  EXPECT_EQ(state[1], Q16::from_double(0.25).raw());
}

TEST(RunBlock, ProcessesWholeSpan) {
  DecimatingFir fir(quantize_taps(design_lowpass(5, 0.2)), 2);
  std::vector<CQ16> in(10, CQ16{Q16::from_double(0.1), Q16{}});
  const std::vector<CQ16> out = run_block(fir, in);
  EXPECT_EQ(out.size(), 5u);
}

}  // namespace
}  // namespace acc::accel
