// acc-lint rule-catalog tests: every rule has a passing and a failing
// fixture (tests/lint/fixtures/<RULE>_{ok,bad}.json), the failing one must
// raise exactly that rule, and the acc-lint-v1 JSON document must satisfy
// its golden schema (plus negatives for every schema clause).
#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/fault.hpp"

#ifndef ACC_LINT_FIXTURE_DIR
#error "build must define ACC_LINT_FIXTURE_DIR"
#endif

namespace acc::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ACC_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

LintReport lint_fixture(const std::string& name) {
  return lint_config_text(read_fixture(name), name);
}

sharing::SharedSystemSpec small_spec() {
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1, 1};
  spec.chain.entry_cycles_per_sample = 15;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"a", Rational(1, 50), 4100}, {"b", Rational(1, 80), 4100}};
  return spec;
}

// Every catalog rule has a seeded-bad fixture that raises exactly it, and a
// passing sibling that does not. Error-tier rules must also flip clean().
TEST(LintFixtures, EveryRuleHasBehavingOkAndBadFixtures) {
  for (const RuleInfo& r : kRules) {
    SCOPED_TRACE(r.id);
    // V* rules are emitted by the acc-verify model checker, not the static
    // linter; their mutation fixtures live in tests/verify/fixtures and are
    // exercised by test_verify + the verify_cli_rejects_* ctest cases.
    if (r.id[0] == 'V') continue;
    const LintReport ok = lint_fixture(std::string(r.id) + "_ok.json");
    EXPECT_FALSE(ok.has(r.id)) << ok.to_text();
    EXPECT_TRUE(ok.clean()) << ok.to_text();

    const LintReport bad = lint_fixture(std::string(r.id) + "_bad.json");
    EXPECT_TRUE(bad.has(r.id)) << bad.to_text();
    if (r.severity == Severity::kError) {
      EXPECT_FALSE(bad.clean()) << bad.to_text();
    } else {
      // Warning/note tier never gates deployment.
      EXPECT_TRUE(bad.clean()) << bad.to_text();
    }
  }
}

// The acceptance scenarios from the issue, by expected rule ID.
TEST(LintFixtures, SeededBadConfigsRaiseTheExpectedRule) {
  EXPECT_TRUE(lint_fixture("M01_bad.json").has("graph-inconsistent"));
  EXPECT_TRUE(lint_fixture("M03_bad.json").has("channel-undersized"));
  EXPECT_TRUE(lint_fixture("M10_bad.json").has("fifo-undersized"));
  EXPECT_TRUE(lint_fixture("G01_bad.json").has("gateway-unpaired"));
  EXPECT_TRUE(lint_fixture("M04_bad.json").has("eta-positive"));
  EXPECT_TRUE(lint_fixture("F02_bad.json").has("fault-unseeded"));
  EXPECT_TRUE(lint_fixture("C02_bad.json").has("ctrl-mu-unsatisfiable"));
  EXPECT_TRUE(lint_fixture("G03_bad.json").has("ctrl-kind-undeclared"));
}

TEST(LintRules, FindRuleByIdAndName) {
  ASSERT_NE(find_rule("M04"), nullptr);
  EXPECT_STREQ(find_rule("M04")->name, "eta-positive");
  EXPECT_EQ(find_rule("eta-positive"), find_rule("M04"));
  EXPECT_EQ(find_rule("Z99"), nullptr);
  EXPECT_EQ(find_rule(""), nullptr);
}

TEST(LintRules, CatalogIdsAreUnique) {
  for (int i = 0; i < kNumRules; ++i) {
    for (int j = i + 1; j < kNumRules; ++j) {
      EXPECT_STRNE(kRules[i].id, kRules[j].id);
      EXPECT_STRNE(kRules[i].name, kRules[j].name);
    }
  }
}

TEST(LintReportTest, TextRenderingCarriesRuleLocationAndHint) {
  LintReport rep("cfg");
  rep.add("M04", "$.etas[1]", "eta is 0", "use Algorithm 1");
  const std::string text = rep.to_text();
  EXPECT_NE(text.find("cfg:$.etas[1]: error [M04 eta-positive] eta is 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hint: use Algorithm 1"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos);
}

TEST(LintReportTest, SuppressMarksByIdAndByName) {
  LintReport rep("cfg");
  rep.add("M04", "$", "x");
  rep.add("M07", "$", "y");
  rep.add("D01", "$", "z");
  rep.suppress({"M04", "rng-unseeded"});
  // Suppressed diagnostics stay present (has() = presence, not gating)...
  EXPECT_TRUE(rep.has("M04"));
  EXPECT_TRUE(rep.has("D01"));
  EXPECT_TRUE(rep.has("M07"));
  // ...but leave the counts, the text rendering, and gate only via M07.
  EXPECT_EQ(rep.errors(), 1);
  EXPECT_EQ(rep.warnings(), 0);
  EXPECT_EQ(rep.to_text().find("M04"), std::string::npos);
  ASSERT_EQ(rep.diagnostics().size(), 3u);
  EXPECT_TRUE(rep.diagnostics()[0].suppressed);
  EXPECT_FALSE(rep.diagnostics()[1].suppressed);
  EXPECT_TRUE(rep.diagnostics()[2].suppressed);
}

TEST(LintReportTest, SuppressedDiagnosticsStayInJsonFlagged) {
  LintReport rep("cfg");
  rep.add("M04", "$", "x");
  rep.suppress({"M04"});
  const json::Value doc = rep.to_json();
  ASSERT_EQ(validate_lint_json(doc), std::vector<std::string>{});
  const json::Value& d = doc.at("diagnostics").as_array().at(0);
  EXPECT_EQ(d.at("rule").as_string(), "M04");
  EXPECT_TRUE(d.at("suppressed").as_bool());
  EXPECT_EQ(doc.at("summary").at("errors").as_int(), 0);
}

TEST(LintReportTest, UnknownCliAllowIsAConfigError) {
  LintOptions opts;
  opts.suppress = {"Z99"};
  const LintReport rep = lint_config_text("{}", "cfg", opts);
  EXPECT_TRUE(rep.has("C01"));
  EXPECT_FALSE(rep.clean());
  bool found = false;
  for (const Diagnostic& d : rep.diagnostics()) {
    if (d.rule == "C01" && d.location == "$.options.allow") found = true;
  }
  EXPECT_TRUE(found) << rep.to_text();
}

TEST(LintReportTest, JsonCarriesToolAndSchemaVersion) {
  const json::Value doc = LintReport("cfg").to_json();
  EXPECT_EQ(doc.at("tool_version").as_string(), kToolVersion);
  EXPECT_EQ(doc.at("schema_version").as_int(), kSchemaVersion);
}

TEST(LintReportTest, ConfigSuppressSectionAndCliAllowBothApply) {
  // The M07 fixture problem (ni_capacity = 1) suppressed from the config...
  std::string text = read_fixture("M07_bad.json");
  text.insert(text.rfind('}'), ", \"suppress\": [\"M07\"]");
  EXPECT_TRUE(lint_config_text(text, "cfg").clean());
  // ...and equivalently from the CLI options (--allow).
  LintOptions opts;
  opts.suppress = {"ni-capacity"};
  EXPECT_TRUE(lint_config_text(read_fixture("M07_bad.json"), "cfg", opts)
                  .clean());
}

TEST(LintReportTest, UnknownSuppressEntryIsAConfigError) {
  std::string text = read_fixture("C01_ok.json");
  text.insert(text.rfind('}'), ", \"suppress\": [\"Z99\"]");
  const LintReport rep = lint_config_text(text, "cfg");
  EXPECT_TRUE(rep.has("C01"));
  EXPECT_FALSE(rep.clean());
}

TEST(LintConfig, SyntaxErrorYieldsSingleC01) {
  const LintReport rep = lint_config_text("{not json", "cfg");
  ASSERT_EQ(rep.diagnostics().size(), 1u);
  EXPECT_EQ(rep.diagnostics()[0].rule, "C01");
  EXPECT_FALSE(rep.clean());
}

TEST(LintSpecApi, CleanSpecPassesBrokenSpecFails) {
  EXPECT_TRUE(lint_spec(small_spec(), {}, "s").clean());
  sharing::SharedSystemSpec bad = small_spec();
  bad.chain.ni_capacity = 1;
  const LintReport rep = lint_spec(bad, {}, "s");
  EXPECT_TRUE(rep.has("M07"));
  EXPECT_FALSE(rep.clean());
  // Block sizes below 1 via the same convenience entry point.
  EXPECT_TRUE(lint_spec(small_spec(), {0, 10}, "s").has("M04"));
}

TEST(LintGate, NoLintFlagBypassesAndCleanInputPasses) {
  const char* argv_skip[] = {"prog", "--no-lint"};
  const char* argv_run[] = {"prog"};
  LintInput broken;
  broken.name = "broken";
  broken.spec = small_spec();
  broken.spec->chain.ni_capacity = 0;

  std::ostringstream err;
  EXPECT_TRUE(startup_gate(2, const_cast<char**>(argv_skip), broken, err));
  EXPECT_TRUE(err.str().empty());

  EXPECT_FALSE(startup_gate(1, const_cast<char**>(argv_run), broken, err));
  EXPECT_NE(err.str().find("M07"), std::string::npos);

  LintInput fine;
  fine.name = "fine";
  fine.spec = small_spec();
  std::ostringstream err2;
  EXPECT_TRUE(startup_gate(1, const_cast<char**>(argv_run), fine, err2));
}

TEST(LintGate, FaultsFromInjectorMirrorsActiveSites) {
  sim::FaultInjector inj(0xBEEF);
  sim::FaultSpec ring;
  ring.probability = 0.1;
  ring.max_delay = 4;
  inj.configure(sim::FaultSite::kRingLink, ring);
  const FaultsDecl fd = faults_from_injector(inj);
  EXPECT_TRUE(fd.seeded);
  EXPECT_EQ(fd.seed, 0xBEEFu);
  ASSERT_EQ(fd.sites.size(), 1u);  // inactive sites are not mirrored
  EXPECT_EQ(fd.sites[0].site, "ring_link");
  EXPECT_EQ(fd.sites[0].window_until, -1);  // open-ended window

  LintInput in;
  in.name = "inj";
  in.faults = fd;
  EXPECT_TRUE(lint_input(in).clean());

  // The same declaration shape with an out-of-range law (which the live
  // FaultInjector would refuse to even construct) is caught by F03.
  FaultsDecl handmade = fd;
  handmade.sites[0].max_delay = 0;  // delay law without a bound
  LintInput in2;
  in2.faults = handmade;
  EXPECT_TRUE(lint_input(in2).has("F03"));
}

// ---------------------------------------------------------------------------
// acc-lint-v1 JSON golden schema.
// ---------------------------------------------------------------------------

json::Value sample_doc() {
  LintReport rep("cfg");
  rep.add("M07", "$.chain.ni_capacity", "capacity 1 < 2", "use >= 2");
  rep.add("D01", "$.determinism", "rng unseeded");
  return rep.to_json();
}

TEST(LintJsonSchema, ProducedDocumentValidates) {
  EXPECT_TRUE(validate_lint_json(sample_doc()).empty());
  // Empty report validates too.
  EXPECT_TRUE(validate_lint_json(LintReport("cfg").to_json()).empty());
}

TEST(LintJsonSchema, NegativeWrongSchemaString) {
  json::Value doc = sample_doc();
  doc.as_object()["schema"] = "acc-lint-v2";
  EXPECT_FALSE(validate_lint_json(doc).empty());
}

TEST(LintJsonSchema, NegativeMissingDiagnosticKey) {
  json::Value doc = sample_doc();
  doc.as_object()["diagnostics"].as_array()[0].as_object().erase("message");
  EXPECT_FALSE(validate_lint_json(doc).empty());
}

TEST(LintJsonSchema, NegativeUnknownRuleId) {
  json::Value doc = sample_doc();
  doc.as_object()["diagnostics"].as_array()[0].as_object()["rule"] = "Z99";
  EXPECT_FALSE(validate_lint_json(doc).empty());
}

TEST(LintJsonSchema, NegativeSeverityVocabularyAndCatalogMismatch) {
  json::Value doc = sample_doc();
  doc.as_object()["diagnostics"].as_array()[0].as_object()["severity"] =
      "fatal";
  EXPECT_FALSE(validate_lint_json(doc).empty());
  // A legal severity word that contradicts the rule's catalog tier is still
  // a breach (producers must not downgrade errors).
  json::Value doc2 = sample_doc();
  doc2.as_object()["diagnostics"].as_array()[0].as_object()["severity"] =
      "note";
  doc2.as_object()["summary"].as_object()["errors"] = 0;
  doc2.as_object()["summary"].as_object()["notes"] = 1;
  EXPECT_FALSE(validate_lint_json(doc2).empty());
}

TEST(LintJsonSchema, NegativeSummaryCountMismatch) {
  json::Value doc = sample_doc();
  doc.as_object()["summary"].as_object()["errors"] = 7;
  EXPECT_FALSE(validate_lint_json(doc).empty());
}

TEST(LintJsonSchema, NegativeToolVersionMissingOrEmpty) {
  json::Value doc = sample_doc();
  doc.as_object().erase("tool_version");
  EXPECT_FALSE(validate_lint_json(doc).empty());
  json::Value doc2 = sample_doc();
  doc2.as_object()["tool_version"] = "";
  EXPECT_FALSE(validate_lint_json(doc2).empty());
}

TEST(LintJsonSchema, NegativeSchemaVersionMissingOrWrong) {
  json::Value doc = sample_doc();
  doc.as_object().erase("schema_version");
  EXPECT_FALSE(validate_lint_json(doc).empty());
  json::Value doc2 = sample_doc();
  doc2.as_object()["schema_version"] = kSchemaVersion + 1;
  EXPECT_FALSE(validate_lint_json(doc2).empty());
  json::Value doc3 = sample_doc();
  doc3.as_object()["schema_version"] = "1";  // wrong kind
  EXPECT_FALSE(validate_lint_json(doc3).empty());
}

TEST(LintJsonSchema, NegativeSuppressedMissingOrWrongKind) {
  json::Value doc = sample_doc();
  doc.as_object()["diagnostics"].as_array()[0].as_object().erase("suppressed");
  EXPECT_FALSE(validate_lint_json(doc).empty());
  json::Value doc2 = sample_doc();
  doc2.as_object()["diagnostics"].as_array()[0].as_object()["suppressed"] =
      "no";
  EXPECT_FALSE(validate_lint_json(doc2).empty());
}

TEST(LintJsonSchema, SuppressedDiagnosticsLeaveSummaryTallies) {
  // A suppressed error in the array with summary.errors = 0 is VALID...
  LintReport rep("cfg");
  rep.add("M07", "$", "x");
  rep.suppress({"M07"});
  EXPECT_TRUE(validate_lint_json(rep.to_json()).empty());
  // ...and counting it anyway is a breach.
  json::Value doc = rep.to_json();
  doc.as_object()["summary"].as_object()["errors"] = 1;
  EXPECT_FALSE(validate_lint_json(doc).empty());
}

TEST(LintJsonSchema, NegativeDiagnosticsNotArray) {
  json::Value doc = sample_doc();
  doc.as_object()["diagnostics"] = "none";
  EXPECT_FALSE(validate_lint_json(doc).empty());
}

// The golden PAL document shipped in tests/lint/golden must itself satisfy
// the schema (the byte-level diff against acc-lint --json runs in ctest).
TEST(LintJsonSchema, CommittedPalGoldenValidates) {
  const std::string text =
      read_fixture("../golden/pal_decoder.lint.json");
  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const std::vector<std::string> problems = validate_lint_json(*doc);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  // And it must be a CLEAN verdict: the shipped PAL config has no errors.
  EXPECT_EQ(doc->at("summary").at("errors").as_int(), 0);
}

}  // namespace
}  // namespace acc::lint
