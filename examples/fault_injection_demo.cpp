// Fault injection on a shared accelerator chain: two streams multiplex one
// [CORDIC mixer] chain while a seeded FaultInjector perturbs the ring,
// the config bus, the exit-gateway notifications and the input C-FIFO
// credits. The demo shows the robustness loop end to end:
//
//   1. declare a fault envelope (per-site probability / max delay),
//   2. let the injector derive the worst-case per-block delay it implies,
//   3. run, then classify every conformance violation of the zero-fault
//      model as covered-by-slack (expected under faults) or a genuine
//      breach of the paper's bounds (never, for bounded delays).
//
// Exit code 0 = all samples delivered, zero genuine breaches.
//
// Build & run:  ./build/examples/fault_injection_demo
#include <cmath>
#include <iostream>
#include <memory>

#include "accel/mixer.hpp"
#include "common/table.hpp"
#include "lint/linter.hpp"
#include "sharing/analysis.hpp"
#include "sharing/conformance.hpp"
#include "sim/chain_builder.hpp"
#include "sim/fault.hpp"
#include "sim/proc_tile.hpp"

namespace {
using namespace acc;

std::vector<sim::Flit> tone_iq(double freq_norm, std::size_t n) {
  std::vector<sim::Flit> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 2.0 * M_PI * freq_norm * static_cast<double>(i);
    out.push_back(sim::pack_sample(CQ16{Q16::from_double(0.7 * std::cos(w)),
                                        Q16::from_double(0.7 * std::sin(w))}));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kSamples = 4096;
  const std::int64_t kEta = 64;
  const sim::Cycle kPeriod = 16;
  const sim::Cycle kReconfig = 100;

  // 1. The declared fault envelope: modest probabilities, bounded delays.
  sim::FaultInjector inj(/*seed=*/0xFA0D3C0DEULL);
  sim::FaultSpec ring;
  ring.probability = 0.05;
  ring.max_delay = 4;
  ring.min_spacing = 100;
  inj.configure(sim::FaultSite::kRingLink, ring);
  sim::FaultSpec bus;
  bus.probability = 0.5;
  bus.max_delay = 32;
  inj.configure(sim::FaultSite::kConfigBus, bus);
  sim::FaultSpec notify;
  notify.probability = 0.5;
  notify.max_delay = 16;
  inj.configure(sim::FaultSite::kExitNotify, notify);
  sim::FaultSpec credit;
  credit.probability = 0.02;
  credit.max_delay = 4;
  credit.min_spacing = 300;
  inj.configure(sim::FaultSite::kCreditWithhold, credit);

  // Build the chain with trace + faults wired everywhere.
  sim::System sys(3);
  sim::TraceLog trace;
  sim::ChainConfig cfg;
  cfg.accel_cycles = {1};
  cfg.epsilon = 4;
  cfg.trace = &trace;
  cfg.fault = &inj;
  cfg.retry.notify_timeout = 20000;  // recovery backstop, never the plan

  // Analytical model of the same chain (also feeds conformance below).
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = cfg.epsilon;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"s0", Rational(1, kPeriod), kReconfig},
                  {"s1", Rational(1, kPeriod), kReconfig}};
  const std::vector<std::int64_t> etas{kEta, kEta};

  // Static admissibility gate, fault envelope included (--no-lint skips):
  // the seeded injector must pass F01-F03 before anything is simulated.
  lint::LintInput li;
  li.name = "fault-injection-demo";
  li.spec = spec;
  li.etas = etas;
  li.faults = lint::faults_from_injector(inj);
  if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;

  sim::GatewayChain chain = sim::build_gateway_chain(sys, cfg);

  sim::CFifo* ins[2];
  sim::CFifo* outs[2];
  const double shifts[2] = {0.05, -0.08};
  for (int k = 0; k < 2; ++k) {
    ins[k] = &sys.add_fifo("in" + std::to_string(k), 4 * kEta);
    ins[k]->set_fault(&inj);
    outs[k] = &sys.add_fifo("out" + std::to_string(k),
                            static_cast<std::int64_t>(kSamples) + 8, 0, 0);
    std::vector<std::unique_ptr<accel::StreamKernel>> kernels;
    kernels.push_back(std::make_unique<accel::NcoMixer>(
        accel::NcoMixer::freq_from_normalized(shifts[k])));
    chain.add_stream({k, "s" + std::to_string(k), kEta, kEta, ins[k],
                      outs[k], kReconfig},
                     std::move(kernels));
    sys.add<sim::SourceTile>("src" + std::to_string(k), *ins[k],
                             tone_iq(0.10 + 0.02 * k, kSamples), kPeriod);
  }
  sys.run(static_cast<sim::Cycle>(kSamples) * kPeriod + 100000);

  // 2-3. Envelope-aware conformance against the analytical model.
  sharing::ConformanceOptions copts;
  sharing::Time tau_max = 0;
  for (std::size_t s = 0; s < 2; ++s)
    tau_max = std::max(tau_max, sharing::tau_hat(spec, s, kEta));
  copts.fault_slack =
      inj.worst_case_block_delay(tau_max + copts.slack, kEta);
  const sharing::ConformanceReport rep =
      sharing::check_conformance(spec, etas, trace, copts);

  bool ok = rep.genuine_breaches == 0;
  Table t({"stream", "blocks done", "samples out", "delivered"});
  for (int k = 0; k < 2; ++k) {
    std::size_t n = 0;
    while (outs[k]->can_pop(sys.now())) {
      (void)outs[k]->pop(sys.now());
      ++n;
    }
    ok &= n == kSamples;
    t.add_row({"s" + std::to_string(k),
               std::to_string(chain.entry->block_completions(k).size()),
               std::to_string(n), n == kSamples ? "all" : "INCOMPLETE"});
  }
  std::cout << t.render() << "\n";
  std::cout << "faults injected:      " << inj.total_injected() << " ("
            << inj.total_delay_cycles() << " delay cycles)\n"
            << "declared envelope:    +" << copts.fault_slack
            << " cycles/block\n"
            << "blocks checked:       " << rep.blocks_checked << "\n"
            << "violations vs model:  " << rep.violations.size() << " ("
            << rep.covered_by_slack << " covered by slack, "
            << rep.genuine_breaches << " genuine)\n"
            << "max service observed: " << rep.max_service_observed
            << " cycles (tau_hat " << tau_max << ")\n";
  std::cout << "\nbounded faults, zero genuine bound breaches: "
            << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
