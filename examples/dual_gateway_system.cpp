// The full Fig. 1 topology: TWO entry/exit-gateway pairs on one dual-ring
// interconnect, each multiplexing its own set of streams over its own
// accelerator chain — two independent shared-accelerator domains coexisting
// in one MPSoC.
//
//   gateway pair 1 (nodes 0..3): two FM receivers share [CORDIC -> FIR/4]
//   gateway pair 2 (nodes 4..6): two channel shifters share [CORDIC]
//
// Checks that both domains meet their own real-time behaviour without
// interfering (the paper's Fig. 1 shows exactly this arrangement: G0/G1
// around Acc0+Acc1, G2/G3 around Acc2).
//
// Build & run:  ./build/examples/dual_gateway_system
#include <cmath>
#include <iostream>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/table.hpp"
#include "lint/linter.hpp"
#include "radio/metrics.hpp"
#include "radio/signal.hpp"
#include "sim/gateway.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace {
using namespace acc;

std::vector<sim::Flit> tone_iq(double freq_norm, std::size_t n, double amp) {
  std::vector<sim::Flit> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 2.0 * M_PI * freq_norm * static_cast<double>(i);
    out.push_back(sim::pack_sample(CQ16{Q16::from_double(amp * std::cos(w)),
                                        Q16::from_double(amp * std::sin(w))}));
  }
  return out;
}

std::vector<double> drain_re(sim::CFifo& f, sim::Cycle now) {
  std::vector<double> v;
  while (f.can_pop(now)) v.push_back(sim::unpack_sample(f.pop(now)).re.to_double());
  return v;
}

/// Offline FM discrimination of a drained complex stream (measurement
/// instrument; domain 1's chain ends before demodulation).
std::vector<double> drain_and_discriminate(sim::CFifo& f, sim::Cycle now) {
  std::vector<double> out;
  CQ16 prev{};
  while (f.can_pop(now)) {
    const CQ16 s = sim::unpack_sample(f.pop(now));
    const double d = std::atan2(
        s.im.to_double() * prev.re.to_double() -
            s.re.to_double() * prev.im.to_double(),
        s.re.to_double() * prev.re.to_double() +
            s.im.to_double() * prev.im.to_double());
    out.push_back(d / M_PI);
    prev = s;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kSamples = 1 << 13;

  // Static admissibility gate over the two-domain architecture: both
  // gateway pairs, their C-FIFOs and per-block output quanta (G01/G02/M10).
  // Logical stream indices: 0/1 = domain-1 FM, 2/3 = domain-2 shifters.
  {
    lint::LintInput li;
    li.name = "dual-gateway-system";
    li.fifos = {{"d1.in0", 512},  {"d1.in1", 512},
                {"d1.out0", 4096}, {"d1.out1", 4096},
                {"d2.in0", 256},  {"d2.in1", 256},
                {"d2.out0", 1 << 14}, {"d2.out1", 1 << 14}};
    li.etas = {128, 128, 64, 64};
    li.block_out = {32, 32, 64, 64};  // domain 1 decimates by 4
    lint::GatewayDecl d1_entry_decl;
    d1_entry_decl.name = "d1.entry";
    d1_entry_decl.is_entry = true;
    d1_entry_decl.chain = "d1";
    d1_entry_decl.streams = {0, 1};
    d1_entry_decl.consumer_fifos = {"d1.out0", "d1.out1"};
    lint::GatewayDecl d1_exit_decl;
    d1_exit_decl.name = "d1.exit";
    d1_exit_decl.is_entry = false;
    d1_exit_decl.chain = "d1";
    lint::GatewayDecl d2_entry_decl;
    d2_entry_decl.name = "d2.entry";
    d2_entry_decl.is_entry = true;
    d2_entry_decl.chain = "d2";
    d2_entry_decl.streams = {2, 3};
    d2_entry_decl.consumer_fifos = {"d2.out0", "d2.out1"};
    lint::GatewayDecl d2_exit_decl;
    d2_exit_decl.name = "d2.exit";
    d2_exit_decl.is_entry = false;
    d2_exit_decl.chain = "d2";
    li.gateways = {d1_entry_decl, d1_exit_decl, d2_entry_decl, d2_exit_decl};
    if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;
  }

  sim::System sys(7);

  // ---- Domain 1: FM receivers over CORDIC+FIR (nodes 0..3). ----
  auto& d1_cordic = sys.add<sim::AcceleratorTile>("d1.cordic", sys.ring(), 1, 1, 2);
  auto& d1_fir = sys.add<sim::AcceleratorTile>("d1.fir", sys.ring(), 2, 1, 2);
  const std::vector<Q16> taps =
      accel::quantize_taps(accel::design_lowpass(33, 0.08));
  const double carriers1[2] = {0.21, 0.13};
  for (int k = 0; k < 2; ++k) {
    d1_cordic.register_context(
        k, std::make_unique<accel::NcoMixer>(
               accel::NcoMixer::freq_from_normalized(-carriers1[k])));
    d1_fir.register_context(k, std::make_unique<accel::DecimatingFir>(taps, 4));
  }
  d1_cordic.set_upstream(0, 1);
  d1_cordic.set_downstream(2, 2, 2);
  d1_fir.set_upstream(1, 1);
  d1_fir.set_downstream(3, 3, 2);
  auto& d1_exit = sys.add<sim::ExitGateway>("d1.exit", sys.ring(), 3, 1, 2);
  d1_exit.set_upstream(2, 2);
  auto& d1_entry = sys.add<sim::EntryGateway>("d1.entry", sys.ring(), 0, 15, 1, 1, 2);
  d1_entry.set_chain({&d1_cordic, &d1_fir});
  d1_entry.set_exit(&d1_exit);
  d1_exit.set_entry(&d1_entry);

  sim::CFifo* d1_in[2];
  sim::CFifo* d1_out[2];
  const std::int64_t d1_eta = 128;
  for (int k = 0; k < 2; ++k) {
    d1_in[k] = &sys.add_fifo("d1.in" + std::to_string(k), 4 * d1_eta);
    d1_out[k] = &sys.add_fifo("d1.out" + std::to_string(k), 4096, 0, 0);
    d1_entry.add_stream({k, "fm" + std::to_string(k), d1_eta, d1_eta / 4,
                         d1_in[k], d1_out[k], /*reconfig=*/400});
    // FM mono input: tone 0.002/0.003 modulated at the domain carrier.
    std::vector<double> audio(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i)
      audio[i] = 0.8 * std::sin(2.0 * M_PI * (0.002 + 0.001 * k) *
                                static_cast<double>(i));
    const auto fm = radio::fm_modulate(audio, carriers1[k], 0.05, 1.0, 0.8);
    std::vector<sim::Flit> flits;
    for (const radio::cplx& s : fm)
      flits.push_back(sim::pack_sample(CQ16{Q16::from_double(s.real()),
                                            Q16::from_double(s.imag())}));
    sys.add<sim::SourceTile>("d1.fe" + std::to_string(k), *d1_in[k], flits,
                             /*period=*/40);
  }

  // ---- Domain 2: channel shifters over one CORDIC (nodes 4..6). ----
  auto& d2_cordic = sys.add<sim::AcceleratorTile>("d2.cordic", sys.ring(), 5, 1, 2);
  const double shifts[2] = {0.05, -0.08};
  const double d2_tone[2] = {0.10, 0.12};  // shifted to 0.15 / 0.04
  for (int k = 0; k < 2; ++k) {
    d2_cordic.register_context(
        k, std::make_unique<accel::NcoMixer>(
               accel::NcoMixer::freq_from_normalized(shifts[k])));
  }
  d2_cordic.set_upstream(4, 1);
  d2_cordic.set_downstream(6, 2, 2);
  auto& d2_exit = sys.add<sim::ExitGateway>("d2.exit", sys.ring(), 6, 1, 2);
  d2_exit.set_upstream(5, 2);
  auto& d2_entry = sys.add<sim::EntryGateway>("d2.entry", sys.ring(), 4, 2, 5, 1, 2);
  d2_entry.set_chain({&d2_cordic});
  d2_entry.set_exit(&d2_exit);
  d2_exit.set_entry(&d2_entry);

  sim::CFifo* d2_in[2];
  sim::CFifo* d2_out[2];
  const std::int64_t d2_eta = 64;
  for (int k = 0; k < 2; ++k) {
    d2_in[k] = &sys.add_fifo("d2.in" + std::to_string(k), 4 * d2_eta);
    d2_out[k] = &sys.add_fifo("d2.out" + std::to_string(k), 1 << 14, 0, 0);
    d2_entry.add_stream({k, "shift" + std::to_string(k), d2_eta, d2_eta,
                         d2_in[k], d2_out[k], /*reconfig=*/100});
    sys.add<sim::SourceTile>("d2.src" + std::to_string(k), *d2_in[k],
                             tone_iq(d2_tone[k], kSamples, 0.7),
                             /*period=*/16);
  }

  // ---- Run both domains concurrently. ----
  sys.run(static_cast<sim::Cycle>(kSamples) * 40 + 50000);

  Table t({"domain", "stream", "blocks", "samples out", "quality check"});
  bool ok = true;
  for (int k = 0; k < 2; ++k) {
    std::vector<double> audio = drain_and_discriminate(*d1_out[k], sys.now());
    radio::remove_dc(audio);
    const double snr =
        audio.size() > 300
            ? radio::tone_snr_db(audio, 0.25, 0.002 + 0.001 * k, 64)
            : -1;
    ok &= snr > 15.0;
    t.add_row({"1 (FM rx)", "fm" + std::to_string(k),
               std::to_string(d1_entry.block_completions(k).size()),
               std::to_string(audio.size()),
               "audio SNR " + fmt_double(snr, 1) + " dB"});
  }
  for (int k = 0; k < 2; ++k) {
    const std::vector<double> out = drain_re(*d2_out[k], sys.now());
    // The shifter moved the tone by `shifts[k]`: probe the shifted bin.
    const double want = d2_tone[k] + shifts[k];
    const double got =
        out.size() > 500 ? radio::goertzel_power(out, 1.0, want) : 0.0;
    const double at_old =
        out.size() > 500 ? radio::goertzel_power(out, 1.0, d2_tone[k]) : 1.0;
    ok &= got > 10.0 * at_old;
    t.add_row({"2 (shifter)", "shift" + std::to_string(k),
               std::to_string(d2_entry.block_completions(k).size()),
               std::to_string(out.size()),
               "shifted-bin power x" +
                   fmt_double(got / (at_old + 1e-12), 0) + " vs original"});
  }
  std::cout << t.render();
  std::cout << "\nboth gateway domains ran concurrently on one dual ring: "
            << (ok ? "OK" : "DEGRADED") << "\n";
  return ok ? 0 : 1;
}
