// Multi-standard receiver: an FM radio and an AM radio — different
// demodulation standards — share ONE CORDIC tile through a gateway pair.
//
// This is the scenario of the paper's reference [8] (multi-standard channel
// decoding on weakly programmable hardware): the same physical CORDIC
// datapath runs in rotation mode (as the FM stream's mixer) and in
// vectoring mode (as the AM stream's envelope detector), selected purely by
// the per-stream context the entry-gateway restores. Block sizes come from
// Algorithm 1 so both standards keep hard real-time guarantees.
//
// Build & run:  ./build/examples/multi_standard_receiver
#include <cmath>
#include <iostream>

#include "accel/mixer.hpp"
#include "common/table.hpp"
#include "lint/linter.hpp"
#include "radio/metrics.hpp"
#include "radio/signal.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sim/chain_builder.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace {
using namespace acc;

std::vector<sim::Flit> pack(const std::vector<radio::cplx>& v) {
  std::vector<sim::Flit> out;
  out.reserve(v.size());
  for (const radio::cplx& s : v)
    out.push_back(sim::pack_sample(CQ16{Q16::from_double(s.real()),
                                        Q16::from_double(s.imag())}));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kSamples = 1 << 14;
  const double fm_tone = 0.004;
  const double am_tone = 0.002;

  // ---- Analysis: two streams, one single-accelerator chain. ----
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1};
  spec.chain.entry_cycles_per_sample = 4;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{"fm", Rational(1, 24), 300}, {"am", Rational(1, 32), 300}};

  // Static admissibility gate (--no-lint skips).
  lint::LintInput li;
  li.name = "multi-standard-receiver";
  li.spec = spec;
  if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;

  const sharing::BlockSizeResult blocks =
      sharing::solve_block_sizes_fixpoint(spec);
  if (!blocks.feasible) {
    std::cout << "not schedulable\n";
    return 1;
  }
  std::cout << "Algorithm 1: eta_fm=" << blocks.eta[0]
            << ", eta_am=" << blocks.eta[1] << ", round=" << blocks.gamma
            << " cycles, utilization="
            << sharing::utilization(spec).to_double() << "\n\n";

  // ---- The MPSoC: one shared CORDIC tile, two standards. The chain
  // builder wires entry gateway -> CORDIC -> exit gateway on the ring. ----
  sim::System sys(4);
  sim::ChainConfig chain_cfg;
  chain_cfg.name = "rx";
  chain_cfg.accel_cycles = {1};
  chain_cfg.epsilon = 4;
  sim::GatewayChain chain = sim::build_gateway_chain(sys, chain_cfg);

  sim::CFifo& fm_in = sys.add_fifo("fm.in", 4 * blocks.eta[0]);
  sim::CFifo& am_in = sys.add_fifo("am.in", 4 * blocks.eta[1]);
  sim::CFifo& fm_out = sys.add_fifo("fm.out", 1 << 15, 0, 0);
  sim::CFifo& am_out = sys.add_fifo("am.out", 1 << 15, 0, 0);
  // FM stream context: the discriminator (vectoring mode, phase output).
  std::vector<std::unique_ptr<accel::StreamKernel>> fm_kernels;
  fm_kernels.push_back(std::make_unique<accel::FmDiscriminator>());
  chain.add_stream({0, "fm", blocks.eta[0], blocks.eta[0], &fm_in, &fm_out,
                    /*reconfig=*/300},
                   std::move(fm_kernels));
  // AM stream context: the envelope detector (vectoring mode, magnitude).
  std::vector<std::unique_ptr<accel::StreamKernel>> am_kernels;
  am_kernels.push_back(std::make_unique<accel::AmDetector>(10));
  chain.add_stream({1, "am", blocks.eta[1], blocks.eta[1], &am_in, &am_out,
                    /*reconfig=*/300},
                   std::move(am_kernels));
  sim::EntryGateway& entry = *chain.entry;

  // FM input: tone FM-modulated at baseband (carrier 0, deviation 0.04).
  std::vector<double> fm_audio(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i)
    fm_audio[i] = 0.8 * std::sin(2.0 * M_PI * fm_tone * static_cast<double>(i));
  sys.add<sim::SourceTile>(
      "fm.fe", fm_in, pack(radio::fm_modulate(fm_audio, 0.0, 0.04, 1.0, 0.8)),
      /*period=*/24);

  // AM input: (1 + 0.5*tone) * carrier at baseband (constant phase).
  std::vector<radio::cplx> am(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double env =
        0.5 * (1.0 + 0.5 * std::sin(2.0 * M_PI * am_tone *
                                    static_cast<double>(i)));
    am[i] = radio::cplx(env * std::cos(0.7), env * std::sin(0.7));
  }
  sys.add<sim::SourceTile>("am.fe", am_in, pack(am), /*period=*/32);

  sys.run(static_cast<sim::Cycle>(kSamples) * 32 + 20000);

  // ---- Verdict: both standards demodulated through one datapath. ----
  auto drain = [&](sim::CFifo& f) {
    std::vector<double> v;
    while (f.can_pop(sys.now()))
      v.push_back(sim::unpack_sample(f.pop(sys.now())).re.to_double());
    radio::remove_dc(v);
    return v;
  };
  const std::vector<double> fm_audio_out = drain(fm_out);
  const std::vector<double> am_audio_out = drain(am_out);
  const double fm_snr =
      radio::tone_snr_db(fm_audio_out, 1.0, fm_tone, 512);
  const double am_snr =
      radio::tone_snr_db(am_audio_out, 1.0, am_tone, 4096);

  Table t({"standard", "CORDIC mode", "blocks", "samples", "tone SNR (dB)"});
  t.add_row({"FM", "vectoring (phase)",
             std::to_string(entry.block_completions(0).size()),
             std::to_string(fm_audio_out.size()), fmt_double(fm_snr, 1)});
  t.add_row({"AM", "vectoring (magnitude)",
             std::to_string(entry.block_completions(1).size()),
             std::to_string(am_audio_out.size()), fmt_double(am_snr, 1)});
  std::cout << t.render();

  const bool ok = fm_snr > 20.0 && am_snr > 15.0;
  std::cout << "\none CORDIC tile served two demodulation standards: "
            << (ok ? "OK" : "DEGRADED") << "\n";
  return ok ? 0 : 1;
}
