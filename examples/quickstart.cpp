// Quickstart: size the blocks and buffers of a shared accelerator chain.
//
// Scenario: two real-time streams share one accelerator chain (a CORDIC
// followed by a FIR) behind an entry/exit-gateway pair. We
//   1. describe the system,
//   2. check it is schedulable at all (utilization < 1),
//   3. compute the minimum block sizes with Algorithm 1 (two independent
//      solvers, which must agree),
//   4. verify the worst-case round against the throughput constraint, and
//   5. size the stream's buffers via the single-actor SDF abstraction.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "dataflow/dot.hpp"
#include "lint/linter.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/csdf_model.hpp"
#include "sharing/sdf_model.hpp"

int main(int argc, char** argv) {
  using namespace acc;
  using namespace acc::sharing;

  // 1. The system: chain costs in cycles/sample, stream rates in
  //    samples/cycle (e.g. 1/50 = one sample every 50 clock cycles).
  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};  // CORDIC, FIR
  sys.chain.entry_cycles_per_sample = 15;      // epsilon
  sys.chain.exit_cycles_per_sample = 1;        // delta
  sys.streams = {
      {"radio-a", Rational(1, 50), /*reconfig=*/4100},
      {"radio-b", Rational(1, 80), /*reconfig=*/4100},
  };

  // 1b. Static admissibility (acc-lint): Eq. 2-4 preconditions and
  //     feasibility, before any solver runs. --no-lint skips it.
  lint::LintInput li;
  li.name = "quickstart";
  li.spec = sys;
  if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;

  // 2. Schedulability: the bottleneck stage must keep up with the sum of
  //    stream rates.
  std::cout << "utilization c0*sum(mu) = " << utilization(sys) << " = "
            << utilization(sys).to_double() << "\n";
  if (utilization(sys) >= Rational(1)) {
    std::cout << "not schedulable: lower the rates or speed up the chain\n";
    return 1;
  }

  // 3. Minimum block sizes (Algorithm 1). The ILP and the least-fixed-point
  //    iteration are independent implementations of the same equations.
  const BlockSizeResult ilp = solve_block_sizes_ilp(sys);
  const BlockSizeResult fix = solve_block_sizes_fixpoint(sys);
  std::cout << "minimum blocks (ILP):      ";
  for (std::size_t s = 0; s < sys.num_streams(); ++s)
    std::cout << sys.streams[s].name << "=" << ilp.eta[s] << "  ";
  std::cout << "\nminimum blocks (fixpoint): ";
  for (std::size_t s = 0; s < sys.num_streams(); ++s)
    std::cout << sys.streams[s].name << "=" << fix.eta[s] << "  ";
  std::cout << "\nsolvers agree: " << (ilp.eta == fix.eta ? "yes" : "NO!")
            << "\n";

  // 4. Worst-case round gamma_hat and the per-stream guarantee (Eq. 5).
  std::cout << "worst-case round gamma_hat = " << fix.gamma << " cycles\n";
  for (std::size_t s = 0; s < sys.num_streams(); ++s) {
    const Rational rate(fix.eta[s], fix.gamma);
    std::cout << "  " << sys.streams[s].name << ": guaranteed "
              << rate.to_double() << " samples/cycle vs required "
              << sys.streams[s].mu.to_double() << "\n";
  }

  // 5. Buffer capacities for stream "radio-a" at its sample period.
  const StreamBufferResult buf =
      min_buffers_for_stream(sys, 0, fix.eta, /*sample_period=*/50);
  if (buf.feasible) {
    std::cout << "radio-a buffers: alpha0=" << buf.alpha0
              << " alpha3=" << buf.alpha3 << " (total " << buf.total()
              << " samples)\n";
  }

  // Bonus: the CSDF temporal-analysis model behind these numbers (paper
  // Fig. 5), exported as Graphviz dot — pipe into `dot -Tpng` to render.
  CsdfModelOptions model_opt;
  model_opt.eta = 3;  // tiny block so the graph stays readable
  model_opt.alpha0 = 6;
  model_opt.alpha3 = 6;
  model_opt.producer_period = 50;
  model_opt.consumer_period = 50;
  const CsdfStreamModel model = build_csdf_stream_model(sys, 0, model_opt);
  df::DotOptions dopt;
  dopt.name = "fig5_csdf_radio_a";
  std::cout << "\nCSDF model (Fig. 5) of radio-a at eta=3, Graphviz dot:\n"
            << df::to_dot(model.graph, dopt);
  return 0;
}
