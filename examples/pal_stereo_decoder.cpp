// The paper's demonstrator end-to-end: decode the stereo audio of a
// synthesized PAL broadcast on the simulated MPSoC, with ONE CORDIC and ONE
// FIR+down-sampler shared by four streams through a gateway pair.
//
// Prints the real-time verdict (source drops / DAC underruns), the decoded
// audio quality, and the gateway/accelerator statistics.
//
// Build & run:  ./build/examples/pal_stereo_decoder
//
// Observability flags (see docs/observability.md):
//   --metrics             print the full metrics snapshot after the run
//   --chrome-trace PATH   write a Perfetto/chrome://tracing JSON trace
//   --report PATH         write the schema-pinned RunReport JSON
#include <fstream>
#include <iostream>
#include <string>

#include "app/pal_report.hpp"
#include "app/pal_system.hpp"
#include "common/table.hpp"
#include "lint/linter.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "radio/metrics.hpp"
#include "radio/wav.hpp"

int main(int argc, char** argv) {
  using namespace acc;

  app::PalSimConfig cfg;
  cfg.input_samples = 1 << 16;  // ~1k audio samples per channel

  bool want_metrics = false;
  std::string chrome_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    }
  }

  // Static admissibility first: the full assembled model (block sizes,
  // C-FIFO capacities, gateway wiring). --no-lint skips the gate.
  if (!lint::startup_gate(argc, argv, app::make_lint_input(cfg), std::cerr))
    return 2;
  cfg.lint = false;  // already linted; don't re-check inside the run

  // Any observability output needs the registry; the trace feeds both the
  // Chrome exporter and the report's observed-vs-bound join.
  obs::MetricsRegistry metrics;
  sim::TraceLog trace;
  const bool observe =
      want_metrics || !chrome_path.empty() || !report_path.empty();
  if (observe) {
    cfg.metrics = &metrics;
    cfg.trace = &trace;
  }

  std::cout << "Synthesizing PAL stereo broadcast: L=" << cfg.tone_left_hz
            << " Hz, R=" << cfg.tone_right_hz << " Hz, carriers at "
            << cfg.carrier1_hz << "/" << cfg.carrier2_hz << " Hz\n";
  std::cout << "Running the shared-accelerator MPSoC simulation...\n\n";
  const app::PalSimResult r = app::run_pal_decoder(cfg);

  Table t({"metric", "value"});
  t.add_row({"block size stage-1 (eta)", std::to_string(r.eta_stage1)});
  t.add_row({"block size stage-2 (eta)", std::to_string(r.eta_stage2)});
  t.add_row({"block ratio", fmt_double(static_cast<double>(r.eta_stage1) /
                                           static_cast<double>(r.eta_stage2),
                                       2) + " : 1"});
  t.add_row({"worst-case round (cycles)", fmt_int(r.gamma)});
  t.add_row({"utilization", fmt_double(r.utilization.to_double(), 3)});
  t.add_row({"cycles simulated", fmt_int(r.cycles_run)});
  t.add_row({"front-end drops", std::to_string(r.source_drops)});
  t.add_row({"DAC underruns", std::to_string(r.sink_underruns)});
  t.add_row({"audio samples (L/R)", std::to_string(r.left.size()) + " / " +
                                        std::to_string(r.right.size())});

  std::vector<double> left = r.left;
  std::vector<double> right = r.right;
  radio::remove_dc(left);
  radio::remove_dc(right);
  const std::size_t skip = 128;
  if (left.size() > skip + 64) {
    t.add_row({"L tone SNR (dB)",
               fmt_double(radio::tone_snr_db(left, r.audio_rate,
                                             cfg.tone_left_hz, skip), 1)});
    t.add_row({"R tone SNR (dB)",
               fmt_double(radio::tone_snr_db(right, r.audio_rate,
                                             cfg.tone_right_hz, skip), 1)});
  }
  t.add_row({"gateway data cycles", fmt_int(r.gateway.data_cycles)});
  t.add_row({"gateway reconfig cycles", fmt_int(r.gateway.reconfig_cycles)});
  t.add_row({"CORDIC samples", fmt_int(r.cordic_samples)});
  t.add_row({"FIR samples", fmt_int(r.fir_samples)});
  std::cout << t.render();

  const bool ok = r.source_drops == 0 && r.sink_underruns == 0;
  std::cout << "\nreal-time constraint " << (ok ? "MET" : "VIOLATED")
            << ": continuous stereo playback "
            << (ok ? "guaranteed" : "fails") << "\n";

  if (want_metrics) {
    std::cout << "\n== metrics snapshot ==\n" << metrics.snapshot_text();
  }
  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    out << obs::chrome_trace_json(trace);
    std::cout << "chrome trace written to " << chrome_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << app::pal_run_report_json(cfg, r, metrics, &trace);
    std::cout << "run report written to " << report_path << "\n";
  }

  // Write the decoded audio so it can actually be listened to.
  const std::string wav = "pal_stereo_decoded.wav";
  if (radio::write_wav_stereo(wav, r.left, r.right,
                              static_cast<std::uint32_t>(r.audio_rate))) {
    std::cout << "decoded audio written to ./" << wav << " ("
              << r.left.size() << " frames @ " << r.audio_rate << " Hz)\n";
  }
  return ok ? 0 : 1;
}
