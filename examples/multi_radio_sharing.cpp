// Two UNRELATED radio applications sharing one accelerator chain.
//
// The paper's gateways use round-robin precisely so that streams from
// different applications, with different rates and no mutual knowledge, can
// share accelerators with per-stream real-time guarantees. This example
// builds two independent FM mono receivers:
//
//   radio A (fast, 1 sample / 32 cycles):  mixer(-fA) -> LPF/4 -> software demod
//   radio B (slow, 1 sample / 48 cycles):  mixer(-fB) -> LPF/4 -> software demod
//
// Both use the SAME physical CORDIC and FIR tiles through one gateway pair.
// Each radio's audio tone must come back clean, and neither may disturb the
// other's real-time behaviour.
//
// Build & run:  ./build/examples/multi_radio_sharing
#include <algorithm>
#include <cmath>
#include <iostream>

#include "accel/fir.hpp"
#include "accel/mixer.hpp"
#include "common/table.hpp"
#include "lint/linter.hpp"
#include "radio/metrics.hpp"
#include "radio/signal.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sim/gateway.hpp"
#include "sim/proc_tile.hpp"
#include "sim/system.hpp"

namespace {

using namespace acc;

struct RadioSpec {
  std::string name;
  double carrier_norm;   // carrier as a fraction of its own sample rate
  double tone_norm;      // audio tone, fraction of sample rate
  sim::Cycle period;     // cycles per input sample
  std::size_t samples;   // input samples to synthesize
};

std::vector<sim::Flit> make_fm_input(const RadioSpec& r) {
  // Mono FM: tone -> FM at carrier (normalized rates; deviation 0.05).
  const double fs = 1.0;
  std::vector<double> audio(r.samples);
  for (std::size_t i = 0; i < r.samples; ++i)
    audio[i] = 0.8 * std::sin(2.0 * M_PI * r.tone_norm * static_cast<double>(i));
  const std::vector<radio::cplx> fm =
      radio::fm_modulate(audio, r.carrier_norm, 0.05, fs, 0.8);
  std::vector<sim::Flit> flits;
  flits.reserve(fm.size());
  for (const radio::cplx& s : fm)
    flits.push_back(sim::pack_sample(CQ16{Q16::from_double(s.real()),
                                          Q16::from_double(s.imag())}));
  return flits;
}

}  // namespace

int main(int argc, char** argv) {
  const int kDecim = 4;
  const RadioSpec radios[2] = {
      {"radio-A", 0.21, 0.002, 32, 1 << 14},
      {"radio-B", 0.13, 0.003, 48, 1 << 14},
  };

  // ---- Analysis: are both radios schedulable, and at what block sizes? ----
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample = {1, 1};
  spec.chain.entry_cycles_per_sample = 15;
  spec.chain.exit_cycles_per_sample = 1;
  spec.streams = {{radios[0].name, Rational(1, radios[0].period), 400},
                  {radios[1].name, Rational(1, radios[1].period), 400}};
  // Static admissibility gate (--no-lint skips).
  lint::LintInput li;
  li.name = "multi-radio-sharing";
  li.spec = spec;
  if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;

  std::cout << "utilization = " << sharing::utilization(spec).to_double()
            << "\n";
  sharing::BlockSizeResult blocks = sharing::solve_block_sizes_fixpoint(spec);
  if (!blocks.feasible) {
    std::cout << "not schedulable together\n";
    return 1;
  }
  // Decimation-align the blocks (fixed output count per block).
  std::vector<std::int64_t> eta = blocks.eta;
  for (std::int64_t& e : eta) e = (e + kDecim - 1) / kDecim * kDecim;
  while (!sharing::throughput_met(spec, eta)) {
    const sharing::Time gamma = sharing::gamma_hat(spec, eta);
    for (std::size_t s = 0; s < eta.size(); ++s) {
      const std::int64_t need = (spec.streams[s].mu * Rational(gamma)).ceil();
      eta[s] = std::max(eta[s], (need + kDecim - 1) / kDecim * kDecim);
    }
  }
  std::cout << "blocks: " << radios[0].name << "=" << eta[0] << ", "
            << radios[1].name << "=" << eta[1]
            << "; round gamma_hat=" << sharing::gamma_hat(spec, eta) << "\n\n";

  // ---- Build the shared MPSoC: nodes 0 entry, 1 CORDIC, 2 FIR, 3 exit. ----
  sim::System sys(4);
  auto& cordic = sys.add<sim::AcceleratorTile>("cordic", sys.ring(), 1, 1, 2);
  auto& fir = sys.add<sim::AcceleratorTile>("fir", sys.ring(), 2, 1, 2);
  const std::vector<Q16> taps =
      accel::quantize_taps(accel::design_lowpass(33, 0.08));
  for (int k = 0; k < 2; ++k) {
    cordic.register_context(
        k, std::make_unique<accel::NcoMixer>(
               accel::NcoMixer::freq_from_normalized(-radios[k].carrier_norm)));
    fir.register_context(k,
                         std::make_unique<accel::DecimatingFir>(taps, kDecim));
  }
  cordic.set_upstream(0, 1);
  cordic.set_downstream(2, 2, 2);
  fir.set_upstream(1, 1);
  fir.set_downstream(3, 3, 2);
  auto& exit_gw = sys.add<sim::ExitGateway>("exit", sys.ring(), 3, 1, 2);
  exit_gw.set_upstream(2, 2);
  auto& entry = sys.add<sim::EntryGateway>("entry", sys.ring(), 0, 15, 1, 1, 2);
  entry.set_chain({&cordic, &fir});
  entry.set_exit(&exit_gw);
  exit_gw.set_entry(&entry);

  sim::CFifo* ins[2];
  sim::CFifo* mids[2];
  for (int k = 0; k < 2; ++k) {
    ins[k] = &sys.add_fifo("in." + radios[k].name, 4 * eta[k]);
    mids[k] = &sys.add_fifo("mid." + radios[k].name, 4 * eta[k] / kDecim + 64);
    entry.add_stream({k, radios[k].name, eta[k], eta[k] / kDecim, ins[k],
                      mids[k], 400});
    sys.add<sim::SourceTile>("fe." + radios[k].name, *ins[k],
                             make_fm_input(radios[k]), radios[k].period);
  }

  // Software FM demodulation per radio on one processor tile.
  sim::CFifo* audio[2] = {&sys.add_fifo("audio.A", 4096, 0, 0),
                          &sys.add_fifo("audio.B", 4096, 0, 0)};
  auto& cpu = sys.add<sim::ProcessorTile>("pt.demod", 256);
  CQ16 prev[2] = {};
  for (int k = 0; k < 2; ++k) {
    cpu.add_task(sim::Task{
        "demod." + radios[k].name,
        [&, k](sim::Cycle now) -> sim::Cycle {
          if (!mids[k]->can_pop(now) || !audio[k]->can_push(now)) return 0;
          const CQ16 s = sim::unpack_sample(mids[k]->pop(now));
          const double re = s.re.to_double();
          const double im = s.im.to_double();
          const double pre = prev[k].re.to_double();
          const double pim = prev[k].im.to_double();
          prev[k] = s;
          const double d = std::atan2(im * pre - re * pim,
                                      re * pre + im * pim);
          audio[k]->push(now, sim::pack_sample(
                                  CQ16{Q16::from_double(d / M_PI), Q16{}}));
          return 40;  // software atan2 is not cheap
        },
        /*budget=*/128,
        /*priority=*/0,
        /*next_ready=*/
        [&, k](sim::Cycle now) -> sim::Cycle {
          return std::max(mids[k]->when_fill_visible(1, now),
                          audio[k]->when_space_visible(1, now));
        }});
  }

  // ---- Run and report. ----
  const sim::Cycle horizon =
      static_cast<sim::Cycle>(radios[0].samples) * radios[0].period +
      static_cast<sim::Cycle>(radios[1].samples) * radios[1].period;
  sys.run(horizon);

  Table t({"radio", "blocks", "audio samples", "tone SNR (dB)", "drops"});
  bool all_ok = true;
  for (int k = 0; k < 2; ++k) {
    std::vector<double> aud;
    while (audio[k]->can_pop(sys.now()))
      aud.push_back(sim::unpack_sample(audio[k]->pop(sys.now())).re.to_double());
    radio::remove_dc(aud);
    const double fs_audio = 1.0 / kDecim;  // in units of the input rate
    const double snr =
        aud.size() > 300
            ? radio::tone_snr_db(aud, fs_audio, radios[k].tone_norm, 128)
            : -1.0;
    const auto& comps = entry.block_completions(k);
    t.add_row({radios[k].name, std::to_string(comps.size()),
               std::to_string(aud.size()), fmt_double(snr, 1), "0"});
    all_ok &= snr > 15.0;
  }
  std::cout << t.render();
  std::cout << "\ngateway: " << entry.stats().blocks << " blocks, "
            << fmt_int(entry.stats().samples_forwarded)
            << " samples forwarded, "
            << fmt_int(entry.stats().reconfig_cycles) << " reconfig cycles\n";
  std::cout << (all_ok ? "both radios decoded cleanly through the SHARED chain\n"
                       : "decode quality degraded!\n");
  return all_ok ? 0 : 1;
}
