// Block-size explorer: interactively study the trade-offs of §V of the
// paper for a single stream on a shared chain.
//
//   usage: blocksize_explorer [--jobs N] [reconfig] [epsilon] [sample_period] [eta_max]
//
// For each block size eta it prints the worst-case block time tau_hat
// (Eq. 2), whether the throughput constraint holds (Eq. 5), and the minimum
// alpha0/alpha3 buffer capacities — making both effects of growing blocks
// visible: amortized reconfiguration vs growing buffers. It finishes with
// the chunked-consumer sweep demonstrating the paper's non-monotonicity
// claim (Fig. 8).
//
// Build & run:  ./build/examples/blocksize_explorer 50 3 8 24
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "lint/linter.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sharing/nonmonotone.hpp"

int main(int argc, char** argv) {
  using namespace acc;
  using namespace acc::sharing;

  // Pull --jobs N / --no-lint out of argv; the rest stays positional.
  int jobs = 1;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--no-lint") == 0)
      ;  // handled by lint::startup_gate below
    else
      pos.push_back(argv[i]);
  }
  df::DseStats stats;

  const Time reconfig = pos.size() > 0 ? std::atoll(pos[0]) : 50;
  const Time epsilon = pos.size() > 1 ? std::atoll(pos[1]) : 3;
  const Time period = pos.size() > 2 ? std::atoll(pos[2]) : 8;
  const std::int64_t eta_max = pos.size() > 3 ? std::atoll(pos[3]) : 24;

  SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1};
  sys.chain.entry_cycles_per_sample = epsilon;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"s", Rational(1, period), reconfig}};

  // Static admissibility of the user-chosen parameters: infeasible or
  // malformed corners are rejected up front (--no-lint to explore anyway).
  lint::LintInput li;
  li.name = "blocksize-explorer";
  li.spec = sys;
  if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;

  std::cout << "chain: epsilon=" << epsilon << ", rho_A=1, delta=1, R="
            << reconfig << "; stream rate mu=1/" << period
            << " samples/cycle\n";
  std::cout << "utilization = " << utilization(sys).to_double() << "\n\n";

  const BlockSizeResult minimum = solve_block_sizes_fixpoint(sys);
  if (minimum.feasible)
    std::cout << "Algorithm 1 minimum block: eta = " << minimum.eta[0]
              << " (gamma_hat = " << minimum.gamma << ")\n\n";

  Table t({"eta", "tau_hat", "eta/gamma", "meets mu?", "alpha0", "alpha3",
           "total"});
  for (std::int64_t eta = 1; eta <= eta_max; ++eta) {
    const Time tau = tau_hat(sys, 0, eta);
    const bool ok = throughput_met(sys, {eta});
    std::string a0 = "-";
    std::string a3 = "-";
    std::string tot = "-";
    if (ok) {
      const StreamBufferResult buf = min_buffers_for_stream(
          sys, 0, {eta}, period, /*consumer_chunk=*/1, jobs, &stats);
      if (buf.feasible) {
        a0 = std::to_string(buf.alpha0);
        a3 = std::to_string(buf.alpha3);
        tot = std::to_string(buf.total());
      }
    }
    t.add_row({std::to_string(eta), std::to_string(tau),
               fmt_double(static_cast<double>(eta) / static_cast<double>(tau),
                          4),
               ok ? "yes" : "no", a0, a3, tot});
  }
  std::cout << t.render();

  std::cout << "\nNon-monotone buffer demo (shared actor feeding an 8:1 "
               "down-sampling consumer, paper Fig. 8):\n";
  const auto pts = chunked_consumer_buffer_sweep(
      /*reconfig=*/10, /*per_sample=*/1, /*sample_period=*/2, /*chunk=*/8,
      /*eta_lo=*/10, /*eta_hi=*/24, jobs, &stats);
  Table nm({"eta", "min buffer"});
  std::vector<std::int64_t> caps;
  for (const auto& p : pts) {
    nm.add_row({std::to_string(p.eta),
                p.min_capacity < 0 ? "infeasible"
                                   : std::to_string(p.min_capacity)});
    if (p.min_capacity >= 0) caps.push_back(p.min_capacity);
  }
  std::cout << nm.render();
  std::cout << "non-monotone: " << (is_non_monotone(caps) ? "YES" : "no")
            << " — smaller blocks can need LARGER buffers\n";

  std::cout << "\nDSE engine (" << (jobs == 0 ? "hw" : std::to_string(jobs))
            << " worker thread(s)): " << stats.simulations
            << " simulations, cache hit rate "
            << fmt_double(stats.cache_hit_rate(), 2) << ", " << stats.pruned()
            << " candidates answered by monotone pruning\n";
  return 0;
}
