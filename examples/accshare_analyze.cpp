// accshare_analyze — the command-line front door of the analysis library.
//
//   usage: accshare_analyze [spec.json] [--out report.md] [--dump-spec]
//                           [--no-lint]
//
// Reads a shared-system specification (JSON; see sharing/serialize.hpp for
// the format), runs the full design analysis (Algorithm-1 block sizes via
// both solvers, Eq. 2-5 bounds, buffer sizing, the derived completion law)
// and prints a markdown report. Without arguments it analyzes the paper's
// PAL case-study system and prints its spec as a starting template.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint/linter.hpp"
#include "sharing/report.hpp"
#include "sharing/serialize.hpp"

namespace {

acc::sharing::SharedSystemSpec default_spec() {
  using namespace acc;
  sharing::SharedSystemSpec sys;
  sys.chain.accel_cycles_per_sample = {1, 1};
  sys.chain.entry_cycles_per_sample = 15;
  sys.chain.exit_cycles_per_sample = 1;
  sys.streams = {{"ch1.start", Rational(28224, 1000000), 4100},
                 {"ch2.start", Rational(28224, 1000000), 4100},
                 {"ch1.end", Rational(3528, 1000000), 4100},
                 {"ch2.end", Rational(3528, 1000000), 4100}};
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acc;

  std::string spec_path;
  std::string out_path;
  bool dump_spec = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--dump-spec") {
      dump_spec = true;
    } else if (arg == "--no-lint") {
      // handled by lint::startup_gate below
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: accshare_analyze [spec.json] [--out report.md] "
                   "[--dump-spec] [--no-lint]\n";
      return 0;
    } else {
      spec_path = arg;
    }
  }

  sharing::SharedSystemSpec sys;
  if (spec_path.empty()) {
    sys = default_spec();
    std::cout << "(no spec given: analyzing the built-in PAL case study; "
                 "use --dump-spec to print it as a template)\n\n";
  } else {
    std::ifstream f(spec_path);
    if (!f) {
      std::cerr << "cannot open " << spec_path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    try {
      sys = sharing::spec_from_string(buf.str());
    } catch (const std::exception& e) {
      std::cerr << "bad spec: " << e.what() << "\n";
      return 1;
    }
  }

  if (dump_spec) {
    std::cout << sharing::spec_to_string(sys) << "\n";
    return 0;
  }

  // Static admissibility before the (much heavier) full analysis; a spec
  // that fails Eq. 2-4 preconditions would only produce nonsense bounds.
  lint::LintInput li;
  li.name = spec_path.empty() ? "pal-case-study" : spec_path;
  li.spec = sys;
  if (!lint::startup_gate(argc, argv, li, std::cerr)) return 2;

  // Buffer sizing on the full PAL-scale system is expensive (blocks of
  // ~10k); skip it for large blocks, the report notes the omission.
  sharing::ReportOptions opt;
  const sharing::SystemReport rep = [&] {
    sharing::SystemReport r = sharing::analyze_system(
        sys, sharing::ReportOptions{{}, {}, /*size_buffers=*/false});
    if (r.schedulable) {
      std::int64_t max_eta = 0;
      for (const auto& s : r.streams) max_eta = std::max(max_eta, s.eta);
      if (max_eta <= 512) {
        opt.size_buffers = true;
        return sharing::analyze_system(sys, opt);
      }
    }
    return r;
  }();

  const std::string md = rep.to_markdown(sys);
  if (out_path.empty()) {
    std::cout << md;
  } else {
    std::ofstream out(out_path);
    out << md;
    std::cout << "report written to " << out_path << "\n";
  }
  return rep.schedulable ? 0 : 2;
}
