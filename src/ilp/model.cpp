#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <stack>

#include "common/check.hpp"

namespace acc::ilp {

LinExpr& LinExpr::add(VarId v, double coef) {
  if (coef != 0.0) terms_.emplace_back(v, coef);
  return *this;
}

LinExpr& LinExpr::add_constant(double c) {
  constant_ += c;
  return *this;
}

std::int64_t Solution::value_int(VarId v) const {
  ACC_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < values.size());
  return static_cast<std::int64_t>(std::llround(values[v]));
}

VarId Model::add_var(std::string name, double lower, double upper,
                     bool integer) {
  ACC_EXPECTS_MSG(std::isfinite(lower),
                  "variables need a finite lower bound in this solver");
  ACC_EXPECTS(upper >= lower);
  vars_.push_back(Var{std::move(name), lower, upper, integer});
  return static_cast<VarId>(vars_.size() - 1);
}

const std::string& Model::var_name(VarId v) const {
  ACC_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < vars_.size());
  return vars_[v].name;
}

void Model::add_constraint(const LinExpr& lhs, Rel rel, double rhs) {
  for (const auto& [v, c] : lhs.terms())
    ACC_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < vars_.size());
  constraints_.push_back(Constraint{lhs, rel, rhs - lhs.constant()});
  constraints_.back().lhs.add_constant(-lhs.constant());  // keep rhs-side form
}

void Model::set_objective(const LinExpr& objective, Sense sense) {
  objective_ = objective;
  sense_ = sense;
}

namespace {

/// Dense two-phase primal simplex with Bland's anti-cycling rule.
/// Operates on: minimize c'x s.t. Ax (rel) b, x >= 0.
class Simplex {
 public:
  Simplex(std::size_t n) : n_(n), cost_(n, 0.0) {}

  void set_cost(std::size_t j, double c) { cost_[j] = c; }

  void add_row(std::vector<double> coeffs, Rel rel, double rhs) {
    rows_.push_back(std::move(coeffs));
    rels_.push_back(rel);
    rhs_.push_back(rhs);
  }

  /// Returns status; on optimal, fills x (length n) and obj.
  SolveStatus run(const SolveOptions& opt, std::vector<double>* x,
                  double* obj) {
    build_tableau();
    // Phase 1: minimize artificial sum.
    if (num_artificial_ > 0) {
      std::vector<double> phase1(total_cols_, 0.0);
      for (std::size_t j = art_begin_; j < total_cols_; ++j) phase1[j] = 1.0;
      const SolveStatus st = optimize(phase1, opt, /*allow_artificial=*/true);
      if (st != SolveStatus::kOptimal) return st;
      if (objective_value(phase1) > 1e-6) return SolveStatus::kInfeasible;
      drive_out_artificials();
    }
    // Phase 2.
    std::vector<double> phase2(total_cols_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) phase2[j] = cost_[j];
    const SolveStatus st = optimize(phase2, opt, /*allow_artificial=*/false);
    if (st != SolveStatus::kOptimal) return st;
    x->assign(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (row_dead_[i]) continue;
      if (basis_[i] < n_) (*x)[basis_[i]] = b_[i];
    }
    *obj = objective_value(phase2);
    return SolveStatus::kOptimal;
  }

 private:
  static constexpr double kEps = 1e-9;

  void build_tableau() {
    m_ = rows_.size();
    std::size_t num_slack = 0;
    num_artificial_ = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      // Normalize to rhs >= 0 first; relation flips with the sign.
      if (rhs_[i] < 0) {
        for (double& v : rows_[i]) v = -v;
        rhs_[i] = -rhs_[i];
        if (rels_[i] == Rel::kLe) rels_[i] = Rel::kGe;
        else if (rels_[i] == Rel::kGe) rels_[i] = Rel::kLe;
      }
      if (rels_[i] != Rel::kEq) ++num_slack;
      if (rels_[i] != Rel::kLe) ++num_artificial_;
    }
    slack_begin_ = n_;
    art_begin_ = n_ + num_slack;
    total_cols_ = art_begin_ + num_artificial_;

    a_.assign(m_, std::vector<double>(total_cols_, 0.0));
    b_.assign(m_, 0.0);
    basis_.assign(m_, 0);
    row_dead_.assign(m_, false);
    std::size_t next_slack = slack_begin_;
    std::size_t next_art = art_begin_;
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) a_[i][j] = rows_[i][j];
      b_[i] = rhs_[i];
      switch (rels_[i]) {
        case Rel::kLe:
          a_[i][next_slack] = 1.0;
          basis_[i] = next_slack++;
          break;
        case Rel::kGe:
          a_[i][next_slack] = -1.0;
          ++next_slack;
          a_[i][next_art] = 1.0;
          basis_[i] = next_art++;
          break;
        case Rel::kEq:
          a_[i][next_art] = 1.0;
          basis_[i] = next_art++;
          break;
      }
    }
  }

  [[nodiscard]] double objective_value(const std::vector<double>& c) const {
    double v = 0.0;
    for (std::size_t i = 0; i < m_; ++i)
      if (!row_dead_[i]) v += c[basis_[i]] * b_[i];
    return v;
  }

  /// Reduced cost of column j under cost vector c.
  [[nodiscard]] double reduced_cost(const std::vector<double>& c,
                                    std::size_t j) const {
    double z = c[j];
    for (std::size_t i = 0; i < m_; ++i)
      if (!row_dead_[i]) z -= c[basis_[i]] * a_[i][j];
    return z;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    ACC_CHECK(std::abs(p) > kEps);
    const double inv = 1.0 / p;
    for (double& v : a_[row]) v *= inv;
    b_[row] *= inv;
    a_[row][col] = 1.0;  // cancel rounding
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row || row_dead_[i]) continue;
      const double f = a_[i][col];
      if (std::abs(f) < kEps) continue;
      for (std::size_t j = 0; j < total_cols_; ++j)
        a_[i][j] -= f * a_[row][j];
      a_[i][col] = 0.0;
      b_[i] -= f * b_[row];
      if (std::abs(b_[i]) < kEps) b_[i] = 0.0;
    }
    basis_[row] = col;
  }

  SolveStatus optimize(const std::vector<double>& c, const SolveOptions& opt,
                       bool allow_artificial) {
    const std::size_t col_limit = allow_artificial ? total_cols_ : art_begin_;
    for (std::int64_t it = 0; it < opt.max_pivots; ++it) {
      // Bland: smallest-index column with negative reduced cost.
      std::size_t enter = total_cols_;
      for (std::size_t j = 0; j < col_limit; ++j) {
        if (reduced_cost(c, j) < -1e-9) {
          enter = j;
          break;
        }
      }
      if (enter == total_cols_) return SolveStatus::kOptimal;
      // Ratio test; Bland tie-break on smallest basis index.
      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        if (row_dead_[i] || a_[i][enter] <= kEps) continue;
        const double ratio = b_[i] / a_[i][enter];
        if (leave == m_ || ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps &&
             basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return SolveStatus::kUnbounded;
      pivot(leave, enter);
    }
    return SolveStatus::kLimit;
  }

  /// After phase 1: pivot basic artificials (value 0) onto structural
  /// columns, or mark their rows dead if redundant.
  void drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (row_dead_[i] || basis_[i] < art_begin_) continue;
      std::size_t col = art_begin_;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(a_[i][j]) > kEps) {
          col = j;
          break;
        }
      }
      if (col == art_begin_) {
        row_dead_[i] = true;  // redundant constraint
      } else {
        pivot(i, col);
      }
    }
  }

  std::size_t n_;
  std::vector<double> cost_;
  std::vector<std::vector<double>> rows_;
  std::vector<Rel> rels_;
  std::vector<double> rhs_;

  std::size_t m_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t num_artificial_ = 0;
  std::size_t total_cols_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<std::size_t> basis_;
  std::vector<bool> row_dead_;
};

}  // namespace

Solution Model::solve_lp(const std::vector<double>& lo,
                         const std::vector<double>& hi,
                         const SolveOptions& opt) const {
  const std::size_t n = vars_.size();
  Simplex sx(n);

  // Shift every variable by its (node-local) lower bound: x = lo + x'.
  const double sign = sense_ == Sense::kMinimize ? 1.0 : -1.0;
  double obj_shift = 0.0;
  {
    std::vector<double> c(n, 0.0);
    for (const auto& [v, coef] : objective_.terms()) c[v] += coef;
    for (std::size_t j = 0; j < n; ++j) {
      sx.set_cost(j, sign * c[j]);
      obj_shift += c[j] * lo[j];
    }
  }

  for (const Constraint& con : constraints_) {
    std::vector<double> row(n, 0.0);
    double shift = 0.0;
    for (const auto& [v, coef] : con.lhs.terms()) {
      row[v] += coef;
      shift += coef * lo[v];
    }
    sx.add_row(std::move(row), con.rel, con.rhs - shift);
  }
  // Finite upper bounds as explicit rows (x' <= hi - lo).
  for (std::size_t j = 0; j < n; ++j) {
    if (hi[j] == kInf) continue;
    if (hi[j] < lo[j]) {
      Solution s;
      s.status = SolveStatus::kInfeasible;  // empty node box
      return s;
    }
    std::vector<double> row(n, 0.0);
    row[j] = 1.0;
    sx.add_row(std::move(row), Rel::kLe, hi[j] - lo[j]);
  }

  Solution s;
  std::vector<double> shifted;
  double obj = 0.0;
  s.status = sx.run(opt, &shifted, &obj);
  if (s.status != SolveStatus::kOptimal) return s;
  s.values.resize(n);
  for (std::size_t j = 0; j < n; ++j) s.values[j] = lo[j] + shifted[j];
  s.objective = sign * obj + obj_shift + objective_.constant();
  return s;
}

Solution Model::solve(const SolveOptions& opt) const {
  std::vector<double> lo(vars_.size());
  std::vector<double> hi(vars_.size());
  bool any_integer = false;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    lo[j] = vars_[j].lower;
    hi[j] = vars_[j].upper;
    any_integer |= vars_[j].integer;
  }

  Solution root = solve_lp(lo, hi, opt);
  if (!any_integer || !root.optimal()) return root;

  // Depth-first branch and bound; `better` compares in the minimize sense.
  const double dir = sense_ == Sense::kMinimize ? 1.0 : -1.0;
  auto better = [&](double a, double b) { return dir * a < dir * b; };

  struct Node {
    std::vector<double> lo;
    std::vector<double> hi;
  };
  std::stack<Node> todo;
  todo.push(Node{lo, hi});
  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  std::int64_t nodes = 0;

  while (!todo.empty()) {
    if (++nodes > opt.max_nodes) {
      if (incumbent.optimal()) incumbent.status = SolveStatus::kLimit;
      break;
    }
    Node node = std::move(todo.top());
    todo.pop();
    Solution rel = solve_lp(node.lo, node.hi, opt);
    if (rel.status == SolveStatus::kUnbounded) return rel;
    if (!rel.optimal()) continue;
    if (incumbent.optimal() && !better(rel.objective, incumbent.objective))
      continue;  // bound

    // Find the most fractional integer variable.
    VarId branch = -1;
    double worst_frac = opt.eps;
    for (std::size_t j = 0; j < vars_.size(); ++j) {
      if (!vars_[j].integer) continue;
      const double v = rel.values[j];
      const double frac = std::abs(v - std::round(v));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch = static_cast<VarId>(j);
      }
    }
    if (branch < 0) {
      // Integral: snap and accept as incumbent.
      for (std::size_t j = 0; j < vars_.size(); ++j)
        if (vars_[j].integer) rel.values[j] = std::round(rel.values[j]);
      if (!incumbent.optimal() || better(rel.objective, incumbent.objective))
        incumbent = std::move(rel);
      continue;
    }
    const double v = rel.values[branch];
    Node down = node;
    down.hi[branch] = std::floor(v);
    Node up = std::move(node);
    up.lo[branch] = std::ceil(v);
    // Explore the "down" branch first for minimization-style models.
    todo.push(std::move(up));
    todo.push(std::move(down));
  }
  return incumbent;
}

}  // namespace acc::ilp
