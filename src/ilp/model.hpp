// Mixed-integer linear programming, implemented from scratch.
//
// The paper computes minimum block sizes with "an ILP" (its Algorithm 1);
// the original authors presumably used a commercial solver. This module is a
// self-contained replacement: a dense two-phase primal simplex for the LP
// relaxation plus depth-first branch-and-bound for integrality. It is sized
// for analysis-time models (tens of variables), not industrial MIPs.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace acc::ilp {

using VarId = std::int32_t;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Linear expression: sum of coef*var + constant.
class LinExpr {
 public:
  LinExpr() = default;
  LinExpr(double constant) : constant_(constant) {}  // NOLINT — numeric literal terms

  LinExpr& add(VarId v, double coef);
  LinExpr& add_constant(double c);

  [[nodiscard]] const std::vector<std::pair<VarId, double>>& terms() const {
    return terms_;
  }
  [[nodiscard]] double constant() const { return constant_; }

 private:
  std::vector<std::pair<VarId, double>> terms_;
  double constant_ = 0.0;
};

enum class Rel { kLe, kGe, kEq };
enum class Sense { kMinimize, kMaximize };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // indexed by VarId

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
  /// Value of a variable rounded to the nearest integer (for integer vars).
  [[nodiscard]] std::int64_t value_int(VarId v) const;
};

struct SolveOptions {
  /// Max simplex pivots per LP solve.
  std::int64_t max_pivots = 200000;
  /// Max branch-and-bound nodes.
  std::int64_t max_nodes = 200000;
  /// Feasibility / integrality tolerance.
  double eps = 1e-7;
};

/// A small MILP model. Variables have bounds and an integrality flag;
/// constraints relate linear expressions to constants.
class Model {
 public:
  VarId add_var(std::string name, double lower = 0.0, double upper = kInf,
                bool integer = false);
  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }
  [[nodiscard]] const std::string& var_name(VarId v) const;

  void add_constraint(const LinExpr& lhs, Rel rel, double rhs);
  void set_objective(const LinExpr& objective, Sense sense);

  /// Solve. If any variable is integer, branch-and-bound runs on top of the
  /// LP relaxation; otherwise a single LP solve.
  [[nodiscard]] Solution solve(const SolveOptions& opt = {}) const;

 private:
  struct Var {
    std::string name;
    double lower;
    double upper;
    bool integer;
  };
  struct Constraint {
    LinExpr lhs;
    Rel rel;
    double rhs;
  };

  /// Solve the LP relaxation with extra bounds layered on (B&B nodes).
  Solution solve_lp(const std::vector<double>& lo, const std::vector<double>& hi,
                    const SolveOptions& opt) const;

  std::vector<Var> vars_;
  std::vector<Constraint> constraints_;
  LinExpr objective_;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace acc::ilp
