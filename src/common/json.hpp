// Minimal JSON value model, serializer and recursive-descent parser.
//
// Used to persist dataflow graphs and system specifications (see
// dataflow/serialize.hpp) without external dependencies. Supports the full
// JSON grammar except that numbers are kept as int64 when they are exact
// integers (the graph formats only use integers) and as double otherwise.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/check.hpp"

namespace acc::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps key order deterministic — serialized output is canonical.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}           // NOLINT
  Value(bool b) : v_(b) {}                         // NOLINT
  Value(std::int64_t i) : v_(i) {}                 // NOLINT
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                       // NOLINT
  Value(const char* s) : v_(std::string(s)) {}     // NOLINT
  Value(std::string s) : v_(std::move(s)) {}       // NOLINT
  Value(Array a) : v_(std::move(a)) {}             // NOLINT
  Value(Object o) : v_(std::move(o)) {}            // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return get<bool>(); }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return get<std::string>(); }
  [[nodiscard]] const Array& as_array() const { return get<Array>(); }
  [[nodiscard]] Array& as_array() { return get<Array>(); }
  [[nodiscard]] const Object& as_object() const { return get<Object>(); }
  [[nodiscard]] Object& as_object() { return get<Object>(); }

  /// Object member access; throws on missing key / non-object.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// Optional member access.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Compact canonical serialization.
  [[nodiscard]] std::string dump() const;
  /// Indented serialization for humans.
  [[nodiscard]] std::string pretty(int indent = 2) const;

  friend bool operator==(const Value& a, const Value& b) = default;

 private:
  template <typename T>
  [[nodiscard]] const T& get() const {
    const T* p = std::get_if<T>(&v_);
    ACC_EXPECTS_MSG(p != nullptr, "JSON value has a different type");
    return *p;
  }
  template <typename T>
  [[nodiscard]] T& get() {
    T* p = std::get_if<T>(&v_);
    ACC_EXPECTS_MSG(p != nullptr, "JSON value has a different type");
    return *p;
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

/// Parse a complete JSON document; nullopt on any syntax error (the error
/// message, when needed, comes from parse_or_throw).
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// Parse or throw acc::precondition_error with position information.
[[nodiscard]] Value parse_or_throw(std::string_view text);

}  // namespace acc::json
