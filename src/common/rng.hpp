// Deterministic pseudo-random generator for tests and workload generation.
//
// splitmix64: tiny, fast, and — unlike std::mt19937 seeded via seed_seq —
// produces identical streams on every platform, which keeps the property
// tests and benchmark workloads reproducible.
#pragma once

#include <cstdint>

namespace acc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  constexpr std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Named distinctly from the integer overload
  /// so integer literals never silently pick the real-valued distribution.
  constexpr double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform01() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace acc
