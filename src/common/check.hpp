// Lightweight contract-checking macros in the spirit of the C++ Core
// Guidelines' Expects/Ensures (GSL). Violations throw, so tests can assert
// on them and long-running analyses fail loudly instead of corrupting state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace acc {

/// Thrown when a precondition (ACC_EXPECTS) is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or internal invariant (ACC_ENSURES /
/// ACC_CHECK) is violated.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}

}  // namespace detail
}  // namespace acc

/// Precondition on a public API. Always enabled; these guard user input.
#define ACC_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond)) ::acc::detail::fail_precondition(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Precondition with an explanatory message (streamable not required).
#define ACC_EXPECTS_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond))                                                         \
      ::acc::detail::fail_precondition(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant / postcondition. Always enabled: the analyses in this
/// library back real-time guarantees, so silent corruption is never OK.
#define ACC_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) ::acc::detail::fail_invariant(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ACC_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond))                                                         \
      ::acc::detail::fail_invariant(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)
