// Tiny leveled logger. The simulator's per-cycle traces go through this so
// tests run quietly by default while a failing run can be replayed verbosely.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace acc {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Global log configuration (process-wide; the simulator is single-threaded).
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Redirect output (default: std::clog). Pass nullptr to restore default.
  static void set_sink(std::ostream* sink);

  static void write(LogLevel level, const std::string& msg);
  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

}  // namespace acc

#define ACC_LOG(lvl, expr)                                       \
  do {                                                           \
    if (::acc::Log::enabled(lvl)) {                              \
      std::ostringstream acc_log_os;                             \
      acc_log_os << expr; /* NOLINT */                           \
      ::acc::Log::write(lvl, acc_log_os.str());                  \
    }                                                            \
  } while (0)

#define ACC_TRACE(expr) ACC_LOG(::acc::LogLevel::kTrace, expr)
#define ACC_DEBUG(expr) ACC_LOG(::acc::LogLevel::kDebug, expr)
#define ACC_INFO(expr) ACC_LOG(::acc::LogLevel::kInfo, expr)
#define ACC_WARN(expr) ACC_LOG(::acc::LogLevel::kWarn, expr)
