#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace acc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void(std::size_t)> task) {
  if (workers_.empty()) {
    // Inline mode: run now, defer any exception to wait_idle() so callers
    // see the same control flow regardless of pool size.
    try {
      task(0);
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
    return;
  }
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    std::function<void(std::size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task(id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace acc
