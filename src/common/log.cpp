#include "common/log.hpp"

#include <iostream>

namespace acc {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel level) { g_level = level; }
void Log::set_sink(std::ostream* sink) { g_sink = sink; }

void Log::write(LogLevel level, const std::string& msg) {
  std::ostream& os = g_sink != nullptr ? *g_sink : std::clog;
  os << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace acc
