// Fixed-size thread pool for embarrassingly parallel design-space searches.
//
// Deliberately simple — no work stealing, no futures: the DSE engine submits
// waves of independent simulation closures and barriers on wait_idle().
// Tasks receive a worker index in [0, size()) so callers can hand each
// concurrent task private mutable state (e.g. a Graph clone) without locks.
// A pool of size <= 1 runs every task inline at submit() time, so
// single-threaded behaviour is exactly the serial code path (and safe to use
// from contexts that must not spawn threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acc {

class ThreadPool {
 public:
  /// A pool with `threads <= 1` executes tasks inline (worker index 0).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers tasks may run on concurrently (>= 1).
  [[nodiscard]] std::size_t size() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Enqueue a task. The first exception a task throws (inline or on a
  /// worker) is captured and rethrown from the next wait_idle().
  void submit(std::function<void(std::size_t worker)> task);

  /// Block until every submitted task has finished; rethrows the first
  /// captured task exception, if any.
  void wait_idle();

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::deque<std::function<void(std::size_t)>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace acc
