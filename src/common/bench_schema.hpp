// Golden schemas for the machine-readable bench documents (BENCH_*.json).
// The bench binaries validate before writing and the test suite validates
// documents built in-process, so a drifting producer breaks both the bench
// and ctest instead of silently shipping a malformed artifact.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"

namespace acc {

/// Validate a BENCH_dse.json document (see sharing/bench_doc.hpp).
/// Returns one human-readable problem per schema breach; empty = valid.
[[nodiscard]] std::vector<std::string> validate_bench_dse(
    const json::Value& doc);

/// Validate a BENCH_faults.json document (see app/fault_campaign.hpp).
[[nodiscard]] std::vector<std::string> validate_bench_faults(
    const json::Value& doc);

/// Validate a BENCH_sim.json document (see app/sim_bench.hpp). Beyond key
/// presence/kinds this also enforces the semantic invariants every valid
/// run must satisfy: runs[] holds exactly a "dense" and an "event" entry,
/// and $.equivalent is true (the steppers are cycle-exact by contract — a
/// document recording a divergence is itself malformed).
[[nodiscard]] std::vector<std::string> validate_bench_sim(
    const json::Value& doc);

/// Validate a BENCH_admission.json document (see app/admission_churn.hpp).
/// Beyond key presence/kinds this enforces the control-plane invariants a
/// valid campaign must satisfy: steppers[] holds exactly a "dense", a
/// "global-horizon" and a "wake-list" row, $.equivalent is true, and the
/// summary's accept/reject split sums to the join count.
[[nodiscard]] std::vector<std::string> validate_bench_admission(
    const json::Value& doc);

/// Validate a RunReport document (see obs/run_report.hpp). Enforces the
/// margin arithmetic (margin == bound - observed, or == bound when nothing
/// was observed) and a non-empty streams table on top of key/kind checks.
[[nodiscard]] std::vector<std::string> validate_run_report(
    const json::Value& doc);

}  // namespace acc
