// Exact rational arithmetic on 64-bit integers.
//
// Used by the dataflow analyses (repetition vectors, maximum cycle ratio)
// where floating point would silently lose the exactness that real-time
// guarantees depend on. Overflow is detected and throws.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <string>

namespace acc {

/// Exact rational number num/den with den > 0, always stored normalized
/// (gcd(|num|, den) == 1). Arithmetic throws std::overflow_error on 64-bit
/// overflow rather than wrapping.
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num);  // NOLINT(google-explicit-constructor) — ints promote naturally
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] bool is_zero() const { return num_ == 0; }

  /// Largest integer <= value.
  [[nodiscard]] std::int64_t floor() const;
  /// Smallest integer >= value.
  [[nodiscard]] std::int64_t ceil() const;
  /// Value as double (may lose precision; for reporting only).
  [[nodiscard]] double to_double() const;

  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) { return Rational(-a.num_, a.den_); }

  friend bool operator==(const Rational& a, const Rational& b) = default;
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  [[nodiscard]] Rational reciprocal() const;
  [[nodiscard]] std::string str() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// gcd of two non-negative 64-bit integers (gcd(0, x) == x).
std::int64_t gcd64(std::int64_t a, std::int64_t b);
/// lcm with overflow detection.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

}  // namespace acc
