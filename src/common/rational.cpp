#include "common/rational.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace acc {

namespace {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    throw std::overflow_error("Rational: 64-bit multiply overflow");
  return out;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw std::overflow_error("Rational: 64-bit add overflow");
  return out;
}

}  // namespace

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  ACC_EXPECTS(a >= 0 && b >= 0);
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  ACC_EXPECTS(a >= 0 && b >= 0);
  if (a == 0 || b == 0) return 0;
  return checked_mul(a / gcd64(a, b), b);
}

Rational::Rational(std::int64_t num) : num_(num), den_(1) {}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  ACC_EXPECTS_MSG(den != 0, "Rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    ACC_CHECK(den_ != INT64_MIN && num_ != INT64_MIN);
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = gcd64(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::int64_t Rational::floor() const {
  if (num_ >= 0) return num_ / den_;
  return -((-num_ + den_ - 1) / den_);
}

std::int64_t Rational::ceil() const {
  if (num_ >= 0) return (num_ + den_ - 1) / den_;
  return -((-num_) / den_);
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

Rational& Rational::operator+=(const Rational& o) {
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d); keeps magnitudes small.
  const std::int64_t l = lcm64(den_, o.den_);
  num_ = checked_add(checked_mul(num_, l / den_), checked_mul(o.num_, l / o.den_));
  den_ = l;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-reduce before multiplying to avoid overflow.
  const std::int64_t g1 = gcd64(num_ < 0 ? -num_ : num_, o.den_);
  const std::int64_t g2 = gcd64(o.num_ < 0 ? -o.num_ : o.num_, den_);
  num_ = checked_mul(num_ / g1, o.num_ / g2);
  den_ = checked_mul(den_ / g2, o.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  ACC_EXPECTS_MSG(!o.is_zero(), "Rational division by zero");
  return *this *= o.reciprocal();
}

Rational Rational::reciprocal() const {
  ACC_EXPECTS_MSG(!is_zero(), "reciprocal of zero");
  return Rational(den_, num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Compare a.num/a.den <=> b.num/b.den via cross-multiplication on the lcm
  // to bound magnitudes.
  const std::int64_t l = lcm64(a.den_, b.den_);
  const std::int64_t lhs = checked_mul(a.num_, l / a.den_);
  const std::int64_t rhs = checked_mul(b.num_, l / b.den_);
  return lhs <=> rhs;
}

std::string Rational::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (!r.is_integer()) os << '/' << r.den();
  return os;
}

}  // namespace acc
