// Per-System bump arena and the arena-backed ring buffer used for C-FIFO
// and ring token storage (ISSUE 8: batched data plane).
//
// The steady-state simulator allocations left after PR3/PR6 come from
// std::deque nodes churned by C-FIFO deadline queues and ring injection
// queues. Both containers only ever grow to a small, workload-determined
// high-water mark and then recycle the same storage for the rest of the
// run, so a bump arena that never frees individual blocks is the right
// shape: growth costs one chunked allocation, and every token afterwards
// lives in a contiguous, cache-friendly ring.
//
// Ownership rule: an Arena must outlive every container carved from it.
// System owns one Arena and declares it BEFORE the interconnect and the
// C-FIFOs, so destruction order is safe by construction. Containers work
// without an arena too (plain heap blocks, freed on destruction) — that
// keeps standalone unit tests of CFifo/Ring allocation-correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace acc {

/// Chunked bump allocator. allocate() never fails over to the caller and
/// never frees; memory returns to the OS when the arena dies. Oversized
/// requests get a dedicated chunk so the chunk size is a tuning knob, not
/// a limit.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {
    ACC_EXPECTS(chunk_bytes >= 64);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    ACC_EXPECTS(align > 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    std::size_t aligned = (used_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || aligned + bytes > head_size_) {
      const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back(std::make_unique<std::byte[]>(size));
      head_size_ = size;
      used_ = 0;
      aligned = 0;
      reserved_ += size;
    }
    used_ = aligned + bytes;
    allocated_ += bytes;
    return chunks_.back().get() + aligned;
  }

  /// Total bytes handed out (growth diagnostics; retired blocks from grown
  /// ring buffers stay counted — the arena never reclaims them).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Total bytes reserved from the OS.
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t head_size_ = 0;  // capacity of chunks_.back()
  std::size_t used_ = 0;       // bump offset into chunks_.back()
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

/// Growable circular FIFO over trivially copyable tokens, optionally backed
/// by an Arena. Supports exactly the operations the simulator's token
/// queues need: push_back / pop_front / indexed access from the front.
/// Growth doubles the power-of-two capacity (index masking keeps the hot
/// paths modulo-free) and copies the live window; the old block is freed
/// when heap-backed and abandoned to the arena otherwise (bounded by the
/// doubling schedule at < 1x the peak footprint).
template <typename T>
class RingBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingBuffer tokens are relocated with memcpy");

 public:
  RingBuffer() = default;
  ~RingBuffer() { release(); }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  RingBuffer(RingBuffer&& other) noexcept { steal(other); }
  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  /// Attach an arena; takes effect on the next growth. Call before the
  /// container warms up (System wires it right after construction).
  void set_arena(Arena* arena) { arena_ = arena; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  [[nodiscard]] const T& front() const { return buf_[head_]; }
  [[nodiscard]] const T& back() const {
    return buf_[(head_ + size_ - 1) & mask_];
  }
  /// i-th element from the front (deadline queues binary-search this).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) & mask_];
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    buf_[(head_ + size_) & mask_] = v;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    T* fresh;
    if (arena_ != nullptr) {
      fresh = static_cast<T*>(arena_->allocate(new_cap * sizeof(T), alignof(T)));
    } else {
      fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    }
    // Unroll the circular window into the front of the fresh block.
    if (size_ > 0) {
      const std::size_t tail = cap_ - head_ < size_ ? cap_ - head_ : size_;
      std::memcpy(fresh, buf_ + head_, tail * sizeof(T));
      if (tail < size_) std::memcpy(fresh + tail, buf_, (size_ - tail) * sizeof(T));
    }
    if (!from_arena_ && buf_ != nullptr) ::operator delete(buf_);
    buf_ = fresh;
    from_arena_ = arena_ != nullptr;
    cap_ = new_cap;
    mask_ = new_cap - 1;
    head_ = 0;
  }

  void release() {
    if (!from_arena_ && buf_ != nullptr) ::operator delete(buf_);
    buf_ = nullptr;
  }

  void steal(RingBuffer& other) {
    arena_ = other.arena_;
    buf_ = other.buf_;
    cap_ = other.cap_;
    mask_ = other.mask_;
    head_ = other.head_;
    size_ = other.size_;
    from_arena_ = other.from_arena_;
    other.buf_ = nullptr;
    other.cap_ = other.mask_ = other.head_ = other.size_ = 0;
    other.from_arena_ = false;
  }

  Arena* arena_ = nullptr;
  T* buf_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool from_arena_ = false;
};

}  // namespace acc
