// Q-format fixed-point arithmetic used by the accelerator datapath models.
//
// The paper's accelerators (CORDIC, FIR) are FPGA datapaths; modelling them
// with fixed-point arithmetic keeps the simulator bit-faithful to what a
// hardware implementation would compute, and exposes quantization effects in
// the decoded audio that a double-precision model would hide.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace acc {

/// Signed fixed-point value with FRAC fractional bits stored in 32 bits
/// (Q(31-FRAC).FRAC). Arithmetic widens to 64 bits internally and saturates
/// on overflow — matching the usual FPGA DSP-slice behaviour.
template <int FRAC>
class Fixed {
  static_assert(FRAC > 0 && FRAC < 31, "fractional bits must fit in int32");

 public:
  static constexpr int fractional_bits = FRAC;
  static constexpr std::int32_t one = std::int32_t{1} << FRAC;

  constexpr Fixed() = default;

  /// Build from raw register contents.
  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Quantize a double (round-to-nearest, saturating).
  static Fixed from_double(double v) {
    const double scaled = v * static_cast<double>(one);
    const double rounded = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
    return from_raw(saturate_i64(static_cast<std::int64_t>(rounded)));
  }

  [[nodiscard]] constexpr std::int32_t raw() const { return raw_; }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(one);
  }

  friend Fixed operator+(Fixed a, Fixed b) {
    return from_raw(saturate_i64(std::int64_t{a.raw_} + b.raw_));
  }
  friend Fixed operator-(Fixed a, Fixed b) {
    return from_raw(saturate_i64(std::int64_t{a.raw_} - b.raw_));
  }
  friend Fixed operator-(Fixed a) {
    return from_raw(saturate_i64(-std::int64_t{a.raw_}));
  }
  /// Full-precision multiply then truncate back to Q-format (hardware
  /// multipliers truncate the low product bits).
  friend Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t prod = std::int64_t{a.raw_} * std::int64_t{b.raw_};
    return from_raw(saturate_i64(prod >> FRAC));
  }

  /// Arithmetic shift right (used by CORDIC micro-rotations).
  [[nodiscard]] constexpr Fixed asr(int n) const {
    return from_raw(raw_ >> n);
  }

  friend constexpr bool operator==(Fixed a, Fixed b) = default;
  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

 private:
  static constexpr std::int32_t saturate_i64(std::int64_t v) {
    if (v > std::numeric_limits<std::int32_t>::max())
      return std::numeric_limits<std::int32_t>::max();
    if (v < std::numeric_limits<std::int32_t>::min())
      return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(v);
  }

  std::int32_t raw_ = 0;
};

/// The Q-format used throughout the accelerator models: Q2.16 in 32 bits
/// gives audio-grade SNR while leaving headroom for CORDIC gain (~1.647).
using Q16 = Fixed<16>;

/// Complex fixed-point sample as streamed between accelerator tiles.
template <int FRAC>
struct ComplexFixed {
  Fixed<FRAC> re;
  Fixed<FRAC> im;

  friend ComplexFixed operator+(ComplexFixed a, ComplexFixed b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend ComplexFixed operator-(ComplexFixed a, ComplexFixed b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend ComplexFixed operator*(ComplexFixed a, ComplexFixed b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  friend constexpr bool operator==(ComplexFixed a, ComplexFixed b) = default;
};

using CQ16 = ComplexFixed<16>;

}  // namespace acc
