#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace acc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ACC_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  ACC_EXPECTS_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  const bool neg = v < 0;
  unsigned long long mag = neg ? -static_cast<unsigned long long>(v) : v;
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace acc
