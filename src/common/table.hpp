// Minimal ASCII table formatter used by the benchmark harnesses to print
// paper tables/figures in a uniform, diffable layout.
#pragma once

#include <string>
#include <vector>

namespace acc {

/// Column-aligned ASCII table. Add a header once, then rows; render pads all
/// cells to the widest entry per column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with single-space-padded pipes, header underline included.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.*f").
std::string fmt_double(double v, int precision = 2);

/// Thousands-separated integer formatting (e.g. 32904 -> "32,904").
std::string fmt_int(long long v);

}  // namespace acc
