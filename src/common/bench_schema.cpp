#include "common/bench_schema.hpp"

namespace acc {

namespace {

enum class Kind {
  kInt,
  kNumber,
  kNumberOrNull,  // measured rate that may be null (clock below resolution)
  kString,
  kBool,
  kArray,
  kObject,
};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kInt: return "integer";
    case Kind::kNumber: return "number";
    case Kind::kNumberOrNull: return "number or null";
    case Kind::kString: return "string";
    case Kind::kBool: return "bool";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

bool is_kind(const json::Value& v, Kind k) {
  switch (k) {
    case Kind::kInt: return v.is_int();
    case Kind::kNumber: return v.is_number();
    case Kind::kNumberOrNull: return v.is_number() || v.is_null();
    case Kind::kString: return v.is_string();
    case Kind::kBool: return v.is_bool();
    case Kind::kArray: return v.is_array();
    case Kind::kObject: return v.is_object();
  }
  return false;
}

/// Appends a problem (and returns nullptr) unless `obj` has member `key`
/// of kind `kind`.
const json::Value* require(const json::Value& obj, const std::string& path,
                           const std::string& key, Kind kind,
                           std::vector<std::string>* problems) {
  if (!obj.is_object()) {
    problems->push_back(path + ": expected an object");
    return nullptr;
  }
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    problems->push_back(path + ": missing required key \"" + key + "\"");
    return nullptr;
  }
  if (!is_kind(*v, kind)) {
    problems->push_back(path + "." + key + ": expected " + kind_name(kind));
    return nullptr;
  }
  return v;
}

void require_all(const json::Value& obj, const std::string& path,
                 const std::vector<std::pair<const char*, Kind>>& keys,
                 std::vector<std::string>* problems) {
  for (const auto& [key, kind] : keys)
    (void)require(obj, path, key, kind, problems);
}

}  // namespace

std::vector<std::string> validate_bench_dse(const json::Value& doc) {
  std::vector<std::string> problems;
  const json::Value* bench =
      require(doc, "$", "bench", Kind::kString, &problems);
  if (bench != nullptr && bench->as_string() != "dse")
    problems.push_back("$.bench: expected \"dse\"");
  (void)require(doc, "$", "hardware_threads", Kind::kInt, &problems);
  const json::Value* runs =
      require(doc, "$", "runs", Kind::kArray, &problems);
  if (runs == nullptr) return problems;
  if (runs->as_array().empty())
    problems.push_back("$.runs: expected at least one run");
  for (std::size_t i = 0; i < runs->as_array().size(); ++i) {
    const std::string path = "$.runs[" + std::to_string(i) + "]";
    require_all(runs->as_array()[i], path,
                {{"jobs", Kind::kInt},
                 {"wall_ms", Kind::kNumber},
                 {"simulations", Kind::kInt},
                 {"cache_hits", Kind::kInt},
                 {"cache_misses", Kind::kInt},
                 {"cache_hit_rate", Kind::kNumber},
                 {"pruned_infeasible", Kind::kInt},
                 {"pruned_feasible", Kind::kInt}},
                &problems);
  }
  return problems;
}

std::vector<std::string> validate_bench_faults(const json::Value& doc) {
  std::vector<std::string> problems;
  const json::Value* bench =
      require(doc, "$", "bench", Kind::kString, &problems);
  if (bench != nullptr && bench->as_string() != "faults")
    problems.push_back("$.bench: expected \"faults\"");
  (void)require(doc, "$", "seed", Kind::kInt, &problems);
  (void)require(doc, "$", "conformance_slack", Kind::kInt, &problems);
  const json::Value* pal =
      require(doc, "$", "pal", Kind::kObject, &problems);
  if (pal != nullptr) {
    require_all(*pal, "$.pal",
                {{"input_samples", Kind::kInt},
                 {"input_period", Kind::kInt},
                 {"reconfig", Kind::kInt},
                 {"notify_timeout", Kind::kInt}},
                &problems);
  }
  const json::Value* points =
      require(doc, "$", "points", Kind::kArray, &problems);
  if (points != nullptr) {
    if (points->as_array().empty())
      problems.push_back("$.points: expected at least one point");
    for (std::size_t i = 0; i < points->as_array().size(); ++i) {
      const std::string path = "$.points[" + std::to_string(i) + "]";
      require_all(points->as_array()[i], path,
                  {{"label", Kind::kString},
                   {"intensity", Kind::kNumber},
                   {"drop_notifications", Kind::kBool},
                   {"seed", Kind::kInt},
                   {"faults_injected", Kind::kInt},
                   {"notifications_dropped", Kind::kInt},
                   {"fault_delay_cycles", Kind::kInt},
                   {"fault_slack", Kind::kInt},
                   {"blocks_checked", Kind::kInt},
                   {"violations", Kind::kInt},
                   {"covered_by_slack", Kind::kInt},
                   {"genuine_breaches", Kind::kInt},
                   {"max_service_observed", Kind::kInt},
                   {"max_excess", Kind::kInt},
                   {"notify_timeouts", Kind::kInt},
                   {"notify_recoveries", Kind::kInt},
                   {"credit_stalls", Kind::kInt},
                   {"source_drops", Kind::kInt},
                   {"sink_underruns", Kind::kInt},
                   {"trace_truncated", Kind::kBool}},
                  &problems);
    }
  }
  const json::Value* summary =
      require(doc, "$", "summary", Kind::kObject, &problems);
  if (summary != nullptr) {
    require_all(*summary, "$.summary",
                {{"faults_injected", Kind::kInt},
                 {"covered_by_slack", Kind::kInt},
                 {"genuine_breaches", Kind::kInt}},
                &problems);
  }
  return problems;
}

std::vector<std::string> validate_bench_sim(const json::Value& doc) {
  std::vector<std::string> problems;
  const json::Value* bench =
      require(doc, "$", "bench", Kind::kString, &problems);
  if (bench != nullptr && bench->as_string() != "sim")
    problems.push_back("$.bench: expected \"sim\"");
  const json::Value* workload =
      require(doc, "$", "workload", Kind::kObject, &problems);
  if (workload != nullptr) {
    require_all(*workload, "$.workload",
                {{"input_samples", Kind::kInt},
                 {"input_period", Kind::kInt},
                 {"reconfig", Kind::kInt}},
                &problems);
  }
  const json::Value* runs =
      require(doc, "$", "runs", Kind::kArray, &problems);
  if (runs != nullptr) {
    // One row per stepper, in the fixed order the doc builder emits.
    static const char* kModes[] = {"dense", "event", "wake_list"};
    if (runs->as_array().size() != 3)
      problems.push_back(
          "$.runs: expected exactly three runs (dense, event, wake_list)");
    for (std::size_t i = 0; i < runs->as_array().size(); ++i) {
      const std::string path = "$.runs[" + std::to_string(i) + "]";
      const json::Value& run = runs->as_array()[i];
      const json::Value* mode =
          require(run, path, "mode", Kind::kString, &problems);
      if (mode != nullptr && i < 3 && mode->as_string() != kModes[i])
        problems.push_back(path + ".mode: expected \"" +
                           std::string(kModes[i]) + "\"");
      require_all(run, path,
                  {{"wall_ms", Kind::kNumber},
                   {"cycles", Kind::kInt},
                   {"cycles_per_sec", Kind::kNumberOrNull},
                   {"dense_ticks", Kind::kInt},
                   {"skips", Kind::kInt},
                   {"skipped_cycles", Kind::kInt},
                   {"component_ticks", Kind::kInt},
                   {"horizon_queries", Kind::kInt},
                   {"wakes", Kind::kInt},
                   {"batch_runs", Kind::kInt},
                   {"batch_tokens", Kind::kInt},
                   {"sink_samples", Kind::kInt},
                   {"source_drops", Kind::kInt},
                   {"sink_underruns", Kind::kInt},
                   {"blocks", Kind::kInt},
                   {"audio_checksum", Kind::kInt}},
                  &problems);
    }
  }
  (void)require(doc, "$", "speedup", Kind::kNumberOrNull, &problems);
  const json::Value* equivalent =
      require(doc, "$", "equivalent", Kind::kBool, &problems);
  if (equivalent != nullptr && !equivalent->as_bool())
    problems.push_back(
        "$.equivalent: the stepper runs diverged (steppers must be "
        "cycle-exact)");
  return problems;
}

std::vector<std::string> validate_bench_admission(const json::Value& doc) {
  std::vector<std::string> problems;
  const json::Value* bench =
      require(doc, "$", "bench", Kind::kString, &problems);
  if (bench != nullptr && bench->as_string() != "admission_churn")
    problems.push_back("$.bench: expected \"admission_churn\"");
  (void)require(doc, "$", "seed", Kind::kInt, &problems);
  (void)require(doc, "$", "events", Kind::kInt, &problems);
  (void)require(doc, "$", "max_concurrent", Kind::kInt, &problems);
  (void)require(doc, "$", "event_gap", Kind::kInt, &problems);
  (void)require(doc, "$", "eta_max", Kind::kInt, &problems);
  (void)require(doc, "$", "eta_align", Kind::kInt, &problems);
  (void)require(doc, "$", "blocks_per_session", Kind::kInt, &problems);
  const json::Value* chain =
      require(doc, "$", "chain", Kind::kObject, &problems);
  if (chain != nullptr) {
    require_all(*chain, "$.chain",
                {{"accelerators", Kind::kArray},
                 {"entry", Kind::kInt},
                 {"exit", Kind::kInt},
                 {"ni_capacity", Kind::kInt}},
                &problems);
  }
  const json::Value* templates =
      require(doc, "$", "templates", Kind::kArray, &problems);
  if (templates != nullptr) {
    if (templates->as_array().empty())
      problems.push_back("$.templates: expected at least one template");
    for (std::size_t i = 0; i < templates->as_array().size(); ++i) {
      const std::string path = "$.templates[" + std::to_string(i) + "]";
      require_all(templates->as_array()[i], path,
                  {{"name", Kind::kString},
                   {"period", Kind::kInt},
                   {"decimation", Kind::kInt},
                   {"reconfig", Kind::kInt}},
                  &problems);
    }
  }
  const json::Value* decisions =
      require(doc, "$", "decisions", Kind::kArray, &problems);
  if (decisions != nullptr) {
    if (decisions->as_array().empty())
      problems.push_back("$.decisions: expected at least one decision");
    for (std::size_t i = 0; i < decisions->as_array().size(); ++i) {
      const std::string path = "$.decisions[" + std::to_string(i) + "]";
      require_all(decisions->as_array()[i], path,
                  {{"i", Kind::kInt},
                   {"kind", Kind::kString},
                   {"session", Kind::kInt},
                   {"template", Kind::kInt},
                   {"accepted", Kind::kBool},
                   {"cache_hit", Kind::kBool},
                   {"reason", Kind::kString},
                   {"eta", Kind::kInt},
                   {"gamma", Kind::kInt},
                   {"analysis_work", Kind::kInt},
                   {"reconfig_cycles", Kind::kInt}},
                  &problems);
    }
  }
  const json::Value* steppers =
      require(doc, "$", "steppers", Kind::kArray, &problems);
  if (steppers != nullptr) {
    // One row per stepper, in the fixed order the doc builder emits.
    static const char* kSteppers[] = {"dense", "global-horizon", "wake-list"};
    if (steppers->as_array().size() != 3)
      problems.push_back(
          "$.steppers: expected exactly three runs (dense, global-horizon, "
          "wake-list)");
    for (std::size_t i = 0; i < steppers->as_array().size(); ++i) {
      const std::string path = "$.steppers[" + std::to_string(i) + "]";
      const json::Value& run = steppers->as_array()[i];
      const json::Value* mode =
          require(run, path, "stepper", Kind::kString, &problems);
      if (mode != nullptr && i < 3 && mode->as_string() != kSteppers[i])
        problems.push_back(path + ".stepper: expected \"" +
                           std::string(kSteppers[i]) + "\"");
      require_all(run, path,
                  {{"cycles_run", Kind::kInt},
                   {"digest", Kind::kString},
                   {"audio_checksum", Kind::kString},
                   {"deadline_misses", Kind::kInt}},
                  &problems);
    }
  }
  const json::Value* summary =
      require(doc, "$", "summary", Kind::kObject, &problems);
  if (summary != nullptr) {
    require_all(*summary, "$.summary",
                {{"joins", Kind::kInt},
                 {"accepted", Kind::kInt},
                 {"rejected", Kind::kInt},
                 {"leaves", Kind::kInt},
                 {"leaves_skipped", Kind::kInt},
                 {"cache_lookups", Kind::kInt},
                 {"cache_hits", Kind::kInt},
                 {"analysis_work", Kind::kInt},
                 {"mode_changes", Kind::kInt},
                 {"reconfig_cycles", Kind::kInt},
                 {"samples_delivered", Kind::kInt},
                 {"source_drops", Kind::kInt},
                 {"sink_underruns", Kind::kInt},
                 {"deadline_misses", Kind::kInt},
                 {"audio_checksum", Kind::kString},
                 {"cycles_run", Kind::kInt}},
                &problems);
    const json::Value* joins = summary->find("joins");
    const json::Value* accepted = summary->find("accepted");
    const json::Value* rejected = summary->find("rejected");
    if (joins != nullptr && joins->is_int() && accepted != nullptr &&
        accepted->is_int() && rejected != nullptr && rejected->is_int() &&
        accepted->as_int() + rejected->as_int() != joins->as_int()) {
      problems.push_back(
          "$.summary: accepted + rejected must equal joins (every join is "
          "decided exactly once)");
    }
  }
  const json::Value* equivalent =
      require(doc, "$", "equivalent", Kind::kBool, &problems);
  if (equivalent != nullptr && !equivalent->as_bool())
    problems.push_back(
        "$.equivalent: the stepper runs diverged (steppers must be "
        "cycle-exact)");
  return problems;
}

namespace {

/// One {observed, bound, margin} cell of a stream row: the margin must be
/// the bound join the producer claims it is.
void check_margin_cell(const json::Value& row, const std::string& path,
                       const char* key, std::vector<std::string>* problems) {
  const json::Value* cell = require(row, path, key, Kind::kObject, problems);
  if (cell == nullptr) return;
  const std::string cpath = path + "." + key;
  const json::Value* observed =
      require(*cell, cpath, "observed", Kind::kInt, problems);
  const json::Value* bound =
      require(*cell, cpath, "bound", Kind::kInt, problems);
  const json::Value* margin =
      require(*cell, cpath, "margin", Kind::kInt, problems);
  if (observed == nullptr || bound == nullptr || margin == nullptr) return;
  const std::int64_t expect = observed->as_int() < 0
                                  ? bound->as_int()
                                  : bound->as_int() - observed->as_int();
  if (margin->as_int() != expect)
    problems->push_back(cpath + ".margin: expected bound - observed = " +
                        std::to_string(expect));
}

}  // namespace

std::vector<std::string> validate_run_report(const json::Value& doc) {
  std::vector<std::string> problems;
  const json::Value* report =
      require(doc, "$", "report", Kind::kString, &problems);
  if (report != nullptr && report->as_string() != "run")
    problems.push_back("$.report: expected \"run\"");
  (void)require(doc, "$", "version", Kind::kInt, &problems);
  (void)require(doc, "$", "workload", Kind::kString, &problems);
  (void)require(doc, "$", "params", Kind::kObject, &problems);
  (void)require(doc, "$", "cycles_run", Kind::kInt, &problems);
  const json::Value* stepper =
      require(doc, "$", "stepper", Kind::kString, &problems);
  if (stepper != nullptr && stepper->as_string() != "dense" &&
      stepper->as_string() != "global-horizon" &&
      stepper->as_string() != "wake-list")
    problems.push_back(
        "$.stepper: expected \"dense\", \"global-horizon\" or \"wake-list\"");
  (void)require(doc, "$", "verdict", Kind::kObject, &problems);

  const json::Value* streams =
      require(doc, "$", "streams", Kind::kArray, &problems);
  if (streams != nullptr) {
    if (streams->as_array().empty())
      problems.push_back("$.streams: expected at least one stream row");
    for (std::size_t i = 0; i < streams->as_array().size(); ++i) {
      const std::string path = "$.streams[" + std::to_string(i) + "]";
      const json::Value& row = streams->as_array()[i];
      require_all(row, path,
                  {{"id", Kind::kInt},
                   {"stream", Kind::kString},
                   {"eta", Kind::kInt},
                   {"blocks", Kind::kInt}},
                  &problems);
      check_margin_cell(row, path, "service", &problems);
      check_margin_cell(row, path, "spacing", &problems);
    }
  }

  const json::Value* adm =
      require(doc, "$", "admissions", Kind::kObject, &problems);
  if (adm != nullptr) {
    require_all(*adm, "$.admissions",
                {{"accepts", Kind::kInt},
                 {"rejects", Kind::kInt},
                 {"cache_lookups", Kind::kInt},
                 {"cache_hits", Kind::kInt},
                 {"mode_changes", Kind::kInt},
                 {"reconfig_cycles", Kind::kInt}},
                &problems);
  }

  (void)require(doc, "$", "metrics", Kind::kObject, &problems);
  const json::Value* trace =
      require(doc, "$", "trace", Kind::kObject, &problems);
  if (trace != nullptr) {
    require_all(*trace, "$.trace",
                {{"events", Kind::kInt},
                 {"dropped", Kind::kInt},
                 {"truncated", Kind::kBool}},
                &problems);
  }
  return problems;
}

}  // namespace acc
