// Overflow-checked 64-bit integer arithmetic.
//
// The timing analyses accumulate cycle counts (tau_hat, gamma_hat) whose
// inputs come straight from user configurations; a wrapped accumulation
// would silently turn an infeasible system into an "admissible" one. These
// helpers throw std::overflow_error instead, which both the analyses and
// the static linter (lint rule M08 gamma-overflow) rely on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace acc {

[[nodiscard]] inline std::int64_t checked_add(std::int64_t a, std::int64_t b,
                                              const char* what = "add") {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    throw std::overflow_error(std::string("int64 overflow in ") + what + ": " +
                              std::to_string(a) + " + " + std::to_string(b));
  }
  return r;
}

[[nodiscard]] inline std::int64_t checked_sub(std::int64_t a, std::int64_t b,
                                              const char* what = "sub") {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    throw std::overflow_error(std::string("int64 overflow in ") + what + ": " +
                              std::to_string(a) + " - " + std::to_string(b));
  }
  return r;
}

[[nodiscard]] inline std::int64_t checked_mul(std::int64_t a, std::int64_t b,
                                              const char* what = "mul") {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw std::overflow_error(std::string("int64 overflow in ") + what + ": " +
                              std::to_string(a) + " * " + std::to_string(b));
  }
  return r;
}

}  // namespace acc
