#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace acc::json {

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) {
    ACC_EXPECTS_MSG(*d == std::floor(*d), "JSON number is not integral");
    return static_cast<std::int64_t>(*d);
  }
  throw precondition_error("JSON value is not a number");
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_))
    return static_cast<double>(*i);
  throw precondition_error("JSON value is not a number");
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  const auto it = o.find(key);
  ACC_EXPECTS_MSG(it != o.end(), "missing JSON key '" + key + "'");
  return it->second;
}

const Value* Value::find(const std::string& key) const {
  const Object& o = as_object();
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

namespace {

void escape_to(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_to(std::ostringstream& os, const Value& v, int indent, int depth) {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (depth + 1),
                                      ' ')
                 : "";
  const std::string pad_close =
      indent > 0
          ? "\n" + std::string(static_cast<std::size_t>(indent) * depth, ' ')
          : "";
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
    os << buf;
  } else if (v.is_string()) {
    escape_to(os, v.as_string());
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      os << (i ? "," : "") << pad;
      dump_to(os, a[i], indent, depth + 1);
    }
    os << pad_close << ']';
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    bool first = true;
    for (const auto& [k, val] : o) {
      if (!first) os << ',';
      first = false;
      os << pad;
      escape_to(os, k);
      os << (indent > 0 ? ": " : ":");
      dump_to(os, val, indent, depth + 1);
    }
    os << pad_close << '}';
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw precondition_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void require(bool cond, const char* what) const {
    if (!cond) fail(what);
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  char take() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_++];
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }
  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_word("true")) return Value(true);
    if (consume_word("false")) return Value(false);
    if (consume_word("null")) return Value(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    bool is_double = false;
    if (peek() == '.') {
      is_double = true;
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_double = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    require(!token.empty() && token != "-", "bad number");
    if (is_double) return Value(std::strtod(token.c_str(), nullptr));
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    require(end != nullptr && *end == '\0' && errno == 0, "bad integer");
    return Value(static_cast<std::int64_t>(v));
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (consume(']')) return Value(std::move(a));
    for (;;) {
      a.push_back(parse_value());
      skip_ws();
      if (consume(']')) return Value(std::move(a));
      expect(',');
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (consume('}')) return Value(std::move(o));
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      if (consume('}')) return Value(std::move(o));
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::ostringstream os;
  dump_to(os, *this, 0, 0);
  return os.str();
}

std::string Value::pretty(int indent) const {
  std::ostringstream os;
  dump_to(os, *this, indent, 0);
  return os.str();
}

std::optional<Value> parse(std::string_view text) {
  try {
    return Parser(text).parse_document();
  } catch (const precondition_error&) {
    return std::nullopt;
  }
}

Value parse_or_throw(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace acc::json
