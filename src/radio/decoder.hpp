// Floating-point reference decoder for the PAL stereo audio ensemble.
//
// Implements the same chain as the paper's Fig. 10 — mix to baseband,
// LPF + 8:1 down-sample, FM discriminate, LPF + 8:1 down-sample, per audio
// carrier, then reconstruct L from (L+R)/2 and R — but in double precision
// with no accelerator sharing. It serves as the golden model the fixed-point
// accelerator chain and the full MPSoC simulation are checked against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radio/signal.hpp"

namespace acc::radio {

struct DecoderConfig {
  double sample_rate = 64 * 44100.0;  // front-end complex rate
  double carrier1_hz = 180000.0;
  double carrier2_hz = 420000.0;
  double deviation_hz = 50000.0;
  int fir_taps = 33;
  int decimation1 = 8;
  int decimation2 = 8;
  /// Normalized cutoff of the two low-pass stages (fraction of the stage's
  /// input rate). Chosen to pass the FM signal / audio while attenuating
  /// the neighbouring carrier and discriminator images.
  double cutoff1 = 0.06;
  double cutoff2 = 0.06;
};

/// Decode one FM subcarrier to audio at sample_rate / (decim1 * decim2).
[[nodiscard]] std::vector<double> decode_fm_channel(std::span<const cplx> baseband,
                                                    double carrier_hz,
                                                    const DecoderConfig& cfg);

struct StereoDecodeResult {
  std::vector<double> left;
  std::vector<double> right;
  /// Audio output rate = cfg.sample_rate / (decim1 * decim2).
  double audio_rate = 0.0;
};

/// Full stereo decode: carrier 1 yields (L+R)/2, carrier 2 yields R;
/// L = 2 * ch1 - R (the software reconstruction task of Fig. 10).
[[nodiscard]] StereoDecodeResult decode_stereo(std::span<const cplx> baseband,
                                               const DecoderConfig& cfg);

/// Building blocks, exposed for reuse by the accelerator-based decoder.
[[nodiscard]] std::vector<cplx> mix_to_baseband(std::span<const cplx> in,
                                                double carrier_hz,
                                                double sample_rate);
[[nodiscard]] std::vector<cplx> fir_decimate(std::span<const cplx> in,
                                             std::span<const double> taps,
                                             int decimation);
/// Per-sample phase increment scaled to (-1, 1] (+-pi == +-1); first output
/// uses an implicit zero-valued previous sample.
[[nodiscard]] std::vector<double> fm_discriminate(std::span<const cplx> in);

}  // namespace acc::radio
