// Minimal RIFF/WAVE writer (PCM16) so decoded audio can actually be
// listened to — the closest a simulator gets to the paper's speakers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace acc::radio {

/// Serialize interleaved stereo PCM16 WAV bytes. `left`/`right` must be the
/// same length; samples are clipped to [-1, 1] and quantized to 16 bits.
[[nodiscard]] std::vector<std::uint8_t> encode_wav_stereo(
    std::span<const double> left, std::span<const double> right,
    std::uint32_t sample_rate);

/// Write to a file; returns false on I/O failure.
bool write_wav_stereo(const std::string& path, std::span<const double> left,
                      std::span<const double> right,
                      std::uint32_t sample_rate);

/// Parsed header info (for tests / sanity checks).
struct WavInfo {
  bool valid = false;
  std::uint16_t channels = 0;
  std::uint32_t sample_rate = 0;
  std::uint16_t bits_per_sample = 0;
  std::uint32_t num_frames = 0;
};

[[nodiscard]] WavInfo parse_wav_header(std::span<const std::uint8_t> bytes);

}  // namespace acc::radio
