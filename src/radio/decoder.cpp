#include "radio/decoder.hpp"

#include <cmath>

#include "accel/fir.hpp"
#include "common/check.hpp"

namespace acc::radio {

std::vector<cplx> mix_to_baseband(std::span<const cplx> in, double carrier_hz,
                                  double sample_rate) {
  ACC_EXPECTS(sample_rate > 0);
  std::vector<cplx> out;
  out.reserve(in.size());
  const double w = -2.0 * M_PI * carrier_hz / sample_rate;
  double phase = 0.0;
  for (const cplx& s : in) {
    phase += w;
    if (phase > M_PI) phase -= 2.0 * M_PI;
    if (phase < -M_PI) phase += 2.0 * M_PI;
    out.push_back(s * std::polar(1.0, phase));
  }
  return out;
}

std::vector<cplx> fir_decimate(std::span<const cplx> in,
                               std::span<const double> taps, int decimation) {
  ACC_EXPECTS(!taps.empty());
  ACC_EXPECTS(decimation >= 1);
  std::vector<cplx> out;
  out.reserve(in.size() / static_cast<std::size_t>(decimation) + 1);
  // Mirror the accelerator's streaming behaviour: output every
  // `decimation`-th input, filtering over the preceding taps.size() samples
  // (zero history before the stream starts).
  for (std::size_t i = decimation - 1; i < in.size();
       i += static_cast<std::size_t>(decimation)) {
    cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < taps.size(); ++k) {
      if (k > i) break;
      acc += taps[k] * in[i - k];
    }
    out.push_back(acc);
  }
  return out;
}

std::vector<double> fm_discriminate(std::span<const cplx> in) {
  std::vector<double> out;
  out.reserve(in.size());
  cplx prev{0.0, 0.0};
  for (const cplx& s : in) {
    out.push_back(std::arg(s * std::conj(prev)) / M_PI);
    prev = s;
  }
  return out;
}

std::vector<double> decode_fm_channel(std::span<const cplx> baseband,
                                      double carrier_hz,
                                      const DecoderConfig& cfg) {
  const std::vector<cplx> mixed =
      mix_to_baseband(baseband, carrier_hz, cfg.sample_rate);
  const std::vector<double> taps1 =
      accel::design_lowpass(cfg.fir_taps, cfg.cutoff1);
  const std::vector<cplx> stage1 = fir_decimate(mixed, taps1, cfg.decimation1);
  const std::vector<double> fm = fm_discriminate(stage1);
  // The discriminator reports (-1,1] for +-pi per sample at the decimated
  // rate; rescale so a full-deviation tone comes back with amplitude 1.
  const double rate1 = cfg.sample_rate / cfg.decimation1;
  const double gain = rate1 / (2.0 * cfg.deviation_hz);
  std::vector<cplx> scaled;
  scaled.reserve(fm.size());
  for (double v : fm) scaled.emplace_back(gain * v, 0.0);
  const std::vector<double> taps2 =
      accel::design_lowpass(cfg.fir_taps, cfg.cutoff2);
  const std::vector<cplx> stage2 = fir_decimate(scaled, taps2, cfg.decimation2);
  std::vector<double> audio;
  audio.reserve(stage2.size());
  for (const cplx& s : stage2) audio.push_back(s.real());
  return audio;
}

StereoDecodeResult decode_stereo(std::span<const cplx> baseband,
                                 const DecoderConfig& cfg) {
  StereoDecodeResult r;
  const std::vector<double> ch1 =
      decode_fm_channel(baseband, cfg.carrier1_hz, cfg);  // (L+R)/2
  const std::vector<double> ch2 =
      decode_fm_channel(baseband, cfg.carrier2_hz, cfg);  // R
  const std::size_t n = std::min(ch1.size(), ch2.size());
  r.left.resize(n);
  r.right.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r.right[i] = ch2[i];
    r.left[i] = 2.0 * ch1[i] - ch2[i];
  }
  r.audio_rate = cfg.sample_rate / (cfg.decimation1 * cfg.decimation2);
  return r;
}

}  // namespace acc::radio
