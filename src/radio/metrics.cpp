#include "radio/metrics.hpp"

#include <cmath>

#include "common/check.hpp"

namespace acc::radio {

double goertzel_power(std::span<const double> signal, double sample_rate,
                      double freq_hz) {
  ACC_EXPECTS(sample_rate > 0);
  if (signal.empty()) return 0.0;
  const double w = 2.0 * M_PI * freq_hz / sample_rate;
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  for (double x : signal) {
    s0 = x + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const auto n = static_cast<double>(signal.size());
  const double real = s1 - s2 * std::cos(w);
  const double imag = s2 * std::sin(w);
  // |X(f)|^2 * 2 / N^2 == 0.5 for a unit sine.
  return (real * real + imag * imag) * 2.0 / (n * n);
}

double mean_power(std::span<const double> signal) {
  if (signal.empty()) return 0.0;
  double acc = 0.0;
  for (double x : signal) acc += x * x;
  return acc / static_cast<double>(signal.size());
}

double tone_snr_db(std::span<const double> signal, double sample_rate,
                   double freq_hz, std::size_t skip) {
  ACC_EXPECTS(skip < signal.size());
  const std::span<const double> body = signal.subspan(skip);
  const double tone = goertzel_power(body, sample_rate, freq_hz);
  const double total = mean_power(body);
  const double noise = total - tone;
  if (noise <= 0.0) return 200.0;  // numerically perfect
  return 10.0 * std::log10(tone / noise);
}

void remove_dc(std::span<double> signal) {
  if (signal.empty()) return;
  double mean = 0.0;
  for (double x : signal) mean += x;
  mean /= static_cast<double>(signal.size());
  for (double& x : signal) x -= mean;
}

}  // namespace acc::radio
