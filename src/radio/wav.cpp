#include "radio/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace acc::radio {

namespace {

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_tag(std::vector<std::uint8_t>* out, const char* tag) {
  out->insert(out->end(), tag, tag + 4);
}

std::int16_t quantize(double v) {
  const double clipped = std::clamp(v, -1.0, 1.0);
  return static_cast<std::int16_t>(std::lround(clipped * 32767.0));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(
      b[off] | (static_cast<std::uint16_t>(b[off + 1]) << 8));
}

}  // namespace

std::vector<std::uint8_t> encode_wav_stereo(std::span<const double> left,
                                            std::span<const double> right,
                                            std::uint32_t sample_rate) {
  ACC_EXPECTS(left.size() == right.size());
  ACC_EXPECTS(sample_rate > 0);
  const std::uint32_t frames = static_cast<std::uint32_t>(left.size());
  const std::uint32_t data_bytes = frames * 2 /*ch*/ * 2 /*bytes*/;

  std::vector<std::uint8_t> out;
  out.reserve(44 + data_bytes);
  put_tag(&out, "RIFF");
  put_u32(&out, 36 + data_bytes);
  put_tag(&out, "WAVE");
  put_tag(&out, "fmt ");
  put_u32(&out, 16);              // PCM fmt chunk size
  put_u16(&out, 1);               // PCM
  put_u16(&out, 2);               // stereo
  put_u32(&out, sample_rate);
  put_u32(&out, sample_rate * 4);  // byte rate
  put_u16(&out, 4);                // block align
  put_u16(&out, 16);               // bits per sample
  put_tag(&out, "data");
  put_u32(&out, data_bytes);
  for (std::uint32_t i = 0; i < frames; ++i) {
    put_u16(&out, static_cast<std::uint16_t>(quantize(left[i])));
    put_u16(&out, static_cast<std::uint16_t>(quantize(right[i])));
  }
  return out;
}

bool write_wav_stereo(const std::string& path, std::span<const double> left,
                      std::span<const double> right,
                      std::uint32_t sample_rate) {
  const std::vector<std::uint8_t> bytes =
      encode_wav_stereo(left, right, sample_rate);
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

WavInfo parse_wav_header(std::span<const std::uint8_t> bytes) {
  WavInfo info;
  if (bytes.size() < 44) return info;
  if (std::memcmp(bytes.data(), "RIFF", 4) != 0 ||
      std::memcmp(bytes.data() + 8, "WAVE", 4) != 0 ||
      std::memcmp(bytes.data() + 12, "fmt ", 4) != 0 ||
      std::memcmp(bytes.data() + 36, "data", 4) != 0) {
    return info;
  }
  info.channels = get_u16(bytes, 22);
  info.sample_rate = get_u32(bytes, 24);
  info.bits_per_sample = get_u16(bytes, 34);
  const std::uint32_t data_bytes = get_u32(bytes, 40);
  if (info.channels == 0 || info.bits_per_sample == 0) return info;
  info.num_frames =
      data_bytes / (info.channels * (info.bits_per_sample / 8));
  info.valid = true;
  return info;
}

}  // namespace acc::radio
