// Audio quality metrics used to validate decoded output against the known
// test material (the synthesized broadcast carries pure tones, so tone SNR
// is a crisp end-to-end pass/fail criterion).
#pragma once

#include <cstddef>
#include <span>

namespace acc::radio {

/// Power of the component at `freq_hz` (Goertzel, rectangular window over
/// the whole span), normalized so a unit-amplitude sine reports 0.5.
[[nodiscard]] double goertzel_power(std::span<const double> signal,
                                    double sample_rate, double freq_hz);

/// Total mean power of the signal.
[[nodiscard]] double mean_power(std::span<const double> signal);

/// SNR (dB) of the tone at freq_hz: tone power over everything else
/// (including DC and distortion). `skip` drops leading samples so filter
/// transients don't count against the decoder.
[[nodiscard]] double tone_snr_db(std::span<const double> signal,
                                 double sample_rate, double freq_hz,
                                 std::size_t skip = 0);

/// Remove the mean (DC) in place — FM discriminators leave a DC offset
/// proportional to residual carrier error.
void remove_dc(std::span<double> signal);

}  // namespace acc::radio
