#include "radio/signal.hpp"

#include <cmath>

#include "common/check.hpp"

namespace acc::radio {

std::vector<double> render_tones(std::span<const Tone> tones,
                                 double sample_rate, std::size_t n) {
  ACC_EXPECTS(sample_rate > 0);
  std::vector<double> out(n, 0.0);
  for (const Tone& t : tones) {
    const double w = 2.0 * M_PI * t.freq_hz / sample_rate;
    for (std::size_t i = 0; i < n; ++i)
      out[i] += t.amplitude * std::sin(w * static_cast<double>(i) + t.phase);
  }
  return out;
}

std::vector<cplx> fm_modulate(std::span<const double> audio, double carrier_hz,
                              double deviation_hz, double sample_rate,
                              double amplitude) {
  ACC_EXPECTS(sample_rate > 0);
  ACC_EXPECTS(deviation_hz >= 0);
  std::vector<cplx> out;
  out.reserve(audio.size());
  // Phase integrates the instantaneous frequency carrier + dev * audio.
  double phase = 0.0;
  const double wc = 2.0 * M_PI * carrier_hz / sample_rate;
  const double wd = 2.0 * M_PI * deviation_hz / sample_rate;
  for (double a : audio) {
    phase += wc + wd * a;
    // Keep the accumulator small for numerical stability over long runs.
    if (phase > M_PI) phase -= 2.0 * M_PI;
    if (phase < -M_PI) phase += 2.0 * M_PI;
    out.emplace_back(amplitude * std::cos(phase), amplitude * std::sin(phase));
  }
  return out;
}

StereoSource render_stereo_tones(std::span<const Tone> left,
                                 std::span<const Tone> right,
                                 double sample_rate, std::size_t n) {
  StereoSource s;
  s.left = render_tones(left, sample_rate, n);
  s.right = render_tones(right, sample_rate, n);
  return s;
}

std::vector<cplx> synthesize_pal_stereo(const PalStereoConfig& cfg,
                                        const StereoSource& source) {
  ACC_EXPECTS(source.left.size() == source.right.size());
  const std::size_t n = source.left.size();
  // Carrier 1: (L+R)/2 to keep |audio| <= 1; carrier 2: R.
  std::vector<double> sum(n);
  for (std::size_t i = 0; i < n; ++i)
    sum[i] = 0.5 * (source.left[i] + source.right[i]);
  const std::vector<cplx> c1 =
      fm_modulate(sum, cfg.carrier1_hz, cfg.deviation_hz, cfg.sample_rate,
                  cfg.carrier_amplitude);
  const std::vector<cplx> c2 =
      fm_modulate(source.right, cfg.carrier2_hz, cfg.deviation_hz,
                  cfg.sample_rate, cfg.carrier_amplitude);
  std::vector<cplx> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = c1[i] + c2[i];
  return out;
}

}  // namespace acc::radio
