// Synthesis of a PAL-style stereo audio broadcast at complex baseband.
//
// The paper's demonstrator receives a PAL TV signal through an RF front-end;
// we substitute a synthesizer producing the same *structure* the decoder
// chain depends on (DESIGN.md, substitution table): two FM subcarriers on a
// complex baseband stream — carrier 1 modulated with (L+R), carrier 2 with
// (R), per the PAL/A2 stereo scheme the paper describes. Rates are
// configurable so tests can run at laptop-friendly scaled-down clocks while
// keeping the 64:1 input:audio ratio of the case study (two 8:1
// down-sampling stages).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace acc::radio {

using cplx = std::complex<double>;

/// A pure test tone.
struct Tone {
  double freq_hz = 0.0;
  double amplitude = 1.0;
  double phase = 0.0;
};

/// Render the sum of tones at `sample_rate` for `n` samples.
[[nodiscard]] std::vector<double> render_tones(std::span<const Tone> tones,
                                               double sample_rate,
                                               std::size_t n);

/// Frequency-modulate `audio` (|audio| <= 1) onto a complex carrier at
/// `carrier_hz` with peak deviation `deviation_hz`.
[[nodiscard]] std::vector<cplx> fm_modulate(std::span<const double> audio,
                                            double carrier_hz,
                                            double deviation_hz,
                                            double sample_rate,
                                            double amplitude = 1.0);

/// Configuration of the synthetic PAL stereo audio ensemble.
struct PalStereoConfig {
  /// Complex baseband sample rate of the front-end (the case study's ratio
  /// is 64x the audio rate; scaled-down defaults keep tests fast).
  double sample_rate = 64 * 44100.0;
  /// First audio subcarrier (carries L+R).
  double carrier1_hz = 180000.0;
  /// Second audio subcarrier (carries R).
  double carrier2_hz = 420000.0;
  /// FM peak deviation of each subcarrier.
  double deviation_hz = 50000.0;
  /// Per-carrier amplitude (the two carriers are summed).
  double carrier_amplitude = 0.45;
};

struct StereoSource {
  std::vector<double> left;   // rendered at cfg.sample_rate
  std::vector<double> right;  // rendered at cfg.sample_rate
};

/// Render L/R test material (tones) at the baseband rate.
[[nodiscard]] StereoSource render_stereo_tones(std::span<const Tone> left,
                                               std::span<const Tone> right,
                                               double sample_rate,
                                               std::size_t n);

/// Build the composite baseband signal: FM(L+R) at carrier1 + FM(R) at
/// carrier2 — exactly the decoding problem of the paper's Fig. 10.
[[nodiscard]] std::vector<cplx> synthesize_pal_stereo(
    const PalStereoConfig& cfg, const StereoSource& source);

}  // namespace acc::radio
