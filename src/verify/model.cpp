#include "verify/model.hpp"

#include <algorithm>

#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"

namespace acc::verify {

namespace {

/// Identity kernel: one output per input, no state.
class Pass final : public accel::StreamKernel {
 public:
  void push(CQ16 in, std::vector<CQ16>& out) override { out.push_back(in); }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {};
  }
  void restore_state(std::span<const std::int32_t>) override {}
  void reset() override {}
  [[nodiscard]] std::size_t state_words() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "verify.pass"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Pass>();
  }
};

/// Forward every k-th input: realizes an eta -> eta/k block rate. The
/// counter is per-stream context state and round-trips through
/// save_state/restore_state on context switches like any real kernel's.
class Decimate final : public accel::StreamKernel {
 public:
  explicit Decimate(std::int64_t k) : k_(k) { ACC_EXPECTS(k >= 1); }
  void push(CQ16 in, std::vector<CQ16>& out) override {
    if (++n_ == k_) {
      n_ = 0;
      out.push_back(in);
    }
  }
  [[nodiscard]] std::vector<std::int32_t> save_state() const override {
    return {static_cast<std::int32_t>(n_)};
  }
  void restore_state(std::span<const std::int32_t> state) override {
    ACC_EXPECTS(state.size() == 1);
    n_ = state[0];
  }
  void reset() override { n_ = 0; }
  [[nodiscard]] std::size_t state_words() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "verify.decim"; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override {
    return std::make_unique<Decimate>(k_);
  }

 private:
  std::int64_t k_;
  std::int64_t n_ = 0;
};

constexpr struct {
  Mutation m;
  const char* name;
} kMutationNames[] = {
    {Mutation::kPhantomCredit, "phantom_credit"},
    {Mutation::kAdmitOversized, "admit_oversized"},
    {Mutation::kDropNotify, "drop_notify"},
    {Mutation::kSlowAccel, "slow_accel"},
    {Mutation::kLyingHorizon, "lying_horizon"},
    {Mutation::kMidRoundReconfig, "midround_reconfig"},
};

}  // namespace

const char* mutation_name(Mutation m) {
  for (const auto& e : kMutationNames)
    if (e.m == m) return e.name;
  return "?";
}

std::optional<Mutation> mutation_from_string(std::string_view s) {
  for (const auto& e : kMutationNames)
    if (e.name == s) return e.m;
  return std::nullopt;
}

bool ModelSpec::has(Mutation m) const {
  return std::find(mutations.begin(), mutations.end(), m) != mutations.end();
}

bool build_model_spec(const json::Value& doc, const lint::LintInput& in,
                      ModelSpec& out, lint::LintReport& rep) {
  if (!in.spec.has_value()) {
    rep.add("C01", "$", "no system spec to build a verification model from");
    return false;
  }
  out.spec = *in.spec;
  out.etas = in.etas;
  const std::size_t n_streams = out.spec.num_streams();

  const json::Value* sec =
      doc.is_object() ? doc.find("verify") : nullptr;
  if (sec != nullptr && !sec->is_object()) {
    rep.add("C01", "$.verify", "\"verify\" must be an object");
    return false;
  }
  bool ok = true;
  const auto budget = [&](const char* key, std::int64_t lo, std::int64_t hi,
                          std::int64_t* dst) {
    const json::Value* v = sec != nullptr ? sec->find(key) : nullptr;
    if (v == nullptr) return;
    if (!v->is_int() || v->as_int() < lo || v->as_int() > hi) {
      rep.add("C01", std::string("$.verify.") + key,
              std::string("\"") + key + "\" must be an integer in [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "]");
      ok = false;
      return;
    }
    *dst = v->as_int();
  };
  budget("depth", 1, 64, &out.depth);
  budget("states", 1, 1000000, &out.states);
  budget("max_advance", 1, 100000000, &out.max_advance);

  if (const json::Value* etas = sec != nullptr ? sec->find("etas") : nullptr) {
    if (!etas->is_array() || etas->as_array().size() != n_streams) {
      rep.add("C01", "$.verify.etas",
              "\"etas\" must be an array with one block size per stream");
      return false;
    }
    out.etas.clear();
    for (std::size_t i = 0; i < etas->as_array().size(); ++i) {
      const json::Value& e = etas->as_array()[i];
      if (!e.is_int() || e.as_int() < 1) {
        rep.add("C01", "$.verify.etas[" + std::to_string(i) + "]",
                "model block sizes must be positive integers");
        return false;
      }
      out.etas.push_back(e.as_int());
    }
  }
  if (out.etas.empty()) {
    // No explicit block sizes anywhere: model the Algorithm 1 minimum.
    const sharing::BlockSizeResult sol =
        sharing::solve_block_sizes_fixpoint(out.spec);
    if (!sol.feasible) {
      rep.add("C01", "$.verify",
              "no model block sizes: config has no \"etas\" and Algorithm 1 "
              "is infeasible for this spec",
              "add \"etas\" to the verify section");
      return false;
    }
    out.etas = sol.eta;
  }

  out.block_out.assign(n_streams, 0);
  for (std::size_t s = 0; s < n_streams; ++s) {
    const std::int64_t eta = out.etas[s];
    std::int64_t bo = eta;  // default: no rate change through the chain
    if (s < in.block_out.size() && in.block_out[s] > 0) {
      const std::int64_t bo_decl = in.block_out[s];
      if (s < in.etas.size() && in.etas[s] > 0 && in.etas[s] % bo_decl == 0) {
        // The config declares block_out at ITS block size; what carries
        // over to a (possibly smaller) model block is the decimation
        // RATIO, not the absolute output count.
        const std::int64_t ratio = in.etas[s] / bo_decl;
        if (eta % ratio != 0) {
          rep.add("C01", "$.verify.etas[" + std::to_string(s) + "]",
                  "model eta " + std::to_string(eta) +
                      " is not a multiple of stream " + std::to_string(s) +
                      "'s decimation ratio " + std::to_string(ratio));
          return false;
        }
        bo = eta / ratio;
      } else {
        bo = bo_decl;
      }
    }
    if (bo < 1 || bo > eta || eta % bo != 0) {
      rep.add("C01", "$.verify.etas[" + std::to_string(s) + "]",
              "cannot build a verification model: block_out " +
                  std::to_string(bo) + " does not evenly divide eta " +
                  std::to_string(eta) + " for stream " + std::to_string(s));
      return false;
    }
    out.block_out[s] = bo;
  }

  if (const json::Value* muts =
          sec != nullptr ? sec->find("mutations") : nullptr) {
    if (!muts->is_array()) {
      rep.add("C01", "$.verify.mutations",
              "\"mutations\" must be an array of mutation names");
      return false;
    }
    for (std::size_t i = 0; i < muts->as_array().size(); ++i) {
      const json::Value& m = muts->as_array()[i];
      const std::optional<Mutation> mut =
          m.is_string() ? mutation_from_string(m.as_string()) : std::nullopt;
      if (!mut.has_value()) {
        rep.add("C01", "$.verify.mutations[" + std::to_string(i) + "]",
                "unknown mutation" +
                    (m.is_string() ? " '" + m.as_string() + "'" : ""),
                "one of: phantom_credit, admit_oversized, drop_notify, "
                "slow_accel, lying_horizon, midround_reconfig");
        ok = false;
      } else {
        out.mutations.push_back(*mut);
      }
    }
  }
  if (out.has(Mutation::kMidRoundReconfig) && n_streams == 0) {
    rep.add("C01", "$.verify.mutations",
            "midround_reconfig needs at least one stream to reconfigure");
    return false;
  }
  if (out.has(Mutation::kAdmitOversized)) {
    for (std::size_t s = 0; s < n_streams; ++s) {
      if (out.etas[s] < 2) {
        rep.add("C01", "$.verify.mutations",
                "admit_oversized needs every model eta >= 2");
        return false;
      }
    }
  }
  return ok;
}

Model::Model(const ModelSpec& spec)
    : ms(spec),
      sys(static_cast<std::int32_t>(spec.spec.chain.num_accelerators()) + 2),
      trace(1 << 16),
      fault(/*seed=*/1) {
  const std::size_t n = ms.spec.chain.num_accelerators();
  const sim::Cycle c0 =
      sharing::bottleneck_cycles_per_sample(ms.spec.chain);

  sim::ChainConfig cfg;
  cfg.name = "verify";
  cfg.base_node = 0;
  cfg.accel_cycles.clear();
  for (const sharing::Time rho : ms.spec.chain.accel_cycles_per_sample) {
    // kSlowAccel: the implementation is 4x slower than the BOTTLENECK the
    // Eq. 2 analysis assumed (4x rho alone could hide below epsilon/delta).
    cfg.accel_cycles.push_back(ms.has(Mutation::kSlowAccel) ? 4 * c0 : rho);
  }
  cfg.epsilon = ms.spec.chain.entry_cycles_per_sample;
  cfg.delta = ms.spec.chain.exit_cycles_per_sample;
  cfg.ni_capacity = ms.spec.chain.ni_capacity;
  cfg.exit_notify_lag = 4;
  cfg.trace = &trace;
  chain = sim::build_gateway_chain(sys, cfg);

  if (ms.has(Mutation::kDropNotify)) {
    // Deterministic, total notification loss with no retry policy. Wired
    // directly into the exit gateway — NOT through ChainConfig::fault, so
    // the rings and the entry stay fault-free and deterministic.
    sim::FaultSpec fs;
    fs.drop_probability = 1.0;
    fault.configure(sim::FaultSite::kExitNotify, fs);
    chain.exit->set_fault(&fault);
  }

  for (std::size_t s = 0; s < ms.spec.num_streams(); ++s) {
    const std::int64_t eta = ms.etas[s];
    const std::int64_t bo = ms.block_out[s];
    sim::CFifo& in = sys.add_fifo("in" + std::to_string(s), eta * 4);
    sim::CFifo& out = sys.add_fifo("out" + std::to_string(s), bo * 4);
    inputs.push_back(&in);
    outputs.push_back(&out);

    // kAdmitOversized: the route under-declares the block's output (the
    // kernels still produce eta samples), so the exit gateway is armed for
    // fewer samples than will arrive.
    const bool oversized = ms.has(Mutation::kAdmitOversized);
    const std::int64_t route_out = oversized ? eta - 1 : bo;
    const std::int64_t k = oversized ? 1 : eta / bo;

    std::vector<std::unique_ptr<accel::StreamKernel>> kernels;
    for (std::size_t a = 0; a < n; ++a) {
      if (a + 1 == n && k > 1)
        kernels.push_back(std::make_unique<Decimate>(k));
      else
        kernels.push_back(std::make_unique<Pass>());
    }
    sim::StreamRoute route;
    route.id = static_cast<sim::StreamId>(s);
    route.name = ms.spec.streams[s].name;
    route.eta = eta;
    route.out_per_block = route_out;
    route.input = &in;
    route.output = &out;
    route.reconfig = ms.spec.streams[s].reconfig;
    chain.add_stream(route, std::move(kernels));
  }

  if (ms.has(Mutation::kPhantomCredit)) {
    // One credit more than the downstream NI has slots: V02's conservation
    // equation is off by one from cycle 0 onward.
    const auto n32 = static_cast<std::int32_t>(n);
    const std::int32_t down = n32 > 1 ? 2 : n32 + 1;
    chain.accels[0]->set_downstream(down, /*tag=*/2,
                                    ms.spec.chain.ni_capacity + 1);
  }
  if (ms.has(Mutation::kLyingHorizon)) sys.add<LyingClock>();
  if (ms.has(Mutation::kMidRoundReconfig)) {
    // The rogue agent targets the first accelerator's first stream context:
    // the context is always registered (>= 1 stream is enforced at spec
    // build time), and the swap fires on the first non-drained tick.
    sys.add<MidRoundSwapper>(chain.accels[0], sim::StreamId{0});
  }
}

}  // namespace acc::verify
