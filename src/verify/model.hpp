// The bounded model checker's verification model: a small, cycle-exact
// instance of one gateway-managed accelerator chain, built from the same
// configuration grammar acc-lint parses (lint::parse_config), plus the
// "verify" section's budgets and seeded mutations.
//
// Modelling decisions (see docs/static_analysis.md):
//  - The model is FAULT-FREE: the config's "faults" section is ignored, so
//    every explored behavior is a protocol behavior, not a fault response.
//    The one exception is the kDropNotify mutation, which wires a
//    deterministic notification-drop fault directly into the exit gateway.
//  - Kernels are Pass/Decimate stubs chosen to realize each stream's
//    eta -> block_out rate; DSP contents are irrelevant to protocol safety,
//    and AcceleratorTile::snapshot_state hashes kernel state via
//    save_state(), so even the decimation counter is part of the canonical
//    state digest.
//  - The ConfigBus is a stateless cost model (src/sim/config_bus.hpp), not
//    a Component: it has no state to snapshot, and its cost is charged
//    inside the entry gateway's reconfiguration phase, which IS explored.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "accel/kernel.hpp"
#include "lint/linter.hpp"
#include "sharing/spec.hpp"
#include "sim/chain_builder.hpp"
#include "sim/fault.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace acc::verify {

/// Seeded defects for the V-rule failing fixtures. Each mutation produces
/// exactly one rule's counterexample on an otherwise clean model:
///   kPhantomCredit  -> V02 (one extra hardware credit on the first link)
///   kAdmitOversized -> V03 (block declared smaller than it really is)
///   kDropNotify     -> V01 (every pipeline-idle notification dropped, no
///                           retry policy: the entry drains forever)
///   kSlowAccel      -> V04 (accelerators 4x slower than the analysis rho)
///   kLyingHorizon   -> V05 (a component whose next_event overpromises)
///   kMidRoundReconfig -> V06 (a context switch fired mid-round, without
///                             the mode-change protocol's quiesce step)
enum class Mutation {
  kPhantomCredit,
  kAdmitOversized,
  kDropNotify,
  kSlowAccel,
  kLyingHorizon,
  kMidRoundReconfig,
};

[[nodiscard]] const char* mutation_name(Mutation m);
[[nodiscard]] std::optional<Mutation> mutation_from_string(std::string_view s);

/// Everything needed to (re)build a verification model deterministically.
/// Construction from a ModelSpec is a pure function — the explorer's
/// replay-based search and its --jobs workers each build private instances
/// that are bit-identical until stepped.
struct ModelSpec {
  sharing::SharedSystemSpec spec;
  std::vector<std::int64_t> etas;       // model block sizes, per stream
  std::vector<std::int64_t> block_out;  // output samples per block (>= 1)
  std::vector<Mutation> mutations;
  std::int64_t depth = 4;
  std::int64_t states = 256;
  std::int64_t max_advance = 200000;

  [[nodiscard]] bool has(Mutation m) const;
};

/// Parse the "verify" section (budgets, model etas, mutations) on top of an
/// already-linted LintInput. Structural problems become C01 diagnostics in
/// `rep`; returns false when no model can be built.
[[nodiscard]] bool build_model_spec(const json::Value& doc,
                                    const lint::LintInput& in, ModelSpec& out,
                                    lint::LintReport& rep);

/// V05 fixture component: declares a far-future event horizon while
/// mutating frozen-channel state every cycle — the canonical missed-wake
/// hazard the wake-soundness audit exists to catch.
class LyingClock final : public sim::Component {
 public:
  void tick(sim::Cycle now) override {
    (void)now;
    ++pulse_;
  }
  [[nodiscard]] sim::Cycle next_event(sim::Cycle now) const override {
    return now + 1000;  // a lie: tick() mutates frozen state every cycle
  }
  void snapshot_state(sim::StateHasher& h) const override { h.mix(pulse_); }

 private:
  std::int64_t pulse_ = 0;
};

/// V06 fixture component: a rogue control-plane agent that fires a context
/// switch the moment its accelerator holds an in-flight block — exactly the
/// mid-round reconfiguration the ModeChangeProtocol's quiesce step (see
/// src/ctrl/mode_change.hpp) exists to rule out. The tile's drained()
/// precondition converts the attempt into a precondition_error the explorer
/// reports as V06.
class MidRoundSwapper final : public sim::Component {
 public:
  MidRoundSwapper(sim::AcceleratorTile* accel, sim::StreamId victim)
      : accel_(accel), victim_(victim) {}
  void tick(sim::Cycle now) override {
    if (fired_ || accel_->drained()) return;
    fired_ = true;
    accel_->swap_context(victim_, now);  // throws: tile is not drained
  }
  [[nodiscard]] sim::Cycle next_event(sim::Cycle now) const override {
    return fired_ ? sim::kNeverCycle : now + 1;
  }
  void snapshot_state(sim::StateHasher& h) const override {
    h.mix(fired_ ? 1 : 0);
  }

 private:
  sim::AcceleratorTile* accel_;
  sim::StreamId victim_;
  bool fired_ = false;
};

/// One built model instance.
class Model {
 public:
  explicit Model(const ModelSpec& ms);
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const ModelSpec& ms;
  sim::System sys;
  sim::TraceLog trace;
  sim::FaultInjector fault;  // wired only under kDropNotify
  sim::GatewayChain chain;
  std::vector<sim::CFifo*> inputs;   // per stream
  std::vector<sim::CFifo*> outputs;  // per stream
};

}  // namespace acc::verify
