#include "verify/explorer.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "sharing/analysis.hpp"
#include "sim/flit.hpp"

namespace acc::verify {

namespace {

constexpr sim::Cycle kStepQuantum = 64;
constexpr sim::Cycle kRunChunk = 256;

/// Stream s feeds a constant sample so the digest of a state does not
/// depend on HOW MANY blocks were fed before it — block counts are
/// lifetime history, and folding them into the dedup key would make every
/// path unique.
sim::Flit stream_flit(std::int32_t s) {
  return sim::pack_sample(CQ16{Q16::from_raw(s + 1), Q16::from_raw(0)});
}

}  // namespace

Runner::Runner(const ModelSpec& ms)
    : model_(ms),
      admits_(ms.spec.num_streams()),
      drops_declared_(ms.has(Mutation::kDropNotify)) {
  // The initial state is a reachable state: a construction-seeded defect
  // (phantom_credit) must be caught with an EMPTY counterexample.
  check_invariants();
  if (!violations_.empty()) dead_ = true;
}

std::vector<Action> Runner::action_catalog() const {
  std::vector<Action> cat;
  const auto n = static_cast<std::int32_t>(model_.ms.spec.num_streams());
  for (std::int32_t s = 0; s < n; ++s)
    cat.push_back(Action{Action::Kind::kFeed, s});
  for (std::int32_t s = 0; s < n; ++s)
    cat.push_back(Action{Action::Kind::kDrain, s});
  cat.push_back(Action{Action::Kind::kStep, -1});
  cat.push_back(Action{Action::Kind::kRun, -1});
  return cat;
}

bool Runner::enabled(const Action& a) const {
  const sim::Cycle now = model_.sys.now();
  switch (a.kind) {
    case Action::Kind::kFeed: {
      const auto s = static_cast<std::size_t>(a.stream);
      return model_.inputs[s]->space_visible(now) >= model_.ms.etas[s];
    }
    case Action::Kind::kDrain:
      return model_.outputs[static_cast<std::size_t>(a.stream)]->fill_visible(
                 now) >= 1;
    case Action::Kind::kStep:
    case Action::Kind::kRun:
      return true;
  }
  return false;
}

void Runner::apply(const Action& a) {
  if (dead_) return;
  const sim::Cycle now = model_.sys.now();
  switch (a.kind) {
    case Action::Kind::kFeed: {
      const auto s = static_cast<std::size_t>(a.stream);
      for (std::int64_t i = 0; i < model_.ms.etas[s]; ++i)
        model_.inputs[s]->push(now, stream_flit(a.stream));
      check_invariants();
      break;
    }
    case Action::Kind::kDrain: {
      sim::CFifo* out = model_.outputs[static_cast<std::size_t>(a.stream)];
      while (out->can_pop(now)) (void)out->pop(now);
      check_invariants();
      break;
    }
    case Action::Kind::kStep:
      advance(kStepQuantum);
      break;
    case Action::Kind::kRun: {
      sim::Cycle spent = 0;
      while (!dead_ && spent < model_.ms.max_advance) {
        const sim::Cycle chunk =
            std::min<sim::Cycle>(kRunChunk, model_.ms.max_advance - spent);
        advance(chunk);
        spent += chunk;
        if (!dead_ && stable()) {
          check_stable();
          break;
        }
      }
      if (!dead_ && !stable()) advance_capped_ = true;
      break;
    }
  }
  if (!violations_.empty()) dead_ = true;
}

void Runner::advance(sim::Cycle cycles) {
  try {
    model_.sys.run_global_horizon(cycles);
  } catch (const acc::precondition_error& e) {
    if (model_.ms.has(Mutation::kMidRoundReconfig)) {
      // The seeded rogue agent reconfigures without quiescing; the tile's
      // drained() precondition is what catches it in flight.
      violations_.push_back(
          {"V06",
           std::string("reconfiguration without quiescence: ") + e.what(),
           "route every context switch through the mode-change protocol's "
           "quiesce step — the chain must be drained before reprogramming"});
    } else {
      violations_.push_back(
          {"V03", std::string("protocol precondition violated in flight: ") +
                      e.what(),
           "the gateway admitted a block whose declared shape the chain "
           "cannot honour"});
    }
    dead_ = true;
    return;
  } catch (const acc::invariant_error& e) {
    violations_.push_back(
        {"V03",
         std::string("protocol invariant violated in flight: ") + e.what(),
         "the admission contract (reserve the whole block's input and "
         "output) was not upheld"});
    dead_ = true;
    return;
  }
  check_invariants();
  check_trace();
}

bool Runner::stable() const {
  // The stepper just finished cycle now-1; a component whose horizon is
  // kNeverCycle can only be unblocked by another component, so if EVERY
  // horizon is kNeverCycle and both rings are drained, no component will
  // ever act again without an environment action.
  const sim::Cycle ticked = model_.sys.now() - 1;
  if (!model_.sys.ring().data().idle() || !model_.sys.ring().credit().idle())
    return false;
  for (std::size_t i = 0; i < model_.sys.num_components(); ++i) {
    if (model_.sys.component(i).next_event(ticked) != sim::kNeverCycle)
      return false;
  }
  return true;
}

bool Runner::chain_resting() const {
  if (!model_.chain.entry->is_idle() || !model_.chain.exit->idle())
    return false;
  for (const sim::AcceleratorTile* a : model_.chain.accels)
    if (!a->drained()) return false;
  return model_.sys.ring().data().idle() &&
         model_.sys.ring().credit().idle();
}

void Runner::check_stable() {
  if (chain_resting()) return;
  std::string stuck;
  if (!model_.chain.entry->is_idle()) stuck += " entry-gateway not idle;";
  if (!model_.chain.exit->idle()) stuck += " exit-gateway still armed;";
  for (std::size_t i = 0; i < model_.chain.accels.size(); ++i) {
    if (!model_.chain.accels[i]->drained())
      stuck += " " + model_.chain.accels[i]->name() + " not drained;";
  }
  if (stuck.empty()) stuck = " in-flight ring traffic;";
  violations_.push_back(
      {"V01",
       "deadlock: the model reached a stable state (no component will ever "
       "act again) with unfinished work:" +
           stuck,
       "a dropped or unretried pipeline-idle notification leaves the entry "
       "gateway draining forever — enable the gateway retry policy or fix "
       "the notification path"});
}

void Runner::check_invariants() {
  // --- V02: hardware-credit conservation, per chain link ------------------
  // For each producer -> consumer NI link, the ni_capacity slot tokens are
  // partitioned among: credits held by the producer, data flits in flight
  // on the data ring toward the consumer, samples buffered in the consumer
  // NI queue, credit returns accepted but not yet injected, and credit
  // flits in flight back to the producer. Any other total means a credit
  // was forged or leaked.
  const std::int64_t cap = model_.ms.spec.chain.ni_capacity;
  const auto n = static_cast<std::int32_t>(model_.chain.accels.size());
  const sim::Ring& data = model_.sys.ring().data();
  const sim::Ring& credit = model_.sys.ring().credit();
  for (std::int32_t l = 0; l <= n; ++l) {
    const std::int64_t up_credits =
        l == 0 ? model_.chain.entry->credits()
               : model_.chain.accels[static_cast<std::size_t>(l - 1)]->credits();
    const std::int32_t down_node = l + 1;  // chain is laid out from node 0
    std::int64_t down_fill = 0;
    std::int64_t down_pending = 0;
    std::string down_name;
    if (l == n) {
      down_fill = model_.chain.exit->input_fill();
      down_pending = model_.chain.exit->pending_returns();
      down_name = "exit";
    } else {
      const sim::AcceleratorTile* t =
          model_.chain.accels[static_cast<std::size_t>(l)];
      down_fill = t->input_fill();
      down_pending = t->pending_returns();
      down_name = t->name();
    }
    const std::int64_t in_flight = data.count_to(down_node);
    const std::int64_t returning = credit.count_to(l);
    const std::int64_t total =
        up_credits + in_flight + down_fill + down_pending + returning;
    if (total != cap) {
      violations_.push_back(
          {"V02",
           "credit conservation broken on link " + std::to_string(l) +
               " (-> " + down_name + "): credits " +
               std::to_string(up_credits) + " + in-flight " +
               std::to_string(in_flight) + " + buffered " +
               std::to_string(down_fill) + " + pending-return " +
               std::to_string(down_pending) + " + returning " +
               std::to_string(returning) + " = " + std::to_string(total) +
               ", NI capacity is " + std::to_string(cap),
           "a producer was granted more initial credits than the consumer "
           "NI has slots (or a credit was dropped)"});
    }
  }

  // --- V03: gateway protocol safety --------------------------------------
  if (!model_.chain.exit->idle()) {
    const sim::CFifo* out = model_.chain.exit->armed_output();
    if (out != nullptr) {
      const std::int64_t owed = model_.chain.exit->expected_outputs();
      if (out->true_fill() + owed > out->capacity()) {
        violations_.push_back(
            {"V03",
             "armed block cannot fit: output C-FIFO '" + out->name() +
                 "' holds " + std::to_string(out->true_fill()) +
                 " with " + std::to_string(owed) + " still owed, capacity " +
                 std::to_string(out->capacity()),
             "the admission space check must reserve the whole block's "
             "output before arming the exit gateway"});
      }
    }
  }
  if (!drops_declared_ && model_.chain.exit->notifications_dropped() > 0) {
    violations_.push_back(
        {"V03",
         "pipeline-idle notification dropped in a model with no declared "
         "exit_notify fault",
         "the verification model is fault-free by construction; a drop "
         "here is a protocol defect"});
  }
}

void Runner::check_trace() {
  // --- V04: Eq. 2 bound soundness ----------------------------------------
  // Every admit -> block.delivered pair must complete within tau_hat plus
  // a fixed interconnect slack: tau_hat models the pipelined pass but not
  // the ring hop latency (1 cycle/hop, n+2 hops, NI depth 4 covers queuing)
  // nor sub-cycle rounding (the conformance suite's precedent slack, 16).
  const auto& events = model_.trace.events();
  const std::int64_t n_accels =
      static_cast<std::int64_t>(model_.chain.accels.size());
  const sim::Cycle slack = (n_accels + 2) * 4 + 16;
  for (; trace_scanned_ < events.size(); ++trace_scanned_) {
    const sim::TraceEvent& e = events[trace_scanned_];
    if (e.event == "admit") {
      admits_[static_cast<std::size_t>(e.value)].push_back(e.cycle);
    } else if (e.event == "block.delivered") {
      auto& q = admits_[static_cast<std::size_t>(e.value)];
      if (q.empty()) continue;  // defensive: unmatched delivery
      const sim::Cycle admitted = q.front();
      q.erase(q.begin());
      const auto s = static_cast<std::size_t>(e.value);
      const sharing::Time bound =
          sharing::tau_hat(model_.ms.spec, s, model_.ms.etas[s]);
      const sim::Cycle took = e.cycle - admitted;
      if (took > bound + slack) {
        violations_.push_back(
            {"V04",
             "block of stream '" + model_.ms.spec.streams[s].name +
                 "' admitted at cycle " + std::to_string(admitted) +
                 " delivered at cycle " + std::to_string(e.cycle) + " (" +
                 std::to_string(took) + " cycles) exceeds tau_hat " +
                 std::to_string(bound) + " + slack " + std::to_string(slack),
             "Eq. 2 is not a sound bound for this implementation — a stage "
             "is slower than the rho/epsilon/delta the analysis was given"});
      }
    }
  }
}

ExploreResult explore(const ModelSpec& ms, int jobs) {
  ExploreResult res;

  std::vector<Action> catalog;
  std::uint64_t root_digest = 0;
  {
    Runner root(ms);
    catalog = root.action_catalog();
    if (!root.violations().empty()) {
      res.violations = root.violations();
      res.stats.states = 1;
      return res;
    }
    root_digest = root.digest();
  }

  std::unordered_set<std::uint64_t> seen{root_digest};
  res.stats.states = 1;

  struct Child {
    int status = 0;  // 0 = disabled (or unused slot), 1 = clean, 2 = violated
    std::vector<Violation> violations;
    std::uint64_t digest = 0;
    bool capped = false;
  };

  std::vector<std::vector<Action>> frontier{{}};
  const std::size_t n_actions = catalog.size();
  ThreadPool pool(static_cast<std::size_t>(std::max(jobs, 1)));

  for (std::int64_t d = 1; d <= ms.depth && !frontier.empty(); ++d) {
    std::vector<Child> children(frontier.size() * n_actions);
    for (std::size_t ni = 0; ni < frontier.size(); ++ni) {
      for (std::size_t ai = 0; ai < n_actions; ++ai) {
        pool.submit([&, ni, ai](std::size_t) {
          Child& c = children[ni * n_actions + ai];
          Runner r(ms);
          for (const Action& a : frontier[ni]) r.apply(a);
          if (!r.enabled(catalog[ai])) return;
          r.apply(catalog[ai]);
          if (!r.violations().empty()) {
            c.status = 2;
            c.violations = r.violations();
          } else {
            c.status = 1;
            c.digest = r.digest();
            c.capped = r.advance_capped();
          }
        });
      }
    }
    pool.wait_idle();

    // Sequential merge in (node, action) order: the first violation in
    // deterministic order wins, whatever the worker schedule was.
    std::vector<std::vector<Action>> next;
    for (std::size_t ni = 0; ni < frontier.size(); ++ni) {
      for (std::size_t ai = 0; ai < n_actions; ++ai) {
        const Child& c = children[ni * n_actions + ai];
        if (c.status == 0) continue;
        if (c.status == 2) {
          res.violations = c.violations;
          res.counterexample = frontier[ni];
          res.counterexample.push_back(catalog[ai]);
          res.stats.depth = d;
          return res;
        }
        if (c.capped) res.stats.truncated = true;
        if (!seen.insert(c.digest).second) continue;  // already explored
        if (res.stats.states >= ms.states) {
          res.stats.truncated = true;
          continue;
        }
        ++res.stats.states;
        next.push_back(frontier[ni]);
        next.back().push_back(catalog[ai]);
      }
    }
    res.stats.depth = d;
    frontier = std::move(next);
  }
  return res;
}

}  // namespace acc::verify
