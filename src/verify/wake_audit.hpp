// Wake-soundness audit (rule V05): cross-checks every component's
// next_event() horizon against its actual frozen-state evolution under
// DENSE stepping.
//
// The wake-list stepper's exactness rests on one promise (see
// src/sim/system.hpp): a wake-list-safe component whose cached horizon lies
// in the future must not change frozen state before that horizon unless it
// is woken through the WakeHub. The audit installs itself as every
// component's hub, arms a frozen-channel digest (StateHasher base 0 —
// absolute bit-stability is exactly the property) whenever a component
// declares a horizon beyond now+1, and re-hashes after each densely ticked
// cycle: any digest change strictly inside the declared quiescent window,
// with no wake delivered, is a missed-wake hazard — the wake-list stepper
// would have skipped a cycle where dense semantics act.
//
// Run under run_dense only: the dense stepper never installs its own hubs
// (it sets wake_ready_ = false), so the audit's hub installation survives,
// and every cycle is ticked so no window goes unobserved.
//
// Exempt from the digest check: wake-UNSAFE components (the stepper
// re-queries them every active cycle, so a stale horizon cannot hurt) and
// components declaring frozen_skip_replay() (their frozen state evolves
// deterministically across a parked window and skip_to replays it — e.g.
// the ProcessorTile's budget-replenishment grid; the differential stepper
// suite certifies that replay instead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hpp"
#include "sim/wake.hpp"

namespace acc::verify {

struct WakeViolation {
  std::size_t slot = 0;      // component registration index
  sim::Cycle at = 0;         // cycle the frozen state changed
  sim::Cycle declared = 0;   // horizon the component had declared
  sim::Cycle armed_at = 0;   // cycle the horizon was declared
};

class WakeAudit final : public sim::WakeHub {
 public:
  /// Install the audit as every component's (and both rings') wake hub.
  /// The system must then be advanced ONLY through audited_cycle().
  explicit WakeAudit(sim::System& sys);

  /// Dense-tick one cycle, then verify every armed component's digest.
  void audited_cycle();

  /// Drive until `pred()` holds or `max_cycles` elapse; returns true when
  /// the predicate fired.
  template <typename Pred>
  bool run_until(Pred&& pred, sim::Cycle max_cycles) {
    for (sim::Cycle i = 0; i < max_cycles; ++i) {
      if (pred()) return true;
      audited_cycle();
    }
    return pred();
  }

  [[nodiscard]] const std::vector<WakeViolation>& violations() const {
    return violations_;
  }

  // --- WakeHub ----------------------------------------------------------
  void wake(sim::Component& c) override;
  void ring_activity(sim::Ring& r) override { (void)r; }
  void ring_delivery(sim::Ring& r, std::int32_t node) override;
  void fault_site_changed(sim::FaultSite site) override { (void)site; }

 private:
  struct Watch {
    bool armed = false;
    bool woken = true;  // a wake (or its own tick) voids the window
    sim::Cycle horizon = 0;
    sim::Cycle armed_at = 0;
    std::uint64_t digest = 0;
  };

  [[nodiscard]] std::uint64_t frozen_digest(std::size_t slot) const;
  void rearm(std::size_t slot, sim::Cycle ticked);

  sim::System& sys_;
  std::vector<Watch> watches_;
  std::vector<std::int32_t> node_owner_;  // ring node -> component slot
  std::vector<WakeViolation> violations_;
};

}  // namespace acc::verify
