#include "verify/wake_audit.hpp"

namespace acc::verify {

WakeAudit::WakeAudit(sim::System& sys) : sys_(sys) {
  const std::size_t n = sys_.num_components();
  watches_.resize(n);
  node_owner_.assign(static_cast<std::size_t>(sys_.ring().data().nodes()), -1);
  for (std::size_t i = 0; i < n; ++i) {
    sim::Component& c = sys_.component(i);
    c.set_wake_hub(this, i);
    const std::int32_t node = c.ring_node();
    if (node >= 0) node_owner_[static_cast<std::size_t>(node)] =
        static_cast<std::int32_t>(i);
  }
  sys_.ring().data().set_wake_hub(this);
  sys_.ring().credit().set_wake_hub(this);
}

void WakeAudit::wake(sim::Component& c) {
  const std::size_t slot = c.wake_slot();
  if (slot < watches_.size()) watches_[slot].woken = true;
}

void WakeAudit::ring_delivery(sim::Ring& r, std::int32_t node) {
  (void)r;
  const std::int32_t owner = node_owner_[static_cast<std::size_t>(node)];
  if (owner >= 0) watches_[static_cast<std::size_t>(owner)].woken = true;
}

std::uint64_t WakeAudit::frozen_digest(std::size_t slot) const {
  // Base 0: the audit checks ABSOLUTE bit-stability between two dense
  // cycles, so deadlines must not be canonicalized away.
  sim::StateHasher h(0);
  sys_.component(slot).snapshot_state(h);
  return h.frozen();
}

void WakeAudit::rearm(std::size_t slot, sim::Cycle ticked) {
  Watch& w = watches_[slot];
  const sim::Cycle h = sys_.component(slot).next_event(ticked);
  // A horizon of ticked+1 ("I act next cycle") opens no skip window; only
  // horizons strictly beyond it are promises the wake-list stepper would
  // cash in by freezing the component.
  w.armed = h > ticked + 1;
  w.woken = false;
  if (w.armed) {
    w.horizon = h;
    w.armed_at = ticked;
    w.digest = frozen_digest(slot);
  }
}

void WakeAudit::audited_cycle() {
  // run_dense never installs its own hubs (it only marks the wake-list's
  // cached bookkeeping stale), so our installation from the constructor
  // stays live and every request_wake routes here.
  sys_.run_dense(1);
  const sim::Cycle ticked = sys_.now() - 1;
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    // Wake-unsafe components are exempt (the wake-list stepper re-queries
    // them every active cycle instead of trusting their horizons), and so
    // are components whose skip_to replays frozen-channel state — their
    // in-window dense evolution is deterministic grid replay, not a missed
    // wake (see Component::frozen_skip_replay).
    if (!sys_.component(i).wake_list_safe() ||
        sys_.component(i).frozen_skip_replay())
      continue;
    Watch& w = watches_[i];
    if (w.woken || !w.armed || ticked >= w.horizon) {
      rearm(i, ticked);
      continue;
    }
    // Inside a declared quiescent window with no wake delivered: the
    // frozen digest must be bit-identical to the one captured when the
    // horizon was declared.
    if (frozen_digest(i) != w.digest) {
      violations_.push_back(WakeViolation{i, ticked, w.horizon, w.armed_at});
      rearm(i, ticked);
    }
  }
}

}  // namespace acc::verify
