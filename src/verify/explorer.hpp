// Bounded exhaustive exploration of one verification model's reachable
// state space.
//
// The System is non-copyable, so the search is REPLAY-BASED: a state is its
// action path from the initial state, and expanding a frontier node means
// rebuilding a fresh Model (a pure function of the ModelSpec) and replaying
// the path. Deduplication keys on System::state_digest() — the canonical
// frozen digest with deadlines taken relative to now, so the same protocol
// situation reached at different absolute cycles collapses.
//
// Determinism: frontier nodes are expanded in insertion order and actions
// in catalog order (feed s0.., drain s0.., step, run). Workers fill a
// preallocated child table indexed (node, action); the merge walks that
// table sequentially, so the FIRST violation in (depth, node, action) order
// wins for every --jobs value — byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/model.hpp"
#include "verify/verify.hpp"

namespace acc::verify {

/// One temporal-safety violation, already phrased for the lint report.
struct Violation {
  std::string rule;  // "V01".."V04" (V05 comes from the wake audit)
  std::string message;
  std::string hint;
};

struct ExploreStats {
  std::int64_t states = 0;  // distinct canonical states reached
  std::int64_t depth = 0;   // deepest fully-expanded level
  bool truncated = false;   // a budget clipped the search
};

struct ExploreResult {
  /// Every rule violated at the first violating state (empty = clean
  /// within budget).
  std::vector<Violation> violations;
  /// Action path to the violating state (empty = initial state violates).
  std::vector<Action> counterexample;
  ExploreStats stats;
};

/// One model instance plus the machinery to drive it through environment
/// actions while checking the V01-V04 oracles. Also used standalone by
/// render_counterexample to replay a reported path.
class Runner {
 public:
  explicit Runner(const ModelSpec& ms);

  /// Is `a` enabled in the current state? (kStep/kRun always are.)
  [[nodiscard]] bool enabled(const Action& a) const;

  /// Apply one enabled action, running every oracle at each advance
  /// boundary. Violations accumulate in violations(); once any is found
  /// the runner is terminal (apply becomes a no-op).
  void apply(const Action& a);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t digest() const { return model_.sys.state_digest(); }
  [[nodiscard]] Model& model() { return model_; }
  /// A kRun spent the whole max_advance budget without reaching stability.
  [[nodiscard]] bool advance_capped() const { return advance_capped_; }

  /// The full deterministic action catalog for this model (expansion order).
  [[nodiscard]] std::vector<Action> action_catalog() const;

 private:
  void advance(sim::Cycle cycles);
  void check_invariants();   // V02 conservation, V03 protocol safety
  void check_trace();        // V04 Eq. 2 bound on new admit->delivered pairs
  void check_stable();       // V01 once a kRun reaches stability
  [[nodiscard]] bool stable() const;
  [[nodiscard]] bool chain_resting() const;

  Model model_;
  std::vector<Violation> violations_;
  std::size_t trace_scanned_ = 0;
  /// Outstanding "admit" cycles per stream, FIFO (paired with the stream's
  /// "block.delivered" events in order).
  std::vector<std::vector<sim::Cycle>> admits_;
  bool drops_declared_ = false;  // exit_notify faults are expected
  bool dead_ = false;            // an oracle fired or the model threw
  bool advance_capped_ = false;  // a kRun never reached stability
};

/// Breadth-first exploration to the spec's depth/state budgets with `jobs`
/// replay workers. Deterministic for any `jobs` (see file header).
[[nodiscard]] ExploreResult explore(const ModelSpec& ms, int jobs);

}  // namespace acc::verify
