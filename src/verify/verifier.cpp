#include "verify/verify.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "lint/rules.hpp"
#include "sim/flit.hpp"
#include "verify/explorer.hpp"
#include "verify/model.hpp"
#include "verify/wake_audit.hpp"

namespace acc::verify {

namespace {

sim::Flit stream_flit(std::int32_t s) {
  return sim::pack_sample(CQ16{Q16::from_raw(s + 1), Q16::from_raw(0)});
}

/// Re-apply every VALID suppression to a report that gained diagnostics
/// after the initial lint pass (the V* findings must honour the same
/// "suppress" section and --allow flags as lint rules). Invalid entries
/// were already turned into C01 diagnostics by the linter — passing them
/// again would be harmless, but filtering keeps the call minimal.
void apply_suppressions(lint::LintReport& rep,
                        const std::vector<std::string>& config_suppress,
                        const lint::LintOptions& lint_opts) {
  std::vector<std::string> valid;
  for (const std::string& s : config_suppress)
    if (lint::find_rule(s) != nullptr) valid.push_back(s);
  for (const std::string& s : lint_opts.suppress)
    if (lint::find_rule(s) != nullptr) valid.push_back(s);
  if (!valid.empty()) rep.suppress(valid);
}

void apply_cli_overrides(const VerifyOptions& opts, ModelSpec& ms) {
  if (opts.depth > 0) ms.depth = opts.depth;
  if (opts.states > 0) ms.states = opts.states;
  if (opts.max_advance > 0) ms.max_advance = opts.max_advance;
}

/// Wake-soundness audit (V05): drive a fresh model DENSELY through two
/// feed -> run-to-rest rounds with the audit installed as every
/// component's wake hub. Two rounds cover both the cold-start admission
/// path and re-admission out of the drained state. Only run when the
/// exploration was clean — an exploration violation means the model
/// misbehaves, and auditing wake plumbing on a broken protocol would
/// produce noise, not signal.
void run_wake_audit(const ModelSpec& ms, lint::LintReport& rep) {
  Model m(ms);
  WakeAudit audit(m.sys);
  const auto resting = [&] {
    for (const sim::CFifo* in : m.inputs)
      if (in->true_fill() > 0) return false;
    if (!m.chain.entry->is_idle() || !m.chain.exit->idle()) return false;
    for (const sim::AcceleratorTile* a : m.chain.accels)
      if (!a->drained()) return false;
    return m.sys.ring().data().idle() && m.sys.ring().credit().idle();
  };
  for (int round = 0; round < 2; ++round) {
    const sim::Cycle now = m.sys.now();
    for (std::size_t s = 0; s < m.inputs.size(); ++s) {
      for (std::int64_t i = 0; i < ms.etas[s]; ++i)
        m.inputs[s]->push(now, stream_flit(static_cast<std::int32_t>(s)));
    }
    (void)audit.run_until(resting, ms.max_advance);
    const sim::Cycle drain_now = m.sys.now();
    for (sim::CFifo* out : m.outputs)
      while (out->can_pop(drain_now)) (void)out->pop(drain_now);
  }
  // One diagnostic per offending component slot (a lying horizon would
  // otherwise fire every cycle).
  std::set<std::size_t> reported;
  std::int64_t extra = 0;
  for (const WakeViolation& v : audit.violations()) {
    if (!reported.insert(v.slot).second) {
      ++extra;
      continue;
    }
    rep.add("V05", "$.verify",
            "component slot " + std::to_string(v.slot) +
                " declared next_event = " +
                (v.declared == sim::kNeverCycle
                     ? std::string("never")
                     : std::to_string(v.declared)) +
                " at cycle " + std::to_string(v.armed_at) +
                " but its frozen state changed at cycle " +
                std::to_string(v.at) + " without a wake",
            "its next_event() overpromises quiescence, or an interaction "
            "point fails to route a wake (see sim/wake.hpp) — the wake-list "
            "stepper would diverge from dense semantics here");
  }
  if (extra > 0) {
    rep.add("V05", "$.verify",
            std::to_string(extra) +
                " further frozen-state changes inside declared quiescent "
                "windows were elided (same components)",
            "fix the first finding per component and re-run");
  }
}

}  // namespace

std::string action_name(const Action& a) {
  switch (a.kind) {
    case Action::Kind::kFeed:
      return "feed s" + std::to_string(a.stream);
    case Action::Kind::kDrain:
      return "drain s" + std::to_string(a.stream);
    case Action::Kind::kStep:
      return "step";
    case Action::Kind::kRun:
      return "run";
  }
  return "?";
}

VerifyResult verify_config_json(const json::Value& doc,
                                const std::string& name,
                                const VerifyOptions& opts,
                                const lint::LintOptions& lint_opts) {
  VerifyResult r{lint::lint_config_json(doc, name, lint_opts)};
  if (!r.report.clean()) return r;  // lint gate: model nothing unsound

  // Re-parse for the model inputs; the scratch report stays clean because
  // the gate above already passed the same parse.
  lint::LintReport scratch(name);
  const lint::LintInput in = lint::parse_config(doc, name, scratch);

  ModelSpec ms;
  if (!build_model_spec(doc, in, ms, r.report)) {
    apply_suppressions(r.report, in.suppress, lint_opts);
    return r;
  }
  apply_cli_overrides(opts, ms);

  const ExploreResult ex = explore(ms, opts.jobs);
  r.explored = true;
  r.states_explored = ex.stats.states;
  r.depth_reached = ex.stats.depth;
  r.truncated = ex.stats.truncated;
  r.counterexample = ex.counterexample;
  for (const Violation& v : ex.violations)
    r.report.add(v.rule, "$.verify", v.message, v.hint);

  if (ex.violations.empty()) run_wake_audit(ms, r.report);

  apply_suppressions(r.report, in.suppress, lint_opts);
  return r;
}

VerifyResult verify_config_text(const std::string& text,
                                const std::string& name,
                                const VerifyOptions& opts,
                                const lint::LintOptions& lint_opts) {
  const std::optional<json::Value> doc = json::parse(text);
  if (!doc.has_value()) {
    VerifyResult r{lint::LintReport(name)};
    r.report.add("C01", "$", "configuration is not valid JSON");
    return r;
  }
  return verify_config_json(*doc, name, opts, lint_opts);
}

std::string render_counterexample(const json::Value& doc,
                                  const std::string& name,
                                  const VerifyResult& r,
                                  const VerifyOptions& opts) {
  if (r.report.clean() || !r.explored) return {};

  // Deterministic replay against a fresh model: same spec, same actions,
  // same trajectory — the trace tail is the failing interleaving. When the
  // replay reproduces nothing (the findings came from the wake audit, not
  // the exploration), there is no counterexample to render.
  lint::LintReport scratch(name);
  const lint::LintInput in = lint::parse_config(doc, name, scratch);
  ModelSpec ms;
  if (!build_model_spec(doc, in, ms, scratch)) return {};
  apply_cli_overrides(opts, ms);

  Runner runner(ms);
  for (const Action& a : r.counterexample) runner.apply(a);
  if (runner.violations().empty()) return {};

  std::string out;
  out += "counterexample (" + name + "):\n";
  if (r.counterexample.empty()) {
    out += "  the INITIAL state violates the property — no actions needed\n";
  } else {
    for (std::size_t i = 0; i < r.counterexample.size(); ++i) {
      out += "  " + std::to_string(i + 1) + ". " +
             action_name(r.counterexample[i]) + "\n";
    }
  }
  for (const Violation& v : runner.violations())
    out += "  violates " + v.rule + ": " + v.message + "\n";

  const auto& events = runner.model().trace.events();
  if (!events.empty()) {
    out += "  trace tail:\n";
    const std::size_t first = events.size() > 12 ? events.size() - 12 : 0;
    for (std::size_t i = first; i < events.size(); ++i) {
      out += "    cycle " + std::to_string(events[i].cycle) + "  " +
             events[i].source + "  " + events[i].event + "  " +
             std::to_string(events[i].value) + "\n";
    }
  }
  return out;
}

}  // namespace acc::verify
