// acc-verify: exhaustive bounded model checking of the sharing protocol.
//
// Where acc-lint (src/lint/) checks a configuration STATICALLY, this layer
// builds a small cycle-exact instance of the gateway-managed accelerator
// chain the configuration describes and exhaustively explores every
// reachable state under all interleavings of the environment's actions
// (producers feeding blocks, consumers draining output, time advancing),
// bounded by a depth and state budget. Along every explored path it checks
// the temporal-safety rules V01-V06 of the shared lint catalog:
//
//   V01 verify-deadlock            no reachable stable-but-unfinished state
//   V02 verify-credit-conservation credits + in-flight + buffered == NI cap
//   V03 verify-gateway-protocol    admission/NI/notification protocol safety
//   V04 verify-bound-soundness     block service time <= Eq. 2 tau_hat
//   V05 verify-wake-soundness      no frozen-state change inside a declared
//                                  quiescent window (wake-list audit)
//   V06 verify-quiesce-before-reconfig  no context switch while the chain
//                                  still holds an in-flight block
//
// Findings are reported through the same LintReport / acc-lint-v1 JSON
// document as acc-lint, so one schema and one suppression mechanism cover
// both tools. Exploration is DETERMINISTIC: the first violation in
// (depth, frontier-order, action-order) is reported with a replayable
// counterexample, byte-identical for any --jobs value.
//
// The verification model is built FAULT-FREE (a config's "faults" section
// is ignored here — fault robustness is the simulator's job, see
// docs/robustness.md); seeded defects are injected via the "verify"
// section's "mutations" list instead, which is how the rule catalog's
// failing fixtures are produced. See docs/static_analysis.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "lint/linter.hpp"
#include "sim/ring.hpp"

namespace acc::verify {

/// CLI-level overrides for the exploration budgets. Values <= 0 defer to
/// the config's "verify" section (and its defaults: depth 4, states 256,
/// max_advance 200000).
struct VerifyOptions {
  std::int64_t depth = -1;        ///< max environment actions along a path
  std::int64_t states = -1;       ///< max distinct canonical states
  std::int64_t max_advance = -1;  ///< cycles one "run" action may consume
  int jobs = 1;                   ///< frontier-expansion workers
};

/// One environment action of the explored transition system. kFeed pushes
/// one full block (eta_s samples) into stream s's input C-FIFO; kDrain pops
/// every reader-visible sample from stream s's output C-FIFO; kStep
/// advances the model a fixed small quantum (interleaves the environment
/// with a block mid-flight); kRun advances until the model is stable (no
/// component will ever act again without environment input) or the
/// max_advance budget is spent.
struct Action {
  enum class Kind : std::uint8_t { kFeed, kDrain, kStep, kRun };
  Kind kind = Kind::kRun;
  std::int32_t stream = -1;  // kFeed / kDrain only

  friend bool operator==(const Action& a, const Action& b) {
    return a.kind == b.kind && a.stream == b.stream;
  }
};

/// Human-readable action ("feed s0", "drain s1", "step", "run").
[[nodiscard]] std::string action_name(const Action& a);

struct VerifyResult {
  lint::LintReport report;
  /// Environment-action sequence reaching the first violating state (empty
  /// when the violation is in the initial state, or when clean).
  std::vector<Action> counterexample;
  std::int64_t states_explored = 0;
  std::int64_t depth_reached = 0;
  /// A budget (states or max_advance) clipped the search: "clean" means
  /// "clean within the declared budgets", which is always the claim.
  bool truncated = false;
  /// False when the lint gate failed or no model could be built — the
  /// report then carries only lint/C01 diagnostics.
  bool explored = false;
};

/// Lint the configuration (the full acc-lint rule set), and when it is
/// clean, build the verification model and run the bounded exploration plus
/// the wake-soundness audit. V* findings are appended to the same report;
/// suppressions (config "suppress" section and `lint_opts.suppress`) apply
/// to them exactly as to lint rules.
[[nodiscard]] VerifyResult verify_config_json(
    const json::Value& doc, const std::string& name,
    const VerifyOptions& opts = {}, const lint::LintOptions& lint_opts = {});

/// Same, from text; a syntax error yields a single C01 diagnostic.
[[nodiscard]] VerifyResult verify_config_text(
    const std::string& text, const std::string& name,
    const VerifyOptions& opts = {}, const lint::LintOptions& lint_opts = {});

/// Deterministically replay a counterexample against a fresh model built
/// from the same configuration, rendering the action sequence and the tail
/// of the replayed TraceLog — the failing interleaving, as evidence. An
/// empty counterexample with a violating report means the INITIAL state
/// violates (construction-seeded defects), which is rendered as such.
/// Empty string when the report is clean or nothing was explored.
[[nodiscard]] std::string render_counterexample(const json::Value& doc,
                                                const std::string& name,
                                                const VerifyResult& r,
                                                const VerifyOptions& opts = {});

}  // namespace acc::verify
