// Complex FIR filtering with built-in down-sampling — the paper's
// "LPF + down-sampler" accelerator (a 33-tap complex FIR with programmable
// 8:1 decimation in the case study).
#pragma once

#include <cstdint>
#include <vector>

#include "accel/kernel.hpp"
#include "common/fixed_point.hpp"

namespace acc::accel {

/// Windowed-sinc (Hamming) low-pass design. `cutoff` is the -6 dB edge as a
/// fraction of the sample rate (0 < cutoff < 0.5). Returns `taps` real
/// coefficients normalized to unit DC gain.
[[nodiscard]] std::vector<double> design_lowpass(int taps, double cutoff);

/// Quantize double coefficients to Q16.
[[nodiscard]] std::vector<Q16> quantize_taps(const std::vector<double>& taps);

/// Streaming complex FIR with decimation: consumes every input sample into
/// its delay line and emits one filtered output per `decimation` inputs.
class DecimatingFir final : public StreamKernel {
 public:
  DecimatingFir(std::vector<Q16> taps, std::int32_t decimation,
                std::string name = "fir");

  void push(CQ16 in, std::vector<CQ16>& out) override;
  /// SoA block path: linearizes the circular delay line plus the block into
  /// contiguous per-component arrays, then computes each decimated output
  /// as a straight dot product against the reversed tap ROM — the form the
  /// compiler autovectorizes. Bit-identical to push() per sample (see .cpp
  /// for the no-overflow argument that makes the MAC order-insensitive).
  std::size_t process_block(std::span<const CQ16> in, std::span<CQ16> out,
                            std::uint8_t* counts = nullptr) override;
  [[nodiscard]] std::vector<std::int32_t> save_state() const override;
  void restore_state(std::span<const std::int32_t> state) override;
  void reset() override;
  [[nodiscard]] std::size_t state_words() const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override;

  [[nodiscard]] std::int32_t decimation() const { return decimation_; }
  [[nodiscard]] std::size_t taps() const { return taps_.size(); }

 private:
  [[nodiscard]] CQ16 filter_now() const;

  std::vector<Q16> taps_;  // static configuration (coefficient ROM)
  std::int32_t decimation_;
  std::string name_;

  // Reversed raw tap ROM (rtaps_[j] = taps_[n-1-j]): lets the block path's
  // dot product walk the linearized window forward. Static configuration.
  std::vector<std::int32_t> rtaps_;

  // Mutable state: circular delay line + write index + decimation phase.
  std::vector<CQ16> delay_;
  std::int32_t head_ = 0;
  std::int32_t phase_ = 0;

  // Block-path scratch (reused across calls; not part of saved state).
  std::vector<std::int32_t> hist_re_;
  std::vector<std::int32_t> hist_im_;
};

}  // namespace acc::accel
