#include "accel/cordic.hpp"

#include <array>
#include <cmath>

#include "common/check.hpp"

namespace acc::accel {

namespace {

constexpr int kMaxIterations = 24;

/// atan(2^-i) table in Q16 radians, and the CORDIC gain compensation
/// 1/K = prod(cos(atan(2^-i))), computed once at startup (an FPGA would
/// bake these into LUT ROMs).
struct Tables {
  std::array<std::int32_t, kMaxIterations> atan_q16{};
  std::array<double, kMaxIterations + 1> inv_gain{};

  Tables() {
    double k = 1.0;
    inv_gain[0] = 1.0;
    for (int i = 0; i < kMaxIterations; ++i) {
      const double a = std::atan(std::ldexp(1.0, -i));
      atan_q16[i] =
          static_cast<std::int32_t>(std::lround(a * (std::int32_t{1} << 16)));
      k *= std::cos(a);
      inv_gain[i + 1] = k;
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Q16 q16_pi() { return Q16::from_double(M_PI); }
Q16 q16_half_pi() { return Q16::from_double(M_PI / 2); }

Q16 q16_wrap_angle(double radians) {
  double a = std::remainder(radians, 2.0 * M_PI);
  if (a <= -M_PI) a += 2.0 * M_PI;
  return Q16::from_double(a);
}

RotateResult cordic_rotate(Q16 x, Q16 y, Q16 angle, int iterations) {
  ACC_EXPECTS(iterations >= 1 && iterations <= kMaxIterations);
  std::int64_t cx = x.raw();
  std::int64_t cy = y.raw();
  std::int64_t cz = angle.raw();

  // Pre-rotation: CORDIC converges for |angle| <= ~1.74 rad; fold angles
  // beyond +-pi/2 by an exact half-turn ((x,y) -> (-x,-y), angle -+ pi).
  const std::int32_t half_pi = q16_half_pi().raw();
  if (cz > half_pi) {
    cz -= q16_pi().raw();
    cx = -cx;
    cy = -cy;
  } else if (cz < -half_pi) {
    cz += q16_pi().raw();
    cx = -cx;
    cy = -cy;
  }

  for (int i = 0; i < iterations; ++i) {
    const std::int64_t dx = cy >> i;
    const std::int64_t dy = cx >> i;
    if (cz >= 0) {
      cx -= dx;
      cy += dy;
      cz -= tables().atan_q16[i];
    } else {
      cx += dx;
      cy -= dy;
      cz += tables().atan_q16[i];
    }
  }

  const double inv_k = tables().inv_gain[iterations];
  RotateResult r;
  r.x = Q16::from_double(static_cast<double>(cx) / (1 << 16) * inv_k);
  r.y = Q16::from_double(static_cast<double>(cy) / (1 << 16) * inv_k);
  return r;
}

VectorResult cordic_vector(Q16 x, Q16 y, int iterations) {
  ACC_EXPECTS(iterations >= 1 && iterations <= kMaxIterations);
  std::int64_t cx = x.raw();
  std::int64_t cy = y.raw();
  std::int64_t cz = 0;

  // Pre-rotation into the right half-plane: a half turn flips the vector
  // exactly; the loop then adds the remaining angle, so
  // z_out = z_init + atan2(-y, -x) = atan2(y, x).
  if (cx < 0) {
    cx = -cx;
    cy = -cy;
    cz = cy <= 0 ? q16_pi().raw() : -q16_pi().raw();
  }

  for (int i = 0; i < iterations; ++i) {
    const std::int64_t dx = cy >> i;
    const std::int64_t dy = cx >> i;
    if (cy >= 0) {
      cx += dx;
      cy -= dy;
      cz += tables().atan_q16[i];
    } else {
      cx -= dx;
      cy += dy;
      cz -= tables().atan_q16[i];
    }
  }

  const double inv_k = tables().inv_gain[iterations];
  VectorResult r;
  r.magnitude = Q16::from_double(static_cast<double>(cx) / (1 << 16) * inv_k);
  // Map the accumulated angle into (-pi, pi].
  std::int64_t a = cz;
  const std::int64_t pi = q16_pi().raw();
  if (a > pi) a -= 2 * pi;
  if (a <= -pi) a += 2 * pi;
  r.angle = Q16::from_raw(static_cast<std::int32_t>(a));
  return r;
}

}  // namespace acc::accel
