#include "accel/cordic.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace acc::accel {

namespace {

constexpr int kMaxIterations = 24;

/// atan(2^-i) table in Q16 radians, and the CORDIC gain compensation
/// 1/K = prod(cos(atan(2^-i))), computed once at startup (an FPGA would
/// bake these into LUT ROMs).
struct Tables {
  std::array<std::int32_t, kMaxIterations> atan_q16{};
  std::array<double, kMaxIterations + 1> inv_gain{};

  Tables() {
    double k = 1.0;
    inv_gain[0] = 1.0;
    for (int i = 0; i < kMaxIterations; ++i) {
      const double a = std::atan(std::ldexp(1.0, -i));
      atan_q16[i] =
          static_cast<std::int32_t>(std::lround(a * (std::int32_t{1} << 16)));
      k *= std::cos(a);
      inv_gain[i + 1] = k;
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Q16 q16_pi() { return Q16::from_double(M_PI); }
Q16 q16_half_pi() { return Q16::from_double(M_PI / 2); }

Q16 q16_wrap_angle(double radians) {
  double a = std::remainder(radians, 2.0 * M_PI);
  if (a <= -M_PI) a += 2.0 * M_PI;
  return Q16::from_double(a);
}

RotateResult cordic_rotate(Q16 x, Q16 y, Q16 angle, int iterations) {
  ACC_EXPECTS(iterations >= 1 && iterations <= kMaxIterations);
  std::int64_t cx = x.raw();
  std::int64_t cy = y.raw();
  std::int64_t cz = angle.raw();

  // Pre-rotation: CORDIC converges for |angle| <= ~1.74 rad; fold angles
  // beyond +-pi/2 by an exact half-turn ((x,y) -> (-x,-y), angle -+ pi).
  const std::int32_t half_pi = q16_half_pi().raw();
  if (cz > half_pi) {
    cz -= q16_pi().raw();
    cx = -cx;
    cy = -cy;
  } else if (cz < -half_pi) {
    cz += q16_pi().raw();
    cx = -cx;
    cy = -cy;
  }

  for (int i = 0; i < iterations; ++i) {
    const std::int64_t dx = cy >> i;
    const std::int64_t dy = cx >> i;
    if (cz >= 0) {
      cx -= dx;
      cy += dy;
      cz -= tables().atan_q16[i];
    } else {
      cx += dx;
      cy -= dy;
      cz += tables().atan_q16[i];
    }
  }

  const double inv_k = tables().inv_gain[iterations];
  RotateResult r;
  r.x = Q16::from_double(static_cast<double>(cx) / (1 << 16) * inv_k);
  r.y = Q16::from_double(static_cast<double>(cy) / (1 << 16) * inv_k);
  return r;
}

void cordic_rotate_block(std::span<const Q16> x, std::span<const Q16> y,
                         std::span<const Q16> angle, Q16* out_x, Q16* out_y,
                         int iterations) {
  ACC_EXPECTS(iterations >= 1 && iterations <= kMaxIterations);
  ACC_EXPECTS(x.size() == y.size() && x.size() == angle.size());
  const std::size_t n = x.size();
  std::vector<std::int64_t> cx(n);
  std::vector<std::int64_t> cy(n);
  std::vector<std::int64_t> cz(n);
  // Prologue per element: widen and fold the exact half-turn pre-rotation
  // (same branches as the scalar path — element-local, so order across
  // elements is irrelevant).
  const std::int32_t half_pi = q16_half_pi().raw();
  const std::int32_t pi = q16_pi().raw();
  for (std::size_t e = 0; e < n; ++e) {
    std::int64_t ex = x[e].raw();
    std::int64_t ey = y[e].raw();
    std::int64_t ez = angle[e].raw();
    if (ez > half_pi) {
      ez -= pi;
      ex = -ex;
      ey = -ey;
    } else if (ez < -half_pi) {
      ez += pi;
      ex = -ex;
      ey = -ey;
    }
    cx[e] = ex;
    cy[e] = ey;
    cz[e] = ez;
  }
  // Micro-rotations, iteration-outer / element-inner. The scalar branch
  // `if (cz >= 0) {cx -= dx; ...} else {cx += dx; ...}` becomes a +-1
  // multiplier — multiplying an int64 by +-1 is exact, so every element
  // computes the identical sequence of additions.
  for (int i = 0; i < iterations; ++i) {
    const std::int64_t a = tables().atan_q16[i];
    for (std::size_t e = 0; e < n; ++e) {
      const std::int64_t s = cz[e] >= 0 ? 1 : -1;
      const std::int64_t dx = cy[e] >> i;
      const std::int64_t dy = cx[e] >> i;
      cx[e] -= s * dx;
      cy[e] += s * dy;
      cz[e] -= s * a;
    }
  }
  // Epilogue per element: identical gain compensation as the scalar path.
  const double inv_k = tables().inv_gain[iterations];
  for (std::size_t e = 0; e < n; ++e) {
    out_x[e] = Q16::from_double(static_cast<double>(cx[e]) / (1 << 16) * inv_k);
    out_y[e] = Q16::from_double(static_cast<double>(cy[e]) / (1 << 16) * inv_k);
  }
}

void cordic_vector_block(std::span<const Q16> x, std::span<const Q16> y,
                         Q16* out_mag, Q16* out_angle, int iterations) {
  ACC_EXPECTS(iterations >= 1 && iterations <= kMaxIterations);
  ACC_EXPECTS(x.size() == y.size());
  const std::size_t n = x.size();
  std::vector<std::int64_t> cx(n);
  std::vector<std::int64_t> cy(n);
  std::vector<std::int64_t> cz(n);
  const std::int64_t pi = q16_pi().raw();
  for (std::size_t e = 0; e < n; ++e) {
    std::int64_t ex = x[e].raw();
    std::int64_t ey = y[e].raw();
    std::int64_t ez = 0;
    if (ex < 0) {
      ex = -ex;
      ey = -ey;
      ez = ey <= 0 ? pi : -pi;
    }
    cx[e] = ex;
    cy[e] = ey;
    cz[e] = ez;
  }
  for (int i = 0; i < iterations; ++i) {
    const std::int64_t a = tables().atan_q16[i];
    for (std::size_t e = 0; e < n; ++e) {
      const std::int64_t s = cy[e] >= 0 ? 1 : -1;
      const std::int64_t dx = cy[e] >> i;
      const std::int64_t dy = cx[e] >> i;
      cx[e] += s * dx;
      cy[e] -= s * dy;
      cz[e] += s * a;
    }
  }
  const double inv_k = tables().inv_gain[iterations];
  for (std::size_t e = 0; e < n; ++e) {
    out_mag[e] =
        Q16::from_double(static_cast<double>(cx[e]) / (1 << 16) * inv_k);
    std::int64_t a = cz[e];
    if (a > pi) a -= 2 * pi;
    if (a <= -pi) a += 2 * pi;
    out_angle[e] = Q16::from_raw(static_cast<std::int32_t>(a));
  }
}

VectorResult cordic_vector(Q16 x, Q16 y, int iterations) {
  ACC_EXPECTS(iterations >= 1 && iterations <= kMaxIterations);
  std::int64_t cx = x.raw();
  std::int64_t cy = y.raw();
  std::int64_t cz = 0;

  // Pre-rotation into the right half-plane: a half turn flips the vector
  // exactly; the loop then adds the remaining angle, so
  // z_out = z_init + atan2(-y, -x) = atan2(y, x).
  if (cx < 0) {
    cx = -cx;
    cy = -cy;
    cz = cy <= 0 ? q16_pi().raw() : -q16_pi().raw();
  }

  for (int i = 0; i < iterations; ++i) {
    const std::int64_t dx = cy >> i;
    const std::int64_t dy = cx >> i;
    if (cy >= 0) {
      cx += dx;
      cy -= dy;
      cz += tables().atan_q16[i];
    } else {
      cx -= dx;
      cy += dy;
      cz -= tables().atan_q16[i];
    }
  }

  const double inv_k = tables().inv_gain[iterations];
  VectorResult r;
  r.magnitude = Q16::from_double(static_cast<double>(cx) / (1 << 16) * inv_k);
  // Map the accumulated angle into (-pi, pi].
  std::int64_t a = cz;
  const std::int64_t pi = q16_pi().raw();
  if (a > pi) a -= 2 * pi;
  if (a <= -pi) a += 2 * pi;
  r.angle = Q16::from_raw(static_cast<std::int32_t>(a));
  return r;
}

}  // namespace acc::accel
