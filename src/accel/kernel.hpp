// Stream-processing kernel interface: the functional model of one
// accelerator datapath.
//
// Kernels are sample-streaming (one input in, zero or more outputs out —
// down-samplers emit less than they consume) and, crucially for the paper,
// CONTEXT-SWITCHABLE: all internal state can be saved and restored through
// save_state()/restore_state(), modelling the accelerator configuration bus
// that the entry-gateway drives when multiplexing streams. The defining
// correctness property (tested in kernels_test.cpp) is that interleaving
// two streams through one kernel with save/restore around each block is
// bit-identical to running each stream through its own kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"

namespace acc::accel {

class StreamKernel {
 public:
  virtual ~StreamKernel() = default;

  /// Process one input sample, appending any produced samples to `out`.
  virtual void push(CQ16 in, std::vector<CQ16>& out) = 0;

  /// Process a whole block: BIT-IDENTICAL to pushing in[0..n) one at a
  /// time, in order, including the final mutable state (save_state() after
  /// a block equals save_state() after the equivalent pushes — the golden
  /// fixtures in kernel_block_test.cpp pin this). Outputs are written to
  /// `out`, which must have room for the worst case (one output per input
  /// for every kernel in this repo); the return value is the number
  /// written. When `counts` is non-null, counts[i] receives the number of
  /// outputs produced by in[i] (0 or 1 here) — AcceleratorTile needs the
  /// per-input attribution to replay its per-sample forwarding exactly.
  ///
  /// The default walks push() per sample. Overrides restructure the maths
  /// into SoA passes over the block (separate real/imaginary/phase arrays,
  /// branchless inner loops) so the compiler can autovectorize; they must
  /// preserve per-element operation order bit-for-bit.
  virtual std::size_t process_block(std::span<const CQ16> in,
                                    std::span<CQ16> out,
                                    std::uint8_t* counts = nullptr);

  /// Serialize the complete mutable state (delay lines, phase accumulators,
  /// decimation counters) as raw 32-bit words — what the configuration bus
  /// would transfer on a context switch.
  [[nodiscard]] virtual std::vector<std::int32_t> save_state() const = 0;

  /// Restore state previously captured with save_state().
  virtual void restore_state(std::span<const std::int32_t> state) = 0;

  /// Reset to the power-on state.
  virtual void reset() = 0;

  /// Number of 32-bit words save_state() produces (config-bus cost model).
  [[nodiscard]] virtual std::size_t state_words() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh kernel of the same type and static configuration with power-on
  /// state (used to model per-stream virtual accelerators).
  [[nodiscard]] virtual std::unique_ptr<StreamKernel> clone_fresh() const = 0;
};

/// Convenience: run a whole block through a kernel.
std::vector<CQ16> run_block(StreamKernel& k, std::span<const CQ16> in);

}  // namespace acc::accel
