// Fixed-point CORDIC in rotation and vectoring mode.
//
// The paper's case study shares one CORDIC accelerator between four
// streams: it serves both as the channel mixer (rotation mode: multiply by
// e^{j*phi}) and as the FM demodulator front half (vectoring mode: atan2).
// This is a bit-accurate model of such a datapath: shift-add
// micro-rotations on Q2.16 operands, no hardware multipliers except the
// final gain compensation.
#pragma once

#include <cstdint>
#include <span>

#include "common/fixed_point.hpp"

namespace acc::accel {

/// Number of micro-rotations; 16 gives ~1e-4 angular resolution, matching a
/// 16-iteration unrolled FPGA pipeline.
inline constexpr int kCordicIterations = 16;

/// Q16 representation of pi (3.14159... * 65536).
Q16 q16_pi();
/// Q16 representation of pi/2.
Q16 q16_half_pi();

struct RotateResult {
  Q16 x;
  Q16 y;
};

/// Rotate the vector (x, y) by `angle` radians (Q16, any value in
/// [-pi, pi]; callers must wrap). Gain-compensated.
[[nodiscard]] RotateResult cordic_rotate(Q16 x, Q16 y, Q16 angle,
                                         int iterations = kCordicIterations);

struct VectorResult {
  /// Gain-compensated magnitude sqrt(x^2 + y^2).
  Q16 magnitude;
  /// atan2(y, x) in radians (Q16), in (-pi, pi].
  Q16 angle;
};

/// Vectoring mode: rotate (x, y) onto the positive x axis, reporting the
/// accumulated angle and the magnitude.
[[nodiscard]] VectorResult cordic_vector(Q16 x, Q16 y,
                                         int iterations = kCordicIterations);

/// Block rotation: out_x[i], out_y[i] = cordic_rotate(x[i], y[i], angle[i]),
/// bit-identical to the scalar call per element. The micro-rotation loop is
/// restructured SoA (iteration outer, element inner) with a branchless
/// +-1 direction multiplier so the inner loops autovectorize; elements are
/// independent, so the cross-element reordering cannot change any result.
void cordic_rotate_block(std::span<const Q16> x, std::span<const Q16> y,
                         std::span<const Q16> angle, Q16* out_x, Q16* out_y,
                         int iterations = kCordicIterations);

/// Block vectoring: out_mag[i] / out_angle[i] = cordic_vector(x[i], y[i]),
/// bit-identical to the scalar call per element (same SoA restructuring).
void cordic_vector_block(std::span<const Q16> x, std::span<const Q16> y,
                         Q16* out_mag, Q16* out_angle,
                         int iterations = kCordicIterations);

/// Wrap an angle (radians, as a plain double) into (-pi, pi] and quantize.
[[nodiscard]] Q16 q16_wrap_angle(double radians);

}  // namespace acc::accel
