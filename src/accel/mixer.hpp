// CORDIC-based channel mixer (numerically controlled oscillator).
//
// Multiplies the input stream by e^{j * 2*pi * f * n}: the paper's "channel
// mixer accelerator containing a CORDIC" that shifts one audio carrier of
// the PAL signal to baseband. State is the NCO phase accumulator.
#pragma once

#include <cstdint>

#include "accel/kernel.hpp"

namespace acc::accel {

class NcoMixer final : public StreamKernel {
 public:
  /// `freq_turns_q32`: NCO step per sample as a signed Q32 fraction of a
  /// full turn (-0.5 .. 0.5 turns). Using turns (not radians) makes the
  /// accumulator wrap for free on int32 overflow — exactly what a hardware
  /// phase accumulator does.
  explicit NcoMixer(std::int32_t freq_turns_q32, std::string name = "mixer");

  /// Helper: convert a frequency in cycles/sample to the Q32 turns step.
  [[nodiscard]] static std::int32_t freq_from_normalized(double cycles_per_sample);

  void push(CQ16 in, std::vector<CQ16>& out) override;
  /// Block path: precompute the wrapped phase sequence (element-local
  /// int32 adds), then one SoA block rotation. Bit-identical to push().
  std::size_t process_block(std::span<const CQ16> in, std::span<CQ16> out,
                            std::uint8_t* counts = nullptr) override;
  [[nodiscard]] std::vector<std::int32_t> save_state() const override;
  void restore_state(std::span<const std::int32_t> state) override;
  void reset() override;
  [[nodiscard]] std::size_t state_words() const override { return 1; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override;

 private:
  std::int32_t step_;  // static configuration
  std::string name_;
  std::int32_t phase_ = 0;  // mutable state: Q32 turns, wraps naturally
};

/// CORDIC AM envelope detector: outputs |x[n]| minus a tracked DC estimate,
/// i.e. the modulating signal of an AM carrier after mixing to baseband.
/// Supports the multi-standard receiver scenarios of the paper's context
/// (ref [8]: multi-standard channel decoding on shared hardware): the same
/// physical CORDIC tile serves FM streams in vectoring-for-phase mode and
/// AM streams in vectoring-for-magnitude mode, selected per context.
/// State: the DC tracker accumulator.
class AmDetector final : public StreamKernel {
 public:
  /// `dc_shift`: DC tracker time constant as a right-shift (larger =
  /// slower tracking); the envelope is high-passed by subtracting it.
  explicit AmDetector(int dc_shift = 6, std::string name = "amdet");

  void push(CQ16 in, std::vector<CQ16>& out) override;
  /// Block path: one SoA block vectoring pass, then the (inherently
  /// sequential, but cheap) DC-tracker recurrence. Bit-identical to push().
  std::size_t process_block(std::span<const CQ16> in, std::span<CQ16> out,
                            std::uint8_t* counts = nullptr) override;
  [[nodiscard]] std::vector<std::int32_t> save_state() const override;
  void restore_state(std::span<const std::int32_t> state) override;
  void reset() override;
  [[nodiscard]] std::size_t state_words() const override { return 1; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override;

 private:
  int dc_shift_;
  std::string name_;
  std::int32_t dc_raw_ = 0;  // mutable state: tracked DC (Q16 raw)
};

/// CORDIC FM discriminator: outputs the per-sample phase increment of the
/// input (the instantaneous frequency), i.e. arg(x[n] * conj(x[n-1])) scaled
/// to (-1, 1] for +-pi. The paper's "accelerator containing a CORDIC module
/// to convert the data stream from FM radio to normal audio". State is the
/// previous sample.
class FmDiscriminator final : public StreamKernel {
 public:
  explicit FmDiscriminator(std::string name = "fmdemod");

  void push(CQ16 in, std::vector<CQ16>& out) override;
  /// Block path: the prev_-chained conjugate products run as an
  /// element-local sequential pass, then one SoA block vectoring pass and
  /// the normalization epilogue. Bit-identical to push().
  std::size_t process_block(std::span<const CQ16> in, std::span<CQ16> out,
                            std::uint8_t* counts = nullptr) override;
  [[nodiscard]] std::vector<std::int32_t> save_state() const override;
  void restore_state(std::span<const std::int32_t> state) override;
  void reset() override;
  [[nodiscard]] std::size_t state_words() const override { return 2; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<StreamKernel> clone_fresh() const override;

 private:
  std::string name_;
  CQ16 prev_{};  // mutable state
};

}  // namespace acc::accel
