#include "accel/kernel.hpp"

namespace acc::accel {

std::vector<CQ16> run_block(StreamKernel& k, std::span<const CQ16> in) {
  std::vector<CQ16> out;
  out.reserve(in.size());
  for (const CQ16& s : in) k.push(s, out);
  return out;
}

}  // namespace acc::accel
