#include "accel/kernel.hpp"

#include "common/check.hpp"

namespace acc::accel {

std::size_t StreamKernel::process_block(std::span<const CQ16> in,
                                        std::span<CQ16> out,
                                        std::uint8_t* counts) {
  // Reference path: exactly the per-sample stream, routed into the block
  // interface. Subclass overrides must match this bit-for-bit.
  std::vector<CQ16> scratch;
  std::size_t n = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    scratch.clear();
    push(in[i], scratch);
    if (counts != nullptr)
      counts[i] = static_cast<std::uint8_t>(scratch.size());
    for (const CQ16& s : scratch) {
      ACC_CHECK_MSG(n < out.size(), "process_block output span too small");
      out[n++] = s;
    }
  }
  return n;
}

std::vector<CQ16> run_block(StreamKernel& k, std::span<const CQ16> in) {
  std::vector<CQ16> out;
  out.reserve(in.size());
  for (const CQ16& s : in) k.push(s, out);
  return out;
}

}  // namespace acc::accel
