#include "accel/mixer.hpp"

#include <cmath>

#include "accel/cordic.hpp"
#include "common/check.hpp"

namespace acc::accel {

namespace {

/// Q32 turns -> Q16 radians in (-pi, pi].
Q16 turns_to_radians(std::int32_t turns_q32) {
  const double turns =
      static_cast<double>(turns_q32) / 4294967296.0;  // 2^32
  return Q16::from_double(2.0 * M_PI * turns);
}

}  // namespace

NcoMixer::NcoMixer(std::int32_t freq_turns_q32, std::string name)
    : step_(freq_turns_q32), name_(std::move(name)) {}

std::int32_t NcoMixer::freq_from_normalized(double cycles_per_sample) {
  ACC_EXPECTS_MSG(cycles_per_sample > -0.5 && cycles_per_sample < 0.5,
                  "mixer frequency must be within +-Nyquist");
  return static_cast<std::int32_t>(
      std::llround(cycles_per_sample * 4294967296.0));
}

void NcoMixer::push(CQ16 in, std::vector<CQ16>& out) {
  // int32 wraparound implements modulo-one-turn phase arithmetic.
  phase_ = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(phase_) + static_cast<std::uint32_t>(step_));
  const RotateResult r = cordic_rotate(in.re, in.im, turns_to_radians(phase_));
  out.push_back(CQ16{r.x, r.y});
}

std::size_t NcoMixer::process_block(std::span<const CQ16> in,
                                    std::span<CQ16> out,
                                    std::uint8_t* counts) {
  const std::size_t n = in.size();
  ACC_CHECK_MSG(out.size() >= n, "process_block output span too small");
  std::vector<Q16> xs(n);
  std::vector<Q16> ys(n);
  std::vector<Q16> angles(n);
  for (std::size_t e = 0; e < n; ++e) {
    phase_ = static_cast<std::int32_t>(static_cast<std::uint32_t>(phase_) +
                                       static_cast<std::uint32_t>(step_));
    angles[e] = turns_to_radians(phase_);
    xs[e] = in[e].re;
    ys[e] = in[e].im;
  }
  std::vector<Q16> ox(n);
  std::vector<Q16> oy(n);
  cordic_rotate_block(xs, ys, angles, ox.data(), oy.data());
  for (std::size_t e = 0; e < n; ++e) {
    out[e] = CQ16{ox[e], oy[e]};
    if (counts != nullptr) counts[e] = 1;
  }
  return n;
}

std::vector<std::int32_t> NcoMixer::save_state() const { return {phase_}; }

void NcoMixer::restore_state(std::span<const std::int32_t> state) {
  ACC_EXPECTS_MSG(state.size() == 1, "mixer state blob has the wrong size");
  phase_ = state[0];
}

void NcoMixer::reset() { phase_ = 0; }

std::unique_ptr<StreamKernel> NcoMixer::clone_fresh() const {
  return std::make_unique<NcoMixer>(step_, name_);
}

AmDetector::AmDetector(int dc_shift, std::string name)
    : dc_shift_(dc_shift), name_(std::move(name)) {
  ACC_EXPECTS(dc_shift >= 1 && dc_shift <= 20);
}

void AmDetector::push(CQ16 in, std::vector<CQ16>& out) {
  const VectorResult v = cordic_vector(in.re, in.im);
  // First-order DC tracker: dc += (mag - dc) >> k.
  const std::int32_t mag = v.magnitude.raw();
  dc_raw_ += (mag - dc_raw_) >> dc_shift_;
  out.push_back(CQ16{Q16::from_raw(mag - dc_raw_), Q16{}});
}

std::size_t AmDetector::process_block(std::span<const CQ16> in,
                                      std::span<CQ16> out,
                                      std::uint8_t* counts) {
  const std::size_t n = in.size();
  ACC_CHECK_MSG(out.size() >= n, "process_block output span too small");
  std::vector<Q16> xs(n);
  std::vector<Q16> ys(n);
  for (std::size_t e = 0; e < n; ++e) {
    xs[e] = in[e].re;
    ys[e] = in[e].im;
  }
  std::vector<Q16> mags(n);
  std::vector<Q16> angles(n);
  cordic_vector_block(xs, ys, mags.data(), angles.data());
  for (std::size_t e = 0; e < n; ++e) {
    const std::int32_t mag = mags[e].raw();
    dc_raw_ += (mag - dc_raw_) >> dc_shift_;
    out[e] = CQ16{Q16::from_raw(mag - dc_raw_), Q16{}};
    if (counts != nullptr) counts[e] = 1;
  }
  return n;
}

std::vector<std::int32_t> AmDetector::save_state() const { return {dc_raw_}; }

void AmDetector::restore_state(std::span<const std::int32_t> state) {
  ACC_EXPECTS_MSG(state.size() == 1, "amdet state blob has the wrong size");
  dc_raw_ = state[0];
}

void AmDetector::reset() { dc_raw_ = 0; }

std::unique_ptr<StreamKernel> AmDetector::clone_fresh() const {
  return std::make_unique<AmDetector>(dc_shift_, name_);
}

FmDiscriminator::FmDiscriminator(std::string name) : name_(std::move(name)) {}

void FmDiscriminator::push(CQ16 in, std::vector<CQ16>& out) {
  // d = in * conj(prev); instantaneous frequency = arg(d).
  const Q16 dre = in.re * prev_.re + in.im * prev_.im;
  const Q16 dim = in.im * prev_.re - in.re * prev_.im;
  prev_ = in;
  const VectorResult v = cordic_vector(dre, dim);
  // Normalize radians to (-1, 1] so full-scale output is +-Nyquist.
  const double norm = v.angle.to_double() / M_PI;
  out.push_back(CQ16{Q16::from_double(norm), Q16{}});
}

std::size_t FmDiscriminator::process_block(std::span<const CQ16> in,
                                           std::span<CQ16> out,
                                           std::uint8_t* counts) {
  const std::size_t n = in.size();
  ACC_CHECK_MSG(out.size() >= n, "process_block output span too small");
  std::vector<Q16> dres(n);
  std::vector<Q16> dims(n);
  // Conjugate products, chained through prev_ exactly as push() would be
  // (saturating Q16 ops, same per-element operation order).
  for (std::size_t e = 0; e < n; ++e) {
    dres[e] = in[e].re * prev_.re + in[e].im * prev_.im;
    dims[e] = in[e].im * prev_.re - in[e].re * prev_.im;
    prev_ = in[e];
  }
  std::vector<Q16> mags(n);
  std::vector<Q16> angles(n);
  cordic_vector_block(dres, dims, mags.data(), angles.data());
  for (std::size_t e = 0; e < n; ++e) {
    const double norm = angles[e].to_double() / M_PI;
    out[e] = CQ16{Q16::from_double(norm), Q16{}};
    if (counts != nullptr) counts[e] = 1;
  }
  return n;
}

std::vector<std::int32_t> FmDiscriminator::save_state() const {
  return {prev_.re.raw(), prev_.im.raw()};
}

void FmDiscriminator::restore_state(std::span<const std::int32_t> state) {
  ACC_EXPECTS_MSG(state.size() == 2, "fmdemod state blob has the wrong size");
  prev_.re = Q16::from_raw(state[0]);
  prev_.im = Q16::from_raw(state[1]);
}

void FmDiscriminator::reset() { prev_ = CQ16{}; }

std::unique_ptr<StreamKernel> FmDiscriminator::clone_fresh() const {
  return std::make_unique<FmDiscriminator>(name_);
}

}  // namespace acc::accel
