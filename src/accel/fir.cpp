#include "accel/fir.hpp"

#include <cmath>

#include "common/check.hpp"

namespace acc::accel {

std::vector<double> design_lowpass(int taps, double cutoff) {
  ACC_EXPECTS(taps >= 3 && taps % 2 == 1);
  ACC_EXPECTS(cutoff > 0.0 && cutoff < 0.5);
  std::vector<double> h(taps);
  const int mid = taps / 2;
  double sum = 0.0;
  for (int n = 0; n < taps; ++n) {
    const int k = n - mid;
    const double sinc =
        k == 0 ? 2.0 * cutoff
               : std::sin(2.0 * M_PI * cutoff * k) / (M_PI * k);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * M_PI * n / (taps - 1));
    h[n] = sinc * hamming;
    sum += h[n];
  }
  for (double& v : h) v /= sum;  // unit DC gain
  return h;
}

std::vector<Q16> quantize_taps(const std::vector<double>& taps) {
  std::vector<Q16> q;
  q.reserve(taps.size());
  for (double t : taps) q.push_back(Q16::from_double(t));
  return q;
}

DecimatingFir::DecimatingFir(std::vector<Q16> taps, std::int32_t decimation,
                             std::string name)
    : taps_(std::move(taps)),
      decimation_(decimation),
      name_(std::move(name)),
      delay_(taps_.size()) {
  ACC_EXPECTS(!taps_.empty());
  ACC_EXPECTS(decimation_ >= 1);
}

CQ16 DecimatingFir::filter_now() const {
  // Multiply-accumulate in 64-bit, truncate once at the end — the behaviour
  // of a wide FPGA accumulator (avoids per-tap quantization noise).
  std::int64_t acc_re = 0;
  std::int64_t acc_im = 0;
  const auto n = static_cast<std::int32_t>(taps_.size());
  for (std::int32_t i = 0; i < n; ++i) {
    // delay_[head_] is the newest sample = x[0]; tap 0 applies to it.
    const std::int32_t idx = (head_ - i + n) % n;
    const CQ16& s = delay_[idx];
    const std::int64_t c = taps_[i].raw();
    acc_re += c * s.re.raw();
    acc_im += c * s.im.raw();
  }
  return CQ16{Q16::from_raw(static_cast<std::int32_t>(acc_re >> 16)),
              Q16::from_raw(static_cast<std::int32_t>(acc_im >> 16))};
}

void DecimatingFir::push(CQ16 in, std::vector<CQ16>& out) {
  head_ = (head_ + 1) % static_cast<std::int32_t>(delay_.size());
  delay_[head_] = in;
  if (++phase_ >= decimation_) {
    phase_ = 0;
    out.push_back(filter_now());
  }
}

std::vector<std::int32_t> DecimatingFir::save_state() const {
  std::vector<std::int32_t> s;
  s.reserve(state_words());
  s.push_back(head_);
  s.push_back(phase_);
  for (const CQ16& d : delay_) {
    s.push_back(d.re.raw());
    s.push_back(d.im.raw());
  }
  return s;
}

void DecimatingFir::restore_state(std::span<const std::int32_t> state) {
  ACC_EXPECTS_MSG(state.size() == state_words(),
                  "FIR state blob has the wrong size");
  head_ = state[0];
  phase_ = state[1];
  ACC_EXPECTS(head_ >= 0 && head_ < static_cast<std::int32_t>(delay_.size()));
  ACC_EXPECTS(phase_ >= 0 && phase_ < decimation_);
  for (std::size_t i = 0; i < delay_.size(); ++i) {
    delay_[i].re = Q16::from_raw(state[2 + 2 * i]);
    delay_[i].im = Q16::from_raw(state[3 + 2 * i]);
  }
}

void DecimatingFir::reset() {
  head_ = 0;
  phase_ = 0;
  delay_.assign(delay_.size(), CQ16{});
}

std::size_t DecimatingFir::state_words() const {
  return 2 + 2 * delay_.size();
}

std::unique_ptr<StreamKernel> DecimatingFir::clone_fresh() const {
  return std::make_unique<DecimatingFir>(taps_, decimation_, name_);
}

}  // namespace acc::accel
