#include "accel/fir.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace acc::accel {

std::vector<double> design_lowpass(int taps, double cutoff) {
  ACC_EXPECTS(taps >= 3 && taps % 2 == 1);
  ACC_EXPECTS(cutoff > 0.0 && cutoff < 0.5);
  std::vector<double> h(taps);
  const int mid = taps / 2;
  double sum = 0.0;
  for (int n = 0; n < taps; ++n) {
    const int k = n - mid;
    const double sinc =
        k == 0 ? 2.0 * cutoff
               : std::sin(2.0 * M_PI * cutoff * k) / (M_PI * k);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * M_PI * n / (taps - 1));
    h[n] = sinc * hamming;
    sum += h[n];
  }
  for (double& v : h) v /= sum;  // unit DC gain
  return h;
}

std::vector<Q16> quantize_taps(const std::vector<double>& taps) {
  std::vector<Q16> q;
  q.reserve(taps.size());
  for (double t : taps) q.push_back(Q16::from_double(t));
  return q;
}

DecimatingFir::DecimatingFir(std::vector<Q16> taps, std::int32_t decimation,
                             std::string name)
    : taps_(std::move(taps)),
      decimation_(decimation),
      name_(std::move(name)),
      delay_(taps_.size()) {
  ACC_EXPECTS(!taps_.empty());
  ACC_EXPECTS(decimation_ >= 1);
  rtaps_.reserve(taps_.size());
  for (std::size_t j = taps_.size(); j-- > 0;)
    rtaps_.push_back(taps_[j].raw());
}

CQ16 DecimatingFir::filter_now() const {
  // Multiply-accumulate in 64-bit, truncate once at the end — the behaviour
  // of a wide FPGA accumulator (avoids per-tap quantization noise).
  std::int64_t acc_re = 0;
  std::int64_t acc_im = 0;
  const auto n = static_cast<std::int32_t>(taps_.size());
  for (std::int32_t i = 0; i < n; ++i) {
    // delay_[head_] is the newest sample = x[0]; tap 0 applies to it.
    const std::int32_t idx = (head_ - i + n) % n;
    const CQ16& s = delay_[idx];
    const std::int64_t c = taps_[i].raw();
    acc_re += c * s.re.raw();
    acc_im += c * s.im.raw();
  }
  return CQ16{Q16::from_raw(static_cast<std::int32_t>(acc_re >> 16)),
              Q16::from_raw(static_cast<std::int32_t>(acc_im >> 16))};
}

void DecimatingFir::push(CQ16 in, std::vector<CQ16>& out) {
  head_ = (head_ + 1) % static_cast<std::int32_t>(delay_.size());
  delay_[head_] = in;
  if (++phase_ >= decimation_) {
    phase_ = 0;
    out.push_back(filter_now());
  }
}

std::size_t DecimatingFir::process_block(std::span<const CQ16> in,
                                         std::span<CQ16> out,
                                         std::uint8_t* counts) {
  const std::size_t m = in.size();
  if (m == 0) return 0;
  const std::size_t nt = taps_.size();
  const auto nd = static_cast<std::int32_t>(delay_.size());
  // Linearize: hist[0 .. nt-2] = the nt-1 most recent delay-line samples in
  // chronological order, hist[nt-1 + k] = in[k]. The window for in[k] is
  // then the contiguous run hist[k .. k+nt-1], newest last.
  hist_re_.resize(nt - 1 + m);
  hist_im_.resize(nt - 1 + m);
  for (std::size_t i = 0; i + 1 < nt; ++i) {
    const auto idx = static_cast<std::size_t>(
        (head_ - static_cast<std::int32_t>(i) + nd) % nd);
    hist_re_[nt - 2 - i] = delay_[idx].re.raw();
    hist_im_[nt - 2 - i] = delay_[idx].im.raw();
  }
  for (std::size_t k = 0; k < m; ++k) {
    hist_re_[nt - 1 + k] = in[k].re.raw();
    hist_im_[nt - 1 + k] = in[k].im.raw();
  }

  std::size_t produced = 0;
  std::int32_t ph = phase_;
  for (std::size_t k = 0; k < m; ++k) {
    std::uint8_t c = 0;
    if (++ph >= decimation_) {
      ph = 0;
      // Straight dot product over the contiguous window against the
      // reversed tap ROM — sum_j rtaps[j] * hist[k + j] equals filter_now's
      // sum_i taps[i] * x[n - i]. The summation order differs from the
      // scalar path, but every product fits in ~2^47 (Q16 tap * Q16 sample)
      // and the tap count is small, so no intermediate sum can leave int64
      // range in either order: integer addition is then exactly
      // associative and both orders produce the same accumulator.
      std::int64_t acc_re = 0;
      std::int64_t acc_im = 0;
      const std::int32_t* wr = hist_re_.data() + k;
      const std::int32_t* wi = hist_im_.data() + k;
      for (std::size_t j = 0; j < nt; ++j) {
        const std::int64_t cj = rtaps_[j];
        acc_re += cj * wr[j];
        acc_im += cj * wi[j];
      }
      ACC_CHECK_MSG(produced < out.size(),
                    "process_block output span too small");
      out[produced++] =
          CQ16{Q16::from_raw(static_cast<std::int32_t>(acc_re >> 16)),
               Q16::from_raw(static_cast<std::int32_t>(acc_im >> 16))};
      c = 1;
    }
    if (counts != nullptr) counts[k] = c;
  }
  phase_ = ph;

  // Replay the delay-line state m pushes would leave behind: the head
  // advances m slots and the last min(nd, m) inputs land at the indices
  // push() would have written them to; older slots keep their contents.
  const auto new_head = static_cast<std::int32_t>(
      (static_cast<std::size_t>(head_) + m) % static_cast<std::size_t>(nd));
  const std::size_t keep = std::min(static_cast<std::size_t>(nd), m);
  for (std::size_t i = 0; i < keep; ++i) {
    const auto idx = static_cast<std::size_t>(
        (new_head - static_cast<std::int32_t>(i) + nd) % nd);
    delay_[idx] = in[m - 1 - i];
  }
  head_ = new_head;
  return produced;
}

std::vector<std::int32_t> DecimatingFir::save_state() const {
  std::vector<std::int32_t> s;
  s.reserve(state_words());
  s.push_back(head_);
  s.push_back(phase_);
  for (const CQ16& d : delay_) {
    s.push_back(d.re.raw());
    s.push_back(d.im.raw());
  }
  return s;
}

void DecimatingFir::restore_state(std::span<const std::int32_t> state) {
  ACC_EXPECTS_MSG(state.size() == state_words(),
                  "FIR state blob has the wrong size");
  head_ = state[0];
  phase_ = state[1];
  ACC_EXPECTS(head_ >= 0 && head_ < static_cast<std::int32_t>(delay_.size()));
  ACC_EXPECTS(phase_ >= 0 && phase_ < decimation_);
  for (std::size_t i = 0; i < delay_.size(); ++i) {
    delay_[i].re = Q16::from_raw(state[2 + 2 * i]);
    delay_[i].im = Q16::from_raw(state[3 + 2 * i]);
  }
}

void DecimatingFir::reset() {
  head_ = 0;
  phase_ = 0;
  delay_.assign(delay_.size(), CQ16{});
}

std::size_t DecimatingFir::state_words() const {
  return 2 + 2 * delay_.size();
}

std::unique_ptr<StreamKernel> DecimatingFir::clone_fresh() const {
  return std::make_unique<DecimatingFir>(taps_, decimation_, name_);
}

}  // namespace acc::accel
