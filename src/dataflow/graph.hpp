// Cyclo-Static Dataflow (CSDF) graph model.
//
// This is the analysis substrate of the paper: per-stream CSDF models of the
// gateway/accelerator pipeline (paper Fig. 5) and their single-actor SDF
// abstractions (paper Fig. 7) are instances of this graph class. SDF is the
// one-phase special case of CSDF (Bilsen et al., 1996).
//
// Conventions
//  - Tokens are consumed at firing start and produced at firing end
//    (self-timed operational semantics).
//  - Every actor has an implicit self-edge with one token unless
//    `auto_concurrent` is set, matching the CSDF definition used in the paper.
//  - A bounded FIFO channel of capacity beta holding t initial tokens is
//    modelled as a forward data edge with t tokens plus a backward space edge
//    with beta - t tokens (add_channel does this for you).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace acc::df {

/// Discrete time in clock cycles.
using Time = std::int64_t;

using ActorId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr ActorId kInvalidActor = -1;

/// A CSDF actor: cyclically executes its phases; phase p takes
/// `phase_durations[p]` time between consuming inputs and producing outputs.
struct Actor {
  std::string name;
  /// One entry per phase; an SDF actor has exactly one.
  std::vector<Time> phase_durations;
  /// If true, firings of this actor may overlap (no implicit self-edge).
  bool auto_concurrent = false;

  [[nodiscard]] std::size_t phases() const { return phase_durations.size(); }
};

/// A directed edge (unbounded token queue) between two actors. `prod[p]`
/// tokens are produced by source phase p, `cons[q]` consumed by destination
/// phase q.
struct Edge {
  std::string name;
  ActorId src = kInvalidActor;
  ActorId dst = kInvalidActor;
  std::vector<std::int64_t> prod;
  std::vector<std::int64_t> cons;
  std::int64_t initial_tokens = 0;
};

/// Handle pair returned by add_channel: the forward data edge and the
/// backward space edge that together model one bounded FIFO.
struct Channel {
  EdgeId data;
  EdgeId space;
};

class Graph {
 public:
  /// Add a CSDF actor with the given per-phase firing durations (>= 0).
  ActorId add_actor(std::string name, std::vector<Time> phase_durations,
                    bool auto_concurrent = false);

  /// Add a single-phase (SDF) actor.
  ActorId add_sdf_actor(std::string name, Time duration,
                        bool auto_concurrent = false);

  /// Add an edge with per-phase production/consumption quanta. The vectors
  /// must have as many entries as the respective endpoint has phases.
  EdgeId add_edge(ActorId src, ActorId dst, std::vector<std::int64_t> prod,
                  std::vector<std::int64_t> cons, std::int64_t initial_tokens,
                  std::string name = {});

  /// Add an SDF edge (scalar rates, broadcast over all phases of CSDF
  /// endpoints — i.e. the same quantum for every phase).
  EdgeId add_sdf_edge(ActorId src, ActorId dst, std::int64_t prod,
                      std::int64_t cons, std::int64_t initial_tokens,
                      std::string name = {});

  /// Model a bounded FIFO channel of `capacity` token slots with
  /// `initial_tokens` already present. Returns both constituent edges; the
  /// capacity can later be changed with set_channel_capacity.
  Channel add_channel(ActorId src, ActorId dst, std::vector<std::int64_t> prod,
                      std::vector<std::int64_t> cons, std::int64_t capacity,
                      std::int64_t initial_tokens = 0, std::string name = {});

  /// Re-dimension a channel created by add_channel (space tokens become
  /// capacity - data tokens). Used by the buffer-sizing searches.
  void set_channel_capacity(const Channel& ch, std::int64_t capacity);

  /// Current capacity of a channel (data tokens + space tokens).
  [[nodiscard]] std::int64_t channel_capacity(const Channel& ch) const;

  [[nodiscard]] std::size_t num_actors() const { return actors_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const Actor& actor(ActorId a) const;
  [[nodiscard]] const Edge& edge(EdgeId e) const;

  /// Mutable access to an edge's initial tokens (buffer-sizing sweeps).
  void set_initial_tokens(EdgeId e, std::int64_t tokens);

  [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Edges entering / leaving an actor (indices into edges()).
  [[nodiscard]] const std::vector<EdgeId>& in_edges(ActorId a) const;
  [[nodiscard]] const std::vector<EdgeId>& out_edges(ActorId a) const;

  /// Find an actor by name; kInvalidActor if absent.
  [[nodiscard]] ActorId find_actor(const std::string& name) const;

  /// Structural validation: endpoint ids valid, quanta arity matches phase
  /// counts, non-negative quanta and tokens. Throws on violation.
  void validate() const;

 private:
  std::vector<Actor> actors_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
};

}  // namespace acc::df
