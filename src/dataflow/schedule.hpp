// Static periodic schedule (SPS) construction for HSDF graphs.
//
// Paper §III: "we can therefore determine the minimum throughput by
// creating an admissible schedule for the CSDF graph at design time". For
// single-rate (HSDF) graphs an admissible strictly-periodic schedule with
// period T assigns each actor a start offset s(v) such that every
// precedence (u -> v with delta initial tokens, duration rho_u) satisfies
//
//     s(v) + T * delta >= s(u) + rho_u          (token available in time)
//
// i.e. s(v) - s(u) >= rho_u - T * delta: a system of difference
// constraints, solvable by longest-path/Bellman-Ford. A feasible SPS exists
// iff T >= maximum cycle ratio — giving an independent cross-check of the
// MCR solver and the executor, and concrete design-time start times.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rational.hpp"
#include "dataflow/hsdf.hpp"

namespace acc::df {

struct PeriodicSchedule {
  bool feasible = false;
  /// Start offset per HSDF node, within [0, horizon); node v fires at
  /// start[v] + k*T for all k >= 0.
  std::vector<Time> start;
  Time period = 0;
};

/// Construct a strictly periodic schedule with integer period T for the
/// HSDF graph, or report infeasibility (T below the maximum cycle ratio).
[[nodiscard]] PeriodicSchedule periodic_schedule(const HsdfGraph& h, Time period);

/// Smallest integer period admitting a strictly periodic schedule
/// (= ceil(maximum cycle ratio)); nullopt when the graph deadlocks.
[[nodiscard]] std::optional<Time> minimum_integer_period(const HsdfGraph& h);

/// Validate a schedule against every precedence constraint (test oracle).
[[nodiscard]] bool schedule_admissible(const HsdfGraph& h,
                                       const PeriodicSchedule& s);

}  // namespace acc::df
