// Design-space exploration engine for buffer-capacity searches.
//
// The paper's central observation (its Fig. 8) is that minimum buffer
// capacities are NON-MONOTONE in the block size, which forces exhaustive
// exploration: every (block size, capacity vector) candidate is scored by an
// exact self-timed simulation. This engine makes that exploration fast
// without changing any answer:
//
//  - a fixed-size thread pool evaluates independent capacity vectors
//    concurrently, each worker owning a private Graph clone so capacity
//    mutation never races;
//  - a memo cache keyed by the capacity vector (guarded by a structural
//    graph fingerprint) makes repeated probes free — the staircase search,
//    the per-channel binary searches and the saturation probes overlap a lot;
//  - monotone feasibility pruning: throughput is monotone non-decreasing in
//    every capacity, so `throughput >= target` is a monotone predicate — an
//    infeasible vector kills every component-wise-smaller candidate and a
//    feasible vector answers every component-wise-larger one, turning the
//    budget staircase into a frontier search;
//  - simulations skip Graph::validate() (the engine validates its clones
//    once) and use the executor's allocation-free state hashing.
//
// Results are bit-identical across thread counts: feasibility of a vector is
// a pure function of the vector, and every search picks winners by candidate
// enumeration order, never by completion order.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rational.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/buffer_sizing.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {

class DseEngine {
 public:
  /// Snapshots `g` (the engine never mutates the caller's graph) and
  /// validates the clone once; all simulations skip re-validation.
  DseEngine(const Graph& g, std::vector<Channel> channels, ActorId reference,
            BufferSizingOptions opt = {});

  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  /// Threads actually used (opt.jobs resolved; 0 means hardware threads).
  [[nodiscard]] std::size_t jobs() const { return pool_.size(); }
  /// Capacities of the managed channels in the snapshot.
  [[nodiscard]] std::vector<std::int64_t> snapshot_capacities() const;
  /// FNV-1a hash of the graph structure (rates, durations, initial tokens)
  /// excluding the managed channels' capacities — the invariant part of the
  /// memo key. Two engines over structurally identical graphs agree.
  [[nodiscard]] std::uint64_t graph_fingerprint() const { return fingerprint_; }

  /// Exact throughput of the reference actor with the managed channels at
  /// `caps` (memoized; thread-safe; deadlock reports as 0).
  [[nodiscard]] Rational throughput(const std::vector<std::int64_t>& caps);

  /// Memoized + pruned `throughput(caps) >= target`. The pruning frontier is
  /// per-target and resets automatically when the target changes.
  [[nodiscard]] bool feasible(const std::vector<std::int64_t>& caps,
                              const Rational& target);

  /// Saturating-doubling estimate of the supremum throughput over the
  /// managed channels (equivalent to the classic unbounded-channel probe).
  [[nodiscard]] Rational max_throughput_unbounded();

  /// Exact minimum capacity of channel `idx` reaching `target` with the
  /// other channels fixed at `caps` (exponential probe + binary search).
  /// Throws invariant_error if even max_capacity cannot reach the target.
  [[nodiscard]] std::int64_t min_capacity_for(std::size_t idx,
                                              std::vector<std::int64_t> caps,
                                              const Rational& target);

  /// Full capacity/throughput staircase of channel `idx`, other channels at
  /// their snapshot capacities. With jobs > 1 the sweep evaluates capacities
  /// speculatively in waves; the returned staircase is identical either way.
  [[nodiscard]] std::vector<ParetoPoint> pareto_sweep(std::size_t idx);

  /// Exact minimum-total capacity assignment meeting `target` — the parallel,
  /// memoized, pruned replacement of the serial budget-staircase DFS. The
  /// result (vector and total) is independent of the thread count.
  [[nodiscard]] MultiBufferResult minimize_total(const Rational& target);

  /// Snapshot of the counters (thread-safe).
  [[nodiscard]] DseStats stats() const;

 private:
  using CapVec = std::vector<std::int64_t>;

  struct CapVecHash {
    std::size_t operator()(const CapVec& v) const;
  };

  /// Run one simulation on the given worker's private graph clone.
  [[nodiscard]] Rational simulate(std::size_t worker, const CapVec& caps);
  /// Memoized throughput usable from pool tasks.
  [[nodiscard]] Rational throughput_on(std::size_t worker, const CapVec& caps);
  /// Memoized + pruned feasibility usable from pool tasks.
  [[nodiscard]] bool feasible_on(std::size_t worker, const CapVec& caps,
                                 const Rational& target);

  /// Frontier lookup: nullopt if the point's feasibility is not implied.
  /// Must be called with mu_ held.
  [[nodiscard]] std::optional<bool> frontier_implies(const CapVec& caps) const;
  /// Record a decided point into the frontier (dominance-filtered).
  /// Must be called with mu_ held.
  void frontier_note(const CapVec& caps, bool ok);
  /// Reset the frontier when the feasibility target changes. Locks mu_.
  void set_target(const Rational& target);

  std::vector<Channel> channels_;
  ActorId reference_;
  BufferSizingOptions opt_;
  std::uint64_t fingerprint_ = 0;
  ThreadPool pool_;
  /// One private clone per worker (index = worker id); clone 0 doubles as
  /// the driver-thread graph for serial phases.
  std::vector<Graph> worker_graphs_;

  mutable std::mutex mu_;
  std::unordered_map<CapVec, Rational, CapVecHash> memo_;
  Rational target_;
  bool has_target_ = false;
  std::vector<CapVec> feasible_min_;    // minimal known-feasible points
  std::vector<CapVec> infeasible_max_;  // maximal known-infeasible points
  DseStats stats_;
};

}  // namespace acc::df
