#include "dataflow/schedule.hpp"

#include <algorithm>

namespace acc::df {

PeriodicSchedule periodic_schedule(const HsdfGraph& h, Time period) {
  ACC_EXPECTS(period >= 1);
  PeriodicSchedule out;
  const std::int32_t n = h.num_nodes();
  out.start.assign(static_cast<std::size_t>(n), 0);

  // Longest-path relaxation on constraints
  //   start[dst] >= start[src] + weight - period * tokens.
  // Converges within n rounds iff there is no positive cycle of
  // (weight - period*tokens), i.e. iff period >= MCR.
  for (std::int32_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const RatioEdge& e : h.edges) {
      const Time bound =
          out.start[e.src] + e.weight - period * e.tokens;
      if (bound > out.start[e.dst]) {
        out.start[e.dst] = bound;
        changed = true;
      }
    }
    if (!changed) {
      // Normalize the earliest start to zero for readability.
      Time lo = 0;
      for (Time s : out.start) lo = std::min(lo, s);
      for (Time& s : out.start) s -= lo;
      out.feasible = true;
      out.period = period;
      return out;
    }
  }
  out.start.clear();
  return out;  // positive cycle: period below the maximum cycle ratio
}

std::optional<Time> minimum_integer_period(const HsdfGraph& h) {
  const McrResult mcr = max_cycle_ratio(h.num_nodes(), h.edges);
  if (mcr.zero_token_cycle) return std::nullopt;
  if (mcr.acyclic) return 1;  // nothing constrains the period
  return mcr.ratio.ceil();
}

bool schedule_admissible(const HsdfGraph& h, const PeriodicSchedule& s) {
  if (!s.feasible ||
      s.start.size() != static_cast<std::size_t>(h.num_nodes()))
    return false;
  for (const RatioEdge& e : h.edges) {
    if (s.start[e.dst] + s.period * e.tokens < s.start[e.src] + e.weight)
      return false;
  }
  return true;
}

}  // namespace acc::df
