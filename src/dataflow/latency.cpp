#include "dataflow/latency.hpp"

#include <algorithm>

namespace acc::df {

std::vector<Time> firing_start_times(const Graph& g, ActorId actor,
                                     std::int64_t count) {
  SelfTimedExecutor exec(g);
  std::vector<Time> starts;
  ExecObservers obs;
  obs.on_firing = [&](ActorId a, std::int32_t, Time s, Time) {
    if (a == actor && static_cast<std::int64_t>(starts.size()) < count)
      starts.push_back(s);
  };
  exec.set_observers(obs);
  (void)exec.run_until_firings(actor, count);
  return starts;
}

std::vector<Time> token_production_times(const Graph& g, EdgeId edge,
                                         std::int64_t count) {
  SelfTimedExecutor exec(g);
  std::vector<Time> times;
  const ActorId producer = g.edge(edge).src;
  ExecObservers obs;
  obs.on_produce = [&](EdgeId e, std::int64_t n, Time t) {
    if (e != edge) return;
    for (std::int64_t i = 0;
         i < n && static_cast<std::int64_t>(times.size()) < count; ++i)
      times.push_back(t);
  };
  exec.set_observers(obs);
  // Enough producer firings to emit `count` tokens even for phase quanta of
  // zero: run until the tokens are collected or the graph stalls.
  std::int64_t firings = count;
  while (static_cast<std::int64_t>(times.size()) < count) {
    exec.reset();
    times.clear();
    if (!exec.run_until_firings(producer, firings).has_value()) break;
    firings *= 2;
    if (firings > (std::int64_t{1} << 40)) break;  // give up: starved edge
  }
  return times;
}

LatencySummary summarize_latency(const std::vector<Time>& stimuli,
                                 const std::vector<Time>& responses) {
  LatencySummary out;
  out.pairs = std::min(stimuli.size(), responses.size());
  if (out.pairs == 0) return out;
  out.min = responses[0] - stimuli[0];
  out.max = out.min;
  double sum = 0.0;
  for (std::size_t i = 0; i < out.pairs; ++i) {
    const Time lat = responses[i] - stimuli[i];
    ACC_EXPECTS_MSG(lat >= 0, "response precedes its stimulus");
    out.min = std::min(out.min, lat);
    out.max = std::max(out.max, lat);
    sum += static_cast<double>(lat);
  }
  out.mean = sum / static_cast<double>(out.pairs);
  return out;
}

LatencySummary end_to_end_latency(const Graph& g, ActorId source, EdgeId edge,
                                  std::int64_t count) {
  return summarize_latency(firing_start_times(g, source, count),
                           token_production_times(g, edge, count));
}

}  // namespace acc::df
