#include "dataflow/maxplus.hpp"

#include "common/check.hpp"
#include "dataflow/mcr.hpp"

namespace acc::df {

std::int64_t MaxPlus::value() const {
  ACC_EXPECTS_MSG(finite_, "value() of -inf");
  return v_;
}

MaxPlusMatrix::MaxPlusMatrix(std::size_t n) : n_(n), m_(n * n) {
  ACC_EXPECTS(n >= 1);
}

MaxPlus MaxPlusMatrix::at(std::size_t r, std::size_t c) const {
  ACC_EXPECTS(r < n_ && c < n_);
  return m_[r * n_ + c];
}

void MaxPlusMatrix::set(std::size_t r, std::size_t c, MaxPlus v) {
  ACC_EXPECTS(r < n_ && c < n_);
  m_[r * n_ + c] = v;
}

MaxPlusMatrix MaxPlusMatrix::identity(std::size_t n) {
  MaxPlusMatrix id(n);
  for (std::size_t i = 0; i < n; ++i) id.set(i, i, MaxPlus(0));
  return id;
}

MaxPlusMatrix operator*(const MaxPlusMatrix& a, const MaxPlusMatrix& b) {
  ACC_EXPECTS(a.n_ == b.n_);
  MaxPlusMatrix out(a.n_);
  for (std::size_t r = 0; r < a.n_; ++r) {
    for (std::size_t c = 0; c < a.n_; ++c) {
      MaxPlus acc = MaxPlus::neg_inf();
      for (std::size_t k = 0; k < a.n_; ++k)
        acc = acc | (a.m_[r * a.n_ + k] * b.m_[k * a.n_ + c]);
      out.m_[r * a.n_ + c] = acc;
    }
  }
  return out;
}

bool operator==(const MaxPlusMatrix& a, const MaxPlusMatrix& b) {
  return a.n_ == b.n_ && a.m_ == b.m_;
}

std::vector<MaxPlus> MaxPlusMatrix::apply(const std::vector<MaxPlus>& x) const {
  ACC_EXPECTS(x.size() == n_);
  std::vector<MaxPlus> out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    MaxPlus acc = MaxPlus::neg_inf();
    for (std::size_t c = 0; c < n_; ++c) acc = acc | (m_[r * n_ + c] * x[c]);
    out[r] = acc;
  }
  return out;
}

MaxPlusMatrix MaxPlusMatrix::scaled(std::int64_t lambda) const {
  MaxPlusMatrix out(n_);
  for (std::size_t i = 0; i < n_ * n_; ++i)
    out.m_[i] = m_[i] * MaxPlus(lambda);
  return out;
}

std::optional<Rational> maxplus_eigenvalue(const MaxPlusMatrix& m) {
  // Precedence graph: edge c -> r with weight M[r][c] (x_r(k) depends on
  // x_c(k-1)), one token per edge; the maximum cycle RATIO then equals the
  // maximum cycle MEAN.
  std::vector<RatioEdge> edges;
  for (std::size_t r = 0; r < m.size(); ++r) {
    for (std::size_t c = 0; c < m.size(); ++c) {
      const MaxPlus v = m.at(r, c);
      if (v.is_neg_inf()) continue;
      RatioEdge e;
      e.src = static_cast<std::int32_t>(c);
      e.dst = static_cast<std::int32_t>(r);
      // Weights in MCR must be >= 0; shift negatives via tokens? Our
      // schedule matrices are non-negative; reject others loudly.
      ACC_EXPECTS_MSG(v.value() >= 0,
                      "maxplus_eigenvalue expects non-negative entries");
      e.weight = v.value();
      e.tokens = 1;
      edges.push_back(e);
    }
  }
  if (edges.empty()) return std::nullopt;
  const McrResult r = max_cycle_ratio(static_cast<std::int32_t>(m.size()),
                                      edges);
  if (r.acyclic) return std::nullopt;
  ACC_CHECK(!r.zero_token_cycle);  // all edges carry one token
  return r.ratio;
}

std::optional<Cyclicity> maxplus_cyclicity(const MaxPlusMatrix& m,
                                           std::int64_t max_power) {
  ACC_EXPECTS(max_power >= 2);
  // Track powers M^1, M^2, ...; for each new power, test whether it is a
  // uniform shift of an earlier one.
  std::vector<MaxPlusMatrix> powers{m};
  for (std::int64_t k = 2; k <= max_power; ++k) {
    powers.push_back(powers.back() * m);
    const MaxPlusMatrix& cur = powers.back();
    for (std::int64_t k0 = static_cast<std::int64_t>(powers.size()) - 2;
         k0 >= 0; --k0) {
      const MaxPlusMatrix& old = powers[static_cast<std::size_t>(k0)];
      // Find the would-be shift from the first finite entry, then verify.
      std::optional<std::int64_t> shift;
      bool match = true;
      for (std::size_t r = 0; r < m.size() && match; ++r) {
        for (std::size_t c = 0; c < m.size() && match; ++c) {
          const MaxPlus a = old.at(r, c);
          const MaxPlus b = cur.at(r, c);
          if (a.is_neg_inf() != b.is_neg_inf()) {
            match = false;
          } else if (!a.is_neg_inf()) {
            const std::int64_t d = b.value() - a.value();
            if (!shift) shift = d;
            else if (*shift != d) match = false;
          }
        }
      }
      if (match && shift) {
        Cyclicity cy;
        cy.transient = k0 + 1;  // powers[k0] is M^(k0+1)
        cy.period = k - (k0 + 1);
        cy.growth = *shift;
        return cy;
      }
    }
  }
  return std::nullopt;
}

}  // namespace acc::df
