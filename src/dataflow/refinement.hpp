// The-earlier-the-better refinement checking (Geilen & Tripakis, HSCC'11).
//
// The paper's correctness argument (its Section III / Fig. 2) is a chain of
// refinements: hardware ⊑ CSDF model ⊑ single-actor SDF model. Component C
// refines abstraction C' iff earlier inputs never cause later outputs:
//     forall i: a(i) <= a'(i)  ==>  forall j: b(j) <= b'(j).
// Empirically we validate the consequent on matched token streams: every
// production timestamp of the refined system must be no later than the
// corresponding timestamp of its abstraction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataflow/graph.hpp"

namespace acc::df {

struct RefinementReport {
  bool holds = true;
  /// Index of the first token whose refined time exceeds the abstract time
  /// (only valid when !holds).
  std::size_t violating_index = 0;
  Time refined_time = 0;
  Time abstract_time = 0;
  /// Tokens actually compared (min of both lengths).
  std::size_t compared = 0;
};

/// Check b(j) <= b_hat(j) for all j over the common prefix. An abstraction
/// that produced fewer tokens than the refinement within the same horizon is
/// fine (it is allowed to be slower); the converse is a violation reported
/// via `holds` only if a common-index comparison fails.
[[nodiscard]] RefinementReport check_earlier_the_better(
    std::span<const Time> refined, std::span<const Time> abstraction);

/// Human-readable summary for logs/benches.
[[nodiscard]] std::string describe(const RefinementReport& r);

}  // namespace acc::df
