#include "dataflow/dse.hpp"

#include <algorithm>
#include <numeric>

#include "dataflow/executor.hpp"

namespace acc::df {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  return h * kFnvPrime;
}

}  // namespace

std::size_t DseEngine::CapVecHash::operator()(const CapVec& v) const {
  std::uint64_t h = kFnvOffset;
  for (std::int64_t c : v) h = fnv_mix(h, static_cast<std::uint64_t>(c));
  return static_cast<std::size_t>(h);
}

DseEngine::DseEngine(const Graph& g, std::vector<Channel> channels,
                     ActorId reference, BufferSizingOptions opt)
    : channels_(std::move(channels)),
      reference_(reference),
      opt_(opt),
      pool_(opt.jobs == 0 ? ThreadPool::hardware_threads()
                          : static_cast<std::size_t>(std::max(1, opt.jobs))) {
  ACC_EXPECTS(!channels_.empty());
  ACC_EXPECTS(reference_ >= 0 &&
              static_cast<std::size_t>(reference_) < g.num_actors());
  for (const Channel& ch : channels_) {
    ACC_EXPECTS(ch.data >= 0 &&
                static_cast<std::size_t>(ch.data) < g.num_edges());
    ACC_EXPECTS(ch.space >= 0 &&
                static_cast<std::size_t>(ch.space) < g.num_edges());
  }
  g.validate();  // once; every simulation skips re-validation
  worker_graphs_.assign(pool_.size(), g);

  // Structural fingerprint: everything that determines throughput except the
  // managed capacities (those are the memo key). Managed space edges
  // contribute their rates but not their token count.
  std::vector<bool> managed_space(g.num_edges(), false);
  for (const Channel& ch : channels_)
    managed_space[static_cast<std::size_t>(ch.space)] = true;
  std::uint64_t h = fnv_mix(kFnvOffset, g.num_actors());
  for (const Actor& a : g.actors()) {
    h = fnv_mix(h, a.phases());
    for (Time d : a.phase_durations) h = fnv_mix(h, static_cast<std::uint64_t>(d));
    h = fnv_mix(h, a.auto_concurrent ? 1 : 0);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(static_cast<EdgeId>(e));
    h = fnv_mix(h, static_cast<std::uint64_t>(ed.src));
    h = fnv_mix(h, static_cast<std::uint64_t>(ed.dst));
    for (std::int64_t q : ed.prod) h = fnv_mix(h, static_cast<std::uint64_t>(q));
    for (std::int64_t q : ed.cons) h = fnv_mix(h, static_cast<std::uint64_t>(q));
    h = fnv_mix(h, managed_space[e]
                       ? 0x5eed
                       : static_cast<std::uint64_t>(ed.initial_tokens));
  }
  fingerprint_ = fnv_mix(h, static_cast<std::uint64_t>(reference_));
}

std::vector<std::int64_t> DseEngine::snapshot_capacities() const {
  std::vector<std::int64_t> caps;
  caps.reserve(channels_.size());
  for (const Channel& ch : channels_)
    caps.push_back(worker_graphs_[0].channel_capacity(ch));
  return caps;
}

Rational DseEngine::simulate(std::size_t worker, const CapVec& caps) {
  Graph& g = worker_graphs_[worker];
  for (std::size_t i = 0; i < channels_.size(); ++i)
    g.set_channel_capacity(channels_[i], caps[i]);
  SelfTimedExecutor exec(g, assume_validated);
  const ThroughputResult r =
      exec.analyze_throughput(reference_, opt_.max_iterations);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.simulations;
    ++stats_.cache_misses;
  }
  if (r.deadlocked) return Rational(0);
  return r.throughput;
}

Rational DseEngine::throughput_on(std::size_t worker, const CapVec& caps) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(caps);
    if (it != memo_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }
  const Rational t = simulate(worker, caps);
  std::lock_guard<std::mutex> lock(mu_);
  memo_.emplace(caps, t);
  if (has_target_) frontier_note(caps, t >= target_);
  return t;
}

Rational DseEngine::throughput(const std::vector<std::int64_t>& caps) {
  ACC_EXPECTS(caps.size() == channels_.size());
  return throughput_on(0, caps);
}

std::optional<bool> DseEngine::frontier_implies(const CapVec& caps) const {
  const auto dominates = [&](const CapVec& a, const CapVec& b) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] < b[i]) return false;
    return true;  // a >= b component-wise
  };
  for (const CapVec& f : feasible_min_)
    if (dominates(caps, f)) return true;  // caps >= feasible point
  for (const CapVec& v : infeasible_max_)
    if (dominates(v, caps)) return false;  // caps <= infeasible point
  return std::nullopt;
}

void DseEngine::frontier_note(const CapVec& caps, bool ok) {
  const auto dominates = [](const CapVec& a, const CapVec& b) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] < b[i]) return false;
    return true;
  };
  std::vector<CapVec>& set = ok ? feasible_min_ : infeasible_max_;
  // Keep the set an antichain: feasible points are useful when minimal,
  // infeasible points when maximal.
  for (const CapVec& p : set) {
    const bool redundant = ok ? dominates(caps, p) : dominates(p, caps);
    if (redundant) return;
  }
  std::erase_if(set, [&](const CapVec& p) {
    return ok ? dominates(p, caps) : dominates(caps, p);
  });
  set.push_back(caps);
}

void DseEngine::set_target(const Rational& target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (has_target_ && target_ == target) return;
  target_ = target;
  has_target_ = true;
  feasible_min_.clear();
  infeasible_max_.clear();
}

bool DseEngine::feasible_on(std::size_t worker, const CapVec& caps,
                            const Rational& target) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(caps);
    if (it != memo_.end()) {
      ++stats_.cache_hits;
      const bool ok = it->second >= target;
      frontier_note(caps, ok);
      return ok;
    }
    if (const std::optional<bool> implied = frontier_implies(caps)) {
      ++(*implied ? stats_.pruned_feasible : stats_.pruned_infeasible);
      return *implied;
    }
  }
  const Rational t = simulate(worker, caps);
  std::lock_guard<std::mutex> lock(mu_);
  memo_.emplace(caps, t);
  const bool ok = t >= target;
  frontier_note(caps, ok);
  return ok;
}

bool DseEngine::feasible(const std::vector<std::int64_t>& caps,
                         const Rational& target) {
  ACC_EXPECTS(caps.size() == channels_.size());
  set_target(target);
  return feasible_on(0, caps, target);
}

Rational DseEngine::max_throughput_unbounded() {
  // Approximate "unbounded" by doubling a uniform finite cap until the
  // throughput saturates; monotonicity makes the last value the supremum
  // once two consecutive doublings agree.
  std::int64_t cap = 1;
  for (const Channel& ch : channels_)
    cap = std::max(cap, channel_capacity_lower_bound(worker_graphs_[0], ch));
  Rational best(-1);
  while (cap <= opt_.max_capacity) {
    const Rational t = throughput(CapVec(channels_.size(), cap));
    if (t == best) return t;  // saturated
    ACC_CHECK_MSG(t > best, "throughput not monotone in capacity (bug)");
    best = t;
    cap *= 2;
  }
  return best;
}

std::int64_t DseEngine::min_capacity_for(std::size_t idx,
                                         std::vector<std::int64_t> caps,
                                         const Rational& target) {
  ACC_EXPECTS(idx < channels_.size());
  ACC_EXPECTS(caps.size() == channels_.size());
  set_target(target);
  const auto probe = [&](std::int64_t c) {
    caps[idx] = c;
    return feasible_on(0, caps, target);
  };

  std::int64_t lo =
      channel_capacity_lower_bound(worker_graphs_[0], channels_[idx]);
  if (probe(lo)) return lo;
  // Exponential probe for a feasible upper bound, then binary search; valid
  // because throughput is monotone in the capacity.
  std::int64_t hi = std::max<std::int64_t>(lo * 2, lo + 1);
  while (!probe(hi)) {
    ACC_CHECK_MSG(hi < opt_.max_capacity,
                  "throughput target unreachable for any channel capacity");
    hi = std::min(opt_.max_capacity, hi * 2);
  }
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (probe(mid) ? hi : lo) = mid;
  }
  return hi;
}

std::vector<ParetoPoint> DseEngine::pareto_sweep(std::size_t idx) {
  ACC_EXPECTS(idx < channels_.size());
  const Rational best = max_throughput_unbounded();
  const std::int64_t lb =
      channel_capacity_lower_bound(worker_graphs_[0], channels_[idx]);
  CapVec caps = snapshot_capacities();

  std::vector<ParetoPoint> out;
  Rational prev(-1);
  std::int64_t next_prefetch = lb;
  for (std::int64_t cap = lb; cap <= opt_.max_capacity; ++cap) {
    if (pool_.size() > 1 && cap >= next_prefetch) {
      // Speculatively warm the memo for the next wave of capacities; the
      // staircase itself is read strictly in order below, so the result is
      // identical to the serial sweep.
      const std::int64_t wave_end = std::min<std::int64_t>(
          opt_.max_capacity, cap + static_cast<std::int64_t>(pool_.size()) - 1);
      for (std::int64_t c = cap; c <= wave_end; ++c) {
        CapVec probe = caps;
        probe[idx] = c;
        pool_.submit([this, probe = std::move(probe)](std::size_t w) {
          (void)throughput_on(w, probe);
        });
      }
      pool_.wait_idle();
      next_prefetch = wave_end + 1;
    }
    caps[idx] = cap;
    const Rational t = throughput(caps);
    ACC_CHECK_MSG(t >= prev, "throughput not monotone in capacity (bug)");
    if (t > prev) {
      out.push_back(ParetoPoint{cap, t});
      prev = t;
    }
    if (t >= best) break;  // saturated: the staircase is complete
  }
  return out;
}

MultiBufferResult DseEngine::minimize_total(const Rational& target) {
  const std::size_t k = channels_.size();
  set_target(target);

  // Per-channel lower bounds: the exact single-channel minimum with every
  // other channel opened wide. No assignment below these can be feasible.
  std::vector<std::int64_t> lower(k);
  for (std::size_t i = 0; i < k; ++i)
    lower[i] = min_capacity_for(i, CapVec(k, opt_.max_capacity), target);

  // Per-channel upper bounds: with every other channel at its LOWER bound,
  // the single-channel minimum is the most this channel could ever need in
  // an optimal assignment (raising others only helps).
  std::vector<std::int64_t> upper(k);
  for (std::size_t i = 0; i < k; ++i)
    upper[i] = min_capacity_for(i, lower, target);

  const std::int64_t base_total =
      std::accumulate(lower.begin(), lower.end(), std::int64_t{0});
  const std::int64_t max_total =
      std::accumulate(upper.begin(), upper.end(), std::int64_t{0});

  // Staircase: try total budgets in increasing order; within a budget,
  // enumerate all assignments >= lower bounds in the canonical (serial DFS)
  // order and return the first feasible one. Feasibility of each vector is a
  // pure function of the vector, so the winner never depends on thread count.
  std::vector<CapVec> cands;
  CapVec scratch(k);
  const std::function<void(std::size_t, std::int64_t)> enumerate =
      [&](std::size_t idx, std::int64_t slack) {
        if (idx + 1 == k) {
          if (lower[idx] + slack > upper[idx]) return;
          scratch[idx] = lower[idx] + slack;
          cands.push_back(scratch);
          return;
        }
        for (std::int64_t extra = 0; extra <= slack; ++extra) {
          if (lower[idx] + extra > upper[idx]) break;
          scratch[idx] = lower[idx] + extra;
          enumerate(idx + 1, slack - extra);
        }
      };

  for (std::int64_t total = base_total; total <= max_total; ++total) {
    cands.clear();
    enumerate(0, total - base_total);

    enum class St : char { unknown, feas, infeas };
    std::vector<St> st(cands.size(), St::unknown);
    // Resolve everything the memo and the monotone frontier already decide.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < cands.size(); ++i) {
        const auto it = memo_.find(cands[i]);
        if (it != memo_.end()) {
          ++stats_.cache_hits;
          st[i] = it->second >= target ? St::feas : St::infeas;
        } else if (const std::optional<bool> implied =
                       frontier_implies(cands[i])) {
          ++(*implied ? stats_.pruned_feasible : stats_.pruned_infeasible);
          st[i] = *implied ? St::feas : St::infeas;
        }
      }
    }

    const auto make_result = [&](std::size_t i) {
      MultiBufferResult res;
      res.capacities = cands[i];
      res.total = total;
      return res;
    };

    if (pool_.size() <= 1) {
      // Serial: identical probe sequence to the classic DFS, minus memo and
      // frontier savings.
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (st[i] == St::infeas) continue;
        if (st[i] == St::feas || feasible_on(0, cands[i], target))
          return make_result(i);
      }
      continue;
    }

    // Parallel: evaluate unknown candidates in order in waves; after each
    // wave the answer is the first feasible candidate with no unresolved
    // predecessor. Wave tasks write disjoint st[] slots.
    const std::size_t wave = 4 * pool_.size();
    std::size_t scan = 0;  // candidates before `scan` are resolved
    for (;;) {
      while (scan < cands.size() && st[scan] != St::unknown) ++scan;
      // A feasible candidate in the resolved prefix wins; pick the earliest.
      for (std::size_t i = 0; i < scan; ++i)
        if (st[i] == St::feas) return make_result(i);
      if (scan == cands.size()) break;  // budget exhausted, all infeasible

      std::size_t scheduled = 0;
      for (std::size_t i = scan; i < cands.size() && scheduled < wave; ++i) {
        if (st[i] != St::unknown) continue;
        ++scheduled;
        St* slot = &st[i];
        const CapVec* caps = &cands[i];
        pool_.submit([this, slot, caps, &target](std::size_t w) {
          *slot = feasible_on(w, *caps, target) ? St::feas : St::infeas;
        });
      }
      pool_.wait_idle();
    }
  }
  throw invariant_error(
      "minimize_total_capacity: upper-bound assignment infeasible (bug)");
}

DseStats DseEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace acc::df
