#include "dataflow/dot.hpp"

#include <sstream>

namespace acc::df {

namespace {

std::string quanta_label(const std::vector<std::int64_t>& q) {
  // Compress uniform quanta to a scalar; otherwise list per phase.
  bool uniform = true;
  for (std::int64_t v : q) uniform &= v == q.front();
  if (uniform) return std::to_string(q.front());
  std::string s = "<";
  for (std::size_t i = 0; i < q.size(); ++i)
    s += (i ? "," : "") + std::to_string(q[i]);
  return s + ">";
}

std::string token_label(std::int64_t tokens) {
  if (tokens == 0) return "";
  if (tokens <= 3) return std::string(static_cast<std::size_t>(tokens), '*');
  return std::to_string(tokens) + "*";
}

}  // namespace

std::string to_dot(const Graph& g, const DotOptions& opt) {
  std::ostringstream os;
  os << "digraph \"" << opt.name << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t a = 0; a < g.num_actors(); ++a) {
    const Actor& actor = g.actor(static_cast<ActorId>(a));
    os << "  a" << a << " [label=\"" << actor.name << "\\n[";
    for (std::size_t p = 0; p < actor.phase_durations.size(); ++p)
      os << (p ? "," : "") << actor.phase_durations[p];
    os << "]\"];\n";
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    const bool is_space =
        opt.colour_back_edges && edge.name.find(".space") != std::string::npos;
    os << "  a" << edge.src << " -> a" << edge.dst << " [label=\""
       << quanta_label(edge.prod) << ":" << quanta_label(edge.cons);
    const std::string tok = token_label(edge.initial_tokens);
    if (!tok.empty()) os << " (" << tok << ")";
    os << "\"";
    if (is_space) os << ", color=gray, style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace acc::df
