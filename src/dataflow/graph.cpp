#include "dataflow/graph.hpp"

#include <algorithm>

namespace acc::df {

ActorId Graph::add_actor(std::string name, std::vector<Time> phase_durations,
                         bool auto_concurrent) {
  ACC_EXPECTS_MSG(!phase_durations.empty(), "actor needs at least one phase");
  for (Time d : phase_durations) ACC_EXPECTS_MSG(d >= 0, "negative duration");
  actors_.push_back(Actor{std::move(name), std::move(phase_durations),
                          auto_concurrent});
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  return static_cast<ActorId>(actors_.size() - 1);
}

ActorId Graph::add_sdf_actor(std::string name, Time duration,
                             bool auto_concurrent) {
  return add_actor(std::move(name), {duration}, auto_concurrent);
}

EdgeId Graph::add_edge(ActorId src, ActorId dst, std::vector<std::int64_t> prod,
                       std::vector<std::int64_t> cons,
                       std::int64_t initial_tokens, std::string name) {
  ACC_EXPECTS(src >= 0 && static_cast<std::size_t>(src) < actors_.size());
  ACC_EXPECTS(dst >= 0 && static_cast<std::size_t>(dst) < actors_.size());
  ACC_EXPECTS_MSG(prod.size() == actors_[src].phases(),
                  "prod arity != source phase count");
  ACC_EXPECTS_MSG(cons.size() == actors_[dst].phases(),
                  "cons arity != destination phase count");
  ACC_EXPECTS(initial_tokens >= 0);
  for (std::int64_t q : prod) ACC_EXPECTS(q >= 0);
  for (std::int64_t q : cons) ACC_EXPECTS(q >= 0);
  if (name.empty())
    name = actors_[src].name + "->" + actors_[dst].name + "#" +
           std::to_string(edges_.size());
  edges_.push_back(Edge{std::move(name), src, dst, std::move(prod),
                        std::move(cons), initial_tokens});
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  out_edges_[src].push_back(id);
  in_edges_[dst].push_back(id);
  return id;
}

EdgeId Graph::add_sdf_edge(ActorId src, ActorId dst, std::int64_t prod,
                           std::int64_t cons, std::int64_t initial_tokens,
                           std::string name) {
  ACC_EXPECTS(src >= 0 && static_cast<std::size_t>(src) < actors_.size());
  ACC_EXPECTS(dst >= 0 && static_cast<std::size_t>(dst) < actors_.size());
  return add_edge(src, dst,
                  std::vector<std::int64_t>(actors_[src].phases(), prod),
                  std::vector<std::int64_t>(actors_[dst].phases(), cons),
                  initial_tokens, std::move(name));
}

Channel Graph::add_channel(ActorId src, ActorId dst,
                           std::vector<std::int64_t> prod,
                           std::vector<std::int64_t> cons,
                           std::int64_t capacity, std::int64_t initial_tokens,
                           std::string name) {
  ACC_EXPECTS_MSG(capacity >= initial_tokens,
                  "channel capacity below initial fill");
  if (name.empty()) name = "ch" + std::to_string(edges_.size());
  // Space tokens travel dst -> src: the producer consumes `prod` spaces when
  // producing `prod` data tokens, the consumer returns `cons` spaces.
  std::vector<std::int64_t> space_prod = cons;  // produced by dst
  std::vector<std::int64_t> space_cons = prod;  // consumed by src
  const EdgeId data = add_edge(src, dst, std::move(prod), std::move(cons),
                               initial_tokens, name + ".data");
  const EdgeId space =
      add_edge(dst, src, std::move(space_prod), std::move(space_cons),
               capacity - initial_tokens, name + ".space");
  return Channel{data, space};
}

void Graph::set_channel_capacity(const Channel& ch, std::int64_t capacity) {
  const std::int64_t data_tokens = edge(ch.data).initial_tokens;
  ACC_EXPECTS_MSG(capacity >= data_tokens,
                  "channel capacity below initial fill");
  set_initial_tokens(ch.space, capacity - data_tokens);
}

std::int64_t Graph::channel_capacity(const Channel& ch) const {
  return edge(ch.data).initial_tokens + edge(ch.space).initial_tokens;
}

const Actor& Graph::actor(ActorId a) const {
  ACC_EXPECTS(a >= 0 && static_cast<std::size_t>(a) < actors_.size());
  return actors_[a];
}

const Edge& Graph::edge(EdgeId e) const {
  ACC_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < edges_.size());
  return edges_[e];
}

void Graph::set_initial_tokens(EdgeId e, std::int64_t tokens) {
  ACC_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < edges_.size());
  ACC_EXPECTS(tokens >= 0);
  edges_[e].initial_tokens = tokens;
}

const std::vector<EdgeId>& Graph::in_edges(ActorId a) const {
  ACC_EXPECTS(a >= 0 && static_cast<std::size_t>(a) < actors_.size());
  return in_edges_[a];
}

const std::vector<EdgeId>& Graph::out_edges(ActorId a) const {
  ACC_EXPECTS(a >= 0 && static_cast<std::size_t>(a) < actors_.size());
  return out_edges_[a];
}

ActorId Graph::find_actor(const std::string& name) const {
  const auto it = std::find_if(actors_.begin(), actors_.end(),
                               [&](const Actor& a) { return a.name == name; });
  if (it == actors_.end()) return kInvalidActor;
  return static_cast<ActorId>(it - actors_.begin());
}

void Graph::validate() const {
  for (const Edge& e : edges_) {
    ACC_CHECK(e.src >= 0 && static_cast<std::size_t>(e.src) < actors_.size());
    ACC_CHECK(e.dst >= 0 && static_cast<std::size_t>(e.dst) < actors_.size());
    ACC_CHECK(e.prod.size() == actors_[e.src].phases());
    ACC_CHECK(e.cons.size() == actors_[e.dst].phases());
    ACC_CHECK(e.initial_tokens >= 0);
    // An edge whose every phase-quantum is zero on one side can never carry
    // tokens and is almost certainly a modelling bug.
    const bool prod_all_zero =
        std::all_of(e.prod.begin(), e.prod.end(),
                    [](std::int64_t q) { return q == 0; });
    const bool cons_all_zero =
        std::all_of(e.cons.begin(), e.cons.end(),
                    [](std::int64_t q) { return q == 0; });
    ACC_CHECK_MSG(!prod_all_zero && !cons_all_zero,
                  "edge '" + e.name + "' has all-zero quanta on one side");
  }
}

}  // namespace acc::df
