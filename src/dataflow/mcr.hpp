// Maximum cycle ratio (MCR) analysis on weighted event graphs.
//
// An event graph assigns each edge a weight w (time) and a token count t.
// The maximum cycle ratio  max over cycles C of  (sum of w) / (sum of t)
// equals the inverse throughput of the corresponding HSDF graph — the
// classic MCM analysis the paper contrasts its parameterized approach with
// (it cannot be applied there because the block size eta stays symbolic; we
// provide it for the fixed-eta cross-checks and as a general analysis tool).
//
// The solver combines a floating-point binary search with exact rational
// verification, so the returned ratio is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"

namespace acc::df {

struct RatioEdge {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::int64_t weight = 0;  // accumulated time along the edge
  std::int64_t tokens = 0;  // initial tokens (iteration delay)
};

struct McrResult {
  /// A cycle with zero total tokens exists: the graph deadlocks / the ratio
  /// is unbounded.
  bool zero_token_cycle = false;
  /// True if the graph has no cycles at all (ratio undefined, throughput
  /// limited only by the actors themselves).
  bool acyclic = false;
  /// The exact maximum cycle ratio (valid when neither flag is set).
  Rational ratio;
  /// One critical cycle achieving the ratio, as a list of edge indices.
  std::vector<std::int32_t> critical_cycle;
};

/// Compute the maximum cycle ratio of the event graph with `num_nodes` nodes.
/// All weights must be >= 0 and token counts >= 0.
[[nodiscard]] McrResult max_cycle_ratio(std::int32_t num_nodes,
                                        const std::vector<RatioEdge>& edges);

}  // namespace acc::df
