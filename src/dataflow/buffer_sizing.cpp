#include "dataflow/buffer_sizing.hpp"

#include <algorithm>

#include "dataflow/dse.hpp"

namespace acc::df {

// The search entry points below all route through the DSE engine
// (dataflow/dse.hpp): it snapshots the graph (so the caller's capacities are
// trivially preserved), validates once, memoizes every simulated capacity
// vector and applies monotone feasibility pruning. `opt.jobs` controls the
// worker-thread count; results are identical for every value.

namespace {

void flush_stats(const BufferSizingOptions& opt, const DseEngine& engine) {
  if (opt.stats) *opt.stats += engine.stats();
}

}  // namespace

std::int64_t channel_capacity_lower_bound(const Graph& g, const Channel& ch) {
  const Edge& data = g.edge(ch.data);
  std::int64_t lb = 1;
  for (std::int64_t q : data.prod) lb = std::max(lb, q);
  for (std::int64_t q : data.cons) lb = std::max(lb, q);
  lb = std::max(lb, data.initial_tokens);
  return lb;
}

Rational measure_throughput(const Graph& g, ActorId reference,
                            const BufferSizingOptions& opt) {
  SelfTimedExecutor exec(g);
  const ThroughputResult r = exec.analyze_throughput(reference, opt.max_iterations);
  if (r.deadlocked) return Rational(0);
  return r.throughput;
}

Rational max_throughput_with_unbounded_channels(
    Graph& g, const std::vector<Channel>& channels, ActorId reference,
    const BufferSizingOptions& opt) {
  DseEngine engine(g, channels, reference, opt);
  const Rational best = engine.max_throughput_unbounded();
  flush_stats(opt, engine);
  return best;
}

std::int64_t min_channel_capacity_for_throughput(
    Graph& g, const Channel& ch, ActorId reference, const Rational& target,
    const BufferSizingOptions& opt) {
  DseEngine engine(g, {ch}, reference, opt);
  const std::int64_t cap =
      engine.min_capacity_for(0, engine.snapshot_capacities(), target);
  flush_stats(opt, engine);
  return cap;
}

std::vector<ParetoPoint> pareto_buffer_sweep(Graph& g, const Channel& ch,
                                             ActorId reference,
                                             const BufferSizingOptions& opt) {
  DseEngine engine(g, {ch}, reference, opt);
  std::vector<ParetoPoint> out = engine.pareto_sweep(0);
  flush_stats(opt, engine);
  return out;
}

MultiBufferResult minimize_total_capacity(Graph& g,
                                          const std::vector<Channel>& channels,
                                          ActorId reference,
                                          const Rational& target,
                                          const BufferSizingOptions& opt) {
  ACC_EXPECTS(!channels.empty());
  DseEngine engine(g, channels, reference, opt);
  const MultiBufferResult res = engine.minimize_total(target);
  flush_stats(opt, engine);
  return res;
}

}  // namespace acc::df
