#include "dataflow/buffer_sizing.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace acc::df {

namespace {

/// RAII guard restoring a set of channel capacities on scope exit, so the
/// searches can mutate the caller's graph without leaking state.
class CapacityGuard {
 public:
  CapacityGuard(Graph& g, const std::vector<Channel>& channels)
      : g_(g), channels_(channels) {
    saved_.reserve(channels.size());
    for (const Channel& ch : channels) saved_.push_back(g.channel_capacity(ch));
  }
  ~CapacityGuard() {
    for (std::size_t i = 0; i < channels_.size(); ++i)
      g_.set_channel_capacity(channels_[i], saved_[i]);
  }
  CapacityGuard(const CapacityGuard&) = delete;
  CapacityGuard& operator=(const CapacityGuard&) = delete;

 private:
  Graph& g_;
  std::vector<Channel> channels_;
  std::vector<std::int64_t> saved_;
};

}  // namespace

std::int64_t channel_capacity_lower_bound(const Graph& g, const Channel& ch) {
  const Edge& data = g.edge(ch.data);
  std::int64_t lb = 1;
  for (std::int64_t q : data.prod) lb = std::max(lb, q);
  for (std::int64_t q : data.cons) lb = std::max(lb, q);
  lb = std::max(lb, data.initial_tokens);
  return lb;
}

Rational measure_throughput(const Graph& g, ActorId reference,
                            const BufferSizingOptions& opt) {
  SelfTimedExecutor exec(g);
  const ThroughputResult r = exec.analyze_throughput(reference, opt.max_iterations);
  if (r.deadlocked) return Rational(0);
  return r.throughput;
}

Rational max_throughput_with_unbounded_channels(
    Graph& g, const std::vector<Channel>& channels, ActorId reference,
    const BufferSizingOptions& opt) {
  CapacityGuard guard(g, channels);
  // Truly unbounded channels admit unbounded queue growth (no periodic
  // state), so approximate "unbounded" by doubling a uniform finite cap
  // until the throughput saturates. Throughput is monotone in capacity, so
  // the last value is a lower bound that in practice equals the supremum
  // once two consecutive doublings agree.
  std::int64_t cap = 1;
  for (const Channel& ch : channels)
    cap = std::max(cap, channel_capacity_lower_bound(g, ch));
  Rational best(-1);
  while (cap <= opt.max_capacity) {
    for (const Channel& ch : channels) g.set_channel_capacity(ch, cap);
    const Rational t = measure_throughput(g, reference, opt);
    if (t == best) return t;  // saturated
    ACC_CHECK_MSG(t > best, "throughput not monotone in capacity (bug)");
    best = t;
    cap *= 2;
  }
  return best;
}

std::int64_t min_channel_capacity_for_throughput(
    Graph& g, const Channel& ch, ActorId reference, const Rational& target,
    const BufferSizingOptions& opt) {
  CapacityGuard guard(g, {ch});
  auto feasible = [&](std::int64_t cap) {
    g.set_channel_capacity(ch, cap);
    return measure_throughput(g, reference, opt) >= target;
  };

  std::int64_t lo = channel_capacity_lower_bound(g, ch);
  if (feasible(lo)) return lo;
  // Exponential probe for a feasible upper bound, then binary search. The
  // probe is valid because throughput is monotone in the capacity.
  std::int64_t hi = std::max<std::int64_t>(lo * 2, lo + 1);
  while (!feasible(hi)) {
    ACC_CHECK_MSG(hi < opt.max_capacity,
                  "throughput target unreachable for any channel capacity");
    hi = std::min(opt.max_capacity, hi * 2);
  }
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (feasible(mid) ? hi : lo) = mid;
  }
  return hi;
}

std::vector<ParetoPoint> pareto_buffer_sweep(Graph& g, const Channel& ch,
                                             ActorId reference,
                                             const BufferSizingOptions& opt) {
  CapacityGuard guard(g, {ch});
  std::vector<ParetoPoint> out;
  // Saturation target: the supremum over capacities.
  const Rational best =
      max_throughput_with_unbounded_channels(g, {ch}, reference, opt);
  Rational prev(-1);
  for (std::int64_t cap = channel_capacity_lower_bound(g, ch);
       cap <= opt.max_capacity; ++cap) {
    g.set_channel_capacity(ch, cap);
    const Rational t = measure_throughput(g, reference, opt);
    ACC_CHECK_MSG(t >= prev, "throughput not monotone in capacity (bug)");
    if (t > prev) {
      out.push_back(ParetoPoint{cap, t});
      prev = t;
    }
    if (t >= best) break;  // saturated: the staircase is complete
  }
  return out;
}

MultiBufferResult minimize_total_capacity(Graph& g,
                                          const std::vector<Channel>& channels,
                                          ActorId reference,
                                          const Rational& target,
                                          const BufferSizingOptions& opt) {
  ACC_EXPECTS(!channels.empty());
  CapacityGuard guard(g, channels);
  const std::size_t k = channels.size();

  auto feasible_now = [&] {
    return measure_throughput(g, reference, opt) >= target;
  };

  // Per-channel lower bounds: the exact single-channel minimum with every
  // other channel opened wide. No assignment below these can be feasible.
  std::vector<std::int64_t> lower(k);
  {
    for (const Channel& ch : channels)
      g.set_channel_capacity(ch, opt.max_capacity);
    for (std::size_t i = 0; i < k; ++i)
      lower[i] = min_channel_capacity_for_throughput(g, channels[i], reference,
                                                     target, opt);
  }

  // Per-channel upper bounds: with every other channel at its LOWER bound,
  // the single-channel minimum is the most this channel could ever need in
  // an optimal assignment (raising others only helps).
  std::vector<std::int64_t> upper(k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j)
      g.set_channel_capacity(channels[j], j == i ? opt.max_capacity : lower[j]);
    upper[i] = min_channel_capacity_for_throughput(g, channels[i], reference,
                                                   target, opt);
  }

  const std::int64_t base_total =
      std::accumulate(lower.begin(), lower.end(), std::int64_t{0});
  const std::int64_t max_total =
      std::accumulate(upper.begin(), upper.end(), std::int64_t{0});

  // Staircase: try total budgets in increasing order; within a budget,
  // enumerate all assignments >= lower bounds (DFS over the slack).
  std::vector<std::int64_t> caps(k);
  MultiBufferResult best;
  std::function<bool(std::size_t, std::int64_t)> dfs =
      [&](std::size_t idx, std::int64_t slack) -> bool {
    if (idx + 1 == k) {
      if (lower[idx] + slack > upper[idx]) return false;
      caps[idx] = lower[idx] + slack;
      for (std::size_t j = 0; j < k; ++j)
        g.set_channel_capacity(channels[j], caps[j]);
      return feasible_now();
    }
    for (std::int64_t extra = 0; extra <= slack; ++extra) {
      if (lower[idx] + extra > upper[idx]) break;
      caps[idx] = lower[idx] + extra;
      if (dfs(idx + 1, slack - extra)) return true;
    }
    return false;
  };

  for (std::int64_t total = base_total; total <= max_total; ++total) {
    if (dfs(0, total - base_total)) {
      best.capacities = caps;
      best.total = total;
      return best;
    }
  }
  throw invariant_error(
      "minimize_total_capacity: upper-bound assignment infeasible (bug)");
}

}  // namespace acc::df
