// Self-timed execution of (C)SDF graphs with exact integer timestamps.
//
// Self-timed execution (every actor fires as soon as it is enabled) yields
// the best-case schedule of a dataflow graph; for strongly-connected,
// consistent graphs its steady state is periodic and its rate equals the
// graph's maximum achievable throughput. The paper's analyses reduce to
// questions this executor answers exactly:
//   - minimum throughput of the per-stream CSDF model (paper Fig. 5),
//   - throughput of the single-actor SDF abstraction (paper Fig. 7),
//   - minimum buffer capacities for a target throughput (paper Fig. 8),
//   - token production times for the-earlier-the-better refinement checks.
//
// Operational semantics: tokens are consumed at firing start and produced at
// firing end; serialized actors (the CSDF default) have at most one firing in
// flight; phases advance cyclically in firing-start order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rational.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/repetition.hpp"

namespace acc::df {

/// Observation hooks. `on_firing` is invoked when a firing starts (its end
/// time is already known); `on_produce` once per edge per completed firing
/// that produced a positive number of tokens.
struct ExecObservers {
  std::function<void(ActorId actor, std::int32_t phase, Time start, Time end)>
      on_firing;
  std::function<void(EdgeId edge, std::int64_t count, Time when)> on_produce;
};

/// Post-mortem of a deadlocked execution: which actors starved and what
/// each one was waiting for.
struct DeadlockReport {
  bool deadlocked = false;
  /// Time at which nothing could fire any more.
  Time at = 0;
  /// For every actor that can never fire again: (actor, blocking edge with
  /// too few tokens for its next phase).
  struct Starved {
    ActorId actor = kInvalidActor;
    EdgeId blocking_edge = -1;
    std::int64_t tokens_present = 0;
    std::int64_t tokens_needed = 0;
  };
  std::vector<Starved> starved;
};

/// Run the graph to quiescence and report why it stopped. A live graph
/// (runs past `horizon` without quiescing) reports deadlocked = false.
[[nodiscard]] DeadlockReport diagnose_deadlock(const Graph& g,
                                               Time horizon = 1 << 20);

/// Human-readable rendering of a deadlock report.
[[nodiscard]] std::string describe(const DeadlockReport& r, const Graph& g);

/// Result of steady-state (throughput) analysis.
struct ThroughputResult {
  /// True if execution reached a state where nothing can ever fire again.
  bool deadlocked = false;
  /// Completions of the reference actor per unit time in steady state
  /// (0 if deadlocked).
  Rational throughput;
  /// Length of the detected periodic phase in time units.
  Time period = 0;
  /// Reference-actor completions within one period.
  std::int64_t firings_in_period = 0;
  /// Number of graph iterations executed before the periodic state recurred.
  std::int64_t transient_iterations = 0;
};

/// Tag for the validation-skipping constructor: the caller vouches that the
/// graph has already passed Graph::validate(). Used by search drivers
/// (buffer sizing, DSE) that construct thousands of executors on the same
/// pre-validated graph.
struct assume_validated_t {
  explicit assume_validated_t() = default;
};
inline constexpr assume_validated_t assume_validated{};

class SelfTimedExecutor {
 public:
  /// The graph must outlive the executor and must validate().
  explicit SelfTimedExecutor(const Graph& g);
  /// Skip structural validation: the caller guarantees g.validate() passed
  /// (capacity changes via set_channel_capacity never invalidate a graph).
  SelfTimedExecutor(const Graph& g, assume_validated_t);
  /// Guard against dangling references: a temporary graph cannot outlive
  /// the executor.
  explicit SelfTimedExecutor(Graph&&) = delete;
  SelfTimedExecutor(Graph&&, assume_validated_t) = delete;

  /// Restore all token counts and clocks to the initial state.
  void reset();

  void set_observers(ExecObservers obs) { observers_ = std::move(obs); }

  /// Run until `actor` has completed `count` firings in total (since reset).
  /// Returns the completion time of the count-th firing, or nullopt if the
  /// graph deadlocks first.
  std::optional<Time> run_until_firings(ActorId actor, std::int64_t count);

  /// Run until the clock passes `horizon` (events at exactly `horizon` are
  /// processed). Returns false if the graph deadlocked before the horizon.
  bool run_for(Time horizon);

  /// Detect the periodic steady state by state recurrence at iteration
  /// boundaries of `reference` and return the exact throughput. Requires a
  /// consistent graph. `max_iterations` bounds the search.
  ThroughputResult analyze_throughput(ActorId reference,
                                      std::int64_t max_iterations = 100000);

  /// Completion times of the first `count` firings of `actor` (runs the
  /// graph; call on a freshly reset executor for absolute times). Empty
  /// result slots are absent if the graph deadlocks early.
  std::vector<Time> completion_times(ActorId actor, std::int64_t count);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::int64_t tokens(EdgeId e) const { return tokens_[e]; }
  [[nodiscard]] std::int64_t completed_firings(ActorId a) const {
    return completed_[a];
  }
  /// Highest token count ever observed on an edge (buffer occupancy probe).
  [[nodiscard]] std::int64_t max_tokens_seen(EdgeId e) const {
    return max_tokens_[e];
  }

 private:
  struct Event {
    Time when;
    std::int64_t seq;  // tie-break for determinism
    ActorId actor;
    std::int32_t phase;
    friend bool operator>(const Event& a, const Event& b) {
      return std::tie(a.when, a.seq) > std::tie(b.when, b.seq);
    }
  };

  /// Start every enabled firing at the current time (fixpoint: starting one
  /// firing may enable zero-duration chains).
  void start_enabled();
  [[nodiscard]] bool enabled(ActorId a) const;
  void start_firing(ActorId a);
  void complete(const Event& ev);
  /// Advance to the next event time and process all completions there.
  /// Returns false if no events remain.
  bool step();

  /// Expose the heap's underlying storage so state_key() can enumerate
  /// pending events without the O(n log n) pop-everything copy.
  class EventQueue
      : public std::priority_queue<Event, std::vector<Event>, std::greater<>> {
   public:
    [[nodiscard]] const std::vector<Event>& container() const { return c; }
  };

  /// Hash the timing-relevant state for recurrence detection: token counts,
  /// next phases, and the (when - now, actor, phase) of every in-flight
  /// completion in deterministic (when, seq) order. Allocation-free after
  /// the first call (reuses scratch_).
  [[nodiscard]] std::uint64_t state_key() const;
  /// The pre-optimization serialized key; kept for the NDEBUG-off collision
  /// check in analyze_throughput.
  [[nodiscard]] std::string state_key_string() const;

  const Graph& g_;
  Time now_ = 0;
  std::int64_t seq_ = 0;
  std::vector<std::int64_t> tokens_;
  std::vector<std::int64_t> max_tokens_;
  std::vector<std::int32_t> next_phase_;
  std::vector<std::int32_t> in_flight_;
  std::vector<std::int64_t> completed_;
  EventQueue pending_;
  mutable std::vector<Event> scratch_;  // state_key() working storage
  ExecObservers observers_;
};

}  // namespace acc::df
