#include "dataflow/transform.hpp"

#include <numeric>

#include "dataflow/repetition.hpp"

namespace acc::df {

namespace {

Graph rebuild_with_collapsed(const Graph& g,
                             const std::vector<bool>& collapse) {
  Graph out;
  for (std::size_t i = 0; i < g.num_actors(); ++i) {
    const Actor& a = g.actor(static_cast<ActorId>(i));
    if (collapse[i] && a.phases() > 1) {
      const Time total = std::accumulate(a.phase_durations.begin(),
                                         a.phase_durations.end(), Time{0});
      out.add_actor(a.name, {total}, a.auto_concurrent);
    } else {
      out.add_actor(a.name, a.phase_durations, a.auto_concurrent);
    }
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    std::vector<std::int64_t> prod = edge.prod;
    std::vector<std::int64_t> cons = edge.cons;
    if (collapse[static_cast<std::size_t>(edge.src)] && prod.size() > 1)
      prod = {cycle_production(edge)};
    if (collapse[static_cast<std::size_t>(edge.dst)] && cons.size() > 1)
      cons = {cycle_consumption(edge)};
    out.add_edge(edge.src, edge.dst, std::move(prod), std::move(cons),
                 edge.initial_tokens, edge.name);
  }
  return out;
}

}  // namespace

Graph merge_phases(const Graph& g, ActorId a) {
  ACC_EXPECTS(a >= 0 && static_cast<std::size_t>(a) < g.num_actors());
  std::vector<bool> collapse(g.num_actors(), false);
  collapse[static_cast<std::size_t>(a)] = true;
  return rebuild_with_collapsed(g, collapse);
}

Graph to_sdf_abstraction(const Graph& g) {
  return rebuild_with_collapsed(g, std::vector<bool>(g.num_actors(), true));
}

}  // namespace acc::df
