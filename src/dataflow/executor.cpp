#include "dataflow/executor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace acc::df {

SelfTimedExecutor::SelfTimedExecutor(const Graph& g) : g_(g) {
  g_.validate();
  for (ActorId a = 0; a < static_cast<ActorId>(g_.num_actors()); ++a) {
    // An unconstrained auto-concurrent actor could start infinitely many
    // firings at one instant; reject the model instead of hanging.
    ACC_EXPECTS_MSG(!g_.actor(a).auto_concurrent || !g_.in_edges(a).empty(),
                    "auto-concurrent actor '" + g_.actor(a).name +
                        "' needs at least one input edge");
  }
  reset();
}

SelfTimedExecutor::SelfTimedExecutor(const Graph& g, assume_validated_t)
    : g_(g) {
  reset();
}

void SelfTimedExecutor::reset() {
  now_ = 0;
  seq_ = 0;
  tokens_.assign(g_.num_edges(), 0);
  max_tokens_.assign(g_.num_edges(), 0);
  for (std::size_t e = 0; e < g_.num_edges(); ++e) {
    tokens_[e] = g_.edge(static_cast<EdgeId>(e)).initial_tokens;
    max_tokens_[e] = tokens_[e];
  }
  next_phase_.assign(g_.num_actors(), 0);
  in_flight_.assign(g_.num_actors(), 0);
  completed_.assign(g_.num_actors(), 0);
  pending_ = {};
}

bool SelfTimedExecutor::enabled(ActorId a) const {
  const Actor& actor = g_.actor(a);
  if (!actor.auto_concurrent && in_flight_[a] > 0) return false;
  const std::int32_t p = next_phase_[a];
  for (EdgeId eid : g_.in_edges(a)) {
    const Edge& e = g_.edge(eid);
    if (tokens_[eid] < e.cons[p]) return false;
  }
  return true;
}

void SelfTimedExecutor::start_firing(ActorId a) {
  const Actor& actor = g_.actor(a);
  const std::int32_t p = next_phase_[a];
  for (EdgeId eid : g_.in_edges(a)) tokens_[eid] -= g_.edge(eid).cons[p];
  const Time end = now_ + actor.phase_durations[p];
  pending_.push(Event{end, seq_++, a, p});
  ++in_flight_[a];
  next_phase_[a] =
      static_cast<std::int32_t>((p + 1) % actor.phases());
  if (observers_.on_firing) observers_.on_firing(a, p, now_, end);
}

void SelfTimedExecutor::complete(const Event& ev) {
  const std::int32_t p = ev.phase;
  for (EdgeId eid : g_.out_edges(ev.actor)) {
    const Edge& e = g_.edge(eid);
    if (e.prod[p] > 0) {
      tokens_[eid] += e.prod[p];
      max_tokens_[eid] = std::max(max_tokens_[eid], tokens_[eid]);
      if (observers_.on_produce) observers_.on_produce(eid, e.prod[p], now_);
    }
  }
  --in_flight_[ev.actor];
  ++completed_[ev.actor];
}

void SelfTimedExecutor::start_enabled() {
  // Fixpoint: zero-duration firings complete inside step(), not here, so a
  // single sweep can only be invalidated by another start on the same actor
  // (multi-firing enablement). Loop until no actor can start.
  bool progress = true;
  while (progress) {
    progress = false;
    for (ActorId a = 0; a < static_cast<ActorId>(g_.num_actors()); ++a) {
      while (enabled(a)) {
        start_firing(a);
        progress = true;
        if (!g_.actor(a).auto_concurrent) break;
      }
    }
  }
}

bool SelfTimedExecutor::step() {
  if (pending_.empty()) return false;
  now_ = pending_.top().when;
  // Complete everything scheduled for this instant, then start newly enabled
  // firings; zero-duration firings scheduled "at now" are drained in the same
  // loop so time never runs backwards. The drain counter guards against Zeno
  // behaviour (a cycle of zero-duration actors firing forever at one instant).
  std::int64_t drains = 0;
  while (!pending_.empty() && pending_.top().when == now_) {
    ACC_CHECK_MSG(++drains < 1'000'000,
                  "zero-duration firing cycle: graph never advances time");
    while (!pending_.empty() && pending_.top().when == now_) {
      const Event ev = pending_.top();
      pending_.pop();
      complete(ev);
    }
    start_enabled();
  }
  return true;
}

std::optional<Time> SelfTimedExecutor::run_until_firings(ActorId actor,
                                                         std::int64_t count) {
  ACC_EXPECTS(count >= 0);
  start_enabled();
  // Zero-duration firings enabled at t=0 need one drain before stepping.
  while (!pending_.empty() && pending_.top().when == now_) step();
  while (completed_[actor] < count) {
    if (!step()) return std::nullopt;  // deadlock
  }
  return now_;
}

bool SelfTimedExecutor::run_for(Time horizon) {
  start_enabled();
  while (!pending_.empty() && pending_.top().when <= horizon) {
    if (!step()) break;
  }
  return !pending_.empty() || now_ >= horizon;
}

std::vector<Time> SelfTimedExecutor::completion_times(ActorId actor,
                                                      std::int64_t count) {
  std::vector<Time> times;
  times.reserve(static_cast<std::size_t>(count));
  ExecObservers saved = observers_;
  ExecObservers obs = saved;
  // Wrap (not replace) any user observer so both see the events.
  obs.on_firing = [&, saved](ActorId a, std::int32_t ph, Time s, Time e) {
    if (saved.on_firing) saved.on_firing(a, ph, s, e);
    if (a == actor && static_cast<std::int64_t>(times.size()) <
                          count)  // record completion time
      times.push_back(e);
  };
  set_observers(obs);
  run_until_firings(actor, count);
  set_observers(saved);
  // Completion order equals start order for serialized actors; sort anyway
  // so auto-concurrent reference actors report monotone times.
  std::sort(times.begin(), times.end());
  times.resize(std::min<std::size_t>(times.size(),
                                     static_cast<std::size_t>(count)));
  return times;
}

namespace {

/// Incremental FNV-1a over 64-bit words. Hashing whole words (not bytes)
/// keeps the loop branch-free and is plenty mixing for recurrence detection.
struct Fnv1a64 {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  void mix(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;  // FNV prime
  }
  void mix_i64(std::int64_t x) { mix(static_cast<std::uint64_t>(x)); }
};

}  // namespace

std::uint64_t SelfTimedExecutor::state_key() const {
  // Timing-relevant state: token counts, next phases, and the relative
  // offsets of all in-flight completions. Enumerated in the heap's pop
  // order — (when, seq) ascending — so the hash covers exactly the bytes the
  // old string key serialized, without the per-call heap copy + string
  // allocation.
  Fnv1a64 fnv;
  for (std::int64_t t : tokens_) fnv.mix_i64(t);
  for (std::int32_t p : next_phase_) fnv.mix_i64(p);
  scratch_.assign(pending_.container().begin(), pending_.container().end());
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Event& a, const Event& b) {
              return std::tie(a.when, a.seq) < std::tie(b.when, b.seq);
            });
  for (const Event& ev : scratch_) {
    fnv.mix_i64(ev.when - now_);
    fnv.mix_i64(ev.actor);
    fnv.mix_i64(ev.phase);
  }
  return fnv.h;
}

std::string SelfTimedExecutor::state_key_string() const {
  std::vector<std::int64_t> v;
  v.reserve(tokens_.size() + next_phase_.size() + pending_.size() * 3 + 1);
  for (std::int64_t t : tokens_) v.push_back(t);
  for (std::int32_t p : next_phase_) v.push_back(p);
  auto copy = pending_;
  while (!copy.empty()) {
    const Event& ev = copy.top();
    v.push_back(ev.when - now_);
    v.push_back(ev.actor);
    v.push_back(ev.phase);
    copy.pop();
  }
  return std::string(reinterpret_cast<const char*>(v.data()),
                     v.size() * sizeof(std::int64_t));
}

DeadlockReport diagnose_deadlock(const Graph& g, Time horizon) {
  SelfTimedExecutor exec(g);
  DeadlockReport out;
  if (exec.run_for(horizon)) {
    return out;  // events still pending (or horizon reached): live
  }
  // Quiesced: nothing in flight, nothing enabled. Explain each actor.
  out.deadlocked = true;
  out.at = exec.now();
  for (ActorId a = 0; a < static_cast<ActorId>(g.num_actors()); ++a) {
    const Actor& actor = g.actor(a);
    // Reconstruct the next phase from completed firings (serialized actors;
    // auto-concurrent ones report their next phase the same way).
    const auto phase = static_cast<std::int32_t>(
        exec.completed_firings(a) % static_cast<std::int64_t>(actor.phases()));
    for (EdgeId eid : g.in_edges(a)) {
      const Edge& e = g.edge(eid);
      if (exec.tokens(eid) < e.cons[phase]) {
        out.starved.push_back(DeadlockReport::Starved{
            a, eid, exec.tokens(eid), e.cons[phase]});
        break;  // one blocking edge per actor is enough for diagnosis
      }
    }
  }
  return out;
}

std::string describe(const DeadlockReport& r, const Graph& g) {
  std::ostringstream os;
  if (!r.deadlocked) {
    os << "graph is live (no quiescence before the horizon)";
    return os.str();
  }
  os << "deadlock at t=" << r.at << ":";
  for (const DeadlockReport::Starved& s : r.starved) {
    os << "\n  " << g.actor(s.actor).name << " starved on edge '"
       << g.edge(s.blocking_edge).name << "' (" << s.tokens_present << "/"
       << s.tokens_needed << " tokens)";
  }
  return os.str();
}

ThroughputResult SelfTimedExecutor::analyze_throughput(
    ActorId reference, std::int64_t max_iterations) {
  const RepetitionVector rv = compute_repetition_vector(g_);
  ACC_EXPECTS_MSG(rv.consistent, "throughput analysis needs a consistent graph");
  const std::int64_t ref_per_iter = rv.firings[reference];
  ACC_CHECK(ref_per_iter > 0);

  reset();
  ThroughputResult out;

  // States observed at iteration boundaries of the reference actor, keyed by
  // the 64-bit state hash. A hash collision would mis-detect a recurrence;
  // debug builds cross-check every hash against the full serialized state.
  std::unordered_map<std::uint64_t, std::pair<Time, std::int64_t>> seen;
#ifndef NDEBUG
  std::unordered_map<std::uint64_t, std::string> seen_full;
#endif
  for (std::int64_t iter = 1; iter <= max_iterations; ++iter) {
    if (!run_until_firings(reference, iter * ref_per_iter).has_value()) {
      out.deadlocked = true;
      return out;
    }
    const std::uint64_t key = state_key();
#ifndef NDEBUG
    {
      const std::string full = state_key_string();
      const auto fit = seen_full.find(key);
      ACC_CHECK_MSG(fit == seen_full.end() || fit->second == full,
                    "state_key 64-bit hash collision");
      seen_full.emplace(key, full);
    }
#endif
    const auto it = seen.find(key);
    if (it != seen.end()) {
      const Time t0 = it->second.first;
      const std::int64_t f0 = it->second.second;
      out.period = now_ - t0;
      out.firings_in_period = completed_[reference] - f0;
      ACC_CHECK(out.firings_in_period > 0);
      if (out.period == 0) {
        // Entire period executes in zero time: unbounded rate. Model as a
        // gigantic-but-finite rate so callers can still compare.
        out.throughput = Rational(INT64_MAX / 2);
      } else {
        out.throughput = Rational(out.firings_in_period, out.period);
      }
      out.transient_iterations = iter;
      return out;
    }
    seen.emplace(key, std::make_pair(now_, completed_[reference]));
  }
  throw invariant_error(
      "analyze_throughput: no periodic state within iteration budget");
}

}  // namespace acc::df
