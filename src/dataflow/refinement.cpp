#include "dataflow/refinement.hpp"

#include <algorithm>
#include <sstream>

namespace acc::df {

RefinementReport check_earlier_the_better(std::span<const Time> refined,
                                          std::span<const Time> abstraction) {
  RefinementReport out;
  out.compared = std::min(refined.size(), abstraction.size());
  for (std::size_t j = 0; j < out.compared; ++j) {
    if (refined[j] > abstraction[j]) {
      out.holds = false;
      out.violating_index = j;
      out.refined_time = refined[j];
      out.abstract_time = abstraction[j];
      return out;
    }
  }
  return out;
}

std::string describe(const RefinementReport& r) {
  std::ostringstream os;
  if (r.holds) {
    os << "refinement holds over " << r.compared << " tokens";
  } else {
    os << "refinement VIOLATED at token " << r.violating_index << ": refined t="
       << r.refined_time << " > abstract t=" << r.abstract_time;
  }
  return os.str();
}

}  // namespace acc::df
