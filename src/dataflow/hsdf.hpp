// SDF -> HSDF expansion and MCM-based throughput analysis.
//
// A consistent SDF graph expands into a Homogeneous SDF (HSDF) graph with
// r[a] copies of each actor a (r = repetition vector). Throughput then
// follows from maximum-cycle-mean analysis on the expansion — the classical
// technique (Sriram & Bhattacharyya) that the paper's parameterized models
// deliberately avoid (the block size eta keeps the topology symbolic). We
// use it as an independent oracle to cross-check the self-timed executor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rational.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/mcr.hpp"

namespace acc::df {

struct HsdfGraph {
  /// Node k corresponds to copy `copy[k]` of original actor `origin[k]`.
  std::vector<ActorId> origin;
  std::vector<std::int32_t> copy;
  std::vector<Time> duration;
  /// Precedence edges: dst firing n waits for src firing n - tokens.
  std::vector<RatioEdge> edges;

  [[nodiscard]] std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(origin.size());
  }
};

/// Expand a consistent single-phase (SDF) graph. Actors must all have one
/// phase; serialized actors contribute their implicit self-edge.
[[nodiscard]] HsdfGraph expand_to_hsdf(const Graph& g);

struct SdfThroughput {
  bool deadlocked = false;
  /// Iterations of the full graph per time unit.
  Rational iterations_per_time;
  /// Firings of the given reference actor per time unit.
  Rational firings_per_time;
};

/// MCM-based throughput of a consistent SDF graph; exact. The reference
/// actor scales iterations to firings (firings = iterations * r[ref]).
[[nodiscard]] SdfThroughput sdf_throughput_via_mcm(const Graph& g,
                                                   ActorId reference);

}  // namespace acc::df
