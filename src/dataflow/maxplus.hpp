// Max-plus linear algebra.
//
// Self-timed dataflow schedules are linear in the (max, +) semiring: if
// x(k) collects the completion times of the k-th firings, then
// x(k) = M (x) x(k-1) for a constant matrix M, and the long-run growth rate
// of M (its max-plus eigenvalue) is the inverse throughput. This module
// implements the algebra and the two classic results the analyses use:
//
//  * eigenvalue(M) = maximum cycle mean of M's precedence graph,
//  * cyclicity: powers of an irreducible matrix are eventually periodic,
//    M^(k+c) = lambda*c (x) M^k — which turns "the schedule is eventually
//    affine in the block size" (sharing/parametric.hpp) from an empirical
//    observation into a theorem this library checks.
//
// Entries are integers or -inf (no dependence), matching the cycle-level
// models everywhere else in the repository.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/rational.hpp"

namespace acc::df {

/// Max-plus scalar: an integer or "minus infinity" (the semiring zero).
class MaxPlus {
 public:
  constexpr MaxPlus() = default;  // -inf
  constexpr MaxPlus(std::int64_t v) : finite_(true), v_(v) {}  // NOLINT

  [[nodiscard]] static constexpr MaxPlus neg_inf() { return MaxPlus(); }
  [[nodiscard]] constexpr bool is_neg_inf() const { return !finite_; }
  [[nodiscard]] std::int64_t value() const;

  /// Semiring addition: max.
  friend constexpr MaxPlus operator|(MaxPlus a, MaxPlus b) {
    if (a.is_neg_inf()) return b;
    if (b.is_neg_inf()) return a;
    return MaxPlus(a.v_ > b.v_ ? a.v_ : b.v_);
  }
  /// Semiring multiplication: +.
  friend constexpr MaxPlus operator*(MaxPlus a, MaxPlus b) {
    if (a.is_neg_inf() || b.is_neg_inf()) return neg_inf();
    return MaxPlus(a.v_ + b.v_);
  }
  friend constexpr bool operator==(MaxPlus a, MaxPlus b) = default;

 private:
  bool finite_ = false;
  std::int64_t v_ = std::numeric_limits<std::int64_t>::min();
};

/// Dense square max-plus matrix.
class MaxPlusMatrix {
 public:
  explicit MaxPlusMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] MaxPlus at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, MaxPlus v);

  /// Identity: 0 on the diagonal, -inf elsewhere.
  [[nodiscard]] static MaxPlusMatrix identity(std::size_t n);

  /// Matrix product in (max, +).
  friend MaxPlusMatrix operator*(const MaxPlusMatrix& a,
                                 const MaxPlusMatrix& b);
  friend bool operator==(const MaxPlusMatrix& a, const MaxPlusMatrix& b);

  /// Matrix-vector product.
  [[nodiscard]] std::vector<MaxPlus> apply(
      const std::vector<MaxPlus>& x) const;

  /// Add lambda to every finite entry (scalar (x) matrix).
  [[nodiscard]] MaxPlusMatrix scaled(std::int64_t lambda) const;

 private:
  std::size_t n_;
  std::vector<MaxPlus> m_;
};

/// Max-plus eigenvalue of M = maximum cycle mean of its precedence graph
/// (edge r -> c of weight M[r][c]); nullopt when M has no cycles through
/// finite entries (nilpotent — growth is not rate-limited).
[[nodiscard]] std::optional<Rational> maxplus_eigenvalue(
    const MaxPlusMatrix& m);

/// Cyclicity: smallest (k0, c, lambda_c) with M^(k0+c) = lambda_c (x) M^k0,
/// searched up to `max_power`. For an irreducible M, lambda_c / c equals
/// the eigenvalue. Returns nullopt if no period shows up within the budget.
struct Cyclicity {
  std::int64_t transient = 0;   // k0
  std::int64_t period = 0;      // c
  std::int64_t growth = 0;      // lambda * c (integer for integer matrices)
};
[[nodiscard]] std::optional<Cyclicity> maxplus_cyclicity(
    const MaxPlusMatrix& m, std::int64_t max_power = 512);

}  // namespace acc::df
