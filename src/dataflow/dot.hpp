// Graphviz export of (C)SDF graphs — design documentation and debugging.
#pragma once

#include <string>

#include "dataflow/graph.hpp"

namespace acc::df {

struct DotOptions {
  /// Graph name in the dot header.
  std::string name = "csdf";
  /// Render channel pairs (data + space edge) in distinct colours.
  bool colour_back_edges = true;
};

/// Render the graph in Graphviz dot syntax. Actors become boxes labelled
/// "name [d0,d1,...]"; edges are labelled "prod:cons" with token dots for
/// initial tokens (counts above 3 are printed numerically).
[[nodiscard]] std::string to_dot(const Graph& g, const DotOptions& opt = {});

}  // namespace acc::df
