#include "dataflow/hsdf.hpp"

#include <map>

#include "dataflow/repetition.hpp"

namespace acc::df {

HsdfGraph expand_to_hsdf(const Graph& g) {
  for (const Actor& a : g.actors())
    ACC_EXPECTS_MSG(a.phases() == 1, "expand_to_hsdf needs single-phase (SDF) actors");
  const RepetitionVector rv = compute_repetition_vector(g);
  ACC_EXPECTS_MSG(rv.consistent, "expand_to_hsdf needs a consistent graph");

  HsdfGraph h;
  std::vector<std::int32_t> base(g.num_actors());
  for (ActorId a = 0; a < static_cast<ActorId>(g.num_actors()); ++a) {
    base[a] = h.num_nodes();
    for (std::int32_t i = 0; i < rv.firings[a]; ++i) {
      h.origin.push_back(a);
      h.copy.push_back(i);
      h.duration.push_back(g.actor(a).phase_durations[0]);
    }
  }

  // Keep only the tightest (minimum-delay) edge per (src,dst) node pair.
  std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> best;
  auto add = [&](std::int32_t s, std::int32_t d, std::int64_t tokens) {
    const auto key = std::make_pair(s, d);
    const auto it = best.find(key);
    if (it == best.end() || tokens < it->second) best[key] = tokens;
  };

  auto expand_edge = [&](ActorId u, ActorId v, std::int64_t p, std::int64_t c,
                         std::int64_t d0) {
    const std::int64_t ru = rv.firings[u];
    const std::int64_t rvv = rv.firings[v];
    // Firing x of u (1-based, first iteration) produces tokens
    // n = (x-1)p+1 .. xp; token n is consumed by firing y = ceil((n+d0)/c)
    // of v, which lies in iteration (y-1)/rvv => that many delay tokens.
    for (std::int64_t x = 1; x <= ru; ++x) {
      for (std::int64_t l = 1; l <= p; ++l) {
        const std::int64_t n = (x - 1) * p + l;
        const std::int64_t y = (n + d0 + c - 1) / c;
        const std::int32_t i = static_cast<std::int32_t>(x - 1);
        const std::int32_t j = static_cast<std::int32_t>((y - 1) % rvv);
        const std::int64_t delay = (y - 1) / rvv;
        add(base[u] + i, base[v] + j, delay);
      }
    }
  };

  for (const Edge& e : g.edges())
    expand_edge(e.src, e.dst, e.prod[0], e.cons[0], e.initial_tokens);
  for (ActorId a = 0; a < static_cast<ActorId>(g.num_actors()); ++a)
    if (!g.actor(a).auto_concurrent)
      expand_edge(a, a, 1, 1, 1);  // implicit self-edge: serialized firings

  for (const auto& [key, tokens] : best) {
    RatioEdge re;
    re.src = key.first;
    re.dst = key.second;
    re.tokens = tokens;
    re.weight = h.duration[key.first];
    h.edges.push_back(re);
  }
  return h;
}

SdfThroughput sdf_throughput_via_mcm(const Graph& g, ActorId reference) {
  const RepetitionVector rv = compute_repetition_vector(g);
  ACC_EXPECTS_MSG(rv.consistent, "throughput needs a consistent graph");
  const HsdfGraph h = expand_to_hsdf(g);
  const McrResult mcr = max_cycle_ratio(h.num_nodes(), h.edges);

  SdfThroughput out;
  if (mcr.zero_token_cycle) {
    out.deadlocked = true;
    return out;
  }
  if (mcr.acyclic || mcr.ratio.is_zero()) {
    // No cycle constrains the rate: unbounded throughput. Mirror the
    // executor's convention of a gigantic finite rational.
    out.iterations_per_time = Rational(INT64_MAX / 2);
  } else {
    out.iterations_per_time = mcr.ratio.reciprocal();
  }
  out.firings_per_time = out.iterations_per_time * Rational(rv.firings[reference]);
  return out;
}

}  // namespace acc::df
