#include "dataflow/repetition.hpp"

#include <numeric>
#include <queue>

namespace acc::df {

std::int64_t cycle_production(const Edge& e) {
  return std::accumulate(e.prod.begin(), e.prod.end(), std::int64_t{0});
}

std::int64_t cycle_consumption(const Edge& e) {
  return std::accumulate(e.cons.begin(), e.cons.end(), std::int64_t{0});
}

RepetitionVector compute_repetition_vector(const Graph& g) {
  const auto n = static_cast<std::int64_t>(g.num_actors());
  RepetitionVector rv;
  if (n == 0) {
    rv.consistent = true;
    return rv;
  }

  // Propagate rational cycle counts over each weakly connected component.
  std::vector<Rational> q(n, Rational(0));
  std::vector<bool> visited(n, false);

  for (ActorId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    q[root] = Rational(1);
    visited[root] = true;
    std::queue<ActorId> work;
    work.push(root);
    std::vector<ActorId> component{root};

    while (!work.empty()) {
      const ActorId a = work.front();
      work.pop();
      auto relax = [&](const Edge& e) {
        const std::int64_t p = cycle_production(e);
        const std::int64_t c = cycle_consumption(e);
        // validate() guarantees at least one non-zero quantum per side, so a
        // zero *sum* can still occur only if every phase quantum is zero,
        // which validate() rejects; guard anyway for un-validated graphs.
        if (p == 0 || c == 0) return false;
        const ActorId other = e.src == a ? e.dst : e.src;
        // Balance: q[src] * p == q[dst] * c.
        const Rational expected = e.src == a ? q[a] * Rational(p, c)
                                             : q[a] * Rational(c, p);
        if (!visited[other]) {
          q[other] = expected;
          visited[other] = true;
          component.push_back(other);
          work.push(other);
        } else if (q[other] != expected) {
          return false;  // contradiction: inconsistent graph
        }
        return true;
      };
      for (EdgeId eid : g.out_edges(a))
        if (!relax(g.edge(eid))) return rv;
      for (EdgeId eid : g.in_edges(a))
        if (!relax(g.edge(eid))) return rv;
    }

    // Scale this component to minimal positive integers.
    std::int64_t den_lcm = 1;
    for (ActorId a : component) den_lcm = lcm64(den_lcm, q[a].den());
    std::int64_t num_gcd = 0;
    for (ActorId a : component) {
      const Rational scaled = q[a] * Rational(den_lcm);
      ACC_CHECK(scaled.is_integer() && scaled.num() > 0);
      num_gcd = gcd64(num_gcd, scaled.num());
    }
    for (ActorId a : component)
      q[a] = q[a] * Rational(den_lcm, num_gcd);
  }

  rv.consistent = true;
  rv.cycles.resize(n);
  rv.firings.resize(n);
  for (ActorId a = 0; a < n; ++a) {
    ACC_CHECK(q[a].is_integer() && q[a].num() > 0);
    rv.cycles[a] = q[a].num();
    rv.firings[a] =
        rv.cycles[a] * static_cast<std::int64_t>(g.actor(a).phases());
  }
  return rv;
}

}  // namespace acc::df
