// Minimum buffer-capacity computation for (C)SDF graphs.
//
// The paper relies on "an existing SDF technique [Geilen/Basten/Stuijk,
// DAC'05]" to compute minimum buffer capacities for a given throughput and
// demonstrates (its Fig. 8) that those minimum capacities are NON-MONOTONE
// in the block size eta. This module provides the capacity computations:
//
//  - throughput is monotonically non-decreasing in every channel capacity
//    (adding space tokens can only enable firings earlier), so a per-channel
//    binary search is exact when one capacity varies;
//  - for several channels, an exhaustive staircase search over total
//    capacity finds the exact minimum-total assignment for small graphs
//    (the sizes the paper's models have).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {

/// Counters of the design-space exploration engine (dataflow/dse.hpp).
/// Exposed so tests can assert cache behaviour and benches can report a
/// perf trajectory.
struct DseStats {
  /// Self-timed simulations actually executed.
  std::int64_t simulations = 0;
  /// Throughput probes answered from the memo cache.
  std::int64_t cache_hits = 0;
  /// Throughput probes that had to simulate (== simulations, kept separate
  /// so the hit rate reads naturally).
  std::int64_t cache_misses = 0;
  /// Candidates killed because a component-wise-larger vector was already
  /// known infeasible (monotone pruning, lower side).
  std::int64_t pruned_infeasible = 0;
  /// Candidates answered because a component-wise-smaller vector was already
  /// known feasible (monotone pruning, upper side).
  std::int64_t pruned_feasible = 0;

  [[nodiscard]] std::int64_t pruned() const {
    return pruned_infeasible + pruned_feasible;
  }
  [[nodiscard]] double cache_hit_rate() const {
    const std::int64_t probes = cache_hits + cache_misses;
    return probes == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(probes);
  }
  DseStats& operator+=(const DseStats& o) {
    simulations += o.simulations;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    pruned_infeasible += o.pruned_infeasible;
    pruned_feasible += o.pruned_feasible;
    return *this;
  }
};

struct BufferSizingOptions {
  /// Hard upper bound considered per channel (throws if exceeded). Kept
  /// moderate by default: self-timed state recurrence takes O(capacity)
  /// iterations once queues fill, so huge caps make exact analysis slow.
  std::int64_t max_capacity = 4096;
  /// Iteration budget for each underlying throughput analysis.
  std::int64_t max_iterations = 200000;
  /// Worker threads for the DSE engine: 1 = serial (the default), 0 = one
  /// per hardware thread. Results are identical for every value.
  int jobs = 1;
  /// When set, engine counters are accumulated here on return.
  DseStats* stats = nullptr;
};

/// Smallest capacity a channel must have for its endpoints to fire at all:
/// the largest single-phase production and consumption must fit.
[[nodiscard]] std::int64_t channel_capacity_lower_bound(const Graph& g,
                                                        const Channel& ch);

/// Exact throughput (reference-actor firings per time) of `g` as configured.
[[nodiscard]] Rational measure_throughput(const Graph& g, ActorId reference,
                                          const BufferSizingOptions& opt = {});

/// Maximum achievable throughput with all the given channels opened up to
/// max_capacity (other buffers untouched). Restores capacities on return.
[[nodiscard]] Rational max_throughput_with_unbounded_channels(
    Graph& g, const std::vector<Channel>& channels, ActorId reference,
    const BufferSizingOptions& opt = {});

/// Exact minimum capacity of a single channel such that throughput of
/// `reference` is >= target, all other buffers untouched. Restores the
/// original capacity on return. Throws if even max_capacity cannot reach
/// the target.
[[nodiscard]] std::int64_t min_channel_capacity_for_throughput(
    Graph& g, const Channel& ch, ActorId reference, const Rational& target,
    const BufferSizingOptions& opt = {});

struct MultiBufferResult {
  std::vector<std::int64_t> capacities;  // parallel to input channels
  std::int64_t total = 0;
};

/// One breakpoint of the capacity/throughput trade-off staircase.
struct ParetoPoint {
  std::int64_t capacity = 0;   // smallest capacity achieving `throughput`
  Rational throughput;
};

/// The full Pareto staircase of one channel: every (capacity, throughput)
/// breakpoint from the structural minimum up to saturation. Throughput is
/// monotone in capacity, so the staircase is complete and exact. Restores
/// the original capacity on return.
[[nodiscard]] std::vector<ParetoPoint> pareto_buffer_sweep(
    Graph& g, const Channel& ch, ActorId reference,
    const BufferSizingOptions& opt = {});

/// Exact minimum-total capacity assignment over `channels` such that the
/// throughput target is met. Exhaustive staircase search (exponential in the
/// channel count — intended for the small analysis graphs of the paper),
/// executed by the DSE engine: memoized, monotone-pruned, and parallel over
/// `opt.jobs` workers with thread-count-independent results.
/// Restores original capacities on return.
[[nodiscard]] MultiBufferResult minimize_total_capacity(
    Graph& g, const std::vector<Channel>& channels, ActorId reference,
    const Rational& target, const BufferSizingOptions& opt = {});

}  // namespace acc::df
