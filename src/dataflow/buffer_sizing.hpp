// Minimum buffer-capacity computation for (C)SDF graphs.
//
// The paper relies on "an existing SDF technique [Geilen/Basten/Stuijk,
// DAC'05]" to compute minimum buffer capacities for a given throughput and
// demonstrates (its Fig. 8) that those minimum capacities are NON-MONOTONE
// in the block size eta. This module provides the capacity computations:
//
//  - throughput is monotonically non-decreasing in every channel capacity
//    (adding space tokens can only enable firings earlier), so a per-channel
//    binary search is exact when one capacity varies;
//  - for several channels, an exhaustive staircase search over total
//    capacity finds the exact minimum-total assignment for small graphs
//    (the sizes the paper's models have).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {

struct BufferSizingOptions {
  /// Hard upper bound considered per channel (throws if exceeded). Kept
  /// moderate by default: self-timed state recurrence takes O(capacity)
  /// iterations once queues fill, so huge caps make exact analysis slow.
  std::int64_t max_capacity = 4096;
  /// Iteration budget for each underlying throughput analysis.
  std::int64_t max_iterations = 200000;
};

/// Smallest capacity a channel must have for its endpoints to fire at all:
/// the largest single-phase production and consumption must fit.
[[nodiscard]] std::int64_t channel_capacity_lower_bound(const Graph& g,
                                                        const Channel& ch);

/// Exact throughput (reference-actor firings per time) of `g` as configured.
[[nodiscard]] Rational measure_throughput(const Graph& g, ActorId reference,
                                          const BufferSizingOptions& opt = {});

/// Maximum achievable throughput with all the given channels opened up to
/// max_capacity (other buffers untouched). Restores capacities on return.
[[nodiscard]] Rational max_throughput_with_unbounded_channels(
    Graph& g, const std::vector<Channel>& channels, ActorId reference,
    const BufferSizingOptions& opt = {});

/// Exact minimum capacity of a single channel such that throughput of
/// `reference` is >= target, all other buffers untouched. Restores the
/// original capacity on return. Throws if even max_capacity cannot reach
/// the target.
[[nodiscard]] std::int64_t min_channel_capacity_for_throughput(
    Graph& g, const Channel& ch, ActorId reference, const Rational& target,
    const BufferSizingOptions& opt = {});

struct MultiBufferResult {
  std::vector<std::int64_t> capacities;  // parallel to input channels
  std::int64_t total = 0;
};

/// One breakpoint of the capacity/throughput trade-off staircase.
struct ParetoPoint {
  std::int64_t capacity = 0;   // smallest capacity achieving `throughput`
  Rational throughput;
};

/// The full Pareto staircase of one channel: every (capacity, throughput)
/// breakpoint from the structural minimum up to saturation. Throughput is
/// monotone in capacity, so the staircase is complete and exact. Restores
/// the original capacity on return.
[[nodiscard]] std::vector<ParetoPoint> pareto_buffer_sweep(
    Graph& g, const Channel& ch, ActorId reference,
    const BufferSizingOptions& opt = {});

/// Exact minimum-total capacity assignment over `channels` such that the
/// throughput target is met. Exhaustive staircase search (exponential in the
/// channel count — intended for the small analysis graphs of the paper).
/// Restores original capacities on return.
[[nodiscard]] MultiBufferResult minimize_total_capacity(
    Graph& g, const std::vector<Channel>& channels, ActorId reference,
    const Rational& target, const BufferSizingOptions& opt = {});

}  // namespace acc::df
