#include "dataflow/serialize.hpp"

namespace acc::df {

namespace {

json::Array int_list(const std::vector<std::int64_t>& v) {
  json::Array a;
  a.reserve(v.size());
  for (std::int64_t x : v) a.emplace_back(x);
  return a;
}

std::vector<std::int64_t> int_vector(const json::Value& v) {
  std::vector<std::int64_t> out;
  for (const json::Value& x : v.as_array()) out.push_back(x.as_int());
  return out;
}

}  // namespace

json::Value graph_to_json(const Graph& g) {
  json::Array actors;
  for (const Actor& a : g.actors()) {
    json::Object o;
    o["name"] = a.name;
    o["durations"] = int_list(a.phase_durations);
    o["auto_concurrent"] = a.auto_concurrent;
    actors.emplace_back(std::move(o));
  }
  json::Array edges;
  for (const Edge& e : g.edges()) {
    json::Object o;
    o["src"] = static_cast<std::int64_t>(e.src);
    o["dst"] = static_cast<std::int64_t>(e.dst);
    o["prod"] = int_list(e.prod);
    o["cons"] = int_list(e.cons);
    o["tokens"] = e.initial_tokens;
    o["name"] = e.name;
    edges.emplace_back(std::move(o));
  }
  json::Object root;
  root["actors"] = std::move(actors);
  root["edges"] = std::move(edges);
  return root;
}

Graph graph_from_json(const json::Value& v) {
  Graph g;
  for (const json::Value& av : v.at("actors").as_array()) {
    const bool auto_conc =
        av.find("auto_concurrent") != nullptr && av.at("auto_concurrent").as_bool();
    g.add_actor(av.at("name").as_string(), int_vector(av.at("durations")),
                auto_conc);
  }
  for (const json::Value& ev : v.at("edges").as_array()) {
    const auto src = static_cast<ActorId>(ev.at("src").as_int());
    const auto dst = static_cast<ActorId>(ev.at("dst").as_int());
    ACC_EXPECTS_MSG(src >= 0 &&
                        static_cast<std::size_t>(src) < g.num_actors() &&
                        dst >= 0 &&
                        static_cast<std::size_t>(dst) < g.num_actors(),
                    "edge references an unknown actor");
    const json::Value* name = ev.find("name");
    g.add_edge(src, dst, int_vector(ev.at("prod")), int_vector(ev.at("cons")),
               ev.at("tokens").as_int(),
               name != nullptr ? name->as_string() : std::string{});
  }
  g.validate();
  return g;
}

std::string graph_to_string(const Graph& g) {
  return graph_to_json(g).pretty();
}

Graph graph_from_string(const std::string& text) {
  return graph_from_json(json::parse_or_throw(text));
}

}  // namespace acc::df
