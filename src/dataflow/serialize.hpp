// JSON (de)serialization of (C)SDF graphs — interchange with external
// tooling and persistent experiment definitions.
//
// Format (all numbers integers):
// {
//   "actors": [{"name": "...", "durations": [..], "auto_concurrent": bool}],
//   "edges":  [{"src": i, "dst": j, "prod": [..], "cons": [..],
//               "tokens": t, "name": "..."}]
// }
#pragma once

#include <string>

#include "common/json.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {

/// Serialize a graph (channels become their two constituent edges).
[[nodiscard]] json::Value graph_to_json(const Graph& g);

/// Rebuild a graph; throws acc::precondition_error on malformed input.
[[nodiscard]] Graph graph_from_json(const json::Value& v);

/// Convenience text round-trip.
[[nodiscard]] std::string graph_to_string(const Graph& g);
[[nodiscard]] Graph graph_from_string(const std::string& text);

}  // namespace acc::df
