// Repetition vectors and consistency for (C)SDF graphs.
//
// A consistent graph admits a minimal positive integer vector r such that
// for every edge  r[src] * sum(prod) == r[dst] * sum(cons)  where the sums
// run over one full phase cycle of the respective actor (Bilsen et al.).
// One "iteration" of the graph fires each actor a for r[a] complete cycles
// and returns every edge to its initial token count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rational.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {

struct RepetitionVector {
  /// True iff the balance equations have a positive solution.
  bool consistent = false;
  /// Minimal integer cycle counts per actor (empty if inconsistent).
  std::vector<std::int64_t> cycles;
  /// Minimal integer firing counts per actor: cycles[a] * phases(a).
  std::vector<std::int64_t> firings;
};

/// Compute the repetition vector. Graphs with several weakly-connected
/// components get each component scaled to minimal integers independently.
[[nodiscard]] RepetitionVector compute_repetition_vector(const Graph& g);

/// Total tokens produced on edge e during one full phase cycle of its source.
[[nodiscard]] std::int64_t cycle_production(const Edge& e);
/// Total tokens consumed from edge e during one full phase cycle of its sink.
[[nodiscard]] std::int64_t cycle_consumption(const Edge& e);

}  // namespace acc::df
