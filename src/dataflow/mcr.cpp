#include "dataflow/mcr.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/check.hpp"

namespace acc::df {

namespace {

/// Find any cycle in the subgraph of zero-token edges (DFS colouring).
bool has_zero_token_cycle(std::int32_t n, const std::vector<RatioEdge>& edges,
                          std::vector<std::int32_t>* cycle_out) {
  std::vector<std::vector<std::int32_t>> adj(n);
  for (std::size_t i = 0; i < edges.size(); ++i)
    if (edges[i].tokens == 0) adj[edges[i].src].push_back(static_cast<std::int32_t>(i));

  enum : std::int8_t { kWhite, kGrey, kBlack };
  std::vector<std::int8_t> colour(n, kWhite);
  std::vector<std::int32_t> via_edge(n, -1);

  // Iterative DFS to survive deep graphs.
  for (std::int32_t root = 0; root < n; ++root) {
    if (colour[root] != kWhite) continue;
    std::vector<std::pair<std::int32_t, std::size_t>> stack{{root, 0}};
    colour[root] = kGrey;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      if (idx < adj[u].size()) {
        const std::int32_t eid = adj[u][idx++];
        const std::int32_t v = edges[eid].dst;
        if (colour[v] == kWhite) {
          colour[v] = kGrey;
          via_edge[v] = eid;
          stack.emplace_back(v, 0);
        } else if (colour[v] == kGrey) {
          if (cycle_out != nullptr) {
            cycle_out->clear();
            cycle_out->push_back(eid);
            for (std::int32_t w = u; w != v; w = edges[via_edge[w]].src)
              cycle_out->push_back(via_edge[w]);
            std::reverse(cycle_out->begin(), cycle_out->end());
          }
          return true;
        }
      } else {
        colour[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

/// Bellman-Ford style positive-cycle detection with edge weights
/// w - lambda * tokens. Returns a cycle (edge indices) whose modified weight
/// is strictly positive, or nullopt if none exists.
///
/// Works for both double and Rational lambda via the Scalar parameter.
template <typename Scalar>
std::optional<std::vector<std::int32_t>> find_positive_cycle(
    std::int32_t n, const std::vector<RatioEdge>& edges, const Scalar& lambda) {
  // Distances start at zero from a virtual super-source connected to all
  // nodes; after n relaxation rounds any further relaxation lies on or
  // reaches a positive cycle.
  std::vector<Scalar> dist(n, Scalar(0));
  std::vector<std::int32_t> via_edge(n, -1);
  std::int32_t relaxed_node = -1;
  for (std::int32_t round = 0; round <= n; ++round) {
    relaxed_node = -1;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const RatioEdge& e = edges[i];
      const Scalar cand = dist[e.src] + Scalar(e.weight) -
                          lambda * Scalar(e.tokens);
      if (cand > dist[e.dst]) {
        dist[e.dst] = cand;
        via_edge[e.dst] = static_cast<std::int32_t>(i);
        relaxed_node = e.dst;
      }
    }
    if (relaxed_node == -1) return std::nullopt;  // converged: no positive cycle
  }
  // Walk back n steps to land inside the cycle, then peel it off.
  std::int32_t u = relaxed_node;
  for (std::int32_t i = 0; i < n; ++i) u = edges[via_edge[u]].src;
  std::vector<std::int32_t> cycle;
  std::int32_t w = u;
  do {
    const std::int32_t eid = via_edge[w];
    ACC_CHECK(eid >= 0);
    cycle.push_back(eid);
    w = edges[eid].src;
  } while (w != u);
  std::reverse(cycle.begin(), cycle.end());
  return cycle;
}

Rational cycle_ratio(const std::vector<RatioEdge>& edges,
                     const std::vector<std::int32_t>& cycle) {
  std::int64_t w = 0;
  std::int64_t t = 0;
  for (std::int32_t eid : cycle) {
    w += edges[eid].weight;
    t += edges[eid].tokens;
  }
  ACC_CHECK_MSG(t > 0, "cycle ratio of zero-token cycle");
  return Rational(w, t);
}

}  // namespace

McrResult max_cycle_ratio(std::int32_t num_nodes,
                          const std::vector<RatioEdge>& edges) {
  for (const RatioEdge& e : edges) {
    ACC_EXPECTS(e.src >= 0 && e.src < num_nodes);
    ACC_EXPECTS(e.dst >= 0 && e.dst < num_nodes);
    ACC_EXPECTS(e.weight >= 0 && e.tokens >= 0);
  }

  McrResult out;
  std::vector<std::int32_t> zcycle;
  if (has_zero_token_cycle(num_nodes, edges, &zcycle)) {
    out.zero_token_cycle = true;
    out.critical_cycle = std::move(zcycle);
    return out;
  }

  // Seed: any cycle at lambda = -1 is a cycle of the graph; if none, acyclic.
  auto seed = find_positive_cycle<double>(num_nodes, edges, -1.0);
  if (!seed.has_value()) {
    // All edge weights/token mixes may still hide a cycle of total modified
    // weight <= 0 at lambda=-1 only if weights are 0 and tokens 0 — excluded
    // by the zero-token-cycle check — or genuinely no cycle exists.
    out.acyclic = true;
    return out;
  }

  // Iterate: candidate ratio from the best cycle found so far; at lambda
  // equal to that exact ratio, look for a strictly positive cycle. Each
  // improvement strictly increases the candidate, and there are finitely
  // many simple-cycle ratios, so this terminates (Howard-style ascent).
  Rational candidate = cycle_ratio(edges, *seed);
  std::vector<std::int32_t> best_cycle = std::move(*seed);
  for (;;) {
    auto better = find_positive_cycle<Rational>(num_nodes, edges, candidate);
    if (!better.has_value()) break;
    const Rational r = cycle_ratio(edges, *better);
    ACC_CHECK_MSG(r > candidate, "MCR ascent failed to improve");
    candidate = r;
    best_cycle = std::move(*better);
  }
  out.ratio = candidate;
  out.critical_cycle = std::move(best_cycle);
  return out;
}

}  // namespace acc::df
