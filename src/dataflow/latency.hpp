// Token latency measurement on (C)SDF graphs under self-timed execution.
//
// Complements the throughput analyses: the paper's gateways trade latency
// (blocks wait for a whole round) for hardware cost, and this module makes
// that latency measurable on the analysis models: pair the i-th stimulus
// (source firing start) with the i-th response (token production on an
// observed edge).
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/graph.hpp"

namespace acc::df {

/// Start times of the first `count` firings of `actor` (self-timed run from
/// the initial state). Shorter if the graph deadlocks.
[[nodiscard]] std::vector<Time> firing_start_times(const Graph& g,
                                                   ActorId actor,
                                                   std::int64_t count);

/// Production times of the first `count` tokens on `edge` (one entry per
/// token; bulk productions repeat the same timestamp).
[[nodiscard]] std::vector<Time> token_production_times(const Graph& g,
                                                       EdgeId edge,
                                                       std::int64_t count);

struct LatencySummary {
  std::size_t pairs = 0;  // stimuli/response pairs compared
  Time min = 0;
  Time max = 0;
  double mean = 0.0;
};

/// Element-wise latency between stimulus times and response times (the
/// common prefix). Precondition: responses do not precede their stimuli.
[[nodiscard]] LatencySummary summarize_latency(
    const std::vector<Time>& stimuli, const std::vector<Time>& responses);

/// End-to-end convenience: latency from `source` firing starts to token
/// productions on `edge`, over `count` pairs.
[[nodiscard]] LatencySummary end_to_end_latency(const Graph& g,
                                                ActorId source, EdgeId edge,
                                                std::int64_t count);

}  // namespace acc::df
