// Conservative graph transformations.
//
// The paper's Fig. 7 step — abstracting a detailed CSDF fragment into a
// coarser SDF actor — is an instance of a general transformation: replace a
// CSDF actor by a single-phase actor that (a) consumes a whole cycle's
// tokens atomically at firing start, (b) fires for the summed phase
// durations, and (c) produces a whole cycle's tokens atomically at firing
// end. Under the-earlier-the-better refinement the abstraction is
// conservative: it can only consume later-or-equal amounts earlier and
// produce later, so throughput guarantees on the abstracted graph hold for
// the original (tested empirically in transform_test.cpp).
#pragma once

#include "dataflow/graph.hpp"

namespace acc::df {

/// Return a copy of `g` where actor `a` is collapsed to one phase:
/// duration = sum of its phase durations, every edge quantum = the cycle
/// total. All other actors and edges are unchanged.
[[nodiscard]] Graph merge_phases(const Graph& g, ActorId a);

/// Collapse every multi-phase actor (full CSDF -> SDF abstraction).
[[nodiscard]] Graph to_sdf_abstraction(const Graph& g);

}  // namespace acc::df
