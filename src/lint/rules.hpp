// The acc-lint rule catalog.
//
// Every diagnostic the model linter can emit carries one of these rule IDs.
// The catalog is the single source of truth: the linter, the CLI's --rules
// listing, the JSON schema validator and docs/static_analysis.md all derive
// from it. IDs are stable — suppressions and golden fixtures reference them
// — so rules may be added but never renumbered.
//
// Severity policy (see docs/static_analysis.md):
//   error   — the configuration violates a precondition of the paper's
//             temporal guarantees (Eq. 2-5, deadlock-freedom, gateway
//             protocol). Deploying it is unsound; acc-lint exits non-zero.
//   warning — the configuration is sound but carries an operational hazard
//             (nondeterminism, no headroom). Deployment is allowed.
//   note    — informational; surfaced so reviews see it, never gating.
#pragma once

#include <string_view>

namespace acc::lint {

enum class Severity : int { kNote = 0, kWarning = 1, kError = 2 };

[[nodiscard]] constexpr const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

struct RuleInfo {
  const char* id;        // stable short ID, e.g. "M04"
  const char* name;      // kebab-case mnemonic, e.g. "eta-positive"
  Severity severity;     // default severity tier
  const char* summary;   // one-line catalog entry
};

inline constexpr RuleInfo kRules[] = {
    {"C01", "config-invalid", Severity::kError,
     "configuration is structurally malformed (missing key, wrong type, "
     "out-of-range value)"},
    {"C02", "ctrl-mu-unsatisfiable", Severity::kError,
     "a control-plane join template declares a mu_s that Eq. 5 cannot "
     "satisfy even at eta = eta_max (every admission of it would be "
     "rejected)"},
    {"M01", "graph-inconsistent", Severity::kError,
     "dataflow graph has no positive repetition vector (rate mismatch; no "
     "periodic schedule exists)"},
    {"M02", "graph-deadlock", Severity::kError,
     "dataflow graph contains a zero-token cycle (static deadlock)"},
    {"M03", "channel-undersized", Severity::kError,
     "bounded channel capacity is below a single firing's quantum (the "
     "endpoint can never fire)"},
    {"M04", "eta-positive", Severity::kError,
     "block size eta_s must be >= 1 (Eq. 2 precondition)"},
    {"M05", "reconfig-negative", Severity::kError,
     "context-switch cost R_s must be >= 0 (Eq. 2 precondition)"},
    {"M06", "bottleneck-undefined", Severity::kError,
     "max(epsilon, rho_A, delta) ill-defined: empty chain, no streams, or a "
     "stage cost < 1"},
    {"M07", "ni-capacity", Severity::kError,
     "NI FIFO capacity < 2 breaks the conservativeness of tau_hat (Eq. 2)"},
    {"M08", "gamma-overflow", Severity::kError,
     "gamma_hat accumulation (Eq. 4) overflows 64-bit cycle arithmetic"},
    {"M09", "throughput-infeasible", Severity::kError,
     "Eq. 5 unsatisfiable: utilization >= 1, or the given block sizes miss a "
     "stream's throughput"},
    {"M10", "fifo-undersized", Severity::kError,
     "stream C-FIFO smaller than one block: the gateway admission check can "
     "never pass"},
    {"M11", "utilization-headroom", Severity::kWarning,
     "utilization >= 0.95: schedulable but with almost no headroom"},
    {"M12", "eta-above-minimum", Severity::kNote,
     "block sizes exceed the Algorithm-1 minimum (extra latency, e.g. from "
     "decimation alignment)"},
    {"M13", "block-rate-misaligned", Severity::kWarning,
     "kernel block size is not an integer multiple of the stream's per-block "
     "CSDF output quantum (fractional firings per block)"},
    {"G01", "gateway-unpaired", Severity::kError,
     "chain does not have exactly one entry and one exit gateway"},
    {"G02", "gateway-space-unwired", Severity::kError,
     "entry gateway stream lacks a consumer C-FIFO for its admission space "
     "check"},
    {"G03", "ctrl-kind-undeclared", Severity::kError,
     "a control-plane join template references an accelerator kind the "
     "chain does not declare (no context could ever be programmed)"},
    {"F01", "fault-site-unknown", Severity::kError,
     "fault configuration names a site the simulator does not have"},
    {"F02", "fault-unseeded", Severity::kError,
     "active fault sites without an explicit seed: runs are unreproducible"},
    {"F03", "fault-spec-invalid", Severity::kError,
     "fault law out of range (probability, delay bound, window or spacing)"},
    {"D01", "rng-unseeded", Severity::kWarning,
     "workload RNG not explicitly seeded: reruns diverge"},
    {"D02", "task-no-next-ready", Severity::kWarning,
     "task without a next_ready horizon in an event-stepper system forces "
     "dense ticking"},
    // V* rules are emitted by acc-verify (src/verify/), the exhaustive
    // bounded model checker, not by the static linter — they share this
    // catalog so suppressions, --rules and the JSON schema cover both tools.
    {"V01", "verify-deadlock", Severity::kError,
     "a reachable state is stable (no component can ever act again) without "
     "being quiescent-complete (drained chain, idle gateways, empty rings)"},
    {"V02", "verify-credit-conservation", Severity::kError,
     "credits held + tokens in flight + tokens buffered != NI capacity on "
     "some link in a reachable state (credit leak or phantom credit)"},
    {"V03", "verify-gateway-protocol", Severity::kError,
     "gateway protocol violation in a reachable state: admission without "
     "space, NI overflow, sample while disarmed, or a lost exit notification "
     "outside a declared fault window"},
    {"V04", "verify-bound-soundness", Severity::kError,
     "an explored fault-free execution exceeds the Eq. 2 worst-case block "
     "processing time tau_hat for its stream"},
    {"V05", "verify-wake-soundness", Severity::kError,
     "a component's frozen state changed inside a skip window its own "
     "next_event() declared quiescent (missed-wake hazard)"},
    {"V06", "verify-quiesce-before-reconfig", Severity::kError,
     "a reconfiguration (context switch) fired in a reachable state where "
     "the accelerator still held an in-flight block — reconfiguration "
     "without the mode-change protocol's quiesce step"},
};

inline constexpr int kNumRules = static_cast<int>(sizeof(kRules) / sizeof(kRules[0]));

/// Look up a rule by ID ("M04") or name ("eta-positive"); nullptr if absent.
[[nodiscard]] inline const RuleInfo* find_rule(std::string_view id_or_name) {
  for (const RuleInfo& r : kRules) {
    if (id_or_name == r.id || id_or_name == r.name) return &r;
  }
  return nullptr;
}

}  // namespace acc::lint
