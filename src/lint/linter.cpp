#include "lint/linter.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <ostream>
#include <set>

#include "common/checked.hpp"
#include "dataflow/mcr.hpp"
#include "dataflow/repetition.hpp"
#include "dataflow/serialize.hpp"
#include "sharing/analysis.hpp"
#include "sharing/blocksize.hpp"
#include "sim/fault.hpp"

namespace acc::lint {

namespace {

std::string idx(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

// ---------------------------------------------------------------------------
// Model rules (M**): Eq. 2-4 preconditions, feasibility, overflow safety.
// ---------------------------------------------------------------------------

/// Spec-level sanity. Returns true when the numbers are usable for the
/// arithmetic rules (a negative R_s or zero-cost stage would only cascade).
bool check_spec(const sharing::SharedSystemSpec& spec, LintReport& rep) {
  bool arith_ok = true;
  if (spec.streams.empty()) {
    rep.add("M06", "$.streams", "system has no streams",
            "declare at least one stream sharing the chain");
    arith_ok = false;
  }
  if (spec.chain.accel_cycles_per_sample.empty()) {
    rep.add("M06", "$.chain.accelerators", "chain has no accelerators",
            "a gateway pair must enclose at least one accelerator");
    arith_ok = false;
  }
  for (std::size_t i = 0; i < spec.chain.accel_cycles_per_sample.size(); ++i) {
    const sharing::Time rho = spec.chain.accel_cycles_per_sample[i];
    if (rho < 1) {
      rep.add("M06", idx("$.chain.accelerators", i),
              "accelerator cost rho_A = " + std::to_string(rho) +
                  " cycles/sample; max(epsilon, rho_A, delta) needs every "
                  "stage >= 1",
              "model a free stage as 1 cycle/sample");
      arith_ok = false;
    }
  }
  if (spec.chain.entry_cycles_per_sample < 1) {
    rep.add("M06", "$.chain.entry",
            "entry-gateway cost epsilon = " +
                std::to_string(spec.chain.entry_cycles_per_sample) + " < 1");
    arith_ok = false;
  }
  if (spec.chain.exit_cycles_per_sample < 1) {
    rep.add("M06", "$.chain.exit",
            "exit-gateway cost delta = " +
                std::to_string(spec.chain.exit_cycles_per_sample) + " < 1");
    arith_ok = false;
  }
  if (spec.chain.ni_capacity < 2) {
    rep.add("M07", "$.chain.ni_capacity",
            "NI FIFO capacity " + std::to_string(spec.chain.ni_capacity) +
                " < 2: the blocked pipeline can run slower than its "
                "bottleneck stage and tau_hat (Eq. 2) stops being "
                "conservative",
            "the paper's hardware double-buffers its NI FIFOs; use >= 2");
    arith_ok = false;
  }
  for (std::size_t s = 0; s < spec.streams.size(); ++s) {
    const sharing::StreamSpec& st = spec.streams[s];
    if (st.reconfig < 0) {
      rep.add("M05", idx("$.streams", s) + ".reconfig",
              "stream '" + st.name + "' has R_s = " +
                  std::to_string(st.reconfig) + " < 0 (Eq. 2 precondition)",
              "context save/restore cannot take negative time; use 0 for a "
              "free switch");
      arith_ok = false;
    }
    if (!(st.mu > Rational(0))) {
      rep.add("C01", idx("$.streams", s) + ".mu_num",
              "stream '" + st.name + "' declares non-positive throughput " +
                  st.mu.str());
      arith_ok = false;
    }
  }
  return arith_ok;
}

/// Utilization feasibility (the real relaxation of Algorithm 1).
void check_utilization(const sharing::SharedSystemSpec& spec,
                       LintReport& rep) {
  Rational util;
  try {
    util = sharing::utilization(spec);
  } catch (const std::overflow_error& e) {
    rep.add("M08", "$.streams",
            std::string("utilization sum overflows: ") + e.what(),
            "the stream load is astronomically mis-scaled; check mu_num/"
            "mu_den");
    return;
  }
  if (util >= Rational(1)) {
    rep.add("M09", "$.streams",
            "utilization c0*sum(mu_s) = " + util.str() +
                " >= 1: no block sizes can satisfy Eq. 5",
            "lower the per-sample bottleneck cost or the stream load");
  } else if (util >= Rational(95, 100)) {
    rep.add("M11", "$.streams",
            "utilization " + util.str() +
                " leaves under 5% headroom: any parameter drift breaks "
                "schedulability");
  }
}

void check_etas(const LintInput& in, const sharing::SharedSystemSpec& spec,
                LintReport& rep) {
  if (in.etas.empty()) return;
  if (in.etas.size() != spec.streams.size()) {
    rep.add("C01", "$.etas",
            "etas has " + std::to_string(in.etas.size()) + " entries for " +
                std::to_string(spec.streams.size()) + " streams");
    return;
  }
  bool positive = true;
  for (std::size_t s = 0; s < in.etas.size(); ++s) {
    if (in.etas[s] < 1) {
      rep.add("M04", idx("$.etas", s),
              "stream '" + spec.streams[s].name + "' has eta = " +
                  std::to_string(in.etas[s]) +
                  "; Eq. 2 requires blocks of at least one sample",
              "Algorithm 1 yields the minimal admissible block sizes");
      positive = false;
    }
  }
  if (!positive) return;

  // M13 (ISSUE 8): a rate-converting kernel fires once per input sample and
  // emits on a fixed decimation grid, so a block of eta_s inputs yields
  // eta_s / d outputs only when d = eta_s / block_out is an integer. A
  // block size that is not an integer multiple of its per-block output
  // quantum leaves a fractional firing at the block boundary: burst and
  // FIFO sizing computed in output samples truncate, and the batched block
  // path cannot tile the block with whole firings.
  for (std::size_t s = 0; s < in.etas.size() && s < in.block_out.size();
       ++s) {
    const std::int64_t out = in.block_out[s];
    if (out <= 0 || in.etas[s] % out == 0) continue;
    rep.add("M13", idx("$.etas", s),
            "stream '" + spec.streams[s].name + "': block size " +
                std::to_string(in.etas[s]) +
                " is not an integer multiple of its per-block output "
                "quantum " +
                std::to_string(out) +
                " (fractional kernel firings per block)",
            "round the block size up to a multiple of the output quantum, "
            "as Algorithm 1's decimation alignment does");
  }

  sharing::Time gamma = 0;
  try {
    gamma = sharing::gamma_hat(spec, in.etas);
    bool missed = false;
    for (std::size_t s = 0; s < in.etas.size(); ++s) {
      // Eq. 5 per stream: eta_s / gamma_hat >= mu_s.
      if (Rational(in.etas[s]) < spec.streams[s].mu * Rational(gamma)) {
        rep.add("M09", idx("$.etas", s),
                "stream '" + spec.streams[s].name + "': eta_s/gamma_hat = " +
                    std::to_string(in.etas[s]) + "/" + std::to_string(gamma) +
                    " < mu_s = " + spec.streams[s].mu.str() +
                    " (Eq. 5 violated)",
                "raise this stream's block size or rerun Algorithm 1");
        missed = true;
      }
    }
    if (!missed) {
      // Informational: how far above the Algorithm-1 minimum the
      // configuration sits (extra buffering latency, usually deliberate —
      // e.g. decimation alignment).
      const sharing::BlockSizeResult min =
          sharing::solve_block_sizes_fixpoint(spec);
      if (min.feasible) {
        std::string above;
        for (std::size_t s = 0; s < in.etas.size(); ++s) {
          if (in.etas[s] > min.eta[s]) {
            if (!above.empty()) above += ", ";
            above += spec.streams[s].name + " " +
                     std::to_string(in.etas[s]) + " > " +
                     std::to_string(min.eta[s]);
          }
        }
        if (!above.empty()) {
          rep.add("M12", "$.etas",
                  "block sizes exceed the Algorithm-1 minimum (" + above +
                      "): each extra sample adds one sample period of "
                      "blocking latency");
        }
      }
    }
  } catch (const std::overflow_error& e) {
    rep.add("M08", "$.etas",
            std::string("gamma_hat (Eq. 4) accumulation overflows 64-bit "
                        "cycle arithmetic: ") +
                e.what(),
            "these parameters describe rounds longer than 2^63 cycles; the "
            "configuration is mis-scaled");
  }
}

// ---------------------------------------------------------------------------
// Architecture rules (G**, M10): gateway pairing and space-check wiring.
// ---------------------------------------------------------------------------

void check_architecture(const LintInput& in,
                        const sharing::SharedSystemSpec* spec,
                        LintReport& rep) {
  std::set<std::string> fifo_names;
  for (std::size_t i = 0; i < in.fifos.size(); ++i) {
    const FifoDecl& f = in.fifos[i];
    if (f.capacity < 1) {
      rep.add("C01", idx("$.fifos", i) + ".capacity",
              "C-FIFO '" + f.name + "' declares capacity " +
                  std::to_string(f.capacity));
    }
    if (!fifo_names.insert(f.name).second) {
      rep.add("C01", idx("$.fifos", i) + ".name",
              "duplicate C-FIFO name '" + f.name + "'");
    }
  }
  const auto fifo_capacity = [&](const std::string& name) -> std::int64_t {
    for (const FifoDecl& f : in.fifos)
      if (f.name == name) return f.capacity;
    return -1;
  };
  const auto eta_of = [&](std::size_t s) -> std::int64_t {
    return s < in.etas.size() ? in.etas[s] : 0;
  };
  const auto block_out_of = [&](std::size_t s) -> std::int64_t {
    const std::int64_t out =
        s < in.block_out.size() && in.block_out[s] > 0 ? in.block_out[s]
                                                       : eta_of(s);
    return out;
  };

  // Per-stream input C-FIFOs: a block of eta samples must be able to fill.
  if (spec != nullptr && !in.stream_fifos.empty()) {
    if (in.stream_fifos.size() != spec->streams.size()) {
      rep.add("C01", "$.streams",
              "per-stream fifo list has " +
                  std::to_string(in.stream_fifos.size()) + " entries for " +
                  std::to_string(spec->streams.size()) + " streams");
    } else {
      for (std::size_t s = 0; s < in.stream_fifos.size(); ++s) {
        const std::string& name = in.stream_fifos[s];
        if (name.empty()) continue;
        const std::int64_t cap = fifo_capacity(name);
        if (cap < 0) {
          rep.add("C01", idx("$.streams", s) + ".fifo",
                  "stream '" + spec->streams[s].name +
                      "' references undeclared C-FIFO '" + name + "'");
        } else if (eta_of(s) > 0 && cap < eta_of(s)) {
          rep.add("M10", idx("$.streams", s) + ".fifo",
                  "input C-FIFO '" + name + "' (capacity " +
                      std::to_string(cap) + ") can never hold one block of " +
                      std::to_string(eta_of(s)) + " samples of stream '" +
                      spec->streams[s].name +
                      "': the entry gateway will wait forever",
                  "size the C-FIFO to at least eta (a small multiple keeps "
                  "the pipeline busy)");
        }
      }
    }
  }

  // Gateway pairing: every chain needs exactly one entry and one exit.
  std::set<std::string> chains;
  for (const GatewayDecl& g : in.gateways) chains.insert(g.chain);
  for (const std::string& chain : chains) {
    int entries = 0;
    int exits = 0;
    for (const GatewayDecl& g : in.gateways) {
      if (g.chain != chain) continue;
      (g.is_entry ? entries : exits) += 1;
    }
    if (entries != 1 || exits != 1) {
      rep.add("G01", "$.gateways",
              "chain '" + chain + "' has " + std::to_string(entries) +
                  " entry and " + std::to_string(exits) +
                  " exit gateway(s); the sharing protocol needs exactly one "
                  "of each",
              "an entry gateway without its exit never sees pipeline-idle "
              "notifications; blocks would be admitted forever");
    }
  }

  // Entry gateways: admission space check must watch a real consumer C-FIFO.
  for (std::size_t gi = 0; gi < in.gateways.size(); ++gi) {
    const GatewayDecl& g = in.gateways[gi];
    if (!g.is_entry) continue;
    for (std::size_t k = 0; k < g.streams.size(); ++k) {
      const std::size_t s = g.streams[k];
      if (spec != nullptr && s >= spec->streams.size()) {
        rep.add("C01", idx(idx("$.gateways", gi) + ".streams", k),
                "gateway '" + g.name + "' serves stream index " +
                    std::to_string(s) + " but the system has " +
                    std::to_string(spec->streams.size()) + " streams");
        continue;
      }
      if (k >= g.consumer_fifos.size() || g.consumer_fifos[k].empty()) {
        rep.add("G02", idx(idx("$.gateways", gi) + ".consumer_fifos", k),
                "entry gateway '" + g.name + "' stream " + std::to_string(s) +
                    " has no consumer C-FIFO wired to its admission space "
                    "check: a block could be admitted with nowhere to land",
                "name the C-FIFO the chain's output DMA writes for this "
                "stream");
        continue;
      }
      const std::string& name = g.consumer_fifos[k];
      const std::int64_t cap = fifo_capacity(name);
      if (cap < 0) {
        rep.add("G02", idx(idx("$.gateways", gi) + ".consumer_fifos", k),
                "entry gateway '" + g.name +
                    "' wires its space check to undeclared C-FIFO '" + name +
                    "'",
                "declare the FIFO under $.fifos with its capacity");
      } else if (block_out_of(s) > 0 && cap < block_out_of(s)) {
        rep.add("M10", idx(idx("$.gateways", gi) + ".consumer_fifos", k),
                "consumer C-FIFO '" + name + "' (capacity " +
                    std::to_string(cap) +
                    ") can never accept one block's output of " +
                    std::to_string(block_out_of(s)) + " samples (stream " +
                    std::to_string(s) + ")",
                "size the consumer C-FIFO to at least the per-block output "
                "count");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dataflow-graph rules (M01-M03): consistency and static deadlock-freedom.
// ---------------------------------------------------------------------------

void check_graphs(const LintInput& in, LintReport& rep) {
  for (std::size_t i = 0; i < in.graphs.size(); ++i) {
    const df::Graph& g = in.graphs[i].graph;
    const std::string at = idx("$.graphs", i);
    const df::RepetitionVector rv = df::compute_repetition_vector(g);
    if (!rv.consistent) {
      rep.add("M01", at,
              "graph '" + in.graphs[i].name +
                  "' is inconsistent: the balance equations have no positive "
                  "solution, so no periodic schedule returns the buffers to "
                  "their initial state",
              "make r[src]*prod == r[dst]*cons hold on every edge");
      continue;  // deadlock analysis of an inconsistent graph is moot
    }
    // Static deadlock-freedom: a cycle carrying zero initial tokens can
    // never fire its first actor (dataflow/mcr reports exactly that).
    std::vector<df::RatioEdge> edges;
    edges.reserve(g.num_edges());
    for (const df::Edge& e : g.edges()) {
      df::Time w = 0;
      for (df::Time d : g.actor(e.src).phase_durations) w += d;
      edges.push_back(df::RatioEdge{e.src, e.dst, w, e.initial_tokens});
    }
    const df::McrResult mcr = df::max_cycle_ratio(
        static_cast<std::int32_t>(g.num_actors()), edges);
    if (mcr.zero_token_cycle) {
      rep.add("M02", at,
              "graph '" + in.graphs[i].name +
                  "' deadlocks: a dependency cycle carries zero initial "
                  "tokens, so none of its actors can ever fire",
              "place initial tokens on the cycle or enlarge the "
              "back-pressure channel that closes it");
    }
    // Bounded channels (edge + reverse space edge): the total capacity must
    // admit at least one firing of each endpoint.
    for (std::size_t a = 0; a < g.edges().size(); ++a) {
      for (std::size_t b = a + 1; b < g.edges().size(); ++b) {
        const df::Edge& fwd = g.edges()[a];
        const df::Edge& bwd = g.edges()[b];
        if (fwd.src != bwd.dst || fwd.dst != bwd.src) continue;
        const std::int64_t cap = fwd.initial_tokens + bwd.initial_tokens;
        std::int64_t need = 0;
        for (std::int64_t q : fwd.prod) need = std::max(need, q);
        for (std::int64_t q : fwd.cons) need = std::max(need, q);
        for (std::int64_t q : bwd.prod) need = std::max(need, q);
        for (std::int64_t q : bwd.cons) need = std::max(need, q);
        if (cap < need) {
          rep.add("M03", at + idx(".edges", a),
                  "channel '" + (fwd.name.empty() ? in.graphs[i].name : fwd.name) +
                      "' has capacity " + std::to_string(cap) +
                      " but a single firing moves " + std::to_string(need) +
                      " tokens: the endpoint can never fire",
                  "raise the channel capacity to at least the largest "
                  "per-firing quantum");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault-config rules (F**) and determinism hazards (D**).
// ---------------------------------------------------------------------------

void check_faults(const FaultsDecl& faults, LintReport& rep) {
  bool any_active = false;
  for (std::size_t i = 0; i < faults.sites.size(); ++i) {
    const FaultSiteDecl& s = faults.sites[i];
    const std::string at = idx("$.faults.sites", i);
    bool known = false;
    for (int k = 0; k < sim::kNumFaultSites; ++k) {
      if (s.site == sim::fault_site_name(static_cast<sim::FaultSite>(k))) {
        known = true;
        break;
      }
    }
    if (!known) {
      rep.add("F01", at + ".site",
              "unknown fault site '" + s.site + "'",
              "valid sites: ring_link, config_bus, exit_notify, "
              "credit_withhold");
      continue;
    }
    if (s.probability < 0.0 || s.probability > 1.0) {
      rep.add("F03", at + ".probability",
              "probability " + std::to_string(s.probability) +
                  " outside [0, 1]");
    }
    if (s.drop_probability < 0.0 || s.drop_probability > 1.0) {
      rep.add("F03", at + ".drop_probability",
              "drop_probability " + std::to_string(s.drop_probability) +
                  " outside [0, 1]");
    }
    if (s.drop_probability > 0.0 &&
        s.site != sim::fault_site_name(sim::FaultSite::kExitNotify)) {
      rep.add("F03", at + ".drop_probability",
              "site '" + s.site +
                  "' cannot drop events; only exit_notify models lost "
                  "notifications",
              "use a delay law (probability/max_delay) for this site");
    }
    if (s.probability > 0.0 && s.max_delay < 1) {
      rep.add("F03", at + ".max_delay",
              "a delay law with probability > 0 needs max_delay >= 1 "
              "(delays are uniform in [1, max_delay])");
    }
    if (s.min_spacing < 0) {
      rep.add("F03", at + ".min_spacing",
              "min_spacing " + std::to_string(s.min_spacing) + " < 0");
    }
    if (s.window_until >= 0 && s.window_until <= s.window_from) {
      rep.add("F03", at + ".window_until",
              "fault window [" + std::to_string(s.window_from) + ", " +
                  std::to_string(s.window_until) + ") is empty");
    }
    any_active |= s.probability > 0.0 || s.drop_probability > 0.0;
  }
  if (any_active && !faults.seeded) {
    rep.add("F02", "$.faults.seed",
            "fault sites are active but no seed is set: the fault pattern "
            "would be unreproducible and conformance verdicts meaningless",
            "set an explicit 64-bit seed; every run then produces a "
            "bit-identical fault pattern");
  }
}

void check_determinism(const DeterminismDecl& det, LintReport& rep) {
  if (!det.rng_seeded) {
    rep.add("D01", "$.determinism.rng_seeded",
            "workload RNG is not explicitly seeded: reruns of this "
            "configuration diverge",
            "derive all randomness from one explicit SplitMix64 seed");
  }
  if (det.event_stepper) {
    for (std::size_t i = 0; i < det.tasks_without_next_ready.size(); ++i) {
      rep.add("D02", idx("$.determinism.tasks_without_next_ready", i),
              "task '" + det.tasks_without_next_ready[i] +
                  "' reports no next_ready horizon: the event-horizon "
                  "stepper must tick every cycle while it is runnable",
              "add Task::next_ready so system quiescence can be certified "
              "(see docs/performance.md)");
    }
  }
}

// ---------------------------------------------------------------------------
// Control-plane rules (C02, G03): static admissibility of join templates.
// ---------------------------------------------------------------------------

void check_ctrl(const LintInput& in, LintReport& rep) {
  const CtrlDecl& ctrl = *in.ctrl;
  if (ctrl.eta_max < 1) {
    rep.add("C01", "$.ctrl.eta_max",
            "eta_max " + std::to_string(ctrl.eta_max) + " < 1");
    return;
  }
  for (std::size_t j = 0; j < ctrl.joins.size(); ++j) {
    const CtrlJoinDecl& join = ctrl.joins[j];
    const std::string at = idx("$.ctrl.joins", j);
    if (!(join.mu > Rational(0))) {
      rep.add("C01", at + ".mu_num",
              "join template '" + join.name +
                  "' declares non-positive throughput " + join.mu.str());
      continue;
    }
    if (join.decimation < 1) {
      rep.add("C01", at + ".decimation",
              "join template '" + join.name + "' declares decimation " +
                  std::to_string(join.decimation) + " < 1");
      continue;
    }
    // G03: a template may only program accelerator kinds the chain has.
    for (std::size_t k = 0; k < join.accel_kinds.size(); ++k) {
      const std::string& kind = join.accel_kinds[k];
      if (std::find(ctrl.accel_kinds.begin(), ctrl.accel_kinds.end(), kind) ==
          ctrl.accel_kinds.end()) {
        rep.add("G03", idx(at + ".accel_kinds", k),
                "join template '" + join.name +
                    "' references accelerator kind '" + kind +
                    "' which the chain does not declare",
                "declare the kind in $.ctrl.accel_kinds or fix the template");
      }
    }
    // C02: the template must be admissible at least when it runs ALONE at
    // the largest deployable block size; if Eq. 5 fails even there, every
    // runtime admission of this template would be rejected.
    if (!in.spec.has_value()) continue;
    sharing::SharedSystemSpec solo;
    solo.chain = in.spec->chain;
    solo.streams.push_back({join.name, join.mu, join.reconfig});
    const std::vector<std::int64_t> etas{ctrl.eta_max};
    bool satisfiable = false;
    std::string detail;
    try {
      if (sharing::utilization(solo) < Rational(1)) {
        satisfiable = Rational(ctrl.eta_max) >=
                      join.mu * Rational(sharing::gamma_hat(solo, etas));
        if (!satisfiable) detail = " (eta_max < mu * gamma_hat)";
      } else {
        detail = " (solo utilization >= 1)";
      }
    } catch (const std::overflow_error&) {
      detail = " (cycle arithmetic overflows at eta_max)";
    }
    if (!satisfiable) {
      rep.add("C02", at + ".mu_num",
              "join template '" + join.name + "' declares mu = " +
                  join.mu.str() + " that Eq. 5 cannot satisfy even alone at "
                  "eta = eta_max = " + std::to_string(ctrl.eta_max) + detail,
              "lower the template's throughput, raise eta_max, or cheapen "
              "the bottleneck stage");
    }
  }
}

void run_rules(const LintInput& in, LintReport& rep) {
  if (in.spec.has_value()) {
    const bool arith_ok = check_spec(*in.spec, rep);
    if (arith_ok) {
      check_utilization(*in.spec, rep);
      check_etas(in, *in.spec, rep);
    }
  }
  check_architecture(in, in.spec.has_value() ? &*in.spec : nullptr, rep);
  check_graphs(in, rep);
  if (in.faults.has_value()) check_faults(*in.faults, rep);
  if (in.determinism.has_value()) check_determinism(*in.determinism, rep);
  if (in.ctrl.has_value()) check_ctrl(in, rep);
}

// ---------------------------------------------------------------------------
// JSON configuration parsing. Structural problems become C01 diagnostics so
// one run reports everything it can still see.
// ---------------------------------------------------------------------------

const json::Value* want(const json::Value& obj, const char* key,
                        const std::string& at, bool required,
                        LintReport& rep) {
  const json::Value* v = obj.find(key);
  if (v == nullptr && required) {
    rep.add("C01", at, std::string("missing required key '") + key + "'");
  }
  return v;
}

bool as_i64(const json::Value* v, const std::string& at, LintReport& rep,
            std::int64_t* out) {
  if (v == nullptr) return false;
  if (!v->is_int()) {
    rep.add("C01", at, "expected an integer");
    return false;
  }
  *out = v->as_int();
  return true;
}

bool as_f64(const json::Value* v, const std::string& at, LintReport& rep,
            double* out) {
  if (v == nullptr) return false;
  if (!v->is_number()) {
    rep.add("C01", at, "expected a number");
    return false;
  }
  *out = v->as_double();
  return true;
}

bool as_str(const json::Value* v, const std::string& at, LintReport& rep,
            std::string* out) {
  if (v == nullptr) return false;
  if (!v->is_string()) {
    rep.add("C01", at, "expected a string");
    return false;
  }
  *out = v->as_string();
  return true;
}

void parse_spec(const json::Value& doc, LintInput& in, LintReport& rep) {
  const json::Value* chain = doc.find("chain");
  const json::Value* streams = doc.find("streams");
  // Section-only configs (graphs, faults, determinism...) carry no spec at
  // all; that is fine. A spec with only one half is not.
  if (chain == nullptr && streams == nullptr) return;
  if (chain == nullptr || streams == nullptr) {
    rep.add("C01", "$",
            std::string("missing required key '") +
                (chain == nullptr ? "chain" : "streams") +
                "' (a system spec needs both halves)");
    return;
  }
  if (!chain->is_object() || !streams->is_array()) {
    if (!chain->is_object()) rep.add("C01", "$.chain", "expected an object");
    if (!streams->is_array())
      rep.add("C01", "$.streams", "expected an array");
    return;
  }
  sharing::SharedSystemSpec spec;
  spec.chain.accel_cycles_per_sample.clear();
  const json::Value* accels =
      want(*chain, "accelerators", "$.chain", true, rep);
  if (accels != nullptr) {
    if (!accels->is_array()) {
      rep.add("C01", "$.chain.accelerators", "expected an array of integers");
    } else {
      for (std::size_t i = 0; i < accels->as_array().size(); ++i) {
        std::int64_t rho = 0;
        if (as_i64(&accels->as_array()[i], idx("$.chain.accelerators", i),
                   rep, &rho)) {
          spec.chain.accel_cycles_per_sample.push_back(rho);
        }
      }
    }
  }
  std::int64_t v = 0;
  if (as_i64(want(*chain, "entry", "$.chain", true, rep), "$.chain.entry",
             rep, &v))
    spec.chain.entry_cycles_per_sample = v;
  if (as_i64(want(*chain, "exit", "$.chain", true, rep), "$.chain.exit", rep,
             &v))
    spec.chain.exit_cycles_per_sample = v;
  if (as_i64(want(*chain, "ni_capacity", "$.chain", false, rep),
             "$.chain.ni_capacity", rep, &v))
    spec.chain.ni_capacity = v;

  for (std::size_t s = 0; s < streams->as_array().size(); ++s) {
    const json::Value& sv = streams->as_array()[s];
    const std::string at = idx("$.streams", s);
    if (!sv.is_object()) {
      rep.add("C01", at, "expected an object");
      continue;
    }
    sharing::StreamSpec st;
    as_str(want(sv, "name", at, true, rep), at + ".name", rep, &st.name);
    std::int64_t num = 0;
    std::int64_t den = 1;
    const bool has_num =
        as_i64(want(sv, "mu_num", at, true, rep), at + ".mu_num", rep, &num);
    const bool has_den =
        as_i64(want(sv, "mu_den", at, true, rep), at + ".mu_den", rep, &den);
    if (has_num && has_den) {
      if (den <= 0) {
        rep.add("C01", at + ".mu_den",
                "throughput denominator must be positive, got " +
                    std::to_string(den));
      } else {
        st.mu = Rational(num, den);
      }
    }
    if (as_i64(want(sv, "reconfig", at, true, rep), at + ".reconfig", rep,
               &v))
      st.reconfig = v;
    std::string fifo;
    if (as_str(sv.find("fifo"), at + ".fifo", rep, &fifo)) {
      in.stream_fifos.resize(streams->as_array().size());
      in.stream_fifos[s] = fifo;
    }
    if (as_i64(sv.find("block_out"), at + ".block_out", rep, &v)) {
      in.block_out.resize(streams->as_array().size(), 0);
      in.block_out[s] = v;
    }
    spec.streams.push_back(std::move(st));
  }
  in.spec = std::move(spec);
}

void parse_sections(const json::Value& doc, LintInput& in, LintReport& rep) {
  if (const json::Value* etas = doc.find("etas")) {
    if (!etas->is_array()) {
      rep.add("C01", "$.etas", "expected an array of integers");
    } else {
      for (std::size_t i = 0; i < etas->as_array().size(); ++i) {
        std::int64_t e = 0;
        if (as_i64(&etas->as_array()[i], idx("$.etas", i), rep, &e))
          in.etas.push_back(e);
      }
    }
  }
  if (const json::Value* fifos = doc.find("fifos")) {
    if (!fifos->is_array()) {
      rep.add("C01", "$.fifos", "expected an array");
    } else {
      for (std::size_t i = 0; i < fifos->as_array().size(); ++i) {
        const json::Value& fv = fifos->as_array()[i];
        const std::string at = idx("$.fifos", i);
        FifoDecl f;
        if (!fv.is_object()) {
          rep.add("C01", at, "expected an object");
          continue;
        }
        as_str(want(fv, "name", at, true, rep), at + ".name", rep, &f.name);
        as_i64(want(fv, "capacity", at, true, rep), at + ".capacity", rep,
               &f.capacity);
        in.fifos.push_back(std::move(f));
      }
    }
  }
  if (const json::Value* gws = doc.find("gateways")) {
    if (!gws->is_array()) {
      rep.add("C01", "$.gateways", "expected an array");
    } else {
      for (std::size_t i = 0; i < gws->as_array().size(); ++i) {
        const json::Value& gv = gws->as_array()[i];
        const std::string at = idx("$.gateways", i);
        if (!gv.is_object()) {
          rep.add("C01", at, "expected an object");
          continue;
        }
        GatewayDecl g;
        as_str(want(gv, "name", at, true, rep), at + ".name", rep, &g.name);
        std::string kind;
        if (as_str(want(gv, "kind", at, true, rep), at + ".kind", rep,
                   &kind)) {
          if (kind == "entry") {
            g.is_entry = true;
          } else if (kind == "exit") {
            g.is_entry = false;
          } else {
            rep.add("C01", at + ".kind",
                    "gateway kind must be \"entry\" or \"exit\", got \"" +
                        kind + "\"");
            continue;
          }
        }
        as_str(gv.find("chain"), at + ".chain", rep, &g.chain);
        if (const json::Value* ss = gv.find("streams")) {
          if (!ss->is_array()) {
            rep.add("C01", at + ".streams", "expected an array of indices");
          } else {
            for (std::size_t k = 0; k < ss->as_array().size(); ++k) {
              std::int64_t s = 0;
              if (as_i64(&ss->as_array()[k], idx(at + ".streams", k), rep,
                         &s)) {
                if (s < 0) {
                  rep.add("C01", idx(at + ".streams", k),
                          "stream index must be >= 0");
                } else {
                  g.streams.push_back(static_cast<std::size_t>(s));
                }
              }
            }
          }
        }
        if (const json::Value* cf = gv.find("consumer_fifos")) {
          if (!cf->is_array()) {
            rep.add("C01", at + ".consumer_fifos",
                    "expected an array of C-FIFO names");
          } else {
            for (std::size_t k = 0; k < cf->as_array().size(); ++k) {
              std::string name;
              as_str(&cf->as_array()[k], idx(at + ".consumer_fifos", k), rep,
                     &name);
              g.consumer_fifos.push_back(std::move(name));
            }
          }
        }
        in.gateways.push_back(std::move(g));
      }
    }
  }
  if (const json::Value* graphs = doc.find("graphs")) {
    if (!graphs->is_array()) {
      rep.add("C01", "$.graphs", "expected an array");
    } else {
      for (std::size_t i = 0; i < graphs->as_array().size(); ++i) {
        const json::Value& gv = graphs->as_array()[i];
        const std::string at = idx("$.graphs", i);
        NamedGraph ng;
        ng.name = "graph" + std::to_string(i);
        if (gv.is_object() && gv.find("name") != nullptr)
          as_str(gv.find("name"), at + ".name", rep, &ng.name);
        try {
          ng.graph = df::graph_from_json(gv);
          in.graphs.push_back(std::move(ng));
        } catch (const std::exception& e) {
          rep.add("C01", at, std::string("malformed graph: ") + e.what());
        }
      }
    }
  }
  if (const json::Value* faults = doc.find("faults")) {
    if (!faults->is_object()) {
      rep.add("C01", "$.faults", "expected an object");
    } else {
      FaultsDecl fd;
      if (const json::Value* seed = faults->find("seed")) {
        std::int64_t s = 0;
        if (as_i64(seed, "$.faults.seed", rep, &s)) {
          fd.seeded = true;
          fd.seed = static_cast<std::uint64_t>(s);
        }
      }
      if (const json::Value* sites = faults->find("sites")) {
        if (!sites->is_array()) {
          rep.add("C01", "$.faults.sites", "expected an array");
        } else {
          for (std::size_t i = 0; i < sites->as_array().size(); ++i) {
            const json::Value& sv = sites->as_array()[i];
            const std::string at = idx("$.faults.sites", i);
            if (!sv.is_object()) {
              rep.add("C01", at, "expected an object");
              continue;
            }
            FaultSiteDecl s;
            as_str(want(sv, "site", at, true, rep), at + ".site", rep,
                   &s.site);
            as_f64(sv.find("probability"), at + ".probability", rep,
                   &s.probability);
            as_f64(sv.find("drop_probability"), at + ".drop_probability", rep,
                   &s.drop_probability);
            as_i64(sv.find("max_delay"), at + ".max_delay", rep, &s.max_delay);
            as_i64(sv.find("min_spacing"), at + ".min_spacing", rep,
                   &s.min_spacing);
            as_i64(sv.find("window_from"), at + ".window_from", rep,
                   &s.window_from);
            as_i64(sv.find("window_until"), at + ".window_until", rep,
                   &s.window_until);
            fd.sites.push_back(std::move(s));
          }
        }
      }
      in.faults = std::move(fd);
    }
  }
  if (const json::Value* det = doc.find("determinism")) {
    if (!det->is_object()) {
      rep.add("C01", "$.determinism", "expected an object");
    } else {
      DeterminismDecl dd;
      if (const json::Value* es = det->find("event_stepper")) {
        if (es->is_bool()) {
          dd.event_stepper = es->as_bool();
        } else {
          rep.add("C01", "$.determinism.event_stepper", "expected a boolean");
        }
      }
      if (const json::Value* rs = det->find("rng_seeded")) {
        if (rs->is_bool()) {
          dd.rng_seeded = rs->as_bool();
        } else {
          rep.add("C01", "$.determinism.rng_seeded", "expected a boolean");
        }
      }
      if (const json::Value* tasks = det->find("tasks_without_next_ready")) {
        if (!tasks->is_array()) {
          rep.add("C01", "$.determinism.tasks_without_next_ready",
                  "expected an array of task names");
        } else {
          for (std::size_t i = 0; i < tasks->as_array().size(); ++i) {
            std::string t;
            if (as_str(&tasks->as_array()[i],
                       idx("$.determinism.tasks_without_next_ready", i), rep,
                       &t)) {
              dd.tasks_without_next_ready.push_back(std::move(t));
            }
          }
        }
      }
      in.determinism = std::move(dd);
    }
  }
  if (const json::Value* ctrl = doc.find("ctrl")) {
    if (!ctrl->is_object()) {
      rep.add("C01", "$.ctrl", "expected an object");
    } else {
      CtrlDecl cd;
      std::int64_t v = 0;
      if (as_i64(ctrl->find("eta_max"), "$.ctrl.eta_max", rep, &v))
        cd.eta_max = v;
      if (const json::Value* kinds = ctrl->find("accel_kinds")) {
        if (!kinds->is_array()) {
          rep.add("C01", "$.ctrl.accel_kinds", "expected an array of strings");
        } else {
          for (std::size_t i = 0; i < kinds->as_array().size(); ++i) {
            std::string kind;
            if (as_str(&kinds->as_array()[i], idx("$.ctrl.accel_kinds", i),
                       rep, &kind)) {
              cd.accel_kinds.push_back(std::move(kind));
            }
          }
        }
      }
      if (const json::Value* joins = ctrl->find("joins")) {
        if (!joins->is_array()) {
          rep.add("C01", "$.ctrl.joins", "expected an array");
        } else {
          for (std::size_t i = 0; i < joins->as_array().size(); ++i) {
            const json::Value& jv = joins->as_array()[i];
            const std::string at = idx("$.ctrl.joins", i);
            if (!jv.is_object()) {
              rep.add("C01", at, "expected an object");
              continue;
            }
            CtrlJoinDecl j;
            as_str(want(jv, "name", at, true, rep), at + ".name", rep,
                   &j.name);
            std::int64_t num = 0;
            std::int64_t den = 1;
            const bool has_num = as_i64(want(jv, "mu_num", at, true, rep),
                                        at + ".mu_num", rep, &num);
            const bool has_den = as_i64(want(jv, "mu_den", at, true, rep),
                                        at + ".mu_den", rep, &den);
            if (has_num && has_den) {
              if (den <= 0) {
                rep.add("C01", at + ".mu_den",
                        "throughput denominator must be positive, got " +
                            std::to_string(den));
              } else {
                j.mu = Rational(num, den);
              }
            }
            as_i64(jv.find("reconfig"), at + ".reconfig", rep, &j.reconfig);
            as_i64(jv.find("decimation"), at + ".decimation", rep,
                   &j.decimation);
            if (const json::Value* kinds = jv.find("accel_kinds")) {
              if (!kinds->is_array()) {
                rep.add("C01", at + ".accel_kinds",
                        "expected an array of strings");
              } else {
                for (std::size_t k = 0; k < kinds->as_array().size(); ++k) {
                  std::string kind;
                  if (as_str(&kinds->as_array()[k],
                             idx(at + ".accel_kinds", k), rep, &kind)) {
                    j.accel_kinds.push_back(std::move(kind));
                  }
                }
              }
            }
            cd.joins.push_back(std::move(j));
          }
        }
      }
      in.ctrl = std::move(cd);
    }
  }
  if (const json::Value* sup = doc.find("suppress")) {
    if (!sup->is_array()) {
      rep.add("C01", "$.suppress", "expected an array of rule IDs");
    } else {
      for (std::size_t i = 0; i < sup->as_array().size(); ++i) {
        std::string rule;
        if (as_str(&sup->as_array()[i], idx("$.suppress", i), rep, &rule)) {
          if (find_rule(rule) == nullptr) {
            rep.add("C01", idx("$.suppress", i),
                    "'" + rule + "' is not a catalog rule ID or name");
          } else {
            in.suppress.push_back(std::move(rule));
          }
        }
      }
    }
  }
}

void finish(LintReport& rep, const LintInput& in, const LintOptions& opts) {
  std::vector<std::string> sup = in.suppress;
  // Config-side `suppress` entries were validated at parse time; CLI-side
  // --allow entries are validated here so a typo'd waiver is an error, not
  // a silently inert flag.
  for (const std::string& rule : opts.suppress) {
    if (find_rule(rule) == nullptr) {
      rep.add("C01", "$.options.allow",
              "'" + rule + "' is not a catalog rule ID or name",
              "see --rules for the catalog");
    } else {
      sup.push_back(rule);
    }
  }
  rep.suppress(sup);
}

}  // namespace

LintInput parse_config(const json::Value& doc, const std::string& name,
                       LintReport& rep) {
  LintInput in;
  in.name = name;
  if (!doc.is_object()) {
    rep.add("C01", "$", "configuration document must be a JSON object");
    return in;
  }
  parse_spec(doc, in, rep);
  parse_sections(doc, in, rep);
  return in;
}

LintReport lint_input(const LintInput& in, const LintOptions& opts) {
  LintReport rep(in.name);
  run_rules(in, rep);
  finish(rep, in, opts);
  return rep;
}

LintReport lint_config_json(const json::Value& doc, const std::string& name,
                            const LintOptions& opts) {
  LintReport rep(name);
  const LintInput in = parse_config(doc, name, rep);
  if (doc.is_object()) run_rules(in, rep);
  finish(rep, in, opts);
  return rep;
}

LintReport lint_config_text(const std::string& text, const std::string& name,
                            const LintOptions& opts) {
  std::optional<json::Value> doc = json::parse(text);
  if (!doc.has_value()) {
    LintReport rep(name);
    rep.add("C01", "$", "not valid JSON");
    return rep;
  }
  return lint_config_json(*doc, name, opts);
}

LintReport lint_spec(const sharing::SharedSystemSpec& spec,
                     const std::vector<std::int64_t>& etas,
                     const std::string& name) {
  LintInput in;
  in.name = name;
  in.spec = spec;
  in.etas = etas;
  return lint_input(in);
}

FaultsDecl faults_from_injector(const sim::FaultInjector& inj) {
  FaultsDecl fd;
  fd.seeded = true;  // the injector cannot be constructed without a seed
  fd.seed = inj.seed();
  for (int k = 0; k < sim::kNumFaultSites; ++k) {
    const auto site = static_cast<sim::FaultSite>(k);
    const sim::FaultSpec& s = inj.spec(site);
    if (!s.active()) continue;
    FaultSiteDecl d;
    d.site = sim::fault_site_name(site);
    d.probability = s.probability;
    d.drop_probability = s.drop_probability;
    d.max_delay = s.max_delay;
    d.min_spacing = s.min_spacing;
    d.window_from = s.window_from;
    d.window_until = s.window_until == std::numeric_limits<sim::Cycle>::max()
                         ? -1
                         : s.window_until;
    fd.sites.push_back(std::move(d));
  }
  return fd;
}

bool no_lint_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-lint") == 0) return true;
  }
  return false;
}

bool startup_gate(int argc, char** argv, const LintInput& input,
                  std::ostream& err) {
  if (no_lint_requested(argc, argv)) return true;
  const LintReport rep = lint_input(input);
  if (!rep.diagnostics().empty()) err << rep.to_text();
  if (!rep.clean()) {
    err << "configuration rejected by acc-lint (use --no-lint to bypass)\n";
    return false;
  }
  return true;
}

}  // namespace acc::lint
