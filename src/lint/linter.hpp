// The acc-lint model linter: static admissibility checking of a shared-
// accelerator configuration WITHOUT running the simulator.
//
// The paper's temporal guarantees (Eq. 2-5) only hold under preconditions —
// consistent dataflow models, deadlock-free buffer capacities, sane Eq. 2-4
// parameters, well-formed gateway chains, reproducible fault configs. The
// linter front-loads all of them into a millisecond-scale check, in the
// spirit of UltraShare's admissibility gate (arXiv:1910.00197), so a bad
// configuration is rejected before a multi-second cycle-exact run (or a
// production deployment) ever starts.
//
// Inputs come either as an in-memory LintInput (the examples and pal_system
// lint themselves at startup) or as a JSON configuration document — the
// sharing/serialize.hpp spec format extended with optional "etas",
// "fifos", "gateways", "graphs", "faults", "determinism" and "suppress"
// sections (see docs/static_analysis.md for the format and rule catalog).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/graph.hpp"
#include "lint/diagnostics.hpp"
#include "sharing/spec.hpp"

namespace acc::sim {
class FaultInjector;
}  // namespace acc::sim

namespace acc::lint {

struct NamedGraph {
  std::string name;
  df::Graph graph;
};

struct FifoDecl {
  std::string name;
  std::int64_t capacity = 0;
};

/// One gateway of the architecture. Pairing is by `chain` name: every chain
/// must end up with exactly one entry and one exit gateway (rule G01), and
/// every entry-gateway stream must name the consumer C-FIFO its admission
/// space check watches (rule G02).
struct GatewayDecl {
  std::string name;
  bool is_entry = true;
  std::string chain = "chain";
  /// Entry gateways: indices into the spec's streams served by this chain.
  std::vector<std::size_t> streams;
  /// Entry gateways: consumer C-FIFO per served stream (parallel to
  /// `streams`).
  std::vector<std::string> consumer_fifos;
};

struct FaultSiteDecl {
  std::string site;  // fault_site_name() vocabulary, e.g. "config_bus"
  double probability = 0.0;
  double drop_probability = 0.0;
  std::int64_t max_delay = 0;
  std::int64_t min_spacing = 0;
  std::int64_t window_from = 0;
  std::int64_t window_until = -1;  // -1 = open-ended
};

struct FaultsDecl {
  bool seeded = false;
  std::uint64_t seed = 0;
  std::vector<FaultSiteDecl> sites;
};

struct DeterminismDecl {
  bool event_stepper = true;
  bool rng_seeded = true;
  std::vector<std::string> tasks_without_next_ready;
};

/// One join template of a dynamic control-plane workload (src/ctrl/): the
/// stream parameters a session may instantiate at runtime, plus the
/// accelerator kinds its kernel chain programs (in chain order).
struct CtrlJoinDecl {
  std::string name;
  Rational mu;
  std::int64_t reconfig = 0;
  std::int64_t decimation = 1;
  std::vector<std::string> accel_kinds;
};

/// Control-plane declaration ("ctrl" config section). Rule C02 checks that
/// every join template is admissible AT LEAST when it runs alone at
/// eta = eta_max (otherwise the admission controller would reject every
/// single instance); rule G03 checks that templates only reference
/// accelerator kinds the chain declares.
struct CtrlDecl {
  std::int64_t eta_max = 1 << 16;
  /// Accelerator kinds the chain provides, in chain order.
  std::vector<std::string> accel_kinds;
  std::vector<CtrlJoinDecl> joins;
};

struct LintInput {
  std::string name = "<config>";
  std::optional<sharing::SharedSystemSpec> spec;
  /// Block sizes under lint; empty = solve Algorithm 1 internally.
  std::vector<std::int64_t> etas;
  /// Input C-FIFO per stream (parallel to spec->streams; "" = undeclared).
  std::vector<std::string> stream_fifos;
  /// Samples each block of stream s leaves in its consumer C-FIFO
  /// (parallel to spec->streams; 0 = eta_s, i.e. no rate change).
  std::vector<std::int64_t> block_out;
  std::vector<FifoDecl> fifos;
  std::vector<GatewayDecl> gateways;
  std::vector<NamedGraph> graphs;
  std::optional<FaultsDecl> faults;
  std::optional<DeterminismDecl> determinism;
  std::optional<CtrlDecl> ctrl;
  /// Rule IDs/names dropped from the report (config "suppress" section).
  std::vector<std::string> suppress;
};

struct LintOptions {
  /// Additional suppressions (CLI --allow), merged with the config's.
  std::vector<std::string> suppress;
};

/// Run every applicable rule over an in-memory input.
[[nodiscard]] LintReport lint_input(const LintInput& input,
                                    const LintOptions& opts = {});

/// Parse the extended configuration document into a LintInput; structural
/// problems become C01 diagnostics in `rep` rather than exceptions. The
/// bounded model checker (src/verify/) reuses this so acc-lint and
/// acc-verify agree on a single config grammar.
[[nodiscard]] LintInput parse_config(const json::Value& doc,
                                     const std::string& name, LintReport& rep);

/// Parse an extended configuration document and lint it. Structural
/// problems (missing keys, wrong types, out-of-range values) become C01
/// diagnostics rather than exceptions, so one run reports everything.
[[nodiscard]] LintReport lint_config_json(const json::Value& doc,
                                          const std::string& name,
                                          const LintOptions& opts = {});

/// Same, from text; a syntax error yields a single C01 diagnostic.
[[nodiscard]] LintReport lint_config_text(const std::string& text,
                                          const std::string& name,
                                          const LintOptions& opts = {});

/// Convenience for programs that only have a spec (+ optional block sizes).
[[nodiscard]] LintReport lint_spec(const sharing::SharedSystemSpec& spec,
                                   const std::vector<std::int64_t>& etas,
                                   const std::string& name);

/// Mirror a live FaultInjector's configuration into a lintable declaration
/// (sites carry their fault_site_name; the injector's seed marks it seeded).
[[nodiscard]] FaultsDecl faults_from_injector(const sim::FaultInjector& inj);

/// True iff argv contains `--no-lint` (the examples' escape hatch).
[[nodiscard]] bool no_lint_requested(int argc, char** argv);

/// Startup gate for example binaries: honours --no-lint, otherwise lints
/// `input`, printing any findings to `err`. Returns false when error-tier
/// diagnostics remain — the caller should exit non-zero instead of running.
[[nodiscard]] bool startup_gate(int argc, char** argv, const LintInput& input,
                                std::ostream& err);

}  // namespace acc::lint
