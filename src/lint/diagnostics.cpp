#include "lint/diagnostics.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace acc::lint {

void LintReport::add(std::string_view rule, std::string location,
                     std::string message, std::string hint) {
  const RuleInfo* info = find_rule(rule);
  ACC_EXPECTS_MSG(info != nullptr,
                  "unknown lint rule '" + std::string(rule) + "'");
  diags_.push_back(Diagnostic{info->id, info->name, info->severity,
                              std::move(location), std::move(message),
                              std::move(hint)});
}

bool LintReport::has(std::string_view rule) const {
  return std::any_of(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
    return d.rule == rule || d.name == rule;
  });
}

void LintReport::suppress(const std::vector<std::string>& rules) {
  if (rules.empty()) return;
  for (Diagnostic& d : diags_) {
    if (std::find(rules.begin(), rules.end(), d.rule) != rules.end() ||
        std::find(rules.begin(), rules.end(), d.name) != rules.end()) {
      d.suppressed = true;
    }
  }
}

int LintReport::count(Severity s) const {
  return static_cast<int>(std::count_if(
      diags_.begin(), diags_.end(), [s](const Diagnostic& d) {
        return d.severity == s && !d.suppressed;
      }));
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    if (d.suppressed) continue;
    os << config_;
    if (!d.location.empty()) os << ':' << d.location;
    os << ": " << severity_name(d.severity) << " [" << d.rule << " "
       << d.name << "] " << d.message << '\n';
    if (!d.hint.empty()) os << "    hint: " << d.hint << '\n';
  }
  os << config_ << ": " << errors() << " error(s), " << warnings()
     << " warning(s), " << notes() << " note(s)\n";
  return os.str();
}

json::Value LintReport::to_json() const {
  json::Array diags;
  for (const Diagnostic& d : diags_) {
    json::Object o;
    o["rule"] = d.rule;
    o["name"] = d.name;
    o["severity"] = severity_name(d.severity);
    o["location"] = d.location;
    o["message"] = d.message;
    o["hint"] = d.hint;
    o["suppressed"] = d.suppressed;
    diags.emplace_back(std::move(o));
  }
  json::Object summary;
  summary["errors"] = errors();
  summary["warnings"] = warnings();
  summary["notes"] = notes();
  json::Object root;
  root["schema"] = "acc-lint-v1";
  root["schema_version"] = kSchemaVersion;
  root["tool_version"] = kToolVersion;
  root["config"] = config_;
  root["summary"] = std::move(summary);
  root["diagnostics"] = std::move(diags);
  return root;
}

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& msg) {
  if (!ok) problems.push_back(msg);
}

}  // namespace

std::vector<std::string> validate_lint_json(const json::Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("$: document must be an object");
    return problems;
  }
  const json::Value* schema = doc.find("schema");
  require(problems, schema != nullptr && schema->is_string() &&
                        schema->as_string() == "acc-lint-v1",
          "$.schema: must be the string \"acc-lint-v1\"");
  const json::Value* schema_version = doc.find("schema_version");
  require(problems,
          schema_version != nullptr && schema_version->is_int() &&
              schema_version->as_int() == kSchemaVersion,
          "$.schema_version: must be the integer " +
              std::to_string(kSchemaVersion));
  const json::Value* tool_version = doc.find("tool_version");
  require(problems,
          tool_version != nullptr && tool_version->is_string() &&
              !tool_version->as_string().empty(),
          "$.tool_version: must be a non-empty string");
  const json::Value* config = doc.find("config");
  require(problems, config != nullptr && config->is_string(),
          "$.config: must be a string");

  int errors = 0;
  int warnings = 0;
  int notes = 0;
  const json::Value* diags = doc.find("diagnostics");
  if (diags == nullptr || !diags->is_array()) {
    problems.emplace_back("$.diagnostics: must be an array");
  } else {
    for (std::size_t i = 0; i < diags->as_array().size(); ++i) {
      const std::string at = "$.diagnostics[" + std::to_string(i) + "]";
      const json::Value& d = diags->as_array()[i];
      if (!d.is_object()) {
        problems.push_back(at + ": must be an object");
        continue;
      }
      for (const char* key : {"rule", "name", "severity", "location",
                              "message", "hint"}) {
        const json::Value* v = d.find(key);
        require(problems, v != nullptr && v->is_string(),
                at + "." + key + ": must be a string");
      }
      const json::Value* suppressed = d.find("suppressed");
      require(problems, suppressed != nullptr && suppressed->is_bool(),
              at + ".suppressed: must be a boolean");
      const bool is_suppressed = suppressed != nullptr &&
                                 suppressed->is_bool() &&
                                 suppressed->as_bool();
      const json::Value* rule = d.find("rule");
      const RuleInfo* info =
          rule != nullptr && rule->is_string() ? find_rule(rule->as_string())
                                               : nullptr;
      require(problems, info != nullptr,
              at + ".rule: not a catalog rule ID");
      const json::Value* sev = d.find("severity");
      if (sev != nullptr && sev->is_string()) {
        const std::string& s = sev->as_string();
        // Suppressed diagnostics stay in the array but leave the summary
        // tallies (the semantic the producer's counts implement).
        if (s == "error") {
          errors += is_suppressed ? 0 : 1;
        } else if (s == "warning") {
          warnings += is_suppressed ? 0 : 1;
        } else if (s == "note") {
          notes += is_suppressed ? 0 : 1;
        } else {
          problems.push_back(at + ".severity: must be error|warning|note");
        }
        // The document must carry the catalog severity for the rule — a
        // producer downgrading an error to a note is a schema breach.
        if (info != nullptr) {
          require(problems, s == severity_name(info->severity),
                  at + ".severity: does not match catalog severity of " +
                      info->id);
        }
      }
    }
  }

  const json::Value* summary = doc.find("summary");
  if (summary == nullptr || !summary->is_object()) {
    problems.emplace_back("$.summary: must be an object");
  } else {
    for (const char* key : {"errors", "warnings", "notes"}) {
      const json::Value* v = summary->find(key);
      require(problems, v != nullptr && v->is_int(),
              std::string("$.summary.") + key + ": must be an integer");
    }
    if (problems.empty()) {
      require(problems, summary->at("errors").as_int() == errors,
              "$.summary.errors: does not match diagnostics[]");
      require(problems, summary->at("warnings").as_int() == warnings,
              "$.summary.warnings: does not match diagnostics[]");
      require(problems, summary->at("notes").as_int() == notes,
              "$.summary.notes: does not match diagnostics[]");
    }
  }
  return problems;
}

}  // namespace acc::lint
