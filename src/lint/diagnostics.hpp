// Diagnostics produced by the model linter: rule-tagged, located findings
// with fix-it hints, renderable as human text or as the machine-readable
// acc-lint-v1 JSON document (schema pinned by validate_lint_json, in the
// same golden-schema style as common/bench_schema.hpp).
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "lint/rules.hpp"

namespace acc::lint {

/// Version stamp carried by every emitted JSON document (shared by acc-lint
/// and acc-verify — they produce the same document shape). The schema
/// version only moves on a breaking document-shape change.
inline constexpr const char* kToolVersion = "accshare 0.9.0";
inline constexpr int kSchemaVersion = 1;

/// One finding. `location` is a JSON-path-like pointer into the
/// configuration ("$.streams[2].reconfig"); for in-memory inputs the same
/// paths are synthesized so tooling sees one address space.
struct Diagnostic {
  std::string rule;      // stable ID from the catalog, e.g. "M04"
  std::string name;      // catalog mnemonic, e.g. "eta-positive"
  Severity severity = Severity::kError;
  std::string location;  // "$.etas[1]"; empty = whole config
  std::string message;   // what is wrong, with the offending values
  std::string hint;      // fix-it suggestion; may be empty
  /// Suppressed via config `suppress` / CLI `--allow`: excluded from the
  /// summary counts and the text rendering, but still present in the JSON
  /// document (auditability — a reader can see what was waived).
  bool suppressed = false;
};

class LintReport {
 public:
  explicit LintReport(std::string config_name)
      : config_(std::move(config_name)) {}

  /// Append a diagnostic for `rule` (catalog ID or name — must exist).
  void add(std::string_view rule, std::string location, std::string message,
           std::string hint = {});

  [[nodiscard]] const std::string& config() const { return config_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  /// Counts exclude suppressed diagnostics (a waived finding must not gate).
  [[nodiscard]] int errors() const { return count(Severity::kError); }
  [[nodiscard]] int warnings() const { return count(Severity::kWarning); }
  [[nodiscard]] int notes() const { return count(Severity::kNote); }
  /// Clean = deployable: no error-tier findings (warnings/notes allowed).
  [[nodiscard]] bool clean() const { return errors() == 0; }

  /// Does any diagnostic carry this rule (by ID or name)? Matches
  /// suppressed diagnostics too — presence, not gating.
  [[nodiscard]] bool has(std::string_view rule) const;

  /// Mark diagnostics whose rule ID or name appears in `rules` as
  /// suppressed. They stay in the report (and in the JSON document, flagged
  /// "suppressed": true) but leave the summary counts and text rendering.
  void suppress(const std::vector<std::string>& rules);

  /// Human-readable rendering, one "config:location: severity [ID] msg"
  /// line per non-suppressed diagnostic plus a summary line.
  [[nodiscard]] std::string to_text() const;

  /// The acc-lint-v1 JSON document (see validate_lint_json).
  [[nodiscard]] json::Value to_json() const;

 private:
  [[nodiscard]] int count(Severity s) const;

  std::string config_;
  std::vector<Diagnostic> diags_;
};

/// Golden schema for the acc-lint-v1 JSON document: key presence and kinds,
/// severity/rule-ID vocabulary, and the semantic invariant that the summary
/// counters match the diagnostics array. One problem string per breach;
/// empty = valid.
[[nodiscard]] std::vector<std::string> validate_lint_json(
    const json::Value& doc);

}  // namespace acc::lint
