#include "ctrl/mode_change.hpp"

#include "common/check.hpp"

namespace acc::ctrl {

ModeChangeProtocol::ModeChangeProtocol(const ModeChangeConfig& cfg)
    : cfg_(cfg) {
  ACC_EXPECTS(cfg_.sys != nullptr && cfg_.entry != nullptr);
  ACC_EXPECTS(!cfg_.accels.empty());
  ACC_EXPECTS(cfg_.quiesce_chunk >= 1 && cfg_.max_quiesce >= 1);
  m_count_ = obs::make_counter(cfg_.metrics, "ctrl.modechange.count");
  m_cycles_ = obs::make_histogram(cfg_.metrics, "ctrl.modechange.cycles",
                                  obs::pow2_bounds(16, 8));
}

sim::Cycle ModeChangeProtocol::quiesce() {
  const sim::Cycle start = cfg_.sys->now();
  // Fixed-size chunks, not run_until: every stepper advances through the
  // identical cycle boundaries and observes the identical resting states,
  // so the transition point is bit-identical across kDense, kGlobalHorizon
  // and kWakeList.
  while (!cfg_.entry->is_idle()) {
    ACC_CHECK_MSG(cfg_.sys->now() - start <= cfg_.max_quiesce,
                  "mode change failed to quiesce within budget");
    cfg_.sys->run_with(cfg_.stepper, cfg_.quiesce_chunk);
  }
  return cfg_.sys->now() - start;
}

sim::Cycle ModeChangeProtocol::join(
    const sim::StreamRoute& route,
    std::vector<std::unique_ptr<accel::StreamKernel>> kernels) {
  ACC_EXPECTS_MSG(kernels.size() == cfg_.accels.size(),
                  "mode change needs one kernel per accelerator tile");
  const sim::Cycle start = cfg_.sys->now();
  quiesce();
  cfg_.entry->pause();
  if (cfg_.trace != nullptr)
    cfg_.trace->record(cfg_.sys->now(), "ctrl", "modechange.start", route.id);
  for (std::size_t i = 0; i < cfg_.accels.size(); ++i)
    cfg_.accels[i]->register_context(route.id, std::move(kernels[i]));
  // Rebind the C-FIFOs to the admitted block size: the gateway requires
  // alpha0 >= eta and room for one block of output.
  if (route.input->capacity() < route.eta)
    route.input->set_capacity(route.eta);
  if (route.output->capacity() < route.out_per_block)
    route.output->set_capacity(route.out_per_block);
  cfg_.entry->add_stream(route);
  // The modeled config-bus programming window (R_s): admission stays
  // frozen, but real time flows — producers keep filling their C-FIFOs.
  if (route.reconfig > 0) cfg_.sys->run_with(cfg_.stepper, route.reconfig);
  cfg_.entry->resume();
  if (cfg_.trace != nullptr)
    cfg_.trace->record(cfg_.sys->now(), "ctrl", "modechange.done", route.id);
  const sim::Cycle spent = cfg_.sys->now() - start;
  m_count_.add();
  m_cycles_.observe(spent);
  return spent;
}

sim::Cycle ModeChangeProtocol::leave(sim::StreamId id) {
  const sim::Cycle start = cfg_.sys->now();
  quiesce();
  // Look the route's R_s up before it disappears.
  sim::Cycle reconfig = -1;
  for (const sim::StreamRoute& r : cfg_.entry->streams()) {
    if (r.id == id) reconfig = r.reconfig;
  }
  ACC_EXPECTS_MSG(reconfig >= 0, "unknown stream id");
  cfg_.entry->pause();
  if (cfg_.trace != nullptr)
    cfg_.trace->record(cfg_.sys->now(), "ctrl", "modechange.start", id);
  cfg_.entry->remove_stream(id);
  for (sim::AcceleratorTile* a : cfg_.accels) a->unregister_context(id);
  if (reconfig > 0) cfg_.sys->run_with(cfg_.stepper, reconfig);
  cfg_.entry->resume();
  if (cfg_.trace != nullptr)
    cfg_.trace->record(cfg_.sys->now(), "ctrl", "modechange.done", id);
  const sim::Cycle spent = cfg_.sys->now() - start;
  m_count_.add();
  m_cycles_.observe(spent);
  return spent;
}

}  // namespace acc::ctrl
