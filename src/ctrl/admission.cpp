#include "ctrl/admission.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "common/check.hpp"
#include "sharing/analysis.hpp"

namespace acc::ctrl {

namespace {

std::int64_t round_up_to(std::int64_t v, std::int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig cfg)
    : cfg_(std::move(cfg)) {
  ACC_EXPECTS(cfg_.eta_max >= 1);
  ACC_EXPECTS(cfg_.eta_align >= 1);
  ACC_EXPECTS(!cfg_.chain.accel_cycles_per_sample.empty());
}

void AdmissionController::set_metrics(obs::MetricsRegistry* registry) {
  m_accepts_ = obs::make_counter(registry, "ctrl.admission.accepts");
  m_rejects_ = obs::make_counter(registry, "ctrl.admission.rejects");
  m_cache_hits_ = obs::make_counter(registry, "ctrl.admission.cache_hits");
}

std::string AdmissionController::signature(
    const std::vector<StreamRequest>& active, const StreamRequest& candidate) {
  using Tuple = std::array<std::int64_t, 4>;
  std::vector<Tuple> tuples;
  tuples.reserve(active.size());
  for (const StreamRequest& r : active)
    tuples.push_back({r.mu.num(), r.mu.den(), r.reconfig, r.eta});
  std::sort(tuples.begin(), tuples.end());
  std::string key;
  for (const Tuple& t : tuples) {
    for (const std::int64_t v : t) {
      key += std::to_string(v);
      key += ':';
    }
    key += ';';
  }
  key += '|';
  key += std::to_string(candidate.mu.num()) + ':' +
         std::to_string(candidate.mu.den()) + ':' +
         std::to_string(candidate.reconfig) + ':' +
         std::to_string(candidate.decimation);
  return key;
}

AdmissionDecision AdmissionController::analyze(
    const std::vector<StreamRequest>& active,
    const StreamRequest& candidate) const {
  ACC_EXPECTS(candidate.mu > Rational(0));
  ACC_EXPECTS(candidate.decimation >= 1);
  AdmissionDecision d;

  sharing::SharedSystemSpec spec;
  spec.chain = cfg_.chain;
  std::vector<std::int64_t> etas;
  etas.reserve(active.size() + 1);
  for (const StreamRequest& r : active) {
    ACC_EXPECTS_MSG(r.eta >= 1, "active stream without a deployed block size");
    spec.streams.push_back({r.name, r.mu, r.reconfig});
    etas.push_back(r.eta);
  }
  spec.streams.push_back({candidate.name, candidate.mu, candidate.reconfig});
  etas.push_back(0);  // the candidate's slot, solved below

  // Eq. 5 precondition: a finite block-size solution exists iff the
  // bottleneck budget c0 * sum(mu) stays below 1.
  ++d.analysis_work;
  try {
    if (sharing::utilization(spec) >= Rational(1)) {
      d.reason = "utilization";
      return d;
    }
  } catch (const std::overflow_error&) {
    d.reason = "utilization";
    return d;
  }

  // One-dimensional least fixed point of Eq. 6-9 in the candidate's eta,
  // everyone else's deployed eta held fixed. gamma_hat is affine increasing
  // in eta_c with slope c0 * mu_c < 1 (utilization test above), so Kleene
  // iteration from the smallest aligned block converges to the least
  // decimation-aligned solution.
  const std::int64_t align = std::lcm(candidate.decimation, cfg_.eta_align);
  std::int64_t eta_c = align;
  for (int guard = 0; guard < 10000; ++guard) {
    etas.back() = eta_c;
    ++d.analysis_work;
    const Time gamma = sharing::gamma_hat(spec, etas);
    const std::int64_t need =
        std::max<std::int64_t>(1, (candidate.mu * Rational(gamma)).ceil());
    const std::int64_t aligned = round_up_to(need, align);
    if (aligned <= eta_c) break;
    eta_c = aligned;
    if (eta_c > cfg_.eta_max) break;  // hopeless: monotone growth only
  }
  if (eta_c > cfg_.eta_max) {
    d.reason = "eta_max";
    return d;
  }
  etas.back() = eta_c;
  d.eta = eta_c;
  d.gamma = sharing::gamma_hat(spec, etas);

  // The no-broken-guarantees test: every already-admitted stream must still
  // meet Eq. 5 at the block size it is DEPLOYED with — resizing a live
  // stream would void the contract its session was admitted under.
  for (std::size_t s = 0; s < active.size(); ++s) {
    ++d.analysis_work;
    if (Rational(etas[s]) < spec.streams[s].mu * Rational(d.gamma)) {
      d.reason = "headroom";
      return d;
    }
  }
  ACC_CHECK(sharing::throughput_met(spec, etas));
  d.accepted = true;
  d.reason = "feasible";
  return d;
}

AdmissionDecision AdmissionController::admit(
    const std::vector<StreamRequest>& active, const StreamRequest& candidate) {
  ++lookups_;
  const std::string key = signature(active, candidate);
  AdmissionDecision d;
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    m_cache_hits_.add();
    d = it->second;
    d.cache_hit = true;
    d.analysis_work = 0;
  } else {
    d = analyze(active, candidate);
    cache_.emplace(key, d);
  }
  if (d.accepted) {
    ++accepts_;
    m_accepts_.add();
  } else {
    ++rejects_;
    m_rejects_.add();
  }
  return d;
}

}  // namespace acc::ctrl
