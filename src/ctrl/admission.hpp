// Online admission control for the shared accelerator chain (the dynamic
// control plane, ISSUE 10).
//
// The paper's Eq. 2-5 analysis runs at design time over a fixed stream set;
// a session-driven deployment must answer the same question online: does a
// joining stream fit WITHOUT breaking the guarantees already given to the
// admitted set? AdmissionController answers it incrementally: streams
// already running keep their deployed block sizes (their published
// real-time contract), and the candidate's eta is solved as the
// one-dimensional least fixed point of Eq. 6-9 with everyone else's eta
// held fixed. Decisions are memoized on a canonical stream-set signature so
// churny workloads don't re-solve recurring configurations from scratch
// (see docs/control_plane.md for the signature scheme).
//
// admit() is PURE with respect to the simulator: a rejected admission is a
// provable no-op on the running system (property-tested in tests/ctrl/).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rational.hpp"
#include "obs/metrics.hpp"
#include "sharing/spec.hpp"

namespace acc::ctrl {

using sharing::Time;

/// A stream asking to join (or already sharing) the chain.
struct StreamRequest {
  std::string name;
  /// Required throughput mu_s (samples per cycle).
  Rational mu;
  /// Context-switch cost R_s (cycles).
  Time reconfig = 4100;
  /// Down-sampling factor of the stream's kernel chain; block sizes must be
  /// decimation-aligned so every block yields a fixed output count.
  std::int64_t decimation = 1;
  /// Deployed block size for an admitted stream; 0 for a candidate (the
  /// controller solves it).
  std::int64_t eta = 0;
};

struct AdmissionConfig {
  sharing::ChainSpec chain;
  /// Largest deployable block size (the input C-FIFO budget): Eq. 5 may be
  /// satisfiable only with an eta no hardware buffer can hold.
  std::int64_t eta_max = 1 << 16;
  /// C-FIFO allocation granularity: deployed block sizes are rounded up to
  /// a multiple of lcm(eta_align, decimation). Beyond modelling DMA-burst
  /// alignment, quantization collapses the space of deployed configurations
  /// a churny session mix can reach — which is what makes the decision memo
  /// cache effective (recurring mixes share signatures bit-for-bit).
  std::int64_t eta_align = 1;
};

struct AdmissionDecision {
  bool accepted = false;
  /// "feasible" | "utilization" | "eta_max" | "headroom".
  std::string reason;
  /// Candidate block size (decimation-aligned; meaningful when accepted).
  std::int64_t eta = 0;
  /// Worst-case round duration gamma_hat with the candidate admitted.
  Time gamma = 0;
  bool cache_hit = false;
  /// Deterministic analysis cost in work units (Eq. 4 evaluations plus the
  /// per-stream Eq. 5 checks); 0 on a cache hit. Integer-only by design so
  /// benchmark documents stay byte-identical across hosts and --jobs.
  std::int64_t analysis_work = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg);

  /// Opt-in metrics: ctrl.admission.{accepts,rejects,cache_hits}.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Decide whether `candidate` may join the `active` set (each entry
  /// carrying its deployed eta). Accepts iff
  ///   1. utilization with the candidate stays < 1 (Eq. 5 precondition),
  ///   2. the candidate's least decimation-aligned eta fits eta_max, and
  ///   3. every active stream still meets Eq. 5 at its DEPLOYED eta under
  ///      the enlarged round (the no-broken-guarantees headroom test).
  AdmissionDecision admit(const std::vector<StreamRequest>& active,
                          const StreamRequest& candidate);

  [[nodiscard]] std::int64_t cache_lookups() const { return lookups_; }
  [[nodiscard]] std::int64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::int64_t accepts() const { return accepts_; }
  [[nodiscard]] std::int64_t rejects() const { return rejects_; }

 private:
  /// Canonical stream-set signature: the sorted multiset of active
  /// (mu, R_s, decimation, deployed-eta) tuples plus the candidate's tuple.
  /// Registration order is irrelevant to the analysis, so permutations of
  /// the same session mix share one cache entry.
  [[nodiscard]] static std::string signature(
      const std::vector<StreamRequest>& active, const StreamRequest& candidate);

  [[nodiscard]] AdmissionDecision analyze(
      const std::vector<StreamRequest>& active,
      const StreamRequest& candidate) const;

  AdmissionConfig cfg_;
  std::unordered_map<std::string, AdmissionDecision> cache_;
  std::int64_t lookups_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t accepts_ = 0;
  std::int64_t rejects_ = 0;
  obs::Counter m_accepts_;
  obs::Counter m_rejects_;
  obs::Counter m_cache_hits_;
};

}  // namespace acc::ctrl
