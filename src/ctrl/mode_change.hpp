// Live mode-change orchestration: executing an accepted admission (or a
// departure) on the RUNNING simulator without disturbing the streams that
// stay (ISSUE 10 tentpole).
//
// State machine per transition (docs/control_plane.md has the diagram):
//
//   Quiesce  -- chunked stepping until the entry-gateway reaches its kIdle
//               resting state with the pipeline drained (the exit-gateway's
//               idle notification marks the round boundary)
//   Freeze   -- EntryGateway::pause(): admission stays off while the
//               configuration bus is being reprogrammed
//   Program  -- register/unregister per-stream accelerator contexts, resize
//               and rebind C-FIFOs, add/remove the gateway route; then run
//               the simulator for the stream's modeled R_s cycles (the
//               config-bus programming window — real time keeps flowing for
//               everyone else)
//   Resume   -- EntryGateway::resume(): the round-robin scan restarts
//
// The property-tested invariant: streams admitted before the transition
// miss no deadlines and produce bit-identical audio up to the transition
// point, under every stepper (tests/ctrl/mode_change_test.cpp).
#pragma once

#include <memory>
#include <vector>

#include "accel/kernel.hpp"
#include "obs/metrics.hpp"
#include "sim/gateway.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace acc::ctrl {

struct ModeChangeConfig {
  sim::System* sys = nullptr;
  sim::EntryGateway* entry = nullptr;
  /// The gateway's accelerator chain, in chain order (context targets).
  std::vector<sim::AcceleratorTile*> accels;
  /// Stepper used for the quiesce polling and the R_s programming window.
  /// Chunked run_with keeps the transition bit-identical across steppers
  /// (run_until is wake-list-only).
  sim::StepperKind stepper = sim::StepperKind::kWakeList;
  sim::Cycle quiesce_chunk = 64;
  /// Hard budget on one quiesce (a chain that never drains is a protocol
  /// violation, not a slow day): exceeded => invariant_error.
  sim::Cycle max_quiesce = 4'000'000;
  sim::TraceLog* trace = nullptr;
  /// Opt-in metrics: ctrl.modechange.count + ctrl.modechange.cycles
  /// histogram (pow2 buckets of whole-transition reconfiguration cost).
  obs::MetricsRegistry* metrics = nullptr;
};

class ModeChangeProtocol {
 public:
  explicit ModeChangeProtocol(const ModeChangeConfig& cfg);

  /// Execute an accepted join live: quiesce, freeze admission, register
  /// `kernels` (one per accelerator, chain order) as stream contexts, grow
  /// the route's C-FIFOs to the block size if needed, add the route, charge
  /// the modeled R_s programming window, resume. Returns cycles spent in
  /// the whole transition (quiesce included).
  sim::Cycle join(const sim::StreamRoute& route,
                  std::vector<std::unique_ptr<accel::StreamKernel>> kernels);

  /// Execute a departure live: quiesce, freeze admission, drop the gateway
  /// route and every accelerator context of `id`, charge the stream's R_s,
  /// resume. The stream's C-FIFOs stay owned by the System (their watchers
  /// are deliberately not unhooked — stale wakes are harmless).
  sim::Cycle leave(sim::StreamId id);

  /// Chunked-poll the simulator until the entry-gateway reaches its
  /// quiesced resting state (round boundary). Returns cycles spent.
  sim::Cycle quiesce();

 private:
  ModeChangeConfig cfg_;
  obs::Counter m_count_;
  obs::Histogram m_cycles_;
};

}  // namespace acc::ctrl
