// Seeded session workloads for the dynamic control plane: deterministic
// join/leave traces replayed by app/admission_churn (bench E14).
//
// Arrivals are memoryless ("Poisson-ish"): at each event slot the trace
// joins a fresh session with probability `join_bias` (forced when nothing
// is active, suppressed when `max_concurrent` sessions already run) and
// otherwise retires a uniformly chosen active session. Everything derives
// from SplitMix64, so a (seed, events) pair names one exact trace on every
// platform — the property the byte-identical BENCH_admission.json contract
// rests on.
#pragma once

#include <cstdint>
#include <vector>

namespace acc::ctrl {

struct SessionEvent {
  enum class Kind { kJoin, kLeave };
  Kind kind = Kind::kJoin;
  /// Join-order session number: the new session on kJoin, the target on
  /// kLeave. The generator does not know which joins the admission
  /// controller will accept, so a kLeave may name a rejected session — the
  /// driver skips those deterministically.
  std::int32_t session = 0;
  /// Stream-template index in [0, num_templates) (kJoin only).
  std::int32_t template_id = 0;
};

struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::int32_t events = 200;
  std::int32_t max_concurrent = 5;
  std::int32_t num_templates = 2;
  double join_bias = 0.55;
};

[[nodiscard]] std::vector<SessionEvent> generate_session_trace(
    const WorkloadConfig& cfg);

}  // namespace acc::ctrl
