#include "ctrl/workload.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace acc::ctrl {

std::vector<SessionEvent> generate_session_trace(const WorkloadConfig& cfg) {
  ACC_EXPECTS(cfg.events >= 1);
  ACC_EXPECTS(cfg.max_concurrent >= 1);
  ACC_EXPECTS(cfg.num_templates >= 1);
  ACC_EXPECTS(cfg.join_bias > 0.0 && cfg.join_bias < 1.0);
  SplitMix64 rng(cfg.seed);
  std::vector<SessionEvent> out;
  out.reserve(static_cast<std::size_t>(cfg.events));
  std::vector<std::int32_t> active;  // the generator's own view
  std::int32_t next_session = 0;
  for (std::int32_t i = 0; i < cfg.events; ++i) {
    const bool full =
        static_cast<std::int32_t>(active.size()) >= cfg.max_concurrent;
    const bool join = active.empty() || (!full && rng.chance(cfg.join_bias));
    SessionEvent e;
    if (join) {
      e.kind = SessionEvent::Kind::kJoin;
      e.session = next_session++;
      e.template_id = static_cast<std::int32_t>(
          rng.uniform(0, cfg.num_templates - 1));
      active.push_back(e.session);
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(active.size()) - 1));
      e.kind = SessionEvent::Kind::kLeave;
      e.session = active[pick];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace acc::ctrl
