// Processor, source and sink tiles.
//
// ProcessorTile models a MicroBlaze-style core running tasks under the
// real-time budget scheduler of the paper (ref [18]): each task owns a
// budget of cycles per replenishment period; the scheduler serves ready
// tasks round-robin while they hold budget. Tasks are C++ callables over
// C-FIFOs, costed in cycles per invocation.
//
// SourceTile models the radio front-end (the paper's Epiq FMC-1RX): a
// hard real-time producer emitting one prepared sample every `period`
// cycles into a C-FIFO. If the FIFO has no visible space the sample is
// LOST and counted — the real-time verdict of the whole system is
// "zero drops at the source and no starvation at the sink".
//
// SinkTile models a hard real-time consumer (audio DAC): from the first
// sample onward it pops one sample every `period` cycles; a miss counts as
// an underrun.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/cfifo.hpp"
#include "sim/component.hpp"

namespace acc::sim {

/// One schedulable task on a processor tile.
struct Task {
  std::string name;
  /// Attempt one invocation at `now`; return the cycle cost consumed, or 0
  /// if the task had no work (blocked on data/space).
  std::function<Cycle(Cycle now)> invoke;
  /// Budget (cycles) granted every replenishment period.
  Cycle budget = 100;
  /// Priority (larger = more urgent); only used by kPriorityBudget.
  std::int32_t priority = 0;
  /// Optional event-horizon hint: earliest cycle >= now at which `invoke`
  /// could return non-zero, assuming nobody touches its C-FIFOs in the
  /// meantime (CFifo::when_fill_visible / when_space_visible compose well
  /// here); kNeverCycle when only another component can unblock it. Leave
  /// unset to keep the tile dense (exact but slow). When set, `invoke`
  /// must be side-effect free whenever it returns 0 — blocked attempts are
  /// elided, not replayed, while cycles are skipped.
  std::function<Cycle(Cycle now)> next_ready;
  /// Wake-list contract companions to next_ready: EVERY C-FIFO whose fill
  /// the hint reads goes in wake_on_push, every C-FIFO whose space it
  /// reads goes in wake_on_pop (the tile registers as watcher on all of
  /// them). A hinted task that lists neither marks the tile wake-unsafe,
  /// and the scheduler falls back to re-querying it every active cycle —
  /// exact, but it forfeits selective ticking for this tile.
  std::vector<CFifo*> wake_on_push;
  std::vector<CFifo*> wake_on_pop;
};

/// Scheduling policy of the paper's budget scheduler (ref [18]): both
/// enforce per-task budgets per replenishment period (temporal isolation —
/// the property that makes tasks analyzable with conservative dataflow
/// models); they differ in how ready tasks with remaining budget are
/// ordered.
enum class SchedulerPolicy {
  kRoundRobin,      // fair rotation
  kPriorityBudget,  // strict priority among tasks holding budget
};

class ProcessorTile final : public Component {
 public:
  ProcessorTile(std::string name, Cycle replenish_period,
                SchedulerPolicy policy = SchedulerPolicy::kRoundRobin);

  void add_task(Task t);
  void tick(Cycle now) override;
  /// Event horizon: running-task completion, budget replenishment of a
  /// suspended task, or the earliest Task::next_ready hint. Tasks without
  /// a hint pin the tile to dense stepping (exact legacy behavior).
  [[nodiscard]] Cycle next_event(Cycle now) const override;
  /// Replays the replenishment grid (refills keep their dense-mode phase)
  /// and the running task's busy accounting over a skipped range.
  void skip_to(Cycle from, Cycle to) override;
  /// Safe for cached horizons only when every hinted task declares the
  /// C-FIFOs its hint depends on (Task::wake_on_push / wake_on_pop).
  [[nodiscard]] bool wake_list_safe() const override;
  /// The replenishment grid (budget_left_, next_replenish_) is frozen-
  /// channel state that skip_to replays across a parked window: exempt
  /// from the V05 digest-stability audit (see Component::frozen_skip_replay).
  [[nodiscard]] bool frozen_skip_replay() const override { return true; }
  /// Canonical state snapshot (see sim/state_hash.hpp). Frozen channel:
  /// scheduler state (budgets, running task, deadlines); invocations_ is a
  /// lifetime counter (excluded); busy_cycles_ is skip-replayed accounting.
  void snapshot_state(StateHasher& h) const override {
    for (const Cycle b : budget_left_) h.mix(b);
    h.mix(static_cast<std::int64_t>(current_));
    h.mix_cycle(busy_until_);
    h.mix_cycle(next_replenish_);
    h.accounting(busy_cycles_);
  }

  [[nodiscard]] Cycle busy_cycles() const { return busy_cycles_; }
  [[nodiscard]] std::int64_t invocations(std::size_t task) const;

  /// Opt-in metrics: proc.<name>.{invocations,busy_cycles}. busy_cycles
  /// accrues the invocation's full cost at the invocation EVENT, so the
  /// metric is stepper-exact (the per-tick busy_cycles() accessor is not a
  /// metric source for this reason).
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  /// One scheduling decision at cycle `t`: build the candidate order and
  /// try tasks until one invocation lands (sets busy_until_, budgets,
  /// invocation counters/metrics). Returns whether an invocation started.
  /// Does NOT touch busy_cycles_ — the caller accounts the cycle (dense
  /// tick) or leaves it to the skip_to replay (batched virtual cycles).
  bool attempt_invocation(Cycle t);

  std::string name_;
  Cycle period_;
  SchedulerPolicy policy_;
  std::vector<Task> tasks_;
  // True when every task is hinted (invoke side-effect free on 0) and all
  // declared wake FIFOs carry visibility lags >= 1 — the preconditions for
  // replaying invocations at granted virtual cycles (see tick()).
  bool batch_capable_ = true;
  std::vector<Cycle> budget_left_;
  std::vector<std::int64_t> invocations_;
  std::vector<std::size_t> order_;  // reusable scan buffer (hot path)
  std::size_t current_ = 0;
  Cycle busy_until_ = 0;
  Cycle next_replenish_ = 0;
  Cycle busy_cycles_ = 0;
  obs::Counter m_invocations_;
  obs::Counter m_busy_;
};

class SourceTile final : public Component {
 public:
  /// Emits samples[i] at cycle start_at + i*period into `out`.
  SourceTile(std::string name, CFifo& out, std::vector<Flit> samples,
             Cycle period, Cycle start_at = 0);

  /// Bounded release jitter: sample i is emitted at its nominal time plus a
  /// deterministic pseudo-random delay in [0, max_jitter]. Models a front
  /// end whose DMA batches irregularly while the long-run rate stays 1 per
  /// `period` (delays never accumulate).
  void set_jitter(Cycle max_jitter, std::uint64_t seed = 1);

  void tick(Cycle now) override;
  /// Event horizon: the (jittered) release time of the next sample, or
  /// kNeverCycle once the sample list is exhausted. No per-cycle counters,
  /// so the default no-op skip_to is exact.
  [[nodiscard]] Cycle next_event(Cycle now) const override;
  /// Canonical state snapshot: emission cursor, release deadline, and the
  /// jitter RNG state (a consumed draw is externally visible determinism
  /// state). emitted_/dropped_ are lifetime counters (excluded).
  void snapshot_state(StateHasher& h) const override {
    h.mix_cycle(next_emit_);
    h.mix(static_cast<std::int64_t>(next_));
    h.mix(jitter_state_);
  }

  /// Opt-in metrics: source.<name>.{emitted,dropped}.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] std::int64_t emitted() const { return emitted_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] bool exhausted() const {
    return next_ >= samples_.size();
  }
  /// Nominal (jitter-free) emission time of sample i.
  [[nodiscard]] Cycle nominal_emit_time(std::size_t i) const {
    return start_at_ + static_cast<Cycle>(i) * period_;
  }

 private:
  std::string name_;
  CFifo& out_;
  std::vector<Flit> samples_;
  Cycle period_;
  Cycle start_at_;
  Cycle next_emit_;
  std::size_t next_ = 0;
  std::int64_t emitted_ = 0;
  std::int64_t dropped_ = 0;
  Cycle max_jitter_ = 0;
  std::uint64_t jitter_state_ = 0;
  obs::Counter m_emitted_;
  obs::Counter m_dropped_;
};

class SinkTile final : public Component {
 public:
  /// Pops one sample per `period` cycles once the first sample shows up;
  /// `prefill` samples must be visible before consumption starts (DAC
  /// start-of-stream buffering).
  SinkTile(std::string name, CFifo& in, Cycle period, std::int64_t prefill = 1);

  void tick(Cycle now) override;
  /// Event horizon: the prefill visibility deadline before start, the next
  /// DAC due time after. No per-cycle counters; default skip_to is exact.
  [[nodiscard]] Cycle next_event(Cycle now) const override;
  /// Canonical state snapshot: start latch + DAC due time. The received
  /// log and underrun count are lifetime data (excluded).
  void snapshot_state(StateHasher& h) const override {
    h.mix(started_);
    h.mix_cycle(next_due_);
  }

  /// Opt-in metrics: sink.<name>.{received,underruns}. The underruns
  /// counter covers the WHOLE run, including any post-feed drain phase the
  /// harness runs after the broadcast ends — unlike a verdict that
  /// snapshots underruns() at end-of-feed, so the two can legitimately
  /// differ on a run that drains past its input.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const std::vector<Flit>& received() const { return received_; }
  [[nodiscard]] const std::vector<Cycle>& timestamps() const {
    return timestamps_;
  }
  [[nodiscard]] std::int64_t underruns() const { return underruns_; }
  [[nodiscard]] bool started() const { return started_; }

 private:
  std::string name_;
  CFifo& in_;
  Cycle period_;
  std::int64_t prefill_;
  bool started_ = false;
  Cycle next_due_ = 0;
  std::vector<Flit> received_;
  std::vector<Cycle> timestamps_;
  std::int64_t underruns_ = 0;
  obs::Counter m_received_;
  obs::Counter m_underruns_;
};

}  // namespace acc::sim
