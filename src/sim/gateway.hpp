// Entry- and exit-gateway pair: the paper's core architectural contribution
// (its Fig. 4), responsible for multiplexing data streams over a chain of
// shared accelerator tiles under real-time constraints.
//
// The ENTRY-gateway admits one block of eta_s samples of stream s only when
//   1. the exit-gateway has signalled that the previous block fully left
//      the pipeline (context switches on a busy pipeline would corrupt
//      accelerator state),
//   2. at least eta_s samples are available in stream s's input C-FIFO, and
//   3. the consumer's output buffer has space for the whole block's output
//      (without this check no conservative CSDF model exists — paper §V-G).
// It then drives the configuration bus to save/restore accelerator contexts
// (R_s cycles) and DMAs the block into the chain at epsilon cycles/sample
// under hardware credit flow control.
//
// The EXIT-gateway converts the chain's output back to software flow
// control: it writes each sample into the stream's output C-FIFO (delta
// cycles/sample), and notifies the entry-gateway when the block's last
// sample has passed — the "pipeline idle" token of the CSDF model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/accel_tile.hpp"
#include "sim/cfifo.hpp"
#include "sim/component.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace acc::sim {

class ExitGateway;

/// Static per-stream multiplexing configuration.
struct StreamRoute {
  StreamId id = 0;
  std::string name;
  /// Block size (input samples per turn).
  std::int64_t eta = 1;
  /// Output samples the chain produces per block (eta / total decimation;
  /// eta must be chosen so this is exact — enforced at registration).
  std::int64_t out_per_block = 1;
  /// Input C-FIFO (filled by the producer tile) — owned elsewhere.
  CFifo* input = nullptr;
  /// Output C-FIFO (drained by the consumer tile) — owned elsewhere.
  CFifo* output = nullptr;
  /// Context-switch cost for this stream (R_s cycles).
  Cycle reconfig = 4100;
};

struct GatewayStats {
  std::int64_t blocks = 0;
  std::int64_t samples_forwarded = 0;
  Cycle data_cycles = 0;      // cycles spent DMAing samples
  Cycle reconfig_cycles = 0;  // cycles spent on the configuration bus
  Cycle wait_cycles = 0;      // admissible-but-draining or starved cycles
  // Robustness counters (see GatewayRetryPolicy and docs/robustness.md).
  std::int64_t notify_timeouts = 0;    // drain windows that hit the timeout
  std::int64_t notify_retries = 0;     // recovery polls issued
  std::int64_t notify_recoveries = 0;  // lost/late notifications reclaimed
  std::int64_t credit_stalls = 0;      // credit-starvation episodes traced
  Cycle credit_stall_cycles = 0;       // cycles stalled on hardware credits
};

/// Graceful degradation against lost or late pipeline-idle notifications:
/// if the entry-gateway drains for `notify_timeout` cycles without hearing
/// from the exit-gateway, it polls the exit directly and reclaims the
/// notification if the block has in fact fully left the pipeline. Polls
/// back off exponentially; after `max_retries` doublings the interval stays
/// at its cap, so a chain under BOUNDED faults recovers and never
/// deadlocks. notify_timeout = 0 disables recovery (seed behaviour).
struct GatewayRetryPolicy {
  Cycle notify_timeout = 0;
  int max_retries = 8;
  /// First retry interval; 0 = reuse notify_timeout.
  Cycle backoff = 0;
};

class EntryGateway final : public Component {
 public:
  /// `epsilon`: per-sample forwarding cost. The gateway injects into the
  /// chain's first accelerator at `first_node` using `first_tag` and that
  /// NI's depth as its initial credit budget.
  EntryGateway(std::string name, DualRing& ring, std::int32_t node,
               Cycle epsilon, std::int32_t first_node, std::uint32_t first_tag,
               std::int64_t first_credits);

  /// The accelerator chain this gateway manages (context-switch targets),
  /// in chain order.
  void set_chain(std::vector<AcceleratorTile*> chain);
  void set_exit(ExitGateway* exit_gw) { exit_ = exit_gw; }

  /// Register a multiplexed stream (round-robin order = registration
  /// order). Each accelerator in the chain must already hold a context for
  /// route.id.
  void add_stream(const StreamRoute& route);

  /// Deregister stream `id` (control-plane departure). Requires the quiesced
  /// resting state (kIdle with the pipeline drained): the mode-change
  /// protocol drains to a round boundary before unplugging anything. Any
  /// in-flight samples of the stream must already have left the chain; its
  /// C-FIFO watchers stay registered (stale watchers only cause harmless
  /// extra wakes — there is deliberately no watcher-removal API).
  void remove_stream(StreamId id);

  /// Freeze admission (the mode-change protocol's config-bus window): the
  /// FSM stays in kIdle and admits nothing until resume(). Requires the
  /// quiesced resting state, so pausing never strands a half-admitted
  /// block. Wait accounting keeps accruing while streams are registered —
  /// identical dense/skip behaviour keeps the steppers bit-exact.
  void pause();
  /// Lift a pause() freeze and reschedule the admission scan.
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  void tick(Cycle now) override;
  /// Event horizon of the admission/reconfig/streaming/drain FSM: context
  /// switch completion, DMA completion, C-FIFO visibility deadlines, the
  /// credit-stall trace threshold and the drain recovery poll. kNeverCycle
  /// whenever only another component (producer push, consumer pop, credit
  /// return, exit notification) can unblock the FSM.
  [[nodiscard]] Cycle next_event(Cycle now) const override;
  /// Replays the per-cycle wait/reconfig/data/credit-stall accounting the
  /// dense loop would have performed over a quiescent range.
  void skip_to(Cycle from, Cycle to) override;
  /// Returned credits arrive over the credit ring at this node.
  [[nodiscard]] std::int32_t ring_node() const override { return node_; }
  /// Canonical state snapshot (see sim/state_hash.hpp). Frozen channel: the
  /// FSM and everything its admission/drain decisions read. Accounting
  /// channel: the counters skip_to replays. completions_ and the stats_
  /// block/sample totals are lifetime data (excluded by contract).
  void snapshot_state(StateHasher& h) const override;

  /// Opt-in event tracing (admissions, reconfigurations, completions).
  void set_trace(TraceLog* trace) { trace_ = trace; }
  /// Opt-in metrics: gateway.<name>.* admission/reconfig/retry counters and
  /// the admission-wait histogram (idle -> admit cycles). Every update fires
  /// at an FSM transition — a cycle all steppers tick densely — so the
  /// snapshot is stepper-exact (see docs/observability.md).
  void set_metrics(obs::MetricsRegistry* registry);
  /// Opt-in fault injection: config-bus contention on context switches.
  void set_fault(FaultInjector* injector) { fault_ = injector; }
  /// Enable notification-timeout recovery (see GatewayRetryPolicy).
  void set_retry_policy(const GatewayRetryPolicy& policy);
  /// Consecutive credit-starved cycles before a "stall.credit" trace event.
  void set_credit_stall_threshold(Cycle threshold);

  /// Called by the exit-gateway (via its notification latency) when the
  /// last output sample of the active block has been delivered.
  void on_pipeline_idle();

  [[nodiscard]] const GatewayStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<StreamRoute>& streams() const {
    return streams_;
  }
  /// Hardware credits currently held toward the chain's first NI (the V02
  /// credit-conservation oracle reads this).
  [[nodiscard]] std::int64_t credits() const { return credits_; }
  /// True when the FSM sits in kIdle with the pipeline drained — the only
  /// legitimate resting state for the V01 deadlock rule.
  [[nodiscard]] bool is_idle() const {
    return state_ == State::kIdle && pipeline_idle_;
  }
  /// Completion cycle of the most recent block per stream (empty until the
  /// first block finishes). For latency/throughput measurements.
  [[nodiscard]] const std::vector<Cycle>& block_completions(StreamId id) const;

  void record_block_completion(StreamId id, Cycle when);

 private:
  enum class State { kIdle, kReconfig, kStreaming, kDraining };

  [[nodiscard]] bool admissible(const StreamRoute& r, Cycle now) const;
  void start_draining(Cycle now);
  void note_credit_stall(Cycle now);
  void note_credit_resume(Cycle now);

  std::string name_;
  DualRing& ring_;
  std::int32_t node_;
  Cycle epsilon_;
  std::int32_t first_node_;
  std::uint32_t first_tag_;
  std::int64_t credits_;

  std::vector<AcceleratorTile*> chain_;
  ExitGateway* exit_ = nullptr;
  std::vector<StreamRoute> streams_;
  std::vector<std::vector<Cycle>> completions_;

  State state_ = State::kIdle;
  std::size_t rr_next_ = 0;       // next stream to consider
  std::size_t active_ = 0;        // index into streams_ while not idle
  std::optional<StreamId> loaded_context_;  // context currently in the accels
  Cycle busy_until_ = 0;
  std::int64_t remaining_ = 0;    // samples left to forward in this block
  bool sample_in_flight_ = false; // DMA busy on one sample
  bool pipeline_idle_ = true;
  bool paused_ = false;           // admission frozen by the control plane
  TraceLog* trace_ = nullptr;
  FaultInjector* fault_ = nullptr;

  GatewayRetryPolicy retry_;
  Cycle drain_deadline_ = 0;      // next recovery poll while draining
  int retries_ = 0;               // polls issued for the current block
  Cycle credit_stall_threshold_ = 32;
  Cycle credit_stall_since_ = -1; // -1 = not currently starved
  bool credit_stall_traced_ = false;
  Cycle idle_since_ = 0;          // cycle the FSM last entered kIdle

  GatewayStats stats_;
  obs::Counter m_admissions_;
  obs::Histogram m_admission_wait_;
  obs::Counter m_blocks_;
  obs::Counter m_samples_;
  obs::Counter m_reconfigs_;
  obs::Counter m_reconfig_cost_;
  obs::Counter m_bus_faults_;
  obs::Counter m_bus_fault_cycles_;
  obs::Counter m_notify_timeouts_;
  obs::Counter m_notify_retries_;
  obs::Counter m_notify_recoveries_;
  obs::Counter m_credit_stalls_;
};

class ExitGateway final : public Component {
 public:
  /// `delta`: per-sample cost of the hardware DMA converting the stream
  /// back to software flow control. `notify_lag`: cycles for the
  /// pipeline-idle notification to reach the entry-gateway.
  ExitGateway(std::string name, DualRing& ring, std::int32_t node, Cycle delta,
              std::int64_t ni_capacity = 2, Cycle notify_lag = 4);

  void set_entry(EntryGateway* entry) { entry_ = entry; }
  void set_trace(TraceLog* trace) { trace_ = trace; }
  /// Opt-in metrics: gateway.<name>.{delivered,notify_drops,notify_reclaims}.
  void set_metrics(obs::MetricsRegistry* registry);
  /// Opt-in fault injection: pipeline-idle notifications may be delayed or
  /// dropped (kExitNotify) — the entry-gateway's retry policy recovers.
  void set_fault(FaultInjector* injector) { fault_ = injector; }
  /// Upstream producer (last accelerator of the chain) for credit returns.
  void set_upstream(std::int32_t node, std::uint32_t tag);

  /// Entry-gateway arms the exit for the active block: stream and expected
  /// output count.
  void arm(StreamId stream, CFifo* output, std::int64_t expected);

  void tick(Cycle now) override;
  /// Event horizon: pending notification delivery, per-sample DMA
  /// completion, or retries of a backed-up credit return. The exit-gateway
  /// keeps no per-cycle counters, so the default (no-op) skip_to is exact.
  [[nodiscard]] Cycle next_event(Cycle now) const override;
  /// The chain's output flits arrive over the data ring at this node.
  [[nodiscard]] std::int32_t ring_node() const override { return node_; }
  /// Canonical state snapshot (see sim/state_hash.hpp). Frozen channel:
  /// queue/DMA/notification state. delivered_ and notify_drops_ are
  /// lifetime counters (excluded); the exit keeps no per-cycle accounting.
  void snapshot_state(StateHasher& h) const override;

  /// Entry-gateway recovery poll: if the active block has fully left the
  /// pipeline but its notification is still pending or was lost, deliver
  /// the completion right now and return true.
  bool reclaim_notification(Cycle now);

  [[nodiscard]] std::int32_t node() const { return node_; }
  [[nodiscard]] std::int64_t ni_capacity() const { return ni_capacity_; }
  [[nodiscard]] std::int64_t samples_delivered() const { return delivered_; }
  [[nodiscard]] bool idle() const { return expected_ == 0; }
  /// Samples held in the NI input queue (the V02 credit-conservation oracle
  /// counts them as buffered tokens). The sample in the DMA engine is NOT
  /// included: popping it already moved its slot's credit into
  /// pending_returns().
  [[nodiscard]] std::int64_t input_fill() const {
    return static_cast<std::int64_t>(input_.size());
  }
  /// Credit returns accepted but not yet injected into the credit ring.
  [[nodiscard]] std::int64_t pending_returns() const {
    return pending_credit_returns_;
  }
  /// Notifications lost to fault injection (recovered ones included).
  [[nodiscard]] std::int64_t notifications_dropped() const {
    return notify_drops_;
  }
  /// Output samples still owed for the active block (0 when disarmed). The
  /// V03 gateway-protocol oracle checks the armed output FIFO can take
  /// every one of them.
  [[nodiscard]] std::int64_t expected_outputs() const { return expected_; }
  /// The armed block's output C-FIFO (null when disarmed).
  [[nodiscard]] const CFifo* armed_output() const { return output_; }

 private:
  std::string name_;
  DualRing& ring_;
  std::int32_t node_;
  Cycle delta_;
  std::int64_t ni_capacity_;
  Cycle notify_lag_;

  EntryGateway* entry_ = nullptr;
  std::int32_t upstream_node_ = -1;
  std::uint32_t upstream_tag_ = 0;

  std::deque<Flit> input_;
  std::vector<RingMsg> rx_;  // reusable drain buffer (hot path, no allocs)
  std::int64_t pending_credit_returns_ = 0;
  bool busy_ = false;
  Cycle busy_until_ = 0;
  Flit current_ = 0;

  StreamId stream_ = -1;
  TraceLog* trace_ = nullptr;
  FaultInjector* fault_ = nullptr;
  CFifo* output_ = nullptr;
  std::int64_t expected_ = 0;
  std::int64_t delivered_ = 0;
  std::optional<Cycle> notify_at_;
  bool notify_lost_ = false;  // fault swallowed the notification
  std::int64_t notify_drops_ = 0;
  obs::Counter m_delivered_;
  obs::Counter m_notify_drops_;
  obs::Counter m_notify_reclaims_;
};

}  // namespace acc::sim
