#include "sim/gateway.hpp"

#include <algorithm>

namespace acc::sim {

EntryGateway::EntryGateway(std::string name, DualRing& ring, std::int32_t node,
                           Cycle epsilon, std::int32_t first_node,
                           std::uint32_t first_tag, std::int64_t first_credits)
    : name_(std::move(name)),
      ring_(ring),
      node_(node),
      epsilon_(epsilon),
      first_node_(first_node),
      first_tag_(first_tag),
      credits_(first_credits) {
  ACC_EXPECTS(epsilon >= 1);
  ACC_EXPECTS(first_credits >= 1);
}

void EntryGateway::set_chain(std::vector<AcceleratorTile*> chain) {
  ACC_EXPECTS(!chain.empty());
  chain_ = std::move(chain);
}

void EntryGateway::add_stream(const StreamRoute& route) {
  ACC_EXPECTS(route.input != nullptr && route.output != nullptr);
  ACC_EXPECTS(route.eta >= 1 && route.out_per_block >= 1);
  ACC_EXPECTS(route.reconfig >= 0);
  ACC_EXPECTS_MSG(route.input->capacity() >= route.eta,
                  "input C-FIFO cannot hold one block (alpha0 >= eta)");
  ACC_EXPECTS_MSG(route.output->capacity() >= route.out_per_block,
                  "output C-FIFO cannot hold one block of output");
  streams_.push_back(route);
  completions_.emplace_back();
  // Admission (and mid-block streaming) horizons hang off these FIFOs'
  // visibility deadlines: a producer push or consumer pop must wake us.
  route.input->add_push_watcher(this);
  route.output->add_pop_watcher(this);
}

void EntryGateway::remove_stream(StreamId id) {
  ACC_EXPECTS_MSG(state_ == State::kIdle && pipeline_idle_,
                  "stream removal on a non-quiesced gateway");
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].id != id) continue;
    streams_.erase(streams_.begin() + static_cast<std::ptrdiff_t>(i));
    completions_.erase(completions_.begin() + static_cast<std::ptrdiff_t>(i));
    // Indices into streams_ shifted: restart the round-robin scan at the
    // front (deterministic, and fairness re-establishes within one round).
    if (rr_next_ >= streams_.size()) rr_next_ = 0;
    active_ = 0;
    if (loaded_context_ && *loaded_context_ == id) loaded_context_.reset();
    // The removal mutates frozen admission state from outside our own tick
    // while we may be parked; reschedule so cached horizons never go stale.
    request_wake();
    return;
  }
  throw precondition_error("unknown stream id");
}

void EntryGateway::pause() {
  ACC_EXPECTS_MSG(state_ == State::kIdle && pipeline_idle_,
                  "pause on a non-quiesced gateway");
  paused_ = true;
  request_wake();
}

void EntryGateway::resume() {
  paused_ = false;
  request_wake();
}

const std::vector<Cycle>& EntryGateway::block_completions(StreamId id) const {
  for (std::size_t i = 0; i < streams_.size(); ++i)
    if (streams_[i].id == id) return completions_[i];
  throw precondition_error("unknown stream id");
}

void EntryGateway::record_block_completion(StreamId id, Cycle when) {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].id == id) {
      completions_[i].push_back(when);
      return;
    }
  }
  throw precondition_error("unknown stream id");
}

void EntryGateway::on_pipeline_idle() {
  pipeline_idle_ = true;
  // The kIdle/kDraining horizons park on kNeverCycle while waiting for
  // this notification; reschedule ourselves.
  request_wake();
}

void EntryGateway::set_retry_policy(const GatewayRetryPolicy& policy) {
  ACC_EXPECTS(policy.notify_timeout >= 0 && policy.backoff >= 0);
  ACC_EXPECTS(policy.max_retries >= 0);
  retry_ = policy;
}

void EntryGateway::set_credit_stall_threshold(Cycle threshold) {
  ACC_EXPECTS(threshold >= 1);
  credit_stall_threshold_ = threshold;
}

void EntryGateway::set_metrics(obs::MetricsRegistry* registry) {
  const std::string p = "gateway." + name_;
  m_admissions_ = obs::make_counter(registry, p + ".admissions");
  m_admission_wait_ = obs::make_histogram(registry, p + ".admission_wait",
                                          obs::pow2_bounds(16, 8));
  m_blocks_ = obs::make_counter(registry, p + ".blocks");
  m_samples_ = obs::make_counter(registry, p + ".samples");
  m_reconfigs_ = obs::make_counter(registry, p + ".reconfigs");
  m_reconfig_cost_ = obs::make_counter(registry, p + ".reconfig_cost");
  m_bus_faults_ = obs::make_counter(registry, p + ".config_bus_faults");
  m_bus_fault_cycles_ =
      obs::make_counter(registry, p + ".config_bus_fault_cycles");
  m_notify_timeouts_ = obs::make_counter(registry, p + ".notify_timeouts");
  m_notify_retries_ = obs::make_counter(registry, p + ".notify_retries");
  m_notify_recoveries_ = obs::make_counter(registry, p + ".notify_recoveries");
  m_credit_stalls_ = obs::make_counter(registry, p + ".credit_stalls");
}

void EntryGateway::start_draining(Cycle now) {
  state_ = State::kDraining;
  retries_ = 0;
  drain_deadline_ =
      retry_.notify_timeout > 0 ? now + retry_.notify_timeout : 0;
}

void EntryGateway::note_credit_stall(Cycle now) {
  if (credit_stall_since_ < 0) {
    credit_stall_since_ = now;
    credit_stall_traced_ = false;
  }
  ++stats_.credit_stall_cycles;
  if (!credit_stall_traced_ &&
      now - credit_stall_since_ >= credit_stall_threshold_) {
    ++stats_.credit_stalls;
    m_credit_stalls_.add();
    credit_stall_traced_ = true;
    if (trace_ != nullptr)
      trace_->record(now, name_, "stall.credit", now - credit_stall_since_);
  }
}

void EntryGateway::note_credit_resume(Cycle) { credit_stall_since_ = -1; }

bool EntryGateway::admissible(const StreamRoute& r, Cycle now) const {
  // when_*_visible(n, now) <= now is the O(1) form of fill/space >= n (the
  // deadlines are monotone, so only the n-th entry's deadline matters).
  return r.input->when_fill_visible(r.eta, now) <= now &&
         r.output->when_space_visible(r.out_per_block, now) <= now;
}

void EntryGateway::tick(Cycle now) {
  // Collect credits returned by the first accelerator's NI (inline O(1)
  // emptiness check first: most ticks deliver nothing).
  if (ring_.credit().has_ejected(node_))
    credits_ += ring_.credit().drain_count(node_);

  switch (state_) {
    case State::kIdle: {
      if (paused_) {
        // Control-plane freeze: accrue wait like any other idle cycle so
        // dense and skipping steppers account identically (see skip_to).
        if (!streams_.empty()) ++stats_.wait_cycles;
        return;
      }
      if (streams_.empty()) return;
      if (!pipeline_idle_) {
        ++stats_.wait_cycles;
        return;
      }
      // Round-robin scan: take the first admissible stream, starting at
      // rr_next_. RR lets unrelated applications share the chain fairly.
      bool found = false;
      for (std::size_t k = 0; k < streams_.size(); ++k) {
        const std::size_t idx = (rr_next_ + k) % streams_.size();
        if (admissible(streams_[idx], now)) {
          active_ = idx;
          rr_next_ = (idx + 1) % streams_.size();
          found = true;
          break;
        }
      }
      if (!found) {
        ++stats_.wait_cycles;
        return;
      }
      const StreamRoute& r = streams_[active_];
      // Context switch unless this stream's contexts are already loaded
      // (the paper's R_s is charged per switch; re-admitting the same
      // stream back-to-back skips the bus transfer).
      if (trace_ != nullptr) trace_->record(now, name_, "admit", r.id);
      m_admissions_.add();
      // Both endpoints of the wait are FSM-transition cycles (block.done /
      // construction and this admit), so the measured wait is stepper-exact.
      m_admission_wait_.observe(now - idle_since_);
      if (loaded_context_ && *loaded_context_ == r.id) {
        state_ = State::kStreaming;
        remaining_ = r.eta;
        exit_->arm(r.id, r.output, r.out_per_block);
        pipeline_idle_ = false;
      } else {
        state_ = State::kReconfig;
        Cycle cost = r.reconfig;
        if (fault_ != nullptr) {
          // Config-bus contention: the save/restore transfer is delayed.
          const Cycle extra = fault_->delay(FaultSite::kConfigBus, now);
          if (extra > 0) {
            cost += extra;
            m_bus_faults_.add();
            m_bus_fault_cycles_.add(extra);
            if (trace_ != nullptr)
              trace_->record(now, name_, "fault.config_bus", extra);
          }
        }
        busy_until_ = now + cost;
        m_reconfigs_.add();
        m_reconfig_cost_.add(cost);
        ++stats_.reconfig_cycles;  // this cycle counts as reconfig work
        if (trace_ != nullptr)
          trace_->record(now, name_, "reconfig.start", r.id);
      }
      return;
    }
    case State::kReconfig: {
      if (now < busy_until_) {
        ++stats_.reconfig_cycles;
        return;
      }
      // Bus transfer done: swap every accelerator to the new stream.
      const StreamRoute& r = streams_[active_];
      for (AcceleratorTile* a : chain_) a->swap_context(r.id, now);
      loaded_context_ = r.id;
      if (trace_ != nullptr) trace_->record(now, name_, "reconfig.done", r.id);
      state_ = State::kStreaming;
      remaining_ = r.eta;
      exit_->arm(r.id, r.output, r.out_per_block);
      pipeline_idle_ = false;
      return;
    }
    case State::kStreaming: {
      const StreamRoute& r = streams_[active_];
      if (sample_in_flight_) {
        ++stats_.data_cycles;
        if (now < busy_until_) return;
        // DMA cycle done; hand the flit to the network (needs a credit).
        if (credits_ <= 0) {  // stall on flow control
          note_credit_stall(now);
          return;
        }
        note_credit_resume(now);
        RingMsg m;
        m.dst = first_node_;
        m.tag = first_tag_;
        m.payload = r.input->front(now);
        if (!ring_.data().try_inject(node_, m)) return;
        (void)r.input->pop(now);
        --credits_;
        sample_in_flight_ = false;
        ++stats_.samples_forwarded;
        m_samples_.add();
        if (--remaining_ == 0) {
          start_draining(now);
          return;
        }
      }
      if (!sample_in_flight_ && remaining_ > 0) {
        // Admission guaranteed a full block, but the C-FIFO's read view may
        // trail by the network lag; wait for visibility.
        if (!r.input->can_pop(now)) {
          ++stats_.wait_cycles;
          return;
        }
        sample_in_flight_ = true;
        busy_until_ = now + epsilon_;
        ++stats_.data_cycles;
      }
      return;
    }
    case State::kDraining: {
      // Waiting for the exit-gateway's pipeline-idle notification.
      ++stats_.wait_cycles;
      if (!pipeline_idle_ && retry_.notify_timeout > 0 &&
          now >= drain_deadline_) {
        // Notification overdue: poll the exit-gateway directly. Bounded
        // retry with exponential backoff; the interval caps at
        // 2^max_retries so recovery polls continue (bounded faults must
        // never deadlock the chain), just ever more lazily.
        if (retries_ == 0) {
          ++stats_.notify_timeouts;
          m_notify_timeouts_.add();
          if (trace_ != nullptr)
            trace_->record(now, name_, "notify.timeout", streams_[active_].id);
        }
        ++stats_.notify_retries;
        m_notify_retries_.add();
        ++retries_;
        if (exit_->reclaim_notification(now)) {
          ++stats_.notify_recoveries;
          m_notify_recoveries_.add();
          if (trace_ != nullptr)
            trace_->record(now, name_, "notify.recovered",
                           streams_[active_].id);
        } else {
          const Cycle base =
              retry_.backoff > 0 ? retry_.backoff : retry_.notify_timeout;
          const int exponent =
              std::min({retries_, retry_.max_retries, 20});
          drain_deadline_ = now + (base << exponent);
          if (trace_ != nullptr)
            trace_->record(now, name_, "notify.retry", retries_);
        }
      }
      if (pipeline_idle_) {
        ++stats_.blocks;
        m_blocks_.add();
        state_ = State::kIdle;
        idle_since_ = now;
        if (trace_ != nullptr)
          trace_->record(now, name_, "block.done", streams_[active_].id);
      }
      return;
    }
  }
}

Cycle EntryGateway::next_event(Cycle now) const {
  // Credits ejected at our node await pickup: tick next cycle, in every
  // FSM state (the drain happens unconditionally at the top of tick()).
  // See AcceleratorTile::next_event for why this pin must exist.
  if (ring_.credit().has_ejected(node_)) return now + 1;
  switch (state_) {
    case State::kIdle: {
      // Frozen by the control plane: only resume() can unblock the FSM
      // (it routes a wake), so parking is exact.
      if (paused_) return kNeverCycle;
      if (streams_.empty()) return kNeverCycle;
      // Not yet notified: the exit-gateway's own horizon (notify_at_) or a
      // ring delivery bounds the wake-up; nothing here can act earlier.
      if (!pipeline_idle_) return kNeverCycle;
      // Earliest admission over all streams, from the C-FIFOs' exact
      // visibility deadlines. If every stream needs the other side to act
      // first, the producer/consumer horizons bound the system instead.
      Cycle h = kNeverCycle;
      for (const StreamRoute& r : streams_) {
        const Cycle fill = r.input->when_fill_visible(r.eta, now);
        const Cycle space = r.output->when_space_visible(r.out_per_block, now);
        h = std::min(h, std::max(fill, space));
      }
      return h == kNeverCycle ? kNeverCycle : std::max(h, now + 1);
    }
    case State::kReconfig:
      // Frozen until the context-switch bus transfer completes.
      return std::max(busy_until_, now + 1);
    case State::kStreaming: {
      const StreamRoute& r = streams_[active_];
      if (sample_in_flight_) {
        if (now < busy_until_) return busy_until_;  // DMA cycle in progress
        if (credits_ > 0) return now + 1;  // injection queue was full: retry
        // Credit-starved: the only self-generated event left is the
        // stall.credit trace emission when the starvation crosses the
        // threshold; past that, only a credit return can wake us.
        if (credit_stall_since_ < 0) return now + 1;
        if (!credit_stall_traced_)
          return std::max(credit_stall_since_ + credit_stall_threshold_,
                          now + 1);
        return kNeverCycle;
      }
      // Between samples: waiting for the next sample's read visibility.
      const Cycle fill = r.input->when_fill_visible(1, now);
      return fill == kNeverCycle ? kNeverCycle : std::max(fill, now + 1);
    }
    case State::kDraining:
      // Still waiting for pipeline-idle. With recovery enabled the next
      // self-generated event is the recovery poll; otherwise only the
      // exit-gateway can end the drain.
      if (retry_.notify_timeout > 0)
        return std::max(drain_deadline_, now + 1);
      return kNeverCycle;
  }
  return now + 1;
}

void EntryGateway::skip_to(Cycle from, Cycle to) {
  const Cycle n = to - from;
  switch (state_) {
    case State::kIdle:
      if (!streams_.empty()) stats_.wait_cycles += n;
      return;
    case State::kReconfig:
      stats_.reconfig_cycles += n;
      return;
    case State::kStreaming:
      if (sample_in_flight_) {
        stats_.data_cycles += n;
        // A skipped starved range also accrues credit-stall accounting
        // (the threshold-crossing trace cycle itself is always ticked
        // densely — next_event pins it).
        if (from >= busy_until_ && credits_ <= 0 && credit_stall_since_ >= 0)
          stats_.credit_stall_cycles += n;
      } else {
        stats_.wait_cycles += n;
      }
      return;
    case State::kDraining:
      stats_.wait_cycles += n;
      return;
  }
}

void EntryGateway::snapshot_state(StateHasher& h) const {
  h.mix(static_cast<std::int64_t>(state_));
  h.mix(static_cast<std::int64_t>(rr_next_));
  h.mix(static_cast<std::int64_t>(active_));
  h.mix(loaded_context_.has_value());
  if (loaded_context_) h.mix(static_cast<std::int64_t>(*loaded_context_));
  h.mix_cycle(busy_until_);
  h.mix(remaining_);
  h.mix(sample_in_flight_);
  h.mix(pipeline_idle_);
  h.mix(paused_);
  h.mix(credits_);
  h.mix_cycle(drain_deadline_);
  h.mix(static_cast<std::int64_t>(retries_));
  // Credit-stall episode state: what tick() actually compares against now
  // is the trace-threshold deadline, so canonicalize that (a bare
  // mix_cycle(credit_stall_since_) would conflate "starved since X" with
  // "not starved" once X expires).
  h.mix(credit_stall_since_ >= 0);
  if (credit_stall_since_ >= 0)
    h.mix_cycle(credit_stall_since_ + credit_stall_threshold_);
  h.mix(credit_stall_traced_);
  // Always in the past, so the explorer's now-based canonicalization folds
  // it to the expired sentinel (it never influences future behaviour beyond
  // the wait metric) while the audit's base-0 hash still pins it exactly.
  h.mix_cycle(idle_since_);
  h.accounting(stats_.wait_cycles);
  h.accounting(stats_.reconfig_cycles);
  h.accounting(stats_.data_cycles);
  h.accounting(stats_.credit_stall_cycles);
}

ExitGateway::ExitGateway(std::string name, DualRing& ring, std::int32_t node,
                         Cycle delta, std::int64_t ni_capacity,
                         Cycle notify_lag)
    : name_(std::move(name)),
      ring_(ring),
      node_(node),
      delta_(delta),
      ni_capacity_(ni_capacity),
      notify_lag_(notify_lag) {
  ACC_EXPECTS(delta >= 1);
  ACC_EXPECTS(ni_capacity >= 1);
  ACC_EXPECTS(notify_lag >= 0);
}

void ExitGateway::set_metrics(obs::MetricsRegistry* registry) {
  const std::string p = "gateway." + name_;
  m_delivered_ = obs::make_counter(registry, p + ".delivered");
  m_notify_drops_ = obs::make_counter(registry, p + ".notify_drops");
  m_notify_reclaims_ = obs::make_counter(registry, p + ".notify_reclaims");
}

void ExitGateway::set_upstream(std::int32_t node, std::uint32_t tag) {
  upstream_node_ = node;
  upstream_tag_ = tag;
}

void ExitGateway::arm(StreamId stream, CFifo* output, std::int64_t expected) {
  ACC_EXPECTS_MSG(expected_ == 0, "exit-gateway armed while a block is active");
  ACC_EXPECTS(output != nullptr && expected >= 1);
  stream_ = stream;
  output_ = output;
  expected_ = expected;
  // Arming mutates our frozen state from the entry-gateway's tick. Our own
  // horizon is unchanged by it (expected_ only gates delivery bookkeeping,
  // which a data-flit ejection wakes anyway), but waking early is always
  // exact — and it keeps the arm visible to the wake-soundness audit (V05).
  request_wake();
}

void ExitGateway::tick(Cycle now) {
  // Inline O(1) emptiness check first: most ticks deliver nothing.
  if (ring_.data().has_ejected(node_)) {
    ring_.data().drain_into(node_, rx_);
    for (const RingMsg& m : rx_) {
      ACC_CHECK_MSG(static_cast<std::int64_t>(input_.size()) < ni_capacity_,
                    name_ + ": NI input overflow (credit protocol violated)");
      input_.push_back(m.payload);
    }
  }
  while (pending_credit_returns_ > 0 && upstream_node_ >= 0) {
    RingMsg credit;
    credit.dst = upstream_node_;
    credit.tag = upstream_tag_;
    if (!ring_.credit().try_inject(node_, credit)) break;
    --pending_credit_returns_;
  }

  // Deliver the delayed pipeline-idle notification.
  if (notify_at_ && now >= *notify_at_) {
    notify_at_.reset();
    ACC_CHECK(entry_ != nullptr);
    entry_->record_block_completion(stream_, now);
    entry_->on_pipeline_idle();
  }

  if (busy_ && now >= busy_until_) {
    busy_ = false;
    // Write completes into the consumer's C-FIFO (space was reserved at
    // admission, so this cannot overflow).
    ACC_CHECK_MSG(output_ != nullptr && output_->true_fill() <
                      output_->capacity(),
                  name_ + ": output C-FIFO overflow despite reservation");
    output_->push(now, current_);
    ++delivered_;
    m_delivered_.add();
    ACC_CHECK_MSG(expected_ > 0, name_ + ": sample arrived while disarmed");
    if (--expected_ == 0) {
      Cycle lag = notify_lag_;
      bool lost = false;
      if (fault_ != nullptr) {
        if (fault_->drop(FaultSite::kExitNotify, now)) {
          lost = true;
        } else {
          lag += fault_->delay(FaultSite::kExitNotify, now);
        }
      }
      if (lost) {
        // The notification is swallowed: only the entry-gateway's retry
        // policy can reclaim this block's completion.
        notify_lost_ = true;
        ++notify_drops_;
        m_notify_drops_.add();
        if (trace_ != nullptr)
          trace_->record(now, name_, "fault.notify_drop", stream_);
      } else {
        notify_at_ = now + lag;
      }
      if (trace_ != nullptr)
        trace_->record(now, name_, "block.delivered", stream_);
    }
  }

  if (!busy_ && !input_.empty()) {
    current_ = input_.front();
    input_.pop_front();
    ++pending_credit_returns_;
    busy_ = true;
    busy_until_ = now + delta_;
  }
}

Cycle ExitGateway::next_event(Cycle now) const {
  // Data flits ejected at our node await pickup: tick next cycle (see
  // AcceleratorTile::next_event).
  if (ring_.data().has_ejected(node_)) return now + 1;
  Cycle h = kNeverCycle;
  if (notify_at_) h = std::min(h, *notify_at_);
  if (busy_) {
    h = std::min(h, busy_until_);
  } else if (!input_.empty()) {
    h = now + 1;  // next sample's DMA starts immediately
  }
  if (pending_credit_returns_ > 0) h = now + 1;  // credit injection retry
  return h == kNeverCycle ? kNeverCycle : std::max(h, now + 1);
}

void ExitGateway::snapshot_state(StateHasher& h) const {
  h.mix(static_cast<std::int64_t>(input_.size()));
  for (const Flit f : input_) h.mix(f);
  h.mix(pending_credit_returns_);
  h.mix(busy_);
  if (busy_) {
    h.mix_cycle(busy_until_);
    h.mix(current_);
  }
  h.mix(static_cast<std::int64_t>(stream_));
  h.mix(expected_);
  h.mix(notify_at_.has_value());
  if (notify_at_) h.mix_cycle(*notify_at_);
  h.mix(notify_lost_);
}

bool ExitGateway::reclaim_notification(Cycle now) {
  if (expected_ != 0) return false;            // block still in the pipeline
  if (!notify_at_ && !notify_lost_) return false;  // already delivered
  notify_at_.reset();
  notify_lost_ = false;
  // The reclaim mutates our frozen state from the entry-gateway's tick,
  // same as arm(): route a wake so a cached horizon can never go stale on
  // this path (waking early is always exact, and it keeps the reclaim
  // visible to the wake-soundness audit, V05).
  request_wake();
  m_notify_reclaims_.add();
  ACC_CHECK(entry_ != nullptr);
  if (trace_ != nullptr)
    trace_->record(now, name_, "notify.reclaimed", stream_);
  entry_->record_block_completion(stream_, now);
  entry_->on_pipeline_idle();
  return true;
}

}  // namespace acc::sim
