// Base class for cycle-stepped simulator components.
#pragma once

#include "sim/ring.hpp"

namespace acc::sim {

class Component {
 public:
  virtual ~Component() = default;
  /// Advance one clock cycle. Components are ticked in registration order,
  /// then the interconnect advances (System::run).
  virtual void tick(Cycle now) = 0;
};

}  // namespace acc::sim
