// Base class for cycle-stepped simulator components.
#pragma once

#include "sim/ring.hpp"
#include "sim/wake.hpp"

namespace acc::sim {

class Component {
 public:
  virtual ~Component() = default;
  /// Advance one clock cycle. Components are ticked in registration order,
  /// then the interconnect advances (System::run).
  virtual void tick(Cycle now) = 0;

  /// Event-horizon hint (see System::run and docs/performance.md). Called
  /// after every component and the ring ticked at cycle `now`; returns the
  /// earliest cycle > now at which this component's tick could have an
  /// externally visible effect (state, stats, trace events or RNG draws),
  /// assuming NO other component acts before then. kNeverCycle means "only
  /// another component's action can wake me". The default — tick next
  /// cycle — is exact legacy behavior and keeps unknown subclasses safe.
  [[nodiscard]] virtual Cycle next_event(Cycle now) const { return now + 1; }

  /// Jump from cycle `from` to cycle `to` (from < to) without ticking the
  /// range in between. Overriders must replay, exactly, whatever per-cycle
  /// accounting their tick would have performed over a quiescent range
  /// (wait/busy/stall counters, replenishment grids). Only called for a
  /// range this component's own next_event() certified as quiescent — under
  /// the wake-list stepper other components MAY have acted inside the
  /// range, but never in a way this component could observe (any observable
  /// interaction routes a wake through WakeHub first).
  virtual void skip_to(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }

  /// Wake-list contract (System::run): true when every input this
  /// component's next_event() depends on is covered by a wake notification
  /// (C-FIFO watcher, ring delivery, direct callback), so a cached horizon
  /// can never go stale-late. Components that cannot promise that return
  /// false and are re-queried every active cycle instead (exact, slower —
  /// the global-horizon treatment).
  [[nodiscard]] virtual bool wake_list_safe() const { return true; }

  /// Ring node this component drains (data and/or credit), or -1 when it
  /// has no network interface. The wake-list scheduler uses it to route
  /// Ring ejections back to the tile that must pick them up.
  [[nodiscard]] virtual std::int32_t ring_node() const { return -1; }

  /// Installed by System::run's wake-list preparation; null under the
  /// dense / global-horizon steppers and in standalone unit tests. The
  /// slot index keys this component's calendar entry so wake delivery is a
  /// direct array access instead of a map lookup.
  void set_wake_hub(WakeHub* hub, std::size_t slot = 0) {
    hub_ = hub;
    wake_slot_ = slot;
  }
  [[nodiscard]] std::size_t wake_slot() const { return wake_slot_; }

  /// Notify the scheduler that this component may need to act earlier than
  /// its cached horizon (no-op without a hub). Called by C-FIFOs on behalf
  /// of registered watchers and by components delivering direct callbacks.
  void request_wake() {
    if (hub_ != nullptr) hub_->wake(*this);
  }

 protected:
  WakeHub* hub_ = nullptr;

 private:
  std::size_t wake_slot_ = 0;
};

}  // namespace acc::sim
