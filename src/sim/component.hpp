// Base class for cycle-stepped simulator components.
#pragma once

#include "sim/ring.hpp"

namespace acc::sim {

class Component {
 public:
  virtual ~Component() = default;
  /// Advance one clock cycle. Components are ticked in registration order,
  /// then the interconnect advances (System::run).
  virtual void tick(Cycle now) = 0;

  /// Event-horizon hint (see System::run and docs/performance.md). Called
  /// after every component and the ring ticked at cycle `now`; returns the
  /// earliest cycle > now at which this component's tick could have an
  /// externally visible effect (state, stats, trace events or RNG draws),
  /// assuming NO other component acts before then. kNeverCycle means "only
  /// another component's action can wake me". The default — tick next
  /// cycle — is exact legacy behavior and keeps unknown subclasses safe.
  [[nodiscard]] virtual Cycle next_event(Cycle now) const { return now + 1; }

  /// Jump from cycle `from` to cycle `to` (from < to) without ticking the
  /// range in between. Overriders must replay, exactly, whatever per-cycle
  /// accounting their tick would have performed over a quiescent range
  /// (wait/busy/stall counters, replenishment grids). Only called when
  /// every component's next_event() certified the range as quiescent.
  virtual void skip_to(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }
};

}  // namespace acc::sim
