// Base class for cycle-stepped simulator components.
#pragma once

#include "sim/ring.hpp"
#include "sim/state_hash.hpp"
#include "sim/stepper_stats.hpp"
#include "sim/wake.hpp"

namespace acc::sim {

class Component {
 public:
  virtual ~Component() = default;
  /// Advance one clock cycle. Components are ticked in registration order,
  /// then the interconnect advances (System::run).
  virtual void tick(Cycle now) = 0;

  /// Mix this component's canonical state into `h` (see sim/state_hash.hpp
  /// for the frozen/accounting channel contract). The bounded model checker
  /// (src/verify/) deduplicates explored states on the frozen digest and
  /// the wake-soundness audit checks frozen-channel bit-stability across
  /// declared skip windows. The default — contribute nothing — keeps
  /// unknown subclasses safe on both paths: an empty snapshot is trivially
  /// stable, and such components are exempt from dedup-sensitive state.
  virtual void snapshot_state(StateHasher& h) const { (void)h; }

  /// Event-horizon hint (see System::run and docs/performance.md). Called
  /// after every component and the ring ticked at cycle `now`; returns the
  /// earliest cycle > now at which this component's tick could have an
  /// externally visible effect (state, stats, trace events or RNG draws),
  /// assuming NO other component acts before then. kNeverCycle means "only
  /// another component's action can wake me". The default — tick next
  /// cycle — is exact legacy behavior and keeps unknown subclasses safe.
  [[nodiscard]] virtual Cycle next_event(Cycle now) const { return now + 1; }

  /// Jump from cycle `from` to cycle `to` (from < to) without ticking the
  /// range in between. Overriders must replay, exactly, whatever per-cycle
  /// accounting their tick would have performed over a quiescent range
  /// (wait/busy/stall counters, replenishment grids). Only called for a
  /// range this component's own next_event() certified as quiescent — under
  /// the wake-list stepper other components MAY have acted inside the
  /// range, but never in a way this component could observe (any observable
  /// interaction routes a wake through WakeHub first).
  virtual void skip_to(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }

  /// Wake-list contract (System::run): true when every input this
  /// component's next_event() depends on is covered by a wake notification
  /// (C-FIFO watcher, ring delivery, direct callback), so a cached horizon
  /// can never go stale-late. Components that cannot promise that return
  /// false and are re-queried every active cycle instead (exact, slower —
  /// the global-horizon treatment).
  [[nodiscard]] virtual bool wake_list_safe() const { return true; }

  /// True when skip_to() replays FROZEN-channel state — state that
  /// snapshot_state() mixes (not just accounting counters), e.g. a budget-
  /// replenishment grid whose phase advances deterministically across a
  /// parked window. The wake-soundness audit (V05, src/verify/) cannot
  /// check such components by per-cycle digest bit-stability; their skip
  /// equivalence is certified by the differential stepper suite
  /// (tests/sim/event_horizon_test.cpp) instead.
  [[nodiscard]] virtual bool frozen_skip_replay() const { return false; }

  /// Ring node this component drains (data and/or credit), or -1 when it
  /// has no network interface. The wake-list scheduler uses it to route
  /// Ring ejections back to the tile that must pick them up.
  [[nodiscard]] virtual std::int32_t ring_node() const { return -1; }

  /// Installed by System::run's wake-list preparation; null under the
  /// dense / global-horizon steppers and in standalone unit tests. The
  /// slot index keys this component's calendar entry so wake delivery is a
  /// direct array access instead of a map lookup.
  void set_wake_hub(WakeHub* hub, std::size_t slot = 0) {
    hub_ = hub;
    wake_slot_ = slot;
  }
  [[nodiscard]] std::size_t wake_slot() const { return wake_slot_; }

  /// Notify the scheduler that this component may need to act earlier than
  /// its cached horizon (no-op without a hub). Called by C-FIFOs on behalf
  /// of registered watchers and by components delivering direct callbacks.
  void request_wake() {
    if (hub_ != nullptr) hub_->wake(*this);
  }

  /// Installed by System::add so batched transfers report into the owning
  /// stepper's counters. Null for standalone components (unit tests).
  void set_stepper_stats(StepperStats* stats) { stepper_stats_ = stats; }

  /// Batched-data-plane grant (ISSUE 8): the earliest cycle at which any
  /// OTHER unit is scheduled to act. While mid-tick, this component may
  /// execute operations at virtual cycles strictly below the returned
  /// bound as one run; the bound must be re-read after every operation
  /// (wakes raised by the run itself collapse it). 0 without a hub or
  /// outside an active wake-list cycle — batching simply never triggers
  /// under the dense and global-horizon steppers. Public so CFifo::push_run
  /// / pop_run can re-check the grant between tokens on the component's
  /// behalf; it is a pure query with no side effects.
  [[nodiscard]] Cycle batch_quiet_until() const {
    return hub_ == nullptr ? 0 : hub_->quiet_until(wake_slot_);
  }

 protected:

  /// Record a granted run of `tokens` operations (>= 2) in StepperStats.
  void note_batch_run(std::int64_t tokens) {
    if (stepper_stats_ != nullptr) {
      ++stepper_stats_->batch_runs;
      stepper_stats_->batch_tokens += tokens;
    }
  }

  WakeHub* hub_ = nullptr;
  StepperStats* stepper_stats_ = nullptr;

 private:
  std::size_t wake_slot_ = 0;
};

}  // namespace acc::sim
