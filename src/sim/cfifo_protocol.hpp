// Faithful model of the C-FIFO software synchronization protocol
// (Gangwal/Nieuwland/Lippens, ISSS'01 — ref [12] of the paper).
//
// Unlike the behavioural CFifo (cfifo.hpp), which abstracts the protocol
// into visibility lags, this class models the actual algorithm:
//   - the data array lives in the CONSUMER's memory;
//   - the producer keeps a local write counter and a shadow of the read
//     counter; the consumer keeps a local read counter and a shadow of the
//     write counter;
//   - after writing data, the producer POSTS its write counter to the
//     consumer's shadow; after reading, the consumer POSTS its read counter
//     to the producer's shadow (posted writes over the interconnect, here
//     modelled with a fixed delivery latency);
//   - each side decides from its LOCAL counter + SHADOW only, so decisions
//     are conservative but never unsafe, with NO hardware flow control —
//     exactly why the paper's processor tiles can stream over a
//     posted-write-only interconnect.
//
// The equivalence test (cfifo_protocol_test.cpp) checks this protocol
// refines the behavioural model: same capacity, never less conservative
// than the true occupancy, and FIFO-exact data delivery.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/check.hpp"
#include "sim/flit.hpp"
#include "sim/ring.hpp"

namespace acc::sim {

class CFifoProtocol {
 public:
  CFifoProtocol(std::string name, std::int64_t capacity,
                Cycle counter_latency = 4);

  // ---- producer side ----
  /// Space the producer can prove free: capacity - (local write counter -
  /// shadow read counter).
  [[nodiscard]] std::int64_t producer_space(Cycle now);
  [[nodiscard]] bool can_write(Cycle now) { return producer_space(now) > 0; }
  /// Write one sample (posted write of data + write-counter update).
  void write(Cycle now, Flit value);

  // ---- consumer side ----
  /// Samples the consumer can prove present: shadow write counter - local
  /// read counter (data is valid once the counter update arrived, because
  /// the counter is posted AFTER the data on an in-order interconnect).
  [[nodiscard]] std::int64_t consumer_fill(Cycle now);
  [[nodiscard]] bool can_read(Cycle now) { return consumer_fill(now) > 0; }
  [[nodiscard]] Flit read(Cycle now);

  // ---- introspection ----
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t true_fill() const {
    return write_count_ - read_count_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void deliver_updates(Cycle now);

  std::string name_;
  std::int64_t capacity_;
  Cycle latency_;

  // Ground truth counters (each local to its own side).
  std::int64_t write_count_ = 0;
  std::int64_t read_count_ = 0;
  // Shadows: the other side's last DELIVERED counter value.
  std::int64_t write_shadow_at_consumer_ = 0;
  std::int64_t read_shadow_at_producer_ = 0;
  // In-flight counter updates: (delivery time, value).
  std::deque<std::pair<Cycle, std::int64_t>> write_updates_;
  std::deque<std::pair<Cycle, std::int64_t>> read_updates_;
  // The data array in consumer memory (index = counter mod capacity).
  std::deque<Flit> data_;
};

}  // namespace acc::sim
